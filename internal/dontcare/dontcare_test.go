package dontcare

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/network"
)

// rig builds a network with two split register classes:
// class A = {ra0, ra1} (copies of one register), class B = {rb0, rb1}.
func rig(t *testing.T) (*network.Network, *Classes, []*network.Node) {
	t.Helper()
	n := network.New("rig")
	a := n.AddPI("a")
	var outs []*network.Node
	var classA, classB []*network.Latch
	for i := 0; i < 2; i++ {
		l := n.AddLatch("ra"+string(rune('0'+i)), a, network.V0)
		classA = append(classA, l)
		outs = append(outs, l.Output)
	}
	for i := 0; i < 2; i++ {
		l := n.AddLatch("rb"+string(rune('0'+i)), a, network.V1)
		classB = append(classB, l)
		outs = append(outs, l.Output)
	}
	c := New()
	c.AddClass(classA)
	c.AddClass(classB)
	// Keep outputs alive.
	g := n.AddLogic("g", outs, logic.MustParseCover(4, "1111"))
	n.AddPO("y", g)
	return n, c, outs
}

func TestAddClassIgnoresSingletons(t *testing.T) {
	c := New()
	c.AddClass(nil)
	c.AddClass([]*network.Latch{{}})
	if c.NumClasses() != 0 {
		t.Fatal("singleton classes must be ignored")
	}
}

func TestClassOfOutput(t *testing.T) {
	n, c, outs := rig(t)
	if id := c.ClassOfOutput(n, outs[0]); id != 0 {
		t.Fatalf("ra0 class = %d", id)
	}
	if id := c.ClassOfOutput(n, outs[2]); id != 1 {
		t.Fatalf("rb0 class = %d", id)
	}
	if id := c.ClassOfOutput(n, n.PIs[0]); id != -1 {
		t.Fatal("PI must have no class")
	}
}

func TestDCOverPairsOnlyWithinClass(t *testing.T) {
	n, c, outs := rig(t)
	dc := c.DCOver(n, outs)
	if dc == nil {
		t.Fatal("expected a DC cover")
	}
	// Exactly 2 pairs × 2 cubes each.
	if len(dc.Cubes) != 4 {
		t.Fatalf("%d cubes, want 4:\n%v", len(dc.Cubes), dc)
	}
	// DC must contain (ra0 ⊕ ra1) but nothing relating ra* to rb*.
	eval := func(bits ...bool) bool { return dc.Eval(bits) }
	if !eval(true, false, true, true) { // ra0≠ra1
		t.Fatal("ra0⊕ra1 must be DC")
	}
	if !eval(false, false, true, false) { // rb0≠rb1
		t.Fatal("rb0⊕rb1 must be DC")
	}
	if eval(true, true, false, false) { // classes differ but internally equal
		t.Fatal("cross-class difference must NOT be DC")
	}
}

func TestDCOverNilWithoutPairs(t *testing.T) {
	n, c, outs := rig(t)
	// Only one member of each class in the variable list.
	if dc := c.DCOver(n, []*network.Node{outs[0], outs[2]}); dc != nil {
		t.Fatalf("no same-class pair, expected nil, got %v", dc)
	}
}

func TestPruneDropsConsumed(t *testing.T) {
	n, c, _ := rig(t)
	// Remove ra1 from the network (simulating consumption by a forward
	// move): detach and delete.
	var ra1 *network.Latch
	for _, l := range n.Latches {
		if l.Name == "ra1" {
			ra1 = l
		}
	}
	g := n.FindNode("g")
	n.ReplaceFanin(g, ra1.Output, n.PIs[0])
	n.RemoveLatch(ra1)
	c.Prune(n)
	// Class A now has one member: no pairs remain for it.
	var raOut, rbOuts []*network.Node
	for _, l := range n.Latches {
		if l.Name == "ra0" {
			raOut = append(raOut, l.Output)
		}
		if l.Name == "rb0" || l.Name == "rb1" {
			rbOuts = append(rbOuts, l.Output)
		}
	}
	if dc := c.DCOver(n, raOut); dc != nil {
		t.Fatal("pruned class must yield no DC")
	}
	if dc := c.DCOver(n, rbOuts); dc == nil {
		t.Fatal("untouched class must still yield DC")
	}
}

func TestSimplifyNodeLocal(t *testing.T) {
	n := network.New("loc")
	a := n.AddPI("a")
	l0 := n.AddLatch("r0", a, network.V0)
	l1 := n.AddLatch("r1", a, network.V0)
	c := New()
	c.AddClass([]*network.Latch{l0, l1})
	// f = r0·r1 + r0'·a — under r0≡r1 this is r0 + r0'a = r0 + a.
	f := logic.MustParseCover(3, "11-", "0-1")
	g := n.AddLogic("g", []*network.Node{l0.Output, l1.Output, a}, f)
	n.AddPO("y", g)
	if !c.SimplifyNodeLocal(n, g) {
		t.Fatal("local simplification must fire")
	}
	if g.Func.NumLits() > 2 {
		t.Fatalf("not simplified enough: %v", g.Func)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// Care behaviour (r0 == r1) preserved.
	for _, r := range []bool{false, true} {
		for _, av := range []bool{false, true} {
			assign := make([]bool, len(g.Fanins))
			for i, fi := range g.Fanins {
				switch fi {
				case l0.Output, l1.Output:
					assign[i] = r
				default:
					assign[i] = av
				}
			}
			want := r || av
			if g.Func.Eval(assign) != want {
				t.Fatalf("care point r=%v a=%v wrong", r, av)
			}
		}
	}
}

func TestSimplifyNodeLocalNoPairsNoChange(t *testing.T) {
	n := network.New("noc")
	a := n.AddPI("a")
	l0 := n.AddLatch("r0", a, network.V0)
	c := New()
	f := logic.MustParseCover(2, "11")
	g := n.AddLogic("g", []*network.Node{l0.Output, a}, f)
	n.AddPO("y", g)
	if c.SimplifyNodeLocal(n, g) {
		t.Fatal("no class pairs: must not claim improvement")
	}
}
