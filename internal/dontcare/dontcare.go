// Package dontcare maintains retiming-induced state-register equivalence
// classes and materializes them as don't-care covers (DCret) for two-level
// simplification — the central bookkeeping of the paper: forward retiming a
// register across its fanout stem creates registers R1, R2, … that must be
// equal in all valid operation, so (Ri ⊕ Rj) is a don't-care condition.
// No reachability computation is needed to obtain these don't cares.
package dontcare

import (
	"repro/internal/logic"
	"repro/internal/network"
)

// Classes groups registers into retiming-induced equivalence classes.
type Classes struct {
	classOf map[*network.Latch]int
	sets    [][]*network.Latch
}

// New returns an empty class collection.
func New() *Classes {
	return &Classes{classOf: make(map[*network.Latch]int)}
}

// AddClass registers a new equivalence class (the latches created by one
// fanout-stem split). Classes with fewer than two members are ignored.
func (c *Classes) AddClass(latches []*network.Latch) {
	if len(latches) < 2 {
		return
	}
	id := len(c.sets)
	c.sets = append(c.sets, append([]*network.Latch(nil), latches...))
	for _, l := range latches {
		c.classOf[l] = id
	}
}

// NumClasses returns the number of recorded classes.
func (c *Classes) NumClasses() int { return len(c.sets) }

// Prune drops class members that no longer exist in the network (e.g.
// consumed by forward retiming across gates).
func (c *Classes) Prune(n *network.Network) {
	alive := make(map[*network.Latch]bool, len(n.Latches))
	for _, l := range n.Latches {
		alive[l] = true
	}
	for id, set := range c.sets {
		var keep []*network.Latch
		for _, l := range set {
			if alive[l] {
				keep = append(keep, l)
			} else {
				delete(c.classOf, l)
			}
		}
		c.sets[id] = keep
	}
}

// ClassOfOutput returns the class id of a latch-output node, or -1.
func (c *Classes) ClassOfOutput(n *network.Network, node *network.Node) int {
	if node.Kind != network.KindLatchOut {
		return -1
	}
	l := n.LatchOfOutput(node)
	if l == nil {
		return -1
	}
	if id, ok := c.classOf[l]; ok {
		return id
	}
	return -1
}

// DCOver builds the DCret cover over an ordered variable list: variable i
// corresponds to vars[i]. For every pair of variables whose nodes are
// same-class register outputs, the cubes of (xi ⊕ xj) are added.
// Returns nil when no pair exists.
func (c *Classes) DCOver(n *network.Network, vars []*network.Node) *logic.Cover {
	ids := make([]int, len(vars))
	any := false
	for i, v := range vars {
		ids[i] = c.ClassOfOutput(n, v)
	}
	dc := logic.NewCover(len(vars))
	for i := 0; i < len(vars); i++ {
		if ids[i] < 0 {
			continue
		}
		for j := i + 1; j < len(vars); j++ {
			if ids[j] != ids[i] {
				continue
			}
			any = true
			c1 := logic.NewCube(len(vars))
			c1.SetLit(i, logic.LitPos)
			c1.SetLit(j, logic.LitNeg)
			dc.Add(c1)
			c2 := logic.NewCube(len(vars))
			c2.SetLit(i, logic.LitNeg)
			c2.SetLit(j, logic.LitPos)
			dc.Add(c2)
		}
	}
	if !any {
		return nil
	}
	return dc
}

// SimplifyNodeLocal minimizes one node's function against the DCret cubes
// expressible over its own fanins. Returns true if the node was improved.
func (c *Classes) SimplifyNodeLocal(n *network.Network, v *network.Node) bool {
	if v.Kind != network.KindLogic {
		return false
	}
	dc := c.DCOver(n, v.Fanins)
	if dc == nil {
		return false
	}
	s := logic.Simplify(v.Func, dc)
	if s.NumLits() < v.Func.NumLits() ||
		(s.NumLits() == v.Func.NumLits() && len(s.Cubes) < len(v.Func.Cubes)) {
		n.SetFunction(v, v.Fanins, s)
		n.TrimFanins(v)
		return true
	}
	return false
}
