package mapper

import (
	"testing"

	"repro/internal/algebraic"
	"repro/internal/genlib"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/seqverify"
	"repro/internal/sim"
	"repro/internal/timing"
)

func subjectAndInv(t *testing.T) *network.Network {
	t.Helper()
	// y = NOT(a AND b) as INV(AND2): mapper should find nand2 via the
	// 2-node cut.
	n := network.New("na")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g := n.AddLogic("g", []*network.Node{a, b}, logic.MustParseCover(2, "11"))
	h := n.AddLogic("h", []*network.Node{g}, logic.MustParseCover(1, "0"))
	n.AddPO("y", h)
	return n
}

func TestMapFindsComplexGate(t *testing.T) {
	n := subjectAndInv(t)
	lib := genlib.Lib2()
	m, err := MapDelay(n, lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.NumLogicNodes() != 1 {
		t.Fatalf("mapped to %d gates, want 1 (nand2)", m.NumLogicNodes())
	}
	var gate string
	for _, v := range m.Nodes() {
		if v.Kind == network.KindLogic {
			gate = v.Gate.GateName()
		}
	}
	if gate != "nand2" {
		t.Fatalf("gate = %s, want nand2", gate)
	}
	if err := sim.RandomEquivalent(n, m, 0, 100, 1); err != nil {
		t.Fatalf("mapping changed function: %v", err)
	}
}

func TestMapAOI(t *testing.T) {
	// (a·b + c)' built from primitives must map into a single aoi21.
	n := network.New("aoi")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	g1 := n.AddLogic("g1", []*network.Node{a, b}, logic.MustParseCover(2, "11"))
	g2 := n.AddLogic("g2", []*network.Node{g1, c}, logic.MustParseCover(2, "1-", "-1"))
	g3 := n.AddLogic("g3", []*network.Node{g2}, logic.MustParseCover(1, "0"))
	n.AddPO("y", g3)
	m, err := MapDelay(n, genlib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLogicNodes() != 1 {
		t.Fatalf("mapped to %d gates, want 1 (aoi21)", m.NumLogicNodes())
	}
	if err := sim.RandomEquivalent(n, m, 0, 100, 2); err != nil {
		t.Fatal(err)
	}
}

func TestMapSequentialPreservesBehaviour(t *testing.T) {
	// 2-bit counter through full optimize + map.
	n := network.New("cnt")
	en := n.AddPI("en")
	l0 := n.AddLatch("s0", nil, network.V0)
	l1 := n.AddLatch("s1", nil, network.V0)
	d0 := n.AddLogic("d0", []*network.Node{l0.Output, en}, logic.MustParseCover(2, "10", "01"))
	t0 := n.AddLogic("t0", []*network.Node{l0.Output, en}, logic.MustParseCover(2, "11"))
	d1 := n.AddLogic("d1", []*network.Node{l1.Output, t0}, logic.MustParseCover(2, "10", "01"))
	cy := n.AddLogic("cy", []*network.Node{l1.Output, l0.Output}, logic.MustParseCover(2, "11"))
	l0.Driver = d0
	l1.Driver = d1
	n.AddPO("carry", cy)
	ref := n.Clone()
	if err := algebraic.OptimizeDelay(n); err != nil {
		t.Fatal(err)
	}
	m, err := MapDelay(n, genlib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	if err := seqverify.Equivalent(ref, m, seqverify.Options{}); err != nil {
		t.Fatalf("optimize+map broke the counter: %v", err)
	}
	// All logic must carry gate annotations.
	for _, v := range m.Nodes() {
		if v.Kind == network.KindLogic && v.Gate == nil {
			t.Fatalf("unmapped node %s", v.Name)
		}
	}
	if Area(m, genlib.Lib2()) <= 0 {
		t.Fatal("area must be positive")
	}
}

func TestMapConstants(t *testing.T) {
	n := network.New("konst")
	_ = n.AddPI("a")
	one := n.AddConst("k1", true)
	zero := n.AddConst("k0", false)
	n.AddPO("o1", one)
	n.AddPO("o0", zero)
	m, err := MapDelay(n, genlib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(m)
	out := s.StepBits([]bool{false})
	if !out[0] || out[1] {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestMappedDelayReported(t *testing.T) {
	n := subjectAndInv(t)
	lib := genlib.Lib2()
	m, err := MapDelay(n, lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := timing.Period(m, timing.MappedDelay{N: m})
	if err != nil {
		t.Fatal(err)
	}
	// One nand2: delay ~1.0-1.05.
	if p < 0.9 || p > 1.2 {
		t.Fatalf("mapped period %v out of range for a single nand2", p)
	}
}

func TestMapDeepNetworkEquivalence(t *testing.T) {
	// A random-ish 4-input function through optimize+map.
	n := network.New("deep")
	var pis []*network.Node
	for _, s := range []string{"a", "b", "c", "d"} {
		pis = append(pis, n.AddPI(s))
	}
	f := logic.MustParseCover(4, "110-", "0-11", "1-01", "0110")
	g := n.AddLogic("g", pis, f)
	n.AddPO("y", g)
	ref := n.Clone()
	if err := algebraic.OptimizeDelay(n); err != nil {
		t.Fatal(err)
	}
	m, err := MapDelay(n, genlib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check over all 16 input patterns.
	sref, _ := sim.New(ref)
	smap, _ := sim.New(m)
	for mt := 0; mt < 16; mt++ {
		bits := []bool{mt&1 != 0, mt&2 != 0, mt&4 != 0, mt&8 != 0}
		if sref.StepBits(bits)[0] != smap.StepBits(bits)[0] {
			t.Fatalf("mapped function differs at %04b", mt)
		}
	}
}
