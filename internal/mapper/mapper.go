// Package mapper implements delay-oriented technology mapping of a
// two-input decomposed subject network onto a genlib library, using
// 4-feasible cut enumeration and dynamic programming over arrival times
// (the "mapped to produce minimum delay circuits" step of the paper's
// experimental flows). The result is a new network whose logic nodes carry
// bound-gate annotations consumed by timing.MappedDelay.
package mapper

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
)

const (
	maxCutLeaves   = 4
	maxCutsPerNode = 16
)

type cut struct {
	leaves []*network.Node // sorted by ID
	tt     uint16
}

func cutKey(leaves []*network.Node) string {
	k := ""
	for _, l := range leaves {
		k += fmt.Sprintf("%d,", l.ID)
	}
	return k
}

// mergeLeaves unions two sorted leaf sets, returning nil if above limit.
func mergeLeaves(a, b []*network.Node) []*network.Node {
	out := make([]*network.Node, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].ID < b[j].ID):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].ID < a[i].ID:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > maxCutLeaves {
			return nil
		}
	}
	return out
}

// coneTT evaluates the truth table of v over the cut leaves.
func coneTT(v *network.Node, leaves []*network.Node) (uint16, bool) {
	idx := make(map[*network.Node]int, len(leaves))
	for i, l := range leaves {
		idx[l] = i
	}
	// Projection patterns for up to 4 variables over 16 minterms.
	proj := [4]uint16{0xAAAA, 0xCCCC, 0xF0F0, 0xFF00}
	memo := make(map[*network.Node]uint16)
	var eval func(x *network.Node) (uint16, bool)
	eval = func(x *network.Node) (uint16, bool) {
		if i, ok := idx[x]; ok {
			return proj[i], true
		}
		if t, ok := memo[x]; ok {
			return t, true
		}
		if x.Kind != network.KindLogic {
			return 0, false // cone escapes the cut
		}
		fanTT := make([]uint16, len(x.Fanins))
		for i, fi := range x.Fanins {
			t, ok := eval(fi)
			if !ok {
				return 0, false
			}
			fanTT[i] = t
		}
		var out uint16
		for _, c := range x.Func.Cubes {
			cube := uint16(0xFFFF)
			for pin := 0; pin < c.N; pin++ {
				switch c.Lit(pin) {
				case logic.LitPos:
					cube &= fanTT[pin]
				case logic.LitNeg:
					cube &= ^fanTT[pin]
				case logic.LitNone:
					cube = 0
				}
			}
			out |= cube
		}
		memo[x] = out
		return out, true
	}
	return eval(v)
}

type choice struct {
	cut   cut
	match genlib.Match
	arr   float64
	area  float64
}

// MapDelay maps the network for minimum delay, returning a fresh mapped
// network. The input must be decomposed (every node function must be
// coverable by 4-feasible cuts over the library; algebraic.OptimizeDelay
// produces suitable subject graphs).
func MapDelay(n *network.Network, lib *genlib.Library) (*network.Network, error) {
	return MapDelayT(n, lib, nil)
}

// MapDelayT is MapDelay with tracing: a "mapper.map_delay" span counting
// the cuts enumerated and the (cut, gate) candidates tried by the DP.
func MapDelayT(n *network.Network, lib *genlib.Library, tr *obs.Tracer) (*network.Network, error) {
	return MapDelayCtx(context.Background(), n, lib, tr)
}

// MapDelayCtx is MapDelayT with cancellation: the per-node cut-enumeration
// DP checks ctx at every node and returns a typed guard budget error once
// the deadline passes.
func MapDelayCtx(ctx context.Context, n *network.Network, lib *genlib.Library, tr *obs.Tracer) (*network.Network, error) {
	sp := tr.Begin("mapper.map_delay")
	defer sp.End()
	cutsEnumerated, candidatesTried := 0, 0
	m, err := mapDelay(ctx, n, lib, &cutsEnumerated, &candidatesTried)
	sp.Add("mapper_cuts", int64(cutsEnumerated))
	sp.Add("mapper_candidates", int64(candidatesTried))
	return m, err
}

func mapDelay(ctx context.Context, n *network.Network, lib *genlib.Library, cutsEnumerated, candidatesTried *int) (*network.Network, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	cuts := make(map[*network.Node][]cut)
	arr := make(map[*network.Node]float64)
	best := make(map[*network.Node]*choice)

	trivial := func(v *network.Node) cut {
		return cut{leaves: []*network.Node{v}, tt: 0xAAAA}
	}
	for _, p := range n.PIs {
		cuts[p] = []cut{trivial(p)}
		arr[p] = 0
	}
	for _, l := range n.Latches {
		cuts[l.Output] = []cut{trivial(l.Output)}
		arr[l.Output] = 0
	}

	for _, v := range order {
		if cerr := guard.Check(ctx, "mapper.map_delay"); cerr != nil {
			return nil, fmt.Errorf("mapper: cut enumeration interrupted: %w", cerr)
		}
		// Constant nodes map directly to tie cells.
		if len(v.Fanins) == 0 {
			tt := uint16(0)
			if !v.Func.IsZeroFunction() {
				tt = 0xFFFF
			}
			var m []genlib.Match
			if tt == 0 {
				m = lib.Match(0, 0)
			} else {
				m = lib.Match(1, 0)
			}
			if len(m) == 0 {
				return nil, fmt.Errorf("mapper: library lacks tie cells")
			}
			best[v] = &choice{cut: cut{leaves: nil, tt: tt}, match: m[0], arr: 0, area: m[0].G.Area}
			arr[v] = 0
			cuts[v] = []cut{trivial(v)}
			continue
		}
		// Enumerate cuts: cross-merge fanin cuts.
		seen := map[string]bool{}
		var cand []cut
		addCut := func(leaves []*network.Node) {
			if leaves == nil {
				return
			}
			k := cutKey(leaves)
			if seen[k] {
				return
			}
			seen[k] = true
			tt, ok := coneTT(v, leaves)
			if !ok {
				return
			}
			*cutsEnumerated++
			cand = append(cand, cut{leaves: leaves, tt: tt})
		}
		switch len(v.Fanins) {
		case 1:
			for _, c0 := range cuts[v.Fanins[0]] {
				addCut(c0.leaves)
			}
		case 2:
			for _, c0 := range cuts[v.Fanins[0]] {
				for _, c1 := range cuts[v.Fanins[1]] {
					addCut(mergeLeaves(c0.leaves, c1.leaves))
				}
			}
		default:
			// Wider nodes: immediate-fanin cut only.
			leaves := make([]*network.Node, len(v.Fanins))
			copy(leaves, v.Fanins)
			sort.Slice(leaves, func(i, j int) bool { return leaves[i].ID < leaves[j].ID })
			if len(leaves) <= maxCutLeaves {
				addCut(leaves)
			}
		}
		if len(cand) == 0 {
			return nil, fmt.Errorf("mapper: no feasible cut at node %s", v.Name)
		}
		// DP: choose the cut+gate minimizing arrival (area tie-break).
		var bc *choice
		for _, c := range cand {
			nLeaves := len(c.leaves)
			// Compact the tt to the significant variables only.
			for _, m := range lib.Match(truncTT(c.tt, nLeaves), nLeaves) {
				*candidatesTried++
				a := 0.0
				for li, leaf := range c.leaves {
					la := arr[leaf] + m.G.PinDelays[m.PinFor[li]]
					if la > a {
						a = la
					}
				}
				if bc == nil || a < bc.arr-1e-12 ||
					(a < bc.arr+1e-12 && m.G.Area < bc.area) {
					bc = &choice{cut: c, match: m, arr: a, area: m.G.Area}
				}
			}
		}
		if bc == nil {
			return nil, fmt.Errorf("mapper: no library match at node %s (function %v)", v.Name, v.Func)
		}
		best[v] = bc
		arr[v] = bc.arr
		// Keep a bounded cut set for consumers (prefer few leaves, then
		// early arrival of the mapped node).
		sort.SliceStable(cand, func(i, j int) bool {
			return len(cand[i].leaves) < len(cand[j].leaves)
		})
		if len(cand) > maxCutsPerNode-1 {
			cand = cand[:maxCutsPerNode-1]
		}
		cuts[v] = append([]cut{trivial(v)}, cand...)
	}

	return extract(n, lib, best)
}

// truncTT reduces a 4-var table to n significant variables.
func truncTT(tt uint16, n int) uint16 {
	bits := 1 << uint(n)
	mask := uint16(1)<<uint(bits) - 1
	if bits >= 16 {
		mask = 0xFFFF
	}
	return tt & mask
}

// extract builds the mapped network from the chosen covers.
func extract(n *network.Network, lib *genlib.Library, best map[*network.Node]*choice) (*network.Network, error) {
	m := network.New(n.Name + "_mapped")
	old2new := make(map[*network.Node]*network.Node)
	for _, p := range n.PIs {
		old2new[p] = m.AddPI(p.Name)
	}
	type latchPair struct {
		oldL *network.Latch
		newL *network.Latch
	}
	var lpairs []latchPair
	for _, l := range n.Latches {
		nl := m.AddLatch(l.Output.Name, nil, l.Init)
		old2new[l.Output] = nl.Output
		lpairs = append(lpairs, latchPair{l, nl})
	}
	// Mark required nodes from the sinks.
	required := make(map[*network.Node]bool)
	var need func(v *network.Node)
	need = func(v *network.Node) {
		if v.IsSource() || required[v] {
			return
		}
		required[v] = true
		bc := best[v]
		if bc == nil {
			return
		}
		for _, leaf := range bc.cut.leaves {
			need(leaf)
		}
	}
	for _, p := range n.POs {
		need(p.Driver)
	}
	for _, l := range n.Latches {
		need(l.Driver)
	}
	// Materialize required nodes in topological order.
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, v := range order {
		if !required[v] {
			continue
		}
		bc := best[v]
		if bc == nil {
			return nil, fmt.Errorf("mapper: required node %s has no mapping", v.Name)
		}
		fanins := make([]*network.Node, len(bc.cut.leaves))
		for i, leaf := range bc.cut.leaves {
			nf, ok := old2new[leaf]
			if !ok {
				return nil, fmt.Errorf("mapper: leaf %s of %s not materialized", leaf.Name, v.Name)
			}
			fanins[i] = nf
		}
		// Node function: gate function re-expressed over fanin order.
		// Gate pin bc.match.PinFor[i] is driven by fanin i.
		gf := bc.match.G.Func
		varMap := make([]int, gf.N)
		for i := 0; i < len(fanins); i++ {
			varMap[bc.match.PinFor[i]] = i
		}
		f := gf.Remap(len(fanins), varMap)
		node := m.AddLogic(v.Name, fanins, f)
		node.Gate = &genlib.Bound{G: bc.match.G, PinOf: bc.match.PinFor}
		old2new[v] = node
	}
	for _, p := range n.POs {
		m.AddPO(p.Name, old2new[p.Driver])
	}
	for _, lp := range lpairs {
		lp.newL.Driver = old2new[lp.oldL.Driver]
	}
	if err := m.Check(); err != nil {
		return nil, fmt.Errorf("mapper: mapped network invalid: %w", err)
	}
	return m, nil
}

// Area reports the mapped area: bound-gate areas (literal count for any
// unmapped logic as a fallback) plus the library's per-register area.
func Area(n *network.Network, lib *genlib.Library) float64 {
	total := float64(len(n.Latches)) * lib.RegisterArea
	for _, v := range n.Nodes() {
		if v.Kind != network.KindLogic {
			continue
		}
		if v.Gate != nil {
			total += v.Gate.GateArea()
		} else {
			total += float64(v.Func.NumLits())
		}
	}
	return total
}
