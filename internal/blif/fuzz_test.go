package blif

import (
	"strings"
	"testing"
)

// FuzzRead asserts the parser's two safety properties: it never panics on
// arbitrary input, and every network it does accept satisfies the full
// structural invariant (network.Check) and survives a Write/re-Read round
// trip with the same shape. Corpus regressions from the fuzzer belong in
// TestReadMalformed below.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"", ".model m\n.end\n",
		".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
		".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n-0 1\n.end\n",
		".model m\n.inputs a\n.outputs y\n.latch q y 0\n.names a q\n1 1\n.end\n",
		".model m\n.inputs a\n.outputs y\n.latch a y 3\n.end\n",
		".model m\n.outputs y\n.names y\n1\n.end\n",
		".model m\n.inputs a\n.outputs y\n.names a y\n\\\n1 1\n.end\n",
		".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
		".names a",
		".latch",
		".model\n.model\n.end",
		".model m\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseString(src)
		if err != nil {
			return
		}
		if cerr := n.Check(); cerr != nil {
			t.Fatalf("accepted network violates invariants: %v\ninput:\n%s", cerr, src)
		}
		var sb strings.Builder
		if werr := Write(&sb, n); werr != nil {
			t.Fatalf("accepted network unwritable: %v\ninput:\n%s", werr, src)
		}
		n2, rerr := ParseString(sb.String())
		if rerr != nil {
			t.Fatalf("round trip unreadable: %v\nwritten:\n%s", rerr, sb.String())
		}
		if cerr := n2.Check(); cerr != nil {
			t.Fatalf("round-tripped network invalid: %v", cerr)
		}
		a, b := n.Stat(), n2.Stat()
		if a != b {
			t.Fatalf("round trip changed the circuit: %v -> %v\ninput:\n%s", a, b, src)
		}
	})
}

// TestReadMalformed is the regression table for malformed constructs the
// fuzzer (and the guard layer's corruption scenarios) care about: each must
// be rejected with an error, not panic or slip through as a silently wrong
// network.
func TestReadMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"latch too few fields", ".model m\n.inputs a\n.outputs y\n.latch q\n.end\n"},
		{"latch bad init", ".model m\n.inputs a\n.outputs y\n.latch a q 7\n.names q y\n1 1\n.end\n"},
		{"latch undriven input", ".model m\n.outputs y\n.latch nosuch q 0\n.names q y\n1 1\n.end\n"},
		{"names undriven fanin", ".model m\n.outputs y\n.names ghost y\n1 1\n.end\n"},
		{"cube wrong arity", ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n"},
		{"cube bad literal", ".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n"},
		{"cube bad output", ".model m\n.inputs a\n.outputs y\n.names a y\n1 2\n.end\n"},
		{"output never defined", ".model m\n.inputs a\n.outputs y\n.end\n"},
		{"duplicate definition", ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n"},
		{"combinational cycle", ".model m\n.outputs y\n.names y y\n1 1\n.end\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := ParseString(tc.src)
			if err == nil {
				t.Fatalf("malformed input accepted: %v\n%s", n.Stat(), tc.src)
			}
		})
	}
}
