package blif

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
)

const toyBlif = `
# a 2-bit counter with enable
.model cnt2
.inputs en
.outputs carry
.latch d0 s0 0
.latch d1 s1 0
.names s0 en d0
10 1
01 1
.names s0 en t0
11 1
.names s1 t0 d1
10 1
01 1
.names s1 s0 carry
11 1
.end
`

func TestReadBasic(t *testing.T) {
	n, err := ParseString(toyBlif)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "cnt2" {
		t.Fatalf("model name %q", n.Name)
	}
	st := n.Stat()
	if st.PIs != 1 || st.POs != 1 || st.Latches != 2 || st.LogicNodes != 4 {
		t.Fatalf("stats %v", st)
	}
	s, err := sim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, false, true}
	for i, w := range want {
		if got := s.StepBits([]bool{true})[0]; got != w {
			t.Fatalf("cycle %d: carry=%v want %v", i, got, w)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	n, err := ParseString(toyBlif)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	m, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, buf.String())
	}
	if err := sim.RandomEquivalent(n, m, 0, 300, 5); err != nil {
		t.Fatalf("round trip not equivalent: %v", err)
	}
}

func TestOffsetRows(t *testing.T) {
	// .names with 0-rows defines the off-set: f = NOT(a AND b) here.
	src := `
.model offset
.inputs a b
.outputs y
.names a b y
11 0
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(n)
	for m := 0; m < 4; m++ {
		a, b := m&1 != 0, m&2 != 0
		got := s.StepBits([]bool{a, b})[0]
		if got != !(a && b) {
			t.Fatalf("NAND wrong at a=%v b=%v", a, b)
		}
	}
}

func TestConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs k1 k0
.names k1
1
.names k0
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(n)
	out := s.StepBits([]bool{true})
	if !out[0] || out[1] {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestOutOfOrderDefinitions(t *testing.T) {
	// g2 defined before its fanin g1.
	src := `
.model ooo
.inputs a b
.outputs y
.names g1 b y
11 1
.names a g1
1 1
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLogicNodes() != 2 {
		t.Fatal("wrong node count")
	}
}

func TestLatchInitVariants(t *testing.T) {
	src := `
.model li
.inputs a
.outputs y
.latch a q0 0
.latch a q1 1
.latch a q2 3
.latch a q3
.names q0 q1 q2 q3 y
1111 1
.end
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []network.Value{network.V0, network.V1, network.VX, network.VX}
	for i, l := range n.Latches {
		if l.Init != want[i] {
			t.Fatalf("latch %d init %v want %v", i, l.Init, want[i])
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		".model x\n.inputs a\n.outputs y\n.names a y\n11 1\n.end",     // cube too wide
		".model x\n.inputs a\n.outputs y\n.end",                       // undefined output
		".model x\n.inputs a\n.outputs a\n1 1\n.end",                  // row outside .names
		".model x\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end", // mixed on/off rows
		".model x\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end",    // dup input
		".model x\n.inputs a\n.outputs y\n.names y y\n1 1\n.end",      // self-cycle
	}
	for i, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
}

func TestContinuationAndComments(t *testing.T) {
	src := ".model c\n.inputs \\\n a b # trailing\n.outputs y\n.names a b y\n11 1\n.end\n"
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PIs) != 2 {
		t.Fatalf("continuation line mishandled: %d PIs", len(n.PIs))
	}
}

func TestPOBufferEmitted(t *testing.T) {
	// A PO driven directly by a PI requires a pass-through on write.
	src := ".model p\n.inputs a\n.outputs a\n.end"
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	m, err := ParseString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RandomEquivalent(n, m, 0, 50, 2); err != nil {
		t.Fatal(err)
	}
}
