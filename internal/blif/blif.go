// Package blif reads and writes the Berkeley Logic Interchange Format
// subset used by SIS-era tools: .model/.inputs/.outputs/.latch/.names/.end.
// Single-output .names tables with on-set ("1") or off-set ("0") rows are
// supported, as are 3- and 5-token .latch lines with initial values 0/1/2/3.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/network"
)

type namesEntry struct {
	inputs []string
	output string
	rows   []row
	line   int
}

type row struct {
	cube string
	out  byte
}

type latchEntry struct {
	input, output string
	init          network.Value
	line          int
}

// Read parses a BLIF model into a network.
func Read(r io.Reader) (*network.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)

	var (
		modelName string
		inputs    []string
		outputs   []string
		names     []*namesEntry
		latches   []latchEntry
		cur       *namesEntry
		lineNo    int
	)
	nextLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.Index(line, "#"); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			for strings.HasSuffix(line, "\\") {
				line = strings.TrimSuffix(line, "\\")
				if !sc.Scan() {
					break
				}
				lineNo++
				cont := sc.Text()
				if i := strings.Index(cont, "#"); i >= 0 {
					cont = cont[:i]
				}
				line += " " + strings.TrimSpace(cont)
			}
			return line, true
		}
		return "", false
	}

	for {
		line, ok := nextLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, ".model"):
			if len(fields) > 1 {
				modelName = fields[1]
			}
			cur = nil
		case strings.HasPrefix(line, ".inputs"):
			inputs = append(inputs, fields[1:]...)
			cur = nil
		case strings.HasPrefix(line, ".outputs"):
			outputs = append(outputs, fields[1:]...)
			cur = nil
		case strings.HasPrefix(line, ".latch"):
			cur = nil
			le := latchEntry{line: lineNo, init: network.VX}
			switch len(fields) {
			case 3:
				le.input, le.output = fields[1], fields[2]
			case 4:
				le.input, le.output = fields[1], fields[2]
				iv, err := parseInit(fields[3])
				if err != nil {
					return nil, fmt.Errorf("blif:%d: %v", lineNo, err)
				}
				le.init = iv
			case 6:
				le.input, le.output = fields[1], fields[2]
				iv, err := parseInit(fields[5])
				if err != nil {
					return nil, fmt.Errorf("blif:%d: %v", lineNo, err)
				}
				le.init = iv
			case 5:
				// type + control, no init
				le.input, le.output = fields[1], fields[2]
			default:
				return nil, fmt.Errorf("blif:%d: malformed .latch", lineNo)
			}
			latches = append(latches, le)
		case strings.HasPrefix(line, ".names"):
			cur = &namesEntry{line: lineNo}
			sig := fields[1:]
			if len(sig) == 0 {
				return nil, fmt.Errorf("blif:%d: .names without signals", lineNo)
			}
			cur.output = sig[len(sig)-1]
			cur.inputs = sig[:len(sig)-1]
			names = append(names, cur)
		case strings.HasPrefix(line, ".end"):
			cur = nil
		case strings.HasPrefix(line, "."):
			// Unsupported directive (.exdc, .clock, …): ignore gracefully.
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("blif:%d: table row outside .names", lineNo)
			}
			if len(cur.inputs) == 0 {
				if len(fields) != 1 || (fields[0] != "1" && fields[0] != "0") {
					return nil, fmt.Errorf("blif:%d: malformed constant row %q", lineNo, line)
				}
				cur.rows = append(cur.rows, row{cube: "", out: fields[0][0]})
				continue
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("blif:%d: malformed table row %q", lineNo, line)
			}
			if len(fields[0]) != len(cur.inputs) {
				return nil, fmt.Errorf("blif:%d: cube width %d for %d inputs",
					lineNo, len(fields[0]), len(cur.inputs))
			}
			cur.rows = append(cur.rows, row{cube: fields[0], out: fields[1][0]})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	return assemble(modelName, inputs, outputs, names, latches)
}

// parseInit accepts the BLIF initial values 0, 1, 2 (don't care) and
// 3 (unknown); the latter two both map to X. Anything else is malformed.
func parseInit(s string) (network.Value, error) {
	switch s {
	case "0":
		return network.V0, nil
	case "1":
		return network.V1, nil
	case "2", "3":
		return network.VX, nil
	default:
		return network.VX, fmt.Errorf("invalid latch initial value %q", s)
	}
}

func assemble(modelName string, inputs, outputs []string, names []*namesEntry, latches []latchEntry) (*network.Network, error) {
	n := network.New(modelName)
	sig := make(map[string]*network.Node)
	for _, in := range inputs {
		if _, dup := sig[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", in)
		}
		sig[in] = n.AddPI(in)
	}
	type pendingLatch struct {
		latch *network.Latch
		input string
	}
	var pend []pendingLatch
	for _, le := range latches {
		if _, dup := sig[le.output]; dup {
			return nil, fmt.Errorf("blif: latch output %q already defined", le.output)
		}
		l := n.AddLatch(le.output, nil, le.init)
		sig[le.output] = l.Output
		pend = append(pend, pendingLatch{l, le.input})
	}
	// Build .names bodies in dependency order.
	remaining := make([]*namesEntry, len(names))
	copy(remaining, names)
	defined := make(map[string]bool)
	for s := range sig {
		defined[s] = true
	}
	for len(remaining) > 0 {
		progress := false
		var next []*namesEntry
		for _, e := range remaining {
			ready := true
			for _, in := range e.inputs {
				if !defined[in] {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, e)
				continue
			}
			node, err := buildNames(n, sig, e)
			if err != nil {
				return nil, err
			}
			if _, dup := sig[e.output]; dup {
				return nil, fmt.Errorf("blif:%d: signal %q multiply defined", e.line, e.output)
			}
			sig[e.output] = node
			defined[e.output] = true
			progress = true
		}
		remaining = next
		if !progress {
			return nil, fmt.Errorf("blif: unresolved or cyclic definitions (%d tables left, first output %q)",
				len(remaining), remaining[0].output)
		}
	}
	for _, p := range pend {
		d, ok := sig[p.input]
		if !ok {
			return nil, fmt.Errorf("blif: latch input %q undefined", p.input)
		}
		p.latch.Driver = d
	}
	for _, out := range outputs {
		d, ok := sig[out]
		if !ok {
			return nil, fmt.Errorf("blif: output %q undefined", out)
		}
		n.AddPO(out, d)
	}
	if err := n.Check(); err != nil {
		return nil, fmt.Errorf("blif: assembled network invalid: %w", err)
	}
	return n, nil
}

func buildNames(n *network.Network, sig map[string]*network.Node, e *namesEntry) (*network.Node, error) {
	fanins := make([]*network.Node, len(e.inputs))
	for i, in := range e.inputs {
		fanins[i] = sig[in]
	}
	on := logic.NewCover(len(e.inputs))
	off := logic.NewCover(len(e.inputs))
	sawOn, sawOff := false, false
	for _, r := range e.rows {
		c, err := logic.ParseCube(padCube(r.cube, len(e.inputs)))
		if err != nil {
			return nil, fmt.Errorf("blif:%d: %v", e.line, err)
		}
		switch r.out {
		case '1':
			on.Add(c)
			sawOn = true
		case '0':
			off.Add(c)
			sawOff = true
		default:
			return nil, fmt.Errorf("blif:%d: output value %q unsupported", e.line, r.out)
		}
	}
	if sawOn && sawOff {
		return nil, fmt.Errorf("blif:%d: mixed on-set and off-set rows", e.line)
	}
	f := on
	if sawOff {
		f = off.Complement()
	}
	// No rows at all: constant 0 (SIS convention).
	return n.AddLogic(e.output, fanins, f), nil
}

func padCube(c string, n int) string {
	if len(c) == n {
		return c
	}
	return c + strings.Repeat("-", n-len(c))
}

// Write emits the network as BLIF. Logic nodes are written in topological
// order; primary outputs whose name differs from their driver get a buffer.
func Write(w io.Writer, n *network.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", n.Name)
	fmt.Fprint(bw, ".inputs")
	for _, p := range n.PIs {
		fmt.Fprintf(bw, " %s", p.Name)
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, p := range n.POs {
		fmt.Fprintf(bw, " %s", p.Name)
	}
	fmt.Fprintln(bw)
	for _, l := range n.Latches {
		init := "3"
		switch l.Init {
		case network.V0:
			init = "0"
		case network.V1:
			init = "1"
		}
		fmt.Fprintf(bw, ".latch %s %s %s\n", l.Driver.Name, l.Output.Name, init)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	for _, v := range order {
		fmt.Fprint(bw, ".names")
		for _, fi := range v.Fanins {
			fmt.Fprintf(bw, " %s", fi.Name)
		}
		fmt.Fprintf(bw, " %s\n", v.Name)
		if len(v.Fanins) == 0 {
			if !v.Func.IsZeroFunction() {
				fmt.Fprintln(bw, "1")
			}
			continue
		}
		for _, c := range v.Func.Cubes {
			fmt.Fprintf(bw, "%s 1\n", c.String())
		}
	}
	// Buffers for POs whose name differs from the driving signal.
	for _, p := range n.POs {
		if p.Name != p.Driver.Name {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", p.Driver.Name, p.Name)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// ParseString is a convenience wrapper for tests and embedded circuits.
func ParseString(s string) (*network.Network, error) {
	return Read(strings.NewReader(s))
}
