// Package sat implements a small dependency-free CDCL SAT solver: the
// proof engine behind sequential sweeping (internal/sweep). Where the BDD
// engine (internal/bdd, internal/reach) enumerates state spaces implicitly
// and hits a wall around 32 latches, a CDCL solver answers one question at
// a time — "can these two signals ever differ under these constraints?" —
// and scales with the difficulty of the query, not the size of the state
// space.
//
// The solver is a faithful miniature of the MiniSat lineage:
//
//   - unit propagation over two watched literals per clause, with a
//     blocker literal per watcher to skip satisfied-clause visits;
//   - first-UIP conflict analysis producing one learned clause per
//     conflict, minimized by recursive reason-side subsumption;
//   - VSIDS variable activity with exponential decay and phase saving;
//   - Luby-sequence restarts;
//   - incremental solving under assumptions: Solve(assumps...) pushes the
//     assumptions as pseudo-decisions, so thousands of per-candidate
//     sweep queries reuse one solver instance and everything it has
//     learned.
//
// Learned clauses are periodically reduced by activity (locked and binary
// clauses are kept), bounding memory across long query streams.
package sat

import "fmt"

// Var is a 0-based variable index.
type Var int32

// Lit is a literal: variable<<1 | sign, sign 1 meaning negated. This is
// the same packing as aig.Lit, so Tseitin emission is a shift away.
type Lit int32

// Pos returns the positive literal of v.
func Pos(v Var) Lit { return Lit(v << 1) }

// Neg returns the negative literal of v.
func Neg(v Var) Lit { return Lit(v<<1 | 1) }

// MkLit builds a literal from a variable and a sign.
func MkLit(v Var, neg bool) Lit {
	if neg {
		return Neg(v)
	}
	return Pos(v)
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a three-valued assignment.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// Status is a Solve verdict.
type Status int8

const (
	// Unknown means the conflict budget ran out before a verdict.
	Unknown Status = iota
	// Sat means a satisfying assignment was found (read it with Value).
	Sat
	// Unsat means the clauses plus assumptions are unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats counts solver work across the lifetime of the instance.
type Stats struct {
	Solves       int64
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learned      int64 // learned clauses added
	Restarts     int64
}

const noReason = int32(-1)

// clause is one disjunction. lits[0] and lits[1] are the watched
// literals; for a clause acting as the reason of an implied literal,
// that literal sits at lits[0].
type clause struct {
	lits    []Lit
	act     float64
	learnt  bool
	deleted bool
}

// watcher pairs a clause reference with a blocker literal: if the blocker
// is already true the clause is satisfied and need not be visited.
type watcher struct {
	cref    int32
	blocker Lit
}

// Solver is an incremental CDCL solver. The zero value is not usable; use
// New.
type Solver struct {
	clauses []clause
	watches [][]watcher // indexed by Lit

	assign   []lbool // indexed by Var
	model    []lbool // snapshot of assign at the last Sat verdict
	level    []int32 // decision level per assigned var
	reason   []int32 // clause ref per assigned var, noReason for decisions
	polarity []bool  // phase saving: last assigned sign per var

	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     []Var   // binary heap on activity (max at root)
	heapPos  []int32 // position in heap per var, -1 if absent

	claInc float64

	ok bool // false once a top-level conflict is found

	// MaxConflicts bounds one Solve call (0 = unbounded); exceeding it
	// returns Unknown.
	MaxConflicts int64

	Stats Stats

	// Conflict-analysis scratch. seen marks: 1 conflict-side pending,
	// 2 member of the learned clause, 3 proven redundant.
	seen     []byte
	analyzeT []Lit // minimization DFS stack
	marked   []Var // vars marked 3 during one redundant() call
	toClear  []Var // vars marked 3 that survived a successful call

	learntLimit int
	nLearnt     int
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1, ok: true, learntLimit: 8192}
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of live problem clauses plus learned
// clauses.
func (s *Solver) NumClauses() int {
	n := 0
	for i := range s.clauses {
		if !s.clauses[i].deleted {
			n++
		}
	}
	return n
}

// NewVar creates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assign))
	s.assign = append(s.assign, lUndef)
	s.model = append(s.model, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.polarity = append(s.polarity, true) // default phase: false
	s.activity = append(s.activity, 0)
	s.heapPos = append(s.heapPos, -1)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.heapInsert(v)
	return v
}

// value returns the literal's current assignment.
func (s *Solver) value(l Lit) lbool {
	a := s.assign[l.Var()]
	if l.Sign() {
		return -a
	}
	return a
}

// Value returns the variable's value in the last Sat model.
func (s *Solver) Value(v Var) bool { return s.model[v] == lTrue }

// ValueLit returns the literal's truth in the last Sat model.
func (s *Solver) ValueLit(l Lit) bool {
	if l.Sign() {
		return s.model[l.Var()] == lFalse
	}
	return s.model[l.Var()] == lTrue
}

// AddClause adds a disjunction of literals. It returns false if the
// clause makes the formula unsatisfiable at the top level. The slice is
// copied.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if int(l.Var()) >= len(s.assign) {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], noReason)
		if s.propagate() != noReason {
			s.ok = false
			return false
		}
		return true
	}
	s.attachClause(s.pushClause(out, false))
	return true
}

func (s *Solver) pushClause(lits []Lit, learnt bool) int32 {
	cref := int32(len(s.clauses))
	s.clauses = append(s.clauses, clause{lits: lits, learnt: learnt})
	if learnt {
		s.nLearnt++
	}
	return cref
}

func (s *Solver) attachClause(cref int32) {
	c := &s.clauses[cref]
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

func (s *Solver) uncheckedEnqueue(l Lit, from int32) {
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.polarity[v] = l.Sign()
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation to fixpoint. It returns the reference
// of a conflicting clause, or noReason.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; visit clauses watching ¬p
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		confl := noReason
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.cref]
			// Normalize: the falsified watch goes to position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, watcher{w.cref, first})
			if s.value(first) == lFalse {
				confl = w.cref
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.Stats.Propagations++
			s.uncheckedEnqueue(first, w.cref)
		}
		s.watches[p] = kept
		if confl != noReason {
			return confl
		}
	}
	return noReason
}

// analyze runs first-UIP conflict analysis. It returns the learned clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int32) ([]Lit, int32) {
	learnt := []Lit{0} // slot 0 for the asserting literal
	seen := s.seen
	counter := 0
	p := Lit(-1)
	idx := len(s.trail) - 1

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != -1 {
			start = 1 // lits[0] is p itself on reason-side visits
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			seen[v] = 1
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = 0
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Minimize: drop literals whose reason chain is subsumed by the rest
	// of the clause (plus already-proven-redundant vars). The marks to
	// clear are recorded up front: the in-place filter overwrites the
	// backing array, so clearing via the filtered slice would leak marks
	// for removed literals into the next analysis.
	for _, l := range learnt[1:] {
		seen[l.Var()] = 2
		s.toClear = append(s.toClear, l.Var())
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.reason[l.Var()] == noReason || !s.redundant(l) {
			out = append(out, l)
		}
	}
	for _, v := range s.toClear {
		seen[v] = 0
	}
	s.toClear = s.toClear[:0]
	learnt = out

	// Backtrack level: the highest level among the non-asserting literals
	// (which also takes watch position 1, so the clause is watched on the
	// two highest-level literals).
	bt := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].Var()]
	}
	return learnt, bt
}

// redundant reports whether literal l is implied, through reason clauses,
// by the other literals of the learned clause. On success the vars proven
// redundant stay marked (3) for reuse by later calls within the same
// analysis; on failure every mark this call set is undone.
func (s *Solver) redundant(l Lit) bool {
	stack := append(s.analyzeT[:0], l)
	marked := s.marked[:0]
	defer func() { s.analyzeT, s.marked = stack, marked }()
	for n := 0; n < len(stack); n++ {
		v := stack[n].Var()
		c := &s.clauses[s.reason[v]]
		for _, q := range c.lits[1:] {
			qv := q.Var()
			if s.level[qv] == 0 || s.seen[qv] != 0 {
				continue // level-0 fact, clause member, or proven redundant
			}
			if s.reason[qv] == noReason {
				for _, mv := range marked {
					s.seen[mv] = 0
				}
				return false
			}
			s.seen[qv] = 3
			marked = append(marked, qv)
			stack = append(stack, q)
		}
	}
	s.toClear = append(s.toClear, marked...)
	return true
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(s.heapPos[v])
	}
}

func (s *Solver) bumpClause(cref int32) {
	c := &s.clauses[cref]
	c.act += s.claInc
	if c.act > 1e20 {
		for i := range s.clauses {
			s.clauses[i].act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) backtrackTo(level int32) {
	if s.decisionLevel() <= level {
		return
	}
	lim := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = noReason
		if s.heapPos[v] < 0 {
			s.heapInsert(v)
		}
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = lim
}

// pickBranchVar pops the highest-activity unassigned variable.
func (s *Solver) pickBranchVar() Var {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// Solve determines satisfiability of the clause database under the given
// assumptions. The assumptions are temporary: they hold for this call
// only. On Sat, the model is available via Value/ValueLit until the next
// Sat verdict overwrites it.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.Stats.Solves++
	if !s.ok {
		return Unsat
	}
	s.backtrackTo(0)
	if s.propagate() != noReason {
		s.ok = false
		return Unsat
	}

	conflicts := int64(0)
	restartN := 0
	nextRestart := luby(restartN) * 100
	defer s.backtrackTo(0)

	for {
		confl := s.propagate()
		if confl != noReason {
			conflicts++
			s.Stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			s.backtrackTo(bt)
			cref := s.learnClause(learnt)
			s.uncheckedEnqueue(learnt[0], cref)
			s.decayActivities()
			if s.MaxConflicts > 0 && conflicts >= s.MaxConflicts {
				return Unknown
			}
			if conflicts >= nextRestart {
				s.Stats.Restarts++
				restartN++
				nextRestart = conflicts + luby(restartN)*100
				keep := int32(len(assumptions))
				if s.decisionLevel() < keep {
					keep = s.decisionLevel()
				}
				s.backtrackTo(keep)
			}
			continue
		}
		if s.numLearnt() > s.learntLimit {
			s.reduceDB()
		}
		// Establish pending assumptions as pseudo-decisions. Conflicts
		// against them flow through the normal analysis above; an
		// assumption found false at its own level is a final Unsat.
		if int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // already implied: empty level
			case lFalse:
				return Unsat
			default:
				s.newDecisionLevel()
				s.uncheckedEnqueue(a, noReason)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			copy(s.model, s.assign)
			return Sat
		}
		s.Stats.Decisions++
		s.newDecisionLevel()
		s.uncheckedEnqueue(MkLit(v, s.polarity[v]), noReason)
	}
}

func (s *Solver) learnClause(lits []Lit) int32 {
	if len(lits) == 1 {
		return noReason
	}
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	cref := s.pushClause(cp, true)
	s.bumpClause(cref)
	s.attachClause(cref)
	s.Stats.Learned++
	return cref
}

func (s *Solver) decayActivities() {
	s.varInc *= 1 / 0.95
	s.claInc *= 1 / 0.999
}

// numLearnt is the live learned-clause count, maintained by pushClause
// and reduceDB — the search loop polls it every iteration, so it must
// not scan the clause database.
func (s *Solver) numLearnt() int { return s.nLearnt }

// reduceDB removes the lower-activity half of the removable learned
// clauses (binary and locked clauses are kept), then rebuilds the watcher
// lists. Clause references are stable — deleted slots stay allocated — so
// reason pointers remain valid.
func (s *Solver) reduceDB() {
	var cands []scored
	for i := range s.clauses {
		c := &s.clauses[i]
		if !c.learnt || c.deleted || len(c.lits) <= 2 || s.locked(int32(i)) {
			continue
		}
		cands = append(cands, scored{int32(i), c.act})
	}
	if len(cands) < 2 {
		s.learntLimit *= 2
		return
	}
	// Ascending activity, cref as deterministic tiebreak.
	sortScored(cands)
	for _, sc := range cands[:len(cands)/2] {
		s.clauses[sc.cref].deleted = true
		s.clauses[sc.cref].lits = nil
		s.nLearnt--
	}
	for l := range s.watches {
		ws := s.watches[l]
		kept := ws[:0]
		for _, w := range ws {
			if !s.clauses[w.cref].deleted {
				kept = append(kept, w)
			}
		}
		s.watches[l] = kept
	}
	s.learntLimit += s.learntLimit / 2
}

// scored is a reduceDB candidate: a learned clause and its activity.
type scored struct {
	cref int32
	act  float64
}

// sortScored sorts candidates ascending by activity (cref as the
// deterministic tiebreak) with shellsort over the Ciura gap sequence:
// dependency-free and fast enough for the few thousand entries reduceDB
// sees.
func sortScored(a []scored) {
	gaps := [...]int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(a); i++ {
			x := a[i]
			j := i
			for j >= gap && (a[j-gap].act > x.act || (a[j-gap].act == x.act && a[j-gap].cref > x.cref)) {
				a[j] = a[j-gap]
				j -= gap
			}
			a[j] = x
		}
	}
}

func (s *Solver) locked(cref int32) bool {
	c := &s.clauses[cref]
	v := c.lits[0].Var()
	return s.reason[v] == cref && s.assign[v] != lUndef
}

// --- VSIDS heap ---

func (s *Solver) heapLess(a, b Var) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *Solver) heapInsert(v Var) {
	s.heapPos[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(int32(len(s.heap) - 1))
}

func (s *Solver) heapUp(i int32) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[p]] = i
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *Solver) heapPop() Var {
	top := s.heap[0]
	s.heapPos[top] = -1
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.heapPos[last] = 0
		s.heapDown(0)
	}
	return top
}

func (s *Solver) heapDown(i int32) {
	v := s.heap[i]
	n := int32(len(s.heap))
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[c]] = i
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

// luby returns the i-th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
func luby(i int) int64 {
	size, seq := int64(1), 0
	for size < int64(i)+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != int64(i) {
		size = (size - 1) / 2
		seq--
		i = i % int(size)
	}
	return int64(1) << uint(seq)
}
