// Tseitin CNF emission from And-Inverter Graphs. An AIG is already in
// exactly the shape CNF wants: every AND node c = a∧b becomes the clause
// triple (¬c∨a)(¬c∨b)(c∨¬a∨¬b), and complemented edges cost nothing — a
// complement bit on an AIG literal flips the sign bit of the solver
// literal. One frame of a sequential circuit is therefore NumNodes
// variables and 3·NumAnds clauses.
package sat

import "repro/internal/aig"

// Frame encodes one combinational frame of g into s and returns the
// solver literal of every AIG node (indexed by node id). ci supplies the
// literal of each combinational input node (PI or latch output) for this
// frame — that is the only thing distinguishing one frame from the next
// in an unrolled transition relation. falseLit must be a literal that is
// constant false in s (see FalseLit).
func Frame(s *Solver, g *aig.Graph, falseLit Lit, ci func(node int32) Lit) []Lit {
	n := g.NumNodes()
	lits := make([]Lit, n)
	lits[0] = falseLit
	for id := int32(1); id < int32(n); id++ {
		if g.IsCI(id) {
			lits[id] = ci(id)
			continue
		}
		f0, f1 := g.Fanins(id)
		a := LitOf(lits, f0)
		b := LitOf(lits, f1)
		c := Pos(s.NewVar())
		s.AddClause(c.Not(), a)
		s.AddClause(c.Not(), b)
		s.AddClause(c, a.Not(), b.Not())
		lits[id] = c
	}
	return lits
}

// LitOf maps an AIG edge to its solver literal given the per-node literal
// table of a frame: the node's literal with the edge's complement folded
// into the sign bit.
func LitOf(lits []Lit, l aig.Lit) Lit {
	out := lits[l.Node()]
	if l.Compl() {
		out = out.Not()
	}
	return out
}

// FalseLit allocates a fresh variable constrained to false: the image of
// the AIG constant node. One per solver is enough; share it across
// frames.
func FalseLit(s *Solver) Lit {
	v := s.NewVar()
	s.AddClause(Neg(v))
	return Pos(v)
}

// XorGate returns a literal d with d ⇔ (a ⊕ b) enforced: the difference
// literal of a sweep proof obligation, assumed true to ask "can these two
// signals differ?".
func XorGate(s *Solver, a, b Lit) Lit {
	d := Pos(s.NewVar())
	s.AddClause(d.Not(), a, b)
	s.AddClause(d.Not(), a.Not(), b.Not())
	s.AddClause(d, a.Not(), b)
	s.AddClause(d, a, b.Not())
	return d
}

// Equal adds the two clauses forcing a ⇔ b — the class-constraint used
// for the induction hypothesis frames.
func Equal(s *Solver, a, b Lit) {
	s.AddClause(a.Not(), b)
	s.AddClause(a, b.Not())
}
