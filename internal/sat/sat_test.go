package sat

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
)

func TestBasics(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(Pos(a), Pos(b)) {
		t.Fatal("clause rejected")
	}
	if !s.AddClause(Neg(a), Pos(b)) {
		t.Fatal("clause rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(b) {
		t.Fatal("model: b must be true (a∨b, ¬a∨b)")
	}
	// Under the assumption ¬b the formula is unsatisfiable.
	if got := s.Solve(Neg(b)); got != Unsat {
		t.Fatalf("Solve(¬b) = %v, want Unsat", got)
	}
	// Assumptions are temporary: solving again without them succeeds.
	if got := s.Solve(); got != Sat {
		t.Fatalf("re-Solve = %v, want Sat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Pos(a))
	if s.AddClause(Neg(a)) {
		t.Fatal("¬a after unit a should report top-level conflict")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

// TestPigeonhole checks a classic small UNSAT family: n+1 pigeons in n
// holes. Hard enough to exercise learning and restarts, small enough to
// stay instant.
func TestPigeonhole(t *testing.T) {
	const n = 6
	s := New()
	vars := make([][]Var, n+1)
	for p := range vars {
		vars[p] = make([]Var, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = Pos(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(Neg(vars[p1][h]), Neg(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole(%d) = %v, want Unsat", n, got)
	}
	if s.Stats.Conflicts == 0 {
		t.Fatal("expected a nontrivial search (no conflicts recorded)")
	}
}

func TestMaxConflictsUnknown(t *testing.T) {
	const n = 8
	s := New()
	vars := make([][]Var, n+1)
	for p := range vars {
		vars[p] = make([]Var, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = Pos(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(Neg(vars[p1][h]), Neg(vars[p2][h]))
			}
		}
	}
	s.MaxConflicts = 10
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted pigeonhole(%d) = %v, want Unknown", n, got)
	}
	// Raising the budget must recover the verdict on the same instance.
	s.MaxConflicts = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unbudgeted pigeonhole(%d) = %v, want Unsat", n, got)
	}
}

// bruteForce enumerates all assignments of nv variables and reports
// whether any satisfies every clause.
func bruteForce(nv int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(nv); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>uint(l.Var())&1 == 1
				if bit != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(s *Solver, clauses [][]Lit) bool {
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if s.ValueLit(l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestPropertyCDCLMatchesBruteForce cross-checks the CDCL verdict against
// exhaustive enumeration on random small CNFs, and validates every Sat
// model against the clauses. Densities straddle the phase transition so
// both verdicts occur often.
func TestPropertyCDCLMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	satSeen, unsatSeen := 0, 0
	for iter := 0; iter < 400; iter++ {
		nv := 3 + rng.Intn(12) // ≤ 14 variables
		nc := 1 + rng.Intn(5*nv)
		clauses := make([][]Lit, nc)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 1)
			}
			clauses[i] = c
		}
		want := bruteForce(nv, clauses)
		s := New()
		for v := 0; v < nv; v++ {
			s.NewVar()
		}
		live := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				live = false
			}
		}
		got := s.Solve()
		if live == false && got != Unsat {
			t.Fatalf("iter %d: AddClause reported top-level conflict but Solve = %v", iter, got)
		}
		if (got == Sat) != want {
			t.Fatalf("iter %d (nv=%d nc=%d): CDCL = %v, brute force = %v", iter, nv, nc, got, want)
		}
		if got == Sat {
			satSeen++
			if !modelSatisfies(s, clauses) {
				t.Fatalf("iter %d: Sat model does not satisfy the clauses", iter)
			}
		} else {
			unsatSeen++
		}
	}
	if satSeen == 0 || unsatSeen == 0 {
		t.Fatalf("degenerate distribution: sat=%d unsat=%d", satSeen, unsatSeen)
	}
}

// TestPropertyIncrementalAssumptions checks that solving many assumption
// probes on one instance matches fresh single-shot solves of the same
// augmented formula.
func TestPropertyIncrementalAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		nv := 4 + rng.Intn(9)
		nc := 1 + rng.Intn(4*nv)
		clauses := make([][]Lit, nc)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = MkLit(Var(rng.Intn(nv)), rng.Intn(2) == 1)
			}
			clauses[i] = c
		}
		inc := New()
		for v := 0; v < nv; v++ {
			inc.NewVar()
		}
		for _, c := range clauses {
			inc.AddClause(c...)
		}
		for probe := 0; probe < 20; probe++ {
			na := 1 + rng.Intn(3)
			seen := map[Var]bool{}
			var assumps []Lit
			for len(assumps) < na {
				v := Var(rng.Intn(nv))
				if seen[v] {
					continue
				}
				seen[v] = true
				assumps = append(assumps, MkLit(v, rng.Intn(2) == 1))
			}
			aug := make([][]Lit, 0, len(clauses)+len(assumps))
			aug = append(aug, clauses...)
			for _, a := range assumps {
				aug = append(aug, []Lit{a})
			}
			want := bruteForce(nv, aug)
			got := inc.Solve(assumps...)
			if (got == Sat) != want {
				t.Fatalf("iter %d probe %d: incremental = %v, brute force = %v (assumps %v)",
					iter, probe, got, want, assumps)
			}
			if got == Sat && !modelSatisfies(inc, aug) {
				t.Fatalf("iter %d probe %d: model violates formula+assumptions", iter, probe)
			}
		}
	}
}

// TestTseitinFrame checks the AIG→CNF emission on a full adder: the CNF
// must agree with direct evaluation of the graph on all 8 input vectors.
func TestTseitinFrame(t *testing.T) {
	g := aig.New("fa")
	a := g.AddPI("a")
	b := g.AddPI("b")
	cin := g.AddPI("cin")
	sum := g.Xor(g.Xor(a, b), cin)
	cout := g.Or(g.And(a, b), g.And(cin, g.Xor(a, b)))
	g.AddPO("sum", sum)
	g.AddPO("cout", cout)

	s := New()
	f := FalseLit(s)
	ciVars := map[int32]Lit{}
	for _, pi := range g.PIs() {
		ciVars[pi] = Pos(s.NewVar())
	}
	lits := Frame(s, g, f, func(n int32) Lit { return ciVars[n] })

	eval := func(node aig.Lit, in [3]bool) bool {
		var rec func(id int32) bool
		memo := map[int32]bool{}
		rec = func(id int32) bool {
			if v, ok := memo[id]; ok {
				return v
			}
			var v bool
			switch {
			case id == 0:
				v = false
			case g.IsCI(id):
				for i, pi := range g.PIs() {
					if pi == id {
						v = in[i]
					}
				}
			default:
				f0, f1 := g.Fanins(id)
				v = (rec(f0.Node()) != f0.Compl()) && (rec(f1.Node()) != f1.Compl())
			}
			memo[id] = v
			return v
		}
		return rec(node.Node()) != node.Compl()
	}

	for m := 0; m < 8; m++ {
		in := [3]bool{m&1 == 1, m&2 == 2, m&4 == 4}
		assumps := make([]Lit, 0, 3)
		for i, pi := range g.PIs() {
			l := ciVars[pi]
			if !in[i] {
				l = l.Not()
			}
			assumps = append(assumps, l)
		}
		if got := s.Solve(assumps...); got != Sat {
			t.Fatalf("input %03b: Solve = %v, want Sat", m, got)
		}
		for _, po := range g.POs() {
			want := eval(po.Lit, in)
			if got := s.ValueLit(LitOf(lits, po.Lit)); got != want {
				t.Fatalf("input %03b: PO %s = %v, want %v", m, po.Name, got, want)
			}
		}
	}
}

// TestXorGateEqual checks the auxiliary gate emitters.
func TestXorGateEqual(t *testing.T) {
	s := New()
	a, b := Pos(s.NewVar()), Pos(s.NewVar())
	d := XorGate(s, a, b)
	// d assumed true forces a ≠ b.
	if got := s.Solve(d, a, b); got != Unsat {
		t.Fatalf("d∧a∧b = %v, want Unsat", got)
	}
	if got := s.Solve(d, a, b.Not()); got != Sat {
		t.Fatalf("d∧a∧¬b = %v, want Sat", got)
	}
	Equal(s, a, b)
	if got := s.Solve(d); got != Unsat {
		t.Fatalf("a⇔b yet d = %v, want Unsat", got)
	}
	if got := s.Solve(d.Not()); got != Sat {
		t.Fatalf("a⇔b with ¬d = %v, want Sat", got)
	}
}
