package flows

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/blif"
	"repro/internal/genlib"
	"repro/internal/network"
	"repro/internal/seqverify"
)

// buildSweepTwins builds a 34-register circuit carrying the same shift
// register twice: stage 0 of each copy toggles on x, stage i shifts
// stage i-1, and the output ANDs the two final stages. Exact reachability
// is out of reach (>32 latches) but every pair (qi, ri) is 1-inductive,
// so the sweep path must find and merge the twins.
func buildSweepTwins(t *testing.T) *network.Network {
	t.Helper()
	var b strings.Builder
	b.WriteString(".model sweeptwins\n.inputs x\n.outputs o\n")
	const stages = 17
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&b, ".latch dq%d q%d 0\n.latch dr%d r%d 0\n", i, i, i, i)
	}
	b.WriteString(".names x q0 dq0\n10 1\n01 1\n.names x r0 dr0\n10 1\n01 1\n")
	for i := 1; i < stages; i++ {
		fmt.Fprintf(&b, ".names q%d dq%d\n1 1\n", i-1, i)
		fmt.Fprintf(&b, ".names r%d dr%d\n1 1\n", i-1, i)
	}
	fmt.Fprintf(&b, ".names q%d r%d o\n11 1\n", stages-1, stages-1)
	b.WriteString(".end\n")
	n, err := blif.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRetimeCombOptSweepDCExtraction drives the beyond-the-wall DC path:
// with cfg.Sweep, a rolled-over reach.ErrTooLarge falls back to induction-
// proven register classes, merges the twin registers, and the result is
// proved equivalent by induction (not merely spot-checked).
func TestRetimeCombOptSweepDCExtraction(t *testing.T) {
	src := buildSweepTwins(t)
	lib := genlib.Lib2()
	ctx := context.Background()
	sd, err := ScriptDelayCtx(ctx, src, lib, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Sweep: true}
	ret, err := RetimeCombOptCtx(ctx, sd.Net, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ret.Regs >= 34 {
		t.Errorf("sweep DC extraction merged no registers: still %d", ret.Regs)
	}
	v, err := VerifyVerdict(ctx, src, ret, cfg)
	if err != nil {
		t.Fatalf("not equivalent: %v", err)
	}
	if v != string(seqverify.VerdictInduction) {
		t.Errorf("verdict = %q, want %q", v, seqverify.VerdictInduction)
	}
	// Without Sweep the same pair is beyond both engines: the verdict must
	// honestly degrade to the spot check.
	v, err = VerifyVerdict(ctx, src, ret, Config{})
	if err != nil {
		t.Fatalf("spot check failed: %v", err)
	}
	if v != VerdictSpotChecked {
		t.Errorf("verdict = %q, want %q", v, VerdictSpotChecked)
	}
}
