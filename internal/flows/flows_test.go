package flows

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/genlib"
	"repro/internal/network"
)

func runAll(t *testing.T, n *network.Network) (sd, ret, rsyn *Result) {
	t.Helper()
	lib := genlib.Lib2()
	sd, ret, rsyn, err := RunAll(n, lib)
	if err != nil {
		t.Fatal(err)
	}
	return sd, ret, rsyn
}

func TestFlowsOnPaperExample(t *testing.T) {
	src := bench.BuildPaperExample()
	sd, ret, rsyn := runAll(t, src)
	// Under the mapped (lib2) delay model both derived flows must improve
	// on plain script.delay. The exact 3 → 2 → 1 unit-delay story of
	// Section III is asserted in internal/core (the mapped margin depends
	// on library phase coverage: v·s'·a' needs input inverters in lib2,
	// the same gap the 1999 library had).
	if !(ret.Clk < sd.Clk) {
		t.Fatalf("retiming clk %.2f must beat script clk %.2f", ret.Clk, sd.Clk)
	}
	if !(rsyn.Clk < sd.Clk) {
		t.Fatalf("resynthesis clk %.2f must beat script clk %.2f", rsyn.Clk, sd.Clk)
	}
	// All three verified against the source.
	for i, r := range []*Result{sd, ret, rsyn} {
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
}

func TestFlowsOnEmbeddedFSM(t *testing.T) {
	c, ok := bench.ByName("bbtas")
	if !ok {
		t.Fatal("bbtas missing")
	}
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, ret, rsyn := runAll(t, src)
	for i, r := range []*Result{sd, ret, rsyn} {
		if r.Regs == 0 || r.Clk <= 0 || r.Area <= 0 {
			t.Fatalf("flow %d metrics degenerate: %v", i, r.Metrics)
		}
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
}

func TestFlowsOnS27(t *testing.T) {
	c, _ := bench.ByName("s27")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, ret, rsyn := runAll(t, src)
	for i, r := range []*Result{sd, ret, rsyn} {
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
	_ = sd
	_ = ret
}

func TestResynthesisDeclinesOnPipeline(t *testing.T) {
	src := bench.BuildPipelineExample()
	lib := genlib.Lib2()
	sd, err := ScriptDelay(src, lib)
	if err != nil {
		t.Fatal(err)
	}
	rsyn, err := Resynthesis(sd.Net, lib)
	if err != nil {
		t.Fatal(err)
	}
	if rsyn.Note == "" {
		t.Fatalf("pipeline must carry a non-applicability note, got %v", rsyn.Metrics)
	}
	if err := Verify(src, rsyn); err != nil {
		t.Fatal(err)
	}
}

func TestScriptDelayImprovesOrMatchesNaiveMapping(t *testing.T) {
	c, _ := bench.ByName("bbara")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, err := ScriptDelay(src, genlib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	if sd.Clk <= 0 {
		t.Fatal("degenerate clk")
	}
	if err := Verify(src, sd); err != nil {
		t.Fatal(err)
	}
}

func TestFlowsOnSyntheticISCASProfile(t *testing.T) {
	c, _ := bench.ByName("s386")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, ret, rsyn := runAll(t, src)
	for i, r := range []*Result{sd, ret, rsyn} {
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
}
