package flows

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/genlib"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/timing"
)

func runAll(t *testing.T, n *network.Network) (sd, ret, rsyn *Result) {
	t.Helper()
	lib := genlib.Lib2()
	sd, ret, rsyn, err := RunAll(n, lib)
	if err != nil {
		t.Fatal(err)
	}
	return sd, ret, rsyn
}

func TestFlowsOnPaperExample(t *testing.T) {
	src := bench.BuildPaperExample()
	sd, ret, rsyn := runAll(t, src)
	// Under the mapped (lib2) delay model both derived flows must improve
	// on plain script.delay. The exact 3 → 2 → 1 unit-delay story of
	// Section III is asserted in internal/core (the mapped margin depends
	// on library phase coverage: v·s'·a' needs input inverters in lib2,
	// the same gap the 1999 library had).
	if !(ret.Clk < sd.Clk) {
		t.Fatalf("retiming clk %.2f must beat script clk %.2f", ret.Clk, sd.Clk)
	}
	if !(rsyn.Clk < sd.Clk) {
		t.Fatalf("resynthesis clk %.2f must beat script clk %.2f", rsyn.Clk, sd.Clk)
	}
	// All three verified against the source.
	for i, r := range []*Result{sd, ret, rsyn} {
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
}

func TestFlowsOnEmbeddedFSM(t *testing.T) {
	c, ok := bench.ByName("bbtas")
	if !ok {
		t.Fatal("bbtas missing")
	}
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, ret, rsyn := runAll(t, src)
	for i, r := range []*Result{sd, ret, rsyn} {
		if r.Regs == 0 || r.Clk <= 0 || r.Area <= 0 {
			t.Fatalf("flow %d metrics degenerate: %v", i, r.Metrics)
		}
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
}

func TestFlowsOnS27(t *testing.T) {
	c, _ := bench.ByName("s27")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, ret, rsyn := runAll(t, src)
	for i, r := range []*Result{sd, ret, rsyn} {
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
	_ = sd
	_ = ret
}

func TestResynthesisDeclinesOnPipeline(t *testing.T) {
	src := bench.BuildPipelineExample()
	lib := genlib.Lib2()
	sd, err := ScriptDelay(src, lib)
	if err != nil {
		t.Fatal(err)
	}
	rsyn, err := Resynthesis(sd.Net, lib)
	if err != nil {
		t.Fatal(err)
	}
	if rsyn.Note == "" {
		t.Fatalf("pipeline must carry a non-applicability note, got %v", rsyn.Metrics)
	}
	if err := Verify(src, rsyn); err != nil {
		t.Fatal(err)
	}
}

func TestScriptDelayImprovesOrMatchesNaiveMapping(t *testing.T) {
	c, _ := bench.ByName("bbara")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, err := ScriptDelay(src, genlib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	if sd.Clk <= 0 {
		t.Fatal("degenerate clk")
	}
	if err := Verify(src, sd); err != nil {
		t.Fatal(err)
	}
}

func TestFlowsOnSyntheticISCASProfile(t *testing.T) {
	c, _ := bench.ByName("s386")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sd, ret, rsyn := runAll(t, src)
	for i, r := range []*Result{sd, ret, rsyn} {
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %d not equivalent: %v", i, err)
		}
	}
}

// TestMappedDelayPeriodConsistency pins the satellite fix: the delay model
// handed to core.ResynthesizeIterate (previously a zero-value MappedDelay)
// and the one used by measure() must compute the same clock period on a
// mapped circuit.
func TestMappedDelayPeriodConsistency(t *testing.T) {
	for _, name := range []string{"bbtas", "s27"} {
		c, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		src, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		sd, err := ScriptDelay(src, genlib.Lib2())
		if err != nil {
			t.Fatal(err)
		}
		m := sd.Net
		pZero, err := timing.Period(m, timing.MappedDelay{})
		if err != nil {
			t.Fatal(err)
		}
		pNet, err := timing.Period(m, timing.MappedDelay{N: m})
		if err != nil {
			t.Fatal(err)
		}
		if pZero != pNet {
			t.Fatalf("%s: MappedDelay{} period %v != MappedDelay{N} period %v", name, pZero, pNet)
		}
		if sd.Clk != pNet {
			t.Fatalf("%s: measure() period %v != MappedDelay{N} period %v", name, sd.Clk, pNet)
		}
	}
}

// TestResynthesisCountersConsistent asserts the emitted transformation
// counters agree with the returned result: on an applied, non-reverted
// resynthesis the atomic stem-split count equals the delayed-replacement
// prefix, and the span tree carries the expected hierarchy.
func TestResynthesisCountersConsistent(t *testing.T) {
	src := bench.BuildPaperExample()
	lib := genlib.Lib2()
	var buf bytes.Buffer
	tr := obs.NewJSON(&buf)
	sd, err := ScriptDelayT(src, lib, tr)
	if err != nil {
		t.Fatal(err)
	}
	rsyn, err := ResynthesisT(sd.Net, lib, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rsyn.Note != "" {
		t.Fatalf("paper example must resynthesize cleanly, got note %q", rsyn.Note)
	}
	cs := tr.Counters()
	if cs["flow_reverted"] != 0 {
		t.Fatalf("unexpected revert: %v", cs)
	}
	if rsyn.PrefixK == 0 {
		t.Fatal("paper example must split stems")
	}
	if cs["stems_split"] != int64(rsyn.PrefixK) {
		t.Fatalf("stems_split counter %d != PrefixK %d", cs["stems_split"], rsyn.PrefixK)
	}
	if cs["dcret_pairs"] != int64(rsyn.PrefixK) {
		t.Fatalf("dcret_pairs counter %d != PrefixK %d", cs["dcret_pairs"], rsyn.PrefixK)
	}
	if cs["cones_simplified"] == 0 {
		t.Fatal("DCret simplification must fire on the paper example")
	}
	if cs["mapper_candidates"] == 0 || cs["remap_candidates"] == 0 {
		t.Fatalf("mapper counters missing: %v", cs)
	}
	// Span hierarchy: flow → core pass → step.
	root := tr.Root()
	if root.Find("flow.resynthesis") == nil || root.Find("core.resynthesize") == nil ||
		root.Find("stem_retime") == nil || root.Find("dcret_simplify") == nil {
		t.Fatal("expected flow/pass/step spans missing from the tree")
	}
	// The JSON-lines stream must parse and contain matching start/end pairs.
	evs, skipped, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("tracer emitted %d malformed JSONL lines", skipped)
	}
	starts, ends := 0, 0
	for _, e := range evs {
		switch e.Ev {
		case "span_start":
			starts++
		case "span_end":
			ends++
		}
	}
	if starts == 0 || starts != ends {
		t.Fatalf("unbalanced span events: %d starts, %d ends", starts, ends)
	}
}

// TestGuardRevertRecorded pins that every guardAgainstHarm revert is
// recorded as a flow_reverted counter and a note.
func TestGuardRevertRecorded(t *testing.T) {
	c, _ := bench.ByName("bbtas")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib := genlib.Lib2()
	sd, err := ScriptDelay(src, lib)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	sp := tr.Begin("flow.test")
	note := ""
	worse := Metrics{Regs: sd.Regs, Clk: sd.Clk + 100, Area: sd.Area}
	m, met := guardAgainstHarm(sd.Net, lib, sd.Net.Clone(), worse, &note, sp)
	sp.End()
	if met.Clk != sd.Clk {
		t.Fatalf("guard must return the input metrics, got clk %v", met.Clk)
	}
	if m == sd.Net {
		t.Fatal("guard must return a clone, not the input itself")
	}
	if note == "" {
		t.Fatal("revert must set a note")
	}
	if sp.Counter("flow_reverted") != 1 {
		t.Fatal("revert must record flow_reverted on the span")
	}
	// And the keep path must NOT record a revert.
	tr2 := obs.New()
	sp2 := tr2.Begin("flow.test")
	note2 := ""
	better := Metrics{Regs: sd.Regs, Clk: sd.Clk - 0.5, Area: sd.Area}
	keep := sd.Net.Clone()
	m2, _ := guardAgainstHarm(sd.Net, lib, keep, better, &note2, sp2)
	sp2.End()
	if m2 != keep || note2 != "" || sp2.Counter("flow_reverted") != 0 {
		t.Fatal("keep path must not record a revert")
	}
}

// TestRunAllTracedEmitsPerFlowSpans asserts the three flows appear as
// separate top-level spans with wall time and that counters land under
// the right flow.
func TestRunAllTracedEmitsPerFlowSpans(t *testing.T) {
	c, _ := bench.ByName("bbtas")
	src, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	if _, _, _, err := RunAllT(src, genlib.Lib2(), tr); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range tr.Root().Children() {
		names = append(names, s.Name)
		if s.Dur() <= 0 {
			t.Fatalf("span %s has no wall time", s.Name)
		}
	}
	want := []string{"flow.script_delay", "flow.retime_combopt", "flow.resynthesis"}
	if len(names) != len(want) {
		t.Fatalf("top-level spans = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("top-level spans = %v, want %v", names, want)
		}
	}
	if tr.Root().Find("retime.min_period") == nil {
		t.Fatal("retiming span missing from the tree")
	}
}
