package flows

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/genlib"
	"repro/internal/network"
	"repro/internal/sim"
)

// TestPropertyAigMatchesSOP is the substrate agreement property: the same
// circuit pushed through script.delay on the SOP substrate (the paper's
// two-level machinery, acting as oracle) and on the AIG substrate must
//
//  1. both stay sequentially equivalent to the source under the shared
//     random bitstream (so the substrates are interchangeable for
//     correctness), and agree with each other on the same streams;
//  2. land in the same mapped-period class, except that the AIG substrate
//     may land in a *lower* (better) class. Strict class equality does not
//     hold empirically: on planet, s400, s420, s13207, s35932 and s38417
//     the AIG-mapped clock crosses a power-of-two boundary downward (e.g.
//     s38417: 30.90 vs 36.55), so the one-sided bound is the real
//     invariant — switching substrates never costs a period class.
//
// The suite is the paper registry (Table I) plus seeded random synthetics
// that exercise shapes the registry does not pin down. CI runs this under
// -race; -short trims to the rows under ~600 gates.
func TestPropertyAigMatchesSOP(t *testing.T) {
	suite := bench.TableI()
	circuits := make(map[string]*network.Network, len(suite)+4)
	for _, c := range suite {
		src, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		circuits[c.Name] = src
	}
	// Random synthetics: profiles chosen to cover corners the registry
	// does not — register-dominated, wide-IO shallow, deep narrow, and a
	// near-degenerate tiny machine.
	for _, p := range []bench.Profile{
		{Name: "rnd_regheavy", PIs: 4, POs: 4, FFs: 40, Gates: 120, Seed: 0xA1},
		{Name: "rnd_wide", PIs: 32, POs: 24, FFs: 6, Gates: 180, Seed: 0xB2},
		{Name: "rnd_deep", PIs: 3, POs: 2, FFs: 9, Gates: 260, Seed: 0xC3},
		{Name: "rnd_tiny", PIs: 2, POs: 1, FFs: 2, Gates: 9, Seed: 0xD4},
	} {
		circuits[p.Name] = bench.Synthetic(p)
	}

	lib := genlib.Lib2()
	sc := sim.DefaultSpotCheck.Verify
	for name, src := range circuits {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && src.NumLogicNodes() > 600 {
				t.Skipf("short mode: %d gates", src.NumLogicNodes())
			}
			results := map[string]*Result{}
			for _, sub := range SubstrateNames() {
				r, err := RunFlow(context.Background(), "script", src, lib,
					Config{Substrate: sub})
				if err != nil {
					t.Fatalf("substrate %s: %v", sub, err)
				}
				if r.Clk <= 0 || r.Area <= 0 {
					t.Fatalf("substrate %s: degenerate metrics %v", sub, r.Metrics)
				}
				if err := bitsim.RandomEquivalent(src, r.Net, r.PrefixK, sc.Cycles, sc.Seed,
					bitsim.Options{}); err != nil {
					t.Fatalf("substrate %s diverges from source: %v", sub, err)
				}
				results[sub] = r
			}
			sop, aigr := results[SubstrateSOP], results[SubstrateAIG]
			delay := sop.PrefixK
			if aigr.PrefixK > delay {
				delay = aigr.PrefixK
			}
			if err := bitsim.RandomEquivalent(sop.Net, aigr.Net, delay, sc.Cycles, sc.Seed,
				bitsim.Options{}); err != nil {
				t.Fatalf("substrates diverge from each other: %v", err)
			}
			sopClass, aigClass := PeriodClass(sop.Clk), PeriodClass(aigr.Clk)
			if aigClass > sopClass {
				t.Fatalf("AIG period class regressed: sop clk %.2f (c%d) vs aig clk %.2f (c%d)",
					sop.Clk, sopClass, aigr.Clk, aigClass)
			}
			if aigClass < sopClass {
				t.Logf("AIG one class better: sop clk %.2f (c%d) vs aig clk %.2f (c%d)",
					sop.Clk, sopClass, aigr.Clk, aigClass)
			}
		})
	}
}
