package flows

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/genlib"
)

func TestRunFlowDispatch(t *testing.T) {
	lib := genlib.Lib2()
	ctx := context.Background()
	for _, name := range FlowNames() {
		if !KnownFlow(name) {
			t.Fatalf("FlowNames reports %q but KnownFlow rejects it", name)
		}
		src := bench.BuildPaperExample()
		r, err := RunFlow(ctx, name, src, lib, Config{})
		if err != nil {
			t.Fatalf("flow %q: %v", name, err)
		}
		if r == nil || r.Net == nil {
			t.Fatalf("flow %q returned no network", name)
		}
		if err := Verify(src, r); err != nil {
			t.Fatalf("flow %q not equivalent: %v", name, err)
		}
	}
	if KnownFlow("bogus") {
		t.Fatal("KnownFlow must reject unknown names")
	}
	if _, err := RunFlow(ctx, "bogus", bench.BuildPaperExample(), lib, Config{}); err == nil || !strings.Contains(err.Error(), "unknown flow") {
		t.Fatalf("unknown flow must error by name, got %v", err)
	}
}
