package flows

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/timing"
)

// flowOrder lists the flow names accepted by RunFlow, in the order the
// paper's Table I presents them plus the raw-algorithm escape hatch. Both
// cmd/resyn and the serving layer (internal/serve) dispatch through this
// single table so the CLI flag and the HTTP API stay in lockstep.
var flowOrder = []string{"script", "retime", "resyn", "core"}

// FlowNames reports the flow names accepted by RunFlow.
func FlowNames() []string {
	out := make([]string, len(flowOrder))
	copy(out, flowOrder)
	return out
}

// KnownFlow reports whether name is accepted by RunFlow.
func KnownFlow(name string) bool {
	for _, f := range flowOrder {
		if f == name {
			return true
		}
	}
	return false
}

// RunFlow dispatches one of the named evaluation flows on src under cfg:
//
//   - "script": ScriptDelay alone;
//   - "retime": ScriptDelay then conventional retiming + comb. opt.;
//   - "resyn":  ScriptDelay then the paper's resynthesis (Algorithm 1 with
//     retiming-induced don't cares) on the mapped circuit;
//   - "core":   raw iterated Algorithm 1 under the unit-delay model, no
//     technology mapping (Metrics.Area is literal count, not mapped area).
//
// An unknown name is reported as an error before any work starts.
func RunFlow(ctx context.Context, name string, src *network.Network, lib *genlib.Library, cfg Config) (*Result, error) {
	if !KnownSubstrate(cfg.Substrate) {
		return nil, guard.WithClass(
			fmt.Errorf("flows: unknown substrate %q (have %v)", cfg.Substrate, SubstrateNames()),
			guard.ErrClassPermanent)
	}
	switch name {
	case "script":
		return ScriptDelayCtx(ctx, src, lib, cfg)
	case "retime":
		sd, err := ScriptDelayCtx(ctx, src, lib, cfg)
		if err != nil {
			return nil, err
		}
		return RetimeCombOptCtx(ctx, sd.Net, lib, cfg)
	case "resyn":
		sd, err := ScriptDelayCtx(ctx, src, lib, cfg)
		if err != nil {
			return nil, err
		}
		return ResynthesisCtx(ctx, sd.Net, lib, cfg)
	case "core":
		// The flow budget bounds the whole iterated run; there is no
		// per-pass transaction at this level (core guards internally).
		cctx, cancel := cfg.Budget.FlowContext(ctx)
		defer cancel()
		res, err := core.ResynthesizeIterateCtx(cctx, src, core.Options{Tracer: cfg.Tracer}, 4)
		if err != nil {
			return nil, err
		}
		p, _ := timing.Period(res.Network, timing.UnitDelay{})
		r := &Result{
			Net:     res.Network,
			PrefixK: res.PrefixK,
			Metrics: Metrics{Regs: len(res.Network.Latches), Clk: p, Area: float64(res.Network.NumLits())},
		}
		if !res.Applied {
			r.Note = "not applied: " + res.Reason
		}
		return r, nil
	}
	// Input-determined, so retrying can never fix it: classify permanent.
	return nil, guard.WithClass(fmt.Errorf("flows: unknown flow %q (have %v)", name, flowOrder), guard.ErrClassPermanent)
}
