// Package flows implements the three evaluation flows of Table I:
//
//  1. script.delay — technology-independent delay optimization + minimum-
//     delay technology mapping;
//  2. script.delay + retiming + comb. opt. — conventional min-period
//     retiming followed by combinational re-optimization using
//     retiming-induced external don't cares extracted by implicit state
//     enumeration, then remapping;
//  3. script.delay + resynthesis — the paper's Algorithm 1 applied to the
//     mapped circuit, then remapping.
//
// Every flow reports the Table I metrics (register count, clock period,
// mapped area) and carries the verification prefix for delayed-replacement
// equivalence checking.
//
// Every pass runs transactionally under internal/guard: it sees a private
// clone of the flow network under the configured deadline, panics are
// contained at the pass boundary, and an invalid or non-equivalent output
// rolls the flow back to the last known-good network with a Table-I-style
// footnote in Metrics.Note. A flow therefore either returns a valid network
// (possibly the untouched input, with a note) or a typed guard error —
// never a corrupted result, and never a raw panic.
package flows

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/algebraic"
	"repro/internal/bitsim"
	"repro/internal/core"
	"repro/internal/dontcare"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/retime"
	"repro/internal/seqverify"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/timing"
)

// Metrics are the per-circuit Table I numbers.
type Metrics struct {
	Regs int
	Clk  float64
	Area float64
	// Note records non-applicability or fallbacks ("retiming failed",
	// "not resynthesizable", …), mirroring the paper's footnotes.
	Note string
}

func (m Metrics) String() string {
	s := fmt.Sprintf("reg=%d clk=%.2f area=%.0f", m.Regs, m.Clk, m.Area)
	if m.Note != "" {
		s += " (" + m.Note + ")"
	}
	return s
}

// Result bundles a flow's output network with its metrics.
type Result struct {
	Net *network.Network
	Metrics
	// PrefixK is the delayed-replacement prefix for verification (0 for
	// flows that preserve safe equivalence).
	PrefixK int
}

// Config configures guarded flow execution. The zero value runs unbounded,
// untraced, and fault-free, matching the legacy T-variant behaviour.
type Config struct {
	// Tracer receives the flow spans plus the guard layer's commit/rollback
	// counters and events (nil: no tracing).
	Tracer *obs.Tracer
	// Budget bounds each flow (Budget.Flow) and each pass within it
	// (Budget.Pass) in wall-clock time; zero fields mean unbounded.
	Budget guard.Budget
	// Inject optionally injects faults per guarded pass (nil: none). It is
	// consulted exactly once per pass invocation.
	Inject guard.Injector
	// SmokeCycles / SmokeSeed configure the post-pass random-simulation
	// smoke check (see guard.TxOptions).
	SmokeCycles int
	SmokeSeed   int64
	// Reach bounds and configures the implicit state enumeration used for
	// don't-care extraction and exact verification (image partitioning,
	// variable order, reordering). The zero value takes
	// reach.DefaultLimits.
	Reach reach.Limits
	// Substrate selects the technology-independent representation the
	// flows restructure before mapping: SubstrateSOP (default, also for
	// "") or SubstrateAIG. See substrate.go.
	Substrate string
	// Workers bounds the worker pool of parallel passes (currently the
	// AIG substrate's levelized cut rewriter); 0 means GOMAXPROCS. Any
	// width produces byte-identical results — it is purely a throughput
	// knob.
	Workers int
	// RewriteIters bounds the rewrite+balance iterations of the AIG
	// substrate's restructuring loop; 0 means DefaultRewriteIters. The
	// loop also stops early at a fixpoint (no rewrite applied).
	RewriteIters int
	// Sweep enables SAT-based sequential sweeping wherever the state
	// space exceeds the exact reach limits: verification falls back to
	// k-induction over the product machine instead of random simulation,
	// and DC extraction falls back to proven register equivalence
	// classes applied as DCret (see internal/sweep).
	Sweep bool
	// InductionK is the sweeping induction depth (0 means 1).
	InductionK int
}

// reachLimits resolves the configured reach limits, defaulting the zero
// value.
func (c Config) reachLimits() reach.Limits {
	if c.Reach == (reach.Limits{}) {
		return reach.DefaultLimits
	}
	return c.Reach
}

// fault consults the injector once for a pass invocation.
func (c Config) fault(pass string) guard.Fault {
	if c.Inject == nil {
		return guard.FaultNone
	}
	return c.Inject.Fault(pass)
}

// tx builds the transactional options for one pass invocation with the
// already-resolved fault decision.
func (c Config) tx(f guard.Fault) guard.TxOptions {
	return guard.TxOptions{
		Tracer:      c.Tracer,
		Budget:      c.Budget,
		Inject:      guard.FixedInjector(f),
		SmokeCycles: c.SmokeCycles,
		SmokeSeed:   c.SmokeSeed,
	}
}

// rollCause extracts the innermost failure of a rolled-back pass for a
// Table-I-style note (the RollbackError wrapper itself is for errors.As).
func rollCause(rep guard.TxReport) error {
	var rb *guard.RollbackError
	if errors.As(rep.Err, &rb) && rb.Cause != nil {
		return rb.Cause
	}
	return rep.Err
}

func measure(n *network.Network, lib *genlib.Library) (Metrics, error) {
	clk, err := timing.Period(n, timing.MappedDelay{N: n})
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		Regs: len(n.Latches),
		Clk:  clk,
		Area: mapper.Area(n, lib),
	}, nil
}

// ScriptDelay optimizes and maps a circuit for minimum delay.
func ScriptDelay(n *network.Network, lib *genlib.Library) (*Result, error) {
	return ScriptDelayT(n, lib, nil)
}

// ScriptDelayT is ScriptDelay with tracing: a "flow.script_delay" span
// whose children time the algebraic script and the mapper.
func ScriptDelayT(n *network.Network, lib *genlib.Library, tr *obs.Tracer) (*Result, error) {
	return ScriptDelayCtx(context.Background(), n, lib, Config{Tracer: tr})
}

// ScriptDelayCtx is ScriptDelayT under the guard layer: the algebraic
// script and the mapper run transactionally under cfg.Budget. A failed
// script degrades to plain decomposition (noted); a failed mapping is a
// flow failure, since the flow's contract is a mapped network.
func ScriptDelayCtx(ctx context.Context, n *network.Network, lib *genlib.Library, cfg Config) (*Result, error) {
	tr := cfg.Tracer
	sp := tr.Begin("flow.script_delay")
	defer sp.End()
	fctx, cancel := cfg.Budget.FlowContext(ctx)
	defer cancel()
	if !KnownSubstrate(cfg.Substrate) {
		return nil, guard.WithClass(
			fmt.Errorf("flows: unknown substrate %q (have %v)", cfg.Substrate, SubstrateNames()),
			guard.ErrClassPermanent)
	}
	note := ""
	optPass := "algebraic.optimize"
	optFn := func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
		if err := algebraic.OptimizeDelayCtx(ctx, work, tr); err != nil {
			return nil, 0, err
		}
		return work, 0, nil
	}
	if cfg.substrate() == SubstrateAIG {
		optPass = "aig.restructure"
		optFn = func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			out, err := aigRestructure(ctx, work, tr, cfg)
			return out, 0, err
		}
	}
	w, rep := guard.Tx(fctx, optPass, n, cfg.tx(cfg.fault(optPass)),
		optFn)
	if !rep.Committed {
		note = rep.Note
		// Degraded script: sweep + balanced decomposition still satisfies
		// the mapper's subject-graph contract without the fragile passes.
		w2, rep2 := guard.Tx(fctx, "algebraic.decompose", n, cfg.tx(cfg.fault("algebraic.decompose")),
			func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
				work.Sweep()
				if err := algebraic.DecomposeBalanced(work); err != nil {
					return nil, 0, err
				}
				return work, 0, nil
			})
		if rep2.Committed {
			w = w2
		}
	}
	m, mrep := guard.Tx(fctx, "mapper.map_delay", w, cfg.tx(cfg.fault("mapper.map_delay")),
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			mm, err := mapper.MapDelayCtx(ctx, work, lib, tr)
			return mm, 0, err
		})
	if !mrep.Committed {
		return nil, fmt.Errorf("flows: script.delay cannot map: %w", mrep.Err)
	}
	met, err := measure(m, lib)
	if err != nil {
		return nil, err
	}
	met.Note = note
	return &Result{Net: m, Metrics: met}, nil
}

// RetimeCombOpt runs the conventional baseline on a mapped circuit:
// min-period retiming, unreachable-state don't-care extraction by implicit
// state enumeration, per-node simplification, and remapping. The input
// should be a ScriptDelay result; it is not modified.
func RetimeCombOpt(mappedIn *network.Network, lib *genlib.Library) (*Result, error) {
	return RetimeCombOptT(mappedIn, lib, nil)
}

// RetimeCombOptT is RetimeCombOpt with tracing: a "flow.retime_combopt"
// span over the min-period retimer, the implicit state enumeration, the
// don't-care application (dc_nodes_simplified / lits_saved), and the
// remap; a guard revert records flow_reverted.
func RetimeCombOptT(mappedIn *network.Network, lib *genlib.Library, tr *obs.Tracer) (*Result, error) {
	return RetimeCombOptCtx(context.Background(), mappedIn, lib, Config{Tracer: tr})
}

// RetimeCombOptCtx is RetimeCombOptT under the guard layer. Every pass is
// optional for this flow: a rolled-back retiming or DC extraction keeps the
// previous network and records the paper's footnote, and a rolled-back
// remap degrades to the (already mapped) flow input.
func RetimeCombOptCtx(ctx context.Context, mappedIn *network.Network, lib *genlib.Library, cfg Config) (*Result, error) {
	tr := cfg.Tracer
	sp := tr.Begin("flow.retime_combopt")
	defer sp.End()
	fctx, cancel := cfg.Budget.FlowContext(ctx)
	defer cancel()
	note := ""
	ret, rep := guard.Tx(fctx, "retime.min_period", mappedIn, cfg.tx(cfg.fault("retime.min_period")),
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			r, _, err := retime.MinPeriodCtx(ctx, work, retime.GateVertexDelay, tr)
			return r, 0, err
		})
	if !rep.Committed {
		// The paper: "retiming was either unable to minimize the cycle
		// time, or was unable to preserve/compute the initial states".
		note = "retiming failed: " + rollCause(rep).Error()
	}
	// Combinational optimization with retiming-induced external don't
	// cares from implicit state enumeration (bounded; skipped when the
	// state space is out of reach, as it was for SIS on large circuits).
	lim := cfg.reachLimits()
	dcFault := cfg.fault("reach.dc_extract")
	if dcFault == guard.FaultBDDBlowup {
		// Realized here rather than in the runner: blowup is a resource
		// fault of the enumeration engine, triggered via its node budget.
		lim.MaxBDDNodes = 8
	}
	dcNet, dcRep := guard.Tx(fctx, "reach.dc_extract", ret, cfg.tx(dcFault),
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			a, rerr := reach.AnalyzeCtx(ctx, work, lim, tr)
			if rerr != nil {
				if cfg.Sweep && errors.Is(rerr, reach.ErrTooLarge) {
					return work, 0, applySweepDCs(ctx, work, tr, cfg)
				}
				return nil, 0, rerr
			}
			st := tr.Begin("apply_unreachable_dcs")
			improved, lits := applyUnreachableDCs(work, a)
			st.Add("dc_nodes_simplified", int64(improved))
			if lits > 0 {
				st.Add("lits_saved", int64(lits))
			}
			st.End()
			return work, 0, nil
		})
	if dcRep.Committed {
		ret = dcNet
	} else if note == "" {
		// The wrapped reach error carries the observed node/iteration
		// numbers (or the latch count), not just "too large".
		note = "DC extraction skipped: " + rollCause(dcRep).Error()
	}
	m, met, _, err := remapTx(fctx, ret, mappedIn, lib, cfg, &note)
	if err != nil {
		return nil, err
	}
	m, met = guardAgainstHarm(mappedIn, lib, m, met, &note, sp)
	met.Note = note
	return &Result{Net: m, Metrics: met}, nil
}

// guardAgainstHarm keeps the flow input when the transformed circuit ended
// up slower (or equally fast but larger) — the "stopped from doing any
// harm" control the paper says it is investigating (Section V). A revert
// is recorded on sp as flow_reverted.
func guardAgainstHarm(input *network.Network, lib *genlib.Library, m *network.Network, met Metrics, note *string, sp *obs.Span) (*network.Network, Metrics) {
	in, err := measure(input, lib)
	if err != nil {
		return m, met
	}
	if met.Clk < in.Clk-1e-9 || (met.Clk < in.Clk+1e-9 && met.Area <= in.Area) {
		return m, met
	}
	sp.Add("flow_reverted", 1)
	if *note == "" {
		*note = "reverted (no gain over input)"
	}
	return input.Clone(), in
}

// remapTx runs bestRemap transactionally. On rollback the flow degrades to
// a clone of its mapped input, which is valid by construction; committed
// reports whether the remapped candidate was adopted.
func remapTx(ctx context.Context, cur, mappedIn *network.Network, lib *genlib.Library, cfg Config, note *string) (m *network.Network, met Metrics, committed bool, err error) {
	m, rep := guard.Tx(ctx, "remap", cur, cfg.tx(cfg.fault("remap")),
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			mm, mmet, rerr := bestRemap(ctx, work, lib, cfg)
			if rerr != nil {
				return nil, 0, rerr
			}
			met = mmet
			return mm, 0, nil
		})
	if rep.Committed {
		return m, met, true, nil
	}
	if *note == "" {
		*note = rep.Note
	}
	fallback := mappedIn.Clone()
	fmet, ferr := measure(fallback, lib)
	if ferr != nil {
		return nil, Metrics{}, false, ferr
	}
	return fallback, fmet, false, nil
}

// bestRemap produces the best mapped implementation of a network among
// (a) full re-optimization + mapping (through the configured substrate)
// and (b) plain re-decomposition + mapping, compared by clock then area.
// Re-optimizing an already-mapped netlist is occasionally lossy; keeping
// the better candidate models the "keep the best implementation seen"
// discipline of a real flow.
func bestRemap(ctx context.Context, n *network.Network, lib *genlib.Library, cfg Config) (*network.Network, Metrics, error) {
	tr := cfg.Tracer
	sp := tr.Begin("remap")
	defer sp.End()
	type cand struct {
		net *network.Network
		met Metrics
	}
	var cands []cand
	full := n.Clone()
	fullErr := error(nil)
	if cfg.substrate() == SubstrateAIG {
		full, fullErr = aigRestructure(ctx, full, tr, cfg)
	} else {
		fullErr = algebraic.OptimizeDelayT(full, tr)
	}
	if fullErr == nil {
		if m, err := mapper.MapDelayT(full, lib, tr); err == nil {
			if met, err := measure(m, lib); err == nil {
				cands = append(cands, cand{m, met})
			}
		}
	}
	plain := n.Clone()
	plain.Sweep()
	if err := algebraic.DecomposeBalanced(plain); err == nil {
		if m, err := mapper.MapDelayT(plain, lib, tr); err == nil {
			if met, err := measure(m, lib); err == nil {
				cands = append(cands, cand{m, met})
			}
		}
	}
	sp.Add("remap_candidates", int64(len(cands)))
	if len(cands) == 0 {
		return nil, Metrics{}, fmt.Errorf("flows: no mappable candidate")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.met.Clk < best.met.Clk-1e-9 ||
			(c.met.Clk < best.met.Clk+1e-9 && c.met.Area < best.met.Area) {
			best = c
		}
	}
	return best.net, best.met, nil
}

// applySweepDCs is the DC extraction beyond the exact-reachability wall:
// register equivalence classes proven by k-induction (internal/sweep) are
// installed as DCret classes — the same bookkeeping retiming-induced
// equivalences use, with the invariant proven instead of known by
// construction. Every node is first simplified against the (xi ⊕ xj)
// don't cares of same-class register fanins; remaining fanout of
// non-representative members is then rewritten onto the class
// representative, and registers proven stuck at constant 0 are replaced
// by a constant source, letting Sweep retire the dead registers.
func applySweepDCs(ctx context.Context, work *network.Network, tr *obs.Tracer, cfg Config) error {
	st := tr.Begin("sweep.dc_extract")
	defer st.End()
	res, err := sweep.Registers(ctx, work, sweep.Options{
		K:       cfg.InductionK,
		Workers: cfg.Workers,
		Tracer:  tr,
	})
	if err != nil {
		return fmt.Errorf("flows: sweep DC extraction: %w", err)
	}
	dc := dontcare.New()
	for _, cls := range res.Classes {
		lats := make([]*network.Latch, len(cls))
		for i, li := range cls {
			lats[i] = work.Latches[li]
		}
		dc.AddClass(lats)
	}
	improved := 0
	if dc.NumClasses() > 0 {
		for _, v := range work.Nodes() {
			if v.Kind == network.KindLogic && dc.SimplifyNodeLocal(work, v) {
				improved++
			}
		}
	}
	dead := map[*network.Latch]bool{}
	for _, cls := range res.Classes {
		rep := work.Latches[cls[0]].Output
		for _, li := range cls[1:] {
			work.RedirectConsumers(work.Latches[li].Output, rep)
			dead[work.Latches[li]] = true
		}
	}
	if len(res.Const) > 0 {
		zero := work.FindNode("sweep_zero")
		if zero == nil {
			zero = work.AddConst("sweep_zero", false)
		}
		for _, li := range res.Const {
			work.RedirectConsumers(work.Latches[li].Output, zero)
			dead[work.Latches[li]] = true
		}
	}
	// Latches are never garbage-collected by Sweep (every register is a
	// root), so the now-unread members retire explicitly; their private
	// next-state cones then die in the sweep.
	var retire []*network.Latch
	for _, l := range work.Latches {
		if dead[l] && work.NumFanouts(l.Output) == 0 {
			retire = append(retire, l)
		}
	}
	for _, l := range retire {
		work.RemoveLatch(l)
	}
	merged := len(retire)
	if merged > 0 {
		work.Sweep()
	}
	st.Add("dc_nodes_simplified", int64(improved))
	st.Add("sweep_regs_merged", int64(merged))
	return nil
}

// applyUnreachableDCs simplifies every node against the unreachable-state
// don't cares projected onto its register fanins, returning the number of
// nodes improved and the total SOP literals saved.
func applyUnreachableDCs(n *network.Network, a *reach.Analysis) (improvedNodes, litsSaved int) {
	latchIdx := make(map[*network.Node]int, len(n.Latches))
	for i, l := range n.Latches {
		latchIdx[l.Output] = i
	}
	for _, v := range n.Nodes() {
		if v.Kind != network.KindLogic {
			continue
		}
		var regs []int      // latch indices among fanins
		var positions []int // fanin positions of those latches
		for pos, fi := range v.Fanins {
			if li, ok := latchIdx[fi]; ok {
				regs = append(regs, li)
				positions = append(positions, pos)
			}
		}
		if len(regs) < 2 {
			continue
		}
		proj := a.UnreachableDC(regs)
		if proj.IsZeroFunction() {
			continue
		}
		// Express over the node's fanin space.
		varMap := make([]int, len(regs))
		copy(varMap, positions)
		dc := proj.Remap(len(v.Fanins), varMap)
		s := logic.Simplify(v.Func, dc)
		if s.NumLits() < v.Func.NumLits() {
			litsSaved += v.Func.NumLits() - s.NumLits()
			n.SetFunction(v, v.Fanins, s)
			n.TrimFanins(v)
			improvedNodes++
		}
	}
	return improvedNodes, litsSaved
}

// Resynthesis runs the paper's flow on a mapped circuit: Algorithm 1
// (iterated), then remapping. The input should be a ScriptDelay result.
func Resynthesis(mappedIn *network.Network, lib *genlib.Library) (*Result, error) {
	return ResynthesisT(mappedIn, lib, nil)
}

// ResynthesisT is Resynthesis with tracing: a "flow.resynthesis" span over
// the core Algorithm 1 passes, the guiding min-period retiming, and the
// remap; a guard revert records flow_reverted and zeroes the prefix.
func ResynthesisT(mappedIn *network.Network, lib *genlib.Library, tr *obs.Tracer) (*Result, error) {
	return ResynthesisCtx(context.Background(), mappedIn, lib, Config{Tracer: tr})
}

// ResynthesisCtx is ResynthesisT under the guard layer. A rolled-back
// Algorithm 1 keeps the input (noted), a rolled-back guide retiming keeps
// the restructured network silently (it is opportunistic, like the
// keep-only-if-better rule), and a rolled-back remap degrades to the
// mapped input. The delayed-replacement prefix is zeroed whenever the
// returned network is not the committed resynthesis result.
func ResynthesisCtx(ctx context.Context, mappedIn *network.Network, lib *genlib.Library, cfg Config) (*Result, error) {
	tr := cfg.Tracer
	sp := tr.Begin("flow.resynthesis")
	defer sp.End()
	fctx, cancel := cfg.Budget.FlowContext(ctx)
	defer cancel()
	prefix := 0
	declined := ""
	w, rep := guard.Tx(fctx, "core.resynthesize", mappedIn, cfg.tx(cfg.fault("core.resynthesize")),
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			opt := core.Options{
				// The same mapped delay model measure() uses: gate pin
				// delays from the bound-gate annotations, no fanout load
				// (LoadFactor 0). The clone preserves the input's bindings,
				// so both paths stay consistent (regression-tested in
				// flows_test.go).
				Delay:       timing.MappedDelay{N: work},
				VertexDelay: retime.GateVertexDelay,
				Tracer:      tr,
			}
			res, err := core.ResynthesizeIterateCtx(ctx, work, opt, 3)
			if err != nil {
				return nil, 0, err
			}
			if !res.Applied {
				declined = "not resynthesizable: " + res.Reason
			}
			prefix = res.PrefixK
			return res.Network, res.PrefixK, nil
		})
	note := declined
	if !rep.Committed {
		prefix = 0
		note = rep.Note
	}
	// "Our approach restructures the circuit and then guides retiming to
	// achieve a cycle-time reduction": after the DCret restructuring, a
	// conventional min-period retiming pass balances the remaining paths.
	// It is kept only when it helps and the initial states work out.
	g, grep := guard.Tx(fctx, "retime.guide", w, cfg.tx(cfg.fault("retime.guide")),
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			ret, info, rerr := retime.MinPeriodCtx(ctx, work, retime.GateVertexDelay, tr)
			if rerr != nil {
				return nil, 0, rerr
			}
			if info.PeriodAfter < info.PeriodBefore {
				return ret, 0, nil
			}
			return work, 0, nil
		})
	if grep.Committed {
		w = g
	}
	m, met, committed, err := remapTx(fctx, w, mappedIn, lib, cfg, &note)
	if err != nil {
		return nil, err
	}
	if !committed {
		prefix = 0 // degraded to the untouched input
	}
	before := m
	m, met = guardAgainstHarm(mappedIn, lib, m, met, &note, sp)
	if m != before {
		prefix = 0 // reverted to the untouched input
	}
	met.Note = note
	return &Result{Net: m, Metrics: met, PrefixK: prefix}, nil
}

// Verify checks a flow result against the source circuit: exact
// product-machine equivalence with delayed replacement when the state
// space permits, long random simulation otherwise.
func Verify(src *network.Network, r *Result) error {
	return VerifyCtx(context.Background(), src, r)
}

// VerifyCtx is Verify with cancellation threaded into the product-machine
// traversal; a budget exhausted mid-proof surfaces as a typed guard error,
// not as a verification failure.
func VerifyCtx(ctx context.Context, src *network.Network, r *Result) error {
	return VerifyCfg(ctx, src, r, Config{})
}

// VerifyCfg is VerifyCtx with the configuration's reach limits (image
// partitioning, variable order, latch/node budgets) threaded into the
// product-machine traversal. With cfg.Sweep, circuits beyond the exact
// limits are proved by k-induction over the product machine; only an
// inconclusive induction degrades to the random-simulation spot check.
func VerifyCfg(ctx context.Context, src *network.Network, r *Result, cfg Config) error {
	_, err := seqverify.Check(ctx, src, r.Net, seqverify.Options{
		Delay:      r.PrefixK,
		Limits:     cfg.reachLimits(),
		Sweep:      cfg.Sweep,
		InductionK: cfg.InductionK,
		Workers:    cfg.Workers,
		Tracer:     cfg.Tracer,
	})
	if err == nil {
		return nil
	}
	if errors.Is(err, seqverify.ErrTooLarge) {
		sc := sim.DefaultSpotCheck.Verify
		return bitsim.RandomEquivalent(src, r.Net, r.PrefixK, sc.Cycles, sc.Seed,
			bitsim.Options{Tracer: cfg.Tracer})
	}
	return err
}

// VerifyVerdict is VerifyCfg surfacing how the equivalence was
// established: seqverify.VerdictExact, seqverify.VerdictInduction, or
// "spot-checked" when both exact and inductive engines were out of reach
// and only the random-simulation spot check vouches for the result.
func VerifyVerdict(ctx context.Context, src *network.Network, r *Result, cfg Config) (string, error) {
	v, err := seqverify.Check(ctx, src, r.Net, seqverify.Options{
		Delay:      r.PrefixK,
		Limits:     cfg.reachLimits(),
		Sweep:      cfg.Sweep,
		InductionK: cfg.InductionK,
		Workers:    cfg.Workers,
		Tracer:     cfg.Tracer,
	})
	if err == nil {
		return string(v), nil
	}
	if errors.Is(err, seqverify.ErrTooLarge) {
		sc := sim.DefaultSpotCheck.Verify
		return VerdictSpotChecked, bitsim.RandomEquivalent(src, r.Net, r.PrefixK, sc.Cycles, sc.Seed,
			bitsim.Options{Tracer: cfg.Tracer})
	}
	return "", err
}

// VerdictSpotChecked marks a result vouched for only by bounded random
// simulation (see VerifyVerdict).
const VerdictSpotChecked = "spot-checked"

// RunAll executes the three flows of Table I on one source circuit.
func RunAll(src *network.Network, lib *genlib.Library) (sd, ret, rsyn *Result, err error) {
	return RunAllT(src, lib, nil)
}

// RunAllT is RunAll with tracing: each flow contributes its own top-level
// span (flow.script_delay, flow.retime_combopt, flow.resynthesis) to tr.
func RunAllT(src *network.Network, lib *genlib.Library, tr *obs.Tracer) (sd, ret, rsyn *Result, err error) {
	return RunAllCtx(context.Background(), src, lib, Config{Tracer: tr})
}

// RunAllCtx is RunAllT under the guard layer. Each flow additionally runs
// under flow-level panic containment (belt and braces over the per-pass
// runner), so a defect anywhere in a flow surfaces as a typed error on
// that flow instead of killing the process.
func RunAllCtx(ctx context.Context, src *network.Network, lib *genlib.Library, cfg Config) (sd, ret, rsyn *Result, err error) {
	run := func(name string, f func(ctx context.Context) error) error {
		return guard.Run(ctx, name, src, f)
	}
	if err = run("flow.script_delay", func(ctx context.Context) error {
		var ferr error
		sd, ferr = ScriptDelayCtx(ctx, src, lib, cfg)
		return ferr
	}); err != nil {
		return nil, nil, nil, err
	}
	if err = run("flow.retime_combopt", func(ctx context.Context) error {
		var ferr error
		ret, ferr = RetimeCombOptCtx(ctx, sd.Net, lib, cfg)
		return ferr
	}); err != nil {
		return nil, nil, nil, err
	}
	if err = run("flow.resynthesis", func(ctx context.Context) error {
		var ferr error
		rsyn, ferr = ResynthesisCtx(ctx, sd.Net, lib, cfg)
		return ferr
	}); err != nil {
		return nil, nil, nil, err
	}
	return sd, ret, rsyn, nil
}
