// Package flows implements the three evaluation flows of Table I:
//
//  1. script.delay — technology-independent delay optimization + minimum-
//     delay technology mapping;
//  2. script.delay + retiming + comb. opt. — conventional min-period
//     retiming followed by combinational re-optimization using
//     retiming-induced external don't cares extracted by implicit state
//     enumeration, then remapping;
//  3. script.delay + resynthesis — the paper's Algorithm 1 applied to the
//     mapped circuit, then remapping.
//
// Every flow reports the Table I metrics (register count, clock period,
// mapped area) and carries the verification prefix for delayed-replacement
// equivalence checking.
package flows

import (
	"errors"
	"fmt"

	"repro/internal/algebraic"
	"repro/internal/core"
	"repro/internal/genlib"
	"repro/internal/logic"
	"repro/internal/mapper"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/retime"
	"repro/internal/seqverify"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Metrics are the per-circuit Table I numbers.
type Metrics struct {
	Regs int
	Clk  float64
	Area float64
	// Note records non-applicability or fallbacks ("retiming failed",
	// "not resynthesizable", …), mirroring the paper's footnotes.
	Note string
}

func (m Metrics) String() string {
	s := fmt.Sprintf("reg=%d clk=%.2f area=%.0f", m.Regs, m.Clk, m.Area)
	if m.Note != "" {
		s += " (" + m.Note + ")"
	}
	return s
}

// Result bundles a flow's output network with its metrics.
type Result struct {
	Net *network.Network
	Metrics
	// PrefixK is the delayed-replacement prefix for verification (0 for
	// flows that preserve safe equivalence).
	PrefixK int
}

func measure(n *network.Network, lib *genlib.Library) (Metrics, error) {
	clk, err := timing.Period(n, timing.MappedDelay{N: n})
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		Regs: len(n.Latches),
		Clk:  clk,
		Area: mapper.Area(n, lib),
	}, nil
}

// ScriptDelay optimizes and maps a circuit for minimum delay.
func ScriptDelay(n *network.Network, lib *genlib.Library) (*Result, error) {
	return ScriptDelayT(n, lib, nil)
}

// ScriptDelayT is ScriptDelay with tracing: a "flow.script_delay" span
// whose children time the algebraic script and the mapper.
func ScriptDelayT(n *network.Network, lib *genlib.Library, tr *obs.Tracer) (*Result, error) {
	sp := tr.Begin("flow.script_delay")
	defer sp.End()
	w := n.Clone()
	if err := algebraic.OptimizeDelayT(w, tr); err != nil {
		return nil, fmt.Errorf("flows: optimize: %w", err)
	}
	m, err := mapper.MapDelayT(w, lib, tr)
	if err != nil {
		return nil, fmt.Errorf("flows: map: %w", err)
	}
	met, err := measure(m, lib)
	if err != nil {
		return nil, err
	}
	return &Result{Net: m, Metrics: met}, nil
}

// RetimeCombOpt runs the conventional baseline on a mapped circuit:
// min-period retiming, unreachable-state don't-care extraction by implicit
// state enumeration, per-node simplification, and remapping. The input
// should be a ScriptDelay result; it is not modified.
func RetimeCombOpt(mappedIn *network.Network, lib *genlib.Library) (*Result, error) {
	return RetimeCombOptT(mappedIn, lib, nil)
}

// RetimeCombOptT is RetimeCombOpt with tracing: a "flow.retime_combopt"
// span over the min-period retimer, the implicit state enumeration, the
// don't-care application (dc_nodes_simplified / lits_saved), and the
// remap; a guard revert records flow_reverted.
func RetimeCombOptT(mappedIn *network.Network, lib *genlib.Library, tr *obs.Tracer) (*Result, error) {
	sp := tr.Begin("flow.retime_combopt")
	defer sp.End()
	note := ""
	ret, _, err := retime.MinPeriodT(mappedIn, retime.GateVertexDelay, tr)
	if err != nil {
		// The paper: "retiming was either unable to minimize the cycle
		// time, or was unable to preserve/compute the initial states".
		ret = mappedIn.Clone()
		note = "retiming failed: " + err.Error()
	}
	// Combinational optimization with retiming-induced external don't
	// cares from implicit state enumeration (bounded; skipped when the
	// state space is out of reach, as it was for SIS on large circuits).
	if a, rerr := reach.AnalyzeT(ret, reach.DefaultLimits, tr); rerr == nil {
		st := tr.Begin("apply_unreachable_dcs")
		improved, lits := applyUnreachableDCs(ret, a)
		st.Add("dc_nodes_simplified", int64(improved))
		if lits > 0 {
			st.Add("lits_saved", int64(lits))
		}
		st.End()
	} else if note == "" {
		// The wrapped reach error carries the observed node/iteration
		// numbers (or the latch count), not just "too large".
		note = "DC extraction skipped: " + rerr.Error()
	}
	m, met, err := bestRemap(ret, lib, tr)
	if err != nil {
		return nil, err
	}
	m, met = guardAgainstHarm(mappedIn, lib, m, met, &note, sp)
	met.Note = note
	return &Result{Net: m, Metrics: met}, nil
}

// guardAgainstHarm keeps the flow input when the transformed circuit ended
// up slower (or equally fast but larger) — the "stopped from doing any
// harm" control the paper says it is investigating (Section V). A revert
// is recorded on sp as flow_reverted.
func guardAgainstHarm(input *network.Network, lib *genlib.Library, m *network.Network, met Metrics, note *string, sp *obs.Span) (*network.Network, Metrics) {
	in, err := measure(input, lib)
	if err != nil {
		return m, met
	}
	if met.Clk < in.Clk-1e-9 || (met.Clk < in.Clk+1e-9 && met.Area <= in.Area) {
		return m, met
	}
	sp.Add("flow_reverted", 1)
	if *note == "" {
		*note = "reverted (no gain over input)"
	}
	return input.Clone(), in
}

// bestRemap produces the best mapped implementation of a network among
// (a) full re-optimization + mapping and (b) plain re-decomposition +
// mapping, compared by clock then area. Re-optimizing an already-mapped
// netlist is occasionally lossy; keeping the better candidate models the
// "keep the best implementation seen" discipline of a real flow.
func bestRemap(n *network.Network, lib *genlib.Library, tr *obs.Tracer) (*network.Network, Metrics, error) {
	sp := tr.Begin("remap")
	defer sp.End()
	type cand struct {
		net *network.Network
		met Metrics
	}
	var cands []cand
	full := n.Clone()
	if err := algebraic.OptimizeDelayT(full, tr); err == nil {
		if m, err := mapper.MapDelayT(full, lib, tr); err == nil {
			if met, err := measure(m, lib); err == nil {
				cands = append(cands, cand{m, met})
			}
		}
	}
	plain := n.Clone()
	plain.Sweep()
	if err := algebraic.DecomposeBalanced(plain); err == nil {
		if m, err := mapper.MapDelayT(plain, lib, tr); err == nil {
			if met, err := measure(m, lib); err == nil {
				cands = append(cands, cand{m, met})
			}
		}
	}
	sp.Add("remap_candidates", int64(len(cands)))
	if len(cands) == 0 {
		return nil, Metrics{}, fmt.Errorf("flows: no mappable candidate")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.met.Clk < best.met.Clk-1e-9 ||
			(c.met.Clk < best.met.Clk+1e-9 && c.met.Area < best.met.Area) {
			best = c
		}
	}
	return best.net, best.met, nil
}

// applyUnreachableDCs simplifies every node against the unreachable-state
// don't cares projected onto its register fanins, returning the number of
// nodes improved and the total SOP literals saved.
func applyUnreachableDCs(n *network.Network, a *reach.Analysis) (improvedNodes, litsSaved int) {
	latchIdx := make(map[*network.Node]int, len(n.Latches))
	for i, l := range n.Latches {
		latchIdx[l.Output] = i
	}
	for _, v := range n.Nodes() {
		if v.Kind != network.KindLogic {
			continue
		}
		var regs []int      // latch indices among fanins
		var positions []int // fanin positions of those latches
		for pos, fi := range v.Fanins {
			if li, ok := latchIdx[fi]; ok {
				regs = append(regs, li)
				positions = append(positions, pos)
			}
		}
		if len(regs) < 2 {
			continue
		}
		proj := a.UnreachableDC(regs)
		if proj.IsZeroFunction() {
			continue
		}
		// Express over the node's fanin space.
		varMap := make([]int, len(regs))
		copy(varMap, positions)
		dc := proj.Remap(len(v.Fanins), varMap)
		s := logic.Simplify(v.Func, dc)
		if s.NumLits() < v.Func.NumLits() {
			litsSaved += v.Func.NumLits() - s.NumLits()
			n.SetFunction(v, v.Fanins, s)
			n.TrimFanins(v)
			improvedNodes++
		}
	}
	return improvedNodes, litsSaved
}

// Resynthesis runs the paper's flow on a mapped circuit: Algorithm 1
// (iterated), then remapping. The input should be a ScriptDelay result.
func Resynthesis(mappedIn *network.Network, lib *genlib.Library) (*Result, error) {
	return ResynthesisT(mappedIn, lib, nil)
}

// ResynthesisT is Resynthesis with tracing: a "flow.resynthesis" span over
// the core Algorithm 1 passes, the guiding min-period retiming, and the
// remap; a guard revert records flow_reverted and zeroes the prefix.
func ResynthesisT(mappedIn *network.Network, lib *genlib.Library, tr *obs.Tracer) (*Result, error) {
	sp := tr.Begin("flow.resynthesis")
	defer sp.End()
	opt := core.Options{
		// The same mapped delay model measure() uses: gate pin delays from
		// the bound-gate annotations, no fanout load (LoadFactor 0). N is
		// the flow input so both paths stay consistent (regression-tested
		// in flows_test.go).
		Delay:       timing.MappedDelay{N: mappedIn},
		VertexDelay: retime.GateVertexDelay,
		Tracer:      tr,
	}
	res, err := core.ResynthesizeIterate(mappedIn, opt, 3)
	if err != nil {
		return nil, err
	}
	note := ""
	if !res.Applied {
		note = "not resynthesizable: " + res.Reason
	}
	w := res.Network.Clone()
	// "Our approach restructures the circuit and then guides retiming to
	// achieve a cycle-time reduction": after the DCret restructuring, a
	// conventional min-period retiming pass balances the remaining paths.
	// It is kept only when it helps and the initial states work out.
	if ret, info, rerr := retime.MinPeriodT(w, retime.GateVertexDelay, tr); rerr == nil &&
		info.PeriodAfter < info.PeriodBefore {
		w = ret
	}
	m, met, err := bestRemap(w, lib, tr)
	if err != nil {
		return nil, err
	}
	prefix := res.PrefixK
	before := m
	m, met = guardAgainstHarm(mappedIn, lib, m, met, &note, sp)
	if m != before {
		prefix = 0 // reverted to the untouched input
	}
	met.Note = note
	return &Result{Net: m, Metrics: met, PrefixK: prefix}, nil
}

// Verify checks a flow result against the source circuit: exact
// product-machine equivalence with delayed replacement when the state
// space permits, long random simulation otherwise.
func Verify(src *network.Network, r *Result) error {
	err := seqverify.Equivalent(src, r.Net, seqverify.Options{Delay: r.PrefixK})
	if err == nil {
		return nil
	}
	if errors.Is(err, seqverify.ErrTooLarge) {
		return sim.RandomEquivalent(src, r.Net, r.PrefixK, 3000, 1999)
	}
	return err
}

// RunAll executes the three flows of Table I on one source circuit.
func RunAll(src *network.Network, lib *genlib.Library) (sd, ret, rsyn *Result, err error) {
	return RunAllT(src, lib, nil)
}

// RunAllT is RunAll with tracing: each flow contributes its own top-level
// span (flow.script_delay, flow.retime_combopt, flow.resynthesis) to tr.
func RunAllT(src *network.Network, lib *genlib.Library, tr *obs.Tracer) (sd, ret, rsyn *Result, err error) {
	sd, err = ScriptDelayT(src, lib, tr)
	if err != nil {
		return nil, nil, nil, err
	}
	ret, err = RetimeCombOptT(sd.Net, lib, tr)
	if err != nil {
		return nil, nil, nil, err
	}
	rsyn, err = ResynthesisT(sd.Net, lib, tr)
	if err != nil {
		return nil, nil, nil, err
	}
	return sd, ret, rsyn, nil
}
