package flows

import (
	"context"
	"math"

	"repro/internal/aig"
	"repro/internal/network"
	"repro/internal/obs"
)

// The substrate selects the technology-independent representation the
// flows restructure before mapping. The SOP substrate (the default) is the
// paper's two-level machinery — exact but bounded by cover minimization
// cost around the s5378 scale. The AIG substrate routes the restructuring
// step through internal/aig: structural hashing plus depth-driven balance,
// which holds two orders of magnitude more gates in the same budget. Both
// substrates feed the same genlib mapper, so Metrics stay comparable, and
// the SOP path doubles as the correctness oracle for the AIG path
// (TestPropertyAigMatchesSOP).
const (
	// SubstrateSOP is the sum-of-products network substrate (default).
	SubstrateSOP = "sop"
	// SubstrateAIG is the And-Inverter Graph substrate.
	SubstrateAIG = "aig"
)

// SubstrateNames reports the accepted Config.Substrate values.
func SubstrateNames() []string { return []string{SubstrateSOP, SubstrateAIG} }

// KnownSubstrate reports whether name selects a substrate ("" is the
// default SOP).
func KnownSubstrate(name string) bool {
	return name == "" || name == SubstrateSOP || name == SubstrateAIG
}

// substrate resolves the configured substrate, defaulting to SOP.
func (c Config) substrate() string {
	if c.Substrate == "" {
		return SubstrateSOP
	}
	return c.Substrate
}

// DefaultRewriteIters is the rewrite+balance iteration bound of the AIG
// substrate's restructuring loop when Config.RewriteIters is zero. Two
// rounds captures nearly all of the gain in practice — the first rewrite
// exposes sharing the balance pass then restructures, the second harvests
// what that restructuring exposed — while keeping the pass budget flat.
const DefaultRewriteIters = 2

// rewriteIters resolves the configured iteration bound.
func (c Config) rewriteIters() int {
	if c.RewriteIters <= 0 {
		return DefaultRewriteIters
	}
	return c.RewriteIters
}

// aigRestructure is the AIG substrate's technology-independent
// optimization: convert, sweep, then a keep-best loop of NPN cut
// rewriting and balancing until fixpoint or the iteration budget. The
// span carries the substrate counters (aig_nodes, aig_strash_hits,
// aig_levels, aig_rewrite_gain, aig_cuts_pruned, aig_wave_count) that the
// serving layer's Prometheus bridge exports.
func aigRestructure(ctx context.Context, work *network.Network, tr *obs.Tracer, cfg Config) (*network.Network, error) {
	sp := tr.Begin("aig.restructure")
	defer sp.End()
	g, err := aig.FromNetwork(work)
	if err != nil {
		return nil, err
	}
	g.Sweep()
	strashHits := g.StrashHits()
	best := g.Balance()
	strashHits += best.StrashHits()
	// Keep-best by (depth, nodes): the flows map for minimum delay, so a
	// depth regression is never traded for area, and rewriting gains at
	// equal depth are kept. The loop input advances to the latest balanced
	// graph even when it is not the best so far — rewriting can pass
	// through a plateau — but only the best is lowered.
	betterThan := func(a, b *aig.Graph) bool {
		if a.Depth() != b.Depth() {
			return a.Depth() < b.Depth()
		}
		return a.NumAnds() < b.NumAnds()
	}
	var gain, pruned, waves int64
	cur := best
	for i := 0; i < cfg.rewriteIters(); i++ {
		ng, stats, rerr := cur.Rewrite(ctx, aig.RewriteOptions{Workers: cfg.Workers})
		if rerr != nil {
			return nil, rerr
		}
		gain += stats.Gain
		pruned += stats.CutsPruned
		waves += stats.Waves
		strashHits += ng.StrashHits()
		bal := ng.Balance()
		strashHits += bal.StrashHits()
		if betterThan(bal, best) {
			best = bal
		}
		if stats.Applied == 0 {
			break // fixpoint: another round would see the same cuts
		}
		cur = bal
	}
	sp.Add("aig_nodes", int64(best.NumAnds()))
	sp.Add("aig_strash_hits", strashHits)
	sp.Add("aig_levels", int64(best.Depth()))
	sp.Add("aig_rewrite_gain", gain)
	sp.Add("aig_cuts_pruned", pruned)
	sp.Add("aig_wave_count", waves)
	return best.ToSubjectNetwork()
}

// RestructureAIG applies the AIG substrate's technology-independent
// optimization to work and returns the restructured subject network. It is
// the pass ScriptDelayCtx runs for Config{Substrate: SubstrateAIG},
// exported so benchmark harnesses (benchflows -aig-bench) measure exactly
// the production pass rather than a reimplementation. Only cfg.Workers,
// cfg.RewriteIters, and cfg.Tracer are consulted.
func RestructureAIG(ctx context.Context, work *network.Network, cfg Config) (*network.Network, error) {
	return aigRestructure(ctx, work, cfg.Tracer, cfg)
}

// PeriodClass buckets a mapped clock period into a factor-of-two
// comparability class: two implementations of the same circuit land in the
// same class unless one is better than the other by 2x or more. The
// substrate property test holds both substrates to the same class over the
// paper registry.
func PeriodClass(clk float64) int {
	if clk <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(clk)))
}
