package flows

import (
	"math"

	"repro/internal/aig"
	"repro/internal/network"
	"repro/internal/obs"
)

// The substrate selects the technology-independent representation the
// flows restructure before mapping. The SOP substrate (the default) is the
// paper's two-level machinery — exact but bounded by cover minimization
// cost around the s5378 scale. The AIG substrate routes the restructuring
// step through internal/aig: structural hashing plus depth-driven balance,
// which holds two orders of magnitude more gates in the same budget. Both
// substrates feed the same genlib mapper, so Metrics stay comparable, and
// the SOP path doubles as the correctness oracle for the AIG path
// (TestPropertyAigMatchesSOP).
const (
	// SubstrateSOP is the sum-of-products network substrate (default).
	SubstrateSOP = "sop"
	// SubstrateAIG is the And-Inverter Graph substrate.
	SubstrateAIG = "aig"
)

// SubstrateNames reports the accepted Config.Substrate values.
func SubstrateNames() []string { return []string{SubstrateSOP, SubstrateAIG} }

// KnownSubstrate reports whether name selects a substrate ("" is the
// default SOP).
func KnownSubstrate(name string) bool {
	return name == "" || name == SubstrateSOP || name == SubstrateAIG
}

// substrate resolves the configured substrate, defaulting to SOP.
func (c Config) substrate() string {
	if c.Substrate == "" {
		return SubstrateSOP
	}
	return c.Substrate
}

// aigRestructure is the AIG substrate's technology-independent
// optimization: convert, sweep, balance, convert back. The span carries
// the substrate counters (aig_nodes, aig_strash_hits, aig_levels) that the
// serving layer's Prometheus bridge exports.
func aigRestructure(work *network.Network, tr *obs.Tracer) (*network.Network, error) {
	sp := tr.Begin("aig.restructure")
	defer sp.End()
	g, err := aig.FromNetwork(work)
	if err != nil {
		return nil, err
	}
	g.Sweep()
	bal := g.Balance()
	sp.Add("aig_nodes", int64(bal.NumAnds()))
	sp.Add("aig_strash_hits", g.StrashHits()+bal.StrashHits())
	sp.Add("aig_levels", int64(bal.Depth()))
	return bal.ToSubjectNetwork()
}

// RestructureAIG applies the AIG substrate's technology-independent
// optimization to work and returns the restructured subject network. It is
// the pass ScriptDelayCtx runs for Config{Substrate: SubstrateAIG},
// exported so benchmark harnesses (benchflows -aig-bench) measure exactly
// the production pass rather than a reimplementation.
func RestructureAIG(work *network.Network, tr *obs.Tracer) (*network.Network, error) {
	return aigRestructure(work, tr)
}

// PeriodClass buckets a mapped clock period into a factor-of-two
// comparability class: two implementations of the same circuit land in the
// same class unless one is better than the other by 2x or more. The
// substrate property test holds both substrates to the same class over the
// paper registry.
func PeriodClass(clk float64) int {
	if clk <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(clk)))
}
