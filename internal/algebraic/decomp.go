package algebraic

import (
	"context"
	"sort"

	"repro/internal/guard"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
)

// DecomposeBalanced rewrites every logic node into a network of inverters
// and two-input AND/OR gates, building delay-balanced trees that combine
// early-arriving operands first (the speed_up/balance step of a delay
// script, and the subject-graph preparation for technology mapping).
func DecomposeBalanced(n *network.Network) error {
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	arrival := make(map[*network.Node]float64)
	for _, p := range n.PIs {
		arrival[p] = 0
	}
	for _, l := range n.Latches {
		arrival[l.Output] = 0
	}
	inv := logic.MustParseCover(1, "0")
	and := logic.MustParseCover(2, "11")
	or := logic.MustParseCover(2, "1-", "-1")
	// Shared inverters, one per inverted source, created on demand.
	invOf := make(map[*network.Node]*network.Node)
	getInv := func(src *network.Node) *network.Node {
		if iv, ok := invOf[src]; ok {
			return iv
		}
		iv := n.AddLogic(src.Name+"_not", []*network.Node{src}, inv.Clone())
		arrival[iv] = arrival[src] + 1
		invOf[src] = iv
		return iv
	}
	type operand struct {
		node *network.Node
		arr  float64
	}
	// tree combines operands with the given 2-input function, pairing the
	// earliest arrivals first (Huffman-style balancing).
	tree := func(ops []operand, f *logic.Cover) operand {
		for len(ops) > 1 {
			sort.SliceStable(ops, func(i, j int) bool { return ops[i].arr < ops[j].arr })
			a, b := ops[0], ops[1]
			g := n.AddLogic("", []*network.Node{a.node, b.node}, f.Clone())
			na := a.arr
			if b.arr > na {
				na = b.arr
			}
			op := operand{g, na + 1}
			arrival[g] = op.arr
			ops = append([]operand{op}, ops[2:]...)
		}
		return ops[0]
	}

	for _, v := range order {
		if len(v.Func.Cubes) == 0 {
			// Constant 0: keep as-is (zero-fanin node).
			if len(v.Fanins) > 0 {
				n.SetFunction(v, nil, logic.Zero(0))
			}
			arrival[v] = 0
			continue
		}
		if v.Func.HasFullCube() {
			n.SetFunction(v, nil, logic.One(0))
			arrival[v] = 0
			continue
		}
		// Inverters and buffers pass through unchanged.
		if isInvOrBuf(v.Func) {
			a := 0.0
			for _, fi := range v.Fanins {
				if arrival[fi] > a {
					a = arrival[fi]
				}
			}
			arrival[v] = a + 1
			continue
		}
		var cubeRoots []operand
		for _, c := range v.Func.Cubes {
			var lits []operand
			for pin := 0; pin < c.N; pin++ {
				fi := v.Fanins[pin]
				switch c.Lit(pin) {
				case logic.LitPos:
					lits = append(lits, operand{fi, arrival[fi]})
				case logic.LitNeg:
					iv := getInv(fi)
					lits = append(lits, operand{iv, arrival[iv]})
				}
			}
			if len(lits) == 0 {
				continue // full cube handled above; defensive
			}
			cubeRoots = append(cubeRoots, tree(lits, and))
		}
		root := tree(cubeRoots, or)
		// Splice the decomposition in place of v: keep v as a buffer so
		// external references (name, PO drivers) stay valid, then let the
		// simplifier absorb it — or rewire consumers directly.
		if root.node != v {
			n.RedirectConsumers(v, root.node)
			if n.NumFanouts(v) == 0 {
				n.RemoveDeadNode(v)
			}
		}
		arrival[root.node] = root.arr
	}
	n.Sweep()
	return nil
}

// isInvOrBuf reports whether a cover is a single-literal function (the
// only shapes the decomposition leaves untouched; everything else becomes
// AND2/OR2/INV so the mapper's base case always matches).
func isInvOrBuf(f *logic.Cover) bool {
	return len(f.Cubes) == 1 && f.Cubes[0].CountLits() == 1
}

// OptimizeDelay is the technology-independent delay script used by all
// three evaluation flows before mapping: sweep, simplify, eliminate small
// nodes, extract common divisors, then decompose into balanced two-input
// trees (the script.delay analogue).
func OptimizeDelay(n *network.Network) error {
	return OptimizeDelayT(n, nil)
}

// OptimizeDelayT is OptimizeDelay with tracing: an "algebraic.optimize"
// span with one child step span per script pass and counters for nodes
// simplified/eliminated, kernels extracted, and literals saved.
func OptimizeDelayT(n *network.Network, tr *obs.Tracer) error {
	return OptimizeDelayCtx(context.Background(), n, tr)
}

// OptimizeDelayCtx is OptimizeDelayT with cancellation, checked between
// script passes; exceeding the deadline returns a typed guard budget error
// with the network left in a valid intermediate state.
func OptimizeDelayCtx(ctx context.Context, n *network.Network, tr *obs.Tracer) error {
	sp := tr.Begin("algebraic.optimize")
	defer sp.End()
	litsIn := n.NumLits()
	simplified, eliminated, kernels := 0, 0, 0
	step := func(name string, f func()) error {
		if cerr := guard.Check(ctx, "algebraic.optimize"); cerr != nil {
			return cerr
		}
		s := tr.Begin(name)
		f()
		s.End()
		return nil
	}
	for _, st := range []struct {
		name string
		f    func()
	}{
		{"sweep", func() { n.Sweep(); n.TrimAllFanins() }},
		{"simplify", func() { simplified += SimplifyNodes(n) }},
		{"eliminate", func() { eliminated = Eliminate(n, 0) }},
		{"simplify", func() { simplified += SimplifyNodes(n) }},
		{"kernels", func() { kernels = ExtractKernels(n, 64) }},
		{"simplify", func() { simplified += SimplifyNodes(n) }},
	} {
		if err := step(st.name, st.f); err != nil {
			return err
		}
	}
	if cerr := guard.Check(ctx, "algebraic.optimize"); cerr != nil {
		return cerr
	}
	ds := tr.Begin("decompose")
	err := DecomposeBalanced(n)
	ds.End()
	if err != nil {
		return err
	}
	n.Sweep()
	sp.Add("algebraic_nodes_simplified", int64(simplified))
	sp.Add("algebraic_nodes_eliminated", int64(eliminated))
	sp.Add("algebraic_kernels_extracted", int64(kernels))
	if d := litsIn - n.NumLits(); d > 0 {
		sp.Add("lits_saved", int64(d))
	}
	return n.Check()
}

// OptimizeArea is a lighter area-oriented cleanup (used after local
// resynthesis steps): simplify + eliminate + extract, no decomposition.
func OptimizeArea(n *network.Network) error {
	n.Sweep()
	n.TrimAllFanins()
	SimplifyNodes(n)
	Eliminate(n, 0)
	ExtractKernels(n, 64)
	SimplifyNodes(n)
	n.Sweep()
	return n.Check()
}
