package algebraic

import "repro/internal/logic"

// Kernel is a cube-free quotient of a cover together with its co-kernel.
type Kernel struct {
	K        *logic.Cover
	CoKernel logic.Cube
}

// Kernels computes all kernels of f (Brayton–McMullen recursion). The
// cover itself, made cube-free, is included (the level-|vars| kernel).
// Single-cube covers have no kernels.
func Kernels(f *logic.Cover) []Kernel {
	if len(f.Cubes) < 2 {
		return nil
	}
	cf, cc := MakeCubeFree(f)
	var out []Kernel
	seen := make(map[string]bool)
	add := func(k *logic.Cover, co logic.Cube) {
		key := CoverKey(k)
		if seen[key] || len(k.Cubes) < 2 {
			return
		}
		seen[key] = true
		out = append(out, Kernel{K: k, CoKernel: co})
	}
	add(cf, cc)
	var rec func(g *logic.Cover, co logic.Cube, minLit int)
	rec = func(g *logic.Cover, co logic.Cube, minLit int) {
		n := g.N
		for lit := minLit; lit < 2*n; lit++ {
			v := lit / 2
			phase := logic.LitNeg
			if lit%2 == 1 {
				phase = logic.LitPos
			}
			// Count cubes containing this literal.
			cnt := 0
			for _, c := range g.Cubes {
				if c.Lit(v) == phase {
					cnt++
				}
			}
			if cnt < 2 {
				continue
			}
			d := logic.NewCube(n)
			d.SetLit(v, phase)
			q := logic.NewCover(n)
			for _, c := range g.Cubes {
				if qc, ok := DivideCube(c, d, n); ok {
					q.Add(qc)
				}
			}
			qf, qcc := MakeCubeFree(q)
			// Skip if the co-kernel cube contains an already-tried literal
			// (canonical ordering to avoid duplicates).
			skip := false
			for l2 := 0; l2 < lit; l2++ {
				v2 := l2 / 2
				p2 := logic.LitNeg
				if l2%2 == 1 {
					p2 = logic.LitPos
				}
				if qcc.Lit(v2) == p2 {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			newCo, ok := co.And(d)
			if !ok {
				continue
			}
			if nc, ok2 := newCo.And(qcc); ok2 {
				newCo = nc
			}
			add(qf, newCo)
			rec(qf, newCo, lit+1)
		}
	}
	rec(cf, cc, 0)
	return out
}

// Level0Kernels returns only the kernels that themselves have no kernels —
// cheaper candidates for extraction.
func Level0Kernels(f *logic.Cover) []Kernel {
	all := Kernels(f)
	var out []Kernel
	for _, k := range all {
		if len(Kernels(k.K)) <= 1 {
			out = append(out, k)
		}
	}
	return out
}
