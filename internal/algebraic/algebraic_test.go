package algebraic

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/seqverify"
	"repro/internal/sim"
	"repro/internal/timing"
)

func TestDivideCube(t *testing.T) {
	c, _ := logic.ParseCube("110-")
	d, _ := logic.ParseCube("1---")
	q, ok := DivideCube(c, d, 4)
	if !ok || q.String() != "-10-" {
		t.Fatalf("quotient %v ok=%v", q, ok)
	}
	d2, _ := logic.ParseCube("0---")
	if _, ok := DivideCube(c, d2, 4); ok {
		t.Fatal("conflicting literal must not divide")
	}
}

func TestDivide(t *testing.T) {
	// f = a·c + a·d + b·c + b·d + e ; d = a + b → q = c + d, r = e.
	// Vars: a,b,c,d,e = 0..4.
	f := logic.MustParseCover(5, "1-1--", "1--1-", "-11--", "-1-1-", "----1")
	d := logic.MustParseCover(5, "1----", "-1---")
	q, r := Divide(f, d)
	wantQ := logic.MustParseCover(5, "--1--", "---1-")
	if !q.EquivalentTo(wantQ) {
		t.Fatalf("quotient:\n%v", q)
	}
	wantR := logic.MustParseCover(5, "----1")
	if !r.EquivalentTo(wantR) {
		t.Fatalf("remainder:\n%v", r)
	}
}

func TestDivideAlgebraicIdentity(t *testing.T) {
	// For random f,d: f == q·d + r as covers (set equality of cubes).
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		f := randCover(rng, 5, 6)
		d := randCover(rng, 5, 2)
		if len(d.Cubes) == 0 {
			continue
		}
		q, r := Divide(f, d)
		recon := r.Clone()
		for _, qc := range q.Cubes {
			for _, dc := range d.Cubes {
				if p, ok := qc.And(dc); ok {
					recon.Add(p)
				}
			}
		}
		if !recon.EquivalentTo(f) {
			t.Fatalf("f != qd+r:\nf=%v\nd=%v\nq=%v\nr=%v", f, d, q, r)
		}
	}
}

func randCover(r *rand.Rand, n, maxCubes int) *logic.Cover {
	f := logic.NewCover(n)
	for i := 0; i < 1+r.Intn(maxCubes); i++ {
		c := logic.NewCube(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.SetLit(v, logic.LitNeg)
			case 1:
				c.SetLit(v, logic.LitPos)
			}
		}
		f.Add(c)
	}
	return f
}

func TestCommonCubeAndCubeFree(t *testing.T) {
	f := logic.MustParseCover(4, "110-", "1-11")
	cc := CommonCube(f)
	if cc.String() != "1---" {
		t.Fatalf("common cube %v", cc)
	}
	if IsCubeFree(f) {
		t.Fatal("f is not cube-free")
	}
	g, cube := MakeCubeFree(f)
	if cube.String() != "1---" || !IsCubeFree(g) {
		t.Fatalf("MakeCubeFree: %v / %v", g, cube)
	}
}

func TestKernels(t *testing.T) {
	// f = a·c + a·d + b·c + b·d  — kernels include (a+b) and (c+d).
	f := logic.MustParseCover(4, "1-1-", "1--1", "-11-", "-1-1")
	ks := Kernels(f)
	foundAB, foundCD := false, false
	for _, k := range ks {
		key := CoverKey(k.K)
		if key == "-1--|1---" {
			foundAB = true
		}
		if key == "--1-|---1" || key == "---1|--1-" {
			foundCD = true
		}
	}
	if !foundAB || !foundCD {
		t.Fatalf("kernels missing: ab=%v cd=%v (%d kernels)", foundAB, foundCD, len(ks))
	}
}

func TestKernelsSingleCubeNone(t *testing.T) {
	f := logic.MustParseCover(3, "111")
	if ks := Kernels(f); len(ks) != 0 {
		t.Fatalf("single cube has no kernels, got %d", len(ks))
	}
}

// buildNet builds y = a·c + a·d + b·c + b·d, z = a·c + a·d (shares (c+d)).
func buildNet(t *testing.T) *network.Network {
	t.Helper()
	n := network.New("ext")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	d := n.AddPI("d")
	y := n.AddLogic("y", []*network.Node{a, b, c, d},
		logic.MustParseCover(4, "1-1-", "1--1", "-11-", "-1-1"))
	z := n.AddLogic("z", []*network.Node{a, c, d},
		logic.MustParseCover(3, "11-", "1-1"))
	n.AddPO("y", y)
	n.AddPO("z", z)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestExtractKernels(t *testing.T) {
	n := buildNet(t)
	before := n.NumLits()
	got := ExtractKernels(n, 8)
	if got == 0 {
		t.Fatal("no divisor extracted")
	}
	if n.NumLits() >= before {
		t.Fatalf("no literal savings: %d -> %d", before, n.NumLits())
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// Function must be preserved.
	m := buildNet(t)
	if err := sim.RandomEquivalent(m, n, 0, 100, 3); err != nil {
		t.Fatalf("extraction changed function: %v", err)
	}
}

func TestEliminate(t *testing.T) {
	n := network.New("elim")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g := n.AddLogic("g", []*network.Node{a, b}, logic.MustParseCover(2, "11"))
	h := n.AddLogic("h", []*network.Node{g}, logic.MustParseCover(1, "0"))
	n.AddPO("y", h)
	removed := Eliminate(n, 10)
	if removed == 0 {
		t.Fatal("buffer-like node not eliminated")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// h must now compute NAND(a,b).
	s, _ := sim.New(n)
	for m := 0; m < 4; m++ {
		va, vb := m&1 != 0, m&2 != 0
		if got := s.StepBits([]bool{va, vb})[0]; got != !(va && vb) {
			t.Fatalf("NAND wrong at %v %v", va, vb)
		}
	}
}

func TestEliminateRespectsThreshold(t *testing.T) {
	// A shared big node should not be eliminated at threshold 0 (collapse
	// would duplicate it into 2 consumers).
	n := network.New("thr")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	g := n.AddLogic("g", []*network.Node{a, b, c},
		logic.MustParseCover(3, "11-", "1-1", "-11"))
	h1 := n.AddLogic("h1", []*network.Node{g, a}, logic.MustParseCover(2, "11"))
	h2 := n.AddLogic("h2", []*network.Node{g, b}, logic.MustParseCover(2, "1-", "-1"))
	n.AddPO("y1", h1)
	n.AddPO("y2", h2)
	if removed := Eliminate(n, 0); removed != 0 {
		t.Fatalf("shared 6-literal node eliminated at threshold 0 (%d)", removed)
	}
}

func TestDecomposeBalanced(t *testing.T) {
	n := network.New("dec")
	var pis []*network.Node
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		pis = append(pis, n.AddPI(name))
	}
	// A wide function: 3 cubes of 2-3 literals.
	f := logic.MustParseCover(6, "11----", "--111-", "0----1")
	g := n.AddLogic("g", pis, f)
	n.AddPO("y", g)
	ref := n.Clone()
	if err := DecomposeBalanced(n); err != nil {
		t.Fatal(err)
	}
	for _, v := range n.Nodes() {
		if v.Kind == network.KindLogic && len(v.Fanins) > 2 {
			t.Fatalf("node %s still has %d fanins", v.Name, len(v.Fanins))
		}
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RandomEquivalent(ref, n, 0, 200, 7); err != nil {
		t.Fatalf("decomposition changed function: %v", err)
	}
	// Balanced tree of a 3-literal AND plus OR chain: depth must be
	// logarithmic-ish, not the SOP-literal count.
	p, err := timing.Period(n, timing.UnitDelay{})
	if err != nil {
		t.Fatal(err)
	}
	if p > 5 {
		t.Fatalf("decomposed depth %v too large", p)
	}
}

func TestOptimizeDelayPreservesSequentialBehaviour(t *testing.T) {
	// A small FSM: 2-bit counter with enable and carry out.
	n := network.New("seqopt")
	en := n.AddPI("en")
	l0 := n.AddLatch("s0", nil, network.V0)
	l1 := n.AddLatch("s1", nil, network.V0)
	d0 := n.AddLogic("d0", []*network.Node{l0.Output, en}, logic.MustParseCover(2, "10", "01"))
	t0 := n.AddLogic("t0", []*network.Node{l0.Output, en}, logic.MustParseCover(2, "11"))
	d1 := n.AddLogic("d1", []*network.Node{l1.Output, t0}, logic.MustParseCover(2, "10", "01"))
	cy := n.AddLogic("cy", []*network.Node{l1.Output, l0.Output, en}, logic.MustParseCover(3, "111"))
	l0.Driver = d0
	l1.Driver = d1
	n.AddPO("carry", cy)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	ref := n.Clone()
	if err := OptimizeDelay(n); err != nil {
		t.Fatal(err)
	}
	if err := seqverify.Equivalent(ref, n, seqverify.Options{}); err != nil {
		t.Fatalf("OptimizeDelay broke the FSM: %v", err)
	}
}

func TestOptimizeAreaPreservesBehaviour(t *testing.T) {
	n := buildNet(t)
	ref := n.Clone()
	if err := OptimizeArea(n); err != nil {
		t.Fatal(err)
	}
	if err := sim.RandomEquivalent(ref, n, 0, 200, 9); err != nil {
		t.Fatalf("OptimizeArea changed function: %v", err)
	}
}

func TestDecomposeRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := network.New("rand")
		var pis []*network.Node
		for i := 0; i < 5; i++ {
			pis = append(pis, n.AddPI(string(rune('a'+i))))
		}
		f := randCover(rng, 5, 5)
		g := n.AddLogic("g", pis, f)
		n.AddPO("y", g)
		ref := n.Clone()
		if err := OptimizeDelay(n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sim.RandomEquivalent(ref, n, 0, 100, int64(trial)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
