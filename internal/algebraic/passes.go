package algebraic

import (
	"sort"

	"repro/internal/logic"
	"repro/internal/network"
)

// SimplifyNodes runs two-level minimization on every logic node and trims
// redundant fanins. Returns the literal-count reduction.
func SimplifyNodes(n *network.Network) int {
	before := n.NumLits()
	for _, v := range n.Nodes() {
		if v.Kind != network.KindLogic {
			continue
		}
		m := logic.Minimize(v.Func)
		if m.NumLits() < v.Func.NumLits() ||
			(m.NumLits() == v.Func.NumLits() && len(m.Cubes) < len(v.Func.Cubes)) {
			n.SetFunction(v, v.Fanins, m)
		}
		n.TrimFanins(v)
	}
	return before - n.NumLits()
}

// Eliminate collapses logic nodes into their consumers when the resulting
// literal-count change does not exceed threshold (SIS `eliminate`).
// Nodes feeding POs or registers directly are kept. Returns the number of
// nodes eliminated.
func Eliminate(n *network.Network, threshold int) int {
	count := 0
	for {
		progress := false
		for _, g := range n.Nodes() {
			if g.Kind != network.KindLogic {
				continue
			}
			if n.FindNode(g.Name) != g {
				continue
			}
			consumers := n.LogicFanouts(g)
			if len(consumers) == 0 {
				continue
			}
			if len(n.POsDrivenBy(g)) > 0 || len(n.LatchesDrivenBy(g)) > 0 {
				continue
			}
			// Estimate the literal delta of collapsing g everywhere.
			delta := -g.Func.NumLits()
			ok := true
			newCovers := make(map[*network.Node]*logic.Cover, len(consumers))
			newFanins := make(map[*network.Node][]*network.Node, len(consumers))
			for _, c := range consumers {
				nf, nc := composedFunction(c, g)
				if nc == nil {
					ok = false
					break
				}
				newCovers[c] = nc
				newFanins[c] = nf
				delta += nc.NumLits() - c.Func.NumLits()
			}
			if !ok || delta > threshold {
				continue
			}
			for _, c := range consumers {
				n.SetFunction(c, newFanins[c], newCovers[c])
				n.TrimFanins(c)
			}
			if n.NumFanouts(g) == 0 {
				n.RemoveDeadNode(g)
			}
			count++
			progress = true
		}
		if !progress {
			return count
		}
	}
}

// composedFunction returns consumer's fanins and cover after substituting g
// (Shannon composition), without touching the network. Returns nil cover
// when g is not a fanin.
func composedFunction(f, g *network.Node) ([]*network.Node, *logic.Cover) {
	idx := f.FaninIndex(g)
	if idx < 0 {
		return nil, nil
	}
	var fanins []*network.Node
	mapOld := make([]int, len(f.Fanins))
	for i, fi := range f.Fanins {
		if i == idx {
			mapOld[i] = -1
			continue
		}
		mapOld[i] = len(fanins)
		fanins = append(fanins, fi)
	}
	base := len(fanins)
	mapG := make([]int, len(g.Fanins))
	for i, gi := range g.Fanins {
		mapG[i] = base + i
		fanins = append(fanins, gi)
	}
	m := len(fanins)
	remap := func(c *logic.Cover) *logic.Cover {
		vm := make([]int, len(mapOld))
		copy(vm, mapOld)
		vm[idx] = 0
		return c.Remap(m, vm)
	}
	hi := remap(f.Func.CofactorVar(idx, true))
	lo := remap(f.Func.CofactorVar(idx, false))
	gOn := g.Func.Remap(m, mapG)
	gOff := g.Func.Complement().Remap(m, mapG)
	combined := logic.Or(logic.And(gOn, hi), logic.And(gOff, lo))
	combined = logic.Minimize(combined)
	return fanins, combined
}

// divisorOcc records a node containing a candidate divisor.
type divisorOcc struct {
	node *network.Node
}

// ExtractKernels performs fx-style common-divisor extraction: repeatedly
// find the kernel shared by the most node functions (weighted by literal
// savings), create a node for it, and divide it out everywhere. Returns
// the number of divisors extracted.
func ExtractKernels(n *network.Network, maxDivisors int) int {
	extracted := 0
	for iter := 0; iter < maxDivisors; iter++ {
		type cand struct {
			key    string
			cover  *logic.Cover    // in the fanin space of a witness node
			fanins []*network.Node // global fanin nodes of the divisor
			occ    []*network.Node
			value  int
		}
		cands := make(map[string]*cand)
		for _, v := range n.Nodes() {
			if v.Kind != network.KindLogic || len(v.Func.Cubes) < 2 || len(v.Func.Cubes) > 24 {
				continue
			}
			for _, k := range Kernels(v.Func) {
				if len(k.K.Cubes) < 2 {
					continue
				}
				key, fanins, cov := globalKey(v, k.K)
				if key == "" {
					continue
				}
				c, ok := cands[key]
				if !ok {
					c = &cand{key: key, cover: cov, fanins: fanins}
					cands[key] = c
				}
				// A node may contain the kernel several times (different
				// co-kernels); occurrence list keeps nodes unique.
				dup := false
				for _, o := range c.occ {
					if o == v {
						dup = true
						break
					}
				}
				if !dup {
					c.occ = append(c.occ, v)
				}
			}
		}
		var best *cand
		for _, c := range cands {
			if len(c.occ) < 2 {
				continue
			}
			// Exact savings: simulate the division at each occurrence.
			c.value = -c.cover.NumLits()
			for _, v := range c.occ {
				if s := divisionSavings(v, c.fanins, c.cover); s > 0 {
					c.value += s
				}
			}
			if c.value <= 0 {
				continue
			}
			if best == nil || c.value > best.value ||
				(c.value == best.value && c.key < best.key) {
				best = c
			}
		}
		if best == nil {
			return extracted
		}
		div := n.AddLogic("", best.fanins, best.cover)
		applied := false
		for _, v := range best.occ {
			if substituteDivisor(n, v, div) {
				applied = true
			}
		}
		if !applied {
			n.RemoveDeadNode(div)
			return extracted
		}
		extracted++
	}
	return extracted
}

// globalKey renders a kernel (over node v's fanin space) canonically over
// global fanin identities, returning the key, the divisor's fanin list and
// its cover over that list.
func globalKey(v *network.Node, k *logic.Cover) (string, []*network.Node, *logic.Cover) {
	sup := k.Support()
	if len(sup) == 0 {
		return "", nil, nil
	}
	fanins := make([]*network.Node, len(sup))
	for i, s := range sup {
		fanins[i] = v.Fanins[s]
	}
	// Sort fanins by ID for canonicity.
	order := make([]int, len(sup))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return fanins[order[a]].ID < fanins[order[b]].ID })
	varMap := make([]int, k.N)
	for i := range varMap {
		varMap[i] = -1
	}
	sorted := make([]*network.Node, len(sup))
	for newPos, oi := range order {
		sorted[newPos] = fanins[oi]
		varMap[sup[oi]] = newPos
	}
	// Distinct global nodes may collide after sorting only if duplicated;
	// fanins are unique per node so this is safe.
	for i := range varMap {
		if varMap[i] < 0 {
			varMap[i] = 0
		}
	}
	cov := k.Remap(len(sup), varMap)
	key := ""
	for _, f := range sorted {
		key += "/" + f.Name
	}
	return key + "#" + CoverKey(cov), sorted, cov
}

// divisionSavings computes the literal savings of rewriting v as
// q·x + r for a divisor with the given fanins/cover (0 if not divisible).
func divisionSavings(v *network.Node, fanins []*network.Node, cover *logic.Cover) int {
	varMap := make([]int, len(fanins))
	for i, df := range fanins {
		idx := v.FaninIndex(df)
		if idx < 0 {
			return 0
		}
		varMap[i] = idx
	}
	d := cover.Remap(v.Func.N, varMap)
	q, r := Divide(v.Func, d)
	if len(q.Cubes) == 0 {
		return 0
	}
	after := q.NumLits() + len(q.Cubes) + r.NumLits()
	return v.Func.NumLits() - after
}

// substituteDivisor rewrites v as q·div + r when the division is
// profitable. Returns whether a rewrite happened.
func substituteDivisor(n *network.Network, v *network.Node, div *network.Node) bool {
	if v == div {
		return false
	}
	// Express div's cover in v's fanin space.
	varMap := make([]int, len(div.Fanins))
	for i, df := range div.Fanins {
		idx := v.FaninIndex(df)
		if idx < 0 {
			return false
		}
		varMap[i] = idx
	}
	d := div.Func.Remap(v.Func.N, varMap)
	q, r := Divide(v.Func, d)
	if len(q.Cubes) == 0 {
		return false
	}
	// New function: q'·x + r over fanins + div.
	newFanins := make([]*network.Node, len(v.Fanins)+1)
	copy(newFanins, v.Fanins)
	newFanins[len(v.Fanins)] = div
	m := len(newFanins)
	ident := make([]int, v.Func.N)
	for i := range ident {
		ident[i] = i
	}
	qx := q.Remap(m, ident)
	for _, c := range qx.Cubes {
		c.SetLit(m-1, logic.LitPos)
	}
	rx := r.Remap(m, ident)
	nf := logic.Or(qx, rx)
	if nf.NumLits() >= v.Func.NumLits() {
		return false
	}
	n.SetFunction(v, newFanins, nf)
	n.TrimFanins(v)
	return true
}
