package table

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/reach"
)

// smallSuite keeps the determinism matrix fast enough for -race CI runs
// while still covering FSM and ISCAS-profile circuits.
var smallSuite = []string{"ex2", "ex6", "bbtas", "s27"}

// TestParallelTableIsByteIdentical is the determinism regression the
// ISSUE requires: the full tablegen matrix at -workers=1 and -workers=N
// must produce identical table bytes and identical Table-I metrics.
func TestParallelTableIsByteIdentical(t *testing.T) {
	run := func(workers int) (string, string, Summary) {
		var out, errs bytes.Buffer
		sum, err := Run(context.Background(), &out, &errs, Options{
			Circuits: smallSuite,
			Verify:   true,
			Workers:  workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out.String(), errs.String(), sum
	}
	seqOut, seqErrs, seqSum := run(1)
	if seqErrs != "" {
		t.Fatalf("sequential run produced diagnostics:\n%s", seqErrs)
	}
	for _, c := range smallSuite {
		if !strings.Contains(seqOut, c) {
			t.Fatalf("row for %s missing:\n%s", c, seqOut)
		}
	}
	for _, w := range []int{2, 4, 8} {
		parOut, parErrs, parSum := run(w)
		if parOut != seqOut {
			t.Errorf("workers=%d table differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", w, seqOut, parOut)
		}
		if parErrs != seqErrs {
			t.Errorf("workers=%d diagnostics differ: %q vs %q", w, parErrs, seqErrs)
		}
		if parSum != seqSum {
			t.Errorf("workers=%d summary differs: %+v vs %+v", w, parSum, seqSum)
		}
	}
}

// TestTablePartitionModesByteIdentical pins that image partitioning is a
// pure performance change: the rendered table — registers, clocks, areas,
// notes, every verification verdict — is byte-for-byte the same whether the
// reachability engine runs partitioned or monolithic, in topological or
// positional variable order.
func TestTablePartitionModesByteIdentical(t *testing.T) {
	run := func(im reach.ImageMode, vo reach.VarOrder) (string, Summary) {
		lim := reach.DefaultLimits
		lim.Image = im
		lim.Order = vo
		var out, errs bytes.Buffer
		sum, err := Run(context.Background(), &out, &errs, Options{
			Circuits: smallSuite,
			Verify:   true,
			Reach:    lim,
		})
		if err != nil {
			t.Fatalf("%v/%v: %v", im, vo, err)
		}
		if errs.Len() > 0 {
			t.Fatalf("%v/%v produced diagnostics:\n%s", im, vo, errs.String())
		}
		return out.String(), sum
	}
	refOut, refSum := run(reach.ImagePartitioned, reach.OrderTopo)
	for _, alt := range []struct {
		im reach.ImageMode
		vo reach.VarOrder
	}{
		{reach.ImageMonolithic, reach.OrderTopo},
		{reach.ImagePartitioned, reach.OrderPositional},
		{reach.ImageMonolithic, reach.OrderPositional},
	} {
		out, sum := run(alt.im, alt.vo)
		if out != refOut {
			t.Errorf("%v/%v table differs from partitioned/topo:\n--- ref ---\n%s\n--- alt ---\n%s",
				alt.im, alt.vo, refOut, out)
		}
		if sum != refSum {
			t.Errorf("%v/%v summary differs: %+v vs %+v", alt.im, alt.vo, sum, refSum)
		}
	}
}

// TestTracerMergeOrderIndependentOfWorkers checks the per-worker tracers
// land in suite order with the same span tree shape at any width.
func TestTracerMergeOrderIndependentOfWorkers(t *testing.T) {
	shape := func(workers int) []string {
		tr := obs.New()
		var out, errs bytes.Buffer
		if _, err := Run(context.Background(), &out, &errs, Options{
			Circuits: smallSuite,
			Workers:  workers,
			Tracer:   tr,
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var names []string
		for _, s := range tr.Root().Children() {
			names = append(names, s.Name)
		}
		return names
	}
	seq := shape(1)
	if len(seq) != len(smallSuite) {
		t.Fatalf("expected %d top-level circuit spans, got %v", len(smallSuite), seq)
	}
	for i, c := range smallSuite {
		if seq[i] != c {
			t.Fatalf("span order %v does not match suite %v", seq, smallSuite)
		}
	}
	par := shape(4)
	if strings.Join(par, ",") != strings.Join(seq, ",") {
		t.Fatalf("parallel span order %v differs from sequential %v", par, seq)
	}
}

// TestJSONStreamParsesAtAnyWidth checks the concatenated per-circuit JSONL
// streams stay a valid -stats-json document under parallelism.
func TestJSONStreamParsesAtAnyWidth(t *testing.T) {
	for _, w := range []int{1, 4} {
		var out, errs, js bytes.Buffer
		if _, err := Run(context.Background(), &out, &errs, Options{
			Circuits: smallSuite[:2],
			Workers:  w,
			JSON:     &js,
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		evs, skipped, err := obs.ReadEvents(&js)
		if err != nil {
			t.Fatalf("workers=%d: JSONL stream unreadable: %v", w, err)
		}
		if skipped != 0 {
			t.Fatalf("workers=%d: %d malformed JSONL lines", w, skipped)
		}
		if len(evs) == 0 {
			t.Fatalf("workers=%d: empty event stream", w)
		}
		// The first event of each circuit block is its span_start; blocks
		// must appear in suite order.
		var circuits []string
		for _, e := range evs {
			if e.Ev == "span_start" && !strings.Contains(e.Span, "/") {
				circuits = append(circuits, e.Span)
			}
		}
		if len(circuits) != 2 || circuits[0] != smallSuite[0] || circuits[1] != smallSuite[1] {
			t.Fatalf("workers=%d: circuit blocks out of order: %v", w, circuits)
		}
	}
}

// TestUnknownCircuitFailsFast pins the pre-flight name validation.
func TestUnknownCircuitFailsFast(t *testing.T) {
	var out, errs bytes.Buffer
	_, err := Run(context.Background(), &out, &errs, Options{Circuits: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown circuit") {
		t.Fatalf("err = %v", err)
	}
}
