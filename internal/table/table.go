// Package table renders Table I of the paper: every benchmark circuit run
// through the three evaluation flows (script.delay, + retiming +
// combinational optimization, + resynthesis), one row per circuit.
//
// It is the shared core of cmd/tablegen and the determinism regression
// suite. Circuits are evaluated concurrently on a parexec pool — each on a
// private network (Circuit.Build constructs fresh), under the guard
// layer's transactional clones, tracing into a private tracer — and every
// byte of output is buffered per circuit and emitted in suite order, so
// the rendered table is identical for any worker count. Wall-clock row
// suffixes are opt-in (ShowTimes) precisely because they are the one
// non-deterministic ingredient.
package table

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/reach"
)

// Options configures one table run.
type Options struct {
	// Circuits selects benchmark names; empty selects the full Table I
	// suite. Unknown names fail before any flow runs.
	Circuits []string
	// Verify checks every flow output against its source circuit.
	Verify bool
	// SkipLarge skips circuits with more than 1000 gates.
	SkipLarge bool
	// Workers is the parallel evaluation width (<= 0 selects GOMAXPROCS).
	// The same width is threaded into each circuit's flows.Config as the
	// intra-pass worker count (the AIG substrate's levelized rewriter);
	// since both layers produce output independent of width, the table
	// stays byte-identical for any value.
	Workers int
	// ShowTimes appends per-circuit wall time to each row. Off by default:
	// times break byte-for-byte output stability.
	ShowTimes bool
	// Budget bounds flow/pass wall time via the guard layer.
	Budget guard.Budget
	// Reach configures the implicit state enumeration of the retiming +
	// comb.opt flow and of exact verification (image partitioning, variable
	// order, limits). Zero value: reach.DefaultLimits.
	Reach reach.Limits
	// Tracer, when non-nil, receives every circuit's span tree, merged in
	// suite order.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives pass-latency histograms and
	// counter/peak metrics from every circuit's tracer (the bridge is
	// concurrency-safe, so all workers share it).
	Registry *obs.Registry
	// JSON, when non-nil, receives the concatenated JSON-lines event
	// streams of the per-circuit tracers, in suite order. Within a circuit
	// the stream is exactly what a dedicated tracer would emit; the t_ms
	// stamps are relative to that circuit's own start.
	JSON io.Writer
	// Substrate selects the flows' technology-independent representation
	// (flows.SubstrateSOP or flows.SubstrateAIG; "" is SOP).
	Substrate string
	// Sweep enables SAT-based sequential sweeping in the flows and in
	// verification: circuits past the exact-reachability limit are proved
	// by K-induction instead of being spot-checked.
	Sweep bool
	// InductionK is the sweeping induction depth (0 = 1).
	InductionK int
}

// Summary reports the aggregate line at the bottom of the table.
type Summary struct {
	Wins       int // resynthesis clock <= retiming clock
	Applicable int // circuits where resynthesis applied
	Failures   int // circuits whose flows errored (row missing from table)
}

// row is one circuit's buffered contribution, emitted in suite order.
type row struct {
	out             []byte
	errs            []byte
	json            []byte
	tr              *obs.Tracer
	applicable, win bool
	verifyFail      bool
}

// Run evaluates the suite and writes the table to w and diagnostics to
// errw. It returns a non-nil error if any flow output fails verification
// or a circuit name is unknown; flow failures on individual circuits are
// reported to errw and counted in Summary.Failures without failing the
// run (matching the sequential tablegen behaviour).
func Run(ctx context.Context, w, errw io.Writer, opt Options) (Summary, error) {
	if !flows.KnownSubstrate(opt.Substrate) {
		return Summary{}, fmt.Errorf("table: unknown substrate %q (have %v)", opt.Substrate, flows.SubstrateNames())
	}
	suite := bench.TableI()
	if len(opt.Circuits) > 0 {
		var filtered []bench.Circuit
		for _, name := range opt.Circuits {
			c, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				return Summary{}, fmt.Errorf("table: unknown circuit %q", name)
			}
			filtered = append(filtered, c)
		}
		suite = filtered
	}

	lib := genlib.Lib2()
	fmt.Fprintln(w, "TABLE I — Experimental results: applying the resynthesis algorithm")
	fmt.Fprintln(w, "(substrate differs from the paper's SIS/lib2 testbed; compare shapes, not absolutes)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s | %-22s | %-30s | %-30s\n", "", "script.delay", "+ retiming + comb.opt", "+ resynthesis")
	fmt.Fprintf(w, "%-8s | %5s %7s %7s | %5s %7s %7s %-8s | %5s %7s %7s %-8s\n",
		"Circuit", "Reg", "Clk", "Area", "Reg", "Clk", "Area", "note", "Reg", "Clk", "Area", "note")
	fmt.Fprintln(w, strings.Repeat("-", 118))

	rows, mapErr := parexec.Map(ctx, opt.Workers, suite,
		func(ctx context.Context, _ int, c bench.Circuit) (*row, error) {
			return runCircuit(ctx, c, lib, opt), nil
		})

	var sum Summary
	verifyFailed := false
	for _, r := range rows {
		if r == nil {
			continue // cancelled before this circuit started
		}
		errw.Write(r.errs)
		w.Write(r.out)
		if opt.JSON != nil {
			opt.JSON.Write(r.json)
		}
		opt.Tracer.Merge(r.tr)
		if r.verifyFail {
			verifyFailed = true
		}
		if len(r.errs) > 0 && len(r.out) == 0 {
			sum.Failures++
		}
		if r.applicable {
			sum.Applicable++
			if r.win {
				sum.Wins++
			}
		}
	}
	fmt.Fprintln(w, strings.Repeat("-", 118))
	fmt.Fprintf(w, "resynthesis ≤ retiming clock on %d/%d applicable circuits (all outputs verified: %v)\n",
		sum.Wins, sum.Applicable, opt.Verify)
	if verifyFailed {
		return sum, fmt.Errorf("table: flow output failed verification (see diagnostics)")
	}
	if mapErr != nil {
		return sum, mapErr
	}
	return sum, nil
}

// runCircuit evaluates one circuit into a buffered row. It never returns
// an error: failures become diagnostics so one bad circuit does not
// cancel the rest of the sweep.
func runCircuit(ctx context.Context, c bench.Circuit, lib *genlib.Library, opt Options) *row {
	r := &row{}
	var out, errs, jsonBuf bytes.Buffer
	defer func() {
		r.out = out.Bytes()
		r.errs = errs.Bytes()
		r.json = jsonBuf.Bytes()
	}()

	src, err := c.Build()
	if err != nil {
		fmt.Fprintf(&errs, "%s: build failed: %v\n", c.Name, err)
		return r
	}
	if opt.SkipLarge && src.NumLogicNodes() > 1000 {
		fmt.Fprintf(&out, "%-8s | skipped (large)\n", c.Name)
		return r
	}

	var tr *obs.Tracer
	if opt.Tracer != nil || opt.JSON != nil || opt.Registry != nil {
		tr = obs.New()
		if opt.JSON != nil {
			tr.SetJSON(&jsonBuf)
		}
		if opt.Registry != nil {
			tr.SetRegistry(opt.Registry)
		}
		r.tr = tr
	}

	start := time.Now()
	csp := tr.Begin(c.Name)
	cfg := flows.Config{
		Tracer:     tr,
		Budget:     opt.Budget,
		Reach:      opt.Reach,
		Substrate:  opt.Substrate,
		Workers:    opt.Workers,
		Sweep:      opt.Sweep,
		InductionK: opt.InductionK,
	}
	sd, ret, rsyn, err := flows.RunAllCtx(ctx, src, lib, cfg)
	csp.End()
	if err != nil {
		fmt.Fprintf(&errs, "%s: flow failed: %v\n", c.Name, err)
		return r
	}
	if opt.Verify {
		for i, res := range []*flows.Result{sd, ret, rsyn} {
			if err := flows.VerifyCfg(ctx, src, res, cfg); err != nil {
				fmt.Fprintf(&errs, "%s: flow %d FAILED VERIFICATION: %v\n", c.Name, i, err)
				r.verifyFail = true
				return r
			}
		}
	}
	suffix := ""
	if opt.ShowTimes {
		suffix = fmt.Sprintf("  [%s]", time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(&out, "%-8s | %5d %7.2f %7.0f | %5d %7.2f %7.0f %-8s | %5d %7.2f %7.0f %-8s%s\n",
		c.Name,
		sd.Regs, sd.Clk, sd.Area,
		ret.Regs, ret.Clk, ret.Area, shortNote(ret.Note),
		rsyn.Regs, rsyn.Clk, rsyn.Area, shortNote(rsyn.Note),
		suffix)
	if rsyn.Note == "" {
		r.applicable = true
		r.win = rsyn.Clk <= ret.Clk
	}
	return r
}

// shortNote compresses a flow note to the table's 8-column note field.
func shortNote(s string) string {
	if s == "" {
		return ""
	}
	if i := strings.Index(s, ":"); i > 0 {
		s = s[:i]
	}
	if len(s) > 8 {
		s = s[:8]
	}
	return s
}
