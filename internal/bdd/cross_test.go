package bdd

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// These tests cross-validate the two independent Boolean engines of the
// repository: the SOP cover algebra (unate recursive paradigm) and the
// ROBDD package. Any divergence indicates a bug in one of them.

func randomCover(r *rand.Rand, n, maxCubes int) *logic.Cover {
	f := logic.NewCover(n)
	for i := 0; i < r.Intn(maxCubes+1); i++ {
		c := logic.NewCube(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.SetLit(v, logic.LitNeg)
			case 1:
				c.SetLit(v, logic.LitPos)
			}
		}
		f.Add(c)
	}
	return f
}

func TestCrossComplement(t *testing.T) {
	const n = 6
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 150; trial++ {
		f := randomCover(r, n, 6)
		m := New(n)
		viaCover := m.FromCover(f.Complement(), nil)
		viaBdd := m.Not(m.FromCover(f, nil))
		if viaCover != viaBdd {
			t.Fatalf("trial %d: complement mismatch for\n%v", trial, f)
		}
	}
}

func TestCrossBinaryOps(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 150; trial++ {
		f := randomCover(r, n, 5)
		g := randomCover(r, n, 5)
		m := New(n)
		bf, bg := m.FromCover(f, nil), m.FromCover(g, nil)
		if m.FromCover(logic.And(f, g), nil) != m.And(bf, bg) {
			t.Fatalf("trial %d: AND mismatch", trial)
		}
		if m.FromCover(logic.Or(f, g), nil) != m.Or(bf, bg) {
			t.Fatalf("trial %d: OR mismatch", trial)
		}
		if m.FromCover(logic.Xor(f, g), nil) != m.Xor(bf, bg) {
			t.Fatalf("trial %d: XOR mismatch", trial)
		}
	}
}

func TestCrossTautology(t *testing.T) {
	const n = 6
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		f := randomCover(r, n, 8)
		m := New(n)
		if f.IsTautology() != (m.FromCover(f, nil) == True) {
			t.Fatalf("trial %d: tautology verdicts diverge for\n%v", trial, f)
		}
	}
}

func TestCrossCovers(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 150; trial++ {
		f := randomCover(r, n, 5)
		g := randomCover(r, n, 5)
		m := New(n)
		bf, bg := m.FromCover(f, nil), m.FromCover(g, nil)
		// f ⊇ g  ⟺  g → f is a tautology.
		want := m.Implies(bg, bf) == True
		if f.Covers(g) != want {
			t.Fatalf("trial %d: containment verdicts diverge", trial)
		}
	}
}

func TestCrossSimplifyInterval(t *testing.T) {
	// The espresso result must sit in the [f·dc', f+dc] interval — checked
	// through the BDD engine rather than cover containment.
	const n = 5
	r := rand.New(rand.NewSource(79))
	for trial := 0; trial < 120; trial++ {
		f := randomCover(r, n, 5)
		dc := randomCover(r, n, 3)
		s := logic.Simplify(f, dc)
		m := New(n)
		bf, bdc, bs := m.FromCover(f, nil), m.FromCover(dc, nil), m.FromCover(s, nil)
		upper := m.Or(bf, bdc)
		lower := m.And(bf, m.Not(bdc))
		if m.Implies(bs, upper) != True {
			t.Fatalf("trial %d: simplified cover exceeds f+dc", trial)
		}
		if m.Implies(lower, bs) != True {
			t.Fatalf("trial %d: simplified cover misses f·dc'", trial)
		}
	}
}

func TestCrossCofactor(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 120; trial++ {
		f := randomCover(r, n, 6)
		v := r.Intn(n)
		phase := r.Intn(2) == 1
		m := New(n)
		bf := m.FromCover(f, nil)
		// BDD cofactor via ite with the variable forced.
		lit := m.Var(v)
		if !phase {
			lit = m.NVar(v)
		}
		// f|lit agrees with f on the half-space where lit holds; compare
		// restricted equality: lit ∧ f == lit ∧ cof.
		cof := m.FromCover(f.CofactorVar(v, phase), nil)
		if m.And(lit, bf) != m.And(lit, cof) {
			t.Fatalf("trial %d: cofactor mismatch", trial)
		}
	}
}
