package bdd

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New(3)
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("terminal negation wrong")
	}
	x := m.Var(0)
	if m.Not(m.Not(x)) != x {
		t.Fatal("double negation must be canonical")
	}
	if m.And(x, m.Not(x)) != False {
		t.Fatal("x AND !x != 0")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Fatal("x OR !x != 1")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a∧b)∨c  ==  (c∨a)∧(c∨b) by distribution — same BDD node.
	f := m.Or(m.And(a, b), c)
	g := m.And(m.Or(c, a), m.Or(c, b))
	if f != g {
		t.Fatal("equivalent functions have different refs")
	}
}

func TestEvalAgainstTruthTable(t *testing.T) {
	m := New(4)
	a, b, c, d := m.Var(0), m.Var(1), m.Var(2), m.Var(3)
	f := m.Xor(m.And(a, b), m.Or(c, m.Not(d)))
	for mt := 0; mt < 16; mt++ {
		as := []bool{mt&1 != 0, mt&2 != 0, mt&4 != 0, mt&8 != 0}
		want := (as[0] && as[1]) != (as[2] || !as[3])
		if m.Eval(f, as) != want {
			t.Fatalf("Eval wrong at %04b", mt)
		}
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	// ∃a (a∧b) = b
	g := m.Exists(f, []bool{true, false, false})
	if g != b {
		t.Fatal("∃a (a∧b) must equal b")
	}
	// ∃a,b (a∧b) = 1
	if m.Exists(f, []bool{true, true, false}) != True {
		t.Fatal("∃a,b (a∧b) must be true")
	}
	// Quantifying an absent variable is identity.
	if m.Exists(f, []bool{false, false, true}) != f {
		t.Fatal("quantifying absent var changed function")
	}
}

func TestAndExistsMatchesComposed(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		m := New(6)
		f := randBdd(m, r, 6)
		g := randBdd(m, r, 6)
		vars := make([]bool, 6)
		for i := range vars {
			vars[i] = r.Intn(2) == 0
		}
		got := m.AndExists(f, g, vars)
		want := m.Exists(m.And(f, g), vars)
		if got != want {
			t.Fatalf("trial %d: AndExists != Exists∘And", trial)
		}
	}
}

func randBdd(m *Manager, r *rand.Rand, depth int) Ref {
	f := False
	terms := 1 + r.Intn(4)
	for i := 0; i < terms; i++ {
		c := True
		for v := 0; v < m.NumVars(); v++ {
			switch r.Intn(3) {
			case 0:
				c = m.And(c, m.Var(v))
			case 1:
				c = m.And(c, m.NVar(v))
			}
		}
		f = m.Or(f, c)
	}
	return f
}

func TestPermute(t *testing.T) {
	m := New(4)
	a, c := m.Var(0), m.Var(2)
	f := m.And(a, m.Not(c))
	// Swap 0<->1 and 2<->3.
	g := m.Permute(f, []int{1, 0, 3, 2})
	want := m.And(m.Var(1), m.Not(m.Var(3)))
	if g != want {
		t.Fatal("Permute wrong")
	}
	// Permuting twice with the same swap is identity.
	if m.Permute(g, []int{1, 0, 3, 2}) != f {
		t.Fatal("Permute not involutive for a swap")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	if n := m.SatCount(True); n != 8 {
		t.Fatalf("SatCount(1) = %v", n)
	}
	if n := m.SatCount(False); n != 0 {
		t.Fatalf("SatCount(0) = %v", n)
	}
	if n := m.SatCount(a); n != 4 {
		t.Fatalf("SatCount(a) = %v", n)
	}
	if n := m.SatCount(m.And(a, b)); n != 2 {
		t.Fatalf("SatCount(ab) = %v", n)
	}
	if n := m.SatCount(m.Xor(a, b)); n != 4 {
		t.Fatalf("SatCount(a^b) = %v", n)
	}
}

func TestPickCube(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.NVar(2))
	cube := m.PickCube(f)
	if cube == nil {
		t.Fatal("no cube for satisfiable f")
	}
	as := make([]bool, 3)
	for v, l := range cube {
		as[v] = l == logic.LitPos
	}
	if !m.Eval(f, as) {
		t.Fatalf("picked cube %v does not satisfy f", cube)
	}
	if m.PickCube(False) != nil {
		t.Fatal("cube for False")
	}
}

func TestFromCoverToCoverRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 5
		f := logic.NewCover(n)
		for i := 0; i < r.Intn(5); i++ {
			c := logic.NewCube(n)
			for v := 0; v < n; v++ {
				switch r.Intn(3) {
				case 0:
					c.SetLit(v, logic.LitNeg)
				case 1:
					c.SetLit(v, logic.LitPos)
				}
			}
			f.Add(c)
		}
		m := New(n)
		ref := m.FromCover(f, nil)
		back := m.ToCover(ref, n)
		if !f.EquivalentTo(back) {
			t.Fatalf("round trip changed function:\n%v\n->\n%v", f, back)
		}
		// BDD evaluation must match cover evaluation on all minterms.
		for mt := 0; mt < 1<<n; mt++ {
			as := make([]bool, n)
			for v := range as {
				as[v] = mt&(1<<v) != 0
			}
			if m.Eval(ref, as) != f.Eval(as) {
				t.Fatalf("Eval mismatch at %05b", mt)
			}
		}
	}
}

func TestFromCoverVarMap(t *testing.T) {
	m := New(4)
	f := logic.MustParseCover(2, "10")
	ref := m.FromCover(f, []int{3, 1})
	want := m.And(m.Var(3), m.NVar(1))
	if ref != want {
		t.Fatal("varMap not applied")
	}
}

func TestNodeLimit(t *testing.T) {
	m := New(20)
	m.MaxNodes = 50
	defer func() {
		if recover() == nil {
			t.Fatal("expected ErrNodeLimit panic")
		}
	}()
	// Build something big: parity of 20 vars needs ~40+ nodes but with
	// intermediate garbage this exceeds 50 nodes quickly.
	f := False
	for v := 0; v < 20; v++ {
		f = m.Xor(f, m.Var(v))
	}
	_ = f
}

func TestStatsAccounting(t *testing.T) {
	m := New(8)
	s0 := m.Stats()
	if s0.Nodes != 2 || s0.UniqueSize != 0 || s0.CacheHits != 0 {
		t.Fatalf("fresh manager stats off: %+v", s0)
	}
	// Parity of 8 vars: plenty of Ite calls, with repeated subproblems.
	f := False
	for v := 0; v < 8; v++ {
		f = m.Xor(f, m.Var(v))
	}
	// Recompute the same thing: now everything must hit the cache.
	g := False
	for v := 0; v < 8; v++ {
		g = m.Xor(g, m.Var(v))
	}
	if f != g {
		t.Fatal("parity not canonical")
	}
	s := m.Stats()
	if s.CacheMisses == 0 {
		t.Fatal("first computation must record cache misses")
	}
	if s.CacheHits == 0 {
		t.Fatal("recomputation must record cache hits")
	}
	if s.UniqueSize != s.Nodes-2 {
		t.Fatalf("unique table (%d) must track internal nodes (%d)", s.UniqueSize, s.Nodes-2)
	}
	if s.PeakNodes != s.Nodes {
		t.Fatalf("peak (%d) must equal nodes (%d): nodes are never freed", s.PeakNodes, s.Nodes)
	}
	if nc := m.NodeCount(f); nc <= 0 || nc > s.UniqueSize {
		t.Fatalf("NodeCount(parity) = %d out of range (unique=%d)", nc, s.UniqueSize)
	}
	// Parity of n vars has exactly 2n-1 internal nodes in a reduced BDD.
	if nc := m.NodeCount(f); nc != 15 {
		t.Fatalf("NodeCount(parity8) = %d, want 15", nc)
	}
	if m.NodeCount(True) != 0 || m.NodeCount(False) != 0 {
		t.Fatal("terminals have zero internal nodes")
	}
}
