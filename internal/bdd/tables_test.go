package bdd

import (
	"math/rand"
	"testing"
)

// TestIncrementalRehash forces the unique table through several growth
// cycles and checks that canonicity survives the incremental migration:
// rebuilding the same functions must return the same refs, and the table
// accounting must stay consistent with the node pool.
func TestIncrementalRehash(t *testing.T) {
	const nvars = 48
	m := New(nvars)
	build := func() Ref {
		f := False
		for v := 0; v < nvars; v++ {
			f = m.Xor(f, m.Var(v))
		}
		r := rand.New(rand.NewSource(5))
		for k := 0; k < 40; k++ {
			c := True
			for v := 0; v < nvars; v++ {
				switch r.Intn(4) {
				case 0:
					c = m.And(c, m.Var(v))
				case 1:
					c = m.And(c, m.NVar(v))
				}
			}
			f = m.Or(f, c)
		}
		return f
	}
	f := build()
	st := m.Stats()
	if st.Rehashes == 0 {
		t.Fatalf("workload too small to trigger a rehash: %+v", st)
	}
	if st.UniqueCap <= initialTableSize {
		t.Fatalf("table never grew: cap=%d", st.UniqueCap)
	}
	if st.UniqueSize != st.Nodes-2 {
		t.Fatalf("unique entries (%d) must equal internal nodes (%d)", st.UniqueSize, st.Nodes-2)
	}
	if st.UniqueLoad <= 0 || st.UniqueLoad >= 1 {
		t.Fatalf("implausible load %v", st.UniqueLoad)
	}
	// Rebuilding must find every node again (possibly mid-migration).
	if g := build(); g != f {
		t.Fatal("canonicity lost across rehash: rebuild produced a different ref")
	}
	if m.Stats().Nodes != st.Nodes {
		t.Fatalf("rebuild created nodes: %d -> %d", st.Nodes, m.Stats().Nodes)
	}
	// The old table must eventually drain completely.
	for i := 0; i < len(m.nodes); i++ {
		m.migrate()
	}
	if m.old != nil {
		t.Fatal("old table never drained")
	}
}

// TestMidMigrationLookup pins the two-table lookup path: trigger a grow,
// then immediately re-request nodes that still live in the draining table.
func TestMidMigrationLookup(t *testing.T) {
	const nvars = 40
	m := New(nvars)
	refs := make([]Ref, 0, nvars)
	f := False
	for v := 0; v < nvars; v++ {
		f = m.Xor(f, m.Var(v))
		refs = append(refs, f)
	}
	grew := false
	for k := 0; k < 64 && !grew; k++ {
		g := True
		for v := 0; v < nvars; v++ {
			if (k>>uint(v%6))&1 == 0 {
				g = m.And(g, m.Var(v))
			}
		}
		_ = g
		grew = m.old != nil
	}
	// Whether or not a migration is in flight right now, every previously
	// created ref must still be found, not recreated.
	before := m.Size()
	h := False
	for v := 0; v < nvars; v++ {
		h = m.Xor(h, m.Var(v))
	}
	if h != refs[nvars-1] {
		t.Fatal("parity ref changed after growth")
	}
	if m.Size() != before {
		t.Fatalf("lookup recreated nodes: %d -> %d", before, m.Size())
	}
}

// TestPermuteTagReuse pins the parameterized-op cache fix: the same
// permutation must map to the same content-addressed tag (so a repeat call
// is answered from the computed table), while different permutations get
// different tags and correct, non-aliased results.
func TestPermuteTagReuse(t *testing.T) {
	m := New(6)
	f := m.And(m.Var(0), m.Or(m.Var(2), m.NVar(4)))
	swap01 := []int{1, 0, 2, 3, 4, 5}
	rot := []int{1, 2, 3, 4, 5, 0}

	g1 := m.Permute(f, swap01)
	hits := m.Stats().CacheHits
	g2 := m.Permute(f, swap01)
	if g2 != g1 {
		t.Fatal("same permutation produced different results")
	}
	if m.Stats().CacheHits <= hits {
		t.Fatal("repeat Permute with the same mapping must hit the computed table")
	}
	if len(m.perms) != 1 {
		t.Fatalf("identical permutations must share one tag, got %d", len(m.perms))
	}

	// A different permutation must not alias the first one's entries.
	g3 := m.Permute(f, rot)
	want := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(5)))
	if g3 != want {
		t.Fatalf("rotated permute wrong")
	}
	if len(m.perms) != 2 {
		t.Fatalf("distinct permutations must get distinct tags, got %d", len(m.perms))
	}

	// Mutating the caller's slice after the call must not corrupt the
	// stored permutation (the map era aliased the input).
	swap01[0] = 5
	if m.Permute(f, []int{1, 0, 2, 3, 4, 5}) != g1 {
		t.Fatal("stored permutation aliased caller memory")
	}
}

// TestExistsCubeNoAliasing checks that quantifications over different
// variable sets never serve each other's cache entries.
func TestExistsCubeNoAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	m := New(8)
	f := randBdd(m, r, 8)
	varsA := []bool{true, false, true, false, false, false, false, false}
	varsB := []bool{false, true, false, true, false, false, false, false}
	a1 := m.Exists(f, varsA)
	b1 := m.Exists(f, varsB)
	// Fresh manager recomputation is the ground truth.
	m2 := New(8)
	f2 := randBdd(m2, rand.New(rand.NewSource(17)), 8)
	if f2 != f {
		// Same seed, same construction: refs must agree across managers.
		t.Fatal("non-deterministic construction")
	}
	if m2.Exists(f2, varsA) != a1 || m2.Exists(f2, varsB) != b1 {
		t.Fatal("interleaved quantifications aliased cache entries")
	}
}

// TestCacheGrowth drives enough distinct operations through the computed
// table to trigger growth and checks the accounting stays sane.
func TestCacheGrowth(t *testing.T) {
	const nvars = 32
	m := New(nvars)
	r := rand.New(rand.NewSource(9))
	for k := 0; k < 30; k++ {
		f := randBdd(m, r, nvars)
		g := randBdd(m, r, nvars)
		m.Xor(f, g)
	}
	st := m.Stats()
	if st.CacheCap <= initialCacheSize {
		t.Fatalf("cache never grew: %+v", st)
	}
	if st.CacheSize > st.CacheCap {
		t.Fatalf("occupancy overflow: %+v", st)
	}
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("hit/miss accounting broken: %+v", st)
	}
}

// TestNodeLimitDuringMigration checks MaxNodes still fires (and leaves the
// manager recoverable) when exceeded mid-rehash — the guard-layer contract
// reach depends on.
func TestNodeLimitDuringMigration(t *testing.T) {
	m := New(24)
	m.MaxNodes = 900 // below the node demand of full parity over 24 vars
	defer func() {
		if recover() == nil {
			t.Fatal("expected ErrNodeLimit panic")
		}
		// The manager must still answer queries after the contained panic.
		st := m.Stats()
		if st.Nodes > m.MaxNodes {
			t.Fatalf("node pool exceeded MaxNodes: %d", st.Nodes)
		}
		if st.UniqueSize != st.Nodes-2 {
			t.Fatalf("accounting diverged after panic: %+v", st)
		}
	}()
	f := False
	for v := 0; v < 24; v++ {
		f = m.Xor(f, m.Var(v))
		g := True
		for w := 0; w <= v; w++ {
			g = m.And(g, m.Var(w))
		}
		f = m.Or(f, g)
	}
}
