// Dynamic variable reordering: an in-place adjacent-level swap primitive
// and a Rudell-style sifting pass over it.
//
// The swap follows the classic invariant (Rudell, ICCAD'93): every existing
// Ref keeps denoting the same boolean function across a swap, because nodes
// at the upper level that depend on the lower variable are restructured in
// place (their Ref is preserved, their children are rebuilt), nodes that do
// not are simply relabeled to the other level, and reduction/uniqueness are
// re-established through the unique table. Since this package never frees
// nodes, liveness for the sifting size metric comes from the caller: Sift
// takes the set of externally held roots and minimizes, via session-local
// reference counting, the node count reachable from them. The computed
// table stays valid across swaps — its entries relate Refs, and every
// Ref's denotation is preserved.
package bdd

// SiftResult reports one sifting pass.
type SiftResult struct {
	// Swaps is the number of adjacent-level swaps performed.
	Swaps int
	// BeforeNodes / AfterNodes are the node counts reachable from the
	// roots before and after the pass.
	BeforeNodes, AfterNodes int
}

// siftMaxGrowth stops sifting a variable further in one direction once the
// metric exceeds this multiple of the best size seen for it.
const siftMaxGrowth = 2

// Sift reduces the live node count by sifting variables: each variable (in
// decreasing order of its level's population) is moved through the order by
// adjacent swaps and parked at the position minimizing the number of nodes
// reachable from roots. roots must list every Ref the caller still holds —
// any node unreachable from them may be treated as garbage. maxSwaps bounds
// the total swap budget (<= 0 selects a default proportional to the
// variable count).
func (m *Manager) Sift(roots []Ref, maxSwaps int) SiftResult {
	nv := m.numVars
	if nv < 2 {
		return SiftResult{}
	}
	if maxSwaps <= 0 {
		maxSwaps = 64 * nv
	}
	m.finishMigration()
	// Swaps may allocate transient nodes; the node budget is a resource
	// control for operator growth, not for reordering, and a mid-swap panic
	// would leave the tables inconsistent.
	savedMax := m.MaxNodes
	m.MaxNodes = 0
	defer func() { m.MaxNodes = savedMax }()

	s := newSiftSession(m, roots)
	before := s.total
	budget := maxSwaps

	// Process variables by population of their current level, densest
	// first, against a snapshot of the populations (sifting one variable
	// shifts others' levels, not their relative worth).
	type cand struct{ v, pop int }
	cands := make([]cand, 0, nv)
	for lvl := 0; lvl < nv; lvl++ {
		if p := s.pop[lvl]; p > 0 {
			cands = append(cands, cand{m.level2var[lvl], p})
		}
	}
	for i := 1; i < len(cands); i++ { // insertion sort: stable, deterministic
		for j := i; j > 0 && cands[j-1].pop < cands[j].pop; j-- {
			cands[j-1], cands[j] = cands[j], cands[j-1]
		}
	}

	swaps := 0
	for _, c := range cands {
		if budget <= 0 {
			break
		}
		start := m.var2level[c.v]
		best, bestLvl := s.total, start
		// Sift toward the nearer end first, then sweep to the other end;
		// finish by walking back to the best position seen.
		down := start >= nv/2
		for pass := 0; pass < 2; pass++ {
			for budget > 0 {
				lvl := m.var2level[c.v]
				if down && lvl == nv-1 || !down && lvl == 0 {
					break
				}
				if down {
					s.swap(lvl)
				} else {
					s.swap(lvl - 1)
				}
				swaps++
				budget--
				if s.total < best {
					best, bestLvl = s.total, m.var2level[c.v]
				}
				if s.total > best*siftMaxGrowth {
					break
				}
			}
			down = !down
		}
		for budget > 0 && m.var2level[c.v] != bestLvl {
			lvl := m.var2level[c.v]
			if lvl < bestLvl {
				s.swap(lvl)
			} else {
				s.swap(lvl - 1)
			}
			swaps++
			budget--
		}
	}
	return SiftResult{Swaps: swaps, BeforeNodes: before, AfterNodes: s.total}
}

// siftSession tracks per-level node lists (all nodes, garbage included, so
// swaps preserve canonicity for every table entry) and a session-local
// reference-counted live set for the size metric. The manager itself never
// frees nodes, so "dead" here only means "excluded from the metric": when a
// restructured node drops its old children and their last live parent goes
// away, the metric shrinks — without this, sifting could never observe an
// improvement and would park every variable where it started.
type siftSession struct {
	m       *Manager
	byLevel [][]Ref
	live    []bool
	refs    []int32 // live-parent counts (+1 per appearance in roots)
	pop     []int
	total   int
}

func newSiftSession(m *Manager, roots []Ref) *siftSession {
	s := &siftSession{
		m:       m,
		byLevel: make([][]Ref, m.numVars),
		live:    make([]bool, len(m.nodes)),
		refs:    make([]int32, len(m.nodes)),
		pop:     make([]int, m.numVars),
	}
	for r := Ref(2); int(r) < len(m.nodes); r++ {
		lvl := m.nodes[r].level
		s.byLevel[lvl] = append(s.byLevel[lvl], r)
	}
	for _, r := range roots {
		s.incRef(r)
	}
	return s
}

// isLive reports the liveness of r; refs allocated after the session
// started are only live once incRef saw them.
func (s *siftSession) isLive(r Ref) bool {
	return int(r) < len(s.live) && s.live[r]
}

func (s *siftSession) ensure(f Ref) {
	if int(f) >= len(s.live) {
		grownL := make([]bool, len(s.m.nodes))
		copy(grownL, s.live)
		s.live = grownL
		grownR := make([]int32, len(s.m.nodes))
		copy(grownR, s.refs)
		s.refs = grownR
	}
}

// incRef records one more live parent of f, enlivening it (and transitively
// its children) if this is its first.
func (s *siftSession) incRef(f Ref) {
	if f <= 1 {
		return
	}
	s.ensure(f)
	s.refs[f]++
	if s.live[f] {
		return
	}
	s.live[f] = true
	s.pop[s.m.nodes[f].level]++
	s.total++
	s.incRef(s.m.nodes[f].lo)
	s.incRef(s.m.nodes[f].hi)
}

// decRef drops one live parent of f; at zero the node dies and releases its
// children.
func (s *siftSession) decRef(f Ref) {
	if f <= 1 {
		return
	}
	s.refs[f]--
	if s.refs[f] > 0 {
		return
	}
	s.live[f] = false
	s.pop[s.m.nodes[f].level]--
	s.total--
	s.decRef(s.m.nodes[f].lo)
	s.decRef(s.m.nodes[f].hi)
}

// swap exchanges the variables at levels l and l+1, preserving the
// denotation of every Ref. Upper-level nodes that do not depend on the
// lower variable sink one level; lower-level nodes rise; upper-level nodes
// that do depend are restructured in place with freshly hashed children.
func (s *siftSession) swap(l int) {
	m := s.m
	m.finishMigration()
	lv, lv1 := int32(l), int32(l+1)
	vl, vl1 := s.byLevel[l], s.byLevel[l+1]

	// Capture the four grandchild cofactors of every interacting node
	// before any structure or level changes.
	type quad struct{ r, oLo, oHi, f00, f01, f10, f11 Ref }
	var inter []quad
	var non []Ref
	for _, r := range vl {
		n := m.nodes[r]
		i0 := m.nodes[n.lo].level == lv1
		i1 := m.nodes[n.hi].level == lv1
		if !i0 && !i1 {
			non = append(non, r)
			continue
		}
		q := quad{r: r, oLo: n.lo, oHi: n.hi, f00: n.lo, f01: n.lo, f10: n.hi, f11: n.hi}
		if i0 {
			q.f00, q.f01 = m.nodes[n.lo].lo, m.nodes[n.lo].hi
		}
		if i1 {
			q.f10, q.f11 = m.nodes[n.hi].lo, m.nodes[n.hi].hi
		}
		inter = append(inter, q)
	}

	for _, r := range vl {
		m.deleteRef(r)
	}
	for _, r := range vl1 {
		m.deleteRef(r)
	}

	newL := make([]Ref, 0, len(vl1)+len(inter))
	newL1 := make([]Ref, 0, len(non))
	// Non-interacting upper nodes sink: same structure, one level lower.
	for _, r := range non {
		m.nodes[r].level = lv1
		m.insertRef(r)
		newL1 = append(newL1, r)
		if s.isLive(r) {
			s.pop[l]--
			s.pop[l+1]++
		}
	}
	// Lower-level nodes rise: their variable now owns the upper level.
	for _, r := range vl1 {
		m.nodes[r].level = lv
		m.insertRef(r)
		newL = append(newL, r)
		if s.isLive(r) {
			s.pop[l+1]--
			s.pop[l]++
		}
	}
	// Interacting nodes are restructured in place: (x: (y: f00,f01),
	// (y: f10,f11)) becomes (y: (x: f00,f10), (x: f01,f11)). The Ref is
	// preserved; the new children are canonicalized through the table
	// (which already holds the sunk non-interacting nodes).
	firstNew := Ref(len(m.nodes))
	for _, q := range inter {
		lo := m.mk(lv1, q.f00, q.f10)
		hi := m.mk(lv1, q.f01, q.f11)
		n := &m.nodes[q.r]
		n.lo, n.hi = lo, hi
		m.insertRef(q.r)
		newL = append(newL, q.r)
		if s.isLive(q.r) {
			// Acquire the new children before releasing the old ones so
			// shared nodes never transiently die.
			s.incRef(lo)
			s.incRef(hi)
			s.decRef(q.oLo)
			s.decRef(q.oHi)
		}
	}
	for r := firstNew; int(r) < len(m.nodes); r++ {
		newL1 = append(newL1, r)
	}
	s.byLevel[l], s.byLevel[l+1] = newL, newL1

	x, y := m.level2var[l], m.level2var[l+1]
	m.level2var[l], m.level2var[l+1] = y, x
	m.var2level[x], m.var2level[y] = l+1, l
	m.siftSwaps++
}
