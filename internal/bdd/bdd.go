// Package bdd implements reduced ordered binary decision diagrams with a
// unique table and computed-table caching. It is the substrate for implicit
// state enumeration (internal/reach) and product-machine sequential
// equivalence checking (internal/seqverify) — the machinery the paper's
// baseline flow uses to extract unreachable-state don't cares, and that the
// paper pointedly avoids needing for its own DCret computation.
//
// Following the classic efficient-implementation literature (Brace/Rudell/
// Bryant's ITE package, Somenzi's CUDD), the tables are engineered rather
// than delegated to Go maps: the unique table is open-addressed with
// power-of-two sizing, level-tagged hashing and incremental rehash on
// growth, and the computed table is a bounded direct-mapped lossy cache.
// DESIGN.md §8 records the measured speedup over the previous map-based
// manager.
package bdd

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/ohash"
)

// Ref is a node reference. 0 and 1 are the terminal constants.
type Ref int32

const (
	// False is the constant-0 BDD.
	False Ref = 0
	// True is the constant-1 BDD.
	True Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel level
	lo, hi Ref
}

const (
	opIte byte = iota
	opExists
	opAndExists
	opPermute
)

// cacheEntry is one direct-mapped computed-table slot. The full key is
// stored so a colliding probe never returns a wrong result — collisions
// overwrite (lossy), they do not chain.
type cacheEntry struct {
	f, g, h Ref
	r       Ref
	op      byte
	valid   bool
}

const (
	// initialTableSize is the starting unique-table bucket count.
	initialTableSize = 1 << 10
	// initialCacheSize / maxCacheSize bound the computed table. The cache
	// starts small so short-lived managers stay cheap and quadruples up to
	// the cap as it fills; entries are carried over on growth.
	initialCacheSize = 1 << 9
	maxCacheSize     = 1 << 19
	// migrateStep is how many old-table buckets each mk call drains during
	// an incremental rehash.
	migrateStep = 128
)

// Manager owns the node pool and caches. NumVars is fixed at construction.
type Manager struct {
	numVars int
	nodes   []node

	// Variable order: node levels index positions in the order, not
	// variables. var2level[v] is the level holding variable v; level2var is
	// its inverse. The identity order reproduces the historical layout;
	// SetOrder installs a static order and Sift adjusts it dynamically.
	var2level []int
	level2var []int

	// Unique table: open-addressed, power-of-two sized buckets holding node
	// refs (0 = empty, tombstone = deleted; terminals are never entered).
	// During a rehash the previous table is drained incrementally: `old`
	// stays read-only while mk migrates migrateStep buckets per call, so no
	// single operation pays a full-table rehash stall. Tombstones appear
	// only during reordering (deleteRef) and are reclaimed by inserts and
	// rehashes.
	table      []Ref
	tabEntries int
	tombstones int
	old        []Ref
	oldPos     int
	rehashes   int
	siftSwaps  int64

	// Computed table: direct-mapped lossy cache over (op, f, g, h).
	cache     []cacheEntry
	cacheUsed int

	// perms holds the distinct permutations seen by Permute, content-
	// addressed via permTags so cache entries tagged with a perm index can
	// never be reinterpreted under a different permutation.
	perms    [][]int
	permTags map[string]Ref

	// visited/visitEpoch implement O(1)-reset DFS marking for NodeCount.
	visited    []uint32
	visitEpoch uint32

	// MaxNodes optionally bounds growth; Ite panics with ErrNodeLimit
	// beyond it (callers recover to fall back gracefully).
	MaxNodes int
	// cacheHits/cacheMisses account computed-table effectiveness across
	// all cached operations (Ite, Exists, AndExists, Permute).
	cacheHits, cacheMisses int64
}

// Stats is a snapshot of the manager's table accounting. Nodes are never
// freed (no garbage collection), so PeakNodes equals Nodes.
type Stats struct {
	NumVars     int
	Nodes       int // live node count, including the two terminals
	PeakNodes   int
	UniqueSize  int     // unique-table entries (internal nodes)
	UniqueCap   int     // unique-table bucket count (current table)
	UniqueLoad  float64 // entries / buckets of the current table
	Rehashes    int     // unique-table growth events
	CacheSize   int     // occupied computed-table slots
	CacheCap    int     // computed-table slot count
	CacheHits   int64
	CacheMisses int64
	SiftSwaps   int64 // adjacent-level swaps performed by Sift
}

// Stats returns the current table accounting.
func (m *Manager) Stats() Stats {
	load := 0.0
	if len(m.table) > 0 {
		load = float64(m.tabEntries) / float64(len(m.table))
	}
	return Stats{
		NumVars:     m.numVars,
		Nodes:       len(m.nodes),
		PeakNodes:   len(m.nodes),
		UniqueSize:  len(m.nodes) - 2,
		UniqueCap:   len(m.table),
		UniqueLoad:  load,
		Rehashes:    m.rehashes,
		CacheSize:   m.cacheUsed,
		CacheCap:    len(m.cache),
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMisses,
		SiftSwaps:   m.siftSwaps,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d unique=%d/%d(load %.2f, %d rehashes) cache=%d/%d hits=%d misses=%d",
		s.Nodes, s.UniqueSize, s.UniqueCap, s.UniqueLoad, s.Rehashes,
		s.CacheSize, s.CacheCap, s.CacheHits, s.CacheMisses)
}

// ErrNodeLimit is the panic value raised when MaxNodes is exceeded.
var ErrNodeLimit = fmt.Errorf("bdd: node limit exceeded")

const terminalLevel = int32(1) << 30

// New creates a manager for n variables. The node pool and both tables are
// preallocated so early operations never pay growth stalls. The initial
// variable order is the identity (variable v at level v).
func New(n int) *Manager {
	m := &Manager{
		numVars:   n,
		nodes:     make([]node, 2, 1<<12),
		table:     make([]Ref, initialTableSize),
		cache:     make([]cacheEntry, initialCacheSize),
		var2level: make([]int, n),
		level2var: make([]int, n),
	}
	for v := 0; v < n; v++ {
		m.var2level[v] = v
		m.level2var[v] = v
	}
	m.nodes[0] = node{level: terminalLevel} // False
	m.nodes[1] = node{level: terminalLevel} // True
	return m
}

// SetOrder installs a static variable order: order[k] is the variable
// placed at level k (level 0 is the root). It must be a permutation of
// [0, NumVars) and must be called before any non-terminal node exists —
// typically right after New, once the caller has derived an order from
// problem structure.
func (m *Manager) SetOrder(order []int) {
	if len(m.nodes) != 2 {
		panic("bdd: SetOrder after nodes were created")
	}
	if len(order) != m.numVars {
		panic(fmt.Sprintf("bdd: SetOrder with %d entries for %d variables", len(order), m.numVars))
	}
	seen := make([]bool, m.numVars)
	for lvl, v := range order {
		if v < 0 || v >= m.numVars || seen[v] {
			panic(fmt.Sprintf("bdd: SetOrder order is not a permutation (entry %d = %d)", lvl, v))
		}
		seen[v] = true
		m.level2var[lvl] = v
		m.var2level[v] = lvl
	}
}

// Order returns the current variable order: element k is the variable at
// level k. The slice is a copy.
func (m *Manager) Order() []int {
	return append([]int(nil), m.level2var...)
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// hash3 is the level-tagged node hash. The mix itself lives in
// internal/ohash so the BDD unique table and the AIG strash table share one
// probe/hash core and cannot drift.
func hash3(level int32, lo, hi Ref) uint32 {
	return ohash.Mix3(uint32(level), uint32(lo), uint32(hi))
}

// tombstone marks a deleted unique-table slot. Valid entries are >= 2
// (terminals never enter the table), so probes distinguish empty (0),
// deleted (tombstone), and live buckets.
const tombstone Ref = -1

// migrate drains up to migrateStep buckets of the old unique table into the
// current one. Entries live in exactly one table, so reinsertion cannot
// duplicate. Tombstones left behind by a reorder are dropped.
func (m *Manager) migrate() {
	if m.old == nil {
		return
	}
	end := m.oldPos + migrateStep
	if end > len(m.old) {
		end = len(m.old)
	}
	for ; m.oldPos < end; m.oldPos++ {
		if r := m.old[m.oldPos]; r > 1 {
			m.insertRef(r)
		}
	}
	if m.oldPos >= len(m.old) {
		m.old = nil
	}
}

// finishMigration drains any in-progress incremental rehash completely, so
// the current table is the single source of truth. Required before entries
// can be deleted (level swaps must see every node of the two levels).
func (m *Manager) finishMigration() {
	for m.old != nil {
		m.migrate()
	}
}

// insertRef places an existing node into the current table, reusing the
// first tombstone on its probe path (no existence check: callers guarantee
// the node is not already present).
func (m *Manager) insertRef(r Ref) {
	n := &m.nodes[r]
	p := ohash.NewProbe(hash3(n.level, n.lo, n.hi), len(m.table))
	for m.table[p.Slot()] != 0 && m.table[p.Slot()] != tombstone {
		p.Advance()
	}
	if m.table[p.Slot()] == tombstone {
		m.tombstones--
	}
	m.table[p.Slot()] = r
	m.tabEntries++
}

// deleteRef removes a node from the current table, leaving a tombstone so
// longer probe chains stay intact. The caller must have finished any
// incremental migration first. Used only by level swaps.
func (m *Manager) deleteRef(r Ref) {
	n := &m.nodes[r]
	p := ohash.NewProbe(hash3(n.level, n.lo, n.hi), len(m.table))
	for m.table[p.Slot()] != r {
		if m.table[p.Slot()] == 0 {
			panic("bdd: deleteRef of a node not in the unique table")
		}
		p.Advance()
	}
	m.table[p.Slot()] = tombstone
	m.tabEntries--
	m.tombstones++
}

// grow doubles the unique table. The full old table is kept read-only and
// drained incrementally by subsequent mk calls.
func (m *Manager) grow() {
	if m.old != nil {
		// A rehash is still draining; finish it before starting another.
		for _, r := range m.old[m.oldPos:] {
			if r > 1 {
				m.insertRef(r)
			}
		}
		m.old = nil
	}
	m.old = m.table
	m.oldPos = 0
	m.table = make([]Ref, 2*len(m.table))
	m.tabEntries = 0
	m.tombstones = 0
	m.rehashes++
}

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	m.migrate()
	h := hash3(level, lo, hi)
	p := ohash.NewProbe(h, len(m.table))
	i := p.Slot()
	ins := uint32(1) << 31 // first tombstone on the probe path, if any
	for {
		r := m.table[i]
		if r == 0 {
			break
		}
		if r == tombstone {
			if ins == uint32(1)<<31 {
				ins = i
			}
			p.Advance()
			i = p.Slot()
			continue
		}
		n := &m.nodes[r]
		if n.level == level && n.lo == lo && n.hi == hi {
			return r
		}
		p.Advance()
		i = p.Slot()
	}
	if m.old != nil {
		for q := ohash.NewProbe(h, len(m.old)); ; q.Advance() {
			r := m.old[q.Slot()]
			if r == 0 {
				break
			}
			if r != tombstone {
				n := &m.nodes[r]
				if n.level == level && n.lo == lo && n.hi == hi {
					return r
				}
			}
		}
	}
	if m.MaxNodes > 0 && len(m.nodes) >= m.MaxNodes {
		panic(ErrNodeLimit)
	}
	if ins != uint32(1)<<31 {
		i = ins
		m.tombstones--
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.table[i] = r
	m.tabEntries++
	// Grow at 3/4 load (ohash.ShouldGrow; tombstones count — they lengthen
	// probe chains just like live entries). Migration drains far faster
	// than fresh inserts can refill, so the draining table is always empty
	// well before this fires again (the grow() drain loop is a safety net,
	// not the common path).
	if ohash.ShouldGrow(m.tabEntries, m.tombstones, len(m.table)) {
		m.grow()
	}
	return r
}

// cacheIndex hashes a computed-table key into the direct-mapped cache.
func (m *Manager) cacheIndex(op byte, f, g, h Ref) uint32 {
	x := uint32(f)*0x9e3779b1 ^ uint32(g)*0x85ebca6b ^ uint32(h)*0xc2b2ae35 ^ uint32(op)*0x27d4eb2f
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	return x & uint32(len(m.cache)-1)
}

// cacheGet probes the computed table, accounting hits and misses.
func (m *Manager) cacheGet(op byte, f, g, h Ref) (Ref, bool) {
	e := &m.cache[m.cacheIndex(op, f, g, h)]
	if e.valid && e.op == op && e.f == f && e.g == g && e.h == h {
		m.cacheHits++
		return e.r, true
	}
	m.cacheMisses++
	return 0, false
}

// cachePut stores a result, overwriting whatever occupied the slot (lossy
// direct-mapped replacement). When the cache is 3/4 occupied and below the
// cap it quadruples, carrying surviving entries over.
func (m *Manager) cachePut(op byte, f, g, h, r Ref) {
	e := &m.cache[m.cacheIndex(op, f, g, h)]
	if !e.valid {
		m.cacheUsed++
	}
	*e = cacheEntry{f: f, g: g, h: h, r: r, op: op, valid: true}
	if m.cacheUsed*4 >= len(m.cache)*3 && len(m.cache) < maxCacheSize {
		old := m.cache
		m.cache = make([]cacheEntry, 4*len(old))
		m.cacheUsed = 0
		for _, oe := range old {
			if !oe.valid {
				continue
			}
			ne := &m.cache[m.cacheIndex(oe.op, oe.f, oe.g, oe.h)]
			if !ne.valid {
				m.cacheUsed++
			}
			*ne = oe
		}
	}
}

// NodeCount returns the number of distinct internal nodes reachable from f
// (the size of f's DAG, excluding terminals).
func (m *Manager) NodeCount(f Ref) int {
	if f == True || f == False {
		return 0
	}
	if len(m.visited) < len(m.nodes) {
		m.visited = make([]uint32, len(m.nodes)+len(m.nodes)/2)
		m.visitEpoch = 0
	}
	m.visitEpoch++
	epoch := m.visitEpoch
	count := 0
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || m.visited[g] == epoch {
			return
		}
		m.visited[g] = epoch
		count++
		n := m.nodes[g]
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	return count
}

// Var returns the BDD of variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(int32(m.var2level[v]), False, True)
}

// NVar returns the BDD of ¬v.
func (m *Manager) NVar(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(int32(m.var2level[v]), True, False)
}

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

// Ite computes if-then-else(f, g, h), the universal connective.
func (m *Manager) Ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.cacheGet(opIte, f, g, h); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofs(f, top)
	g0, g1 := m.cofs(g, top)
	h0, h1 := m.cofs(h, top)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.cachePut(opIte, f, g, h, r)
	return r
}

func (m *Manager) cofs(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// And computes f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or computes f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Not computes ¬f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// Xor computes f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Xnor computes f ↔ g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.Ite(f, g, m.Not(g)) }

// Implies computes f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.Ite(f, g, True) }

// AndN folds And over refs (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over refs (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Exists existentially quantifies the variables marked true in vars.
func (m *Manager) Exists(f Ref, vars []bool) Ref {
	cube := m.varsCube(vars)
	return m.exists(f, cube)
}

// varsCube builds a positive cube over the marked variables, used as the
// quantification schedule and as a cache tag. Cubes are canonical BDDs, so
// two quantifications over the same variable set share cache entries and
// can never alias entries of a different cube. The cube is assembled in
// level order (bottom-up), so it stays canonical under any variable order.
func (m *Manager) varsCube(vars []bool) Ref {
	cube := True
	for lvl := m.numVars - 1; lvl >= 0; lvl-- {
		if v := m.level2var[lvl]; v < len(vars) && vars[v] {
			cube = m.mk(int32(lvl), False, cube)
		}
	}
	return cube
}

func (m *Manager) exists(f, cube Ref) Ref {
	if f == True || f == False || cube == True {
		return f
	}
	if r, ok := m.cacheGet(opExists, f, cube, 0); ok {
		return r
	}
	fl := m.level(f)
	// Skip cube vars above f's top.
	c := cube
	for m.level(c) < fl {
		c = m.nodes[c].hi
	}
	if c == True {
		m.cachePut(opExists, f, cube, 0, f)
		return f
	}
	n := m.nodes[f]
	var r Ref
	if m.level(c) == fl {
		// Quantify this variable: OR of cofactors.
		lo := m.exists(n.lo, m.nodes[c].hi)
		hi := m.exists(n.hi, m.nodes[c].hi)
		r = m.Or(lo, hi)
	} else {
		lo := m.exists(n.lo, c)
		hi := m.exists(n.hi, c)
		r = m.mk(fl, lo, hi)
	}
	m.cachePut(opExists, f, cube, 0, r)
	return r
}

// AndExists computes ∃vars (f ∧ g) without building the full conjunction —
// the relational-product kernel of image computation.
func (m *Manager) AndExists(f, g Ref, vars []bool) Ref {
	cube := m.varsCube(vars)
	return m.andExists(f, g, cube)
}

func (m *Manager) andExists(f, g, cube Ref) Ref {
	if f == False || g == False {
		return False
	}
	if f == True && g == True {
		return True
	}
	if cube == True {
		return m.And(f, g)
	}
	if f == True {
		return m.exists(g, cube)
	}
	if g == True {
		return m.exists(f, cube)
	}
	if f == g {
		return m.exists(f, cube)
	}
	if f > g {
		f, g = g, f // ∧ is commutative: canonical order doubles cache reach
	}
	if r, ok := m.cacheGet(opAndExists, f, g, cube); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	c := cube
	for m.level(c) < top {
		c = m.nodes[c].hi
	}
	f0, f1 := m.cofs(f, top)
	g0, g1 := m.cofs(g, top)
	var r Ref
	if c != True && m.level(c) == top {
		lo := m.andExists(f0, g0, m.nodes[c].hi)
		hi := m.andExists(f1, g1, m.nodes[c].hi)
		r = m.Or(lo, hi)
	} else {
		lo := m.andExists(f0, g0, c)
		hi := m.andExists(f1, g1, c)
		r = m.mk(top, lo, hi)
	}
	m.cachePut(opAndExists, f, g, cube, r)
	return r
}

// Permute renames variables: variable v becomes perm[v]. Identity entries
// may be omitted by passing perm[v] == v.
//
// Permutations are content-addressed: the same mapping always resolves to
// the same cache tag, so repeated Permute calls share computed-table
// entries, and entries written under one permutation can never be returned
// for another (the regression the map-era tag-per-call scheme only avoided
// by never reusing tags, forfeiting all cross-call caching).
func (m *Manager) Permute(f Ref, perm []int) Ref {
	p := make([]int, m.numVars)
	for i := range p {
		p[i] = i
	}
	copy(p, perm)
	key := make([]byte, 0, 4*len(p))
	for _, v := range p {
		key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	if m.permTags == nil {
		m.permTags = make(map[string]Ref)
	}
	tag, ok := m.permTags[string(key)]
	if !ok {
		m.perms = append(m.perms, p)
		tag = Ref(len(m.perms) - 1)
		m.permTags[string(key)] = tag
	}
	return m.permute(f, m.perms[tag], tag)
}

func (m *Manager) permute(f Ref, perm []int, tag Ref) Ref {
	if f == True || f == False {
		return f
	}
	if r, ok := m.cacheGet(opPermute, f, tag, 0); ok {
		return r
	}
	n := m.nodes[f]
	lo := m.permute(n.lo, perm, tag)
	hi := m.permute(n.hi, perm, tag)
	v := perm[m.level2var[n.level]]
	r := m.Ite(m.Var(v), hi, lo)
	m.cachePut(opPermute, f, tag, 0, r)
	return r
}

// Eval evaluates f under a complete assignment (indexed by variable).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[m.level2var[n.level]] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// Support returns a mask over variables marking the support of f (the
// variables f depends on).
func (m *Manager) Support(f Ref) []bool {
	sup := make([]bool, m.numVars)
	if f == True || f == False {
		return sup
	}
	if len(m.visited) < len(m.nodes) {
		m.visited = make([]uint32, len(m.nodes)+len(m.nodes)/2)
		m.visitEpoch = 0
	}
	m.visitEpoch++
	epoch := m.visitEpoch
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || m.visited[g] == epoch {
			return
		}
		m.visited[g] = epoch
		n := m.nodes[g]
		sup[m.level2var[n.level]] = true
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	return sup
}

// SatCount returns the number of satisfying assignments over all NumVars
// variables as a float64 (adequate for reporting reachable-state counts).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(f Ref, level int32) float64
	count = func(f Ref, level int32) float64 {
		if f == False {
			return 0
		}
		fl := m.level(f)
		if f == True {
			fl = int32(m.numVars)
		}
		gap := 1.0 // multiplier for the variables skipped above f
		for i := level; i < fl; i++ {
			gap *= 2
		}
		if f == True {
			return gap
		}
		var sub float64
		if v, ok := memo[f]; ok {
			sub = v
		} else {
			n := m.nodes[f]
			sub = count(n.lo, fl+1) + count(n.hi, fl+1)
			memo[f] = sub
		}
		return gap * sub
	}
	return count(f, 0)
}

// PickCube returns one satisfying assignment of f (nil if f is False).
// Unconstrained variables are reported as logic.LitBoth.
func (m *Manager) PickCube(f Ref) []logic.Lit {
	if f == False {
		return nil
	}
	out := make([]logic.Lit, m.numVars)
	for i := range out {
		out[i] = logic.LitBoth
	}
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			out[m.level2var[n.level]] = logic.LitPos
			f = n.hi
		} else {
			out[m.level2var[n.level]] = logic.LitNeg
			f = n.lo
		}
	}
	return out
}

// FromCover builds the BDD of a SOP cover; cover variable i maps to manager
// variable varMap[i] (identity when varMap is nil).
func (m *Manager) FromCover(f *logic.Cover, varMap []int) Ref {
	r := False
	for _, c := range f.Cubes {
		cube := True
		for v := 0; v < c.N; v++ {
			mv := v
			if varMap != nil {
				mv = varMap[v]
			}
			switch c.Lit(v) {
			case logic.LitPos:
				cube = m.And(cube, m.Var(mv))
			case logic.LitNeg:
				cube = m.And(cube, m.NVar(mv))
			case logic.LitNone:
				cube = False
			}
			if cube == False {
				break // a void literal (or contradiction) kills the cube
			}
		}
		r = m.Or(r, cube)
	}
	return r
}

// ToCover converts a BDD back into a (possibly non-minimal) SOP cover by
// path enumeration. Intended for don't-care extraction on small supports.
func (m *Manager) ToCover(f Ref, n int) *logic.Cover {
	out := logic.NewCover(n)
	cur := logic.NewCube(n)
	var walk func(f Ref, c logic.Cube)
	walk = func(f Ref, c logic.Cube) {
		if f == False {
			return
		}
		if f == True {
			out.Add(c.Clone())
			return
		}
		nd := m.nodes[f]
		lo := c.Clone()
		lo.SetLit(m.level2var[nd.level], logic.LitNeg)
		walk(nd.lo, lo)
		hi := c.Clone()
		hi.SetLit(m.level2var[nd.level], logic.LitPos)
		walk(nd.hi, hi)
	}
	walk(f, cur)
	return out
}
