// Package bdd implements reduced ordered binary decision diagrams with a
// unique table and computed-table caching. It is the substrate for implicit
// state enumeration (internal/reach) and product-machine sequential
// equivalence checking (internal/seqverify) — the machinery the paper's
// baseline flow uses to extract unreachable-state don't cares, and that the
// paper pointedly avoids needing for its own DCret computation.
package bdd

import (
	"fmt"

	"repro/internal/logic"
)

// Ref is a node reference. 0 and 1 are the terminal constants.
type Ref int32

const (
	// False is the constant-0 BDD.
	False Ref = 0
	// True is the constant-1 BDD.
	True Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel level
	lo, hi Ref
}

type triple struct {
	level  int32
	lo, hi Ref
}

type opKey struct {
	op      byte
	f, g, h Ref
}

const (
	opIte byte = iota
	opExists
	opAndExists
	opPermute
)

// Manager owns the node pool and caches. NumVars is fixed at construction.
type Manager struct {
	numVars int
	nodes   []node
	unique  map[triple]Ref
	cache   map[opKey]Ref
	// quantCube/permID tag the cache entries of parameterized ops.
	quantTag Ref
	permTag  int
	perms    [][]int
	// MaxNodes optionally bounds growth; Ite panics with ErrNodeLimit
	// beyond it (callers recover to fall back gracefully).
	MaxNodes int
	// cacheHits/cacheMisses account computed-table effectiveness across
	// all cached operations (Ite, Exists, AndExists, Permute).
	cacheHits, cacheMisses int64
}

// Stats is a snapshot of the manager's table accounting. Nodes are never
// freed (no garbage collection), so PeakNodes equals Nodes.
type Stats struct {
	NumVars     int
	Nodes       int // live node count, including the two terminals
	PeakNodes   int
	UniqueSize  int // unique-table entries (internal nodes)
	CacheSize   int // computed-table entries
	CacheHits   int64
	CacheMisses int64
}

// Stats returns the current table accounting.
func (m *Manager) Stats() Stats {
	return Stats{
		NumVars:     m.numVars,
		Nodes:       len(m.nodes),
		PeakNodes:   len(m.nodes),
		UniqueSize:  len(m.unique),
		CacheSize:   len(m.cache),
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMisses,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d unique=%d cache=%d hits=%d misses=%d",
		s.Nodes, s.UniqueSize, s.CacheSize, s.CacheHits, s.CacheMisses)
}

// cacheGet is the accounting wrapper around computed-table lookups.
func (m *Manager) cacheGet(k opKey) (Ref, bool) {
	if r, ok := m.cache[k]; ok {
		m.cacheHits++
		return r, true
	}
	m.cacheMisses++
	return 0, false
}

// NodeCount returns the number of distinct internal nodes reachable from f
// (the size of f's DAG, excluding terminals).
func (m *Manager) NodeCount(f Ref) int {
	if f == True || f == False {
		return 0
	}
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	return len(seen)
}

// ErrNodeLimit is the panic value raised when MaxNodes is exceeded.
var ErrNodeLimit = fmt.Errorf("bdd: node limit exceeded")

const terminalLevel = int32(1) << 30

// New creates a manager for n variables.
func New(n int) *Manager {
	m := &Manager{
		numVars: n,
		unique:  make(map[triple]Ref),
		cache:   make(map[opKey]Ref),
	}
	m.nodes = append(m.nodes,
		node{level: terminalLevel}, // False
		node{level: terminalLevel}, // True
	)
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := triple{level, lo, hi}
	if r, ok := m.unique[k]; ok {
		return r
	}
	if m.MaxNodes > 0 && len(m.nodes) >= m.MaxNodes {
		panic(ErrNodeLimit)
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[k] = r
	return r
}

// Var returns the BDD of variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD of ¬v.
func (m *Manager) NVar(v int) Ref {
	return m.mk(int32(v), True, False)
}

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

// Ite computes if-then-else(f, g, h), the universal connective.
func (m *Manager) Ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := opKey{opIte, f, g, h}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofs(f, top)
	g0, g1 := m.cofs(g, top)
	h0, h1 := m.cofs(h, top)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.cache[k] = r
	return r
}

func (m *Manager) cofs(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// And computes f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.Ite(f, g, False) }

// Or computes f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.Ite(f, True, g) }

// Not computes ¬f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// Xor computes f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.Ite(f, m.Not(g), g) }

// Xnor computes f ↔ g.
func (m *Manager) Xnor(f, g Ref) Ref { return m.Ite(f, g, m.Not(g)) }

// Implies computes f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.Ite(f, g, True) }

// AndN folds And over refs (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over refs (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Exists existentially quantifies the variables marked true in vars.
func (m *Manager) Exists(f Ref, vars []bool) Ref {
	cube := m.varsCube(vars)
	return m.exists(f, cube)
}

// varsCube builds a positive cube over the marked variables, used as the
// quantification schedule and as a cache tag.
func (m *Manager) varsCube(vars []bool) Ref {
	cube := True
	for v := m.numVars - 1; v >= 0; v-- {
		if v < len(vars) && vars[v] {
			cube = m.mk(int32(v), False, cube)
		}
	}
	return cube
}

func (m *Manager) exists(f, cube Ref) Ref {
	if f == True || f == False || cube == True {
		return f
	}
	k := opKey{opExists, f, cube, 0}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	fl := m.level(f)
	// Skip cube vars above f's top.
	c := cube
	for m.level(c) < fl {
		c = m.nodes[c].hi
	}
	if c == True {
		m.cache[k] = f
		return f
	}
	n := m.nodes[f]
	var r Ref
	if m.level(c) == fl {
		// Quantify this variable: OR of cofactors.
		lo := m.exists(n.lo, m.nodes[c].hi)
		hi := m.exists(n.hi, m.nodes[c].hi)
		r = m.Or(lo, hi)
	} else {
		lo := m.exists(n.lo, c)
		hi := m.exists(n.hi, c)
		r = m.mk(fl, lo, hi)
	}
	m.cache[k] = r
	return r
}

// AndExists computes ∃vars (f ∧ g) without building the full conjunction —
// the relational-product kernel of image computation.
func (m *Manager) AndExists(f, g Ref, vars []bool) Ref {
	cube := m.varsCube(vars)
	return m.andExists(f, g, cube)
}

func (m *Manager) andExists(f, g, cube Ref) Ref {
	if f == False || g == False {
		return False
	}
	if f == True && g == True {
		return True
	}
	if cube == True {
		return m.And(f, g)
	}
	if f == True {
		return m.exists(g, cube)
	}
	if g == True {
		return m.exists(f, cube)
	}
	if f == g {
		return m.exists(f, cube)
	}
	k := opKey{opAndExists, f, g, cube}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	c := cube
	for m.level(c) < top {
		c = m.nodes[c].hi
	}
	f0, f1 := m.cofs(f, top)
	g0, g1 := m.cofs(g, top)
	var r Ref
	if c != True && m.level(c) == top {
		lo := m.andExists(f0, g0, m.nodes[c].hi)
		hi := m.andExists(f1, g1, m.nodes[c].hi)
		r = m.Or(lo, hi)
	} else {
		lo := m.andExists(f0, g0, c)
		hi := m.andExists(f1, g1, c)
		r = m.mk(top, lo, hi)
	}
	m.cache[k] = r
	return r
}

// Permute renames variables: variable v becomes perm[v]. Identity entries
// may be omitted by passing perm[v] == v.
func (m *Manager) Permute(f Ref, perm []int) Ref {
	if len(perm) != m.numVars {
		p := make([]int, m.numVars)
		for i := range p {
			p[i] = i
		}
		copy(p, perm)
		perm = p
	}
	m.perms = append(m.perms, perm)
	tag := Ref(len(m.perms) - 1)
	return m.permute(f, perm, tag)
}

func (m *Manager) permute(f Ref, perm []int, tag Ref) Ref {
	if f == True || f == False {
		return f
	}
	k := opKey{opPermute, f, tag, 0}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	n := m.nodes[f]
	lo := m.permute(n.lo, perm, tag)
	hi := m.permute(n.hi, perm, tag)
	v := perm[n.level]
	r := m.Ite(m.Var(v), hi, lo)
	m.cache[k] = r
	return r
}

// Eval evaluates f under a complete assignment.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over all NumVars
// variables as a float64 (adequate for reporting reachable-state counts).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(f Ref, level int32) float64
	count = func(f Ref, level int32) float64 {
		if f == False {
			return 0
		}
		fl := m.level(f)
		if f == True {
			fl = int32(m.numVars)
		}
		gap := 1.0 // multiplier for the variables skipped above f
		for i := level; i < fl; i++ {
			gap *= 2
		}
		if f == True {
			return gap
		}
		var sub float64
		if v, ok := memo[f]; ok {
			sub = v
		} else {
			n := m.nodes[f]
			sub = count(n.lo, fl+1) + count(n.hi, fl+1)
			memo[f] = sub
		}
		return gap * sub
	}
	return count(f, 0)
}

// PickCube returns one satisfying assignment of f (nil if f is False).
// Unconstrained variables are reported as logic.LitBoth.
func (m *Manager) PickCube(f Ref) []logic.Lit {
	if f == False {
		return nil
	}
	out := make([]logic.Lit, m.numVars)
	for i := range out {
		out[i] = logic.LitBoth
	}
	for f != True {
		n := m.nodes[f]
		if n.hi != False {
			out[n.level] = logic.LitPos
			f = n.hi
		} else {
			out[n.level] = logic.LitNeg
			f = n.lo
		}
	}
	return out
}

// FromCover builds the BDD of a SOP cover; cover variable i maps to manager
// variable varMap[i] (identity when varMap is nil).
func (m *Manager) FromCover(f *logic.Cover, varMap []int) Ref {
	r := False
	for _, c := range f.Cubes {
		cube := True
		for v := 0; v < c.N; v++ {
			mv := v
			if varMap != nil {
				mv = varMap[v]
			}
			switch c.Lit(v) {
			case logic.LitPos:
				cube = m.And(cube, m.Var(mv))
			case logic.LitNeg:
				cube = m.And(cube, m.NVar(mv))
			case logic.LitNone:
				cube = False
			}
		}
		r = m.Or(r, cube)
	}
	return r
}

// ToCover converts a BDD back into a (possibly non-minimal) SOP cover by
// path enumeration. Intended for don't-care extraction on small supports.
func (m *Manager) ToCover(f Ref, n int) *logic.Cover {
	out := logic.NewCover(n)
	cur := logic.NewCube(n)
	var walk func(f Ref, c logic.Cube)
	walk = func(f Ref, c logic.Cube) {
		if f == False {
			return
		}
		if f == True {
			out.Add(c.Clone())
			return
		}
		nd := m.nodes[f]
		lo := c.Clone()
		lo.SetLit(int(nd.level), logic.LitNeg)
		walk(nd.lo, lo)
		hi := c.Clone()
		hi.SetLit(int(nd.level), logic.LitPos)
		walk(nd.hi, hi)
	}
	walk(f, cur)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
