package bdd

import (
	"math/rand"
	"testing"
)

// The micro-benchmarks build every BDD from scratch on a fresh manager per
// iteration, so they measure the cold-table cost of the unique-table and
// computed-cache machinery (the hot path of implicit state enumeration),
// not the trivial all-hits steady state.

// iteWorkload deterministically describes a batch of random SOP functions:
// each function is a list of cubes, each cube a list of (var, phase) pairs.
type iteWorkload [][][][2]int

func makeIteWorkload(nvars, funcs, cubes int, seed int64) iteWorkload {
	r := rand.New(rand.NewSource(seed))
	w := make(iteWorkload, funcs)
	for i := range w {
		for c := 0; c < cubes; c++ {
			var cube [][2]int
			for v := 0; v < nvars; v++ {
				switch r.Intn(3) {
				case 0:
					cube = append(cube, [2]int{v, 1})
				case 1:
					cube = append(cube, [2]int{v, 0})
				}
			}
			w[i] = append(w[i], cube)
		}
	}
	return w
}

func (w iteWorkload) build(m *Manager) []Ref {
	out := make([]Ref, len(w))
	for i, cubes := range w {
		f := False
		for _, cube := range cubes {
			c := True
			for _, lit := range cube {
				if lit[1] == 1 {
					c = m.And(c, m.Var(lit[0]))
				} else {
					c = m.And(c, m.NVar(lit[0]))
				}
			}
			f = m.Or(f, c)
		}
		out[i] = f
	}
	return out
}

// BenchmarkIte measures the universal connective over a batch of random
// functions: SOP construction, pairwise XOR folding, and a final parity
// chain. This is the kernel every other operation reduces to.
func BenchmarkIte(b *testing.B) {
	const nvars = 24
	w := makeIteWorkload(nvars, 16, 12, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(nvars)
		fs := w.build(m)
		acc := False
		for _, f := range fs {
			acc = m.Xor(acc, f)
		}
		for v := 0; v < nvars; v++ {
			acc = m.Xor(acc, m.Var(v))
		}
		if acc == False {
			b.Fatal("degenerate workload")
		}
	}
}

// BenchmarkAndExists measures the relational-product kernel on a synthetic
// interleaved transition relation, mirroring one image step of reach.
func BenchmarkAndExists(b *testing.B) {
	const latches = 10
	nvars := 2 * latches
	w := makeIteWorkload(nvars, latches, 6, 11)
	quant := make([]bool, nvars)
	for i := 0; i < latches; i++ {
		quant[2*i] = true // quantify current-state vars
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(nvars)
		deltas := w.build(m)
		rel := True
		for l, d := range deltas {
			rel = m.And(rel, m.Xnor(m.Var(2*l+1), d))
		}
		front := True
		for l := 0; l < latches; l++ {
			front = m.And(front, m.NVar(2*l))
		}
		img := m.AndExists(front, rel, quant)
		if img == False {
			b.Fatal("empty image")
		}
	}
}

// BenchmarkMk isolates unique-table pressure: a wide parity ladder creates
// and re-finds thousands of nodes with minimal computed-cache help.
func BenchmarkMk(b *testing.B) {
	const nvars = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(nvars)
		f := False
		for v := 0; v < nvars; v++ {
			f = m.Xor(f, m.Var(v))
		}
		g := True
		for v := 0; v < nvars; v++ {
			g = m.Xnor(g, m.Var(v))
		}
		if m.Xor(f, g) != True { // g folds one extra inversion: g == ¬f
			b.Fatal("parity mismatch")
		}
	}
}
