package bdd

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// randomFuncs builds nf random functions over nv variables using a mix of
// connectives, returning the refs. Deterministic per seed.
func randomFuncs(m *Manager, rng *rand.Rand, nv, nf int) []Ref {
	pool := make([]Ref, 0, 2*nv+nf)
	for v := 0; v < nv; v++ {
		pool = append(pool, m.Var(v), m.NVar(v))
	}
	out := make([]Ref, 0, nf)
	for len(out) < nf {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		var f Ref
		switch rng.Intn(4) {
		case 0:
			f = m.And(a, m.Or(b, c))
		case 1:
			f = m.Xor(a, m.And(b, c))
		case 2:
			f = m.Ite(a, b, c)
		default:
			f = m.Or(m.And(a, b), m.Xnor(b, c))
		}
		pool = append(pool, f)
		out = append(out, f)
	}
	return out
}

// truthTable evaluates f over all 2^nv assignments.
func truthTable(m *Manager, f Ref, nv int) []bool {
	tt := make([]bool, 1<<nv)
	assign := make([]bool, nv)
	for mt := range tt {
		for v := 0; v < nv; v++ {
			assign[v] = mt&(1<<v) != 0
		}
		tt[mt] = m.Eval(f, assign)
	}
	return tt
}

func sameTable(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSetOrderSemanticsIndependentOfOrder(t *testing.T) {
	const nv = 6
	rng := rand.New(rand.NewSource(7))
	// Reference manager: identity order.
	ref := New(nv)
	refFs := randomFuncs(ref, rand.New(rand.NewSource(42)), nv, 20)

	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(nv)
		m := New(nv)
		m.SetOrder(order)
		got := m.Order()
		for i, v := range order {
			if got[i] != v {
				t.Fatalf("Order() = %v, want %v", got, order)
			}
		}
		fs := randomFuncs(m, rand.New(rand.NewSource(42)), nv, 20)
		for i := range fs {
			if !sameTable(truthTable(m, fs[i], nv), truthTable(ref, refFs[i], nv)) {
				t.Fatalf("order %v: function %d differs from identity-order build", order, i)
			}
		}
		// Quantification, permutation and covers must stay order-independent.
		vars := make([]bool, nv)
		vars[order[0]] = true
		vars[order[nv-1]] = true
		if !sameTable(truthTable(m, m.Exists(fs[0], vars), nv), truthTable(ref, ref.Exists(refFs[0], vars), nv)) {
			t.Fatalf("order %v: Exists differs", order)
		}
		perm := rng.Perm(nv)
		if !sameTable(truthTable(m, m.Permute(fs[1], perm), nv), truthTable(ref, ref.Permute(refFs[1], perm), nv)) {
			t.Fatalf("order %v: Permute differs", order)
		}
		cov := m.ToCover(fs[2], nv)
		back := m.FromCover(cov, nil)
		if back != fs[2] {
			t.Fatalf("order %v: ToCover/FromCover roundtrip lost the function", order)
		}
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.Or(m.And(m.Var(0), m.Var(3)), m.NVar(4))
	sup := m.Support(f)
	want := []bool{true, false, false, true, true}
	for v := range want {
		if sup[v] != want[v] {
			t.Fatalf("Support = %v, want %v", sup, want)
		}
	}
	if s := m.Support(True); len(s) != 5 {
		t.Fatal("Support of a terminal must be an all-false mask")
	}
	// Under a reversed order the support is the same set of variables.
	m2 := New(5)
	m2.SetOrder([]int{4, 3, 2, 1, 0})
	f2 := m2.Or(m2.And(m2.Var(0), m2.Var(3)), m2.NVar(4))
	sup2 := m2.Support(f2)
	for v := range want {
		if sup2[v] != want[v] {
			t.Fatalf("reversed order: Support = %v, want %v", sup2, want)
		}
	}
}

// TestSiftPreservesFunctions is the core reorder soundness check: after
// sifting, every root must still denote the same function, and the table
// must remain canonical (rebuilding an equivalent expression returns the
// same Ref, not a duplicate).
func TestSiftPreservesFunctions(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		const nv = 8
		m := New(nv)
		rng := rand.New(rand.NewSource(seed))
		fs := randomFuncs(m, rng, nv, 40)
		before := make([][]bool, len(fs))
		for i, f := range fs {
			before[i] = truthTable(m, f, nv)
		}
		res := m.Sift(fs, 0)
		if res.Swaps == 0 {
			t.Fatalf("seed %d: sifting performed no swaps", seed)
		}
		if m.Stats().SiftSwaps != int64(res.Swaps) {
			t.Fatalf("seed %d: Stats.SiftSwaps %d != result %d", seed, m.Stats().SiftSwaps, res.Swaps)
		}
		for i, f := range fs {
			if !sameTable(truthTable(m, f, nv), before[i]) {
				t.Fatalf("seed %d: function %d changed denotation after sifting", seed, i)
			}
		}
		// Canonicity after swaps: an equivalent expression must hit the
		// same Ref through the unique table.
		for i, f := range fs {
			if g := m.Ite(f, True, False); g != f {
				t.Fatalf("seed %d: table lost canonicity for function %d", seed, i)
			}
			if g := m.Not(m.Not(f)); g != f {
				t.Fatalf("seed %d: double negation broke after sifting (fn %d)", seed, i)
			}
		}
		// Operations keep working after a reorder (fresh mk/cache traffic).
		sum := False
		for _, f := range fs {
			sum = m.Xor(sum, f)
		}
		want := make([]bool, 1<<nv)
		for i := range fs {
			for mt := range want {
				want[mt] = want[mt] != before[i][mt]
			}
		}
		if !sameTable(truthTable(m, sum, nv), want) {
			t.Fatalf("seed %d: post-sift Xor fold is wrong", seed)
		}
	}
}

// TestSiftReducesAdversarialOrder checks the point of sifting: a function
// with a known bad-vs-good order gap must shrink. f = x0·x4 + x1·x5 + x2·x6
// + x3·x7 is exponential under (0,1,2,3,4,5,6,7)-interleaved-badly and
// linear when pairs are adjacent.
func TestSiftReducesAdversarialOrder(t *testing.T) {
	const k = 4 // pairs; nv = 8
	m := New(2 * k)
	f := False
	for i := 0; i < k; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(i+k)))
	}
	before := m.NodeCount(f)
	res := m.Sift([]Ref{f}, 0)
	after := m.NodeCount(f)
	if after >= before {
		t.Fatalf("sifting did not shrink the adversarial function: %d -> %d (swaps %d)", before, after, res.Swaps)
	}
	// The optimal order gives 3k-ish nodes vs 3·2^k-ish; demand at least 2x.
	if after*2 > before {
		t.Fatalf("sifting too weak: %d -> %d", before, after)
	}
	if res.AfterNodes < after {
		t.Fatalf("AfterNodes %d below true live count %d", res.AfterNodes, after)
	}
	// The function itself is intact.
	for mt := 0; mt < 1<<(2*k); mt++ {
		assign := make([]bool, 2*k)
		for v := range assign {
			assign[v] = mt&(1<<v) != 0
		}
		want := false
		for i := 0; i < k; i++ {
			want = want || (assign[i] && assign[i+k])
		}
		if m.Eval(f, assign) != want {
			t.Fatalf("function changed at minterm %d", mt)
		}
	}
}

func TestSiftRespectsSwapBudget(t *testing.T) {
	m := New(10)
	fs := randomFuncs(m, rand.New(rand.NewSource(3)), 10, 30)
	res := m.Sift(fs, 5)
	if res.Swaps > 5 {
		t.Fatalf("budget 5 exceeded: %d swaps", res.Swaps)
	}
	// MaxNodes must be restored after the pass.
	m2 := New(4)
	m2.MaxNodes = 1 << 20
	g := m2.And(m2.Var(0), m2.Var(1))
	m2.Sift([]Ref{g}, 0)
	if m2.MaxNodes != 1<<20 {
		t.Fatalf("MaxNodes not restored: %d", m2.MaxNodes)
	}
}

func TestFromCoverVoidCube(t *testing.T) {
	// A cube containing LitNone is void; it must not contribute minterms
	// regardless of later literals in the same cube.
	c := logic.NewCover(3)
	cube := logic.NewCube(3)
	cube.SetLit(0, logic.LitNone)
	cube.SetLit(1, logic.LitPos)
	c.Add(cube)
	ok := logic.NewCube(3)
	ok.SetLit(2, logic.LitPos)
	c.Add(ok)
	m := New(3)
	if got := m.FromCover(c, nil); got != m.Var(2) {
		t.Fatalf("void cube leaked into FromCover result")
	}
}
