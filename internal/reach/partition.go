// Partitioned transition relations with early quantification (Burch/Clarke/
// Long; Ranjan et al. IWLS'95) and topology-driven static variable ordering.
// Instead of materializing the monolithic ∏(next_i ↔ δ_i) — whose BDD is the
// scalability wall the paper cites for implicit enumeration — the per-latch
// relations are greedily clustered under a node-size threshold, the clusters
// are ordered so that every variable is existentially quantified at the
// first AndExists step after its last use, and the image is folded as a
// chain of relational products that never builds the full conjunction.
package reach

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/network"
)

// ImageMode selects how the image of a state set is computed.
type ImageMode int

const (
	// ImageDefault resolves to ImagePartitioned.
	ImageDefault ImageMode = iota
	// ImagePartitioned chains AndExists over clustered per-latch relations
	// with an early-quantification schedule.
	ImagePartitioned
	// ImageMonolithic conjoins all per-latch relations into one BDD and
	// quantifies in a single AndExists (the historical behaviour).
	ImageMonolithic
)

func (im ImageMode) String() string {
	switch im {
	case ImageMonolithic:
		return "monolithic"
	default:
		return "partitioned"
	}
}

// ParseImageMode parses a -partition flag value.
func ParseImageMode(s string) (ImageMode, error) {
	switch s {
	case "", "on", "partitioned", "part":
		return ImagePartitioned, nil
	case "off", "monolithic", "mono":
		return ImageMonolithic, nil
	}
	return 0, fmt.Errorf("reach: unknown partition mode %q (want on|off)", s)
}

// VarOrder selects the static variable order of the BDD manager.
type VarOrder int

const (
	// OrderDefault resolves to OrderTopo.
	OrderDefault VarOrder = iota
	// OrderTopo derives latch and PI ranks from a fanin-DFS of the network,
	// keeping each latch's current/next pair adjacent.
	OrderTopo
	// OrderPositional is the historical layout: latch i at levels 2i/2i+1,
	// PIs after all latches, in declaration order.
	OrderPositional
)

func (vo VarOrder) String() string {
	switch vo {
	case OrderPositional:
		return "positional"
	default:
		return "topo"
	}
}

// ParseVarOrder parses a -order flag value.
func ParseVarOrder(s string) (VarOrder, error) {
	switch s {
	case "", "topo", "topological":
		return OrderTopo, nil
	case "positional", "pos":
		return OrderPositional, nil
	}
	return 0, fmt.Errorf("reach: unknown variable order %q (want topo|positional)", s)
}

const (
	// DefaultClusterNodes is the greedy clustering threshold: a cluster
	// stops absorbing per-latch relations once its BDD exceeds this many
	// nodes.
	DefaultClusterNodes = 2000
	// DefaultSiftNodes is the manager size at which the first dynamic
	// reordering pass triggers when Limits.Reorder is set.
	DefaultSiftNodes = 50_000
)

// FlagLimits resolves the shared CLI knob surface (-partition, -order,
// -partition-nodes, -reorder) into Limits, starting from base (typically
// DefaultLimits).
func FlagLimits(base Limits, partition, order string, clusterNodes int, reorder bool) (Limits, error) {
	im, err := ParseImageMode(partition)
	if err != nil {
		return Limits{}, err
	}
	vo, err := ParseVarOrder(order)
	if err != nil {
		return Limits{}, err
	}
	base.Image = im
	base.Order = vo
	if clusterNodes > 0 {
		base.ClusterNodes = clusterNodes
	}
	base.Reorder = reorder
	return base, nil
}

// TransRel is a (possibly partitioned) transition relation prepared for
// image computation: an ordered list of cluster BDDs, a per-step
// quantification schedule, and the next→current renaming.
type TransRel struct {
	clusters []bdd.Ref
	sched    [][]bool // sched[k]: vars quantified by the k-th AndExists
	pre      []bool   // quant vars in no cluster's support
	preAny   bool
	perm     []int

	peakClusterNodes int
	schedSteps       int
}

// BuildTransRel clusters the per-latch relations `parts` under the node
// threshold and computes the early-quantification schedule for the
// variables marked in quant; perm is the next→current renaming applied
// after the chain. clusterNodes <= 0 requests the monolithic relation: one
// cluster holding the full conjunction, quantified in a single step —
// operation-for-operation the historical image computation.
func BuildTransRel(m *bdd.Manager, parts []bdd.Ref, quant []bool, perm []int, clusterNodes int) *TransRel {
	t := &TransRel{perm: perm}
	if clusterNodes <= 0 {
		rel := bdd.True
		for _, p := range parts {
			rel = m.And(rel, p)
		}
		t.clusters = []bdd.Ref{rel}
		t.sched = [][]bool{quant}
		t.schedSteps = 1
		t.peakClusterNodes = m.NodeCount(rel)
		return t
	}

	// Greedy sequential clustering: absorb relations in latch order while
	// the conjunction stays under the threshold. Under the topology-driven
	// variable order adjacent latches share structure, so neighbouring
	// relations conjoin compactly.
	var clusters []bdd.Ref
	cur := bdd.Ref(-1)
	for _, p := range parts {
		if cur < 0 {
			cur = p
			continue
		}
		trial := m.And(cur, p)
		if m.NodeCount(trial) <= clusterNodes {
			cur = trial
			continue
		}
		clusters = append(clusters, cur)
		cur = p
	}
	if cur >= 0 {
		clusters = append(clusters, cur)
	}

	// Per-cluster quantifiable support.
	sup := make([][]bool, len(clusters))
	for k, c := range clusters {
		s := m.Support(c)
		for v := range s {
			s[v] = s[v] && v < len(quant) && quant[v]
		}
		sup[k] = s
		if n := m.NodeCount(c); n > t.peakClusterNodes {
			t.peakClusterNodes = n
		}
	}

	// Order clusters greedily: at each step take the cluster with the most
	// exclusive quantifiable variables (vars no other remaining cluster
	// uses) — those are exactly the ones the step can quantify. Ties fall
	// to the smaller support, then the lower index, keeping the choice
	// deterministic.
	nv := m.NumVars()
	remaining := make([]int, len(clusters))
	for i := range remaining {
		remaining[i] = i
	}
	useCount := make([]int, nv) // among remaining clusters
	supSize := make([]int, len(clusters))
	for k := range clusters {
		for v := 0; v < nv; v++ {
			if sup[k][v] {
				useCount[v]++
				supSize[k]++
			}
		}
	}
	for len(remaining) > 0 {
		best := 0
		bestExcl, bestSize := -1, 0
		for ri, k := range remaining {
			excl := 0
			for v := 0; v < nv; v++ {
				if sup[k][v] && useCount[v] == 1 {
					excl++
				}
			}
			if excl > bestExcl || (excl == bestExcl && supSize[k] < bestSize) {
				best, bestExcl, bestSize = ri, excl, supSize[k]
			}
		}
		k := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		step := make([]bool, nv)
		for v := 0; v < nv; v++ {
			if sup[k][v] {
				useCount[v]--
				if useCount[v] == 0 {
					step[v] = true
				}
			}
		}
		t.clusters = append(t.clusters, clusters[k])
		t.sched = append(t.sched, step)
		for v := 0; v < nv; v++ {
			if step[v] {
				t.schedSteps++
				break
			}
		}
	}

	// Variables used by no cluster (a PI feeding no latch, a latch whose
	// output drives nothing) are quantified from the state set up front.
	t.pre = make([]bool, nv)
	for v := 0; v < nv; v++ {
		if v >= len(quant) || !quant[v] {
			continue
		}
		used := false
		for k := range sup {
			if sup[k][v] {
				used = true
				break
			}
		}
		if !used {
			t.pre[v] = true
			t.preAny = true
		}
	}
	if t.preAny {
		t.schedSteps++
	}
	return t
}

// Image computes the successor states of `from` under the relation,
// renamed back to current-state variables.
func (t *TransRel) Image(m *bdd.Manager, from bdd.Ref) bdd.Ref {
	acc := from
	if t.preAny {
		acc = m.Exists(acc, t.pre)
	}
	for k, c := range t.clusters {
		acc = m.AndExists(acc, c, t.sched[k])
	}
	return m.Permute(acc, t.perm)
}

// NumClusters returns the cluster count.
func (t *TransRel) NumClusters() int { return len(t.clusters) }

// ScheduleLen returns the number of image steps that quantify at least one
// variable (including the pre-step for variables outside every cluster).
func (t *TransRel) ScheduleLen() int { return t.schedSteps }

// PeakClusterNodes returns the largest cluster BDD, in internal nodes.
func (t *TransRel) PeakClusterNodes() int { return t.peakClusterNodes }

// Roots returns the BDD refs the relation keeps alive, for use as dynamic-
// reordering roots.
func (t *TransRel) Roots() []bdd.Ref {
	return append([]bdd.Ref(nil), t.clusters...)
}

// TopoLeafRanks assigns discovery ranks to latches and PIs from a
// depth-first traversal of the combinational fanin cones of the latch
// drivers (in latch order) and then the primary outputs: sources discovered
// together end up with adjacent ranks, so state variables that interact in
// some next-state function sit close in the BDD order. Latches or PIs not
// reachable from any driver or output keep rank -1; found is the number of
// ranked sources.
func TopoLeafRanks(n *network.Network) (latchRank, piRank []int, found int) {
	latchRank = make([]int, len(n.Latches))
	piRank = make([]int, len(n.PIs))
	latchIdx := make(map[*network.Node]int, len(n.Latches))
	for i, l := range n.Latches {
		latchRank[i] = -1
		latchIdx[l.Output] = i
	}
	piIdx := make(map[*network.Node]int, len(n.PIs))
	for j, p := range n.PIs {
		piRank[j] = -1
		piIdx[p] = j
	}
	visited := make(map[*network.Node]bool)
	var dfs func(*network.Node)
	dfs = func(v *network.Node) {
		if visited[v] {
			return
		}
		visited[v] = true
		switch v.Kind {
		case network.KindPI:
			piRank[piIdx[v]] = found
			found++
		case network.KindLatchOut:
			latchRank[latchIdx[v]] = found
			found++
		default:
			for _, fi := range v.Fanins {
				dfs(fi)
			}
		}
	}
	for _, l := range n.Latches {
		dfs(l.Driver)
	}
	for _, po := range n.POs {
		dfs(po.Driver)
	}
	return latchRank, piRank, found
}

// topoVarOrder derives the static variable order for one network: sources
// sorted by their TopoLeafRanks discovery rank (unseen sources after all
// seen ones, in declaration order), each latch contributing its
// current/next pair adjacently. The manager variable *indices* are
// untouched — only their level placement changes.
func topoVarOrder(n *network.Network, curVar, nextVar, inVar []int, nv int) []int {
	latchRank, piRank, found := TopoLeafRanks(n)
	type ent struct{ rank, kind, idx int } // kind: 0 latch, 1 PI
	ents := make([]ent, 0, len(latchRank)+len(piRank))
	for i, r := range latchRank {
		if r < 0 {
			r = found + i
		}
		ents = append(ents, ent{r, 0, i})
	}
	for j, r := range piRank {
		if r < 0 {
			r = found + len(latchRank) + j
		}
		ents = append(ents, ent{r, 1, j})
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].rank != ents[b].rank {
			return ents[a].rank < ents[b].rank
		}
		if ents[a].kind != ents[b].kind {
			return ents[a].kind < ents[b].kind
		}
		return ents[a].idx < ents[b].idx
	})
	order := make([]int, 0, nv)
	for _, e := range ents {
		if e.kind == 0 {
			order = append(order, curVar[e.idx], nextVar[e.idx])
		} else {
			order = append(order, inVar[e.idx])
		}
	}
	return order
}
