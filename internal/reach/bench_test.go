package reach_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/reach"
)

// BenchmarkReachFixpoint measures the full implicit-enumeration pipeline —
// node-function construction, transition relation, AndExists/Permute image
// iteration to the fixpoint — on embedded FSMs and ISCAS'89-profile
// circuits. This is the Table-I hot path the BDD substrate serves; DESIGN.md
// §8 records the speedup of the open-addressed tables against the original
// map-based manager on exactly this benchmark.
func BenchmarkReachFixpoint(b *testing.B) {
	modes := []struct {
		name string
		im   reach.ImageMode
	}{
		{"partitioned", reach.ImagePartitioned},
		{"monolithic", reach.ImageMonolithic},
	}
	for _, name := range []string{"bbtas", "bbara", "s298", "s344"} {
		for _, mode := range modes {
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				c, ok := bench.ByName(name)
				if !ok {
					b.Fatalf("unknown circuit %s", name)
				}
				src, err := c.Build()
				if err != nil {
					b.Fatal(err)
				}
				lim := reach.DefaultLimits
				lim.Image = mode.im
				var last *reach.Analysis
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a, err := reach.Analyze(src, lim)
					if err != nil {
						b.Fatal(err)
					}
					last = a
				}
				b.ReportMetric(float64(last.Stats.PeakNodes), "peak-nodes")
				b.ReportMetric(float64(last.Depth), "depth")
			})
		}
	}
}

var sinkCover interface{}

// BenchmarkUnreachableDC measures the don't-care projection that the
// retime+comb.opt flow applies per node after the fixpoint.
func BenchmarkUnreachableDC(b *testing.B) {
	c, ok := bench.ByName("bbara")
	if !ok {
		b.Fatal("bbara missing")
	}
	src, err := c.Build()
	if err != nil {
		b.Fatal(err)
	}
	a, err := reach.Analyze(src, reach.DefaultLimits)
	if err != nil {
		b.Fatal(err)
	}
	idx := make([]int, 0, len(src.Latches))
	for i := range src.Latches {
		idx = append(idx, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkCover = a.UnreachableDC(idx)
	}
}
