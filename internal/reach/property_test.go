package reach_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/reach"
)

// TestPropertyPartitionedMatchesMonolithic is the correctness anchor of the
// partitioned image computation: over random FSMs, every combination of
// image mode, variable order, clustering granularity and dynamic reordering
// must compute the exact same reachable set — same fixpoint depth, same
// state count, and bitwise-identical membership over the full 2^L state
// space — as the historical monolithic relation in positional order.
func TestPropertyPartitionedMatchesMonolithic(t *testing.T) {
	mk := func(im reach.ImageMode, vo reach.VarOrder) reach.Limits {
		lim := reach.DefaultLimits
		lim.Image = im
		lim.Order = vo
		return lim
	}
	fine := mk(reach.ImagePartitioned, reach.OrderTopo)
	fine.ClusterNodes = 1 // every per-latch relation its own cluster
	sifted := mk(reach.ImagePartitioned, reach.OrderTopo)
	sifted.Reorder = true
	sifted.SiftNodes = 1 // sift on every fixpoint iteration
	configs := []struct {
		name string
		lim  reach.Limits
	}{
		{"monolithic/positional", mk(reach.ImageMonolithic, reach.OrderPositional)},
		{"monolithic/topo", mk(reach.ImageMonolithic, reach.OrderTopo)},
		{"partitioned/positional", mk(reach.ImagePartitioned, reach.OrderPositional)},
		{"partitioned/topo", mk(reach.ImagePartitioned, reach.OrderTopo)},
		{"partitioned/finest", fine},
		{"partitioned/sifted", sifted},
	}

	for seed := int64(1); seed <= 10; seed++ {
		src := bench.Synthetic(bench.Profile{
			Name: "p", PIs: 3, POs: 2, FFs: 5, Gates: 14, Seed: seed,
		})
		ffs := len(src.Latches)
		var ref *reach.Analysis
		for _, cfg := range configs {
			a, err := reach.Analyze(src, cfg.lim)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.name, err)
			}
			if ref == nil {
				ref = a
				continue
			}
			if a.Depth != ref.Depth {
				t.Errorf("seed %d %s: depth %d != reference %d",
					seed, cfg.name, a.Depth, ref.Depth)
			}
			if got, want := a.NumReachable(), ref.NumReachable(); got != want {
				t.Errorf("seed %d %s: %v reachable states != reference %v",
					seed, cfg.name, got, want)
			}
			// Exhaustive membership: the same state must be in (or out of)
			// both reachable sets for all 2^L assignments. Variable indices
			// are identical across configs; only level placement differs.
			env := make([]bool, a.M.NumVars())
			refEnv := make([]bool, ref.M.NumVars())
			for s := 0; s < 1<<ffs; s++ {
				for i := 0; i < ffs; i++ {
					bit := s>>i&1 == 1
					env[a.CurVar[i]] = bit
					refEnv[ref.CurVar[i]] = bit
				}
				if a.M.Eval(a.Reachable, env) != ref.M.Eval(ref.Reachable, refEnv) {
					t.Fatalf("seed %d %s: state %0*b membership differs from reference",
						seed, cfg.name, ffs, s)
				}
			}
		}
	}
}
