// Package reach performs BDD-based implicit state enumeration of a
// sequential network (Coudert–Madre / Touati-style reachability). The
// baseline "retiming + combinational optimization" flow uses it to extract
// unreachable-state external don't cares — the computation the paper's own
// technique deliberately avoids (Section II: "implicit state enumeration
// methods using BDDs are computationally intensive...  In contrast, we do
// not have to perform any computation to evaluate these retiming induced
// don't care conditions").
package reach

import (
	"context"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/guard"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
)

// Analysis is the result of reachability on one network.
//
// Variable layout in the manager: latch i owns current-state var 2i and
// next-state var 2i+1 (interleaved for compact transition relations);
// primary input j owns var 2L+j. Variable *indices* are fixed; their level
// placement follows Limits.Order (topology-driven by default, with each
// cur/next pair kept adjacent).
type Analysis struct {
	M *bdd.Manager
	N *network.Network
	// CurVar / NextVar index by latch position.
	CurVar, NextVar []int
	// InVar indexes by PI position.
	InVar []int
	// NodeFn maps every node in the cone of influence of a latch data input
	// or a primary output to its BDD over current-state and input vars.
	NodeFn map[*network.Node]bdd.Ref
	// Init and Reachable are state sets over current-state vars.
	Init      bdd.Ref
	Reachable bdd.Ref
	// Depth is the number of image steps until the fixpoint.
	Depth int
	// Stats snapshots the BDD manager accounting (node counts, unique
	// table, compute-cache hits/misses) at the fixpoint.
	Stats bdd.Stats
	// FrontierPeakNodes is the largest frontier BDD (in internal nodes)
	// seen during the fixpoint iteration.
	FrontierPeakNodes int
}

// Limits bounds and configures the analysis; zero values mean "no limit"
// for the bounds and "package default" for the strategy knobs, so the
// struct stays comparable and a zero Limits is a usable configuration.
type Limits struct {
	MaxLatches  int // refuse circuits with more registers than this
	MaxBDDNodes int // abort when the manager exceeds this many nodes

	// Image selects monolithic vs clustered-partitioned image computation
	// (zero value: partitioned).
	Image ImageMode
	// Order selects the static variable order (zero value: topology-driven).
	Order VarOrder
	// ClusterNodes is the node-size threshold for greedy clustering of the
	// partitioned relation (<= 0: DefaultClusterNodes). Ignored under
	// ImageMonolithic.
	ClusterNodes int
	// Reorder enables dynamic variable reordering: a sifting pass runs when
	// the manager first exceeds SiftNodes, and again on each doubling.
	Reorder bool
	// SiftNodes is the manager size triggering the first sifting pass
	// (<= 0: DefaultSiftNodes). Meaningful only with Reorder.
	SiftNodes int
}

// DefaultLimits keeps implicit enumeration within laptop-friendly bounds,
// mirroring the scalability wall the paper describes for this approach.
// Partitioned image computation raised the latch ceiling from the 24 the
// monolithic relation could afford to 32 (DESIGN.md §9).
var DefaultLimits = Limits{MaxLatches: 32, MaxBDDNodes: 2_000_000}

// ErrTooLarge is returned when the circuit exceeds the configured limits.
// Analyze wraps it with the observed node/iteration numbers; match with
// errors.Is, not ==.
var ErrTooLarge = fmt.Errorf("reach: circuit exceeds implicit-enumeration limits")

// Analyze computes the reachable state set from the declared initial state.
func Analyze(n *network.Network, lim Limits) (*Analysis, error) {
	return AnalyzeT(n, lim, nil)
}

// AnalyzeT is Analyze with tracing: one "reach.analyze" span carrying the
// iteration count, frontier peak, and BDD table counters, plus one
// "reach_iter" event per image step on the JSON sink.
func AnalyzeT(n *network.Network, lim Limits, tr *obs.Tracer) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), n, lim, tr)
}

// AnalyzeCtx is AnalyzeT with cancellation: the node-function construction
// and every image step of the fixpoint iteration check ctx, returning a
// typed guard budget error (errors.Is(err, guard.ErrBudget)) wrapping the
// cause when the deadline passes or the context is cancelled.
func AnalyzeCtx(ctx context.Context, n *network.Network, lim Limits, tr *obs.Tracer) (a *Analysis, err error) {
	L := len(n.Latches)
	if lim.MaxLatches > 0 && L > lim.MaxLatches {
		return nil, fmt.Errorf("reach: %d latches exceed the %d-latch limit (enable -sweep for SAT-based induction instead of exact reachability): %w",
			L, lim.MaxLatches, ErrTooLarge)
	}
	nv := 2*L + len(n.PIs)
	m := bdd.New(nv)
	m.MaxNodes = lim.MaxBDDNodes
	sp := tr.Begin("reach.analyze")
	defer sp.End()
	depth := 0
	defer func() {
		r := recover()
		st := m.Stats()
		sp.Add("reach_iterations", int64(depth))
		sp.Add("bdd_nodes", int64(st.PeakNodes))
		sp.Add("bdd_cache_hits", st.CacheHits)
		sp.Add("bdd_cache_misses", st.CacheMisses)
		sp.Add("bdd_sift_swaps", st.SiftSwaps)
		if r != nil {
			if r == bdd.ErrNodeLimit {
				a, err = nil, fmt.Errorf("reach: state space too large: %d BDD nodes for %d latches after %d image steps (limit %d): %w",
					st.Nodes, L, depth, lim.MaxBDDNodes, ErrTooLarge)
				return
			}
			panic(r)
		}
	}()

	a = &Analysis{
		M: m, N: n,
		CurVar:  make([]int, L),
		NextVar: make([]int, L),
		InVar:   make([]int, len(n.PIs)),
		NodeFn:  make(map[*network.Node]bdd.Ref),
	}
	for i := 0; i < L; i++ {
		a.CurVar[i] = 2 * i
		a.NextVar[i] = 2*i + 1
	}
	for j := range n.PIs {
		a.InVar[j] = 2*L + j
	}
	if lim.Order != OrderPositional {
		m.SetOrder(topoVarOrder(n, a.CurVar, a.NextVar, a.InVar, nv))
	}
	if err := a.buildNodeFns(ctx); err != nil {
		return nil, err
	}

	// Initial state: conjunction of defined latch values (X unconstrained).
	init := bdd.True
	for i, l := range n.Latches {
		switch l.Init {
		case network.V0:
			init = m.And(init, m.NVar(a.CurVar[i]))
		case network.V1:
			init = m.And(init, m.Var(a.CurVar[i]))
		}
	}
	a.Init = init

	// Per-latch relations next_i ↔ δ_i, clustered with an early-
	// quantification schedule (monolithic on request).
	parts := make([]bdd.Ref, L)
	for i, l := range n.Latches {
		parts[i] = m.Xnor(m.Var(a.NextVar[i]), a.NodeFn[l.Driver])
	}
	quant := make([]bool, nv)
	for _, v := range a.CurVar {
		quant[v] = true
	}
	for _, v := range a.InVar {
		quant[v] = true
	}
	// Rename next -> current.
	perm := make([]int, nv)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < L; i++ {
		perm[a.NextVar[i]] = a.CurVar[i]
		perm[a.CurVar[i]] = a.NextVar[i]
	}
	threshold := 0 // monolithic
	if lim.Image != ImageMonolithic {
		threshold = lim.ClusterNodes
		if threshold <= 0 {
			threshold = DefaultClusterNodes
		}
	}
	trel := BuildTransRel(m, parts, quant, perm, threshold)
	sp.Add("reach_clusters", int64(trel.NumClusters()))
	sp.Add("reach_quant_schedule_len", int64(trel.ScheduleLen()))
	sp.Max("reach_cluster_peak_nodes", int64(trel.PeakClusterNodes()))

	nextSift := 0
	if lim.Reorder {
		nextSift = lim.SiftNodes
		if nextSift <= 0 {
			nextSift = DefaultSiftNodes
		}
	}
	reached := init
	frontier := init
	for ; ; depth++ {
		if cerr := guard.Check(ctx, "reach.analyze"); cerr != nil {
			return nil, fmt.Errorf("reach: fixpoint interrupted after %d image steps: %w", depth, cerr)
		}
		fn := m.NodeCount(frontier)
		if fn > a.FrontierPeakNodes {
			a.FrontierPeakNodes = fn
		}
		if tr != nil {
			tr.Event("reach_iter", map[string]any{
				"depth": depth, "frontier_nodes": fn, "bdd_nodes": m.Size(),
			})
		}
		if nextSift > 0 && m.Size() >= nextSift {
			roots := append(trel.Roots(), reached, frontier, a.Init)
			res := m.Sift(roots, 0)
			nextSift = 2 * m.Size()
			if tr != nil {
				tr.Event("reach_sift", map[string]any{
					"depth": depth, "swaps": res.Swaps,
					"live_before": res.BeforeNodes, "live_after": res.AfterNodes,
				})
			}
		}
		img := trel.Image(m, frontier)
		newStates := m.And(img, m.Not(reached))
		if newStates == bdd.False {
			a.Depth = depth
			break
		}
		reached = m.Or(reached, newStates)
		frontier = newStates
	}
	a.Reachable = reached
	a.Stats = m.Stats()
	sp.Max("reach_frontier_peak_nodes", int64(a.FrontierPeakNodes))
	return a, nil
}

// buildNodeFns computes the BDD over current-state and input vars for every
// node in the cone of influence of a latch data input or a primary output;
// logic feeding neither (dead cones left behind by other passes) never
// reaches the BDD manager.
func (a *Analysis) buildNodeFns(ctx context.Context) error {
	m := a.M
	for j, p := range a.N.PIs {
		a.NodeFn[p] = m.Var(a.InVar[j])
	}
	for i, l := range a.N.Latches {
		a.NodeFn[l.Output] = m.Var(a.CurVar[i])
	}
	order, err := a.N.TopoOrder()
	if err != nil {
		return err
	}
	need := coneOfInfluence(a.N)
	for _, v := range order {
		if !need[v] {
			continue
		}
		if cerr := guard.Check(ctx, "reach.analyze"); cerr != nil {
			return fmt.Errorf("reach: node-function construction interrupted: %w", cerr)
		}
		f := bdd.False
		for _, c := range v.Func.Cubes {
			cube := bdd.True
			for pin := 0; pin < c.N; pin++ {
				fiRef := a.NodeFn[v.Fanins[pin]]
				switch c.Lit(pin) {
				case logic.LitPos:
					cube = m.And(cube, fiRef)
				case logic.LitNeg:
					cube = m.And(cube, m.Not(fiRef))
				case logic.LitNone:
					cube = bdd.False
				}
				if cube == bdd.False {
					break // a void literal (or contradiction) kills the cube
				}
			}
			f = m.Or(f, cube)
		}
		a.NodeFn[v] = f
	}
	return nil
}

// coneOfInfluence marks the transitive fanin of every latch data input and
// primary output.
func coneOfInfluence(n *network.Network) map[*network.Node]bool {
	need := make(map[*network.Node]bool)
	var mark func(*network.Node)
	mark = func(v *network.Node) {
		if need[v] {
			return
		}
		need[v] = true
		for _, fi := range v.Fanins {
			mark(fi)
		}
	}
	for _, l := range n.Latches {
		mark(l.Driver)
	}
	for _, po := range n.POs {
		mark(po.Driver)
	}
	return need
}

// NumReachable returns the number of reachable states.
func (a *Analysis) NumReachable() float64 {
	// SatCount counts over all manager variables; divide out next-state
	// and input vars, which Reachable does not depend on.
	total := a.M.SatCount(a.Reachable)
	free := len(a.NextVar) + len(a.InVar)
	for i := 0; i < free; i++ {
		total /= 2
	}
	return total
}

// UnreachableDC projects the reachable set onto the given latch positions
// and returns the complement as a SOP cover over len(latchIdx) variables:
// cover variable k corresponds to latchIdx[k]. A partial state assignment
// is a don't care only if every completion of it is unreachable, so the
// projection quantifies the other latches existentially before
// complementing.
func (a *Analysis) UnreachableDC(latchIdx []int) *logic.Cover {
	keep := make(map[int]bool, len(latchIdx))
	for _, i := range latchIdx {
		keep[i] = true
	}
	quant := make([]bool, a.M.NumVars())
	for i, v := range a.CurVar {
		if !keep[i] {
			quant[v] = true
		}
	}
	proj := a.M.Exists(a.Reachable, quant)
	unreach := a.M.Not(proj)
	// Re-express over a compact variable space.
	full := a.M.ToCover(unreach, a.M.NumVars())
	varMap := make([]int, a.M.NumVars())
	for i := range varMap {
		varMap[i] = -1
	}
	for k, i := range latchIdx {
		varMap[a.CurVar[i]] = k
	}
	out := logic.NewCover(len(latchIdx))
	for _, c := range full.Cubes {
		d := logic.NewCube(len(latchIdx))
		ok := true
		for v := 0; v < c.N; v++ {
			if l := c.Lit(v); l != logic.LitBoth {
				if varMap[v] < 0 {
					ok = false
					break
				}
				d.SetLit(varMap[v], l)
			}
		}
		if ok {
			out.Add(d)
		}
	}
	return out
}
