// Package reach performs BDD-based implicit state enumeration of a
// sequential network (Coudert–Madre / Touati-style reachability). The
// baseline "retiming + combinational optimization" flow uses it to extract
// unreachable-state external don't cares — the computation the paper's own
// technique deliberately avoids (Section II: "implicit state enumeration
// methods using BDDs are computationally intensive...  In contrast, we do
// not have to perform any computation to evaluate these retiming induced
// don't care conditions").
package reach

import (
	"context"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/guard"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
)

// Analysis is the result of reachability on one network.
//
// Variable layout in the manager: latch i owns current-state var 2i and
// next-state var 2i+1 (interleaved for compact transition relations);
// primary input j owns var 2L+j.
type Analysis struct {
	M *bdd.Manager
	N *network.Network
	// CurVar / NextVar index by latch position.
	CurVar, NextVar []int
	// InVar indexes by PI position.
	InVar []int
	// NodeFn maps every node to its BDD over current-state and input vars.
	NodeFn map[*network.Node]bdd.Ref
	// Init and Reachable are state sets over current-state vars.
	Init      bdd.Ref
	Reachable bdd.Ref
	// Depth is the number of image steps until the fixpoint.
	Depth int
	// Stats snapshots the BDD manager accounting (node counts, unique
	// table, compute-cache hits/misses) at the fixpoint.
	Stats bdd.Stats
	// FrontierPeakNodes is the largest frontier BDD (in internal nodes)
	// seen during the fixpoint iteration.
	FrontierPeakNodes int
}

// Limits bounds the analysis; zero values mean "no limit".
type Limits struct {
	MaxLatches  int // refuse circuits with more registers than this
	MaxBDDNodes int // abort when the manager exceeds this many nodes
}

// DefaultLimits keeps implicit enumeration within laptop-friendly bounds,
// mirroring the scalability wall the paper describes for this approach.
var DefaultLimits = Limits{MaxLatches: 24, MaxBDDNodes: 2_000_000}

// ErrTooLarge is returned when the circuit exceeds the configured limits.
// Analyze wraps it with the observed node/iteration numbers; match with
// errors.Is, not ==.
var ErrTooLarge = fmt.Errorf("reach: circuit exceeds implicit-enumeration limits")

// Analyze computes the reachable state set from the declared initial state.
func Analyze(n *network.Network, lim Limits) (*Analysis, error) {
	return AnalyzeT(n, lim, nil)
}

// AnalyzeT is Analyze with tracing: one "reach.analyze" span carrying the
// iteration count, frontier peak, and BDD table counters, plus one
// "reach_iter" event per image step on the JSON sink.
func AnalyzeT(n *network.Network, lim Limits, tr *obs.Tracer) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), n, lim, tr)
}

// AnalyzeCtx is AnalyzeT with cancellation: the node-function construction
// and every image step of the fixpoint iteration check ctx, returning a
// typed guard budget error (errors.Is(err, guard.ErrBudget)) wrapping the
// cause when the deadline passes or the context is cancelled.
func AnalyzeCtx(ctx context.Context, n *network.Network, lim Limits, tr *obs.Tracer) (a *Analysis, err error) {
	L := len(n.Latches)
	if lim.MaxLatches > 0 && L > lim.MaxLatches {
		return nil, fmt.Errorf("reach: %d latches exceed the %d-latch limit: %w",
			L, lim.MaxLatches, ErrTooLarge)
	}
	nv := 2*L + len(n.PIs)
	m := bdd.New(nv)
	m.MaxNodes = lim.MaxBDDNodes
	sp := tr.Begin("reach.analyze")
	defer sp.End()
	depth := 0
	defer func() {
		r := recover()
		st := m.Stats()
		sp.Add("reach_iterations", int64(depth))
		sp.Add("bdd_nodes", int64(st.PeakNodes))
		sp.Add("bdd_cache_hits", st.CacheHits)
		sp.Add("bdd_cache_misses", st.CacheMisses)
		if r != nil {
			if r == bdd.ErrNodeLimit {
				a, err = nil, fmt.Errorf("reach: state space too large: %d BDD nodes for %d latches after %d image steps (limit %d): %w",
					st.Nodes, L, depth, lim.MaxBDDNodes, ErrTooLarge)
				return
			}
			panic(r)
		}
	}()

	a = &Analysis{
		M: m, N: n,
		CurVar:  make([]int, L),
		NextVar: make([]int, L),
		InVar:   make([]int, len(n.PIs)),
		NodeFn:  make(map[*network.Node]bdd.Ref),
	}
	for i := 0; i < L; i++ {
		a.CurVar[i] = 2 * i
		a.NextVar[i] = 2*i + 1
	}
	for j := range n.PIs {
		a.InVar[j] = 2*L + j
	}
	if err := a.buildNodeFns(ctx); err != nil {
		return nil, err
	}

	// Initial state: conjunction of defined latch values (X unconstrained).
	init := bdd.True
	for i, l := range n.Latches {
		switch l.Init {
		case network.V0:
			init = m.And(init, m.NVar(a.CurVar[i]))
		case network.V1:
			init = m.And(init, m.Var(a.CurVar[i]))
		}
	}
	a.Init = init

	// Transition relation: ∏ (next_i ↔ δ_i).
	rel := bdd.True
	for i, l := range n.Latches {
		delta := a.NodeFn[l.Driver]
		rel = m.And(rel, m.Xnor(m.Var(a.NextVar[i]), delta))
	}

	// Quantification schedule: current vars and inputs.
	quant := make([]bool, nv)
	for _, v := range a.CurVar {
		quant[v] = true
	}
	for _, v := range a.InVar {
		quant[v] = true
	}
	// Rename next -> current.
	perm := make([]int, nv)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < L; i++ {
		perm[a.NextVar[i]] = a.CurVar[i]
		perm[a.CurVar[i]] = a.NextVar[i]
	}

	reached := init
	frontier := init
	for ; ; depth++ {
		if cerr := guard.Check(ctx, "reach.analyze"); cerr != nil {
			return nil, fmt.Errorf("reach: fixpoint interrupted after %d image steps: %w", depth, cerr)
		}
		if fn := m.NodeCount(frontier); fn > a.FrontierPeakNodes {
			a.FrontierPeakNodes = fn
		}
		if tr != nil {
			tr.Event("reach_iter", map[string]any{
				"depth": depth, "frontier_nodes": m.NodeCount(frontier), "bdd_nodes": m.Size(),
			})
		}
		img := m.AndExists(frontier, rel, quant)
		img = m.Permute(img, perm)
		newStates := m.And(img, m.Not(reached))
		if newStates == bdd.False {
			a.Depth = depth
			break
		}
		reached = m.Or(reached, newStates)
		frontier = newStates
	}
	a.Reachable = reached
	a.Stats = m.Stats()
	sp.Max("reach_frontier_peak_nodes", int64(a.FrontierPeakNodes))
	return a, nil
}

// buildNodeFns computes every node's BDD over current-state and input vars.
func (a *Analysis) buildNodeFns(ctx context.Context) error {
	m := a.M
	for j, p := range a.N.PIs {
		a.NodeFn[p] = m.Var(a.InVar[j])
	}
	for i, l := range a.N.Latches {
		a.NodeFn[l.Output] = m.Var(a.CurVar[i])
	}
	order, err := a.N.TopoOrder()
	if err != nil {
		return err
	}
	for _, v := range order {
		if cerr := guard.Check(ctx, "reach.analyze"); cerr != nil {
			return fmt.Errorf("reach: node-function construction interrupted: %w", cerr)
		}
		f := bdd.False
		for _, c := range v.Func.Cubes {
			cube := bdd.True
			for pin := 0; pin < c.N; pin++ {
				fiRef := a.NodeFn[v.Fanins[pin]]
				switch c.Lit(pin) {
				case logic.LitPos:
					cube = m.And(cube, fiRef)
				case logic.LitNeg:
					cube = m.And(cube, m.Not(fiRef))
				case logic.LitNone:
					cube = bdd.False
				}
			}
			f = m.Or(f, cube)
		}
		a.NodeFn[v] = f
	}
	return nil
}

// NumReachable returns the number of reachable states.
func (a *Analysis) NumReachable() float64 {
	// SatCount counts over all manager variables; divide out next-state
	// and input vars, which Reachable does not depend on.
	total := a.M.SatCount(a.Reachable)
	free := len(a.NextVar) + len(a.InVar)
	for i := 0; i < free; i++ {
		total /= 2
	}
	return total
}

// UnreachableDC projects the reachable set onto the given latch positions
// and returns the complement as a SOP cover over len(latchIdx) variables:
// cover variable k corresponds to latchIdx[k]. A partial state assignment
// is a don't care only if every completion of it is unreachable, so the
// projection quantifies the other latches existentially before
// complementing.
func (a *Analysis) UnreachableDC(latchIdx []int) *logic.Cover {
	keep := make(map[int]bool, len(latchIdx))
	for _, i := range latchIdx {
		keep[i] = true
	}
	quant := make([]bool, a.M.NumVars())
	for i, v := range a.CurVar {
		if !keep[i] {
			quant[v] = true
		}
	}
	proj := a.M.Exists(a.Reachable, quant)
	unreach := a.M.Not(proj)
	// Re-express over a compact variable space.
	full := a.M.ToCover(unreach, a.M.NumVars())
	varMap := make([]int, a.M.NumVars())
	for i := range varMap {
		varMap[i] = -1
	}
	for k, i := range latchIdx {
		varMap[a.CurVar[i]] = k
	}
	out := logic.NewCover(len(latchIdx))
	for _, c := range full.Cubes {
		d := logic.NewCube(len(latchIdx))
		ok := true
		for v := 0; v < c.N; v++ {
			if l := c.Lit(v); l != logic.LitBoth {
				if varMap[v] < 0 {
					ok = false
					break
				}
				d.SetLit(varMap[v], l)
			}
		}
		if ok {
			out.Add(d)
		}
	}
	return out
}
