package reach

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
)

// counter3 is a free-running 3-bit counter: all 8 states reachable.
const counter3 = `
.model cnt3
.inputs en
.outputs y
.latch d0 s0 0
.latch d1 s1 0
.latch d2 s2 0
.names s0 en d0
10 1
01 1
.names s0 en c0
11 1
.names s1 c0 d1
10 1
01 1
.names s1 c0 c1
11 1
.names s2 c1 d2
10 1
01 1
.names s2 s1 s0 y
111 1
.end
`

func TestCounterFullyReachable(t *testing.T) {
	n, err := blif.ParseString(counter3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(n, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NumReachable(); got != 8 {
		t.Fatalf("reachable = %v, want 8", got)
	}
	if a.Depth < 7 {
		t.Fatalf("depth = %d, expected at least 7 image steps", a.Depth)
	}
}

// oneHotRing: a 3-stage one-hot ring counter: only 3 of 8 states reachable.
func oneHotRing(t *testing.T) *network.Network {
	t.Helper()
	n := network.New("ring")
	_ = n.AddPI("tick")
	buf := logic.MustParseCover(1, "1")
	l0 := n.AddLatch("r0", nil, network.V1)
	l1 := n.AddLatch("r1", nil, network.V0)
	l2 := n.AddLatch("r2", nil, network.V0)
	b0 := n.AddLogic("b0", []*network.Node{l2.Output}, buf.Clone())
	b1 := n.AddLogic("b1", []*network.Node{l0.Output}, buf.Clone())
	b2 := n.AddLogic("b2", []*network.Node{l1.Output}, buf.Clone())
	l0.Driver = b0
	l1.Driver = b1
	l2.Driver = b2
	n.AddPO("y", l2.Output)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRingReachability(t *testing.T) {
	n := oneHotRing(t)
	a, err := Analyze(n, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NumReachable(); got != 3 {
		t.Fatalf("reachable = %v, want 3", got)
	}
}

func TestUnreachableDCRing(t *testing.T) {
	n := oneHotRing(t)
	a, err := Analyze(n, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	// Projection onto all three latches: unreachable set must contain
	// 000 and 111 and exclude the three one-hot codes.
	dc := a.UnreachableDC([]int{0, 1, 2})
	check := func(bits []bool, wantDC bool) {
		if dc.Eval(bits) != wantDC {
			t.Fatalf("state %v: dc=%v want %v", bits, dc.Eval(bits), wantDC)
		}
	}
	check([]bool{false, false, false}, true)
	check([]bool{true, true, true}, true)
	check([]bool{true, false, false}, false)
	check([]bool{false, true, false}, false)
	check([]bool{false, false, true}, false)
	check([]bool{true, true, false}, true)

	// Projection onto latches {0,1}: every partial assignment has some
	// reachable completion except (1,1): states 110/111 are unreachable.
	dc2 := a.UnreachableDC([]int{0, 1})
	if !dc2.Eval([]bool{true, true}) {
		t.Fatal("(r0,r1)=(1,1) must be a projected don't care")
	}
	if dc2.Eval([]bool{false, false}) {
		t.Fatal("(0,0) completes to reachable 001; not a don't care")
	}
}

func TestInitXUnconstrained(t *testing.T) {
	// A latch with X init contributes both values to the initial set.
	n := network.New("x")
	_ = n.AddPI("a")
	l := n.AddLatch("s", nil, network.VX)
	buf := logic.MustParseCover(1, "1")
	b := n.AddLogic("b", []*network.Node{l.Output}, buf.Clone())
	l.Driver = b
	n.AddPO("y", l.Output)
	a, err := Analyze(n, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NumReachable(); got != 2 {
		t.Fatalf("reachable = %v, want 2", got)
	}
}

func TestLimits(t *testing.T) {
	n, _ := blif.ParseString(counter3)
	if _, err := Analyze(n, Limits{MaxLatches: 2}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("latch limit not enforced: %v", err)
	}
	if _, err := Analyze(n, Limits{MaxBDDNodes: 8}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("node limit not enforced: %v", err)
	}
	// The wrapped errors must carry the observed numbers, not a bare string.
	_, err := Analyze(n, Limits{MaxLatches: 2})
	if !strings.Contains(err.Error(), "3 latches") {
		t.Fatalf("latch-limit error lacks the latch count: %v", err)
	}
	// Oversized circuits are not a dead end any more: the error must point
	// the user at the SAT-based sweeping fallback.
	if !strings.Contains(err.Error(), "-sweep") {
		t.Fatalf("latch-limit error lacks the -sweep hint: %v", err)
	}
	_, err = Analyze(n, Limits{MaxBDDNodes: 8})
	if !strings.Contains(err.Error(), "BDD nodes") || !strings.Contains(err.Error(), "image steps") {
		t.Fatalf("node-limit error lacks node/iteration numbers: %v", err)
	}
}

func TestAnalysisStatsAndTrace(t *testing.T) {
	n, _ := blif.ParseString(counter3)
	var buf bytes.Buffer
	tr := obs.NewJSON(&buf)
	a, err := AnalyzeT(n, DefaultLimits, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Nodes == 0 || a.Stats.UniqueSize == 0 || a.Stats.CacheMisses == 0 {
		t.Fatalf("BDD stats not populated: %+v", a.Stats)
	}
	if a.FrontierPeakNodes <= 0 {
		t.Fatal("frontier peak not recorded")
	}
	sp := tr.Root().Find("reach.analyze")
	if sp == nil {
		t.Fatal("reach.analyze span missing")
	}
	if sp.Counter("reach_iterations") != int64(a.Depth) {
		t.Fatalf("span iterations %d != depth %d", sp.Counter("reach_iterations"), a.Depth)
	}
	if sp.Counter("bdd_nodes") != int64(a.Stats.PeakNodes) {
		t.Fatal("span bdd_nodes does not match manager stats")
	}
	evs, skipped, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("tracer emitted %d malformed JSONL lines", skipped)
	}
	iters := 0
	for _, e := range evs {
		if e.Ev == "event" && e.Name == "reach_iter" {
			iters++
		}
	}
	// One event per image step plus the fixpoint check.
	if iters != a.Depth+1 {
		t.Fatalf("got %d reach_iter events, want %d", iters, a.Depth+1)
	}
}
