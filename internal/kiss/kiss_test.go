package kiss

import (
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
)

// A small traffic-light style Moore-ish machine used across tests.
const lightKiss = `
.i 1
.o 2
.s 3
.r GREEN
0 GREEN GREEN 10
1 GREEN YELLOW 10
- YELLOW RED 01
0 RED RED 00
1 RED GREEN 00
.e
`

func TestParse(t *testing.T) {
	f, err := ParseString(lightKiss, "light")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumIn != 1 || f.NumOut != 2 {
		t.Fatalf("io counts: %d %d", f.NumIn, f.NumOut)
	}
	if len(f.States) != 3 || f.States[0] != "GREEN" {
		t.Fatalf("states: %v (reset must be first)", f.States)
	}
	if len(f.Transitions) != 5 {
		t.Fatalf("%d transitions", len(f.Transitions))
	}
}

func TestNumStateBits(t *testing.T) {
	f, _ := ParseString(lightKiss, "light")
	if f.NumStateBits(Binary) != 2 {
		t.Fatalf("binary bits = %d", f.NumStateBits(Binary))
	}
	if f.NumStateBits(OneHot) != 3 {
		t.Fatalf("onehot bits = %d", f.NumStateBits(OneHot))
	}
}

// walk drives the synthesized machine through a scripted input sequence and
// checks outputs against the symbolic FSM semantics.
func walk(t *testing.T, n *network.Network, f *FSM, inputs []bool) {
	t.Helper()
	s, err := sim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	state := f.Reset
	for cyc, in := range inputs {
		// Find the matching transition symbolically.
		var tr *Transition
		for i := range f.Transitions {
			c := f.Transitions[i]
			if c.From != state {
				continue
			}
			ch := c.In[0]
			if ch == '-' || (ch == '1') == in {
				tr = &f.Transitions[i]
				break
			}
		}
		if tr == nil {
			t.Fatalf("cycle %d: no transition from %s", cyc, state)
		}
		got := s.StepBits([]bool{in})
		for o := 0; o < f.NumOut; o++ {
			switch tr.Out[o] {
			case '0':
				if got[o] {
					t.Fatalf("cycle %d state %s: out%d=1 want 0", cyc, state, o)
				}
			case '1':
				if !got[o] {
					t.Fatalf("cycle %d state %s: out%d=0 want 1", cyc, state, o)
				}
			}
		}
		state = tr.To
	}
}

func TestSynthesizeBinaryMatchesSemantics(t *testing.T) {
	f, _ := ParseString(lightKiss, "light")
	n, err := f.Synthesize(Binary)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Latches) != 2 || len(n.PIs) != 1 || len(n.POs) != 2 {
		t.Fatalf("shape: %v", n.Stat())
	}
	seq := []bool{false, true, false, true, true, false, false, true, true, true}
	walk(t, n, f, seq)
}

func TestSynthesizeOneHotMatchesSemantics(t *testing.T) {
	f, _ := ParseString(lightKiss, "light")
	n, err := f.Synthesize(OneHot)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Latches) != 3 {
		t.Fatalf("one-hot latches = %d", len(n.Latches))
	}
	seq := []bool{true, true, false, true, false, false, true, true}
	walk(t, n, f, seq)
}

func TestEncodingsEquivalent(t *testing.T) {
	f, _ := ParseString(lightKiss, "light")
	nb, err := f.Synthesize(Binary)
	if err != nil {
		t.Fatal(err)
	}
	nh, err := f.Synthesize(OneHot)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RandomEquivalent(nb, nh, 0, 400, 11); err != nil {
		t.Fatalf("binary vs one-hot: %v", err)
	}
}

func TestStarFromState(t *testing.T) {
	src := `
.i 1
.o 1
.r A
1 * A 1
0 A B 0
0 B B 0
.e
`
	f, err := ParseString(src, "star")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Synthesize(Binary)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(n)
	// input 1 from anywhere returns to A emitting 1.
	s.StepBits([]bool{false}) // A->B out 0
	out := s.StepBits([]bool{true})
	if !out[0] {
		t.Fatal("star transition not applied")
	}
}

func TestResetStateGetsZeroCode(t *testing.T) {
	src := `
.i 1
.o 1
.r S1
- S0 S1 0
- S1 S0 1
.e
`
	f, err := ParseString(src, "r")
	if err != nil {
		t.Fatal(err)
	}
	if f.States[0] != "S1" {
		t.Fatalf("reset state not first: %v", f.States)
	}
	n, err := f.Synthesize(Binary)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range n.Latches {
		if l.Init != network.V0 {
			t.Fatal("binary init must be all-zero (reset = code 0)")
		}
	}
	// First output observed must follow S1's transition (out 1).
	s, _ := sim.New(n)
	if !s.StepBits([]bool{false})[0] {
		t.Fatal("machine did not start in reset state S1")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		".i 2\n.o 1\n1 A B 1\n.e", // input width mismatch
		".i 1\n.o 2\n1 A B 1\n.e", // output width mismatch
		".i 1\n.o 1\n1 A B\n.e",   // missing field
		".i 1\n.o 1\n.e",          // no states
	}
	for i, src := range bad {
		if _, err := ParseString(src, "bad"); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
}
