// Package kiss parses KISS2 finite-state-machine descriptions (the MCNC FSM
// benchmark format) and synthesizes them into gate-level sequential networks
// via binary or one-hot state encoding. The resulting two-level next-state
// and output covers are minimized with the transition don't cares before
// being handed to the multi-level optimizer.
package kiss

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/network"
)

// Transition is one KISS2 row: on inputs matching In (a cube string over the
// FSM inputs), from state From, go to state To and emit Out (a string over
// {0,1,-} per output).
type Transition struct {
	In   string
	From string
	To   string
	Out  string
}

// FSM is a parsed KISS2 machine.
type FSM struct {
	Name        string
	NumIn       int
	NumOut      int
	States      []string // in order of first appearance; States[0] is reset
	Reset       string
	Transitions []Transition
}

// Parse reads a KISS2 description.
func Parse(r io.Reader, name string) (*FSM, error) {
	f := &FSM{Name: name}
	seen := map[string]bool{}
	addState := func(s string) {
		if s == "*" || s == "-" { // "any state" rows are expanded later
			return
		}
		if !seen[s] {
			seen[s] = true
			f.States = append(f.States, s)
		}
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".i":
			fmt.Sscanf(fields[1], "%d", &f.NumIn)
		case ".o":
			fmt.Sscanf(fields[1], "%d", &f.NumOut)
		case ".p", ".s":
			// row/state counts are advisory
		case ".r":
			if len(fields) > 1 {
				f.Reset = fields[1]
				addState(f.Reset)
			}
		case ".e", ".end":
			// done
		default:
			if strings.HasPrefix(fields[0], ".") {
				continue // ignore unknown directives
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("kiss:%d: malformed row %q", lineNo, line)
			}
			tr := Transition{In: fields[0], From: fields[1], To: fields[2], Out: fields[3]}
			if len(tr.In) != f.NumIn {
				return nil, fmt.Errorf("kiss:%d: input cube width %d, expected %d", lineNo, len(tr.In), f.NumIn)
			}
			if len(tr.Out) != f.NumOut {
				return nil, fmt.Errorf("kiss:%d: output width %d, expected %d", lineNo, len(tr.Out), f.NumOut)
			}
			addState(tr.From)
			addState(tr.To)
			f.Transitions = append(f.Transitions, tr)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f.Reset == "" && len(f.States) > 0 {
		f.Reset = f.States[0]
	}
	// Put the reset state first so it gets the all-zero code.
	for i, s := range f.States {
		if s == f.Reset && i != 0 {
			f.States[0], f.States[i] = f.States[i], f.States[0]
			break
		}
	}
	if len(f.States) == 0 {
		return nil, fmt.Errorf("kiss: machine %s has no states", name)
	}
	return f, nil
}

// ParseString parses an embedded KISS2 description.
func ParseString(s, name string) (*FSM, error) {
	return Parse(strings.NewReader(s), name)
}

// Encoding selects the state-assignment style.
type Encoding int

const (
	// Binary uses ceil(log2 |S|) registers with natural codes in state order.
	Binary Encoding = iota
	// OneHot uses one register per state; the reset state's register
	// initializes to 1.
	OneHot
)

// NumStateBits returns the register count for the encoding.
func (f *FSM) NumStateBits(enc Encoding) int {
	if enc == OneHot {
		return len(f.States)
	}
	b := 0
	for (1 << uint(b)) < len(f.States) {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// Synthesize builds a gate-level network implementing the FSM. Inputs are
// named in0.. and outputs out0..; state registers are st0.. . Next-state and
// output functions are two-level covers minimized against the unspecified-
// transition don't-care set.
func (f *FSM) Synthesize(enc Encoding) (*network.Network, error) {
	nb := f.NumStateBits(enc)
	n := network.New(f.Name)
	pis := make([]*network.Node, f.NumIn)
	for i := range pis {
		pis[i] = n.AddPI(fmt.Sprintf("in%d", i))
	}
	latches := make([]*network.Latch, nb)
	for i := range latches {
		init := network.V0
		if enc == OneHot && i == 0 {
			init = network.V1
		}
		latches[i] = n.AddLatch(fmt.Sprintf("st%d", i), nil, init)
	}
	// Variable space for the covers: inputs then state bits.
	nv := f.NumIn + nb
	stateIdx := make(map[string]int, len(f.States))
	for i, s := range f.States {
		stateIdx[s] = i
	}
	code := func(si int) []logic.Lit {
		lits := make([]logic.Lit, nb)
		for b := 0; b < nb; b++ {
			if enc == OneHot {
				if b == si {
					lits[b] = logic.LitPos
				} else {
					lits[b] = logic.LitNeg
				}
			} else {
				if si&(1<<uint(b)) != 0 {
					lits[b] = logic.LitPos
				} else {
					lits[b] = logic.LitNeg
				}
			}
		}
		return lits
	}
	transitionCube := func(tr Transition, fromIdx int) (logic.Cube, error) {
		c := logic.NewCube(nv)
		for i, ch := range tr.In {
			switch ch {
			case '0':
				c.SetLit(i, logic.LitNeg)
			case '1':
				c.SetLit(i, logic.LitPos)
			case '-':
			default:
				return logic.Cube{}, fmt.Errorf("kiss: bad input char %q", ch)
			}
		}
		for b, l := range code(fromIdx) {
			c.SetLit(f.NumIn+b, l)
		}
		return c, nil
	}

	nextOn := make([]*logic.Cover, nb)
	for b := range nextOn {
		nextOn[b] = logic.NewCover(nv)
	}
	outOn := make([]*logic.Cover, f.NumOut)
	outDC := make([]*logic.Cover, f.NumOut)
	for o := range outOn {
		outOn[o] = logic.NewCover(nv)
		outDC[o] = logic.NewCover(nv)
	}
	specified := logic.NewCover(nv)

	for _, tr := range f.Transitions {
		fromIdxs := []int{}
		if tr.From == "*" || tr.From == "-" {
			for i := range f.States {
				fromIdxs = append(fromIdxs, i)
			}
		} else {
			fromIdxs = append(fromIdxs, stateIdx[tr.From])
		}
		for _, fi := range fromIdxs {
			c, err := transitionCube(tr, fi)
			if err != nil {
				return nil, err
			}
			specified.Add(c.Clone())
			toIdx := stateIdx[tr.To]
			for b, l := range code(toIdx) {
				if l == logic.LitPos {
					nextOn[b].Add(c.Clone())
				}
			}
			for o, ch := range tr.Out {
				switch ch {
				case '1':
					outOn[o].Add(c.Clone())
				case '-':
					outDC[o].Add(c.Clone())
				}
			}
		}
	}
	// Unspecified (input, state) combinations — including unused state
	// codes in a binary encoding — are don't cares for everything.
	globalDC := specified.Complement()

	faninNodes := make([]*network.Node, 0, nv)
	faninNodes = append(faninNodes, pis...)
	for _, l := range latches {
		faninNodes = append(faninNodes, l.Output)
	}
	for b := 0; b < nb; b++ {
		fn := logic.Simplify(nextOn[b], globalDC)
		node := n.AddLogic(fmt.Sprintf("ns%d", b), faninNodes, fn)
		latches[b].Driver = node
	}
	for o := 0; o < f.NumOut; o++ {
		dc := logic.Or(globalDC, outDC[o])
		fn := logic.Simplify(outOn[o], dc)
		node := n.AddLogic(fmt.Sprintf("outf%d", o), faninNodes, fn)
		n.AddPO(fmt.Sprintf("out%d", o), node)
	}
	if err := n.Check(); err != nil {
		return nil, fmt.Errorf("kiss: synthesized network invalid: %w", err)
	}
	return n, nil
}
