package timing

import (
	"math"
	"testing"

	"repro/internal/logic"
	"repro/internal/network"
)

// chain builds a linear chain of k buffers from a PI to a PO.
func chain(t *testing.T, k int) *network.Network {
	t.Helper()
	n := network.New("chain")
	prev := n.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	for i := 0; i < k; i++ {
		prev = n.AddLogic("", []*network.Node{prev}, buf.Clone())
	}
	n.AddPO("y", prev)
	return n
}

func TestChainPeriod(t *testing.T) {
	n := chain(t, 5)
	p, err := Period(n, UnitDelay{})
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Fatalf("period = %v, want 5", p)
	}
}

func TestCriticalPathExtraction(t *testing.T) {
	// Diamond: a -> g1 -> g3, a -> g2a -> g2b -> g3. Longer branch via g2*.
	n := network.New("d")
	a := n.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	and := logic.MustParseCover(2, "11")
	g1 := n.AddLogic("g1", []*network.Node{a}, buf.Clone())
	g2a := n.AddLogic("g2a", []*network.Node{a}, buf.Clone())
	g2b := n.AddLogic("g2b", []*network.Node{g2a}, buf.Clone())
	g3 := n.AddLogic("g3", []*network.Node{g1, g2b}, and)
	n.AddPO("y", g3)
	res, err := Analyze(n, UnitDelay{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 3 {
		t.Fatalf("period = %v", res.Period)
	}
	src, path := res.CriticalPath()
	if src != a {
		t.Fatalf("source = %v", src)
	}
	if len(path) != 3 || path[0] != g2a || path[1] != g2b || path[2] != g3 {
		t.Fatalf("path = %v", path)
	}
}

func TestPeriodAcrossRegisters(t *testing.T) {
	// PI -> g (2 levels) -> latch -> h (3 levels) -> PO. Period is the max
	// combinational segment: 3.
	n := network.New("seq")
	a := n.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	g1 := n.AddLogic("g1", []*network.Node{a}, buf.Clone())
	g2 := n.AddLogic("g2", []*network.Node{g1}, buf.Clone())
	l := n.AddLatch("s", g2, network.V0)
	h1 := n.AddLogic("h1", []*network.Node{l.Output}, buf.Clone())
	h2 := n.AddLogic("h2", []*network.Node{h1}, buf.Clone())
	h3 := n.AddLogic("h3", []*network.Node{h2}, buf.Clone())
	n.AddPO("y", h3)
	p, err := Period(n, UnitDelay{})
	if err != nil {
		t.Fatal(err)
	}
	if p != 3 {
		t.Fatalf("period = %v, want 3", p)
	}
}

func TestLatchDriverIsSink(t *testing.T) {
	// The longest path ends at a register data input, not a PO.
	n := network.New("sink")
	a := n.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	g1 := n.AddLogic("g1", []*network.Node{a}, buf.Clone())
	g2 := n.AddLogic("g2", []*network.Node{g1}, buf.Clone())
	g3 := n.AddLogic("g3", []*network.Node{g2}, buf.Clone())
	n.AddLatch("s", g3, network.V0)
	n.AddPO("y", g1)
	res, err := Analyze(n, UnitDelay{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 3 || res.CritSink != g3 {
		t.Fatalf("period=%v sink=%v", res.Period, res.CritSink)
	}
}

func TestSlack(t *testing.T) {
	n := network.New("slack")
	a := n.AddPI("a")
	b := n.AddPI("b")
	buf := logic.MustParseCover(1, "1")
	and := logic.MustParseCover(2, "11")
	g1 := n.AddLogic("g1", []*network.Node{a}, buf.Clone())
	g2 := n.AddLogic("g2", []*network.Node{g1}, buf.Clone())
	gShort := n.AddLogic("gs", []*network.Node{b}, buf.Clone())
	g3 := n.AddLogic("g3", []*network.Node{g2, gShort}, and)
	n.AddPO("y", g3)
	res, err := Analyze(n, UnitDelay{})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Slack(g3); s != 0 {
		t.Fatalf("sink slack = %v", s)
	}
	if s := res.Slack(gShort); s != 1 {
		t.Fatalf("short-branch slack = %v, want 1", s)
	}
	if s := res.Slack(g1); s != 0 {
		t.Fatalf("critical node slack = %v", s)
	}
}

type fakeGate struct {
	name   string
	area   float64
	delays []float64
}

func (g fakeGate) GateName() string       { return g.name }
func (g fakeGate) GateArea() float64      { return g.area }
func (g fakeGate) PinDelay(i int) float64 { return g.delays[i] }

func TestMappedDelayUsesGateAnnotations(t *testing.T) {
	n := network.New("m")
	a := n.AddPI("a")
	b := n.AddPI("b")
	and := logic.MustParseCover(2, "11")
	g := n.AddLogic("g", []*network.Node{a, b}, and)
	g.Gate = fakeGate{"and2", 2, []float64{1.5, 2.5}}
	n.AddPO("y", g)
	p, err := Period(n, MappedDelay{N: n})
	if err != nil {
		t.Fatal(err)
	}
	if p != 2.5 {
		t.Fatalf("mapped period = %v, want 2.5", p)
	}
}

func TestMappedDelayLoadFactor(t *testing.T) {
	n := network.New("lf")
	a := n.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	g := n.AddLogic("g", []*network.Node{a}, buf.Clone())
	// Three consumers -> 2 extra fanouts.
	n.AddLogic("c1", []*network.Node{g}, buf.Clone())
	c2 := n.AddLogic("c2", []*network.Node{g}, buf.Clone())
	n.AddPO("y", c2)
	n.AddPO("z", g)
	res, err := Analyze(n, MappedDelay{N: n, LoadFactor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// g has fanouts: c1, c2, PO z => 3 consumers => +0.4.
	if got := res.Arrival[g]; math.Abs(got-1.4) > 1e-9 {
		t.Fatalf("arrival(g) = %v, want 1.4", got)
	}
}

func TestEmptyNetwork(t *testing.T) {
	n := network.New("empty")
	n.AddPI("a")
	p, err := Period(n, UnitDelay{})
	if err != nil || p != 0 {
		t.Fatalf("period=%v err=%v", p, err)
	}
}
