// Package timing performs static timing analysis of a sequential network
// under pluggable delay models (unit delay, or mapped gate delays with
// fanout load). The clock period of a circuit is the longest combinational
// delay between any source (PI, register output) and any sink (PO, register
// data input) — the quantity Table I of the paper reports as "Clk.".
package timing

import (
	"math"

	"repro/internal/network"
)

// DelayModel supplies the pin-to-output delay of each logic node.
type DelayModel interface {
	// PinDelay returns the delay from fanin pin `pin` of node v to v's
	// output.
	PinDelay(v *network.Node, pin int) float64
}

// UnitDelay charges one unit per logic level — the model used in the
// paper's worked example (Section III: "assume, for simplicity, the unit
// delay model").
type UnitDelay struct{}

// PinDelay implements DelayModel.
func (UnitDelay) PinDelay(v *network.Node, pin int) float64 { return 1 }

// MappedDelay uses bound-gate annotations when present (area-delay data
// from the technology library, with a per-fanout load penalty), and one
// unit otherwise.
type MappedDelay struct {
	N *network.Network
	// LoadFactor is the extra delay per fanout beyond the first.
	LoadFactor float64
}

// PinDelay implements DelayModel.
func (m MappedDelay) PinDelay(v *network.Node, pin int) float64 {
	d := 1.0
	if v.Gate != nil {
		d = v.Gate.PinDelay(pin)
	}
	if m.LoadFactor > 0 && m.N != nil {
		extra := m.N.NumFanouts(v) - 1
		if extra > 0 {
			d += m.LoadFactor * float64(extra)
		}
	}
	return d
}

// Result holds arrival/required times and the critical path.
type Result struct {
	Arrival  map[*network.Node]float64
	Required map[*network.Node]float64
	// Period is the maximum arrival time over all combinational sinks.
	Period float64
	// CritSink is the logic node driving the most critical sink.
	CritSink *network.Node
	// critPred records, for each node, the fanin pin realizing its arrival.
	critPred map[*network.Node]int
}

// Analyze runs STA. Sources have arrival 0; logic node arrival is the max
// over fanins of (fanin arrival + pin delay).
func Analyze(n *network.Network, m DelayModel) (*Result, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Arrival:  make(map[*network.Node]float64, len(order)),
		Required: make(map[*network.Node]float64, len(order)),
		critPred: make(map[*network.Node]int, len(order)),
	}
	for _, p := range n.PIs {
		res.Arrival[p] = 0
	}
	for _, l := range n.Latches {
		res.Arrival[l.Output] = 0
	}
	for _, v := range order {
		best, bestPin := 0.0, -1
		for i, fi := range v.Fanins {
			a := res.Arrival[fi] + m.PinDelay(v, i)
			if a > best || bestPin < 0 {
				best, bestPin = a, i
			}
		}
		if len(v.Fanins) == 0 {
			best = 0
		}
		res.Arrival[v] = best
		res.critPred[v] = bestPin
	}
	// Period = max arrival at sinks.
	sinkArr := func(v *network.Node) float64 { return res.Arrival[v] }
	for _, p := range n.POs {
		if a := sinkArr(p.Driver); a > res.Period {
			res.Period, res.CritSink = a, p.Driver
		}
	}
	for _, l := range n.Latches {
		if a := sinkArr(l.Driver); a > res.Period {
			res.Period, res.CritSink = a, l.Driver
		}
	}
	// Required times: sinks at Period, propagate backwards.
	for _, v := range order {
		res.Required[v] = math.Inf(1)
	}
	for _, p := range n.PIs {
		res.Required[p] = math.Inf(1)
	}
	for _, l := range n.Latches {
		res.Required[l.Output] = math.Inf(1)
	}
	setReq := func(v *network.Node, r float64) {
		if r < res.Required[v] {
			res.Required[v] = r
		}
	}
	for _, p := range n.POs {
		setReq(p.Driver, res.Period)
	}
	for _, l := range n.Latches {
		setReq(l.Driver, res.Period)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		r := res.Required[v]
		for pin, fi := range v.Fanins {
			setReq(fi, r-m.PinDelay(v, pin))
		}
	}
	return res, nil
}

// Slack returns required - arrival for a node.
func (r *Result) Slack(v *network.Node) float64 {
	return r.Required[v] - r.Arrival[v]
}

// CriticalPath returns the logic nodes of one most-critical combinational
// path, ordered from the first gate after the sources to the sink driver.
// The leading source (PI or register output) is returned separately.
func (r *Result) CriticalPath() (source *network.Node, path []*network.Node) {
	if r.CritSink == nil {
		return nil, nil
	}
	v := r.CritSink
	for v != nil && !v.IsSource() {
		path = append(path, v)
		pin := r.critPred[v]
		if pin < 0 || pin >= len(v.Fanins) {
			v = nil
			break
		}
		v = v.Fanins[pin]
	}
	source = v
	// Reverse into input→output order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return source, path
}

// Period is a convenience wrapper returning just the clock period.
func Period(n *network.Network, m DelayModel) (float64, error) {
	r, err := Analyze(n, m)
	if err != nil {
		return 0, err
	}
	return r.Period, nil
}
