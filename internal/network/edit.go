package network

import (
	"fmt"

	"repro/internal/logic"
)

// This file contains structural editing operations: rewiring, node
// duplication (used to make critical paths fanout free), elimination
// (collapsing a node into a consumer), dead-node sweeping and deep cloning.

// SetFunction replaces node's fanins and function atomically, maintaining
// fanout lists.
func (n *Network) SetFunction(node *Node, fanins []*Node, f *logic.Cover) {
	if node.Kind != KindLogic {
		panic("network: SetFunction on non-logic node")
	}
	fanins, f = normalizeFanins(fanins, f)
	// A bound-gate annotation describes the old function; keep it only
	// when the cover is structurally unchanged (pure rewires such as
	// retiming moves preserve it).
	if node.Gate != nil && !sameCover(node.Func, f) {
		node.Gate = nil
	}
	for _, fi := range node.Fanins {
		fi.removeFanout(node)
	}
	node.Fanins = fanins
	node.Func = f
	for _, fi := range fanins {
		fi.fanouts = append(fi.fanouts, node)
	}
	n.invalidateTopo()
}

func sameCover(a, b *logic.Cover) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.N != b.N || len(a.Cubes) != len(b.Cubes) {
		return false
	}
	for i := range a.Cubes {
		if !a.Cubes[i].Equal(b.Cubes[i]) {
			return false
		}
	}
	return true
}

func (node *Node) removeFanout(consumer *Node) {
	for i, f := range node.fanouts {
		if f == consumer {
			node.fanouts = append(node.fanouts[:i], node.fanouts[i+1:]...)
			return
		}
	}
}

// ReplaceFanin rewires consumer so that occurrences of old become new. If
// new is already a fanin the two variables are merged in the cover.
func (n *Network) ReplaceFanin(consumer, old, new *Node) {
	idx := consumer.FaninIndex(old)
	if idx < 0 {
		panic(fmt.Sprintf("network: %s is not a fanin of %s", old.Name, consumer.Name))
	}
	fanins := make([]*Node, len(consumer.Fanins))
	copy(fanins, consumer.Fanins)
	fanins[idx] = new
	n.SetFunction(consumer, fanins, consumer.Func.Clone())
}

// RedirectConsumers moves every consumer of old (logic fanouts, latch data
// inputs, primary outputs) onto new. old keeps its fanins and may then be
// swept.
func (n *Network) RedirectConsumers(old, new *Node) {
	for _, c := range n.LogicFanouts(old) {
		n.ReplaceFanin(c, old, new)
	}
	for _, l := range n.Latches {
		if l.Driver == old {
			l.Driver = new
		}
	}
	for _, p := range n.POs {
		if p.Driver == old {
			p.Driver = new
		}
	}
}

// Duplicate creates a copy of a logic node (same fanins and function) with a
// derived name, returning the copy. Consumers are not rewired.
func (n *Network) Duplicate(node *Node) *Node {
	if node.Kind != KindLogic {
		panic("network: Duplicate on non-logic node")
	}
	fanins := make([]*Node, len(node.Fanins))
	copy(fanins, node.Fanins)
	return n.AddLogic(node.Name+"_dup", fanins, node.Func.Clone())
}

// Collapse substitutes the function of fanin g into consumer f (SIS
// "eliminate" of one edge): f loses g as a fanin and gains g's fanins.
// Uses the Shannon identity f = g·f|g=1 + g'·f|g=0.
func (n *Network) Collapse(f, g *Node) {
	if g.Kind != KindLogic {
		panic("network: Collapse requires a logic fanin")
	}
	idx := f.FaninIndex(g)
	if idx < 0 {
		panic(fmt.Sprintf("network: %s is not a fanin of %s", g.Name, f.Name))
	}
	// Build the combined fanin list: f's fanins minus g, then g's fanins
	// appended (duplicates are merged by SetFunction).
	var newFanins []*Node
	mapOld := make([]int, len(f.Fanins)) // old f var -> new var (or -1 for g)
	for i, fi := range f.Fanins {
		if i == idx {
			mapOld[i] = -1
			continue
		}
		mapOld[i] = len(newFanins)
		newFanins = append(newFanins, fi)
	}
	base := len(newFanins)
	mapG := make([]int, len(g.Fanins)) // g var -> new var
	for i, gi := range g.Fanins {
		mapG[i] = base + i
		newFanins = append(newFanins, gi)
	}
	m := len(newFanins)

	remapF := func(c *logic.Cover) *logic.Cover {
		vm := make([]int, len(mapOld))
		copy(vm, mapOld)
		// Cofactored covers no longer depend on var idx; give it a junk
		// valid slot to satisfy Remap's bound-variable rule (it is unused).
		vm[idx] = 0
		return c.Remap(m, vm)
	}
	hi := remapF(f.Func.CofactorVar(idx, true))
	lo := remapF(f.Func.CofactorVar(idx, false))
	gOn := g.Func.Remap(m, mapG)
	gOff := g.Func.Complement().Remap(m, mapG)
	combined := logic.Or(logic.And(gOn, hi), logic.And(gOff, lo))
	n.SetFunction(f, newFanins, combined)
}

// TrimFanins drops fanins the node's function does not syntactically
// depend on, shrinking the cover's variable space. Returns the number of
// fanins removed.
func (n *Network) TrimFanins(node *Node) int {
	if node.Kind != KindLogic {
		return 0
	}
	used := make([]bool, len(node.Fanins))
	for _, v := range node.Func.Support() {
		used[v] = true
	}
	keep := 0
	for _, u := range used {
		if u {
			keep++
		}
	}
	if keep == len(node.Fanins) {
		return 0
	}
	varMap := make([]int, len(node.Fanins))
	var fanins []*Node
	for i, u := range used {
		if u {
			varMap[i] = len(fanins)
			fanins = append(fanins, node.Fanins[i])
		} else {
			varMap[i] = -1
		}
	}
	// Remap tolerates unused -1 entries only if the cover does not bind
	// them; by construction it does not.
	for i := range varMap {
		if varMap[i] < 0 {
			varMap[i] = 0 // placeholder, variable is unbound
		}
	}
	f := node.Func.Remap(keep, varMap)
	removed := len(node.Fanins) - keep
	n.SetFunction(node, fanins, f)
	return removed
}

// TrimAllFanins applies TrimFanins to every logic node.
func (n *Network) TrimAllFanins() int {
	total := 0
	for _, v := range n.Nodes() {
		if v.Kind == KindLogic {
			total += n.TrimFanins(v)
		}
	}
	return total
}

// RemoveDeadNode deletes a logic node with no consumers.
func (n *Network) RemoveDeadNode(node *Node) {
	if node.Kind != KindLogic {
		panic("network: RemoveDeadNode on non-logic node")
	}
	if n.NumFanouts(node) != 0 {
		panic(fmt.Sprintf("network: node %s still has consumers", node.Name))
	}
	for _, fi := range node.Fanins {
		fi.removeFanout(node)
	}
	delete(n.byName, node.Name)
	for i, v := range n.nodes {
		if v == node {
			n.nodes = append(n.nodes[:i], n.nodes[i+1:]...)
			break
		}
	}
	n.invalidateTopo()
}

// RemoveLatch deletes a latch and its output node. The output node must
// have no consumers.
func (n *Network) RemoveLatch(l *Latch) {
	if n.NumFanouts(l.Output) != 0 {
		panic(fmt.Sprintf("network: latch %s output still has consumers", l.Name))
	}
	for i, x := range n.Latches {
		if x == l {
			n.Latches = append(n.Latches[:i], n.Latches[i+1:]...)
			break
		}
	}
	delete(n.byName, l.Output.Name)
	for i, v := range n.nodes {
		if v == l.Output {
			n.nodes = append(n.nodes[:i], n.nodes[i+1:]...)
			break
		}
	}
	n.invalidateTopo()
}

// Sweep removes logic nodes unreachable from any primary output or register
// data input, and returns the number removed.
//
// One reverse pass suffices: fanins are always created before their
// consumers, so walking the node array backward removes every consumer of
// a dead node before the node itself — and every consumer of a dead node
// is itself dead (liveness is transitive through fanins). The node array
// is then compacted in place, keeping the whole sweep linear in the
// network size (it used to rescan from the top per removed node, which
// was the dominant cost of building s38417-class synthetics).
func (n *Network) Sweep() int {
	live := make(map[*Node]bool)
	var mark func(v *Node)
	mark = func(v *Node) {
		if v == nil || live[v] {
			return
		}
		live[v] = true
		for _, fi := range v.Fanins {
			mark(fi)
		}
	}
	for _, p := range n.POs {
		mark(p.Driver)
	}
	for _, l := range n.Latches {
		mark(l.Driver)
		live[l.Output] = true
	}
	removed := 0
	for i := len(n.nodes) - 1; i >= 0; i-- {
		v := n.nodes[i]
		if v.Kind != KindLogic || live[v] {
			continue
		}
		for _, fi := range v.Fanins {
			fi.removeFanout(v)
		}
		delete(n.byName, v.Name)
		removed++
	}
	if removed > 0 {
		kept := n.nodes[:0]
		for _, v := range n.nodes {
			if v.Kind != KindLogic || live[v] {
				kept = append(kept, v)
			}
		}
		n.nodes = kept
		n.invalidateTopo()
	}
	return removed
}

// Clone returns a deep copy of the network. Node identities are fresh but
// names, order and functions are preserved.
func (n *Network) Clone() *Network {
	c := New(n.Name)
	old2new := make(map[*Node]*Node, len(n.nodes))
	// First pass: create all nodes without fanins to allow arbitrary
	// topological shapes (feedback goes through latches, but logic order in
	// n.nodes may interleave).
	for _, v := range n.nodes {
		nv := &Node{Name: v.Name, Kind: v.Kind, Gate: v.Gate}
		c.register(nv)
		old2new[v] = nv
	}
	for _, v := range n.nodes {
		if v.Kind != KindLogic {
			continue
		}
		nv := old2new[v]
		nv.Func = v.Func.Clone()
		nv.Fanins = make([]*Node, len(v.Fanins))
		for i, fi := range v.Fanins {
			nv.Fanins[i] = old2new[fi]
			old2new[fi].fanouts = append(old2new[fi].fanouts, nv)
		}
	}
	for _, v := range n.PIs {
		c.PIs = append(c.PIs, old2new[v])
	}
	for _, p := range n.POs {
		c.POs = append(c.POs, &PO{Name: p.Name, Driver: old2new[p.Driver]})
	}
	for _, l := range n.Latches {
		c.Latches = append(c.Latches, &Latch{
			Name:   l.Name,
			Driver: old2new[l.Driver],
			Output: old2new[l.Output],
			Init:   l.Init,
		})
	}
	return c
}
