package network

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// victim builds a small valid sequential circuit to corrupt:
//
//	g = a AND q, y = g, latch q <- g.
func victim(t *testing.T) (*Network, *Node) {
	t.Helper()
	n := New("victim")
	a := n.AddPI("a")
	q := n.AddLatch("q", a, V0)
	g := n.AddLogic("g", []*Node{a, q.Output}, logic.MustParseCover(2, "11"))
	q.Driver = g
	n.AddPO("y", g)
	if err := n.Check(); err != nil {
		t.Fatalf("victim must start valid: %v", err)
	}
	return n, g
}

// TestCheckCatchesCorruption walks every corruption class the guard layer's
// transactional validation relies on: each must be reported by Check with a
// message naming the broken invariant.
func TestCheckCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(n *Network, g *Node)
		want    string // substring of the expected Check error
	}{
		{
			"arity mismatch (cover vars vs fanins)",
			func(n *Network, g *Node) { g.Func = logic.MustParseCover(1, "1") },
			"cover vars",
		},
		{
			// The FaultCorrupt realization in the guard runner: a truncated
			// fanin list surfaces as broken fanin/fanout symmetry.
			"truncated fanins",
			func(n *Network, g *Node) { g.Fanins = g.Fanins[:1] },
			"does not list it as fanin",
		},
		{
			"dangling fanin (removed node)",
			func(n *Network, g *Node) {
				ghost := &Node{ID: 999, Name: "ghost", Kind: KindPI}
				g.Fanins[0].fanouts = nil // silence the symmetry check
				g.Fanins[0] = ghost
			},
			"removed fanin",
		},
		{
			"duplicate fanin",
			func(n *Network, g *Node) {
				g.Fanins[1].fanouts = nil // silence the symmetry check
				g.Fanins[1] = g.Fanins[0]
			},
			"duplicate fanin",
		},
		{
			"fanout asymmetry (consumer missing from fanout list)",
			func(n *Network, g *Node) { g.Fanins[0].fanouts = nil },
			"misses consumer",
		},
		{
			"broken name table (renamed node)",
			func(n *Network, g *Node) { g.Name = "renamed" },
			"name table",
		},
		{
			"name table references removed node",
			func(n *Network, g *Node) {
				stray := &Node{ID: 998, Name: "stray", Kind: KindPI}
				n.byName["stray"] = stray
			},
			"removed node",
		},
		{
			"logic node without function",
			func(n *Network, g *Node) { g.Func = nil },
			"no function",
		},
		{
			"source with function",
			func(n *Network, g *Node) {
				n.PIs[0].Func = logic.MustParseCover(0, "")
			},
			"has fanins or function",
		},
		{
			"latch driver removed",
			func(n *Network, g *Node) {
				n.Latches[0].Driver = &Node{ID: 997, Name: "gone", Kind: KindLogic}
			},
			"driver removed",
		},
		{
			"PO driver removed",
			func(n *Network, g *Node) {
				n.POs[0].Driver = &Node{ID: 996, Name: "gone", Kind: KindLogic}
			},
			"driver removed",
		},
		{
			"combinational cycle",
			func(n *Network, g *Node) {
				g.Fanins[0].fanouts = nil // silence the symmetry check
				g.Fanins[0] = g
				g.fanouts = append(g.fanouts, g)
			},
			"combinational cycle",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, g := victim(t)
			tc.corrupt(n, g)
			err := n.Check()
			if err == nil {
				t.Fatalf("corruption %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corruption %q reported as %v, want mention of %q", tc.name, err, tc.want)
			}
		})
	}
}

// TestCheckPassesOnCloneOfCorrupted pins the guard rollback guarantee: a
// corrupted clone never taints the original it was cloned from.
func TestCheckPassesOnCloneOfCorrupted(t *testing.T) {
	n, _ := victim(t)
	c := n.Clone()
	g := c.FindNode("g")
	g.Fanins = g.Fanins[:1]
	if err := c.Check(); err == nil {
		t.Fatal("corrupted clone must fail Check")
	}
	if err := n.Check(); err != nil {
		t.Fatalf("original tainted by clone corruption: %v", err)
	}
}
