package network

import "fmt"

// Check validates internal consistency: fanin/fanout symmetry, function
// arity, name-table integrity, latch wiring and combinational acyclicity.
// Passes call it in tests after every transformation.
func (n *Network) Check() error {
	inNodes := make(map[*Node]bool, len(n.nodes))
	for _, v := range n.nodes {
		inNodes[v] = true
	}
	for name, v := range n.byName {
		if v.Name != name {
			return fmt.Errorf("network: name table maps %q to node named %q", name, v.Name)
		}
		if !inNodes[v] {
			return fmt.Errorf("network: name table references removed node %q", name)
		}
	}
	for _, v := range n.nodes {
		switch v.Kind {
		case KindPI, KindLatchOut:
			if len(v.Fanins) != 0 || v.Func != nil {
				return fmt.Errorf("network: source %s has fanins or function", v.Name)
			}
		case KindLogic:
			if v.Func == nil {
				return fmt.Errorf("network: logic node %s has no function", v.Name)
			}
			if v.Func.N != len(v.Fanins) {
				return fmt.Errorf("network: node %s: %d cover vars vs %d fanins",
					v.Name, v.Func.N, len(v.Fanins))
			}
			seen := make(map[*Node]bool)
			for _, fi := range v.Fanins {
				if !inNodes[fi] {
					return fmt.Errorf("network: node %s has removed fanin %s", v.Name, fi.Name)
				}
				if seen[fi] {
					return fmt.Errorf("network: node %s has duplicate fanin %s", v.Name, fi.Name)
				}
				seen[fi] = true
				found := false
				for _, fo := range fi.fanouts {
					if fo == v {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("network: fanout list of %s misses consumer %s", fi.Name, v.Name)
				}
			}
		}
		for _, fo := range v.fanouts {
			if !inNodes[fo] {
				return fmt.Errorf("network: node %s has removed fanout %s", v.Name, fo.Name)
			}
			if fo.FaninIndex(v) < 0 {
				return fmt.Errorf("network: fanout %s of %s does not list it as fanin", fo.Name, v.Name)
			}
		}
	}
	for _, l := range n.Latches {
		if !inNodes[l.Driver] {
			return fmt.Errorf("network: latch %s driver removed", l.Name)
		}
		if !inNodes[l.Output] || l.Output.Kind != KindLatchOut {
			return fmt.Errorf("network: latch %s output invalid", l.Name)
		}
	}
	for _, p := range n.POs {
		if !inNodes[p.Driver] {
			return fmt.Errorf("network: PO %s driver removed", p.Name)
		}
	}
	// Validation must not trust the topo memo: Check exists precisely to
	// catch out-of-API mutations (fault injection writes Fanins directly),
	// which bypass invalidation. Recompute, then refresh the memo with the
	// ground truth just established.
	order, err := n.topoSort()
	n.topoCache, n.topoErr, n.topoValid = order, err, true
	if err != nil {
		return err
	}
	return nil
}

// Stats is a compact summary used by flows and tools.
type Stats struct {
	PIs, POs, Latches, LogicNodes, Lits int
}

// Stat computes the summary.
func (n *Network) Stat() Stats {
	return Stats{
		PIs:        len(n.PIs),
		POs:        len(n.POs),
		Latches:    len(n.Latches),
		LogicNodes: n.NumLogicNodes(),
		Lits:       n.NumLits(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("pi=%d po=%d latch=%d nodes=%d lits=%d",
		s.PIs, s.POs, s.Latches, s.LogicNodes, s.Lits)
}
