package network

import (
	"testing"

	"repro/internal/logic"
)

func sameOrder(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTopoOrderCached checks that repeated calls are served from the memo
// (same order, fresh slice) and that every structural mutation invalidates.
func TestTopoOrderCached(t *testing.T) {
	n, g1, g2 := buildToy(t)
	o1, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !n.topoValid {
		t.Fatal("first TopoOrder did not populate the cache")
	}
	o2, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !sameOrder(o1, o2) {
		t.Fatal("cached order differs")
	}
	// Returned slices must not alias the cache or each other.
	o1[0], o1[1] = o1[1], o1[0]
	o3, _ := n.TopoOrder()
	if !sameOrder(o2, o3) {
		t.Fatal("caller mutation leaked into the cache")
	}

	// SetFunction invalidates and the new order reflects the rewire.
	inv := logic.MustParseCover(1, "0")
	g3 := n.AddLogic("g3", []*Node{g2}, inv)
	if n.topoValid {
		t.Fatal("AddLogic must invalidate the topo cache")
	}
	n.AddPO("z", g3)
	o4, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(o4) != 3 {
		t.Fatalf("new node missing from order: %d", len(o4))
	}

	n.SetFunction(g3, []*Node{g1}, inv.Clone())
	if n.topoValid {
		t.Fatal("SetFunction must invalidate the topo cache")
	}
	if _, err := n.TopoOrder(); err != nil {
		t.Fatal(err)
	}

	// Removing nodes invalidates too.
	n.RedirectConsumers(g3, g1)
	n.RemoveDeadNode(g3)
	if n.topoValid {
		t.Fatal("RemoveDeadNode must invalidate the topo cache")
	}
	o5, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(o5) != 2 {
		t.Fatalf("removed node still in order: %d", len(o5))
	}
}

// TestTopoCacheCyclesAndLatchRemoval checks that a cycle error is memoized
// and cleared once the cycle is edited away, and that RemoveLatch
// invalidates.
func TestTopoCacheCyclesAndLatchRemoval(t *testing.T) {
	n := New("cyc")
	a := n.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	and := logic.MustParseCover(2, "11")
	x := n.AddLogic("x", []*Node{a}, buf)
	y := n.AddLogic("y", []*Node{x, a}, and)
	n.AddPO("o", y)
	n.SetFunction(x, []*Node{y}, buf.Clone()) // x <- y <- x: combinational cycle
	if _, err := n.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if !n.topoValid || n.topoErr == nil {
		t.Fatal("cycle error must be memoized")
	}
	if _, err := n.TopoOrder(); err == nil {
		t.Fatal("memoized cycle error lost")
	}
	n.SetFunction(x, []*Node{a}, buf.Clone()) // break the cycle
	if _, err := n.TopoOrder(); err != nil {
		t.Fatalf("cycle error survived the fix: %v", err)
	}

	// RemoveLatch drops the cache: the latch output node leaves the graph.
	m := New("lat")
	b := m.AddPI("b")
	l := m.AddLatch("s", b, V0)
	m.AddPO("p", b)
	if _, err := m.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	m.RemoveLatch(l)
	if m.topoValid {
		t.Fatal("RemoveLatch must invalidate the topo cache")
	}
	if _, err := m.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}
