package network

import "fmt"

// TopoOrder returns the logic nodes in topological order (fanins before
// fanouts). Combinational sources (PIs, latch outputs) are not included.
// It returns an error if the combinational logic contains a cycle — legal
// sequential feedback must pass through a latch.
//
// The order is memoized: it depends only on the logic-node set and the
// Fanins edges, both of which change exclusively through register /
// SetFunction / RemoveDeadNode / RemoveLatch, each of which drops the
// cache. Driver rewires on latches and POs do not affect it. The caller
// receives a fresh slice each time and may reorder it freely.
func (n *Network) TopoOrder() ([]*Node, error) {
	if n.topoValid {
		if n.topoErr != nil {
			return nil, n.topoErr
		}
		out := make([]*Node, len(n.topoCache))
		copy(out, n.topoCache)
		return out, nil
	}
	order, err := n.topoSort()
	n.topoCache, n.topoErr, n.topoValid = order, err, true
	if err != nil {
		return nil, err
	}
	out := make([]*Node, len(order))
	copy(out, order)
	return out, nil
}

// invalidateTopo drops the memoized topological order; every structural
// mutation of the logic graph must pass through here.
func (n *Network) invalidateTopo() {
	n.topoValid = false
	n.topoCache = nil
	n.topoErr = nil
}

func (n *Network) topoSort() ([]*Node, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Node]byte, len(n.nodes))
	var order []*Node
	var visit func(v *Node) error
	visit = func(v *Node) error {
		switch color[v] {
		case gray:
			return fmt.Errorf("network: combinational cycle through %s", v.Name)
		case black:
			return nil
		}
		if v.IsSource() {
			color[v] = black
			return nil
		}
		color[v] = gray
		for _, fi := range v.Fanins {
			if err := visit(fi); err != nil {
				return err
			}
		}
		color[v] = black
		order = append(order, v)
		return nil
	}
	for _, p := range n.POs {
		if err := visit(p.Driver); err != nil {
			return nil, err
		}
	}
	for _, l := range n.Latches {
		if err := visit(l.Driver); err != nil {
			return nil, err
		}
	}
	// Dead logic nodes still participate so callers can iterate everything.
	for _, v := range n.nodes {
		if v.Kind == KindLogic {
			if err := visit(v); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}

// TransitiveFanin returns the set of nodes in the combinational transitive
// fanin of node (inclusive), stopping at sources.
func (n *Network) TransitiveFanin(node *Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var walk func(v *Node)
	walk = func(v *Node) {
		if seen[v] {
			return
		}
		seen[v] = true
		if v.IsSource() {
			return
		}
		for _, fi := range v.Fanins {
			walk(fi)
		}
	}
	walk(node)
	return seen
}

// TransitiveFanout returns the set of logic nodes in the combinational
// transitive fanout of node (inclusive of logic consumers, exclusive of
// node itself unless it is logic).
func (n *Network) TransitiveFanout(node *Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var walk func(v *Node)
	walk = func(v *Node) {
		for _, c := range v.fanouts {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(node)
	if node.Kind == KindLogic {
		seen[node] = true
	}
	return seen
}
