package network

import (
	"testing"

	"repro/internal/logic"
)

// buildToy makes the classic toy FSM:
//
//	g1 = a AND s      (s = latch output)
//	g2 = g1 OR b
//	latch s <- g2, init 0
//	PO y = g2
func buildToy(t *testing.T) (*Network, *Node, *Node) {
	t.Helper()
	n := New("toy")
	a := n.AddPI("a")
	b := n.AddPI("b")
	and := logic.MustParseCover(2, "11")
	or := logic.MustParseCover(2, "1-", "-1")
	// Build latch first so its output can feed logic; driver set after.
	g1 := n.AddLogic("g1", []*Node{a, a}, and) // placeholder fanins, fixed below
	g2 := n.AddLogic("g2", []*Node{g1, b}, or)
	l := n.AddLatch("s", g2, V0)
	n.SetFunction(g1, []*Node{a, l.Output}, and.Clone())
	n.AddPO("y", g2)
	if err := n.Check(); err != nil {
		t.Fatalf("toy network invalid: %v", err)
	}
	return n, g1, g2
}

func TestBuildAndCheck(t *testing.T) {
	n, g1, g2 := buildToy(t)
	if n.NumLogicNodes() != 2 {
		t.Fatalf("NumLogicNodes = %d", n.NumLogicNodes())
	}
	if got := n.NumFanouts(g2); got != 2 { // latch driver + PO
		t.Fatalf("fanouts of g2 = %d, want 2", got)
	}
	if got := n.NumFanouts(g1); got != 1 {
		t.Fatalf("fanouts of g1 = %d, want 1", got)
	}
	s := n.FindNode("s")
	if s == nil || s.Kind != KindLatchOut {
		t.Fatal("latch output missing")
	}
	if l := n.LatchOfOutput(s); l == nil || l.Name != "s" {
		t.Fatal("LatchOfOutput broken")
	}
}

func TestDuplicateFaninsMerged(t *testing.T) {
	n := New("m")
	a := n.AddPI("a")
	// f(x0,x1) = x0·x1' with both vars wired to a must collapse to const 0
	// cube removal (a AND NOT a).
	f := logic.MustParseCover(2, "10")
	g := n.AddLogic("g", []*Node{a, a}, f)
	if len(g.Fanins) != 1 {
		t.Fatalf("fanins not merged: %v", g.Fanins)
	}
	if !g.Func.IsZeroFunction() {
		t.Fatalf("a AND NOT a must be 0, got %v", g.Func)
	}
	// And f = x0·x1 wired twice must become identity a.
	f2 := logic.MustParseCover(2, "11")
	g2 := n.AddLogic("g2", []*Node{a, a}, f2)
	if len(g2.Fanins) != 1 || g2.Func.NumLits() != 1 {
		t.Fatalf("a AND a must be a: %v", g2.Func)
	}
	n.AddPO("o1", g)
	n.AddPO("o2", g2)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceFanin(t *testing.T) {
	n, g1, _ := buildToy(t)
	c := n.AddPI("c")
	s := n.FindNode("s")
	n.ReplaceFanin(g1, s, c)
	if g1.FaninIndex(c) < 0 || g1.FaninIndex(s) >= 0 {
		t.Fatal("ReplaceFanin did not rewire")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRedirectConsumers(t *testing.T) {
	n, _, g2 := buildToy(t)
	c := n.AddPI("c")
	n.RedirectConsumers(g2, c)
	if n.NumFanouts(g2) != 0 {
		t.Fatalf("g2 still has %d consumers", n.NumFanouts(g2))
	}
	for _, l := range n.Latches {
		if l.Driver != c {
			t.Fatal("latch driver not redirected")
		}
	}
	if n.POs[0].Driver != c {
		t.Fatal("PO not redirected")
	}
	n.RemoveDeadNode(g2)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicate(t *testing.T) {
	n, g1, _ := buildToy(t)
	d := n.Duplicate(g1)
	if d == g1 || d.Func.N != g1.Func.N || len(d.Fanins) != len(g1.Fanins) {
		t.Fatal("Duplicate shape wrong")
	}
	// The duplicate starts with no consumers.
	if n.NumFanouts(d) != 0 {
		t.Fatal("fresh duplicate must have no consumers")
	}
	n.AddPO("dup_out", d)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCollapse(t *testing.T) {
	// f = g XOR c, g = a AND b. After collapsing g into f:
	// f = (a·b)⊕c over {c, a, b} — verify by simulation of the cover.
	n := New("col")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	g := n.AddLogic("g", []*Node{a, b}, logic.MustParseCover(2, "11"))
	xor := logic.MustParseCover(2, "10", "01")
	f := n.AddLogic("f", []*Node{g, c}, xor)
	n.AddPO("y", f)
	n.Collapse(f, g)
	if f.FaninIndex(g) >= 0 {
		t.Fatal("g still a fanin after collapse")
	}
	n.Sweep()
	if n.FindNode("g") != nil {
		t.Fatal("dead g not swept")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// Exhaustive functional check.
	idxA, idxB, idxC := f.FaninIndex(a), f.FaninIndex(b), f.FaninIndex(c)
	assign := make([]bool, len(f.Fanins))
	for m := 0; m < 8; m++ {
		va, vb, vc := m&1 != 0, m&2 != 0, m&4 != 0
		assign[idxA], assign[idxB], assign[idxC] = va, vb, vc
		want := (va && vb) != vc
		if f.Func.Eval(assign) != want {
			t.Fatalf("collapse wrong at a=%v b=%v c=%v", va, vb, vc)
		}
	}
}

func TestSweepKeepsLive(t *testing.T) {
	n, _, _ := buildToy(t)
	dead := n.AddLogic("dead", []*Node{n.PIs[0]}, logic.MustParseCover(1, "1"))
	_ = dead
	if removed := n.Sweep(); removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	if n.NumLogicNodes() != 2 {
		t.Fatal("Sweep removed live logic")
	}
}

func TestTopoOrder(t *testing.T) {
	n, g1, g2 := buildToy(t)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Node]int{}
	for i, v := range order {
		pos[v] = i
	}
	if pos[g1] > pos[g2] {
		t.Fatal("g1 must precede g2")
	}
}

func TestTopoDetectsCombinationalCycle(t *testing.T) {
	n := New("cyc")
	a := n.AddPI("a")
	g1 := n.AddLogic("g1", []*Node{a}, logic.MustParseCover(1, "1"))
	g2 := n.AddLogic("g2", []*Node{g1}, logic.MustParseCover(1, "1"))
	n.ReplaceFanin(g1, a, g2) // creates a pure combinational loop
	n.AddPO("y", g2)
	if _, err := n.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	n, _, _ := buildToy(t)
	c := n.Clone()
	if err := c.Check(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if len(c.Nodes()) != len(n.Nodes()) || len(c.Latches) != 1 || len(c.POs) != 1 {
		t.Fatal("clone shape differs")
	}
	// Mutating the clone must not affect the original.
	g1c := c.FindNode("g1")
	c.SetFunction(g1c, []*Node{c.PIs[0]}, logic.MustParseCover(1, "1"))
	if n.FindNode("g1").Func.N != 2 {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestTransitiveFaninFanout(t *testing.T) {
	n, g1, g2 := buildToy(t)
	tfi := n.TransitiveFanin(g2)
	if !tfi[g1] || !tfi[n.PIs[0]] || !tfi[n.FindNode("s")] {
		t.Fatal("TFI incomplete")
	}
	tfo := n.TransitiveFanout(n.FindNode("s"))
	if !tfo[g1] || !tfo[g2] {
		t.Fatal("TFO incomplete")
	}
}

func TestRemoveLatch(t *testing.T) {
	n, g1, _ := buildToy(t)
	s := n.FindNode("s")
	l := n.LatchOfOutput(s)
	// Detach the consumer first.
	a := n.PIs[0]
	n.ReplaceFanin(g1, s, a)
	n.RemoveLatch(l)
	if len(n.Latches) != 0 || n.FindNode("s") != nil {
		t.Fatal("latch not removed")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConstNodes(t *testing.T) {
	n := New("k")
	one := n.AddConst("one", true)
	zero := n.AddConst("zero", false)
	n.AddPO("o1", one)
	n.AddPO("o0", zero)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if !one.Func.Eval(nil) || zero.Func.Eval(nil) {
		t.Fatal("constant evaluation wrong")
	}
}
