// Package network implements the mutable gate-level representation of a
// synchronous sequential circuit: a multi-level Boolean network whose nodes
// carry sum-of-products functions over their fanins, plus edge-triggered
// registers (latches in BLIF terminology) with known initial states.
//
// Combinational sources are primary inputs and register outputs;
// combinational sinks are primary outputs and register data inputs. All
// synthesis, retiming and resynthesis passes in this repository operate on
// this structure.
package network

import (
	"fmt"

	"repro/internal/logic"
)

// Value is a ternary logic value used for register initial states and
// three-valued simulation.
type Value byte

const (
	// V0 is logic 0.
	V0 Value = iota
	// V1 is logic 1.
	V1
	// VX is unknown / don't care.
	VX
)

// String renders the value as 0, 1 or x.
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "x"
	}
}

// Kind distinguishes the node flavours of the network graph.
type Kind byte

const (
	// KindPI is a primary input: a combinational source without function.
	KindPI Kind = iota
	// KindLatchOut is the output pin of a register: also a combinational
	// source. Its register is found via Network.LatchOfOutput.
	KindLatchOut
	// KindLogic is an internal logic node with a SOP function over fanins.
	KindLogic
)

// Node is a vertex of the Boolean network.
type Node struct {
	ID   int
	Name string
	Kind Kind
	// Fanins are the function's input nodes; Func variable i corresponds to
	// Fanins[i]. Fanins are kept duplicate-free.
	Fanins []*Node
	// Func is the node's local function (nil for PIs and latch outputs).
	Func *logic.Cover
	// fanouts lists the logic nodes that reference this node as a fanin.
	// Register data inputs and primary outputs are tracked on the Network.
	fanouts []*Node

	// Gate is the technology-mapping annotation (nil when unmapped); it is
	// declared as an opaque interface to keep network free of a genlib
	// dependency.
	Gate GateRef
}

// GateRef is implemented by the technology library's bound-gate annotation.
type GateRef interface {
	GateName() string
	GateArea() float64
	// PinDelay returns the pin-to-output delay of input pin i.
	PinDelay(i int) float64
}

// Latch is an edge-triggered register.
type Latch struct {
	Name   string
	Driver *Node // data input (next-state function root)
	Output *Node // KindLatchOut node presenting the state to the logic
	Init   Value
}

// PO is a named primary output driven by a node.
type PO struct {
	Name   string
	Driver *Node
}

// Network is a synchronous sequential circuit.
type Network struct {
	Name    string
	nodes   []*Node
	PIs     []*Node
	POs     []*PO
	Latches []*Latch

	byName map[string]*Node
	nextID int

	// Memoized TopoOrder result (see topo.go). Valid distinguishes "not
	// computed" from a cached nil-order cycle error.
	topoCache []*Node
	topoErr   error
	topoValid bool
}

// New creates an empty network.
func New(name string) *Network {
	return &Network{Name: name, byName: make(map[string]*Node)}
}

// Nodes returns all nodes (PIs, latch outputs and logic nodes) in creation
// order. The returned slice must not be mutated.
func (n *Network) Nodes() []*Node { return n.nodes }

// NumLogicNodes counts internal logic nodes.
func (n *Network) NumLogicNodes() int {
	k := 0
	for _, v := range n.nodes {
		if v.Kind == KindLogic {
			k++
		}
	}
	return k
}

// NumLits returns the total SOP literal count over all logic nodes — the
// classic technology-independent area estimate.
func (n *Network) NumLits() int {
	k := 0
	for _, v := range n.nodes {
		if v.Kind == KindLogic && v.Func != nil {
			k += v.Func.NumLits()
		}
	}
	return k
}

// FindNode returns the node with the given name, or nil.
func (n *Network) FindNode(name string) *Node { return n.byName[name] }

func (n *Network) register(node *Node) *Node {
	if node.Name == "" {
		node.Name = fmt.Sprintf("n%d", n.nextID)
	}
	if _, dup := n.byName[node.Name]; dup {
		node.Name = fmt.Sprintf("%s_%d", node.Name, n.nextID)
	}
	node.ID = n.nextID
	n.nextID++
	n.byName[node.Name] = node
	n.nodes = append(n.nodes, node)
	n.invalidateTopo()
	return node
}

// AddPI creates a primary input node.
func (n *Network) AddPI(name string) *Node {
	node := n.register(&Node{Name: name, Kind: KindPI})
	n.PIs = append(n.PIs, node)
	return node
}

// AddLogic creates an internal node computing f over the given fanins.
// Duplicate fanins are merged (the cover is remapped accordingly).
func (n *Network) AddLogic(name string, fanins []*Node, f *logic.Cover) *Node {
	if f == nil {
		panic("network: AddLogic requires a function")
	}
	fanins, f = normalizeFanins(fanins, f)
	node := n.register(&Node{Name: name, Kind: KindLogic, Fanins: fanins, Func: f})
	for _, fi := range fanins {
		fi.fanouts = append(fi.fanouts, node)
	}
	return node
}

// AddConst creates a constant node (0 or 1).
func (n *Network) AddConst(name string, one bool) *Node {
	f := logic.Zero(0)
	if one {
		f = logic.One(0)
	}
	return n.AddLogic(name, nil, f)
}

// AddPO declares driver as a primary output with the given name.
func (n *Network) AddPO(name string, driver *Node) *PO {
	po := &PO{Name: name, Driver: driver}
	n.POs = append(n.POs, po)
	return po
}

// AddLatch creates a register clocked from driver with the given initial
// value, returning the latch. The latch's Output node is created with
// outName (the state-variable name visible to the logic).
func (n *Network) AddLatch(outName string, driver *Node, init Value) *Latch {
	out := n.register(&Node{Name: outName, Kind: KindLatchOut})
	l := &Latch{Name: outName, Driver: driver, Output: out}
	l.Init = init
	n.Latches = append(n.Latches, l)
	return l
}

// LatchOfOutput returns the latch whose Output is the given node, or nil.
func (n *Network) LatchOfOutput(node *Node) *Latch {
	for _, l := range n.Latches {
		if l.Output == node {
			return l
		}
	}
	return nil
}

// LatchesDrivenBy returns the latches whose data input is node.
func (n *Network) LatchesDrivenBy(node *Node) []*Latch {
	var out []*Latch
	for _, l := range n.Latches {
		if l.Driver == node {
			out = append(out, l)
		}
	}
	return out
}

// POsDrivenBy returns the primary outputs driven by node.
func (n *Network) POsDrivenBy(node *Node) []*PO {
	var out []*PO
	for _, p := range n.POs {
		if p.Driver == node {
			out = append(out, p)
		}
	}
	return out
}

// LogicFanouts returns the logic nodes consuming node (no latches/POs).
// The returned slice is a copy.
func (n *Network) LogicFanouts(node *Node) []*Node {
	out := make([]*Node, len(node.fanouts))
	copy(out, node.fanouts)
	return out
}

// NumFanouts returns the total consumer count of node: logic fanouts plus
// latch data inputs plus primary outputs.
func (n *Network) NumFanouts(node *Node) int {
	return len(node.fanouts) + len(n.LatchesDrivenBy(node)) + len(n.POsDrivenBy(node))
}

// normalizeFanins merges duplicate fanins and remaps the cover.
func normalizeFanins(fanins []*Node, f *logic.Cover) ([]*Node, *logic.Cover) {
	if f.N != len(fanins) {
		panic(fmt.Sprintf("network: cover has %d vars but %d fanins", f.N, len(fanins)))
	}
	seen := make(map[*Node]int)
	var unique []*Node
	varMap := make([]int, len(fanins))
	dup := false
	for i, fi := range fanins {
		if j, ok := seen[fi]; ok {
			varMap[i] = j
			dup = true
			continue
		}
		seen[fi] = len(unique)
		varMap[i] = len(unique)
		unique = append(unique, fi)
	}
	if !dup {
		return fanins, f
	}
	// Remap requires distinct targets; merging two old vars onto one new
	// var is done cube-by-cube with literal intersection.
	g := logic.NewCover(len(unique))
	for _, c := range f.Cubes {
		d := logic.NewCube(len(unique))
		ok := true
		for v := 0; v < f.N; v++ {
			l := c.Lit(v)
			if l == logic.LitBoth {
				continue
			}
			cur := d.Lit(varMap[v])
			merged := cur & l
			if merged == logic.LitNone {
				ok = false
				break
			}
			d.SetLit(varMap[v], merged)
		}
		if ok {
			g.Add(d)
		}
	}
	return unique, g
}

// FaninIndex returns the index of fi in node's fanin list, or -1.
func (node *Node) FaninIndex(fi *Node) int {
	for i, f := range node.Fanins {
		if f == fi {
			return i
		}
	}
	return -1
}

// IsSource reports whether node is a combinational source (PI or latch out).
func (node *Node) IsSource() bool {
	return node.Kind == KindPI || node.Kind == KindLatchOut
}

func (node *Node) String() string {
	return node.Name
}
