package sweep

import (
	"context"

	"repro/internal/aig"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/sat"
)

// chunkCount is the fixed shard count of one proof round. It is a
// constant — NOT derived from Options.Workers — so the chunk boundaries,
// the per-chunk solver state and therefore every counterexample are
// identical at any worker width; parexec.Map then merges the results in
// index order.
const chunkCount = 8

// chunk is one shard of a round's proof obligations: whole classes (so
// the break-on-first-cex policy inside a class stays shard-local) or the
// output-pair obligations.
type chunk struct {
	classIdx []int
	pos      bool
}

type chunkResult struct {
	cexes     []*cex
	unknowns  []int32
	poUnknown int
	poFail    error // *NotEquivalentError: genuine bounded disproof
	stats     sat.Stats
}

// makeChunks shards the active classes into at most chunkCount groups of
// balanced obligation count, plus one shard for the output obligations.
func (e *engine) makeChunks(active []int) []chunk {
	var chunks []chunk
	total := 0
	for _, ci := range active {
		total += len(e.classes[ci]) - 1
	}
	if total > 0 {
		per := (total + chunkCount - 1) / chunkCount
		var cur []int
		acc := 0
		for _, ci := range active {
			cur = append(cur, ci)
			acc += len(e.classes[ci]) - 1
			if acc >= per && len(chunks) < chunkCount-1 {
				chunks = append(chunks, chunk{classIdx: cur})
				cur, acc = nil, 0
			}
		}
		if len(cur) > 0 {
			chunks = append(chunks, chunk{classIdx: cur})
		}
	}
	if len(e.pos) > 0 {
		chunks = append(chunks, chunk{pos: true})
	}
	return chunks
}

// litUnset marks a (frame, node) pair not yet encoded. sat.Lit 0 is a
// real literal (variable 0, positive), so the sentinel must be negative.
const litUnset = sat.Lit(-1)

// inst is one lazily unrolled transition-relation instance on a private
// solver. CNF is emitted per cone of influence on demand: an obligation
// over two nodes only ever pays for the logic it can actually observe,
// which is what keeps per-query cost independent of circuit size — the
// monolithic alternative made every CDCL decision walk a 40k-variable
// trail even for a two-gate proof.
type inst struct {
	e      *engine
	s      *sat.Solver
	falseL sat.Lit
	// init: frame 0 takes the declared initial values (the base/BMC
	// instance). Otherwise frame 0 state variables are free (the
	// induction-step instance).
	init   bool
	frames [][]sat.Lit
	// Induction-hypothesis bookkeeping: per hypothesis frame, the class
	// anchor literal and which members are already chained to it.
	anchors [][]sat.Lit
	linked  []map[int32]bool
}

func (e *engine) newInst(nFrames int, init bool, hypoFrames int) *inst {
	s := sat.New()
	s.MaxConflicts = e.opt.MaxConflicts
	in := &inst{e: e, s: s, falseL: sat.FalseLit(s), init: init}
	in.frames = make([][]sat.Lit, nFrames)
	for t := range in.frames {
		fr := make([]sat.Lit, e.g.NumNodes())
		for i := range fr {
			fr[i] = litUnset
		}
		fr[0] = in.falseL
		in.frames[t] = fr
	}
	in.anchors = make([][]sat.Lit, hypoFrames)
	in.linked = make([]map[int32]bool, hypoFrames)
	for t := range in.anchors {
		a := make([]sat.Lit, len(e.classes))
		for i := range a {
			a[i] = litUnset
		}
		in.anchors[t] = a
		in.linked[t] = make(map[int32]bool)
	}
	return in
}

// nodeLit returns the literal of node id at frame t, lazily emitting the
// cone of influence (through earlier frames via the latch next-state
// functions) with an explicit work stack.
func (in *inst) nodeLit(t int, id int32) sat.Lit {
	if l := in.frames[t][id]; l != litUnset {
		return l
	}
	g := in.e.g
	lats := g.Latches()
	type item struct {
		t  int
		id int32
	}
	stack := []item{{t, id}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		if in.frames[it.t][it.id] != litUnset {
			stack = stack[:len(stack)-1]
			continue
		}
		if g.IsAnd(it.id) {
			f0, f1 := g.Fanins(it.id)
			a := in.frames[it.t][f0.Node()]
			if a == litUnset {
				stack = append(stack, item{it.t, f0.Node()})
				continue
			}
			b := in.frames[it.t][f1.Node()]
			if b == litUnset {
				stack = append(stack, item{it.t, f1.Node()})
				continue
			}
			if f0.Compl() {
				a = a.Not()
			}
			if f1.Compl() {
				b = b.Not()
			}
			c := sat.Pos(in.s.NewVar())
			in.s.AddClause(c.Not(), a)
			in.s.AddClause(c.Not(), b)
			in.s.AddClause(c, a.Not(), b.Not())
			in.frames[it.t][it.id] = c
			stack = stack[:len(stack)-1]
			continue
		}
		li, isLatch := in.e.latchIdxOf[it.id]
		switch {
		case isLatch && it.t > 0:
			nx := lats[li].Next
			pl := in.frames[it.t-1][nx.Node()]
			if pl == litUnset {
				stack = append(stack, item{it.t - 1, nx.Node()})
				continue
			}
			if nx.Compl() {
				pl = pl.Not()
			}
			in.frames[it.t][it.id] = pl
		case isLatch && in.init:
			switch lats[li].Init {
			case network.V0:
				in.frames[0][it.id] = in.falseL
			case network.V1:
				in.frames[0][it.id] = in.falseL.Not()
			default:
				in.frames[0][it.id] = sat.Pos(in.s.NewVar())
			}
		default:
			// PI (any frame) or a free induction-state variable.
			in.frames[it.t][it.id] = sat.Pos(in.s.NewVar())
		}
		stack = stack[:len(stack)-1]
	}
	return in.frames[t][id]
}

func (in *inst) aigLit(t int, l aig.Lit) sat.Lit {
	out := in.nodeLit(t, l.Node())
	if l.Compl() {
		return out.Not()
	}
	return out
}

// linkHypothesis chains every class member whose literal now exists in a
// hypothesis frame to its class anchor. Called before each Solve, so the
// induction hypothesis always covers exactly the equalities the encoded
// cones can see — a sound weakening of the global invariant (unencoded
// logic is unobservable by the obligation).
func (in *inst) linkHypothesis() {
	for t := range in.anchors {
		for ci, cls := range in.e.classes {
			for _, m := range cls {
				l := in.frames[t][m]
				if l == litUnset || in.linked[t][m] {
					continue
				}
				if in.anchors[t][ci] == litUnset {
					in.anchors[t][ci] = l
				} else {
					sat.Equal(in.s, in.anchors[t][ci], l)
				}
				in.linked[t][m] = true
			}
		}
	}
}

// hypoRepair checks the trace induced by an extracted model against every
// class equality at the hypothesis frames. A violated class means the
// model exploited logic the lazy encoding had not constrained yet — the
// counterexample is spurious. The violated members are encoded and linked
// so the re-solve sees the stronger hypothesis. Encoded cones always agree
// with the simulation (both are the same boolean function of the same
// state and PI bits), so a violation implies at least one member was
// unencoded and every repair makes progress; a clean trace is a genuine
// counterexample. Reports whether anything new was encoded.
func (in *inst) hypoRepair(c *cex, K int) bool {
	e := in.e
	g := e.g
	vals := make([]uint64, g.NumNodes())
	nxt := make([]uint64, len(g.Latches()))
	for i, la := range g.Latches() {
		vals[la.Out] = c.state[i]
	}
	repaired := false
	for t := 0; t < K; t++ {
		if t < len(c.pis) {
			for j, pi := range g.PIs() {
				vals[pi] = c.pis[t][j]
			}
		}
		e.evalFrame(vals)
		for _, cls := range e.classes {
			w0 := vals[cls[0]]
			ok := true
			for _, m := range cls[1:] {
				if vals[m] != w0 {
					ok = false
					break
				}
			}
			if ok {
				continue
			}
			for _, m := range cls {
				if in.frames[t][m] == litUnset {
					in.nodeLit(t, m)
					repaired = true
				}
			}
		}
		e.advance(vals, nxt)
	}
	if repaired {
		in.linkHypothesis()
	}
	return repaired
}

// stepSolve discharges one induction-step obligation under hypothesis
// CEGAR: spurious models strengthen the encoded hypothesis and re-solve;
// only invariant-consistent counterexamples escape. This recovers the
// precision of a monolithic encoding while keeping UNSAT queries — the
// overwhelming majority — cone-local.
func (e *engine) stepSolve(step *inst, d sat.Lit, nFrames, K int, po bool) (sat.Status, *cex) {
	for {
		st := step.s.Solve(d)
		if st != sat.Sat {
			return st, nil
		}
		c := e.extract(step, false, po, nFrames)
		if !step.hypoRepair(c, K) {
			return st, c
		}
	}
}

// runChunk discharges one shard's obligations on two private lazily-built
// solvers: a K-induction step instance carrying the visible class
// constraints as hypothesis, and a bounded base instance from the initial
// states. Each obligation is an assumption probe on a fresh XOR gate, so
// learned clauses accumulate across the whole shard.
func (e *engine) runChunk(ctx context.Context, ch chunk) (chunkResult, error) {
	var cr chunkResult
	K := e.opt.K
	delay := e.opt.Delay
	step := e.newInst(K+1, false, K)
	base := e.newInst(delay+K, true, 0)

	collect := func() {
		cr.stats.Solves = step.s.Stats.Solves + base.s.Stats.Solves
		cr.stats.Conflicts = step.s.Stats.Conflicts + base.s.Stats.Conflicts
		cr.stats.Decisions = step.s.Stats.Decisions + base.s.Stats.Decisions
		cr.stats.Propagations = step.s.Stats.Propagations + base.s.Stats.Propagations
		cr.stats.Learned = step.s.Stats.Learned + base.s.Stats.Learned
		cr.stats.Restarts = step.s.Stats.Restarts + base.s.Stats.Restarts
	}

	for _, ci := range ch.classIdx {
		cls := e.classes[ci]
		rep := cls[0]
		broke := false
		for _, m := range cls[1:] {
			if broke {
				// A counterexample already refutes this class as stated;
				// the remaining members are re-grouped by refinement and
				// retried next round.
				break
			}
			if cerr := guard.Check(ctx, "sweep.chunk"); cerr != nil {
				collect()
				return cr, cerr
			}
			la, lb := step.nodeLit(K, rep), step.nodeLit(K, m)
			step.linkHypothesis()
			d := sat.XorGate(step.s, la, lb)
			switch st, c := e.stepSolve(step, d, K+1, K, false); st {
			case sat.Sat:
				cr.cexes = append(cr.cexes, c)
				broke = true
				continue
			case sat.Unknown:
				cr.unknowns = append(cr.unknowns, m)
				continue
			}
			for t := delay; t < delay+K && !broke; t++ {
				d := sat.XorGate(base.s, base.nodeLit(t, rep), base.nodeLit(t, m))
				switch base.s.Solve(d) {
				case sat.Sat:
					cr.cexes = append(cr.cexes, e.extract(base, true, false, delay+K))
					broke = true
				case sat.Unknown:
					cr.unknowns = append(cr.unknowns, m)
					t = delay + K // one abandonment is enough for this member
				}
			}
		}
	}

	if ch.pos {
		for _, pp := range e.pos {
			if cerr := guard.Check(ctx, "sweep.chunk"); cerr != nil {
				collect()
				return cr, cerr
			}
			// Base cycles delay..delay+K-1: a model here is a concrete
			// input sequence from the initial states — a real disproof.
			for t := delay; t < delay+K; t++ {
				d := sat.XorGate(base.s, base.aigLit(t, pp.A), base.aigLit(t, pp.B))
				switch base.s.Solve(d) {
				case sat.Sat:
					cr.poFail = &NotEquivalentError{PO: pp.Name, Cycle: t}
					collect()
					return cr, nil
				case sat.Unknown:
					cr.poUnknown++
				}
			}
			// Step: under the hypothesis the pair must agree at frame K-1,
			// covering every cycle ≥ delay+K-1.
			la, lb := step.aigLit(K-1, pp.A), step.aigLit(K-1, pp.B)
			step.linkHypothesis()
			d := sat.XorGate(step.s, la, lb)
			switch st, c := e.stepSolve(step, d, K, K, true); st {
			case sat.Sat:
				cr.cexes = append(cr.cexes, c)
			case sat.Unknown:
				cr.poUnknown++
			}
		}
	}
	collect()
	return cr, nil
}

// extract reads a counterexample out of a freshly Sat instance: the
// frame-0 latch state and every frame's PI bits, broadcast to 64-lane
// words. Nodes the lazy encoding never touched are unconstrained — any
// value extends the model, so they read as 0.
func (e *engine) extract(in *inst, isBase, po bool, nFrames int) *cex {
	g := e.g
	lats := g.Latches()
	bit := func(t int, id int32) bool {
		l := in.frames[t][id]
		return l != litUnset && in.s.ValueLit(l)
	}
	c := &cex{base: isBase, po: po}
	c.state = make([]uint64, len(lats))
	if isBase {
		c.xmask = make([]bool, len(lats))
	}
	for i := range lats {
		if bit(0, lats[i].Out) {
			c.state[i] = ^uint64(0)
		}
		if isBase && lats[i].Init == network.VX {
			c.xmask[i] = true
		}
	}
	c.pis = make([][]uint64, nFrames)
	for t := 0; t < nFrames; t++ {
		c.pis[t] = make([]uint64, len(g.PIs()))
		for j, pi := range g.PIs() {
			if bit(t, pi) {
				c.pis[t][j] = ^uint64(0)
			}
		}
	}
	return c
}
