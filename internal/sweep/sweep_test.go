package sweep_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/network"
	"repro/internal/sweep"
)

// build constructs a registry circuit by name.
func build(t *testing.T, name string) *network.Network {
	t.Helper()
	c, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("circuit %q not in registry", name)
	}
	n, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const twins = `
.model twins
.inputs x
.outputs o
.latch d q1 0
.latch d q2 0
.latch z  q3 0
.names x q1 d
10 1
01 1
.names q1 q2 o
11 1
.names q3 z
1 1
.end
`

// TestRegistersTwins proves the hand-built equivalences: q1 and q2 share
// a driver and an initial value, q3 feeds itself from 0 and is stuck at
// the constant.
func TestRegistersTwins(t *testing.T) {
	n, err := blif.ParseString(twins)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Registers(context.Background(), n, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 1 || !reflect.DeepEqual(res.Classes[0], []int{0, 1}) {
		t.Fatalf("Classes = %v, want [[0 1]]", res.Classes)
	}
	if !reflect.DeepEqual(res.Const, []int{2}) {
		t.Fatalf("Const = %v, want [2]", res.Const)
	}
	if res.Rounds == 0 || res.SatCalls == 0 {
		t.Fatalf("no proof effort recorded: %+v", res)
	}
}

// TestProveEquivalentSelf proves a circuit against its own clone; the
// product AIG strashes both halves onto the same nodes, so every output
// obligation is trivially UNSAT.
func TestProveEquivalentSelf(t *testing.T) {
	n := build(t, "bbtas")
	res, err := sweep.ProveEquivalent(context.Background(), n, n.Clone(), 0, sweep.Options{})
	if err != nil {
		t.Fatalf("self-equivalence not proved: %v", err)
	}
	if res.SatCalls == 0 && res.Candidates > 0 {
		t.Fatalf("candidates without proof effort: %+v", res)
	}
}

const one0 = `
.model m
.inputs x
.outputs o
.latch d q 0
.names x q d
10 1
01 1
.names q o
1 1
.end
`

const one1 = `
.model m
.inputs x
.outputs o
.latch d q 1
.names x q d
10 1
01 1
.names q o
1 1
.end
`

// TestProveEquivalentDisproof: identical next-state logic but different
// initial values — the outputs differ at cycle 0, and the base instance
// must produce a genuine bounded counterexample, not ErrUnknown.
func TestProveEquivalentDisproof(t *testing.T) {
	a, err := blif.ParseString(one0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := blif.ParseString(one1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sweep.ProveEquivalent(context.Background(), a, b, 0, sweep.Options{})
	var ne *sweep.NotEquivalentError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want *NotEquivalentError", err)
	}
	if ne.PO != "o" || ne.Cycle != 0 {
		t.Fatalf("counterexample = %+v, want PO o at cycle 0", ne)
	}
}

// TestDelayedDisproof: with a delayed-replacement prefix the same pair
// becomes equivalent (the initial-value difference washes out after one
// cycle through the shared next-state function? it does not for this
// self-loop — but a delay of 0 vs 1 must at least change the reported
// cycle). Here we pin the delay plumbing: the cycle-0 difference is
// ignored at delay 1, so any disproof must quote a cycle >= 1.
func TestDelayedDisproofHonoursPrefix(t *testing.T) {
	a, err := blif.ParseString(one0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := blif.ParseString(one1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sweep.ProveEquivalent(context.Background(), a, b, 1, sweep.Options{})
	var ne *sweep.NotEquivalentError
	if errors.As(err, &ne) && ne.Cycle < 1 {
		t.Fatalf("disproof cycle %d inside the delay-1 prefix", ne.Cycle)
	}
}

// TestSweepDeterminism demands byte-identical results at any worker
// width: the fixed chunking must make the counterexample stream — and
// through it every derived number — independent of scheduling.
func TestSweepDeterminism(t *testing.T) {
	for _, name := range []string{"planet", "s510", "s820"} {
		n := build(t, name)
		var got []*sweep.Result
		for _, workers := range []int{1, 8} {
			res, err := sweep.Registers(context.Background(), n, sweep.Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			res.Wall = 0
			got = append(got, res)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Fatalf("%s: workers=1 gave %+v, workers=8 gave %+v", name, got[0], got[1])
		}
	}
}

// TestCancellation: an already-cancelled context must abort the sweep
// with an error instead of running the full proof.
func TestCancellation(t *testing.T) {
	n := build(t, "planet")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sweep.Registers(ctx, n, sweep.Options{}); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}
