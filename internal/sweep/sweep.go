// Package sweep implements SAT-based sequential sweeping: simulation-
// guided equivalence proving over And-Inverter Graphs in the style of
// van Eijk. Exact BDD reachability (internal/reach) stops at 32 latches;
// sweeping replaces the reachable-state computation with an inductive
// argument that scales to tens of thousands of registers:
//
//  1. Random 64-lane simulation from the initial states partitions the
//     registers and internal AIG nodes into candidate equivalence
//     classes by packed-word digest (bitsim.MixSig).
//  2. Each candidate pair becomes two proof obligations on an
//     incremental CDCL solver (internal/sat): a K-induction step over
//     the class constraints, and a bounded base check from the initial
//     states. Counterexamples are re-simulated 64 lanes wide, so one
//     SAT model refines every class at once, not just the failing pair.
//  3. The loop converges when a whole round of obligations is UNSAT:
//     the surviving partition is then a proven inductive invariant —
//     every class equality holds in all reachable states from cycle
//     Delay on.
//
// Refinement only ever splits classes, so the result is sound even when
// the conflict budget abandons an obligation (the member just leaves its
// class). Chunked proof obligations are sharded across parexec with
// index-ordered merging; the fixed chunking depends only on the class
// structure, so results are byte-identical at any -workers width.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/aig"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/parexec"
)

// ErrUnknown reports that induction was inconclusive: nothing was
// disproved, but the candidate invariant is too weak (or the conflict
// budget too small) to finish the proof.
var ErrUnknown = errors.New("sweep: induction inconclusive (raise -induction-k or the conflict budget)")

// NotEquivalentError is a genuine disproof: a concrete input sequence
// from the initial states on which a primary output pair differs at or
// after the delayed-replacement prefix.
type NotEquivalentError struct {
	PO    string
	Cycle int
}

func (e *NotEquivalentError) Error() string {
	return fmt.Sprintf("sweep: PO %q differs at cycle %d (bounded counterexample from the initial states)", e.PO, e.Cycle)
}

// Options configures a sweep.
type Options struct {
	// K is the induction depth (default 1).
	K int
	// Delay is the delayed-replacement prefix: class and output equalities
	// are required to hold from cycle Delay on only.
	Delay int
	// SimWords is the number of 64-lane random simulation blocks used for
	// candidate discovery (default 4).
	SimWords int
	// SimSteps is the number of clocked steps per simulation block
	// (default 64).
	SimSteps int
	// Workers bounds the parallel proof shards (default: all cores).
	Workers int
	// MaxConflicts is the per-obligation CDCL conflict budget; an
	// obligation that exhausts it is abandoned and its member leaves the
	// class (default 16384).
	MaxConflicts int64
	// MaxFrames refuses instances whose unrolling Delay+K exceeds it
	// (default 96).
	MaxFrames int
	// Seed drives every random choice (default 1).
	Seed int64
	// Tracer receives sweep.* spans and solver counters; nil is valid.
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.SimWords <= 0 {
		o.SimWords = 4
	}
	if o.SimSteps <= 0 {
		o.SimSteps = 64
	}
	if o.MaxConflicts <= 0 {
		o.MaxConflicts = 16384
	}
	if o.MaxFrames <= 0 {
		o.MaxFrames = 96
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result carries the proven partition and the solver effort behind it.
type Result struct {
	// Classes are the proven register equivalence classes as latch
	// indices (ascending; classes ordered by first member). Every pair in
	// a class is equal in all reachable states from cycle Delay on.
	Classes [][]int
	// Const lists latches proven stuck at constant 0.
	Const []int
	// NodeEquivs counts all proven pairwise equivalences, including
	// internal AIG nodes.
	NodeEquivs int
	// Candidates counts the simulation-suggested pairs before proving.
	Candidates int
	Rounds     int
	// Cexes counts SAT counterexamples that refined the partition.
	Cexes int
	// Unknowns counts obligations abandoned on the conflict budget.
	Unknowns     int
	SatCalls     int64
	Conflicts    int64
	Learned      int64
	Restarts     int64
	Propagations int64
	Wall         time.Duration
}

// Registers proves register equivalence classes of one network by
// K-induction. The classes are valid in every reachable state (from cycle
// opt.Delay on) and can be fed to dontcare.Classes as DCret exactly like
// retiming-induced ones. Abandoned obligations shrink classes instead of
// failing the call.
func Registers(ctx context.Context, n *network.Network, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	sp := opt.Tracer.Begin("sweep.registers")
	defer sp.End()
	g, err := aig.FromNetwork(n)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	e := newEngine(g, nil, opt)
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	res := e.result()
	record(sp, res)
	return res, nil
}

// ProveEquivalent proves sequential equivalence of two networks under the
// delayed-replacement prefix by sweeping their product AIG: shared PIs,
// both latch sets, and every name-matched PO pair as an extra proof
// obligation. A nil error is a proof ("proved-by-induction"); a
// *NotEquivalentError is a genuine bounded disproof; ErrUnknown means the
// invariant was too weak to decide. The Result carries solver statistics
// in every outcome that ran the engine.
func ProveEquivalent(ctx context.Context, a, b *network.Network, delay int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	opt.Delay = delay
	sp := opt.Tracer.Begin("sweep.prove")
	defer sp.End()
	g, pos, err := aig.FromProduct(a, b)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	e := newEngine(g, pos, opt)
	err = e.run(ctx)
	res := e.result()
	record(sp, res)
	if err != nil {
		return res, err
	}
	return res, nil
}

func record(sp *obs.Span, res *Result) {
	sp.Add("sweep_classes_proved", int64(len(res.Classes)))
	sp.Add("sweep_cex_refinements", int64(res.Cexes))
	sp.Add("sat_conflicts", res.Conflicts)
	sp.Add("sat_learned_clauses", res.Learned)
	sp.Add("sat_calls", res.SatCalls)
}

// engine is one sweep run over one AIG.
type engine struct {
	g   *aig.Graph
	pos []aig.ProductPO
	opt Options

	objs       []int32       // candidate object nodes: const 0, latch outputs, ANDs
	latchIdxOf map[int32]int // latch output node -> latch index
	classes    [][]int32     // current partition; members ascending, rep = first
	// dirty marks members of classes changed by the latest refinement;
	// incremental rounds re-prove only classes holding a dirty member.
	dirty map[int32]bool

	res Result
}

func newEngine(g *aig.Graph, pos []aig.ProductPO, opt Options) *engine {
	e := &engine{g: g, pos: pos, opt: opt, dirty: make(map[int32]bool)}
	e.latchIdxOf = make(map[int32]int, len(g.Latches()))
	for i, la := range g.Latches() {
		e.latchIdxOf[la.Out] = i
	}
	e.objs = append(e.objs, 0)
	for id := int32(1); id < int32(g.NumNodes()); id++ {
		if g.IsAnd(id) {
			e.objs = append(e.objs, id)
			continue
		}
		if _, ok := e.latchIdxOf[id]; ok {
			e.objs = append(e.objs, id)
		}
	}
	return e
}

// run drives candidate discovery and the refinement loop to convergence.
func (e *engine) run(ctx context.Context) error {
	start := time.Now()
	defer func() { e.res.Wall = time.Since(start) }()
	if e.opt.Delay+e.opt.K > e.opt.MaxFrames {
		return fmt.Errorf("sweep: unrolling depth %d exceeds MaxFrames %d: %w",
			e.opt.Delay+e.opt.K, e.opt.MaxFrames, ErrUnknown)
	}
	e.candidates()
	for _, cls := range e.classes {
		e.res.Candidates += len(cls) - 1
	}
	maxRounds := e.res.Candidates + len(e.pos) + 8
	// Incremental rounds re-prove only classes the latest refinement
	// touched — their obligations are the ones most likely to fail again.
	// A clean incremental round is NOT a proof (an untouched class may
	// have leaned on a refuted equality), so it escalates to a full round;
	// only a clean full round certifies the partition.
	fullRound := true
	for {
		if cerr := guard.Check(ctx, "sweep.run"); cerr != nil {
			return fmt.Errorf("sweep: interrupted at round %d: %w", e.res.Rounds, cerr)
		}
		if len(e.classes) == 0 && len(e.pos) == 0 {
			return nil
		}
		var active []int
		for i, cls := range e.classes {
			if !fullRound && !e.anyDirty(cls) {
				continue
			}
			active = append(active, i)
		}
		e.res.Rounds++
		chunks := e.makeChunks(active)
		results, err := parexec.Map(ctx, e.opt.Workers, chunks,
			func(ctx context.Context, _ int, ch chunk) (chunkResult, error) {
				return e.runChunk(ctx, ch)
			})
		if err != nil {
			return fmt.Errorf("sweep: round %d: %w", e.res.Rounds, err)
		}
		// Index-ordered merge: identical at any worker width.
		var cexes []*cex
		var unknowns []int32
		var poFail error
		poUnknown := 0
		for _, cr := range results {
			cexes = append(cexes, cr.cexes...)
			unknowns = append(unknowns, cr.unknowns...)
			poUnknown += cr.poUnknown
			if cr.poFail != nil && poFail == nil {
				poFail = cr.poFail
			}
			e.res.Cexes += len(cr.cexes)
			e.res.Unknowns += len(cr.unknowns) + cr.poUnknown
			e.res.SatCalls += cr.stats.Solves
			e.res.Conflicts += cr.stats.Conflicts
			e.res.Learned += cr.stats.Learned
			e.res.Restarts += cr.stats.Restarts
			e.res.Propagations += cr.stats.Propagations
		}
		if poFail != nil {
			return poFail
		}
		if len(cexes) == 0 && len(unknowns) == 0 && poUnknown == 0 {
			if fullRound {
				return nil // a fully UNSAT full round: the partition is proven
			}
			fullRound = true
			continue
		}
		fullRound = false
		e.dirty = make(map[int32]bool)
		progress := false
		for i, c := range cexes {
			seed := mix64(uint64(e.opt.Seed), uint64(e.res.Rounds)<<20|uint64(i))
			if e.replay(c, seed) {
				progress = true
			}
		}
		for _, m := range unknowns {
			if e.dropMember(m) {
				progress = true
			}
		}
		if !progress || e.res.Rounds > maxRounds {
			// Only output obligations are failing and the invariant
			// language (node equivalences) cannot be strengthened further.
			return ErrUnknown
		}
	}
}

func (e *engine) anyDirty(cls []int32) bool {
	for _, m := range cls {
		if e.dirty[m] {
			return true
		}
	}
	return false
}

// dropMember removes an abandoned obligation's member from its class
// unless refinement already separated it from the representative.
func (e *engine) dropMember(m int32) bool {
	for ci, cls := range e.classes {
		for mi, id := range cls {
			if id != m || mi == 0 {
				continue
			}
			if len(cls) <= 2 {
				e.classes = append(e.classes[:ci], e.classes[ci+1:]...)
			} else {
				e.classes[ci] = append(cls[:mi:mi], cls[mi+1:]...)
			}
			for _, s := range cls {
				e.dirty[s] = true
			}
			return true
		}
	}
	return false
}

// result maps the converged node partition onto latch indices.
func (e *engine) result() *Result {
	res := &e.res
	for _, cls := range e.classes {
		res.NodeEquivs += len(cls) - 1
		var idxs []int
		hasConst := false
		for _, m := range cls {
			if m == 0 {
				hasConst = true
				continue
			}
			if li, ok := e.latchIdxOf[m]; ok {
				idxs = append(idxs, li)
			}
		}
		if hasConst {
			res.Const = append(res.Const, idxs...)
		}
		if len(idxs) >= 2 {
			res.Classes = append(res.Classes, idxs)
		}
	}
	return res
}

func mix64(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
