package sweep

import (
	"repro/internal/aig"
	"repro/internal/bitsim"
	"repro/internal/network"
)

// 64-lane two-valued simulation directly over the AIG. The engine only
// ever simulates from initial states or from SAT counterexamples, both of
// which assign every input, so the dual-rail X tracking of bitsim is not
// needed here — one word per node, bitwise-parallel lanes.

// evalFrame fills the AND-node words from the already-set CI words.
func (e *engine) evalFrame(vals []uint64) {
	g := e.g
	vals[0] = 0
	for id := int32(1); id < int32(g.NumNodes()); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.Fanins(id)
		a := vals[f0.Node()]
		if f0.Compl() {
			a = ^a
		}
		b := vals[f1.Node()]
		if f1.Compl() {
			b = ^b
		}
		vals[id] = a & b
	}
}

func litWord(vals []uint64, l aig.Lit) uint64 {
	w := vals[l.Node()]
	if l.Compl() {
		return ^w
	}
	return w
}

// advance clocks the registers: every latch output takes its next-state
// word. nxt is a scratch buffer of len(latches).
func (e *engine) advance(vals, nxt []uint64) {
	lats := e.g.Latches()
	for i := range lats {
		nxt[i] = litWord(vals, lats[i].Next)
	}
	for i := range lats {
		vals[lats[i].Out] = nxt[i]
	}
}

func splitmix(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// candidates partitions the object nodes into initial equivalence classes
// by their simulation digest: SimWords blocks of 64 random trajectories
// from the initial states, digesting every step at or past the
// delayed-replacement prefix.
func (e *engine) candidates() {
	g := e.g
	nn := g.NumNodes()
	digest := make([]uint64, nn)
	vals := make([]uint64, nn)
	nxt := make([]uint64, len(g.Latches()))
	for w := 0; w < e.opt.SimWords; w++ {
		st := mix64(uint64(e.opt.Seed), 0xC4D1F00D+uint64(w))
		for _, la := range g.Latches() {
			switch la.Init {
			case network.V0:
				vals[la.Out] = 0
			case network.V1:
				vals[la.Out] = ^uint64(0)
			default:
				vals[la.Out] = splitmix(&st)
			}
		}
		for step := 0; step < e.opt.Delay+e.opt.SimSteps; step++ {
			for _, pi := range g.PIs() {
				vals[pi] = splitmix(&st)
			}
			e.evalFrame(vals)
			if step >= e.opt.Delay {
				for _, id := range e.objs {
					digest[id] = bitsim.MixSig(digest[id], vals[id], ^vals[id])
				}
			}
			e.advance(vals, nxt)
		}
	}
	classAt := make(map[uint64]int)
	var classes [][]int32
	for _, id := range e.objs {
		d := digest[id]
		ci, ok := classAt[d]
		if !ok {
			classAt[d] = len(classes)
			classes = append(classes, []int32{id})
			continue
		}
		classes[ci] = append(classes[ci], id)
	}
	for _, cls := range classes {
		if len(cls) >= 2 {
			e.classes = append(e.classes, cls)
		}
	}
}

// cex is one SAT counterexample, stored as broadcast words (every lane
// carries the model bit; replay perturbs the lanes that may legally
// diverge).
type cex struct {
	base bool
	// po marks a step counterexample against an output obligation: its
	// final frame is hypothesis-constrained, so no lane may perturb and
	// replay cannot refine anything (the stall is detected by run).
	po bool
	// state is the frame-0 word per latch (initial state for base cexes,
	// the hypothesis-satisfying start state for step cexes).
	state []uint64
	// xmask marks base-cex latches whose initial value is unconstrained
	// (VX): lanes 1-63 may randomize them.
	xmask []bool
	// pis[t][j] is PI j's word at frame t.
	pis [][]uint64
}

// replay re-simulates a counterexample 64 lanes wide and refines every
// class with it. Lane 0 replays the SAT model exactly, so the failing
// pair is guaranteed to split; the other 63 lanes perturb exactly the
// inputs that keep each visited refinement state legal:
//
//   - base cexes are genuine trajectories from the initial states, so
//     free (VX) initial values and every frame's PIs randomize, and the
//     run continues past the recorded trace for extra reachable frames;
//   - step cexes must keep frames 0..K-1 inside the induction
//     hypothesis, so only the final frame's PIs randomize.
//
// Refining only with such states keeps the loop converging toward the
// greatest fixpoint instead of over-splitting on illegal states.
func (e *engine) replay(c *cex, seed uint64) bool {
	g := e.g
	vals := make([]uint64, g.NumNodes())
	nxt := make([]uint64, len(g.Latches()))
	st := seed
	for i, la := range g.Latches() {
		w := c.state[i]
		if c.base && c.xmask[i] {
			w = w&1 | splitmix(&st)&^1
		}
		vals[la.Out] = w
	}
	frames := len(c.pis)
	extra := 0
	if c.base {
		extra = 8
	}
	changed := false
	for t := 0; t < frames+extra; t++ {
		for j, pi := range g.PIs() {
			var w uint64
			if t < frames {
				w = c.pis[t][j]
				if c.base || (t == frames-1 && !c.po) {
					w = w&1 | splitmix(&st)&^1
				}
			} else {
				w = splitmix(&st)
			}
			vals[pi] = w
		}
		e.evalFrame(vals)
		refine := false
		if c.base {
			refine = t >= e.opt.Delay
		} else {
			refine = t == frames-1
		}
		if refine && e.refineAt(vals) {
			changed = true
		}
		e.advance(vals, nxt)
	}
	return changed
}

// refineAt splits every class whose members disagree on the current
// words. Splitting is stable: members keep their ascending order, groups
// appear in first-member order, singletons vanish.
func (e *engine) refineAt(vals []uint64) bool {
	changed := false
	var next [][]int32
	for _, cls := range e.classes {
		w0 := vals[cls[0]]
		same := true
		for _, m := range cls[1:] {
			if vals[m] != w0 {
				same = false
				break
			}
		}
		if same {
			next = append(next, cls)
			continue
		}
		changed = true
		for _, m := range cls {
			e.dirty[m] = true
		}
		var order []uint64
		groups := make(map[uint64][]int32)
		for _, m := range cls {
			w := vals[m]
			if _, ok := groups[w]; !ok {
				order = append(order, w)
			}
			groups[w] = append(groups[w], m)
		}
		for _, w := range order {
			if grp := groups[w]; len(grp) >= 2 {
				next = append(next, grp)
			}
		}
	}
	e.classes = next
	return changed
}
