package sweep_test

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bdd"
	"repro/internal/bench"
	"repro/internal/reach"
	"repro/internal/sweep"
)

// reachPartition computes the ground-truth register equivalence classes
// from exact BDD reachability: latches i and j are equal iff
// Reachable ∧ (xi ⊕ xj) is empty. Returned in the same canonical form as
// sweep.Result.Classes (members ascending, classes by first member).
func reachPartition(a *reach.Analysis) [][]int {
	L := len(a.N.Latches)
	parent := make([]int, L)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < L; i++ {
		for j := i + 1; j < L; j++ {
			diff := a.M.Xor(a.M.Var(a.CurVar[i]), a.M.Var(a.CurVar[j]))
			if a.M.And(a.Reachable, diff) == bdd.False {
				parent[find(j)] = find(i)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < L; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Ints(g)
			out = append(out, g)
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x][0] < out[y][0] })
	return out
}

// TestPropertySweepMatchesReach pins the induction engine against exact
// reachability on every registry circuit the BDD engine can still handle:
// the sweep-proven register partition must match the reachable-state
// equivalence classes exactly — no unsound merge (soundness) and no pair
// lost to a spurious induction counterexample (precision at K=1 on this
// suite). Constant latches are additionally checked to be genuinely stuck
// on all reachable states.
func TestPropertySweepMatchesReach(t *testing.T) {
	tested := 0
	for _, c := range bench.TableI() {
		n, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Latches) > reach.DefaultLimits.MaxLatches {
			continue
		}
		a, err := reach.Analyze(n, reach.DefaultLimits)
		if errors.Is(err, reach.ErrTooLarge) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: reach: %v", c.Name, err)
		}
		want := reachPartition(a)
		res, err := sweep.Registers(context.Background(), n, sweep.Options{})
		if err != nil {
			t.Fatalf("%s: sweep: %v", c.Name, err)
		}
		got := res.Classes
		if got == nil {
			got = [][]int{}
		}
		if want == nil {
			want = [][]int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: sweep classes %v, reach classes %v", c.Name, got, want)
		}
		for _, li := range res.Const {
			if a.M.And(a.Reachable, a.M.Var(a.CurVar[li])) != bdd.False {
				t.Errorf("%s: latch %d reported constant 0 but reachable with value 1", c.Name, li)
			}
		}
		tested++
	}
	if tested < 5 {
		t.Fatalf("only %d circuits exercised — registry or limits changed?", tested)
	}
}
