// Package core implements the paper's contribution: performance-driven
// resynthesis by exploiting retiming-induced state register equivalence
// (Algorithm 1). Operating on the delay-critical path of a sequential
// circuit, it (1) makes the path fanout-free by gate duplication,
// (2) forward-retimes the registers feeding the path across their fanout
// stems — inducing register equivalences recorded as the don't-care set
// DCret, (3) forward-retimes registers across the path gates, computing
// initial states, (4) simplifies the relocated next-state logic using
// DCret, and (5) recovers registers with constrained min-area retiming
// under the achieved delay.
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dontcare"
	"repro/internal/guard"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/retime"
	"repro/internal/timing"
)

// Options configures the resynthesis.
type Options struct {
	// Delay is the timing model for critical-path extraction (unit delay
	// when nil).
	Delay timing.DelayModel
	// VertexDelay is the matching retiming-graph delay (unit when nil).
	VertexDelay retime.VertexDelay
	// MaxConeSupport bounds the support of a collapsed next-state cone
	// during DCret simplification (default 12).
	MaxConeSupport int
	// MaxConeCubes bounds intermediate cover sizes during cone collapsing
	// (default 512).
	MaxConeCubes int
	// KeepHarm keeps the resynthesized circuit even when its cycle time
	// regressed (the paper's reported behaviour on two benchmarks). When
	// false the original network is returned instead.
	KeepHarm bool
	// SkipMinArea disables the constrained min-area post-pass (ablation).
	SkipMinArea bool
	// DisableDCRet skips the don't-care simplification (ablation — the
	// paper: "without the don't care set no simplification could have
	// been achieved at all").
	DisableDCRet bool
	// Tracer receives per-pass spans and transformation counters (nil:
	// no tracing, zero overhead).
	Tracer *obs.Tracer
}

func (o *Options) defaults() {
	if o.Delay == nil {
		o.Delay = timing.UnitDelay{}
	}
	if o.VertexDelay == nil {
		o.VertexDelay = retime.UnitVertexDelay
	}
	if o.MaxConeSupport == 0 {
		o.MaxConeSupport = 12
	}
	if o.MaxConeCubes == 0 {
		o.MaxConeCubes = 512
	}
}

// Result reports what the resynthesis did.
type Result struct {
	// Network is the resynthesized circuit (the original when !Applied).
	Network *network.Network
	// Applied tells whether the technique restructured the circuit.
	Applied bool
	// Reason explains a non-application.
	Reason string
	// PrefixK is the number of atomic fanout-stem moves: the delayed-
	// replacement prefix length for verification.
	PrefixK int
	// Simplified counts cones/nodes improved with DCret.
	Simplified int
	// Duplicated counts gates duplicated for fanout-freedom.
	Duplicated int
	// ForwardMoves counts forward retimings across gates.
	ForwardMoves int
	// LitsSaved is the SOP-literal reduction achieved by the DCret
	// simplification step (0 when the step did not fire).
	LitsSaved                 int
	PeriodBefore, PeriodAfter float64
	RegsBefore, RegsAfter     int
}

// Resynthesize runs one pass of Algorithm 1 on a copy of the network.
// With Options.Tracer set it reports a "core.resynthesize" span whose
// transformation counters (gates_duplicated, stems_split, dcret_pairs,
// regs_forward_moved, cones_simplified, lits_saved) are emitted only when
// the pass applies, so aggregated counters always describe the returned
// circuit; a declined pass records resyn_declined instead.
func Resynthesize(n *network.Network, opt Options) (*Result, error) {
	return ResynthesizeCtx(context.Background(), n, opt)
}

// ResynthesizeCtx is Resynthesize with cancellation: the Algorithm 1 steps
// (timing analysis, path retiming, DCret simplification, min-area recovery)
// check ctx between phases and return a typed guard budget error once the
// deadline passes.
func ResynthesizeCtx(ctx context.Context, n *network.Network, opt Options) (*Result, error) {
	opt.defaults()
	sp := opt.Tracer.Begin("core.resynthesize")
	defer sp.End()
	res, err := resynthesize(ctx, n, opt)
	if err != nil {
		sp.Add("resyn_error", 1)
		return nil, err
	}
	if res.Applied {
		sp.Add("gates_duplicated", int64(res.Duplicated))
		// stems_split counts atomic fanout-stem moves: a stem with m
		// consumers splits into m registers = m-1 moves. dcret_pairs is
		// the same quantity seen as induced equivalences, and both equal
		// the delayed-replacement prefix PrefixK.
		sp.Add("stems_split", int64(res.PrefixK))
		sp.Add("dcret_pairs", int64(res.PrefixK))
		sp.Add("regs_forward_moved", int64(res.ForwardMoves))
		sp.Add("cones_simplified", int64(res.Simplified))
		if res.LitsSaved > 0 {
			sp.Add("lits_saved", int64(res.LitsSaved))
		}
	} else {
		sp.Add("resyn_declined", 1)
	}
	return res, nil
}

func resynthesize(ctx context.Context, n *network.Network, opt Options) (*Result, error) {
	tr := opt.Tracer
	res := &Result{Network: n, RegsBefore: len(n.Latches), RegsAfter: len(n.Latches)}
	if cerr := guard.Check(ctx, "core.resynthesize"); cerr != nil {
		return nil, cerr
	}
	st := tr.Begin("sta")
	sta, err := timing.Analyze(n, opt.Delay)
	if err != nil {
		return nil, err
	}
	res.PeriodBefore = sta.Period
	res.PeriodAfter = sta.Period

	work := n.Clone()
	wsta, err := timing.Analyze(work, opt.Delay)
	if err != nil {
		return nil, err
	}
	_, path := wsta.CriticalPath()
	st.End()
	if len(path) == 0 {
		res.Reason = "no combinational critical path"
		return res, nil
	}

	// Step 1: make the critical path fanout-free by node duplication,
	// walking backward from the final connection of the longest path.
	st = tr.Begin("fanout_free")
	for i := len(path) - 2; i >= 0; i-- {
		if work.NumFanouts(path[i]) <= 1 {
			continue
		}
		dup := work.Duplicate(path[i])
		work.ReplaceFanin(path[i+1], path[i], dup)
		path[i] = dup
		res.Duplicated++
	}
	st.End()

	// Step 2: forward retime the registers fanning out to the path across
	// their fanout stems, recording the induced equivalences.
	st = tr.Begin("stem_retime")
	classes := dontcare.New()
	onPath := make(map[*network.Node]bool, len(path))
	for _, v := range path {
		onPath[v] = true
	}
	seen := make(map[*network.Latch]bool)
	var stemRegs []*network.Latch
	for _, v := range path {
		for _, fi := range v.Fanins {
			if fi.Kind != network.KindLatchOut {
				continue
			}
			l := work.LatchOfOutput(fi)
			if l != nil && !seen[l] {
				seen[l] = true
				stemRegs = append(stemRegs, l)
			}
		}
	}
	for _, l := range stemRegs {
		if work.NumFanouts(l.Output) < 2 {
			continue
		}
		created, err := retime.SplitFanoutStem(work, l)
		if err != nil {
			return nil, err
		}
		if len(created) > 1 {
			classes.AddClass(created)
			res.PrefixK += len(created) - 1
		}
	}
	st.End()
	if classes.NumClasses() == 0 {
		// "If no retimings across fanout stems, no DCret created, so the
		// circuit cannot be resynthesized by our technique."
		res.Reason = "critical path has no multiple-fanout registers to retime across stems"
		res.PrefixK = 0
		return res, nil
	}

	// Step 3: the retiming engine — forward retime across the critical
	// path nodes until no node is retimable.
	st = tr.Begin("path_retime")
	// The pass count is bounded by the path length: on feedback rings
	// whose side inputs are all registers, unbounded iteration would
	// circulate registers forever (the engine's O(n²) bound in the paper).
	engineRegs := make(map[*network.Latch]bool)
	for pass := 0; pass < len(path); pass++ {
		if cerr := guard.Check(ctx, "core.resynthesize"); cerr != nil {
			return nil, fmt.Errorf("core: path retiming interrupted at pass %d: %w", pass, cerr)
		}
		progress := false
		for _, v := range path {
			if work.FindNode(v.Name) != v {
				continue
			}
			if !retime.ForwardRetimable(work, v) {
				continue
			}
			nl, err := retime.Forward(work, v)
			if err != nil {
				return nil, err
			}
			engineRegs[nl] = true
			res.ForwardMoves++
			progress = true
		}
		if !progress {
			break
		}
	}
	classes.Prune(work)
	st.End()

	// Step 4: simplify the restructured next-state logic using DCret,
	// with local re-mapping (cone collapse) of the logic relocated behind
	// the engine-created registers.
	if cerr := guard.Check(ctx, "core.resynthesize"); cerr != nil {
		return nil, cerr
	}
	if !opt.DisableDCRet {
		st = tr.Begin("dcret_simplify")
		litsIn := work.NumLits()
		res.Simplified = simplifyWithDCRet(work, classes, engineRegs, opt)
		if d := litsIn - work.NumLits(); d > 0 {
			res.LitsSaved = d
		}
		st.End()
	}
	sweepDanglingLatches(work)
	work.Sweep()
	classes.Prune(work)

	// Step 5: constrained min-area retiming under the achieved delay.
	p, err := timing.Period(work, opt.Delay)
	if err != nil {
		return nil, err
	}
	if cerr := guard.Check(ctx, "core.resynthesize"); cerr != nil {
		return nil, cerr
	}
	if !opt.SkipMinArea {
		if ma, _, err := retime.MinAreaUnderPeriodCtx(ctx, work, opt.VertexDelay, p, tr); err == nil {
			if q, err2 := timing.Period(ma, opt.Delay); err2 == nil && q <= p+1e-9 {
				work = ma
			}
		}
		retime.MergeSiblingRegisters(work)
		sweepDanglingLatches(work)
	}
	p, err = timing.Period(work, opt.Delay)
	if err != nil {
		return nil, err
	}
	if err := work.Check(); err != nil {
		return nil, fmt.Errorf("core: resynthesized network invalid: %w", err)
	}
	if p >= res.PeriodBefore && !opt.KeepHarm {
		res.Reason = fmt.Sprintf("no cycle-time improvement (%.2f -> %.2f)", res.PeriodBefore, p)
		// The original network is returned: no stems were split in it, so
		// the delayed-replacement prefix (and DCret counters) reset.
		res.PrefixK = 0
		return res, nil
	}
	res.Network = work
	res.Applied = true
	res.PeriodAfter = p
	res.RegsAfter = len(work.Latches)
	return res, nil
}

// simplifyWithDCRet collapses the next-state cones (and PO cones) whose
// support contains equivalent registers and minimizes them against DCret;
// nodes whose cones are too large fall back to per-node simplification.
func simplifyWithDCRet(work *network.Network, classes *dontcare.Classes, engineRegs map[*network.Latch]bool, opt Options) int {
	improved := 0
	// Collect the distinct cone roots: latch drivers and PO drivers.
	// Drivers of engine-created registers additionally qualify for
	// DC-less collapse ("local node re-mapping" of the relocated block).
	rootSet := make(map[*network.Node]bool)
	relocated := make(map[*network.Node]bool)
	for _, l := range work.Latches {
		if l.Driver.Kind == network.KindLogic {
			rootSet[l.Driver] = true
			if engineRegs[l] {
				relocated[l.Driver] = true
			}
		}
	}
	for _, p := range work.POs {
		if p.Driver.Kind == network.KindLogic {
			rootSet[p.Driver] = true
		}
	}
	// Deepest cones first: a deep cone still sees the equivalent register
	// pairs in its support; once an enclosed shallow cone is rewritten
	// with the equivalence, the pair may vanish from enclosing supports.
	sta, err := timing.Analyze(work, opt.Delay)
	if err != nil {
		return 0
	}
	roots := make([]*network.Node, 0, len(rootSet))
	for r := range rootSet {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		ai, aj := sta.Arrival[roots[i]], sta.Arrival[roots[j]]
		if ai != aj {
			return ai > aj
		}
		return roots[i].Name < roots[j].Name
	})
	for _, root := range roots {
		if work.FindNode(root.Name) != root {
			continue // replaced during an earlier iteration
		}
		support, f, ok := collapseCone(work, root, opt)
		if !ok {
			continue
		}
		dc := classes.DCOver(work, support)
		if dc == nil && !relocated[root] {
			continue
		}
		s := logic.Simplify(f, dc)
		// Replacement criterion: with DCret, any literal reduction of the
		// collapsed form counts; for a relocated block without DC pairs,
		// the collapse must beat the cone's total cost to qualify as a
		// useful local re-mapping.
		if dc != nil {
			if s.NumLits() >= f.NumLits() {
				continue
			}
		} else {
			if s.NumLits() >= coneCost(work, root) {
				continue
			}
		}
		nn := work.AddLogic(root.Name+"_rs", support, s)
		work.TrimFanins(nn)
		work.RedirectConsumers(root, nn)
		work.Sweep()
		improved++
	}
	// Per-node pass over everything that still reads equivalent registers.
	for _, v := range work.Nodes() {
		if v.Kind == network.KindLogic && classes.SimplifyNodeLocal(work, v) {
			improved++
		}
	}
	return improved
}

// coneCost sums the SOP literal counts of the cone's nodes.
func coneCost(work *network.Network, root *network.Node) int {
	total := 0
	for v := range work.TransitiveFanin(root) {
		if v.Kind == network.KindLogic {
			total += v.Func.NumLits()
		}
	}
	return total
}

// collapseCone flattens the combinational cone of root into a single cover
// over its source support (register outputs and PIs), within the
// configured bounds.
func collapseCone(work *network.Network, root *network.Node, opt Options) ([]*network.Node, *logic.Cover, bool) {
	// Gather cone and support.
	var support []*network.Node
	supIdx := make(map[*network.Node]int)
	var cone []*network.Node
	visited := make(map[*network.Node]bool)
	var walk func(v *network.Node) bool
	walk = func(v *network.Node) bool {
		if visited[v] {
			return true
		}
		visited[v] = true
		if v.IsSource() {
			supIdx[v] = len(support)
			support = append(support, v)
			return len(support) <= opt.MaxConeSupport
		}
		for _, fi := range v.Fanins {
			if !walk(fi) {
				return false
			}
		}
		cone = append(cone, v) // post-order = topological within cone
		return true
	}
	if !walk(root) {
		return nil, nil, false
	}
	m := len(support)
	val := make(map[*network.Node]*logic.Cover, len(cone)+m)
	neg := make(map[*network.Node]*logic.Cover)
	for _, s := range support {
		c := logic.NewCover(m)
		cube := logic.NewCube(m)
		cube.SetLit(supIdx[s], logic.LitPos)
		c.Add(cube)
		val[s] = c
	}
	getNeg := func(x *network.Node) *logic.Cover {
		if g, ok := neg[x]; ok {
			return g
		}
		g := val[x].Complement()
		neg[x] = g
		return g
	}
	for _, v := range cone {
		f := logic.Zero(m)
		for _, c := range v.Func.Cubes {
			cur := logic.One(m)
			for pin := 0; pin < c.N; pin++ {
				var t *logic.Cover
				switch c.Lit(pin) {
				case logic.LitPos:
					t = val[v.Fanins[pin]]
				case logic.LitNeg:
					t = getNeg(v.Fanins[pin])
				default:
					continue
				}
				cur = logic.And(cur, t)
				if len(cur.Cubes) > opt.MaxConeCubes {
					return nil, nil, false
				}
				if len(cur.Cubes) == 0 {
					break
				}
			}
			f = logic.Or(f, cur)
			if len(f.Cubes) > opt.MaxConeCubes {
				return nil, nil, false
			}
		}
		f.Scc()
		val[v] = f
	}
	out := logic.Minimize(val[root])
	return support, out, true
}

// sweepDanglingLatches removes registers whose outputs feed nothing,
// repeating until stable (a removed register may strand its driver chain).
func sweepDanglingLatches(work *network.Network) int {
	removed := 0
	for {
		progress := false
		for _, l := range append([]*network.Latch(nil), work.Latches...) {
			if work.NumFanouts(l.Output) == 0 {
				work.RemoveLatch(l)
				removed++
				progress = true
			}
		}
		work.Sweep()
		if !progress {
			return removed
		}
	}
}

// ResynthesizeIterate applies Resynthesize repeatedly (each pass attacks
// the then-current critical path) until no further cycle-time improvement
// or maxPasses is reached. PrefixK accumulates across passes.
func ResynthesizeIterate(n *network.Network, opt Options, maxPasses int) (*Result, error) {
	return ResynthesizeIterateCtx(context.Background(), n, opt, maxPasses)
}

// ResynthesizeIterateCtx is ResynthesizeIterate with cancellation, checked
// before every pass and inside each pass's phases.
func ResynthesizeIterateCtx(ctx context.Context, n *network.Network, opt Options, maxPasses int) (*Result, error) {
	opt.defaults()
	if maxPasses < 1 {
		maxPasses = 1
	}
	sp := opt.Tracer.Begin("core.resynthesize_iterate")
	defer sp.End()
	cur := n
	var total *Result
	for pass := 0; pass < maxPasses; pass++ {
		r, err := ResynthesizeCtx(ctx, cur, opt)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = r
		} else if r.Applied {
			total.PrefixK += r.PrefixK
			total.Simplified += r.Simplified
			total.Duplicated += r.Duplicated
			total.ForwardMoves += r.ForwardMoves
			total.LitsSaved += r.LitsSaved
			total.PeriodAfter = r.PeriodAfter
			total.RegsAfter = r.RegsAfter
			total.Network = r.Network
			total.Applied = true
		}
		if !r.Applied || r.PeriodAfter >= r.PeriodBefore {
			break
		}
		cur = r.Network
	}
	if total.Network == nil {
		total.Network = n
	}
	return total, nil
}
