package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/sim"
)

// TestStructuralSyncSequenceSurvivesResynthesis exercises the Section II
// theory: structural synchronizing sequences (conservative 3-valued
// simulation) are preserved under retiming, and functional equivalence
// needs only a prefix of k arbitrary vectors before the original sequence
// (delayed replacement, El-Maleh et al. / Singhal et al.).
//
// We build a resettable FSM, find a structural synchronizing sequence for
// the original, resynthesize, and check that (prefix of k arbitrary
// vectors) + (the original sequence) drives the resynthesized machine to a
// state from which both machines agree forever.
func TestStructuralSyncSequenceSurvivesResynthesis(t *testing.T) {
	orig := resettableFSM(t)
	seq, ok := sim.SynchronizingSequence(orig, 8, 100, 31)
	if !ok {
		t.Fatal("original machine must have a structural synchronizing sequence")
	}

	res, err := Resynthesize(orig, Options{KeepHarm: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Skipf("resynthesis declined on this machine: %s", res.Reason)
	}

	so, err := sim.New(orig)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sim.New(res.Network)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the resynthesized machine from the all-X state: k arbitrary
	// vectors (zeros), then the original synchronizing sequence.
	x := make([]network.Value, len(res.Network.Latches))
	for i := range x {
		x[i] = network.VX
	}
	sr.SetState(x)
	arb := make([]bool, len(res.Network.PIs))
	toPI := func(s *sim.Simulator, bits []bool) map[*network.Node]network.Value {
		m := make(map[*network.Node]network.Value, len(bits))
		for i, p := range s.N.PIs {
			if bits[i] {
				m[p] = network.V1
			} else {
				m[p] = network.V0
			}
		}
		return m
	}
	for k := 0; k < res.PrefixK; k++ {
		sr.Step3(toPI(sr, arb))
	}
	for _, bits := range seq {
		sr.Step3(toPI(sr, bits))
	}
	if !sr.AllDefined() {
		t.Fatal("prefixed structural synchronizing sequence did not synchronize the resynthesized machine")
	}

	// Drive the original from reset through the same prefix + sequence,
	// then compare outputs on a long random tail.
	so.Reset()
	for k := 0; k < res.PrefixK; k++ {
		so.StepBits(arb)
	}
	for _, bits := range seq {
		so.StepBits(bits)
	}
	rnd := int64(977)
	r := newRand(rnd)
	tail := make([]bool, len(orig.PIs))
	for c := 0; c < 500; c++ {
		for i := range tail {
			tail[i] = r.Intn(2) == 1
		}
		oa := so.StepBits(tail)
		ob := sr.StepBits(tail)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("outputs diverge at tail cycle %d after synchronization", c)
			}
		}
	}
}

// resettableFSM: the paper-example structure plus an explicit reset input
// that forces every register, guaranteeing a structural synchronizing
// sequence exists.
func resettableFSM(t *testing.T) *network.Network {
	t.Helper()
	n := bench.BuildPaperExample()
	// Gate every register driver with NOT(reset).
	rst := n.AddPI("rst")
	inv := mustCover(t, 1, "0")
	and2 := mustCover(t, 2, "11")
	nrst := n.AddLogic("nrst", []*network.Node{rst}, inv)
	for _, l := range n.Latches {
		g := n.AddLogic("rg_"+l.Name, []*network.Node{l.Driver, nrst}, and2.Clone())
		l.Driver = g
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	return n
}

// Small local helpers keeping the test self-contained.

func mustCover(t *testing.T, n int, cubes ...string) *logic.Cover {
	t.Helper()
	return logic.MustParseCover(n, cubes...)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
