package core

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/network"
)

// TestCollapseConeMatchesNetworkSemantics: the flattened cover of a cone
// must agree with node-by-node evaluation of the network on every support
// assignment, across random circuits.
func TestCollapseConeMatchesNetworkSemantics(t *testing.T) {
	opt := Options{}
	opt.defaults()
	for seed := int64(1); seed <= 15; seed++ {
		n := bench.Synthetic(bench.Profile{
			Name: "c", PIs: 3, POs: 2, FFs: 3, Gates: 10, Seed: seed,
		})
		for _, po := range n.POs {
			root := po.Driver
			if root.Kind != network.KindLogic {
				continue
			}
			support, f, ok := collapseCone(n, root, opt)
			if !ok {
				continue
			}
			if len(support) > 10 {
				continue
			}
			// Exhaustive comparison over the support.
			for mt := 0; mt < 1<<uint(len(support)); mt++ {
				val := map[*network.Node]bool{}
				assign := make([]bool, len(support))
				for i, s := range support {
					assign[i] = mt&(1<<uint(i)) != 0
					val[s] = assign[i]
				}
				want := evalNode(root, val)
				if f.Eval(assign) != want {
					t.Fatalf("seed %d root %s: collapsed cover differs at %b",
						seed, root.Name, mt)
				}
			}
		}
	}
}

// evalNode evaluates a node recursively given source values.
func evalNode(v *network.Node, val map[*network.Node]bool) bool {
	if b, ok := val[v]; ok {
		return b
	}
	assign := make([]bool, len(v.Fanins))
	for i, fi := range v.Fanins {
		assign[i] = evalNode(fi, val)
	}
	b := v.Func.Eval(assign)
	val[v] = b
	return b
}

// TestCollapseConeRespectsBounds: tight limits must produce a clean
// refusal, never a wrong cover.
func TestCollapseConeRespectsBounds(t *testing.T) {
	n := bench.Synthetic(bench.Profile{
		Name: "b", PIs: 6, POs: 1, FFs: 6, Gates: 40, Seed: 5,
	})
	tight := Options{MaxConeSupport: 2, MaxConeCubes: 4}
	tight.defaults()
	tight.MaxConeSupport = 2
	tight.MaxConeCubes = 4
	refused := 0
	for _, po := range n.POs {
		if po.Driver.Kind != network.KindLogic {
			continue
		}
		if _, _, ok := collapseCone(n, po.Driver, tight); !ok {
			refused++
		}
	}
	if refused == 0 {
		t.Skip("no large cones in this profile (acceptable)")
	}
}

// TestConeCost sanity.
func TestConeCost(t *testing.T) {
	n := network.New("cc")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g1 := n.AddLogic("g1", []*network.Node{a, b}, logic.MustParseCover(2, "11"))
	g2 := n.AddLogic("g2", []*network.Node{g1, a}, logic.MustParseCover(2, "1-", "-1"))
	n.AddPO("y", g2)
	if got := coneCost(n, g2); got != 4 {
		t.Fatalf("coneCost = %d, want 4 (2+2 literals)", got)
	}
}

// TestSweepDanglingLatchesChains: removing a latch may strand a whole
// driver chain of latches; the sweep must fix the chain transitively.
func TestSweepDanglingLatchesChains(t *testing.T) {
	n := network.New("chain")
	a := n.AddPI("a")
	l1 := n.AddLatch("q1", a, network.V0)
	l2 := n.AddLatch("q2", l1.Output, network.V0)
	l3 := n.AddLatch("q3", l2.Output, network.V0)
	_ = l3 // q3 output feeds nothing
	n.AddPO("y", a)
	removed := sweepDanglingLatches(n)
	if removed != 3 {
		t.Fatalf("removed %d latches, want the whole chain of 3", removed)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestResynthesizeStressMediumCircuits runs Algorithm 1 over a batch of
// medium random circuits and verifies every applied result.
func TestResynthesizeStressMediumCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(2026))
	applied := 0
	for trial := 0; trial < 10; trial++ {
		n := bench.Synthetic(bench.Profile{
			Name: "m", PIs: 2 + r.Intn(4), POs: 1 + r.Intn(3),
			FFs: 3 + r.Intn(5), Gates: 12 + r.Intn(24), Seed: int64(trial) + 500,
		})
		res, err := Resynthesize(n, Options{KeepHarm: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Applied {
			continue
		}
		applied++
		if err := res.Network.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if applied == 0 {
		t.Fatal("resynthesis never applied across the stress batch")
	}
}
