package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/network"
	"repro/internal/retime"
	"repro/internal/seqverify"
	"repro/internal/sim"
	"repro/internal/timing"
)

// TestPaperWorkedExample replays the Section III story on the
// reconstructed Fig. 4–6 circuit: delay-optimized 3 → conventional
// retiming 2 → resynthesis 1.
func TestPaperWorkedExample(t *testing.T) {
	orig := bench.BuildPaperExample()
	if err := orig.Check(); err != nil {
		t.Fatal(err)
	}
	p0, err := timing.Period(orig, timing.UnitDelay{})
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 3 {
		t.Fatalf("original period = %v, want 3", p0)
	}

	// Conventional min-period retiming reaches 2 (Fig. 4b).
	ret, info, err := retime.MinPeriod(orig, nil)
	if err != nil {
		t.Fatalf("conventional retiming failed: %v", err)
	}
	if info.PeriodAfter != 2 {
		t.Fatalf("conventional retiming period = %v, want 2", info.PeriodAfter)
	}
	if err := seqverify.Equivalent(orig, ret, seqverify.Options{}); err != nil {
		t.Fatalf("conventional retiming not equivalent: %v", err)
	}

	// The paper's resynthesis reaches 1 (Fig. 5d).
	res, err := Resynthesize(orig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatalf("resynthesis not applied: %s", res.Reason)
	}
	if res.PeriodAfter != 1 {
		t.Fatalf("resynthesis period = %v, want 1", res.PeriodAfter)
	}
	if res.PrefixK == 0 {
		t.Fatal("stem splits must contribute a delayed-replacement prefix")
	}
	if res.Simplified == 0 {
		t.Fatal("DCret simplification must fire on the worked example")
	}
	// Delayed replacement with prefix k must hold exactly.
	if err := seqverify.Equivalent(orig, res.Network, seqverify.Options{Delay: res.PrefixK}); err != nil {
		t.Fatalf("resynthesized circuit not delayed-equivalent: %v", err)
	}
	if err := res.Network.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPaperExampleRegisterEconomy: the min-area post-pass must keep the
// register increase modest ("We strive to minimize the increase in number
// of registers without sacrificing the cycle-time performance").
func TestPaperExampleRegisterEconomy(t *testing.T) {
	orig := bench.BuildPaperExample()
	res, err := Resynthesize(orig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatal(res.Reason)
	}
	noMA, err := Resynthesize(orig, Options{SkipMinArea: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RegsAfter > noMA.RegsAfter {
		t.Fatalf("min-area post-pass increased registers: %d vs %d",
			res.RegsAfter, noMA.RegsAfter)
	}
	if res.RegsAfter > res.RegsBefore+3 {
		t.Fatalf("register inflation too large: %d -> %d", res.RegsBefore, res.RegsAfter)
	}
}

// TestDCRetAblation: with the don't-care set disabled, no simplification is
// possible and the forward retiming alone must not beat conventional
// retiming (the paper: "without the don't care set, no simplification
// could have been achieved at all").
func TestDCRetAblation(t *testing.T) {
	orig := bench.BuildPaperExample()
	res, err := Resynthesize(orig, Options{DisableDCRet: true, KeepHarm: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simplified != 0 {
		t.Fatal("ablation must not simplify")
	}
	if res.Applied && res.PeriodAfter < 2 {
		t.Fatalf("period %v without DCret is impossible", res.PeriodAfter)
	}
	// Even the harmed circuit must remain behaviourally correct.
	if res.Applied {
		if err := seqverify.Equivalent(orig, res.Network, seqverify.Options{Delay: res.PrefixK}); err != nil {
			t.Fatalf("ablated result not equivalent: %v", err)
		}
	}
}

// TestPipelineNotApplicable: Section IV — pipelines without feedback gain
// nothing; the single-fanout-register case returns the original circuit.
func TestPipelineNotApplicable(t *testing.T) {
	pipe := bench.BuildPipelineExample()
	res, err := Resynthesize(pipe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied {
		t.Fatalf("pipeline must not benefit (period %v -> %v)", res.PeriodBefore, res.PeriodAfter)
	}
	if res.Network != pipe {
		t.Fatal("original network must be returned unchanged")
	}
}

func TestSingleFanoutNotApplicable(t *testing.T) {
	n := bench.BuildSingleFanoutExample()
	res, err := Resynthesize(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied {
		t.Fatal("single-fanout registers cannot be retimed across stems")
	}
	if res.Reason == "" {
		t.Fatal("non-application must carry a reason")
	}
}

// TestResynthesizeIterate: iterating must never return a slower circuit
// and must preserve delayed-replacement equivalence with the accumulated
// prefix.
func TestResynthesizeIterate(t *testing.T) {
	orig := bench.BuildPaperExample()
	res, err := ResynthesizeIterate(orig, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatal(res.Reason)
	}
	if res.PeriodAfter > res.PeriodBefore {
		t.Fatalf("iteration made things worse: %v -> %v", res.PeriodBefore, res.PeriodAfter)
	}
	if err := seqverify.Equivalent(orig, res.Network, seqverify.Options{Delay: res.PrefixK}); err != nil {
		t.Fatalf("iterated result not equivalent: %v", err)
	}
}

// TestResynthesizeRandomFSMs: resynthesis of randomly structured FSMs
// must always produce verified circuits (or decline).
func TestResynthesizeRandomFSMs(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := bench.Synthetic(bench.Profile{
			Name: "rnd", PIs: 3, POs: 2, FFs: 4, Gates: 14, Seed: seed,
		})
		if err := n.Check(); err != nil {
			t.Fatalf("seed %d: invalid synthetic circuit: %v", seed, err)
		}
		res, err := Resynthesize(n, Options{KeepHarm: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Applied {
			continue
		}
		if err := res.Network.Check(); err != nil {
			t.Fatalf("seed %d: invalid result: %v", seed, err)
		}
		if err := seqverify.Equivalent(n, res.Network, seqverify.Options{Delay: res.PrefixK}); err != nil {
			t.Fatalf("seed %d: not equivalent: %v", seed, err)
		}
	}
}

// TestHarmReversion: with KeepHarm=false (default), a pass that slows the
// circuit returns the original.
func TestHarmReversion(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := bench.Synthetic(bench.Profile{
			Name: "h", PIs: 2, POs: 1, FFs: 3, Gates: 10, Seed: seed,
		})
		p0, err := timing.Period(n, timing.UnitDelay{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Resynthesize(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p1, err := timing.Period(res.Network, timing.UnitDelay{})
		if err != nil {
			t.Fatal(err)
		}
		if p1 > p0 {
			t.Fatalf("seed %d: default options returned a slower circuit (%v -> %v)", seed, p0, p1)
		}
	}
}

// TestPaperExampleBehaviour drives the resynthesized worked example with
// long random input sequences as an independent cross-check of the BDD
// verifier.
func TestPaperExampleBehaviour(t *testing.T) {
	orig := bench.BuildPaperExample()
	res, err := Resynthesize(orig, Options{})
	if err != nil || !res.Applied {
		t.Fatalf("apply failed: %v %v", err, res)
	}
	if err := sim.RandomEquivalent(orig, res.Network, res.PrefixK, 2000, 99); err != nil {
		t.Fatalf("simulation mismatch: %v", err)
	}
}

// TestForwardRetimableDefinition pins the paper's definition: a node is
// forward-retimable iff it contains only registers as fanins.
func TestForwardRetimableDefinition(t *testing.T) {
	n := bench.BuildPaperExample()
	g1 := n.FindNode("g1")
	if !retime.ForwardRetimable(n, g1) {
		t.Fatal("g1 (all-register fanins) must be retimable")
	}
	g3 := n.FindNode("g3")
	if retime.ForwardRetimable(n, g3) {
		t.Fatal("g3 has a PI fanin; not retimable")
	}
	var lo *network.Node
	for _, v := range n.Nodes() {
		if v.Kind == network.KindLatchOut {
			lo = v
		}
	}
	if retime.ForwardRetimable(n, lo) {
		t.Fatal("latch outputs are not retimable nodes")
	}
}
