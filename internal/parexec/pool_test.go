package parexec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 64)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatal("submit refused with free queue")
		}
	}
	p.Close()
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	defer p.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		p.TrySubmit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", got, workers)
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	p.TrySubmit(func() { defer wg.Done(); <-block }) // occupies the worker
	// Fill the queue, then expect refusal.
	for !p.TrySubmit(func() {}) {
		time.Sleep(time.Millisecond) // until the worker picked up task 1
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted with a full queue")
	}
	if p.QueueLen() != 1 || p.Running() != 1 {
		t.Fatalf("queue=%d running=%d, want 1/1", p.QueueLen(), p.Running())
	}
	close(block)
	wg.Wait()
	p.Close()
}

func TestPoolContainsPanics(t *testing.T) {
	p := NewPool(2, 8)
	var recovered atomic.Value
	p.OnPanic = func(r any) { recovered.Store(r) }
	var ok atomic.Bool
	p.TrySubmit(func() { panic("job exploded") })
	p.TrySubmit(func() { ok.Store(true) })
	p.Close()
	if !ok.Load() {
		t.Fatal("pool died after a panicking task")
	}
	if recovered.Load() != "job exploded" {
		t.Fatalf("OnPanic got %v", recovered.Load())
	}
}

func TestPoolCloseIsIdempotentAndRefuses(t *testing.T) {
	p := NewPool(2, 8)
	p.Close()
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Fatal("closed pool accepted work")
	}
}

func TestPoolBlockingSubmitDrainsThroughSmallQueue(t *testing.T) {
	// 30 tasks pushed through a 1-deep queue by a single worker: Submit
	// must block instead of dropping, and every task must run.
	p := NewPool(1, 1)
	var ran atomic.Int64
	for i := 0; i < 30; i++ {
		if !p.Submit(func() { ran.Add(1) }) {
			t.Fatal("Submit refused on an open pool")
		}
	}
	p.Close()
	if got := ran.Load(); got != 30 {
		t.Fatalf("ran %d of 30 tasks", got)
	}
	if p.Submit(func() {}) {
		t.Fatal("Submit accepted on a closed pool")
	}
}

// TestPoolQueueFullPanicCancelSameTick drives the three failure modes at
// once: the single worker is wedged in a task that will panic, the queue
// slot is held by a second panicking task, and a CloseWait with an
// already-cancelled context is in flight. The pool must refuse new work
// (backpressure), report not-drained on the cancelled wait, then contain
// both panics and drain cleanly once the wedge releases.
func TestPoolQueueFullPanicCancelSameTick(t *testing.T) {
	p := NewPool(1, 1)
	var panics atomic.Int64
	p.OnPanic = func(any) { panics.Add(1) }
	entered := make(chan struct{})
	block := make(chan struct{})
	p.TrySubmit(func() {
		close(entered)
		<-block
		panic("worker exploded")
	})
	<-entered // the worker is now wedged
	if !p.TrySubmit(func() { panic("queued exploded") }) {
		t.Fatal("queue slot refused while free")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted with a wedged worker and a full queue")
	}
	if p.QueueLen() != 1 || p.Running() != 1 {
		t.Fatalf("queue=%d running=%d, want 1/1", p.QueueLen(), p.Running())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if p.CloseWait(ctx) {
		t.Fatal("CloseWait reported drained under a cancelled context with work in flight")
	}
	// CloseWait began the close: submissions must now refuse even though
	// the queue has drained space pending.
	if p.TrySubmit(func() {}) {
		t.Fatal("closing pool accepted work")
	}
	close(block)
	if !p.CloseWait(context.Background()) {
		t.Fatal("pool did not drain after the wedge released")
	}
	if got := panics.Load(); got != 2 {
		t.Fatalf("contained %d panics, want 2 (worker + queued)", got)
	}
	if p.Running() != 0 || p.QueueLen() != 0 {
		t.Fatalf("running=%d queue=%d after drain, want 0/0", p.Running(), p.QueueLen())
	}
	p.Close() // idempotent after CloseWait
}

func TestPoolCloseWait(t *testing.T) {
	p := NewPool(1, 4)
	block := make(chan struct{})
	p.TrySubmit(func() { <-block })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if p.CloseWait(ctx) {
		t.Fatal("CloseWait reported drained while a task was blocked")
	}
	close(block)
	if !p.CloseWait(context.Background()) {
		t.Fatal("CloseWait must drain once tasks finish")
	}
	p.Close() // still idempotent afterwards
}
