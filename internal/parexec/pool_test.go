package parexec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 64)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatal("submit refused with free queue")
		}
	}
	p.Close()
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	defer p.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		p.TrySubmit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", got, workers)
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	p.TrySubmit(func() { defer wg.Done(); <-block }) // occupies the worker
	// Fill the queue, then expect refusal.
	for !p.TrySubmit(func() {}) {
		time.Sleep(time.Millisecond) // until the worker picked up task 1
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted with a full queue")
	}
	if p.QueueLen() != 1 || p.Running() != 1 {
		t.Fatalf("queue=%d running=%d, want 1/1", p.QueueLen(), p.Running())
	}
	close(block)
	wg.Wait()
	p.Close()
}

func TestPoolContainsPanics(t *testing.T) {
	p := NewPool(2, 8)
	var recovered atomic.Value
	p.OnPanic = func(r any) { recovered.Store(r) }
	var ok atomic.Bool
	p.TrySubmit(func() { panic("job exploded") })
	p.TrySubmit(func() { ok.Store(true) })
	p.Close()
	if !ok.Load() {
		t.Fatal("pool died after a panicking task")
	}
	if recovered.Load() != "job exploded" {
		t.Fatalf("OnPanic got %v", recovered.Load())
	}
}

func TestPoolCloseIsIdempotentAndRefuses(t *testing.T) {
	p := NewPool(2, 8)
	p.Close()
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Fatal("closed pool accepted work")
	}
}
