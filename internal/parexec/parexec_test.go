package parexec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive counts must pass through")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-4) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive counts must select GOMAXPROCS")
	}
}

// TestMapOrdered checks results land at their input index for every worker
// count, including counts above the item count.
func TestMapOrdered(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i * 10
	}
	for _, w := range []int{1, 2, 3, 8, 64} {
		out, err := Map(context.Background(), w, items, func(_ context.Context, idx int, item int) (string, error) {
			if idx%3 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return fmt.Sprintf("%d:%d", idx, item), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, s := range out {
			if want := fmt.Sprintf("%d:%d", i, i*10); s != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", w, i, s, want)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, _ int, _ int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
}

// TestMapFirstError checks that an error stops new items from starting and
// is the error returned, for sequential and parallel paths alike.
func TestMapFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		var started int32
		items := make([]int, 100)
		_, err := Map(context.Background(), w, items, func(ctx context.Context, idx int, _ int) (int, error) {
			atomic.AddInt32(&started, 1)
			if idx == 3 {
				return 0, boom
			}
			return idx, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if n := atomic.LoadInt32(&started); n == 100 {
			t.Fatalf("workers=%d: error did not stop the sweep", w)
		}
	}
}

// TestMapCancellation checks an external cancel drains the pool promptly.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done int32
	items := make([]int, 1000)
	go func() {
		for atomic.LoadInt32(&done) < 5 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err := Map(ctx, 4, items, func(ctx context.Context, idx int, _ int) (int, error) {
		atomic.AddInt32(&done, 1)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
			return idx, nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&done); n == 1000 {
		t.Fatal("cancellation did not stop the sweep")
	}
}

// TestMapPanicPropagates checks a worker panic resurfaces on the caller's
// goroutine after the pool has fully stopped (no detached goroutine death,
// no write to results racing the re-panic).
func TestMapPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", w)
				}
				if s, ok := r.(string); !ok || s != "kaboom" {
					t.Fatalf("workers=%d: panic value mangled: %v", w, r)
				}
			}()
			Map(context.Background(), w, make([]int, 16), func(_ context.Context, idx int, _ int) (int, error) {
				if idx == 7 {
					panic("kaboom")
				}
				return idx, nil
			})
		}()
	}
}

// TestMapDeterministicAggregate runs the same workload at several worker
// counts and requires the concatenated output to be byte-identical — the
// property tablegen's table depends on.
func TestMapDeterministicAggregate(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	run := func(w int) string {
		out, err := Map(context.Background(), w, items, func(_ context.Context, idx int, item int) (string, error) {
			return fmt.Sprintf("row %02d value %d\n", idx, item*item), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, r := range out {
			s += r
		}
		return s
	}
	want := run(1)
	for _, w := range []int{2, 4, 16} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d output differs from sequential", w)
		}
	}
}
