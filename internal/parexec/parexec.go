// Package parexec is the deterministic worker pool behind the parallel
// evaluation flows: tablegen's circuit×flow matrix, benchflows and the
// fault-acceptance sweep all fan their independent work items through it.
//
// Determinism contract: results are collected by input index, so Map's
// output (and therefore anything serialized from it, such as Table-I rows
// or JSONL trace streams) is byte-identical regardless of worker count or
// scheduling. Workers must not share mutable state — callers hand each
// item a private clone (guard.Tx already clones per pass) and a private
// tracer, which the caller merges back in index order.
package parexec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count flag: values <= 0 select GOMAXPROCS,
// anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// panicError carries a worker panic back to the caller's goroutine so it
// can be re-raised there with the original value preserved.
type panicError struct {
	item int
	val  interface{}
}

func (p *panicError) Error() string {
	return fmt.Sprintf("parexec: worker panic on item %d: %v", p.item, p.val)
}

// Map runs fn over every item with at most workers goroutines and returns
// the results in input order. The first error cancels the remaining,
// not-yet-started items (in-flight items run to completion) and is
// returned; results computed before the failure are still present in the
// slice. A worker panic is captured and re-raised on the calling
// goroutine once all workers have stopped, so deferred cleanup in the
// caller still runs and no goroutine dies detached.
//
// fn receives the item index and the context; it must treat everything it
// touches as goroutine-private (see the package comment).
func Map[I, O any](ctx context.Context, workers int, items []I, fn func(ctx context.Context, idx int, item I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		// Run inline: identical semantics, zero goroutine overhead, and the
		// exact path the determinism test compares the pool against.
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			r, err := fn(ctx, i, it)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(items) || firstErr != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 || ctx.Err() != nil {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							err = &panicError{item: i, val: r}
						}
					}()
					r, err := fn(ctx, i, items[i])
					if err == nil {
						out[i] = r
					}
					return err
				}()
				if err != nil {
					setErr(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if pe, ok := firstErr.(*panicError); ok {
		panic(pe.val)
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}
