package parexec

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool is the long-lived counterpart of Map for server workloads
// (internal/serve): a fixed set of worker goroutines draining a bounded
// task queue. Where Map is batch-oriented — it owns its items, returns
// ordered results, and re-raises worker panics on the caller — a Pool
// serves an open-ended stream of independent jobs whose results are
// delivered out of band (each job records into its own state), so the
// contract differs in two ways:
//
//   - Backpressure instead of blocking: TrySubmit refuses work when the
//     queue is full, so an HTTP front end can answer 503 instead of
//     stalling its accept loop.
//   - Containment instead of re-raise: a panicking task must not take the
//     whole service down; it is routed to the OnPanic hook (tasks that
//     want typed errors wrap themselves in guard.Run, as the serving
//     layer does).
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	senders sync.WaitGroup // blocking Submits in flight, gates close(tasks)
	running atomic.Int64
	// OnPanic, when non-nil, receives values recovered from panicking
	// tasks. Set it before the first Submit; a nil hook discards the
	// value (the pool never crashes the process).
	OnPanic func(recovered any)
}

// NewPool starts workers goroutines (normalized via Workers) over a task
// queue of the given capacity (minimum 1).
func NewPool(workers, queue int) *Pool {
	if queue < 1 {
		queue = 1
	}
	p := &Pool{tasks: make(chan func(), queue)}
	for w := 0; w < Workers(workers); w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				p.run(fn)
			}
		}()
	}
	return p
}

func (p *Pool) run(fn func()) {
	p.running.Add(1)
	defer p.running.Add(-1)
	defer func() {
		if r := recover(); r != nil && p.OnPanic != nil {
			p.OnPanic(r)
		}
	}()
	fn()
}

// TrySubmit enqueues fn, or reports false when the pool is closed or the
// queue is full (backpressure: the caller decides whether to shed or
// retry).
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Submit enqueues fn, blocking while the queue is full, and reports false
// only when the pool is already closed. It exists for boot-time batch
// enqueues (crash recovery re-submits an arbitrary backlog through a
// fixed-size queue while the workers are already draining it); request
// paths keep using TrySubmit so live traffic sheds instead of stalling.
func (p *Pool) Submit(fn func()) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	// The senders group keeps close(tasks) from racing this send: Close
	// flips closed first (no new senders), then waits the group out.
	p.senders.Add(1)
	p.mu.Unlock()
	p.tasks <- fn
	p.senders.Done()
	return true
}

// QueueLen reports the number of tasks waiting for a worker.
func (p *Pool) QueueLen() int { return len(p.tasks) }

// Running reports the number of tasks currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// beginClose flips the pool into its closing state exactly once: no new
// submissions are accepted, and the task channel is closed as soon as the
// last blocking Submit has handed off its task.
func (p *Pool) beginClose() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		go func() {
			p.senders.Wait()
			close(p.tasks)
		}()
	}
	p.mu.Unlock()
}

// Close stops accepting work and waits for queued and in-flight tasks to
// finish. Idempotent.
func (p *Pool) Close() {
	p.beginClose()
	p.wg.Wait()
}

// CloseWait stops accepting work and waits for queued and in-flight tasks
// up to the context deadline. It reports true when the pool fully drained;
// on false the workers keep running their current tasks to completion in
// the background (the graceful-shutdown caller exits anyway). Idempotent
// and safe to combine with Close.
func (p *Pool) CloseWait(ctx context.Context) bool {
	p.beginClose()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		return false
	}
}
