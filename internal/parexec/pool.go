package parexec

import (
	"sync"
	"sync/atomic"
)

// Pool is the long-lived counterpart of Map for server workloads
// (internal/serve): a fixed set of worker goroutines draining a bounded
// task queue. Where Map is batch-oriented — it owns its items, returns
// ordered results, and re-raises worker panics on the caller — a Pool
// serves an open-ended stream of independent jobs whose results are
// delivered out of band (each job records into its own state), so the
// contract differs in two ways:
//
//   - Backpressure instead of blocking: TrySubmit refuses work when the
//     queue is full, so an HTTP front end can answer 503 instead of
//     stalling its accept loop.
//   - Containment instead of re-raise: a panicking task must not take the
//     whole service down; it is routed to the OnPanic hook (tasks that
//     want typed errors wrap themselves in guard.Run, as the serving
//     layer does).
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	running atomic.Int64
	// OnPanic, when non-nil, receives values recovered from panicking
	// tasks. Set it before the first Submit; a nil hook discards the
	// value (the pool never crashes the process).
	OnPanic func(recovered any)
}

// NewPool starts workers goroutines (normalized via Workers) over a task
// queue of the given capacity (minimum 1).
func NewPool(workers, queue int) *Pool {
	if queue < 1 {
		queue = 1
	}
	p := &Pool{tasks: make(chan func(), queue)}
	for w := 0; w < Workers(workers); w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				p.run(fn)
			}
		}()
	}
	return p
}

func (p *Pool) run(fn func()) {
	p.running.Add(1)
	defer p.running.Add(-1)
	defer func() {
		if r := recover(); r != nil && p.OnPanic != nil {
			p.OnPanic(r)
		}
	}()
	fn()
}

// TrySubmit enqueues fn, or reports false when the pool is closed or the
// queue is full (backpressure: the caller decides whether to shed or
// retry).
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// QueueLen reports the number of tasks waiting for a worker.
func (p *Pool) QueueLen() int { return len(p.tasks) }

// Running reports the number of tasks currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Close stops accepting work and waits for queued and in-flight tasks to
// finish. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
