package seqverify

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/reach"
)

const cnt2 = `
.model cnt2
.inputs en
.outputs carry
.latch d0 s0 0
.latch d1 s1 0
.names s0 en d0
10 1
01 1
.names s0 en t0
11 1
.names s1 t0 d1
10 1
01 1
.names s1 s0 carry
11 1
.end
`

func TestSelfEquivalence(t *testing.T) {
	n, err := blif.ParseString(cnt2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(n, n.Clone(), Options{}); err != nil {
		t.Fatalf("network not equivalent to clone: %v", err)
	}
}

func TestDetectsFunctionalBug(t *testing.T) {
	n, _ := blif.ParseString(cnt2)
	m := n.Clone()
	c := m.FindNode("carry")
	m.SetFunction(c, c.Fanins, logic.MustParseCover(2, "1-", "-1"))
	if err := Equivalent(n, m, Options{}); err == nil {
		t.Fatal("OR-for-AND bug not detected")
	}
}

func TestDetectsInitStateBug(t *testing.T) {
	n, _ := blif.ParseString(cnt2)
	m := n.Clone()
	m.Latches[0].Init = network.V1
	if err := Equivalent(n, m, Options{}); err == nil {
		t.Fatal("initial-state difference not detected")
	}
}

// buildDelayed builds a machine whose output replays the input k cycles
// later through a shift chain with the given initial values.
func buildDelayed(inits []network.Value) *network.Network {
	n := network.New("shift")
	a := n.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	prev := a
	for i, init := range inits {
		l := n.AddLatch("q"+string(rune('0'+i)), prev, init)
		prev = l.Output
	}
	o := n.AddLogic("o", []*network.Node{prev}, buf.Clone())
	n.AddPO("y", o)
	return n
}

func TestDelayedReplacement(t *testing.T) {
	// Two 2-stage shifters differing only in initial contents: equal from
	// cycle 2 onward, different before.
	a := buildDelayed([]network.Value{network.V0, network.V0})
	b := buildDelayed([]network.Value{network.V1, network.V1})
	if err := Equivalent(a, b, Options{Delay: 0}); err == nil {
		t.Fatal("initial transient must fail safe replacement")
	}
	if err := Equivalent(a, b, Options{Delay: 1}); err == nil {
		t.Fatal("one cycle is not enough for a depth-2 pipeline")
	}
	if err := Equivalent(a, b, Options{Delay: 2}); err != nil {
		t.Fatalf("delay-2 replacement must hold: %v", err)
	}
}

func TestStemSplitEquivalence(t *testing.T) {
	// The paper's Fig. 2/3 situation: register R with two fanouts vs the
	// forward-retimed version with registers R1, R2 (same init). The
	// machines are equivalent under delayed replacement with k = 1 (and in
	// fact also safe here because the inits are equal).
	orig := network.New("orig")
	a := orig.AddPI("a")
	buf := logic.MustParseCover(1, "1")
	and2 := logic.MustParseCover(2, "11")
	or2 := logic.MustParseCover(2, "1-", "-1")
	l := orig.AddLatch("r", a, network.V0)
	g1 := orig.AddLogic("g1", []*network.Node{l.Output, a}, and2.Clone())
	g2 := orig.AddLogic("g2", []*network.Node{l.Output, a}, or2.Clone())
	out := orig.AddLogic("out", []*network.Node{g1, g2}, logic.MustParseCover(2, "10", "01"))
	orig.AddPO("y", out)
	_ = buf

	split := network.New("split")
	a2 := split.AddPI("a")
	l1 := split.AddLatch("r1", a2, network.V0)
	l2 := split.AddLatch("r2", a2, network.V0)
	h1 := split.AddLogic("g1", []*network.Node{l1.Output, a2}, and2.Clone())
	h2 := split.AddLogic("g2", []*network.Node{l2.Output, a2}, or2.Clone())
	out2 := split.AddLogic("out", []*network.Node{h1, h2}, logic.MustParseCover(2, "10", "01"))
	split.AddPO("y", out2)

	if err := Equivalent(orig, split, Options{Delay: 0}); err != nil {
		t.Fatalf("stem split with equal inits must be safe-equivalent: %v", err)
	}
	if err := Equivalent(orig, split, Options{Delay: 1}); err != nil {
		t.Fatalf("and surely delayed-equivalent: %v", err)
	}
}

func TestPOMatchingByName(t *testing.T) {
	n, _ := blif.ParseString(cnt2)
	m := n.Clone()
	m.POs[0].Name = "other"
	if err := Equivalent(n, m, Options{}); err == nil {
		t.Fatal("missing PO name must be reported")
	}
}

func TestTooLarge(t *testing.T) {
	n, _ := blif.ParseString(cnt2)
	m := n.Clone()
	if err := Equivalent(n, m, Options{Limits: reach.Limits{MaxLatches: 3}}); err != ErrTooLarge {
		t.Fatalf("latch limit not applied: %v", err)
	}
}

// TestCheckProvedByInduction drives the sweep fallback: a 21-register
// circuit makes the product machine (42 registers) too large for exact
// reachability, so Check must first fail without Sweep and then prove
// the clone pair by induction with it.
func TestCheckProvedByInduction(t *testing.T) {
	c, ok := bench.ByName("s382")
	if !ok {
		t.Fatal("s382 not in registry")
	}
	n, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(context.Background(), n, n.Clone(), Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("without Sweep: err = %v, want ErrTooLarge", err)
	}
	v, err := Check(context.Background(), n, n.Clone(), Options{Sweep: true})
	if err != nil {
		t.Fatalf("with Sweep: %v", err)
	}
	if v != VerdictInduction {
		t.Fatalf("verdict = %q, want %q", v, VerdictInduction)
	}
}

// TestCheckExactVerdict: small machines keep the exact engine and its
// verdict.
func TestCheckExactVerdict(t *testing.T) {
	n, err := blif.ParseString(cnt2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Check(context.Background(), n, n.Clone(), Options{Sweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if v != VerdictExact {
		t.Fatalf("verdict = %q, want %q", v, VerdictExact)
	}
}
