// Package seqverify checks sequential equivalence of two networks by
// product-machine reachability, with the paper's *delayed replacement*
// semantics (Singhal et al.): the circuits must produce identical outputs
// on every input sequence from cycle k onward, where k is the number of
// atomic forward retiming moves across fanout stems. k = 0 is safe
// replacement (classic equivalence from the initial states).
package seqverify

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/guard"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/sweep"
)

// ErrTooLarge mirrors reach.ErrTooLarge for oversized product machines.
var ErrTooLarge = reach.ErrTooLarge

// Options configures the check.
type Options struct {
	// Delay is the delayed-replacement prefix length k.
	Delay int
	// Limits bounds the BDD work; zero-valued fields take reach defaults.
	Limits reach.Limits
	// Sweep enables the SAT-based fallback: when the product machine is
	// too large for exact reachability, Check proves equivalence by
	// K-induction over simulation-refined equivalence classes instead of
	// giving up.
	Sweep bool
	// InductionK is the induction depth of the sweep fallback (default 1).
	InductionK int
	// Workers bounds the sweep's parallel proof shards.
	Workers int
	// Tracer receives sweep spans; nil is valid.
	Tracer *obs.Tracer
}

// Verdict states how equivalence was established.
type Verdict string

const (
	// VerdictExact is a BDD product-machine reachability proof.
	VerdictExact Verdict = "exact"
	// VerdictInduction is a SAT-based K-induction proof over the product
	// AIG — used automatically when exact reachability is too large.
	VerdictInduction Verdict = "proved-by-induction"
)

// Check establishes sequential equivalence and reports how: exact BDD
// reachability when the product fits, otherwise (with opt.Sweep) a
// K-induction proof on the product AIG. A returned error that matches
// errors.Is(err, ErrTooLarge) means neither engine could decide — callers
// may still fall back to simulation-based spot checking. Any other error
// is a genuine refutation or resource failure.
func Check(ctx context.Context, a, b *network.Network, opt Options) (Verdict, error) {
	err := EquivalentCtx(ctx, a, b, opt)
	if err == nil {
		return VerdictExact, nil
	}
	if !opt.Sweep || !errors.Is(err, ErrTooLarge) {
		return "", err
	}
	_, serr := sweep.ProveEquivalent(ctx, a, b, opt.Delay, sweep.Options{
		K:       opt.InductionK,
		Workers: opt.Workers,
		Tracer:  opt.Tracer,
	})
	if serr == nil {
		return VerdictInduction, nil
	}
	if errors.Is(serr, sweep.ErrUnknown) {
		// Inconclusive, not refuted: keep the ErrTooLarge identity so
		// callers can still drop to their simulation fallback.
		return "", fmt.Errorf("seqverify: %v: %w", serr, ErrTooLarge)
	}
	return "", fmt.Errorf("seqverify: %w", serr)
}

type machine struct {
	n       *network.Network
	curVar  []int
	nextVar []int
	nodeFn  map[*network.Node]bdd.Ref
}

// Equivalent returns nil if the two networks are sequentially equivalent
// under the configured delayed-replacement prefix. POs and PIs are matched
// by name. A non-nil error describes the mismatch or a resource failure.
func Equivalent(a, b *network.Network, opt Options) error {
	return EquivalentCtx(context.Background(), a, b, opt)
}

// EquivalentCtx is Equivalent with cancellation: every image step of the
// product-machine traversal checks ctx and returns a typed guard budget
// error (errors.Is(err, guard.ErrBudget)) once the deadline passes.
func EquivalentCtx(ctx context.Context, a, b *network.Network, opt Options) (err error) {
	lim := opt.Limits
	if lim.MaxLatches == 0 {
		lim.MaxLatches = reach.DefaultLimits.MaxLatches
	}
	if lim.MaxBDDNodes == 0 {
		lim.MaxBDDNodes = reach.DefaultLimits.MaxBDDNodes
	}
	if len(a.Latches)+len(b.Latches) > lim.MaxLatches {
		return ErrTooLarge
	}
	if len(a.PIs) != len(b.PIs) {
		return fmt.Errorf("seqverify: PI counts differ (%d vs %d)", len(a.PIs), len(b.PIs))
	}
	// Match PIs of b by name, falling back to position.
	biByName := make(map[string]int, len(b.PIs))
	for i, p := range b.PIs {
		biByName[p.Name] = i
	}
	piOfB := make([]int, len(a.PIs))
	for i, p := range a.PIs {
		if j, ok := biByName[p.Name]; ok {
			piOfB[i] = j
		} else {
			piOfB[i] = i
		}
	}
	// Match POs by name.
	type poPair struct{ pa, pb *network.PO }
	var pairs []poPair
	for _, pa := range a.POs {
		var found *network.PO
		for _, pb := range b.POs {
			if pb.Name == pa.Name {
				found = pb
				break
			}
		}
		if found == nil {
			return fmt.Errorf("seqverify: PO %q missing in %s", pa.Name, b.Name)
		}
		pairs = append(pairs, poPair{pa, found})
	}

	la, lb := len(a.Latches), len(b.Latches)
	ni := len(a.PIs)
	nv := ni + 2*la + 2*lb
	m := bdd.New(nv)
	m.MaxNodes = lim.MaxBDDNodes
	defer func() {
		if r := recover(); r != nil {
			if r == bdd.ErrNodeLimit {
				err = ErrTooLarge
				return
			}
			panic(r)
		}
	}()

	ma := &machine{n: a, curVar: make([]int, la), nextVar: make([]int, la)}
	mb := &machine{n: b, curVar: make([]int, lb), nextVar: make([]int, lb)}
	for i := 0; i < la; i++ {
		ma.curVar[i] = ni + 2*i
		ma.nextVar[i] = ni + 2*i + 1
	}
	for i := 0; i < lb; i++ {
		mb.curVar[i] = ni + 2*la + 2*i
		mb.nextVar[i] = ni + 2*la + 2*i + 1
	}
	inVarA := make([]int, ni)
	inVarB := make([]int, ni)
	for i := 0; i < ni; i++ {
		inVarA[i] = i
		inVarB[piOfB[i]] = i
	}
	if lim.Order != reach.OrderPositional {
		m.SetOrder(productVarOrder(a, b, piOfB, inVarA, ma, mb, nv))
	}
	if err := buildFns(m, ma, inVarA); err != nil {
		return fmt.Errorf("seqverify: %s: %w", a.Name, err)
	}
	if err := buildFns(m, mb, inVarB); err != nil {
		return fmt.Errorf("seqverify: %s: %w", b.Name, err)
	}

	initSet := func(mc *machine) bdd.Ref {
		s := bdd.True
		for i, l := range mc.n.Latches {
			switch l.Init {
			case network.V0:
				s = m.And(s, m.NVar(mc.curVar[i]))
			case network.V1:
				s = m.And(s, m.Var(mc.curVar[i]))
			}
		}
		return s
	}
	front := m.And(initSet(ma), initSet(mb))

	// Per-latch relations of both machines, clustered with an early-
	// quantification schedule (monolithic on request via lim.Image).
	parts := make([]bdd.Ref, 0, la+lb)
	for i, l := range a.Latches {
		parts = append(parts, m.Xnor(m.Var(ma.nextVar[i]), ma.nodeFn[l.Driver]))
	}
	for i, l := range b.Latches {
		parts = append(parts, m.Xnor(m.Var(mb.nextVar[i]), mb.nodeFn[l.Driver]))
	}

	quant := make([]bool, nv)
	for i := 0; i < ni; i++ {
		quant[i] = true
	}
	for _, v := range ma.curVar {
		quant[v] = true
	}
	for _, v := range mb.curVar {
		quant[v] = true
	}
	perm := make([]int, nv)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < la; i++ {
		perm[ma.nextVar[i]], perm[ma.curVar[i]] = ma.curVar[i], ma.nextVar[i]
	}
	for i := 0; i < lb; i++ {
		perm[mb.nextVar[i]], perm[mb.curVar[i]] = mb.curVar[i], mb.nextVar[i]
	}
	threshold := 0 // monolithic
	if lim.Image != reach.ImageMonolithic {
		threshold = lim.ClusterNodes
		if threshold <= 0 {
			threshold = reach.DefaultClusterNodes
		}
	}
	trel := reach.BuildTransRel(m, parts, quant, perm, threshold)
	nextSift := 0
	if lim.Reorder {
		nextSift = lim.SiftNodes
		if nextSift <= 0 {
			nextSift = reach.DefaultSiftNodes
		}
	}
	// The PO functions are consulted after the traversal; they must count
	// as live roots for any reordering pass.
	poFns := make([]bdd.Ref, 0, 2*len(pairs))
	for _, pp := range pairs {
		poFns = append(poFns, ma.nodeFn[pp.pa.Driver], mb.nodeFn[pp.pb.Driver])
	}
	sift := func(reached, front bdd.Ref) {
		if nextSift == 0 || m.Size() < nextSift {
			return
		}
		roots := append(trel.Roots(), poFns...)
		m.Sift(append(roots, reached, front), 0)
		nextSift = 2 * m.Size()
	}

	// Advance the frontier through the delayed-replacement prefix.
	for k := 0; k < opt.Delay; k++ {
		if cerr := guard.Check(ctx, "seqverify.equivalent"); cerr != nil {
			return fmt.Errorf("seqverify: prefix traversal interrupted at cycle %d: %w", k, cerr)
		}
		sift(front, front)
		front = trel.Image(m, front)
	}
	// Closure from the post-prefix frontier.
	reached := front
	for {
		if cerr := guard.Check(ctx, "seqverify.equivalent"); cerr != nil {
			return fmt.Errorf("seqverify: reachability closure interrupted: %w", cerr)
		}
		sift(reached, front)
		img := trel.Image(m, front)
		fresh := m.And(img, m.Not(reached))
		if fresh == bdd.False {
			break
		}
		reached = m.Or(reached, fresh)
		front = fresh
	}

	// Output equality on all reached product states, all inputs.
	for _, pp := range pairs {
		diff := m.Xor(ma.nodeFn[pp.pa.Driver], mb.nodeFn[pp.pb.Driver])
		bad := m.And(reached, diff)
		if bad != bdd.False {
			witness := m.PickCube(bad)
			return fmt.Errorf("seqverify: PO %q differs (delay=%d); witness %s",
				pp.pa.Name, opt.Delay, witnessString(witness, ni, la, lb))
		}
	}
	return nil
}

// buildFns computes the BDD of every node in the cone of influence of a
// latch data input or primary output. A malformed network (e.g. a
// combinational cycle handed in by a buggy caller) is reported as an error
// rather than a panic, so verification can never crash the process.
func buildFns(m *bdd.Manager, mc *machine, inVar []int) error {
	mc.nodeFn = make(map[*network.Node]bdd.Ref)
	for i, p := range mc.n.PIs {
		mc.nodeFn[p] = m.Var(inVar[i])
	}
	for i, l := range mc.n.Latches {
		mc.nodeFn[l.Output] = m.Var(mc.curVar[i])
	}
	order, err := mc.n.TopoOrder()
	if err != nil {
		return fmt.Errorf("invalid network: %w", err)
	}
	need := make(map[*network.Node]bool)
	var mark func(*network.Node)
	mark = func(v *network.Node) {
		if need[v] {
			return
		}
		need[v] = true
		for _, fi := range v.Fanins {
			mark(fi)
		}
	}
	for _, l := range mc.n.Latches {
		mark(l.Driver)
	}
	for _, po := range mc.n.POs {
		mark(po.Driver)
	}
	for _, v := range order {
		if !need[v] {
			continue
		}
		f := bdd.False
		for _, c := range v.Func.Cubes {
			cube := bdd.True
			for pin := 0; pin < c.N; pin++ {
				fi := mc.nodeFn[v.Fanins[pin]]
				switch c.Lit(pin) {
				case logic.LitPos:
					cube = m.And(cube, fi)
				case logic.LitNeg:
					cube = m.And(cube, m.Not(fi))
				case logic.LitNone:
					cube = bdd.False
				}
				if cube == bdd.False {
					break // a void literal (or contradiction) kills the cube
				}
			}
			f = m.Or(f, cube)
		}
		mc.nodeFn[v] = f
	}
	return nil
}

// productVarOrder merges the topology-driven orders of the two machines
// into one static order for the product manager: each machine's latches
// and the shared PIs are keyed by their normalized TopoLeafRanks discovery
// rank (a PI takes the earlier of its two ranks), so corresponding state
// variables of structurally similar machines interleave. Each latch's
// cur/next pair stays adjacent.
func productVarOrder(a, b *network.Network, piOfB []int, inVarA []int, ma, mb *machine, nv int) []int {
	laR, paR, fa := reach.TopoLeafRanks(a)
	lbR, pbR, fb := reach.TopoLeafRanks(b)
	denomA := float64(fa + len(laR) + len(paR) + 1)
	denomB := float64(fb + len(lbR) + len(pbR) + 1)
	norm := func(r, fallback int, denom float64) float64 {
		if r < 0 {
			r = fallback
		}
		return float64(r) / denom
	}
	type ent struct {
		key  float64
		kind int // 0 PI, 1 latch of a, 2 latch of b
		idx  int
	}
	ents := make([]ent, 0, len(paR)+len(laR)+len(lbR))
	for i := range paR {
		ka := norm(paR[i], fa+len(laR)+i, denomA)
		kb := norm(pbR[piOfB[i]], fb+len(lbR)+piOfB[i], denomB)
		if kb < ka {
			ka = kb
		}
		ents = append(ents, ent{ka, 0, i})
	}
	for i := range laR {
		ents = append(ents, ent{norm(laR[i], fa+i, denomA), 1, i})
	}
	for i := range lbR {
		ents = append(ents, ent{norm(lbR[i], fb+i, denomB), 2, i})
	}
	sort.Slice(ents, func(x, y int) bool {
		if ents[x].key != ents[y].key {
			return ents[x].key < ents[y].key
		}
		if ents[x].kind != ents[y].kind {
			return ents[x].kind < ents[y].kind
		}
		return ents[x].idx < ents[y].idx
	})
	order := make([]int, 0, nv)
	for _, e := range ents {
		switch e.kind {
		case 0:
			order = append(order, inVarA[e.idx])
		case 1:
			order = append(order, ma.curVar[e.idx], ma.nextVar[e.idx])
		default:
			order = append(order, mb.curVar[e.idx], mb.nextVar[e.idx])
		}
	}
	return order
}

func witnessString(w []logic.Lit, ni, la, lb int) string {
	s := "in="
	for i := 0; i < ni; i++ {
		s += litCh(w[i])
	}
	s += " stateA="
	for i := 0; i < la; i++ {
		s += litCh(w[ni+2*i])
	}
	s += " stateB="
	for i := 0; i < lb; i++ {
		s += litCh(w[ni+2*la+2*i])
	}
	return s
}

func litCh(l logic.Lit) string {
	switch l {
	case logic.LitNeg:
		return "0"
	case logic.LitPos:
		return "1"
	default:
		return "-"
	}
}
