package faults

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/guard"
)

// ErrWALInjected is the write error a ServicePlan injects into the durable
// job log: the append fails, so the submission (or terminal record) is not
// made durable and the service must refuse or re-run the work rather than
// acknowledge something a crash would lose.
var ErrWALInjected = errors.New("faults: injected WAL write error")

// ServiceEvent records one service-level chaos consultation, in order, so
// a failing scenario can be diagnosed from its seed and log alone.
type ServiceEvent struct {
	// Op is "wal_write" | "wal_sync" | "job_fault" | "job_delay".
	Op string
	// ID is the job id for job_* consultations.
	ID string
	// Kind is the injected fault for job_fault (guard.FaultNone when
	// nothing fired).
	Kind guard.Fault
	// Err reports whether a wal_write consultation injected a failure.
	Err bool
	// Delay is the stall injected by wal_sync / job_delay.
	Delay time.Duration
}

// ServicePlan is the service-level extension of the guard-layer Injector:
// it implements the serve package's Chaos interface, injecting WAL write
// errors, fsync stalls, per-attempt job faults (contained panic, exhausted
// deadline) and slow passes, all drawn from one seeded RNG. Decisions are
// deterministic in sequence for a fixed seed and consultation order;
// concurrent workers interleave consultations nondeterministically, which
// is why every decision lands in the event log. Safe for concurrent use.
type ServicePlan struct {
	mu  sync.Mutex
	rng *rand.Rand

	walErrRate   float64
	stallRate    float64
	stall        time.Duration
	panicRate    float64
	deadlineRate float64
	delayRate    float64
	delayMax     time.Duration

	forcedWALErrs int
	forcedJob     map[string][]guard.Fault

	events []ServiceEvent
}

// NewServicePlan builds a plan whose decisions derive only from seed. With
// no rates or forces configured it injects nothing (but still logs every
// consultation).
func NewServicePlan(seed int64) *ServicePlan {
	return &ServicePlan{
		rng:       rand.New(rand.NewSource(seed)),
		forcedJob: make(map[string][]guard.Fault),
	}
}

// WithWALErrRate makes each WAL append fail with probability rate.
func (p *ServicePlan) WithWALErrRate(rate float64) *ServicePlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.walErrRate = rate
	return p
}

// WithSyncStall inserts a stall of up to max before a batched fsync with
// probability rate, widening the window of unsynced bytes a crash loses.
func (p *ServicePlan) WithSyncStall(rate float64, max time.Duration) *ServicePlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stallRate, p.stall = rate, max
	return p
}

// WithJobFaults makes each job attempt panic (contained by guard) with
// probability panicRate, or start with an exhausted deadline with
// probability deadlineRate. Both classify transient, so they exercise the
// retry path.
func (p *ServicePlan) WithJobFaults(panicRate, deadlineRate float64) *ServicePlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.panicRate, p.deadlineRate = panicRate, deadlineRate
	return p
}

// WithJobDelay stalls each job attempt by up to max with probability rate
// (slow-pass injection: holds workers, fills the queue, widens crash
// windows).
func (p *ServicePlan) WithJobDelay(rate float64, max time.Duration) *ServicePlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delayRate, p.delayMax = rate, max
	return p
}

// ForceWALErrs fails the next n WAL appends unconditionally (targeted
// durability-refusal scenarios).
func (p *ServicePlan) ForceWALErrs(n int) *ServicePlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.forcedWALErrs = n
	return p
}

// ForceJobFault queues kinds as the faults for id's next attempts, in
// order (attempts past the queue draw from the random rates). Targeted
// retry scenarios: force a deadline on attempt one, nothing on attempt
// two.
func (p *ServicePlan) ForceJobFault(id string, kinds ...guard.Fault) *ServicePlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.forcedJob[id] = append(p.forcedJob[id], kinds...)
	return p
}

// WALWriteErr implements the serve Chaos interface.
func (p *ServicePlan) WALWriteErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	switch {
	case p.forcedWALErrs > 0:
		p.forcedWALErrs--
		err = ErrWALInjected
	case p.walErrRate > 0 && p.rng.Float64() < p.walErrRate:
		err = ErrWALInjected
	}
	p.events = append(p.events, ServiceEvent{Op: "wal_write", Err: err != nil})
	return err
}

// WALSyncStall implements the serve Chaos interface.
func (p *ServicePlan) WALSyncStall() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d time.Duration
	if p.stallRate > 0 && p.stall > 0 && p.rng.Float64() < p.stallRate {
		d = time.Duration(p.rng.Int63n(int64(p.stall) + 1))
	}
	p.events = append(p.events, ServiceEvent{Op: "wal_sync", Delay: d})
	return d
}

// JobFault implements the serve Chaos interface.
func (p *ServicePlan) JobFault(id string) guard.Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	kind := guard.FaultNone
	if q := p.forcedJob[id]; len(q) > 0 {
		kind, p.forcedJob[id] = q[0], q[1:]
	} else if r := p.rng.Float64(); p.panicRate > 0 && r < p.panicRate {
		kind = guard.FaultPanic
	} else if p.deadlineRate > 0 && r < p.panicRate+p.deadlineRate {
		kind = guard.FaultDeadline
	}
	p.events = append(p.events, ServiceEvent{Op: "job_fault", ID: id, Kind: kind})
	return kind
}

// JobDelay implements the serve Chaos interface.
func (p *ServicePlan) JobDelay(id string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d time.Duration
	if p.delayRate > 0 && p.delayMax > 0 && p.rng.Float64() < p.delayRate {
		d = time.Duration(p.rng.Int63n(int64(p.delayMax) + 1))
	}
	p.events = append(p.events, ServiceEvent{Op: "job_delay", ID: id, Delay: d})
	return d
}

// ServiceEvents returns a copy of the decision log in consultation order.
func (p *ServicePlan) ServiceEvents() []ServiceEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ServiceEvent(nil), p.events...)
}
