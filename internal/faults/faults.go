// Package faults is a deterministic, seed-driven fault-injection harness
// for the guard layer. An Injector decides per guarded-pass invocation
// whether to inject a failure mode (pass panic, output corruption, deadline
// exhaustion, BDD blowup), either forced per pass name for targeted
// scenarios or drawn from a seeded RNG for randomized sweeps. Every
// decision is recorded in an event log, so a failing scenario is replayable
// from its seed alone.
//
// The package's test suite is the acceptance harness for the robustness
// work: under every injected fault, every flow in flows.RunAllCtx must
// either return a valid network (with a Metrics.Note footnote on degraded
// flows) or a typed guard error — never a raw panic, never a corrupted
// result.
package faults

import (
	"math/rand"
	"sync"

	"repro/internal/guard"
)

// Event records one injector consultation: which guarded pass asked, and
// which fault (possibly guard.FaultNone) was injected.
type Event struct {
	Pass string
	Kind guard.Fault
}

// Injector implements guard.Injector deterministically from a seed. The
// zero value is unusable; construct with NewInjector. Safe for concurrent
// use.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rate   float64
	kinds  []guard.Fault
	forced map[string]guard.Fault
	events []Event
}

// NewInjector builds an injector whose random decisions derive only from
// seed. Without Force or WithRate it injects nothing (but still logs every
// consultation).
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		forced: make(map[string]guard.Fault),
	}
}

// Force always injects kind into the named pass, overriding the random
// rate. It returns the injector for chaining.
func (i *Injector) Force(pass string, kind guard.Fault) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.forced[pass] = kind
	return i
}

// WithRate makes every non-forced consultation inject one of kinds with
// probability rate (uniformly chosen). It returns the injector for
// chaining.
func (i *Injector) WithRate(rate float64, kinds ...guard.Fault) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rate = rate
	i.kinds = append([]guard.Fault(nil), kinds...)
	return i
}

// Fault implements guard.Injector, recording the decision in the event
// log. Forced passes always get their forced kind; otherwise the seeded
// RNG draws against the configured rate.
func (i *Injector) Fault(pass string) guard.Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	kind, ok := i.forced[pass]
	if !ok && i.rate > 0 && len(i.kinds) > 0 {
		if i.rng.Float64() < i.rate {
			kind = i.kinds[i.rng.Intn(len(i.kinds))]
		}
	}
	i.events = append(i.events, Event{Pass: pass, Kind: kind})
	return kind
}

// Events returns a copy of the decision log in consultation order.
func (i *Injector) Events() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.events...)
}

// Fired reports whether the log contains an injection of kind into pass.
func (i *Injector) Fired(pass string, kind guard.Fault) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, e := range i.events {
		if e.Pass == pass && e.Kind == kind {
			return true
		}
	}
	return false
}
