package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/guard"
)

func TestServicePlanDeterministicFromSeed(t *testing.T) {
	run := func() []ServiceEvent {
		p := NewServicePlan(42).
			WithWALErrRate(0.3).
			WithSyncStall(0.5, 3*time.Millisecond).
			WithJobFaults(0.2, 0.2).
			WithJobDelay(0.4, 2*time.Millisecond)
		for i := 0; i < 20; i++ {
			p.WALWriteErr()
			p.WALSyncStall()
			p.JobFault("job-a")
			p.JobDelay("job-a")
		}
		return p.ServiceEvents()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 80 {
		t.Fatalf("event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged for the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The configured rates actually fire somewhere in the sequence.
	var walErrs, stalls, faults, delays int
	for _, e := range a {
		switch {
		case e.Op == "wal_write" && e.Err:
			walErrs++
		case e.Op == "wal_sync" && e.Delay > 0:
			stalls++
		case e.Op == "job_fault" && e.Kind != guard.FaultNone:
			faults++
		case e.Op == "job_delay" && e.Delay > 0:
			delays++
		}
	}
	if walErrs == 0 || stalls == 0 || faults == 0 || delays == 0 {
		t.Fatalf("rates never fired: walErrs=%d stalls=%d faults=%d delays=%d", walErrs, stalls, faults, delays)
	}
}

func TestServicePlanForcedFaults(t *testing.T) {
	p := NewServicePlan(1).
		ForceWALErrs(2).
		ForceJobFault("j1", guard.FaultDeadline, guard.FaultPanic)

	if err := p.WALWriteErr(); !errors.Is(err, ErrWALInjected) {
		t.Fatalf("first forced WAL error: %v", err)
	}
	if err := p.WALWriteErr(); !errors.Is(err, ErrWALInjected) {
		t.Fatalf("second forced WAL error: %v", err)
	}
	if err := p.WALWriteErr(); err != nil {
		t.Fatalf("force exhausted but append still fails: %v", err)
	}

	if got := p.JobFault("j1"); got != guard.FaultDeadline {
		t.Fatalf("attempt 1 fault = %v, want deadline", got)
	}
	if got := p.JobFault("j1"); got != guard.FaultPanic {
		t.Fatalf("attempt 2 fault = %v, want panic", got)
	}
	if got := p.JobFault("j1"); got != guard.FaultNone {
		t.Fatalf("queue exhausted but attempt 3 still faulted: %v", got)
	}
	// Other jobs are untouched by a targeted force.
	if got := p.JobFault("j2"); got != guard.FaultNone {
		t.Fatalf("unrelated job faulted: %v", got)
	}
}

func TestServicePlanZeroValueInjectsNothing(t *testing.T) {
	p := NewServicePlan(7)
	for i := 0; i < 50; i++ {
		if err := p.WALWriteErr(); err != nil {
			t.Fatal("unconfigured plan injected a WAL error")
		}
		if d := p.WALSyncStall(); d != 0 {
			t.Fatal("unconfigured plan injected a stall")
		}
		if k := p.JobFault("x"); k != guard.FaultNone {
			t.Fatal("unconfigured plan injected a job fault")
		}
		if d := p.JobDelay("x"); d != 0 {
			t.Fatal("unconfigured plan injected a delay")
		}
	}
	if got := len(p.ServiceEvents()); got != 200 {
		t.Fatalf("consultations not logged: %d events, want 200", got)
	}
}
