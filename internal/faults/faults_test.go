// The acceptance suite for the robustness work: every flow in
// flows.RunAllCtx must, under every injected fault, either complete with a
// valid verified network (degraded flows carrying a Metrics.Note footnote)
// or return a typed guard error. No raw panic may escape. Run with -race in
// CI.
package faults_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/parexec"
)

// guardedPasses are the transactional pass names consulted by the flows
// (remap appears in both derived flows, so a forced fault hits it twice).
var guardedPasses = []string{
	"algebraic.optimize",
	"mapper.map_delay",
	"retime.min_period",
	"reach.dc_extract",
	"remap",
	"core.resynthesize",
	"retime.guide",
}

// typed reports whether err carries the guard error taxonomy: a budget
// exhaustion, a contained panic, or a rollback wrapper.
func typed(err error) bool {
	var pe *guard.PassError
	var rb *guard.RollbackError
	return errors.Is(err, guard.ErrBudget) || errors.As(err, &pe) || errors.As(err, &rb)
}

// resultsFailure validates a result trio and describes the first problem,
// or returns "". It is goroutine-safe so the parallel matrix workers can
// use it and hand the verdict back to the test goroutine.
func resultsFailure(src *network.Network, rs ...*flows.Result) string {
	for i, r := range rs {
		if r == nil {
			return fmt.Sprintf("flow %d returned a nil result without an error", i)
		}
		if err := r.Net.Check(); err != nil {
			return fmt.Sprintf("flow %d returned an invalid network: %v", i, err)
		}
		if err := flows.Verify(src, r); err != nil {
			return fmt.Sprintf("flow %d not equivalent to the source: %v", i, err)
		}
	}
	return ""
}

func checkResults(t *testing.T, src *network.Network, rs ...*flows.Result) {
	t.Helper()
	if msg := resultsFailure(src, rs...); msg != "" {
		t.Fatal(msg)
	}
}

// TestTargetedFaultMatrix injects every failure mode into every guarded
// pass, one at a time. Whatever happens inside, RunAllCtx must finish with
// either a typed guard error or three valid, verified results; unless the
// faulted pass is the purely opportunistic guide retiming, the degradation
// must leave a visible footnote.
//
// The scenarios are independent (private source network, private injector,
// read-only library) and run concurrently on the parexec pool; each worker
// reports a failure description back to the test goroutine, which surfaces
// it under the scenario's subtest name in deterministic order.
func TestTargetedFaultMatrix(t *testing.T) {
	kinds := []guard.Fault{guard.FaultPanic, guard.FaultCorrupt, guard.FaultDeadline}
	type scenario struct {
		pass string
		kind guard.Fault
	}
	var scs []scenario
	for _, pass := range guardedPasses {
		for _, kind := range kinds {
			scs = append(scs, scenario{pass, kind})
		}
	}
	failures, err := parexec.Map(context.Background(), 0, scs,
		func(ctx context.Context, _ int, sc scenario) (string, error) {
			src := bench.BuildPaperExample()
			lib := genlib.Lib2()
			inj := faults.NewInjector(1).Force(sc.pass, sc.kind)
			sd, ret, rsyn, err := flows.RunAllCtx(ctx, src, lib, flows.Config{Inject: inj})
			if !inj.Fired(sc.pass, sc.kind) {
				return fmt.Sprintf("fault %v on %s never fired; events: %v", sc.kind, sc.pass, inj.Events()), nil
			}
			if err != nil {
				if !typed(err) {
					return fmt.Sprintf("flow error is not a typed guard error: %v", err), nil
				}
				return "", nil
			}
			if msg := resultsFailure(src, sd, ret, rsyn); msg != "" {
				return msg, nil
			}
			if sc.pass != "retime.guide" {
				if sd.Note == "" && ret.Note == "" && rsyn.Note == "" {
					return fmt.Sprintf("no fallback note after %v on %s: sd=%v ret=%v rsyn=%v",
						sc.kind, sc.pass, sd.Metrics, ret.Metrics, rsyn.Metrics), nil
				}
			}
			return "", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scs {
		failure := failures[i]
		t.Run(sc.pass+"/"+sc.kind.String(), func(t *testing.T) {
			if failure != "" {
				t.Fatal(failure)
			}
		})
	}
}

// TestTargetedFaultsOnFSM repeats the worst offenders on an embedded FSM
// benchmark (bbtas) so the harness also exercises a circuit with real state
// encoding, not just the paper's didactic example.
func TestTargetedFaultsOnFSM(t *testing.T) {
	c, ok := bench.ByName("bbtas")
	if !ok {
		t.Fatal("bbtas missing")
	}
	for _, pass := range []string{"core.resynthesize", "retime.min_period", "remap"} {
		t.Run(pass, func(t *testing.T) {
			src, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			inj := faults.NewInjector(3).Force(pass, guard.FaultPanic)
			sd, ret, rsyn, err := flows.RunAllCtx(context.Background(), src, genlib.Lib2(), flows.Config{Inject: inj})
			if err != nil {
				if !typed(err) {
					t.Fatalf("untyped error: %v", err)
				}
				return
			}
			checkResults(t, src, sd, ret, rsyn)
			if ret.Note == "" && rsyn.Note == "" {
				t.Fatalf("panic in %s left no footnote", pass)
			}
		})
	}
}

// TestBDDBlowupDegradesToSkippedDCs pins the resource-fault path: a blown
// BDD node budget must not fail the flow but skip DC extraction with the
// paper's footnote, carrying the observed numbers.
func TestBDDBlowupDegradesToSkippedDCs(t *testing.T) {
	src := bench.BuildPaperExample()
	inj := faults.NewInjector(7).Force("reach.dc_extract", guard.FaultBDDBlowup)
	sd, ret, rsyn, err := flows.RunAllCtx(context.Background(), src, genlib.Lib2(), flows.Config{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ret.Note, "DC extraction skipped") {
		t.Fatalf("blowup must degrade to a skip note, got %q", ret.Note)
	}
	checkResults(t, src, sd, ret, rsyn)
}

// TestDeadlineFaultIsBudgetTyped pins the taxonomy: an injected deadline
// surfaces through the rollback note and, when it fails a flow, matches
// guard.ErrBudget.
func TestDeadlineFaultIsBudgetTyped(t *testing.T) {
	src := bench.BuildPaperExample()
	inj := faults.NewInjector(5).Force("mapper.map_delay", guard.FaultDeadline)
	_, _, _, err := flows.RunAllCtx(context.Background(), src, genlib.Lib2(), flows.Config{Inject: inj})
	if err == nil {
		t.Fatal("script.delay cannot survive an unmappable pass")
	}
	if !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("deadline fault must match guard.ErrBudget, got %v", err)
	}
	var rb *guard.RollbackError
	if !errors.As(err, &rb) || rb.Pass != "mapper.map_delay" {
		t.Fatalf("error must carry the rolled-back pass, got %v", err)
	}
}

// TestRandomFaultSweep drives randomized injections across several seeds,
// concurrently (each seed owns its injector and source network). Every
// outcome must be a typed error or a fully valid, verified trio.
func TestRandomFaultSweep(t *testing.T) {
	kinds := []guard.Fault{guard.FaultPanic, guard.FaultCorrupt, guard.FaultDeadline, guard.FaultBDDBlowup}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	failures, err := parexec.Map(context.Background(), 0, seeds,
		func(ctx context.Context, _ int, seed int64) (string, error) {
			src := bench.BuildPaperExample()
			inj := faults.NewInjector(seed).WithRate(0.35, kinds...)
			sd, ret, rsyn, err := flows.RunAllCtx(ctx, src, genlib.Lib2(), flows.Config{Inject: inj})
			if err != nil {
				if !typed(err) {
					return fmt.Sprintf("seed %d: untyped error: %v", seed, err), nil
				}
				return "", nil
			}
			if msg := resultsFailure(src, sd, ret, rsyn); msg != "" {
				return fmt.Sprintf("seed %d: %s", seed, msg), nil
			}
			return "", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		if f != "" {
			t.Error(f)
		}
	}
}

// TestInjectionDeterminism pins replayability: the same seed must produce
// the same decision log and the same flow outcomes.
func TestInjectionDeterminism(t *testing.T) {
	kinds := []guard.Fault{guard.FaultPanic, guard.FaultCorrupt, guard.FaultDeadline}
	run := func() ([]faults.Event, []string) {
		src := bench.BuildPaperExample()
		inj := faults.NewInjector(11).WithRate(0.5, kinds...)
		sd, ret, rsyn, err := flows.RunAllCtx(context.Background(), src, genlib.Lib2(), flows.Config{Inject: inj})
		outcomes := []string{}
		if err != nil {
			outcomes = append(outcomes, "err: "+err.Error())
		} else {
			for _, r := range []*flows.Result{sd, ret, rsyn} {
				outcomes = append(outcomes, r.Metrics.String())
			}
		}
		return inj.Events(), outcomes
	}
	ev1, out1 := run()
	ev2, out2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event logs diverge:\n%v\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("outcomes diverge:\n%v\n%v", out1, out2)
	}
}

// TestForceOverridesRate pins injector semantics: a forced pass ignores the
// random rate, everything else still draws from it.
func TestForceOverridesRate(t *testing.T) {
	inj := faults.NewInjector(2).WithRate(1.0, guard.FaultPanic).Force("safe", guard.FaultNone)
	if k := inj.Fault("safe"); k != guard.FaultNone {
		t.Fatalf("forced FaultNone overridden: %v", k)
	}
	if k := inj.Fault("other"); k != guard.FaultPanic {
		t.Fatalf("rate 1.0 must inject, got %v", k)
	}
	if len(inj.Events()) != 2 {
		t.Fatalf("every consultation must be logged: %v", inj.Events())
	}
}
