// Package genlib models a SIS-style technology library: gates with SOP
// functions, areas and pin-to-output delays, plus an embedded lib2-like
// library whose area/delay magnitudes follow the MCNC lib2.genlib used in
// the paper's experiments ("mapped using the lib2 technology library").
package genlib

import (
	"fmt"

	"repro/internal/logic"
)

// Gate is one library cell with a single output.
type Gate struct {
	Name string
	Area float64
	// Func is the gate function over pin variables 0..NumPins-1.
	Func *logic.Cover
	// PinDelays holds the pin-to-output propagation delay per input pin.
	PinDelays []float64
	// tt is the truth table over the pins (bit m = value on minterm m).
	tt uint16
}

// NumPins returns the input count.
func (g *Gate) NumPins() int { return len(g.PinDelays) }

// TT returns the gate's truth table (2^pins significant bits).
func (g *Gate) TT() uint16 { return g.tt }

// MaxDelay returns the slowest pin delay.
func (g *Gate) MaxDelay() float64 {
	d := 0.0
	for _, p := range g.PinDelays {
		if p > d {
			d = p
		}
	}
	return d
}

// Bound is the network annotation tying a node to a library gate with a
// pin permutation: node fanin i drives gate pin PinOf[i].
type Bound struct {
	G     *Gate
	PinOf []int
}

// GateName implements network.GateRef.
func (b *Bound) GateName() string { return b.G.Name }

// GateArea implements network.GateRef.
func (b *Bound) GateArea() float64 { return b.G.Area }

// PinDelay implements network.GateRef.
func (b *Bound) PinDelay(i int) float64 {
	if i < len(b.PinOf) {
		return b.G.PinDelays[b.PinOf[i]]
	}
	return b.G.MaxDelay()
}

// Library is a set of gates indexed for matching.
type Library struct {
	Name  string
	Gates []*Gate
	// RegisterArea is charged per register when reporting mapped area.
	RegisterArea float64
	// byCanon maps (pins, canonical tt) to candidate gates with the
	// permutation that canonicalizes them.
	byCanon map[canonKey][]match
}

type canonKey struct {
	pins int
	tt   uint16
}

type match struct {
	g *Gate
	// perm maps canonical variable index -> gate pin.
	perm []int
}

// evalTT computes a cover's truth table over n ≤ 4 variables.
func evalTT(f *logic.Cover, n int) uint16 {
	var tt uint16
	assign := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for v := 0; v < n; v++ {
			assign[v] = m&(1<<uint(v)) != 0
		}
		if f.Eval(assign) {
			tt |= 1 << uint(m)
		}
	}
	return tt
}

// permuteTT reorders truth-table variables: new variable i is old
// variable perm[i].
func permuteTT(tt uint16, n int, perm []int) uint16 {
	var out uint16
	for m := 0; m < 1<<uint(n); m++ {
		om := 0
		for i := 0; i < n; i++ {
			if m&(1<<uint(i)) != 0 {
				om |= 1 << uint(perm[i])
			}
		}
		if tt&(1<<uint(om)) != 0 {
			out |= 1 << uint(m)
		}
	}
	return out
}

func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == n {
			c := make([]int, n)
			copy(c, cur)
			out = append(out, c)
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				rec(append(cur, i), used)
				used[i] = false
			}
		}
	}
	rec(nil, make([]bool, n))
	return out
}

// CanonTT returns the minimum truth table over all input permutations and
// the permutation achieving it (canonical variable -> original variable).
func CanonTT(tt uint16, n int) (uint16, []int) {
	best := tt
	var bestPerm []int
	for _, p := range permutations(n) {
		if c := permuteTT(tt, n, p); bestPerm == nil || c < best {
			best = c
			bestPerm = p
		}
	}
	return best, bestPerm
}

// NewLibrary indexes the given gates for matching.
func NewLibrary(name string, regArea float64, gates []*Gate) (*Library, error) {
	lib := &Library{Name: name, Gates: gates, RegisterArea: regArea,
		byCanon: make(map[canonKey][]match)}
	for _, g := range gates {
		n := g.NumPins()
		if n > 4 {
			return nil, fmt.Errorf("genlib: gate %s has %d pins (max 4)", g.Name, n)
		}
		if g.Func.N != n {
			return nil, fmt.Errorf("genlib: gate %s: %d cover vars for %d pins", g.Name, g.Func.N, n)
		}
		g.tt = evalTT(g.Func, n)
		// Index under every permutation image so lookup is a single probe:
		// store the canonical form with its canonicalizing permutation.
		canon, perm := CanonTT(g.tt, n)
		key := canonKey{n, canon}
		// perm maps canonical var -> ... permuteTT(tt, perm) semantics:
		// new var i is old var perm[i]; canonical var i = gate pin perm[i].
		lib.byCanon[key] = append(lib.byCanon[key], match{g: g, perm: perm})
	}
	return lib, nil
}

// Match returns gates implementing the given truth table over n inputs.
// Each result's PinFor maps tt-variable index -> gate pin.
type Match struct {
	G      *Gate
	PinFor []int
}

// Match looks up gates whose function equals tt over n variables, up to
// input permutation.
func (lib *Library) Match(tt uint16, n int) []Match {
	canon, permQ := CanonTT(tt, n)
	cands := lib.byCanon[canonKey{n, canon}]
	out := make([]Match, 0, len(cands))
	for _, c := range cands {
		// canonical var i corresponds to query var permQ[i] and to gate
		// pin c.perm[i]; so query var permQ[i] -> pin c.perm[i].
		pinFor := make([]int, n)
		for i := 0; i < n; i++ {
			pinFor[permQ[i]] = c.perm[i]
		}
		out = append(out, Match{G: c.g, PinFor: pinFor})
	}
	return out
}
