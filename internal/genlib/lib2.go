package genlib

import "repro/internal/logic"

// Lib2 returns the embedded lib2-like library. Gate repertoire, area and
// delay magnitudes follow the MCNC lib2.genlib flavour (inverter/NAND/NOR
// families fast and small, AND/OR slower, AOI/OAI complex gates, XOR/XNOR
// expensive). Exact numbers are reconstructions — see DESIGN.md §2 on
// substitutions — but the relative ordering that drives mapping decisions
// is preserved.
func Lib2() *Library {
	mk := func(name string, area float64, cover *logic.Cover, delays ...float64) *Gate {
		return &Gate{Name: name, Area: area, Func: cover, PinDelays: delays}
	}
	c := logic.MustParseCover
	gates := []*Gate{
		mk("zero", 0, logic.Zero(0)),
		mk("one", 0, logic.One(0)),
		mk("inv", 1, c(1, "0"), 0.9),
		mk("buf", 2, c(1, "1"), 1.0),

		mk("nand2", 2, c(2, "0-", "-0"), 1.0, 1.05),
		mk("nand3", 3, c(3, "0--", "-0-", "--0"), 1.1, 1.15, 1.2),
		mk("nand4", 4, c(4, "0---", "-0--", "--0-", "---0"), 1.2, 1.25, 1.3, 1.35),
		mk("nor2", 2, c(2, "00"), 1.1, 1.15),
		mk("nor3", 3, c(3, "000"), 1.3, 1.35, 1.4),
		mk("nor4", 4, c(4, "0000"), 1.5, 1.55, 1.6, 1.65),

		mk("and2", 3, c(2, "11"), 1.2, 1.25),
		mk("and3", 4, c(3, "111"), 1.4, 1.45, 1.5),
		mk("and4", 5, c(4, "1111"), 1.6, 1.65, 1.7, 1.75),
		mk("or2", 3, c(2, "1-", "-1"), 1.3, 1.35),
		mk("or3", 4, c(3, "1--", "-1-", "--1"), 1.6, 1.65, 1.7),
		mk("or4", 5, c(4, "1---", "-1--", "--1-", "---1"), 1.8, 1.85, 1.9, 1.95),

		// aoi21: (a·b + c)'
		mk("aoi21", 3, c(3, "0-0", "-00"), 1.2, 1.25, 1.1),
		// aoi22: (a·b + c·d)'
		mk("aoi22", 4, c(4, "0-0-", "0--0", "-00-", "-0-0"), 1.3, 1.35, 1.3, 1.35),
		// oai21: ((a+b)·c)'
		mk("oai21", 3, c(3, "00-", "--0"), 1.2, 1.25, 1.1),
		// oai22: ((a+b)·(c+d))'
		mk("oai22", 4, c(4, "00--", "--00"), 1.3, 1.35, 1.3, 1.35),

		mk("xor2", 5, c(2, "10", "01"), 1.8, 1.85),
		mk("xnor2", 5, c(2, "11", "00"), 1.8, 1.85),
		// mux21: s' a + s b (pin order: s, a, b)
		mk("mux21", 5, c(3, "01-", "1-1"), 1.8, 1.5, 1.55),
	}
	lib, err := NewLibrary("lib2", 9, gates)
	if err != nil {
		panic(err) // embedded library must be well-formed
	}
	return lib
}
