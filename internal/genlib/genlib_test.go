package genlib

import (
	"testing"

	"repro/internal/logic"
)

func TestEvalTT(t *testing.T) {
	and2 := logic.MustParseCover(2, "11")
	if tt := evalTT(and2, 2); tt != 0x8 {
		t.Fatalf("AND2 tt = %04x, want 0008", tt)
	}
	inv := logic.MustParseCover(1, "0")
	if tt := evalTT(inv, 1); tt != 0x1 {
		t.Fatalf("INV tt = %04x, want 0001", tt)
	}
}

func TestPermuteTT(t *testing.T) {
	// f = a AND NOT b over (a,b): minterm 01 (a=1,b=0) -> tt bit 1.
	f := logic.MustParseCover(2, "10")
	tt := evalTT(f, 2)
	if tt != 0x2 {
		t.Fatalf("tt = %04x", tt)
	}
	// Swap inputs: NOT a AND b: minterm 10 -> bit 2.
	sw := permuteTT(tt, 2, []int{1, 0})
	if sw != 0x4 {
		t.Fatalf("swapped tt = %04x", sw)
	}
}

func TestCanonTTPermutationInvariant(t *testing.T) {
	f := logic.MustParseCover(3, "10-", "0-1")
	tt := evalTT(f, 3)
	c1, _ := CanonTT(tt, 3)
	for _, p := range permutations(3) {
		c2, _ := CanonTT(permuteTT(tt, 3, p), 3)
		if c1 != c2 {
			t.Fatalf("canonical form not permutation-invariant")
		}
	}
}

func TestLib2WellFormed(t *testing.T) {
	lib := Lib2()
	if len(lib.Gates) < 20 {
		t.Fatalf("library too small: %d gates", len(lib.Gates))
	}
	for _, g := range lib.Gates {
		if g.NumPins() != g.Func.N {
			t.Fatalf("gate %s pin/cover mismatch", g.Name)
		}
		if g.Area < 0 || g.MaxDelay() < 0 {
			t.Fatalf("gate %s has negative cost", g.Name)
		}
	}
}

func TestMatchBasicGates(t *testing.T) {
	lib := Lib2()
	cases := []struct {
		cover *logic.Cover
		n     int
		want  string
	}{
		{logic.MustParseCover(2, "11"), 2, "and2"},
		{logic.MustParseCover(2, "0-", "-0"), 2, "nand2"},
		{logic.MustParseCover(2, "10", "01"), 2, "xor2"},
		{logic.MustParseCover(1, "0"), 1, "inv"},
		{logic.MustParseCover(3, "0-0", "-00"), 3, "aoi21"},
	}
	for _, tc := range cases {
		tt := evalTT(tc.cover, tc.n)
		ms := lib.Match(tt, tc.n)
		found := false
		for _, m := range ms {
			if m.G.Name == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s among matches for tt %04x (%d found)", tc.want, tt, len(ms))
		}
	}
}

func TestMatchPermutedPins(t *testing.T) {
	lib := Lib2()
	// aoi21 with pins permuted: f = (c + a·b)' expressed as (b·a + c)'
	// should still match with a consistent PinFor.
	f := logic.MustParseCover(3, "00-") // over (c, a, b): c'·a'
	// Build (a·b + c)' with query vars ordered (c, a, b):
	f = logic.MustParseCover(3, "0-0", "00-")
	// f = c'·b' + c'·a' = (c + a·b)'? Check via match instead of algebra:
	tt := evalTT(f, 3)
	ms := lib.Match(tt, 3)
	for _, m := range ms {
		if m.G.Name != "aoi21" {
			continue
		}
		// Verify the permutation: evaluating the gate function through
		// PinFor must reproduce tt.
		var rtt uint16
		for mt := 0; mt < 8; mt++ {
			assign := make([]bool, 3)
			for qv := 0; qv < 3; qv++ {
				assign[m.PinFor[qv]] = mt&(1<<uint(qv)) != 0
			}
			if m.G.Func.Eval(assign) {
				rtt |= 1 << uint(mt)
			}
		}
		if rtt != tt {
			t.Fatalf("PinFor permutation wrong: %04x vs %04x", rtt, tt)
		}
		return
	}
	t.Fatal("permuted aoi21 not matched")
}

func TestMatchNoFalsePositives(t *testing.T) {
	lib := Lib2()
	// 3-input majority is not in the library.
	maj := logic.MustParseCover(3, "11-", "1-1", "-11")
	if ms := lib.Match(evalTT(maj, 3), 3); len(ms) != 0 {
		t.Fatalf("majority gate should not match, got %d", len(ms))
	}
}

func TestBoundAnnotation(t *testing.T) {
	lib := Lib2()
	var nand2 *Gate
	for _, g := range lib.Gates {
		if g.Name == "nand2" {
			nand2 = g
		}
	}
	b := &Bound{G: nand2, PinOf: []int{1, 0}}
	if b.GateName() != "nand2" || b.GateArea() != 2 {
		t.Fatal("bound metadata wrong")
	}
	if b.PinDelay(0) != nand2.PinDelays[1] {
		t.Fatal("PinOf not applied")
	}
}
