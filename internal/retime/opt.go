package retime

import (
	"fmt"
	"sort"
)

// This file implements the original Leiserson–Saxe OPT formulation of
// min-period retiming: binary search over the candidate clock periods (the
// distinct D(u,v) values), testing feasibility with Bellman–Ford on the
// difference-constraint system
//
//	r(u) − r(v) ≤ w(e)          for every edge u→v
//	r(u) − r(v) ≤ W(u,v) − 1    whenever D(u,v) > c.
//
// It is quadratic in memory (W/D matrices) and exists as an independent
// cross-check of the FEAS-based MinPeriodLags: both must agree on the
// optimal period (property-tested in opt_test.go).

// MinPeriodLagsOPT computes optimal lags via the W/D formulation. It is
// limited to MaxExactMinAreaVertices vertices.
func (g *Graph) MinPeriodLagsOPT() ([]int, float64, error) {
	nv := len(g.Nodes) + 1
	if nv > MaxExactMinAreaVertices {
		return nil, 0, fmt.Errorf("retime: %d vertices exceeds the OPT matrix limit", nv)
	}
	w, d := g.wdMatrices()
	const inf = int(1) << 30
	// Candidate periods: distinct finite D values.
	var cands []float64
	seen := map[float64]bool{}
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			if w[i][j] < inf && !seen[d[i][j]] {
				seen[d[i][j]] = true
				cands = append(cands, d[i][j])
			}
		}
	}
	if len(cands) == 0 {
		return make([]int, nv), 0, nil
	}
	sort.Float64s(cands)
	lo, hi := 0, len(cands)-1
	var bestR []int
	bestC := -1.0
	for lo <= hi {
		mid := (lo + hi) / 2
		c := cands[mid]
		if r, ok := g.optFeasible(w, d, c); ok {
			bestR, bestC = r, c
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestR == nil {
		return nil, 0, fmt.Errorf("retime: no feasible period among candidates")
	}
	// Tighten: the achieved period can undercut the tested candidate.
	if p, err := g.Period(bestR); err == nil && p < bestC {
		bestC = p
	}
	return bestR, bestC, nil
}

// optFeasible solves the difference constraints for target period c by
// Bellman–Ford, returning lags with r[Host] normalized to 0.
func (g *Graph) optFeasible(w [][]int, d [][]float64, c float64) ([]int, bool) {
	nv := len(g.Nodes) + 1
	const inf = int(1) << 30
	type arc struct {
		u, v, b int
	}
	var arcs []arc
	for _, e := range g.Edges {
		arcs = append(arcs, arc{e.From, e.To, e.W})
	}
	const eps = 1e-9
	for u := 0; u < nv; u++ {
		for v := 0; v < nv; v++ {
			if w[u][v] >= inf || d[u][v] <= c+eps {
				continue
			}
			b := w[u][v] - 1
			if u == v {
				if b < 0 {
					return nil, false
				}
				continue
			}
			arcs = append(arcs, arc{u, v, b})
		}
	}
	// Bellman–Ford from a virtual source with 0 arcs to all vertices:
	// dist[v] satisfies dist[u] ≤ dist[v] + b for arc (u,v,b), i.e.
	// r := dist is feasible (r(u) − r(v) ≤ b).
	dist := make([]int, nv)
	for iter := 0; iter < nv; iter++ {
		changed := false
		for _, a := range arcs {
			// Constraint r(u) - r(v) ≤ b ⇒ relax dist[u] ≤ dist[v] + b.
			if dist[a.v]+a.b < dist[a.u] {
				dist[a.u] = dist[a.v] + a.b
				changed = true
			}
		}
		if !changed {
			r := make([]int, nv)
			off := dist[Host]
			for i := range r {
				r[i] = dist[i] - off
			}
			return r, true
		}
	}
	return nil, false // negative cycle: infeasible
}
