package retime

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/network"
	"repro/internal/seqverify"
	"repro/internal/sim"
)

// TestPropertyRandomAtomicMoves applies random sequences of legal atomic
// retiming moves to random FSMs and checks after every move that the
// network stays structurally valid and sequentially equivalent to the
// original (safe replacement — atomic moves preserve initial states).
func TestPropertyRandomAtomicMoves(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		orig := bench.Synthetic(bench.Profile{
			Name: "p", PIs: 3, POs: 2, FFs: 4, Gates: 12, Seed: seed,
		})
		work := orig.Clone()
		moves := 0
		for step := 0; step < 12; step++ {
			var cand []*network.Node
			for _, v := range work.Nodes() {
				if v.Kind != network.KindLogic {
					continue
				}
				if ForwardRetimable(work, v) || BackwardRetimable(work, v) {
					cand = append(cand, v)
				}
			}
			if len(cand) == 0 {
				break
			}
			v := cand[r.Intn(len(cand))]
			var err error
			if ForwardRetimable(work, v) && (r.Intn(2) == 0 || !BackwardRetimable(work, v)) {
				_, err = Forward(work, v)
			} else {
				_, err = Backward(work, v)
			}
			if err != nil {
				continue
			}
			moves++
			if cerr := work.Check(); cerr != nil {
				t.Fatalf("seed %d move %d: network invalid: %v", seed, moves, cerr)
			}
		}
		if moves == 0 {
			continue
		}
		err := seqverify.Equivalent(orig, work, seqverify.Options{})
		if err == seqverify.ErrTooLarge {
			err = sim.RandomEquivalent(orig, work, 0, 500, seed)
		}
		if err != nil {
			t.Fatalf("seed %d after %d moves: %v", seed, moves, err)
		}
	}
}

// TestPropertyStemSplitAlwaysDelayedEquivalent splits every splittable
// register of random FSMs and verifies delayed-replacement equivalence
// with the accumulated prefix.
func TestPropertyStemSplitAlwaysDelayedEquivalent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		orig := bench.Synthetic(bench.Profile{
			Name: "p", PIs: 2, POs: 2, FFs: 4, Gates: 10, Seed: seed,
		})
		work := orig.Clone()
		k := 0
		for _, l := range append([]*network.Latch(nil), work.Latches...) {
			if work.NumFanouts(l.Output) < 2 {
				continue
			}
			created, err := SplitFanoutStem(work, l)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			k += len(created) - 1
		}
		if k == 0 {
			continue
		}
		if err := work.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		err := seqverify.Equivalent(orig, work, seqverify.Options{Delay: k})
		if err == seqverify.ErrTooLarge {
			err = sim.RandomEquivalent(orig, work, k, 500, seed)
		}
		if err != nil {
			t.Fatalf("seed %d: stem splits not delayed-equivalent: %v", seed, err)
		}
		// With preserved initial values the split is even safe (Section II:
		// preservation of initial states makes the new states invalid but
		// unreachable).
		err = seqverify.Equivalent(orig, work, seqverify.Options{})
		if err != nil && err != seqverify.ErrTooLarge {
			t.Fatalf("seed %d: init-preserving split must be safe: %v", seed, err)
		}
	}
}

// TestPropertyMinPeriodNeverWorse: the full min-period pass must never
// increase the clock period, and its output must verify.
func TestPropertyMinPeriodNeverWorse(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		orig := bench.Synthetic(bench.Profile{
			Name: "p", PIs: 3, POs: 2, FFs: 5, Gates: 16, Seed: seed,
		})
		ret, info, err := MinPeriod(orig, nil)
		if err != nil {
			continue // initial-state realization failures are legitimate
		}
		if info.PeriodAfter > info.PeriodBefore+1e-9 {
			t.Fatalf("seed %d: period regressed: %v", seed, info)
		}
		if p, err := periodOf(ret, nil); err != nil || p > info.PeriodAfter+1e-9 {
			t.Fatalf("seed %d: realized period %v does not match claim %v", seed, p, info.PeriodAfter)
		}
		verr := seqverify.Equivalent(orig, ret, seqverify.Options{})
		if verr == seqverify.ErrTooLarge {
			verr = sim.RandomEquivalent(orig, ret, 0, 500, seed)
		}
		if verr != nil {
			t.Fatalf("seed %d: retimed circuit not equivalent: %v", seed, verr)
		}
	}
}

// TestPropertyMinAreaKeepsPeriodAndEquivalence over random circuits.
func TestPropertyMinAreaKeepsPeriodAndEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		orig := bench.Synthetic(bench.Profile{
			Name: "p", PIs: 3, POs: 2, FFs: 5, Gates: 14, Seed: seed,
		})
		p, err := periodOf(orig, nil)
		if err != nil {
			t.Fatal(err)
		}
		ret, info, err := MinAreaUnderPeriod(orig, nil, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if info.RegsAfter > info.RegsBefore {
			t.Fatalf("seed %d: min-area increased registers %d -> %d",
				seed, info.RegsBefore, info.RegsAfter)
		}
		if q, err := periodOf(ret, nil); err != nil || q > p+1e-9 {
			t.Fatalf("seed %d: period constraint violated: %v", seed, q)
		}
		verr := seqverify.Equivalent(orig, ret, seqverify.Options{})
		if verr == seqverify.ErrTooLarge {
			verr = sim.RandomEquivalent(orig, ret, 0, 500, seed)
		}
		if verr != nil {
			t.Fatalf("seed %d: %v", seed, verr)
		}
	}
}
