package retime

import (
	"context"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/network"
)

func TestOPTAgreesWithFEASOnPipeline(t *testing.T) {
	n := pipeline3(t)
	g, err := BuildGraph(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, cFeas, err := g.MinPeriodLags()
	if err != nil {
		t.Fatal(err)
	}
	rOpt, cOpt, err := g.MinPeriodLagsOPT()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cFeas-cOpt) > 1e-6 {
		t.Fatalf("FEAS period %v != OPT period %v", cFeas, cOpt)
	}
	if _, err := g.Retimed(rOpt); err != nil {
		t.Fatalf("OPT lags illegal: %v", err)
	}
	if p, err := g.Period(rOpt); err != nil || p > cOpt+1e-9 {
		t.Fatalf("OPT lags miss the period: %v (%v)", p, err)
	}
}

func TestOPTAgreesWithFEASOnPaperExample(t *testing.T) {
	n := bench.BuildPaperExample()
	g, err := BuildGraph(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, cFeas, _ := g.MinPeriodLags()
	_, cOpt, err := g.MinPeriodLagsOPT()
	if err != nil {
		t.Fatal(err)
	}
	if cFeas != 2 || cOpt != 2 {
		t.Fatalf("both must find period 2: FEAS=%v OPT=%v", cFeas, cOpt)
	}
}

// TestOPTvsFEASOnRandomCircuits is the cross-check property: the exact OPT
// formulation is never worse than the increment-only FEAS heuristic, and
// both produce legal lag assignments that achieve their claimed periods.
// (FEAS with a pinned host vertex cannot express forward moves, so strict
// OPT wins are possible — seed 16 exhibits one.)
func TestOPTvsFEASOnRandomCircuits(t *testing.T) {
	strictWin := false
	for seed := int64(1); seed <= 25; seed++ {
		n := bench.Synthetic(bench.Profile{
			Name: "x", PIs: 3, POs: 2, FFs: 4, Gates: 18, Seed: seed,
		})
		g, err := BuildGraph(n, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rFeas, cFeas, err := g.minPeriodLagsFEAS(context.Background())
		if err != nil {
			t.Fatalf("seed %d: FEAS: %v", seed, err)
		}
		rOpt, cOpt, err := g.MinPeriodLagsOPT()
		if err != nil {
			t.Fatalf("seed %d: OPT: %v", seed, err)
		}
		if cOpt > cFeas+1e-6 {
			t.Fatalf("seed %d: OPT %v worse than FEAS %v", seed, cOpt, cFeas)
		}
		if cOpt < cFeas-1e-6 {
			strictWin = true
		}
		for _, pair := range []struct {
			r []int
			c float64
		}{{rFeas, cFeas}, {rOpt, cOpt}} {
			if _, err := g.Retimed(pair.r); err != nil {
				t.Fatalf("seed %d: illegal lags: %v", seed, err)
			}
			if p, err := g.Period(pair.r); err != nil || p > pair.c+1e-9 {
				t.Fatalf("seed %d: lags miss the period: %v (%v)", seed, p, err)
			}
		}
	}
	if !strictWin {
		t.Log("no strict OPT win observed in this seed range (acceptable)")
	}
}

func TestOPTRespectsMatrixLimit(t *testing.T) {
	// A graph larger than the matrix limit must refuse cleanly.
	n := network.New("big")
	a := n.AddPI("a")
	prev := a
	for i := 0; i < MaxExactMinAreaVertices+4; i++ {
		prev = n.AddLogic("", []*network.Node{prev}, buf())
	}
	n.AddPO("y", prev)
	g, err := BuildGraph(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.MinPeriodLagsOPT(); err == nil {
		t.Fatal("matrix limit not enforced")
	}
}
