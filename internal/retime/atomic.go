package retime

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/network"
)

// This file implements the atomic register moves of Section II of the
// paper (Fig. 1): forward retiming across a single-output node with initial
// state s' = f(s1..sk), and backward retiming with initial states obtained
// from a satisfying assignment of f (Touati–Brayton). Both operate directly
// on the network so that initial states remain correct by construction.

// ForwardRetimable reports whether node v can absorb one register from each
// fanin edge: every fanin must be a register output ("a node is
// forward-retimable if it contains only registers as its fanins").
func ForwardRetimable(n *network.Network, v *network.Node) bool {
	if v.Kind != network.KindLogic || len(v.Fanins) == 0 {
		return false
	}
	for _, fi := range v.Fanins {
		if fi.Kind != network.KindLatchOut {
			return false
		}
	}
	return true
}

// Forward performs one atomic forward move across v: registers move from
// all fanins to the output. The new register's initial value is
// f(s1,…,sk) evaluated 3-valued over the consumed registers' initial
// values. Returns the new latch. Registers that become dangling are
// removed.
func Forward(n *network.Network, v *network.Node) (*network.Latch, error) {
	if !ForwardRetimable(n, v) {
		return nil, fmt.Errorf("retime: %s is not forward-retimable", v.Name)
	}
	latches := make([]*network.Latch, len(v.Fanins))
	drivers := make([]*network.Node, len(v.Fanins))
	inits := make([]network.Value, len(v.Fanins))
	for i, fi := range v.Fanins {
		l := n.LatchOfOutput(fi)
		if l == nil {
			return nil, fmt.Errorf("retime: fanin %s has no latch", fi.Name)
		}
		latches[i] = l
		drivers[i] = l.Driver
		inits[i] = l.Init
	}
	newInit := eval3(v.Func, inits)
	// Create the output register first so that a register on a self-loop
	// edge (v → latch → v) can be rewired to the new register instead of
	// collapsing into a combinational cycle.
	nl := n.AddLatch(v.Name+"_q", v, newInit)
	for i, d := range drivers {
		if d == v {
			drivers[i] = nl.Output
		}
	}
	// Rewire v to read the pre-register signals.
	n.SetFunction(v, drivers, v.Func.Clone())
	for _, c := range n.LogicFanouts(v) {
		if c != nl.Output {
			n.ReplaceFanin(c, v, nl.Output)
		}
	}
	for _, l := range n.Latches {
		if l != nl && l.Driver == v {
			l.Driver = nl.Output
		}
	}
	for _, p := range n.POs {
		if p.Driver == v {
			p.Driver = nl.Output
		}
	}
	// Sweep consumed registers that now feed nothing.
	for _, l := range latches {
		if n.NumFanouts(l.Output) == 0 {
			n.RemoveLatch(l)
		}
	}
	return nl, nil
}

// BackwardRetimable reports whether node v can push one register from its
// output to each fanin: every consumer must be a register data input, and
// the registers' initial values must admit a consistent preimage through f.
func BackwardRetimable(n *network.Network, v *network.Node) bool {
	_, _, err := backwardPlan(n, v)
	return err == nil
}

// backwardPlan validates the move and computes the consumer registers and
// the fanin initial-value assignment.
func backwardPlan(n *network.Network, v *network.Node) ([]*network.Latch, []network.Value, error) {
	if v.Kind != network.KindLogic {
		return nil, nil, fmt.Errorf("retime: %s is not a logic node", v.Name)
	}
	if len(n.LogicFanouts(v)) > 0 || len(n.POsDrivenBy(v)) > 0 {
		return nil, nil, fmt.Errorf("retime: %s has non-register consumers", v.Name)
	}
	outs := n.LatchesDrivenBy(v)
	if len(outs) == 0 {
		return nil, nil, fmt.Errorf("retime: %s drives no registers", v.Name)
	}
	// All defined initial values must agree (Fig. 2: backward retiming
	// across a stem fails on differing initial values).
	target := network.VX
	for _, l := range outs {
		if l.Init == network.VX {
			continue
		}
		if target != network.VX && target != l.Init {
			return nil, nil, fmt.Errorf("retime: registers after %s have conflicting initial values", v.Name)
		}
		target = l.Init
	}
	inits := make([]network.Value, len(v.Fanins))
	switch target {
	case network.VX:
		for i := range inits {
			inits[i] = network.VX
		}
	case network.V1:
		cube, ok := pickAssignment(v.Func)
		if !ok {
			return nil, nil, fmt.Errorf("retime: %s cannot produce initial value 1", v.Name)
		}
		copy(inits, cube)
	case network.V0:
		cube, ok := pickAssignment(v.Func.Complement())
		if !ok {
			return nil, nil, fmt.Errorf("retime: %s cannot produce initial value 0", v.Name)
		}
		copy(inits, cube)
	}
	return outs, inits, nil
}

// pickAssignment returns a complete satisfying assignment of f (unbound
// cube positions default to 0), or ok=false if f is unsatisfiable.
func pickAssignment(f *logic.Cover) ([]network.Value, bool) {
	for _, c := range f.Cubes {
		if c.IsEmpty() {
			continue
		}
		out := make([]network.Value, f.N)
		for v := 0; v < f.N; v++ {
			if c.Lit(v) == logic.LitPos {
				out[v] = network.V1
			} else {
				out[v] = network.V0
			}
		}
		return out, true
	}
	if f.N == 0 && len(f.Cubes) > 0 {
		return []network.Value{}, true
	}
	return nil, false
}

// Backward performs one atomic backward move across v: the registers on
// v's output (which must be v's only consumers) are replaced by one
// register on each fanin, with initial values from a preimage of the
// common output initial value. Returns the new latches.
func Backward(n *network.Network, v *network.Node) ([]*network.Latch, error) {
	outs, inits, err := backwardPlan(n, v)
	if err != nil {
		return nil, err
	}
	newLatches := make([]*network.Latch, len(v.Fanins))
	newFanins := make([]*network.Node, len(v.Fanins))
	for i, fi := range v.Fanins {
		nl := n.AddLatch(fmt.Sprintf("%s_b%d", v.Name, i), fi, inits[i])
		newLatches[i] = nl
		newFanins[i] = nl.Output
	}
	n.SetFunction(v, newFanins, v.Func.Clone())
	for _, l := range outs {
		n.RedirectConsumers(l.Output, v)
		n.RemoveLatch(l)
	}
	return newLatches, nil
}

// eval3 evaluates a cover on ternary inputs (conservative semantics),
// used for forward-move initial states.
func eval3(f *logic.Cover, in []network.Value) network.Value {
	res := network.V0
	for _, c := range f.Cubes {
		cv := network.V1
		for v := 0; v < c.N; v++ {
			switch c.Lit(v) {
			case logic.LitNeg:
				if in[v] == network.V1 {
					cv = network.V0
				} else if in[v] == network.VX && cv != network.V0 {
					cv = network.VX
				}
			case logic.LitPos:
				if in[v] == network.V0 {
					cv = network.V0
				} else if in[v] == network.VX && cv != network.V0 {
					cv = network.VX
				}
			case logic.LitNone:
				cv = network.V0
			}
			if cv == network.V0 {
				break
			}
		}
		if cv == network.V1 {
			return network.V1
		}
		if cv == network.VX {
			res = network.VX
		}
	}
	return res
}

// SplitFanoutStem forward-retimes register l across its fanout stem
// (Fig. 2): the single register becomes one register per consumer, all
// with l's initial value, establishing the retiming-induced equivalence
// R1 ≡ R2 ≡ … . Returns the new latches in consumer order. It is the
// caller's responsibility to record the induced equivalence (internal/core
// does). A register with fewer than two consumers is returned unchanged.
func SplitFanoutStem(n *network.Network, l *network.Latch) ([]*network.Latch, error) {
	out := l.Output
	logicConsumers := n.LogicFanouts(out)
	latchConsumers := n.LatchesDrivenBy(out)
	poConsumers := n.POsDrivenBy(out)
	total := len(logicConsumers) + len(latchConsumers) + len(poConsumers)
	if total < 2 {
		return []*network.Latch{l}, nil
	}
	var created []*network.Latch
	idx := 0
	newLatch := func() *network.Latch {
		nl := n.AddLatch(fmt.Sprintf("%s_s%d", l.Name, idx), l.Driver, l.Init)
		idx++
		created = append(created, nl)
		return nl
	}
	for _, c := range logicConsumers {
		n.ReplaceFanin(c, out, newLatch().Output)
	}
	for _, lc := range latchConsumers {
		lc.Driver = newLatch().Output
	}
	for _, p := range poConsumers {
		p.Driver = newLatch().Output
	}
	n.RemoveLatch(l)
	return created, nil
}

// RemoveConstantRegisters eliminates registers whose data input is a
// constant matching their initial value: such a register holds that
// constant in every cycle, so its consumers can read the constant
// directly. This is one of the latch-count minimization moves the paper's
// Section V points to beyond retiming itself ("other latch count
// minimization techniques can also be used"). Returns the number removed.
func RemoveConstantRegisters(n *network.Network) int {
	removed := 0
	for {
		progress := false
		for _, l := range append([]*network.Latch(nil), n.Latches...) {
			d := l.Driver
			if d == nil || d.Kind != network.KindLogic || len(d.Fanins) != 0 {
				continue
			}
			var v network.Value
			if d.Func.IsZeroFunction() {
				v = network.V0
			} else if d.Func.HasFullCube() {
				v = network.V1
			} else {
				continue
			}
			if l.Init != v {
				continue // the cycle-0 value differs; removal is unsafe
			}
			n.RedirectConsumers(l.Output, d)
			n.RemoveLatch(l)
			removed++
			progress = true
		}
		if !progress {
			return removed
		}
	}
}

// MergeSiblingRegisters backward-retimes across fanout stems wherever
// legal: registers sharing the same driver and the same initial value are
// merged into one (the Fig. 6 post-pass move). Returns the number of
// registers eliminated.
func MergeSiblingRegisters(n *network.Network) int {
	merged := 0
	for {
		progress := false
		byDriver := make(map[*network.Node][]*network.Latch)
		for _, l := range n.Latches {
			byDriver[l.Driver] = append(byDriver[l.Driver], l)
		}
		for _, group := range byDriver {
			if len(group) < 2 {
				continue
			}
			// Partition by initial value; merge within each class.
			byInit := map[network.Value][]*network.Latch{}
			for _, l := range group {
				byInit[l.Init] = append(byInit[l.Init], l)
			}
			for _, cls := range byInit {
				if len(cls) < 2 {
					continue
				}
				keep := cls[0]
				for _, l := range cls[1:] {
					n.RedirectConsumers(l.Output, keep.Output)
					n.RemoveLatch(l)
					merged++
					progress = true
				}
			}
		}
		if !progress {
			return merged
		}
	}
}
