package retime

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/seqverify"
	"repro/internal/sim"
)

func buf() *logic.Cover  { return logic.MustParseCover(1, "1") }
func and2() *logic.Cover { return logic.MustParseCover(2, "11") }
func or2() *logic.Cover  { return logic.MustParseCover(2, "1-", "-1") }
func xor2() *logic.Cover { return logic.MustParseCover(2, "10", "01") }

// pipeline3 is a 3-gate chain with all 3 registers bunched at the end —
// retiming balances it to period 1.
func pipeline3(t *testing.T) *network.Network {
	t.Helper()
	n := network.New("pipe3")
	a := n.AddPI("a")
	g1 := n.AddLogic("g1", []*network.Node{a}, buf())
	g2 := n.AddLogic("g2", []*network.Node{g1}, buf())
	g3 := n.AddLogic("g3", []*network.Node{g2}, buf())
	l1 := n.AddLatch("q1", g3, network.V0)
	l2 := n.AddLatch("q2", l1.Output, network.V0)
	l3 := n.AddLatch("q3", l2.Output, network.V0)
	n.AddPO("y", l3.Output)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildGraphChainWeights(t *testing.T) {
	n := pipeline3(t)
	g, err := BuildGraph(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 {
		t.Fatalf("vertices = %d", len(g.Nodes))
	}
	if g.NumRegisters() != 3 {
		t.Fatalf("graph registers = %d", g.NumRegisters())
	}
	// The g3->host edge must carry all three registers.
	found := false
	for _, e := range g.Edges {
		if e.To == Host && e.W == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("register chain not collapsed onto PO edge: %+v", g.Edges)
	}
	p, err := g.Period(nil)
	if err != nil || p != 3 {
		t.Fatalf("period = %v err=%v", p, err)
	}
}

func TestForwardMove(t *testing.T) {
	// r1, r2 feed an AND; forward retiming yields one register with
	// init = AND(inits).
	n := network.New("fwd")
	a := n.AddPI("a")
	b := n.AddPI("b")
	l1 := n.AddLatch("r1", a, network.V1)
	l2 := n.AddLatch("r2", b, network.V1)
	g := n.AddLogic("g", []*network.Node{l1.Output, l2.Output}, and2())
	n.AddPO("y", g)
	ref := n.Clone()

	if !ForwardRetimable(n, g) {
		t.Fatal("g must be forward-retimable")
	}
	nl, err := Forward(n, g)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Init != network.V1 {
		t.Fatalf("new init = %v, want 1 = AND(1,1)", nl.Init)
	}
	if len(n.Latches) != 1 {
		t.Fatalf("latches = %d, want 1", len(n.Latches))
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if err := seqverify.Equivalent(ref, n, seqverify.Options{}); err != nil {
		t.Fatalf("forward move broke equivalence: %v", err)
	}
}

func TestForwardMoveInitZero(t *testing.T) {
	n := network.New("fwd0")
	a := n.AddPI("a")
	b := n.AddPI("b")
	l1 := n.AddLatch("r1", a, network.V1)
	l2 := n.AddLatch("r2", b, network.V0)
	g := n.AddLogic("g", []*network.Node{l1.Output, l2.Output}, and2())
	n.AddPO("y", g)
	nl, err := Forward(n, g)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Init != network.V0 {
		t.Fatalf("init = %v, want 0", nl.Init)
	}
}

func TestForwardSharedRegisterStays(t *testing.T) {
	// r1 also feeds another consumer: the register must survive the move.
	n := network.New("shared")
	a := n.AddPI("a")
	b := n.AddPI("b")
	l1 := n.AddLatch("r1", a, network.V0)
	l2 := n.AddLatch("r2", b, network.V0)
	g := n.AddLogic("g", []*network.Node{l1.Output, l2.Output}, and2())
	other := n.AddLogic("other", []*network.Node{l1.Output}, buf())
	n.AddPO("y", g)
	n.AddPO("z", other)
	ref := n.Clone()
	if _, err := Forward(n, g); err != nil {
		t.Fatal(err)
	}
	if len(n.Latches) != 2 { // r1 kept (other consumer), r2 replaced by new
		t.Fatalf("latches = %d, want 2", len(n.Latches))
	}
	if err := seqverify.Equivalent(ref, n, seqverify.Options{}); err != nil {
		t.Fatalf("equivalence: %v", err)
	}
}

func TestBackwardMove(t *testing.T) {
	// g drives a single register with init 1; backward move must pick a
	// preimage assignment with AND = 1, i.e. both new inits 1.
	n := network.New("bwd")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g := n.AddLogic("g", []*network.Node{a, b}, and2())
	l := n.AddLatch("q", g, network.V1)
	n.AddPO("y", l.Output)
	ref := n.Clone()
	if !BackwardRetimable(n, g) {
		t.Fatal("must be backward-retimable")
	}
	nls, err := Backward(n, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(nls) != 2 || nls[0].Init != network.V1 || nls[1].Init != network.V1 {
		t.Fatalf("new inits: %v %v", nls[0].Init, nls[1].Init)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if err := seqverify.Equivalent(ref, n, seqverify.Options{}); err != nil {
		t.Fatalf("backward move broke equivalence: %v", err)
	}
}

func TestBackwardConflictingInitsFails(t *testing.T) {
	// Two registers with different initial values after the same node:
	// exactly the Fig. 2 impossibility.
	n := network.New("conflict")
	a := n.AddPI("a")
	g := n.AddLogic("g", []*network.Node{a}, buf())
	l1 := n.AddLatch("q1", g, network.V0)
	l2 := n.AddLatch("q2", g, network.V1)
	c := n.AddLogic("c", []*network.Node{l1.Output, l2.Output}, xor2())
	n.AddPO("y", c)
	if BackwardRetimable(n, g) {
		t.Fatal("conflicting inits must block backward retiming")
	}
}

func TestBackwardUnsatisfiableInitFails(t *testing.T) {
	// A constant-0 node cannot produce a register init of 1.
	n := network.New("unsat")
	_ = n.AddPI("a")
	k := n.AddConst("k0", false)
	l := n.AddLatch("q", k, network.V1)
	n.AddPO("y", l.Output)
	if BackwardRetimable(n, k) {
		t.Fatal("const 0 cannot backward-retime an init-1 register")
	}
}

func TestSplitFanoutStem(t *testing.T) {
	n := network.New("split")
	a := n.AddPI("a")
	l := n.AddLatch("r", a, network.V1)
	g1 := n.AddLogic("g1", []*network.Node{l.Output}, buf())
	g2 := n.AddLogic("g2", []*network.Node{l.Output}, buf())
	n.AddPO("y1", g1)
	n.AddPO("y2", g2)
	ref := n.Clone()
	created, err := SplitFanoutStem(n, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 2 {
		t.Fatalf("created %d registers, want 2", len(created))
	}
	for _, nl := range created {
		if nl.Init != network.V1 || nl.Driver != n.FindNode("a") {
			t.Fatal("split register init/driver wrong")
		}
	}
	if len(n.Latches) != 2 {
		t.Fatalf("latches = %d", len(n.Latches))
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if err := seqverify.Equivalent(ref, n, seqverify.Options{Delay: 1}); err != nil {
		t.Fatalf("stem split not delayed-equivalent: %v", err)
	}
	// With equal initial states this split is even safe-equivalent.
	if err := seqverify.Equivalent(ref, n, seqverify.Options{}); err != nil {
		t.Fatalf("stem split with preserved inits must be safe: %v", err)
	}
}

func TestMergeSiblingRegistersInvertsSplit(t *testing.T) {
	n := network.New("merge")
	a := n.AddPI("a")
	l := n.AddLatch("r", a, network.V0)
	g1 := n.AddLogic("g1", []*network.Node{l.Output}, buf())
	g2 := n.AddLogic("g2", []*network.Node{l.Output}, buf())
	n.AddPO("y1", g1)
	n.AddPO("y2", g2)
	if _, err := SplitFanoutStem(n, l); err != nil {
		t.Fatal(err)
	}
	if len(n.Latches) != 2 {
		t.Fatal("split failed")
	}
	if m := MergeSiblingRegisters(n); m != 1 {
		t.Fatalf("merged %d, want 1", m)
	}
	if len(n.Latches) != 1 {
		t.Fatal("merge failed")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMinPeriodPipeline(t *testing.T) {
	n := pipeline3(t)
	ret, info, err := MinPeriod(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.PeriodBefore != 3 || info.PeriodAfter != 1 {
		t.Fatalf("period %v -> %v, want 3 -> 1", info.PeriodBefore, info.PeriodAfter)
	}
	p, err := periodOf(ret, nil)
	if err != nil || p != 1 {
		t.Fatalf("realized period = %v err=%v", p, err)
	}
	// Pipeline latency must be preserved: with X-free original this is
	// checkable exactly (backward moves may introduce fresh-but-consistent
	// initial values).
	if err := seqverify.Equivalent(n, ret, seqverify.Options{}); err != nil {
		t.Fatalf("retimed pipeline not equivalent: %v", err)
	}
}

func TestMinPeriodFSM(t *testing.T) {
	// A feedback circuit: r -> g1 -> g2 -> g3 -> r, with PO after g3.
	// Min period = 3 cannot improve the cycle-total, but register can move
	// around the loop; equivalence must hold regardless.
	n := network.New("loop")
	a := n.AddPI("a")
	l := n.AddLatch("r", nil, network.V0)
	g1 := n.AddLogic("g1", []*network.Node{l.Output, a}, xor2())
	g2 := n.AddLogic("g2", []*network.Node{g1}, buf())
	g3 := n.AddLogic("g3", []*network.Node{g2}, buf())
	l.Driver = g3
	n.AddPO("y", g3)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	ret, info, err := MinPeriod(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.PeriodAfter > info.PeriodBefore {
		t.Fatalf("period regressed: %v", info)
	}
	if err := seqverify.Equivalent(n, ret, seqverify.Options{}); err != nil {
		t.Fatalf("retimed FSM not equivalent: %v", err)
	}
}

func TestMinPeriodBalancesTwoSided(t *testing.T) {
	// Registers at both ends; optimal period 2 for a 4-gate chain with 2
	// movable registers.
	n := network.New("bal")
	a := n.AddPI("a")
	l1 := n.AddLatch("q1", a, network.V0)
	g1 := n.AddLogic("g1", []*network.Node{l1.Output}, buf())
	g2 := n.AddLogic("g2", []*network.Node{g1}, buf())
	g3 := n.AddLogic("g3", []*network.Node{g2}, buf())
	g4 := n.AddLogic("g4", []*network.Node{g3}, buf())
	l2 := n.AddLatch("q2", g4, network.V0)
	n.AddPO("y", l2.Output)
	ret, info, err := MinPeriod(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.PeriodAfter != 2 {
		t.Fatalf("period = %v, want 2", info.PeriodAfter)
	}
	if err := sim.RandomEquivalent(n, ret, 0, 300, 17); err != nil {
		t.Fatalf("balance retiming broke behaviour: %v", err)
	}
}

func TestWDMatrices(t *testing.T) {
	n := pipeline3(t)
	g, _ := BuildGraph(n, nil)
	w, d := g.wdMatrices()
	i1, i2, i3 := g.Index[n.FindNode("g1")], g.Index[n.FindNode("g2")], g.Index[n.FindNode("g3")]
	if w[i1][i3] != 0 {
		t.Fatalf("W(g1,g3) = %d, want 0", w[i1][i3])
	}
	if d[i1][i3] != 3 {
		t.Fatalf("D(g1,g3) = %v, want 3", d[i1][i3])
	}
	if w[i1][i2] != 0 || d[i1][i2] != 2 {
		t.Fatalf("W,D(g1,g2) = %d,%v", w[i1][i2], d[i1][i2])
	}
	// Combinational paths never pass through the host (environment), so
	// g3 -> g1 must be unreachable in the W matrix.
	if w[i3][i1] < (1 << 29) {
		t.Fatalf("W(g3,g1) = %d, want unreachable (host is endpoint-only)", w[i3][i1])
	}
}

// bruteMinArea enumerates small lag vectors to verify the LP solver.
func bruteMinArea(g *Graph, c float64, bound int) (best int, ok bool) {
	nv := len(g.Nodes) + 1
	r := make([]int, nv)
	best = 1 << 30
	var rec func(v int)
	rec = func(v int) {
		if v == nv {
			ws, err := g.Retimed(r)
			if err != nil {
				return
			}
			if p, err := g.Period(r); err != nil || p > c+1e-9 {
				return
			}
			tot := 0
			for _, w := range ws {
				tot += w
			}
			if tot < best {
				best = tot
				ok = true
			}
			return
		}
		for x := -bound; x <= bound; x++ {
			r[v] = x
			rec(v + 1)
		}
		r[v] = 0
	}
	r[Host] = 0
	rec(1)
	return best, ok
}

func TestMinAreaLagsMatchBruteForce(t *testing.T) {
	n := pipeline3(t)
	g, _ := BuildGraph(n, nil)
	for _, c := range []float64{1, 2, 3} {
		r, err := g.MinAreaLags(c)
		if err != nil {
			t.Fatalf("c=%v: %v", c, err)
		}
		ws, err := g.Retimed(r)
		if err != nil {
			t.Fatalf("c=%v: illegal lags", c)
		}
		got := 0
		for _, w := range ws {
			got += w
		}
		want, ok := bruteMinArea(g, c, 3)
		if !ok {
			t.Fatalf("c=%v: brute force found nothing", c)
		}
		if got != want {
			t.Fatalf("c=%v: LP registers %d, brute force %d", c, got, want)
		}
		if p, _ := g.Period(r); p > c+1e-9 {
			t.Fatalf("c=%v: period %v violated", c, p)
		}
	}
}

func TestMinAreaMergesSplitRegisters(t *testing.T) {
	// Split a stem, then ask min-area to undo it under the same period.
	n := network.New("ma")
	a := n.AddPI("a")
	l := n.AddLatch("r", a, network.V0)
	g1 := n.AddLogic("g1", []*network.Node{l.Output}, buf())
	g2 := n.AddLogic("g2", []*network.Node{l.Output}, buf())
	n.AddPO("y1", g1)
	n.AddPO("y2", g2)
	if _, err := SplitFanoutStem(n, l); err != nil {
		t.Fatal(err)
	}
	p, _ := periodOf(n, nil)
	ret, info, err := MinAreaUnderPeriod(n, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if info.RegsAfter != 1 {
		t.Fatalf("registers after min-area = %d, want 1", info.RegsAfter)
	}
	if err := seqverify.Equivalent(n, ret, seqverify.Options{}); err != nil {
		t.Fatalf("min-area broke equivalence: %v", err)
	}
}

func TestMinAreaRespectsPeriod(t *testing.T) {
	// Balanced pipeline at period 1 with 3 registers: min-area at c=1 must
	// keep enough registers to hold period 1; at c=3 it may drop to 1.
	n := network.New("resp")
	a := n.AddPI("a")
	l1 := n.AddLatch("q1", nil, network.V0)
	g1 := n.AddLogic("g1", []*network.Node{a}, buf())
	l1.Driver = g1
	g2 := n.AddLogic("g2", []*network.Node{l1.Output}, buf())
	l2 := n.AddLatch("q2", g2, network.V0)
	g3 := n.AddLogic("g3", []*network.Node{l2.Output}, buf())
	l3 := n.AddLatch("q3", g3, network.V0)
	n.AddPO("y", l3.Output)
	retTight, infoTight, err := MinAreaUnderPeriod(n, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := periodOf(retTight, nil); p > 1 {
		t.Fatalf("tight min-area period %v", p)
	}
	retLoose, infoLoose, err := MinAreaUnderPeriod(n, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if infoLoose.RegsAfter > infoTight.RegsAfter {
		t.Fatalf("looser budget must not need more registers: %d vs %d",
			infoLoose.RegsAfter, infoTight.RegsAfter)
	}
	if p, _ := periodOf(retLoose, nil); p > 3 {
		t.Fatalf("loose min-area period %v", p)
	}
	if err := sim.RandomEquivalent(n, retLoose, 0, 200, 23); err != nil {
		t.Fatalf("loose min-area equivalence: %v", err)
	}
}

func TestRemoveConstantRegisters(t *testing.T) {
	n := network.New("kreg")
	a := n.AddPI("a")
	one := n.AddConst("k1", true)
	zero := n.AddConst("k0", false)
	// Removable: driver constant matches init.
	l1 := n.AddLatch("q1", one, network.V1)
	l0 := n.AddLatch("q0", zero, network.V0)
	// Not removable: cycle-0 value differs from the steady state.
	lx := n.AddLatch("qx", one, network.V0)
	and3 := logic.MustParseCover(4, "1111")
	g := n.AddLogic("g", []*network.Node{l1.Output, l0.Output, lx.Output, a}, and3)
	n.AddPO("y", g)
	ref := n.Clone()

	removed := RemoveConstantRegisters(n)
	if removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	if len(n.Latches) != 1 || n.Latches[0].Name != "qx" {
		t.Fatalf("wrong survivor set: %v", n.Latches)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if err := seqverify.Equivalent(ref, n, seqverify.Options{}); err != nil {
		t.Fatalf("constant-register removal broke equivalence: %v", err)
	}
}

func TestRemoveConstantRegistersChain(t *testing.T) {
	// A chain const -> q1 -> q2 (all matching inits) collapses entirely.
	n := network.New("kchain")
	one := n.AddConst("k1", true)
	l1 := n.AddLatch("q1", one, network.V1)
	buf1 := n.AddLogic("b1", []*network.Node{l1.Output}, buf())
	l2 := n.AddLatch("q2", buf1, network.V1)
	n.AddPO("y", l2.Output)
	ref := n.Clone()
	RemoveConstantRegisters(n)
	n.Sweep()
	// q1 removable immediately; q2's driver becomes buf(const)=non-constant
	// node, so a second fixpoint round is needed only if buffers collapse —
	// at minimum q1 must be gone and behaviour preserved.
	if n.FindNode("q1") != nil {
		t.Fatal("q1 not removed")
	}
	if err := seqverify.Equivalent(ref, n, seqverify.Options{}); err != nil {
		t.Fatal(err)
	}
}
