// Package retime implements Leiserson–Saxe retiming of gate-level
// sequential networks: the retiming graph, atomic forward/backward register
// moves with initial-state computation (Touati–Brayton style), min-period
// retiming via binary search + FEAS, and constrained min-area retiming via
// the min-cost-flow dual of the retiming LP. It supplies both the
// conventional-retiming baseline of Table I and the constrained min-area
// post-pass of the paper's Algorithm 1.
package retime

import (
	"fmt"

	"repro/internal/network"
)

// VertexDelay supplies the propagation delay of a logic node in the
// retiming graph. Unit delay is the default.
type VertexDelay func(*network.Node) float64

// UnitVertexDelay charges one unit per gate.
func UnitVertexDelay(*network.Node) float64 { return 1 }

// GateVertexDelay uses mapped-gate annotations when present (max pin
// delay), one unit otherwise.
func GateVertexDelay(v *network.Node) float64 {
	if v.Gate == nil {
		return 1
	}
	d := 0.0
	for i := range v.Fanins {
		if pd := v.Gate.PinDelay(i); pd > d {
			d = pd
		}
	}
	if d == 0 {
		d = 1
	}
	return d
}

// Edge is a retiming-graph arc carrying W registers.
type Edge struct {
	From, To int
	W        int
}

// Graph is the Leiserson–Saxe retiming graph. Vertex 0 is the host
// (environment); vertices 1..len(Nodes) are the logic nodes.
type Graph struct {
	Nodes []*network.Node // Nodes[i] is vertex i+1
	Index map[*network.Node]int
	Edges []Edge
	Delay []float64 // per vertex; Delay[0] = 0 (host)
}

// Host is the environment vertex id.
const Host = 0

// BuildGraph constructs the retiming graph of a network. Registers between
// two logic endpoints become edge weights; chains of registers collapse
// into a single weighted edge. Primary inputs and outputs attach to the
// host vertex. Constant nodes get a zero-weight host edge, pinning their
// lag to keep degenerate register creation out of the solution space.
func BuildGraph(n *network.Network, d VertexDelay) (*Graph, error) {
	if d == nil {
		d = UnitVertexDelay
	}
	g := &Graph{Index: make(map[*network.Node]int)}
	for _, v := range n.Nodes() {
		if v.Kind == network.KindLogic {
			g.Nodes = append(g.Nodes, v)
			g.Index[v] = len(g.Nodes) // vertex id
		}
	}
	g.Delay = make([]float64, len(g.Nodes)+1)
	for i, v := range g.Nodes {
		g.Delay[i+1] = d(v)
	}

	// traceSource walks backwards through register chains from a fanin
	// node, returning the driving vertex id and the register count.
	traceSource := func(src *network.Node) (int, int, error) {
		w := 0
		cur := src
		for {
			switch cur.Kind {
			case network.KindLogic:
				return g.Index[cur], w, nil
			case network.KindPI:
				return Host, w, nil
			case network.KindLatchOut:
				l := n.LatchOfOutput(cur)
				if l == nil {
					return 0, 0, fmt.Errorf("retime: dangling latch output %s", cur.Name)
				}
				w++
				cur = l.Driver
			}
			if w > len(n.Latches)+1 {
				return 0, 0, fmt.Errorf("retime: register cycle without logic at %s", src.Name)
			}
		}
	}

	for _, v := range g.Nodes {
		to := g.Index[v]
		for _, fi := range v.Fanins {
			from, w, err := traceSource(fi)
			if err != nil {
				return nil, err
			}
			g.Edges = append(g.Edges, Edge{From: from, To: to, W: w})
		}
		if len(v.Fanins) == 0 {
			// Constant node: pin with a zero-weight host edge.
			g.Edges = append(g.Edges, Edge{From: Host, To: to, W: 0})
		}
	}
	for _, p := range n.POs {
		from, w, err := traceSource(p.Driver)
		if err != nil {
			return nil, err
		}
		if from == Host {
			continue // PI-to-PO feedthrough carries no retimable logic
		}
		g.Edges = append(g.Edges, Edge{From: from, To: Host, W: w})
	}
	// Latches whose outputs feed nothing do not constrain retiming, but
	// latch chains that terminate at the host via POs were handled above.
	return g, nil
}

// NumRegisters returns the total edge weight (the register count as seen
// by the graph; register sharing across fanout stems is not modeled, as in
// the basic Leiserson–Saxe formulation).
func (g *Graph) NumRegisters() int {
	t := 0
	for _, e := range g.Edges {
		t += e.W
	}
	return t
}

// Retimed returns the edge weights under lag assignment r (r[Host] must be
// 0), or an error if some weight would go negative.
func (g *Graph) Retimed(r []int) ([]int, error) {
	if r[Host] != 0 {
		return nil, fmt.Errorf("retime: host lag must be 0")
	}
	out := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		w := e.W + r[e.To] - r[e.From]
		if w < 0 {
			return nil, fmt.Errorf("retime: edge %d->%d weight %d negative", e.From, e.To, w)
		}
		out[i] = w
	}
	return out, nil
}

// Period computes the clock period of the graph under lags r: the longest
// vertex-delay path through zero-weight edges. An error signals a
// zero-weight cycle (combinational loop ⇒ infeasible).
func (g *Graph) Period(r []int) (float64, error) {
	nv := len(g.Nodes) + 1
	adj := make([][]int, nv) // zero-weight out-edges (target vertex ids)
	indeg := make([]int, nv)
	for _, e := range g.Edges {
		w := e.W
		if r != nil {
			w += r[e.To] - r[e.From]
		}
		if w == 0 && e.From != Host && e.To != Host {
			adj[e.From] = append(adj[e.From], e.To)
			indeg[e.To]++
		}
	}
	// Kahn's algorithm over internal vertices; host contributes delay 0 and
	// cannot sit on a zero-weight internal path.
	arr := make([]float64, nv)
	queue := make([]int, 0, nv)
	for v := 1; v < nv; v++ {
		arr[v] = g.Delay[v]
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	period := 0.0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		processed++
		if arr[u] > period {
			period = arr[u]
		}
		for _, v := range adj[u] {
			if a := arr[u] + g.Delay[v]; a > arr[v] {
				arr[v] = a
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if processed != nv-1 {
		return 0, fmt.Errorf("retime: zero-weight cycle (combinational loop)")
	}
	return period, nil
}
