package retime

import "math"

// mcmf is a small successive-shortest-path min-cost-flow solver used to
// solve the dual of the min-area retiming LP (Leiserson–Saxe OPT): the
// difference-constraint LP  min Σ c_v r_v  s.t.  r_u − r_v ≤ b_a  is the
// dual of a transshipment problem whose optimal node potentials give the
// optimal lags.
type mcmf struct {
	n    int
	head []int
	arcs []arc
}

type arc struct {
	to, next int
	cap      int64
	cost     int64
}

func newMCMF(n int) *mcmf {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &mcmf{n: n, head: h}
}

// addArc inserts a directed arc and its residual twin.
func (m *mcmf) addArc(u, v int, cap, cost int64) {
	m.arcs = append(m.arcs, arc{to: v, next: m.head[u], cap: cap, cost: cost})
	m.head[u] = len(m.arcs) - 1
	m.arcs = append(m.arcs, arc{to: u, next: m.head[v], cap: 0, cost: -cost})
	m.head[v] = len(m.arcs) - 1
}

const infCap = int64(1) << 40

// solve routes the given supplies (positive = source, negative = sink;
// they must sum to zero) at minimum cost. Returns false if the supplies
// cannot be routed.
func (m *mcmf) solve(supply []int64) bool {
	// Super source / sink.
	s, t := m.n, m.n+1
	m.head = append(m.head, -1, -1)
	m.n += 2
	var total int64
	for v, sp := range supply {
		if sp > 0 {
			m.addArc(s, v, sp, 0)
			total += sp
		} else if sp < 0 {
			m.addArc(v, t, -sp, 0)
		}
	}
	for total > 0 {
		dist, parent := m.bellmanFord(s)
		if dist[t] == math.MaxInt64 {
			return false
		}
		// Bottleneck along the path.
		push := total
		for v := t; v != s; {
			a := parent[v]
			if m.arcs[a].cap < push {
				push = m.arcs[a].cap
			}
			v = m.arcs[a^1].to
		}
		for v := t; v != s; {
			a := parent[v]
			m.arcs[a].cap -= push
			m.arcs[a^1].cap += push
			v = m.arcs[a^1].to
		}
		total -= push
	}
	return true
}

// bellmanFord computes shortest distances from src over residual arcs,
// returning the distance array and the arc used to enter each node.
func (m *mcmf) bellmanFord(src int) ([]int64, []int) {
	dist := make([]int64, m.n)
	parent := make([]int, m.n)
	inQ := make([]bool, m.n)
	pops := make([]int, m.n)
	for i := range dist {
		dist[i] = math.MaxInt64
		parent[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	inQ[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQ[u] = false
		pops[u]++
		if pops[u] > m.n+1 {
			// Negative cycle: the difference constraints are infeasible.
			// Report every node unreachable so the caller fails cleanly.
			for i := range dist {
				if i != src {
					dist[i] = math.MaxInt64
					parent[i] = -1
				}
			}
			return dist, parent
		}
		for a := m.head[u]; a != -1; a = m.arcs[a].next {
			if m.arcs[a].cap <= 0 {
				continue
			}
			v := m.arcs[a].to
			if nd := dist[u] + m.arcs[a].cost; nd < dist[v] {
				dist[v] = nd
				parent[v] = a
				if !inQ[v] {
					queue = append(queue, v)
					inQ[v] = true
				}
			}
		}
	}
	return dist, parent
}

// potentials returns distances from an implicit all-nodes virtual source
// over the residual graph (so every node is reachable). In an optimal
// residual network these distances are feasible potentials: for every
// residual arc (u,v,c): dist[v] ≤ dist[u] + c. The optimal LP duals are
// r_u = −dist[u].
func (m *mcmf) potentials(nReal int) ([]int64, bool) {
	dist := make([]int64, m.n)
	inQ := make([]bool, m.n)
	pops := make([]int, m.n)
	queue := make([]int, 0, m.n)
	for i := range dist {
		dist[i] = 0 // virtual source with 0-cost arcs to every node
		inQ[i] = true
		queue = append(queue, i)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQ[u] = false
		pops[u]++
		if pops[u] > m.n+1 {
			return nil, false // negative residual cycle: infeasible LP
		}
		for a := m.head[u]; a != -1; a = m.arcs[a].next {
			if m.arcs[a].cap <= 0 {
				continue
			}
			v := m.arcs[a].to
			if nd := dist[u] + m.arcs[a].cost; nd < dist[v] {
				dist[v] = nd
				if !inQ[v] {
					queue = append(queue, v)
					inQ[v] = true
				}
			}
		}
	}
	return dist[:nReal], true
}

// solveDifferenceLP minimizes Σ coef_v · r_v subject to r_u − r_v ≤ bound
// for each constraint, over integers. Constraints must admit r = 0 (all
// bounds ≥ 0 is sufficient). Returns the optimal assignment.
func solveDifferenceLP(nVars int, coef []int64, cons []constraint) ([]int64, bool) {
	m := newMCMF(nVars)
	for _, c := range cons {
		m.addArc(c.u, c.v, infCap, c.bound)
	}
	// Transshipment balances: node u must have net outflow −coef_u.
	supply := make([]int64, nVars)
	for v := range supply {
		supply[v] = -coef[v]
	}
	if !m.solve(supply) {
		return nil, false
	}
	dist, ok := m.potentials(nVars)
	if !ok {
		return nil, false
	}
	r := make([]int64, nVars)
	for v := range r {
		r[v] = -dist[v]
	}
	return r, true
}

type constraint struct {
	u, v  int
	bound int64
}
