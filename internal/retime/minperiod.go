package retime

import (
	"context"
	"fmt"

	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/obs"
)

// Info summarizes a retiming run.
type Info struct {
	PeriodBefore  float64
	PeriodAfter   float64
	RegsBefore    int
	RegsAfter     int
	ForwardMoves  int
	BackwardMoves int
	// RevertedMoves counts tentative moves undone because they missed the
	// period target or failed to reduce registers (greedy min-area only).
	RevertedMoves int
}

func (i Info) String() string {
	return fmt.Sprintf("period %.2f -> %.2f, regs %d -> %d (%d fwd, %d bwd moves)",
		i.PeriodBefore, i.PeriodAfter, i.RegsBefore, i.RegsAfter, i.ForwardMoves, i.BackwardMoves)
}

// record writes the run's transformation counters onto a span.
func (i Info) record(sp *obs.Span) {
	sp.Add("retime_moves_applied", int64(i.ForwardMoves+i.BackwardMoves))
	sp.Add("regs_forward_moved", int64(i.ForwardMoves))
	if i.RevertedMoves > 0 {
		sp.Add("retime_moves_reverted", int64(i.RevertedMoves))
	}
}

// arrivals computes Δ(v): the longest zero-weight-path delay ending at each
// vertex under lags r (nil = current weights).
func (g *Graph) arrivals(r []int) ([]float64, error) {
	nv := len(g.Nodes) + 1
	adj := make([][]int, nv)
	indeg := make([]int, nv)
	for _, e := range g.Edges {
		w := e.W
		if r != nil {
			w += r[e.To] - r[e.From]
		}
		if w == 0 && e.From != Host && e.To != Host {
			adj[e.From] = append(adj[e.From], e.To)
			indeg[e.To]++
		}
	}
	arr := make([]float64, nv)
	queue := make([]int, 0, nv)
	for v := 1; v < nv; v++ {
		arr[v] = g.Delay[v]
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		processed++
		for _, v := range adj[u] {
			if a := arr[u] + g.Delay[v]; a > arr[v] {
				arr[v] = a
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if processed != nv-1 {
		return nil, fmt.Errorf("retime: zero-weight cycle")
	}
	return arr, nil
}

// FEAS runs the Leiserson–Saxe feasibility algorithm for clock period c.
// It returns a legal lag assignment achieving period ≤ c, or ok=false.
func (g *Graph) FEAS(c float64) (r []int, ok bool) {
	nv := len(g.Nodes) + 1
	r = make([]int, nv)
	const eps = 1e-9
	for iter := 0; iter <= nv; iter++ {
		arr, err := g.arrivals(r)
		if err != nil {
			return nil, false
		}
		violated := false
		for v := 1; v < nv; v++ {
			if arr[v] > c+eps {
				violated = true
			}
		}
		if !violated {
			if _, err := g.Retimed(r); err != nil {
				return nil, false // defensive: FEAS must keep legality
			}
			return r, true
		}
		if iter == nv {
			break
		}
		for v := 1; v < nv; v++ {
			if arr[v] > c+eps {
				r[v]++
			}
		}
	}
	return nil, false
}

// MinPeriodLags finds the minimum feasible clock period and matching lags.
// Graphs within the W/D matrix limit use the exact OPT formulation;
// larger graphs fall back to binary search over FEAS. FEAS with a pinned
// host vertex can only add registers to vertex inputs (non-negative lags),
// so on large graphs the result is a sound upper bound rather than the
// true optimum — an authentic limitation of increment-only retimers.
func (g *Graph) MinPeriodLags() ([]int, float64, error) {
	return g.MinPeriodLagsCtx(context.Background())
}

// MinPeriodLagsCtx is MinPeriodLags with cancellation: the FEAS binary
// search checks ctx at every probe and returns a typed guard budget error
// once the deadline passes.
func (g *Graph) MinPeriodLagsCtx(ctx context.Context) ([]int, float64, error) {
	if len(g.Nodes)+1 <= MaxExactMinAreaVertices {
		if cerr := guard.Check(ctx, "retime.min_period"); cerr != nil {
			return nil, 0, cerr
		}
		if r, c, err := g.MinPeriodLagsOPT(); err == nil {
			return r, c, nil
		}
	}
	return g.minPeriodLagsFEAS(ctx)
}

// minPeriodLagsFEAS is the heuristic binary search over FEAS.
func (g *Graph) minPeriodLagsFEAS(ctx context.Context) ([]int, float64, error) {
	cur, err := g.Period(nil)
	if err != nil {
		return nil, 0, err
	}
	lo := 0.0
	for v := 1; v < len(g.Delay); v++ {
		if g.Delay[v] > lo {
			lo = g.Delay[v]
		}
	}
	hi := cur
	bestR, bestC := make([]int, len(g.Nodes)+1), cur
	if r, ok := g.FEAS(hi); ok {
		bestR, bestC = r, hi
	} else {
		// The current configuration achieves `cur` by construction; FEAS
		// failing here would be a bug, but fall back to the identity lags.
		bestR = make([]int, len(g.Nodes)+1)
		bestC = cur
	}
	if lo >= hi {
		return bestR, bestC, nil
	}
	for i := 0; i < 48 && hi-lo > 1e-6; i++ {
		if cerr := guard.Check(ctx, "retime.min_period"); cerr != nil {
			return nil, 0, fmt.Errorf("retime: binary search interrupted at [%g, %g]: %w", lo, hi, cerr)
		}
		mid := (lo + hi) / 2
		if r, ok := g.FEAS(mid); ok {
			// Tighten to the actual achieved period for exactness.
			if p, err := g.Period(r); err == nil && p <= bestC {
				bestR, bestC = r, p
				hi = p
			} else {
				hi = mid
			}
		} else {
			lo = mid
		}
	}
	return bestR, bestC, nil
}

// Apply realizes a lag assignment on the network by a sequence of atomic
// forward/backward moves, computing initial states along the way. On
// failure (typically: a backward move whose initial state has no preimage)
// the network is left in a valid, behaviour-preserving but partially
// retimed form and an error is returned.
func Apply(n *network.Network, g *Graph, r []int) (fwd, bwd int, err error) {
	return ApplyCtx(context.Background(), n, g, r)
}

// ApplyCtx is Apply with cancellation, checked once per move sweep.
func ApplyCtx(ctx context.Context, n *network.Network, g *Graph, r []int) (fwd, bwd int, err error) {
	lag := make([]int, len(r))
	copy(lag, r)
	for {
		if cerr := guard.Check(ctx, "retime.apply"); cerr != nil {
			return fwd, bwd, fmt.Errorf("retime: lag realization interrupted after %d moves: %w", fwd+bwd, cerr)
		}
		done := true
		progress := false
		for i, v := range g.Nodes {
			id := i + 1
			if lag[id] == 0 {
				continue
			}
			done = false
			if lag[id] < 0 && ForwardRetimable(n, v) {
				if _, err := Forward(n, v); err == nil {
					lag[id]++
					fwd++
					progress = true
				}
			} else if lag[id] > 0 && BackwardRetimable(n, v) {
				if _, err := Backward(n, v); err == nil {
					lag[id]--
					bwd++
					progress = true
				}
			}
		}
		if done {
			return fwd, bwd, nil
		}
		if !progress {
			return fwd, bwd, fmt.Errorf("retime: cannot realize retiming (initial-state computation failed or moves blocked)")
		}
	}
}

// MinPeriod retimes a copy of the network to its minimum achievable clock
// period (Leiserson–Saxe), computing initial states for every moved
// register. It returns the retimed copy; the input is not modified.
// An error is returned when the optimal lags cannot be realized with
// consistent initial states — the failure mode the paper reports for
// conventional retiming on several benchmarks.
func MinPeriod(n *network.Network, d VertexDelay) (*network.Network, Info, error) {
	return MinPeriodT(n, d, nil)
}

// MinPeriodT is MinPeriod with tracing: a "retime.min_period" span carrying
// applied-move counters, and a "retime_failed" counter on error.
func MinPeriodT(n *network.Network, d VertexDelay, tr *obs.Tracer) (*network.Network, Info, error) {
	return MinPeriodCtx(context.Background(), n, d, tr)
}

// MinPeriodCtx is MinPeriodT with cancellation: the lag search and the move
// realization check ctx and return a typed guard budget error once the
// deadline passes.
func MinPeriodCtx(ctx context.Context, n *network.Network, d VertexDelay, tr *obs.Tracer) (*network.Network, Info, error) {
	sp := tr.Begin("retime.min_period")
	defer sp.End()
	net, info, err := minPeriod(ctx, n, d)
	info.record(sp)
	if err != nil {
		sp.Add("retime_failed", 1)
	} else {
		tr.Event("retime.min_period", map[string]any{
			"period_before": info.PeriodBefore, "period_after": info.PeriodAfter,
			"regs_before": info.RegsBefore, "regs_after": info.RegsAfter,
		})
	}
	return net, info, err
}

func minPeriod(ctx context.Context, n *network.Network, d VertexDelay) (*network.Network, Info, error) {
	var info Info
	work := n.Clone()
	g, err := BuildGraph(work, d)
	if err != nil {
		return nil, info, err
	}
	info.RegsBefore = len(work.Latches)
	info.PeriodBefore, err = g.Period(nil)
	if err != nil {
		return nil, info, err
	}
	r, c, err := g.MinPeriodLagsCtx(ctx)
	if err != nil {
		return nil, info, err
	}
	info.PeriodAfter = c
	fwd, bwd, err := ApplyCtx(ctx, work, g, r)
	info.ForwardMoves, info.BackwardMoves = fwd, bwd
	if err != nil {
		return nil, info, err
	}
	// Collapse duplicate registers created by shared-driver moves.
	MergeSiblingRegisters(work)
	info.RegsAfter = len(work.Latches)
	if err := work.Check(); err != nil {
		return nil, info, fmt.Errorf("retime: post-retiming network invalid: %w", err)
	}
	return work, info, nil
}
