package retime

import (
	"context"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/obs"
)

// This file implements constrained min-area retiming: minimize the number
// of registers subject to the clock period not exceeding a target c — the
// post-processing step of the paper's Algorithm 1 ("Retime to minimize
// registers under the same delay constraints"). Small instances are solved
// exactly via the LP dual (min-cost flow); large instances fall back to a
// greedy peephole optimizer built from the same atomic moves.

// MaxExactMinAreaVertices bounds the O(V³) W/D matrix computation of the
// exact formulation.
const MaxExactMinAreaVertices = 420

// wdMatrices computes the Leiserson–Saxe W and D matrices:
// W(u,v) = minimum register count over u→v paths,
// D(u,v) = maximum path delay among minimum-register paths.
func (g *Graph) wdMatrices() ([][]int, [][]float64) {
	nv := len(g.Nodes) + 1
	const inf = int(1) << 30
	w := make([][]int, nv)
	d := make([][]float64, nv)
	for i := range w {
		w[i] = make([]int, nv)
		d[i] = make([]float64, nv)
		for j := range w[i] {
			w[i][j] = inf
			d[i][j] = math.Inf(-1)
		}
	}
	// Edge relaxation seeds: cost pairs (w(e), −d(u)) per LS; we carry
	// accumulated delay of the source-side prefix and add d(v) at the end.
	for _, e := range g.Edges {
		du := g.Delay[e.From]
		if e.W < w[e.From][e.To] || (e.W == w[e.From][e.To] && du > d[e.From][e.To]) {
			w[e.From][e.To] = e.W
			d[e.From][e.To] = du
		}
	}
	// The host is the environment, not a circuit vertex: combinational
	// paths never pass through it, so it may appear only as an endpoint.
	for k := 1; k < nv; k++ {
		for i := 0; i < nv; i++ {
			if w[i][k] >= inf {
				continue
			}
			for j := 0; j < nv; j++ {
				if w[k][j] >= inf {
					continue
				}
				nw := w[i][k] + w[k][j]
				nd := d[i][k] + d[k][j]
				if nw < w[i][j] || (nw == w[i][j] && nd > d[i][j]) {
					w[i][j] = nw
					d[i][j] = nd
				}
			}
		}
	}
	// Finalize: D(u,v) = prefix delay + d(v).
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			if w[i][j] < inf {
				d[i][j] += g.Delay[j]
			}
		}
	}
	return w, d
}

// MinAreaLags solves constrained min-area retiming exactly, returning lags
// minimizing the total edge register count subject to period ≤ c.
func (g *Graph) MinAreaLags(c float64) ([]int, error) {
	nv := len(g.Nodes) + 1
	if nv > MaxExactMinAreaVertices {
		return nil, fmt.Errorf("retime: %d vertices exceeds exact min-area limit", nv)
	}
	w, d := g.wdMatrices()
	var cons []constraint
	for _, e := range g.Edges {
		cons = append(cons, constraint{u: e.From, v: e.To, bound: int64(e.W)})
	}
	const inf = int(1) << 30
	const eps = 1e-9
	for u := 0; u < nv; u++ {
		for v := 0; v < nv; v++ {
			if w[u][v] >= inf || d[u][v] <= c+eps {
				continue
			}
			b := int64(w[u][v] - 1)
			if u == v {
				if b < 0 {
					return nil, fmt.Errorf("retime: period %.3f infeasible (critical cycle)", c)
				}
				continue
			}
			cons = append(cons, constraint{u: u, v: v, bound: b})
		}
	}
	coef := make([]int64, nv)
	for _, e := range g.Edges {
		coef[e.To]++   // indegree
		coef[e.From]-- // outdegree
	}
	r64, ok := solveDifferenceLP(nv, coef, cons)
	if !ok {
		return nil, fmt.Errorf("retime: min-area LP infeasible")
	}
	// Normalize the host's weakly connected component to r[Host] = 0;
	// other components shift to their own representative.
	comp := g.components()
	shift := make(map[int]int64)
	shift[comp[Host]] = r64[Host]
	for v := 0; v < nv; v++ {
		if _, ok := shift[comp[v]]; !ok {
			shift[comp[v]] = r64[v]
		}
	}
	r := make([]int, nv)
	for v := 0; v < nv; v++ {
		r[v] = int(r64[v] - shift[comp[v]])
	}
	if _, err := g.Retimed(r); err != nil {
		return nil, fmt.Errorf("retime: min-area solution illegal: %w", err)
	}
	if p, err := g.Period(r); err != nil || p > c+eps {
		return nil, fmt.Errorf("retime: min-area solution misses period (p=%v, err=%v)", p, err)
	}
	return r, nil
}

// components labels weakly connected components of the graph.
func (g *Graph) components() []int {
	nv := len(g.Nodes) + 1
	adj := make([][]int, nv)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	comp := make([]int, nv)
	for i := range comp {
		comp[i] = -1
	}
	cid := 0
	for v := 0; v < nv; v++ {
		if comp[v] >= 0 {
			continue
		}
		stack := []int{v}
		comp[v] = cid
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, x := range adj[u] {
				if comp[x] < 0 {
					comp[x] = cid
					stack = append(stack, x)
				}
			}
		}
		cid++
	}
	return comp
}

// MinAreaUnderPeriod retimes a copy of the network to minimize registers
// without exceeding clock period c. Exact (flow-based) below the size
// limit, greedy peephole otherwise or when the exact lags cannot be
// realized with consistent initial states.
func MinAreaUnderPeriod(n *network.Network, d VertexDelay, c float64) (*network.Network, Info, error) {
	return MinAreaUnderPeriodT(n, d, c, nil)
}

// MinAreaUnderPeriodT is MinAreaUnderPeriod with tracing: a
// "retime.min_area" span carrying applied/reverted move counters.
func MinAreaUnderPeriodT(n *network.Network, d VertexDelay, c float64, tr *obs.Tracer) (*network.Network, Info, error) {
	return MinAreaUnderPeriodCtx(context.Background(), n, d, c, tr)
}

// MinAreaUnderPeriodCtx is MinAreaUnderPeriodT with cancellation: the exact
// lag realization and the greedy peephole sweep check ctx and return a
// typed guard budget error once the deadline passes.
func MinAreaUnderPeriodCtx(ctx context.Context, n *network.Network, d VertexDelay, c float64, tr *obs.Tracer) (*network.Network, Info, error) {
	sp := tr.Begin("retime.min_area")
	defer sp.End()
	net, info, err := minAreaUnderPeriod(ctx, n, d, c)
	info.record(sp)
	if err != nil {
		sp.Add("retime_failed", 1)
	}
	return net, info, err
}

func minAreaUnderPeriod(ctx context.Context, n *network.Network, d VertexDelay, c float64) (*network.Network, Info, error) {
	var info Info
	work := n.Clone()
	g, err := BuildGraph(work, d)
	if err != nil {
		return nil, info, err
	}
	info.RegsBefore = len(work.Latches)
	info.PeriodBefore, err = g.Period(nil)
	if err != nil {
		return nil, info, err
	}
	if info.PeriodBefore > c+1e-9 {
		return nil, info, fmt.Errorf("retime: network already misses the period target")
	}
	exactOK := false
	if len(g.Nodes)+1 <= MaxExactMinAreaVertices {
		if r, err := g.MinAreaLags(c); err == nil {
			attempt := work.Clone()
			ag, aerr := BuildGraph(attempt, d)
			if aerr == nil {
				if fwd, bwd, aerr := ApplyCtx(ctx, attempt, ag, r); aerr == nil {
					MergeSiblingRegisters(attempt)
					// The LP minimizes per-edge register counts (no
					// fanout sharing in the basic Leiserson–Saxe model);
					// adopt its solution only when the physical register
					// count actually improved.
					if len(attempt.Latches) < len(work.Latches) {
						info.ForwardMoves, info.BackwardMoves = fwd, bwd
						work = attempt
						exactOK = true
					}
				}
			}
		}
	}
	MergeSiblingRegisters(work)
	RemoveConstantRegisters(work)
	// Greedy fallback is quadratic in the worst case (tentative clones);
	// very large circuits rely on sibling merging alone.
	if !exactOK && work.NumLogicNodes() <= 1200 {
		if gerr := greedyMinArea(ctx, work, d, c, &info); gerr != nil {
			return nil, info, gerr
		}
	}
	MergeSiblingRegisters(work)
	RemoveConstantRegisters(work)
	info.RegsAfter = len(work.Latches)
	info.PeriodAfter, _ = periodOf(work, d)
	if err := work.Check(); err != nil {
		return nil, info, fmt.Errorf("retime: post-min-area network invalid: %w", err)
	}
	return work, info, nil
}

func periodOf(n *network.Network, d VertexDelay) (float64, error) {
	g, err := BuildGraph(n, d)
	if err != nil {
		return 0, err
	}
	return g.Period(nil)
}

// greedyMinArea performs tentative atomic moves that reduce the register
// count, keeping each only if the clock period stays within c. On budget
// exhaustion it stops and reports the typed error (moves already committed
// are behaviour-preserving, but the caller treats the pass as failed).
func greedyMinArea(ctx context.Context, n *network.Network, d VertexDelay, c float64, info *Info) error {
	const eps = 1e-9
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, v := range append([]*network.Node(nil), n.Nodes()...) {
			if cerr := guard.Check(ctx, "retime.min_area"); cerr != nil {
				return fmt.Errorf("retime: greedy min-area interrupted: %w", cerr)
			}
			if v.Kind != network.KindLogic {
				continue
			}
			if n.FindNode(v.Name) != v {
				continue // removed during this pass
			}
			// Candidate backward move: wins when the node drives more
			// registers than it has fanins.
			if len(n.LatchesDrivenBy(v)) > len(v.Fanins) && BackwardRetimable(n, v) {
				before := len(n.Latches)
				snapshot := n.Clone()
				if _, err := Backward(n, v); err == nil {
					MergeSiblingRegisters(n)
					p, perr := periodOf(n, d)
					if perr == nil && p <= c+eps && len(n.Latches) < before {
						improved = true
						info.BackwardMoves++
						continue
					}
				}
				restore(n, snapshot)
				info.RevertedMoves++
				continue
			}
			// Candidate forward move: wins when it frees more fanin
			// registers than the single register it creates.
			if ForwardRetimable(n, v) {
				frees := 0
				for _, fi := range v.Fanins {
					if n.NumFanouts(fi) == 1 {
						frees++
					}
				}
				if frees < 2 {
					continue
				}
				before := len(n.Latches)
				snapshot := n.Clone()
				if _, err := Forward(n, v); err == nil {
					MergeSiblingRegisters(n)
					p, perr := periodOf(n, d)
					if perr == nil && p <= c+eps && len(n.Latches) < before {
						improved = true
						info.ForwardMoves++
						continue
					}
				}
				restore(n, snapshot)
				info.RevertedMoves++
			}
		}
		if !improved {
			return nil
		}
	}
	return nil
}

// restore copies the snapshot's contents back into n (n's identity is
// preserved for callers holding the pointer).
func restore(n *network.Network, snapshot *network.Network) {
	*n = *snapshot
}
