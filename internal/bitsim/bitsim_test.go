package bitsim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitsim"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/sim"
)

// randTestNetwork builds a random sequential network: nPI inputs, nLatch
// registers (random init incl. X), nNode logic nodes over random fanins
// drawn from everything defined so far, latch drivers and POs picked from
// the logic nodes.
func randTestNetwork(r *rand.Rand, nPI, nLatch, nNode int) *network.Network {
	n := network.New(fmt.Sprintf("rnd%d", r.Intn(1<<30)))
	var sources []*network.Node
	for i := 0; i < nPI; i++ {
		sources = append(sources, n.AddPI(fmt.Sprintf("i%d", i)))
	}
	var latches []*network.Latch
	for i := 0; i < nLatch; i++ {
		init := []network.Value{network.V0, network.V1, network.VX}[r.Intn(3)]
		l := n.AddLatch(fmt.Sprintf("s%d", i), nil, init)
		latches = append(latches, l)
		sources = append(sources, l.Output)
	}
	var nodes []*network.Node
	for i := 0; i < nNode; i++ {
		k := 1 + r.Intn(3)
		if k > len(sources) {
			k = len(sources)
		}
		fanins := make([]*network.Node, 0, k)
		seen := map[*network.Node]bool{}
		for len(fanins) < k {
			c := sources[r.Intn(len(sources))]
			if !seen[c] {
				seen[c] = true
				fanins = append(fanins, c)
			}
		}
		f := logic.NewCover(len(fanins))
		for c := 0; c < 1+r.Intn(3); c++ {
			cube := logic.NewCube(len(fanins))
			for v := 0; v < len(fanins); v++ {
				switch r.Intn(3) {
				case 0:
					cube.SetLit(v, logic.LitNeg)
				case 1:
					cube.SetLit(v, logic.LitPos)
				}
			}
			f.Add(cube)
		}
		v := n.AddLogic(fmt.Sprintf("g%d", i), fanins, f)
		nodes = append(nodes, v)
		sources = append(sources, v)
	}
	pick := func() *network.Node { return nodes[r.Intn(len(nodes))] }
	for _, l := range latches {
		l.Driver = pick()
	}
	for i := 0; i < 1+r.Intn(3); i++ {
		n.AddPO(fmt.Sprintf("o%d", i), pick())
	}
	return n
}

func valOf(one, zero uint64, lane int) network.Value {
	switch {
	case one>>uint(lane)&1 == 1:
		return network.V1
	case zero>>uint(lane)&1 == 1:
		return network.V0
	default:
		return network.VX
	}
}

// TestPropertyBitsimMatchesScalar pins the packed engine against the
// scalar 3-valued simulator bit-for-bit: random networks, random initial
// states (including X), random PI patterns (including X), every lane,
// every PO, every latch, every cycle.
func TestPropertyBitsimMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := randTestNetwork(r, 1+r.Intn(4), r.Intn(4), 1+r.Intn(8))
		bs, err := bitsim.Compile(n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const lanes = bitsim.LanesPerWord
		scalars := make([]*sim.Simulator, lanes)
		for l := range scalars {
			s, err := sim.New(n)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			scalars[l] = s
		}
		b := bs.NewBlock()
		bs.Reset(b)
		// Random per-lane initial state, mirrored into both simulators.
		for i := range n.Latches {
			var one, zero uint64
			st := make([]network.Value, lanes)
			for l := 0; l < lanes; l++ {
				switch r.Intn(3) {
				case 0:
					zero |= uint64(1) << uint(l)
					st[l] = network.V0
				case 1:
					one |= uint64(1) << uint(l)
					st[l] = network.V1
				default:
					st[l] = network.VX
				}
			}
			bs.SetLatch(b, i, one, zero)
			for l, s := range scalars {
				v := s.State()
				v[i] = st[l]
				s.SetState(v)
			}
		}
		piOne := make([]uint64, len(n.PIs))
		piZero := make([]uint64, len(n.PIs))
		for cycle := 0; cycle < 10; cycle++ {
			piVals := make([]map[*network.Node]network.Value, lanes)
			for l := range piVals {
				piVals[l] = map[*network.Node]network.Value{}
			}
			for i, p := range n.PIs {
				piOne[i], piZero[i] = 0, 0
				for l := 0; l < lanes; l++ {
					switch r.Intn(3) {
					case 0:
						piZero[i] |= uint64(1) << uint(l)
						piVals[l][p] = network.V0
					case 1:
						piOne[i] |= uint64(1) << uint(l)
						piVals[l][p] = network.V1
					default:
						piVals[l][p] = network.VX
					}
				}
			}
			bs.Step(b, piOne, piZero)
			for l, s := range scalars {
				out := s.Step3(piVals[l])
				for i, p := range n.POs {
					one, zero := bs.PO(b, i)
					if got, want := valOf(one, zero, l), out[p.Name]; got != want {
						t.Fatalf("trial %d cycle %d lane %d PO %s: bitsim=%v scalar=%v",
							trial, cycle, l, p.Name, got, want)
					}
				}
				st := s.State()
				for i := range n.Latches {
					one, zero := bs.Latch(b, i)
					if got, want := valOf(one, zero, l), st[i]; got != want {
						t.Fatalf("trial %d cycle %d lane %d latch %d: bitsim=%v scalar=%v",
							trial, cycle, l, i, got, want)
					}
				}
			}
		}
	}
}

// buildToggle returns a pair of 2-bit enabled counters; when corrupt is
// true the second machine's carry is damaged (AND became OR), which any
// random sweep separates quickly.
func buildToggle(corrupt bool) (*network.Network, *network.Network) {
	build := func(name string, bad bool) *network.Network {
		n := network.New(name)
		en := n.AddPI("en")
		l0 := n.AddLatch("s0", nil, network.V0)
		l1 := n.AddLatch("s1", nil, network.V0)
		carryF := logic.MustParseCover(2, "11")
		if bad {
			carryF = logic.MustParseCover(2, "1-", "-1")
		}
		c := n.AddLogic("c", []*network.Node{en, l0.Output}, carryF)
		d0 := n.AddLogic("d0", []*network.Node{en, l0.Output},
			logic.MustParseCover(2, "10", "01"))
		d1 := n.AddLogic("d1", []*network.Node{c, l1.Output},
			logic.MustParseCover(2, "10", "01"))
		l0.Driver = d0
		l1.Driver = d1
		n.AddPO("y", d1)
		return n
	}
	return build("a", false), build("b", corrupt)
}

// TestRandomEquivalentMatchesScalarFirstDivergence pins lane-0 parity: the
// batched check must report the exact same first-divergence cycle and
// signal (same error string) as the scalar oracle, for a range of seeds
// and delayed-replacement prefixes.
func TestRandomEquivalentMatchesScalarFirstDivergence(t *testing.T) {
	a, b := buildToggle(true)
	for _, delay := range []int{0, 3} {
		for seed := int64(1); seed <= 5; seed++ {
			want := sim.RandomEquivalentScalar(a, b, delay, 200, seed)
			got := sim.RandomEquivalent(a, b, delay, 200, seed)
			if want == nil {
				t.Fatalf("seed %d: scalar oracle unexpectedly passed", seed)
			}
			if got == nil || got.Error() != want.Error() {
				t.Fatalf("seed %d delay %d: bitsim %v, scalar %v", seed, delay, got, want)
			}
		}
	}
	a, b = buildToggle(false)
	for seed := int64(1); seed <= 3; seed++ {
		if err := sim.RandomEquivalent(a, b, 0, 200, seed); err != nil {
			t.Fatalf("equivalent pair rejected: %v", err)
		}
	}
}

// TestRandomEquivalentXPanicParity: an X initial state reaching a PO must
// panic with the scalar's exact message (guard.Tx maps that panic to an
// inconclusive smoke check, so the classification must not drift).
func TestRandomEquivalentXPanicParity(t *testing.T) {
	build := func() *network.Network {
		n := network.New("x")
		pi := n.AddPI("i")
		l := n.AddLatch("s", nil, network.VX)
		g := n.AddLogic("g", []*network.Node{pi, l.Output}, logic.MustParseCover(2, "11"))
		l.Driver = g
		n.AddPO("y", g)
		return n
	}
	a, b := build(), build()
	catch := func(f func()) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		f()
		return ""
	}
	want := catch(func() { _ = sim.RandomEquivalentScalar(a, b, 0, 50, 1) })
	got := catch(func() { _ = sim.RandomEquivalent(a, b, 0, 50, 1) })
	if want == "" {
		t.Fatal("scalar oracle did not panic on X at PO")
	}
	if got != want {
		t.Fatalf("panic mismatch: bitsim %q, scalar %q", got, want)
	}
}

// TestCrossWidthDeterminism: results are byte-identical for -workers 1 vs
// N, with stream counts not divisible by 64 (masked tail words).
func TestCrossWidthDeterminism(t *testing.T) {
	a, b := buildToggle(true)
	for _, streams := range []int{7, 64, 100, 130} {
		var errs []string
		for _, workers := range []int{1, 8} {
			err := bitsim.RandomEquivalent(a, b, 2, 100, 3,
				bitsim.Options{Streams: streams, Workers: workers})
			if err == nil {
				t.Fatalf("streams %d workers %d: corrupted pair passed", streams, workers)
			}
			errs = append(errs, err.Error())
		}
		if errs[0] != errs[1] {
			t.Fatalf("streams %d: workers 1 vs 8 disagree: %q vs %q", streams, errs[0], errs[1])
		}
	}

	// The toggle counter is XOR-based and never leaves all-X, so use an
	// AND-gated register pair (clearable by r=0) for the sync search.
	n := network.New("clearable")
	r := n.AddPI("r")
	i := n.AddPI("i")
	l0 := n.AddLatch("s0", nil, network.VX)
	l1 := n.AddLatch("s1", nil, network.VX)
	g0 := n.AddLogic("g0", []*network.Node{r, i}, logic.MustParseCover(2, "11"))
	g1 := n.AddLogic("g1", []*network.Node{r, l0.Output}, logic.MustParseCover(2, "11"))
	l0.Driver = g0
	l1.Driver = g1
	n.AddPO("y", g1)
	var seqs [][][]bool
	for _, workers := range []int{1, 8} {
		seq, ok := bitsim.SynchronizingSequence(n, 20, 5,
			bitsim.Options{Streams: 100, Workers: workers})
		if !ok {
			t.Fatalf("workers %d: no synchronizing sequence found", workers)
		}
		seqs = append(seqs, seq)
	}
	if !reflect.DeepEqual(seqs[0], seqs[1]) {
		t.Fatalf("sync sequence differs across widths:\n%v\nvs\n%v", seqs[0], seqs[1])
	}
}

// TestSynchronizingSequenceCertificateIsValid replays every returned
// sequence on the scalar simulator: starting from all-X, the final state
// must be fully defined. The bitsim search may pick a different sequence
// than the scalar oracle, but it must always return a true certificate.
func TestSynchronizingSequenceCertificateIsValid(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	found := 0
	for trial := 0; trial < 30; trial++ {
		n := randTestNetwork(r, 1+r.Intn(3), 1+r.Intn(3), 1+r.Intn(6))
		seq, ok := sim.SynchronizingSequence(n, 15, 64, int64(trial+1))
		if !ok {
			continue
		}
		found++
		s, err := sim.New(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]network.Value, len(n.Latches))
		for i := range x {
			x[i] = network.VX
		}
		s.SetState(x)
		for _, bits := range seq {
			pi := map[*network.Node]network.Value{}
			for i, p := range n.PIs {
				if bits[i] {
					pi[p] = network.V1
				} else {
					pi[p] = network.V0
				}
			}
			s.Step3(pi)
		}
		if !s.AllDefined() {
			t.Fatalf("trial %d: returned sequence does not synchronize", trial)
		}
	}
	if found == 0 {
		t.Fatal("no trial produced a synchronizing sequence; test is vacuous")
	}
}
