package bitsim

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/parexec"
)

// Options tunes the batched searches. The zero value is the default used
// throughout the pipeline: 64 streams (one word block), inline execution.
type Options struct {
	// Streams is the number of independent random input streams to drive
	// (default 64). Streams round up into ceil(Streams/64) word blocks;
	// counts not divisible by 64 leave the tail block partially masked.
	Streams int
	// Workers bounds the parexec fan-out over word blocks (<=0 selects
	// GOMAXPROCS). Results are merged in block order, so the outcome is
	// byte-identical at any width.
	Workers int
	// Tracer receives a "bitsim.*" span with vectors/words/streams
	// counters per call (nil: no tracing).
	Tracer *obs.Tracer
}

func (o Options) streams() int {
	if o.Streams <= 0 {
		return LanesPerWord
	}
	return o.Streams
}

// xPanicMsg matches the scalar StepBits panic exactly: guard's smoke check
// treats it as "inconclusive", and that classification must not change
// when the batched path replaces the scalar one.
const xPanicMsg = "sim: X reached a PO under two-valued simulation"

// laneRNG produces one lane's input bit stream. Global lane 0 replays the
// exact math/rand stream of the scalar path (one Intn(2) draw per PI per
// cycle from rand.NewSource(seed)), so first-divergence diagnostics remain
// reproducible against the scalar oracle; every other lane draws from a
// splitmix64 generator derived from (seed, lane).
type laneRNG struct {
	std  *rand.Rand
	s    uint64
	buf  uint64
	left int
}

func newLaneRNG(seed int64, lane int, scalarParity bool) laneRNG {
	if scalarParity && lane == 0 {
		return laneRNG{std: rand.New(rand.NewSource(seed))}
	}
	s := uint64(seed) ^ (uint64(lane)+1)*0x9E3779B97F4A7C15
	return laneRNG{s: s}
}

func splitmix(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (g *laneRNG) bit() bool {
	if g.std != nil {
		return g.std.Intn(2) == 1
	}
	if g.left == 0 {
		g.buf = splitmix(&g.s)
		g.left = 64
	}
	b := g.buf&1 == 1
	g.buf >>= 1
	g.left--
	return b
}

// poPair matches one PO of a to the same-named PO of b.
type poPair struct{ ia, ib int }

// matchPOs reproduces the scalar pairing (and its error messages): every
// PO of a must exist in b by name.
func matchPOs(a, b *network.Network) ([]poPair, error) {
	var pairs []poPair
	for ia, pa := range a.POs {
		found := false
		for ib, pb := range b.POs {
			if pa.Name == pb.Name {
				pairs = append(pairs, poPair{ia, ib})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sim: PO %q missing in %s", pa.Name, b.Name)
		}
	}
	return pairs, nil
}

// eqMismatch is one block's verdict.
type eqMismatch struct {
	// scalarErr is the exact scalar-parity failure observed on global lane
	// 0 (block 0 only).
	scalarErr error
	// found marks a conservative mismatch on some other lane: both POs
	// defined and different.
	found             bool
	cycle, lane, pair int
}

// RandomEquivalent drives both networks with the same random input vectors
// on opt.Streams independent streams for `cycles` cycles after a warm-up
// prefix of `delay` cycles each (the paper's delayed replacement: machines
// need only agree after k power-up cycles). POs are matched by name.
//
// Stream 0 replays the exact vector sequence of the scalar oracle
// (sim.RandomEquivalentScalar) for the same seed, with the same failure
// behaviour: its first PO divergence is reported with the scalar error
// message, and an X reaching a PO on stream 0 panics like the scalar
// two-valued simulator (the guard smoke check maps that to
// "inconclusive"). The remaining streams add coverage: a divergence on
// stream k>0 (both sides defined, values different) is reported with the
// stream index unless stream 0 already failed. Returns nil if no mismatch
// was observed on any stream.
func RandomEquivalent(a, b *network.Network, delay, cycles int, seed int64, opt Options) error {
	if len(a.PIs) != len(b.PIs) {
		return fmt.Errorf("sim: PI count differs: %d vs %d", len(a.PIs), len(b.PIs))
	}
	sa, err := Compile(a)
	if err != nil {
		return err
	}
	sb, err := Compile(b)
	if err != nil {
		return err
	}
	pairs, err := matchPOs(a, b)
	if err != nil {
		return err
	}
	streams := opt.streams()
	nBlocks := (streams + LanesPerWord - 1) / LanesPerWord
	total := delay + cycles

	sp := opt.Tracer.Begin("bitsim.random_equivalent")
	defer sp.End()
	sp.Add("bitsim_streams", int64(streams))
	sp.Add("bitsim_cycles", int64(total))
	sp.Add("bitsim_vectors", int64(streams)*int64(total))
	sp.Add("bitsim_words", int64(nBlocks)*int64(total)*int64(sa.NumSignals()+sb.NumSignals()))
	sp.Add("bitsim_pack_words", int64(nBlocks)*int64(total)*int64(len(a.PIs)))

	blockIdx := make([]int, nBlocks)
	for i := range blockIdx {
		blockIdx[i] = i
	}
	results, _ := parexec.Map(context.Background(), opt.Workers, blockIdx,
		func(_ context.Context, _ int, blk int) (eqMismatch, error) {
			return runEquivBlock(sa, sb, pairs, blk, streams, delay, total, seed), nil
		})

	// Merge in block order: the scalar-parity lane wins outright, then the
	// earliest (cycle, lane, pair) conservative mismatch.
	if len(results) > 0 && results[0].scalarErr != nil {
		return results[0].scalarErr
	}
	best := eqMismatch{}
	for _, r := range results {
		if !r.found {
			continue
		}
		if !best.found || r.cycle < best.cycle ||
			(r.cycle == best.cycle && (r.lane < best.lane || (r.lane == best.lane && r.pair < best.pair))) {
			best = r
		}
	}
	if best.found {
		return fmt.Errorf("sim: PO %q differs at cycle %d on stream %d (after %d-cycle prefix)",
			a.POs[pairs[best.pair].ia].Name, best.cycle, best.lane, delay)
	}
	return nil
}

// runEquivBlock simulates 64 streams of one block through both machines.
// Block 0 additionally enforces the scalar semantics on lane 0: X at any
// PO panics (before the cycle's comparison, like StepBits), and lane 0's
// first post-prefix divergence returns immediately with the scalar error.
func runEquivBlock(sa, sb *Sim, pairs []poPair, blk, streams, delay, total int, seed int64) eqMismatch {
	lo := blk * LanesPerWord
	active := streams - lo
	if active > LanesPerWord {
		active = LanesPerWord
	}
	activeMask := ^uint64(0)
	if active < LanesPerWord {
		activeMask = (uint64(1) << uint(active)) - 1
	}
	othersMask := activeMask
	scalarLane := blk == 0
	if scalarLane {
		othersMask &^= 1
	}

	rngs := make([]laneRNG, active)
	for l := range rngs {
		rngs[l] = newLaneRNG(seed, lo+l, scalarLane)
	}
	nPI := sa.NumPIs()
	piOne := make([]uint64, nPI)
	piZero := make([]uint64, nPI)
	ba := sa.NewBlock()
	bb := sb.NewBlock()
	sa.Reset(ba)
	sb.Reset(bb)

	res := eqMismatch{}
	for c := 0; c < total; c++ {
		for i := range piOne {
			piOne[i] = 0
		}
		for l := range rngs {
			for i := 0; i < nPI; i++ {
				if rngs[l].bit() {
					piOne[i] |= uint64(1) << uint(l)
				}
			}
		}
		for i := range piOne {
			piZero[i] = ^piOne[i]
		}
		sa.Step(ba, piOne, piZero)
		sb.Step(bb, piOne, piZero)

		if scalarLane {
			// Scalar StepBits order: network a's POs first, then b's.
			for i := 0; i < sa.NumPOs(); i++ {
				one, zero := sa.PO(ba, i)
				if (one|zero)&1 == 0 {
					panic(xPanicMsg)
				}
			}
			for i := 0; i < sb.NumPOs(); i++ {
				one, zero := sb.PO(bb, i)
				if (one|zero)&1 == 0 {
					panic(xPanicMsg)
				}
			}
		}
		if c < delay {
			continue
		}
		for pi, p := range pairs {
			aOne, aZero := sa.PO(ba, p.ia)
			bOne, bZero := sb.PO(bb, p.ib)
			if scalarLane && (aOne^bOne)&1 != 0 {
				return eqMismatch{scalarErr: fmt.Errorf(
					"sim: PO %q differs at cycle %d (after %d-cycle prefix)",
					sa.net.POs[p.ia].Name, c, delay)}
			}
			if !res.found {
				// Conservative on the extra streams: a mismatch needs both
				// sides defined with opposite values; X compares equal.
				if mm := ((aOne & bZero) | (aZero & bOne)) & othersMask; mm != 0 {
					res = eqMismatch{found: true, cycle: c, lane: lo + bits.TrailingZeros64(mm), pair: pi}
					if !scalarLane {
						// Nothing else in this block can beat its own
						// earliest mismatch; block 0 must keep simulating
						// for the scalar lane.
						return res
					}
				}
			}
		}
	}
	return res
}
