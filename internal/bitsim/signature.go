package bitsim

// Signature hashing: the packed-word digests that turn simulation runs
// into candidate equivalence classes. Sequential sweeping (internal/sweep)
// partitions registers and AIG nodes by fingerprint before spending SAT
// effort on them; any future caller that needs "did these two signals ever
// see different values" gets the same mixing function instead of
// re-deriving an ad-hoc digest.

// MixSig folds one dual-rail word pair into a running 64-bit digest. The
// finalizer is splitmix64's, preceded by distinct odd-constant
// multiplications of the two planes so that (one, zero) and (zero, one)
// — a signal and its complement — land on different digests. Equal signal
// streams produce equal digests by construction; unequal streams collide
// with probability ~2⁻⁶⁴ per fold.
func MixSig(acc, one, zero uint64) uint64 {
	z := acc ^ one*0x9E3779B97F4A7C15 ^ (zero*0xD1B54A32D192ED03)<<1
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Signature returns a fresh 64-bit fingerprint per signal of the block's
// current dual-rail words. Two signals whose lanes currently agree (and
// agree on definedness) get identical fingerprints.
func (b *Block) Signature() []uint64 {
	sig := make([]uint64, len(b.one))
	for i := range sig {
		sig[i] = MixSig(0, b.one[i], b.zero[i])
	}
	return sig
}

// UpdateSignature folds the block's current per-signal words into acc,
// which must have NumSignals entries (as returned by Signature). Calling
// it after every Step accumulates a stream fingerprint: signals with equal
// histories keep equal accumulators.
func (b *Block) UpdateSignature(acc []uint64) {
	if len(acc) != len(b.one) {
		panic("bitsim: UpdateSignature accumulator length mismatch")
	}
	for i := range acc {
		acc[i] = MixSig(acc[i], b.one[i], b.zero[i])
	}
}
