package bitsim

import (
	"context"
	"math/bits"

	"repro/internal/network"
	"repro/internal/parexec"
)

// syncHit is one block's best synchronizing-sequence candidate.
type syncHit struct {
	found       bool
	cycle, lane int     // absolute lane index, earliest (cycle, lane) in block
	seq         [][]bool // the winning lane's input vectors, len cycle+1
}

// SynchronizingSequence searches for an input sequence that drives n from
// the all-X power-up state into a fully defined state, exploring 64 random
// candidate sequences per word pass (opt.Streams candidates total, default
// 64; the scalar oracle's `tries` maps onto that knob). Definedness under
// conservative X-propagation is monotone in the lane, so the first cycle
// at which a lane's every latch is defined yields that lane's shortest
// certificate. Blocks merge in index order and lanes in bit order, making
// the result deterministic at any worker width. Returns (sequence, true)
// on success, (nil, false) if no candidate synchronizes within maxLen.
func SynchronizingSequence(n *network.Network, maxLen int, seed int64, opt Options) ([][]bool, bool) {
	s, err := Compile(n)
	if err != nil {
		return nil, false
	}
	if maxLen <= 0 {
		return nil, false
	}
	streams := opt.streams()
	nBlocks := (streams + LanesPerWord - 1) / LanesPerWord

	sp := opt.Tracer.Begin("bitsim.sync_sequence")
	defer sp.End()
	sp.Add("bitsim_streams", int64(streams))
	sp.Add("bitsim_cycles", int64(maxLen))
	sp.Add("bitsim_vectors", int64(streams)*int64(maxLen))
	sp.Add("bitsim_words", int64(nBlocks)*int64(maxLen)*int64(s.NumSignals()))

	blockIdx := make([]int, nBlocks)
	for i := range blockIdx {
		blockIdx[i] = i
	}
	results, _ := parexec.Map(context.Background(), opt.Workers, blockIdx,
		func(_ context.Context, _ int, blk int) (syncHit, error) {
			return runSyncBlock(s, blk, streams, maxLen, seed), nil
		})

	// First block with a hit wins: block order mirrors the scalar oracle's
	// try order, and within a block runSyncBlock already picked the
	// earliest (cycle, lane).
	for _, r := range results {
		if r.found {
			return r.seq, true
		}
	}
	return nil, false
}

// runSyncBlock drives 64 candidate sequences from all-X and returns the
// earliest fully-defined lane, with its input history unpacked to bools.
func runSyncBlock(s *Sim, blk, streams, maxLen int, seed int64) syncHit {
	lo := blk * LanesPerWord
	active := streams - lo
	if active > LanesPerWord {
		active = LanesPerWord
	}
	activeMask := ^uint64(0)
	if active < LanesPerWord {
		activeMask = (uint64(1) << uint(active)) - 1
	}

	rngs := make([]laneRNG, active)
	for l := range rngs {
		// No scalar-parity lane here: every candidate is a fresh stream.
		rngs[l] = newLaneRNG(seed, lo+l, false)
	}
	nPI := s.NumPIs()
	b := s.NewBlock()
	s.SetAllX(b)

	// piHist[c] is the packed one-words of cycle c, kept to unpack the
	// winning lane's sequence.
	piHist := make([][]uint64, 0, maxLen)
	piZero := make([]uint64, nPI)
	for c := 0; c < maxLen; c++ {
		piOne := make([]uint64, nPI)
		for l := range rngs {
			for i := 0; i < nPI; i++ {
				if rngs[l].bit() {
					piOne[i] |= uint64(1) << uint(l)
				}
			}
		}
		for i := range piOne {
			piZero[i] = ^piOne[i]
		}
		piHist = append(piHist, piOne)
		s.Step(b, piOne, piZero)
		if m := s.DefinedLatches(b) & activeMask; m != 0 {
			lane := bits.TrailingZeros64(m)
			seq := make([][]bool, c+1)
			for t := 0; t <= c; t++ {
				vec := make([]bool, nPI)
				for i := 0; i < nPI; i++ {
					vec[i] = piHist[t][i]>>uint(lane)&1 == 1
				}
				seq[t] = vec
			}
			return syncHit{found: true, cycle: c, lane: lo + lane, seq: seq}
		}
	}
	return syncHit{}
}
