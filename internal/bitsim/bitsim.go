// Package bitsim is the bit-parallel (word-packed) simulation engine
// behind the random-vector spot checks: it compiles each node's SOP cover
// once per network into literal index lists and then evaluates 64
// independent input vectors per uint64 word operation.
//
// Values are ternary (0/1/X) and encoded dual-rail: every signal carries
// two bit-planes, `one` and `zero`, with one bit per simulation lane. A
// lane with the `one` bit set holds 1, with the `zero` bit set holds 0,
// and with neither holds X; both set is impossible by construction. Under
// this encoding a cube (product term) evaluates as
//
//	cube.one  = AND over literals of lit.one     (all literals are 1)
//	cube.zero = OR  over literals of lit.zero    (some literal is 0)
//
// and a cover (sum of cubes) as OR of cube.one / AND of cube.zero, which
// realizes exactly the conservative (Kleene) 3-valued semantics of the
// scalar simulator in internal/sim — that scalar path stays around as the
// oracle, and the property suite in this package pins the two against each
// other bit-for-bit over random networks, states and X-patterns.
//
// One Block holds one word (64 lanes) of simulation state with all buffers
// preallocated, so steady-state stepping performs zero allocations.
// Independent blocks shard across internal/parexec with index-ordered
// merging, so every exported search in this package returns byte-identical
// results at any worker width.
package bitsim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/network"
)

// LanesPerWord is the number of simulation lanes packed into one uint64.
const LanesPerWord = 64

// ccube is one compiled product term: the fanin signal indices that appear
// as positive and negative literals. A cube carrying the contradictory
// LitNone literal is void (constant 0) and contributes nothing to the OR.
type ccube struct {
	pos  []int32
	neg  []int32
	void bool
}

// cnode is one compiled logic node in topological order.
type cnode struct {
	out   int32
	cubes []ccube
}

// Sim is a compiled bit-parallel simulator for one network. It is
// immutable after Compile and safe for concurrent use; all mutable state
// lives in Blocks.
type Sim struct {
	net  *network.Network
	nSig int

	piSig       []int32
	poSig       []int32
	latchOutSig []int32
	latchDrvSig []int32
	latchInit   []network.Value
	nodes       []cnode
}

// Compile builds the word-packed evaluation program for n: the memoized
// topological order flattened into per-cube literal index lists.
func Compile(n *network.Network) (*Sim, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Sim{net: n}
	sig := make(map[*network.Node]int32, len(n.Nodes()))
	add := func(v *network.Node) int32 {
		if i, ok := sig[v]; ok {
			return i
		}
		i := int32(s.nSig)
		sig[v] = i
		s.nSig++
		return i
	}
	for _, p := range n.PIs {
		s.piSig = append(s.piSig, add(p))
	}
	for _, l := range n.Latches {
		s.latchOutSig = append(s.latchOutSig, add(l.Output))
		s.latchInit = append(s.latchInit, l.Init)
	}
	for _, v := range order {
		fan := make([]int32, len(v.Fanins))
		for i, fi := range v.Fanins {
			g, ok := sig[fi]
			if !ok {
				return nil, fmt.Errorf("bitsim: %s: fanin %s used before definition", v.Name, fi.Name)
			}
			fan[i] = g
		}
		cn := cnode{out: add(v), cubes: make([]ccube, 0, len(v.Func.Cubes))}
		for _, c := range v.Func.Cubes {
			var cb ccube
			for vi := 0; vi < c.N; vi++ {
				switch c.Lit(vi) {
				case logic.LitPos:
					cb.pos = append(cb.pos, fan[vi])
				case logic.LitNeg:
					cb.neg = append(cb.neg, fan[vi])
				case logic.LitNone:
					cb.void = true
				}
			}
			if cb.void {
				cb.pos, cb.neg = nil, nil
			}
			cn.cubes = append(cn.cubes, cb)
		}
		s.nodes = append(s.nodes, cn)
	}
	for _, l := range n.Latches {
		if l.Driver == nil {
			return nil, fmt.Errorf("bitsim: latch %s has no driver", l.Name)
		}
		d, ok := sig[l.Driver]
		if !ok {
			return nil, fmt.Errorf("bitsim: latch %s driver %s is not a simulated signal", l.Name, l.Driver.Name)
		}
		s.latchDrvSig = append(s.latchDrvSig, d)
	}
	for _, p := range n.POs {
		d, ok := sig[p.Driver]
		if !ok {
			return nil, fmt.Errorf("bitsim: PO %s driver %s is not a simulated signal", p.Name, p.Driver.Name)
		}
		s.poSig = append(s.poSig, d)
	}
	return s, nil
}

// NumPIs returns the primary input count (PI word order).
func (s *Sim) NumPIs() int { return len(s.piSig) }

// NumPOs returns the primary output count (PO word order).
func (s *Sim) NumPOs() int { return len(s.poSig) }

// NumLatches returns the register count.
func (s *Sim) NumLatches() int { return len(s.latchOutSig) }

// NumSignals returns the number of simulated signals (PIs, latch outputs
// and logic nodes); each costs two words per Block.
func (s *Sim) NumSignals() int { return s.nSig }

// LatchSignal returns the signal index of latch i's output in per-signal
// arrays such as Block.Signature.
func (s *Sim) LatchSignal(i int) int { return int(s.latchOutSig[i]) }

// Block is 64 lanes of simulation state for one Sim. All buffers are
// preallocated by NewBlock; Step allocates nothing.
type Block struct {
	one, zero       []uint64 // per signal
	nxtOne, nxtZero []uint64 // per latch, the snapshot for the state update
	poOne, poZero   []uint64 // per PO, captured before the register update
}

// NewBlock allocates a block. Latches start at X (no bits set); call Reset
// for the declared initial state.
func (s *Sim) NewBlock() *Block {
	return &Block{
		one:     make([]uint64, s.nSig),
		zero:    make([]uint64, s.nSig),
		nxtOne:  make([]uint64, len(s.latchOutSig)),
		nxtZero: make([]uint64, len(s.latchOutSig)),
		poOne:   make([]uint64, len(s.poSig)),
		poZero:  make([]uint64, len(s.poSig)),
	}
}

// Reset sets every lane of every latch to the declared initial value.
func (s *Sim) Reset(b *Block) {
	for i, g := range s.latchOutSig {
		switch s.latchInit[i] {
		case network.V0:
			b.one[g], b.zero[g] = 0, ^uint64(0)
		case network.V1:
			b.one[g], b.zero[g] = ^uint64(0), 0
		default:
			b.one[g], b.zero[g] = 0, 0
		}
	}
}

// SetAllX sets every lane of every latch to X — the power-up state of the
// synchronizing-sequence search.
func (s *Sim) SetAllX(b *Block) {
	for _, g := range s.latchOutSig {
		b.one[g], b.zero[g] = 0, 0
	}
}

// SetLatch overrides latch i's dual-rail words directly (per-lane state
// injection for the property suite). one&zero must be 0.
func (s *Sim) SetLatch(b *Block, i int, one, zero uint64) {
	if one&zero != 0 {
		panic("bitsim: lane holds both 0 and 1")
	}
	g := s.latchOutSig[i]
	b.one[g], b.zero[g] = one, zero
}

// Latch returns latch i's current dual-rail words.
func (s *Sim) Latch(b *Block, i int) (one, zero uint64) {
	g := s.latchOutSig[i]
	return b.one[g], b.zero[g]
}

// PO returns primary output i's dual-rail words as observed during the
// last Step — i.e. before the register update, so a PO driven directly by
// a latch output reports the cycle's current state like the scalar path.
func (s *Sim) PO(b *Block, i int) (one, zero uint64) {
	return b.poOne[i], b.poZero[i]
}

// DefinedLatches returns the mask of lanes in which every latch holds a
// defined (non-X) value. With zero latches every lane is defined.
func (s *Sim) DefinedLatches(b *Block) uint64 {
	m := ^uint64(0)
	for _, g := range s.latchOutSig {
		m &= b.one[g] | b.zero[g]
	}
	return m
}

// Step applies one clock cycle: it latches the PI words (dual-rail, one
// pair per PI in declaration order), evaluates all logic nodes in
// topological order, and advances the registers. 64 lanes advance per
// call; the caller reads POs and latches afterwards.
func (s *Sim) Step(b *Block, piOne, piZero []uint64) {
	if len(piOne) != len(s.piSig) || len(piZero) != len(s.piSig) {
		panic(fmt.Sprintf("bitsim: %d/%d PI words for %d PIs", len(piOne), len(piZero), len(s.piSig)))
	}
	one, zero := b.one, b.zero
	for i, g := range s.piSig {
		one[g], zero[g] = piOne[i], piZero[i]
	}
	for ni := range s.nodes {
		nd := &s.nodes[ni]
		var o uint64
		z := ^uint64(0)
		for ci := range nd.cubes {
			cb := &nd.cubes[ci]
			if cb.void {
				continue
			}
			ones := ^uint64(0)
			var zeros uint64
			for _, v := range cb.pos {
				ones &= one[v]
				zeros |= zero[v]
			}
			for _, v := range cb.neg {
				ones &= zero[v]
				zeros |= one[v]
			}
			o |= ones
			z &= zeros
		}
		one[nd.out], zero[nd.out] = o, z
	}
	// POs observe the pre-edge values: capture them before the registers
	// advance (a PO driven by a latch output reports the current state).
	for i, g := range s.poSig {
		b.poOne[i], b.poZero[i] = one[g], zero[g]
	}
	// Snapshot all next-state words before writing any latch output, so a
	// register chained off another register's output reads the pre-edge
	// value.
	for i, d := range s.latchDrvSig {
		b.nxtOne[i], b.nxtZero[i] = one[d], zero[d]
	}
	for i, g := range s.latchOutSig {
		one[g], zero[g] = b.nxtOne[i], b.nxtZero[i]
	}
}
