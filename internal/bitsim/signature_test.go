package bitsim_test

import (
	"math/rand"
	"testing"

	"repro/internal/bitsim"
	"repro/internal/blif"
)

// TestMixSigCollisionRate hammers the digest mixer with random word pairs
// and demands zero collisions: at 2⁻⁶⁴ per pair, even one collision in
// 2·10⁴ samples (≈2·10⁸ pairs) indicates a broken finalizer. It also pins
// the properties sweeping relies on: determinism, and a signal being
// distinguished from its own complement.
func TestMixSigCollisionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 20000
	seen := make(map[uint64][2]uint64, n)
	for i := 0; i < n; i++ {
		one, zero := rng.Uint64(), rng.Uint64()
		d := bitsim.MixSig(0, one, zero)
		if prev, dup := seen[d]; dup && (prev[0] != one || prev[1] != zero) {
			t.Fatalf("digest collision: (%x,%x) and (%x,%x) both hash to %x",
				prev[0], prev[1], one, zero, d)
		}
		seen[d] = [2]uint64{one, zero}
		if bitsim.MixSig(0, one, zero) != d {
			t.Fatal("MixSig is not deterministic")
		}
		if bitsim.MixSig(0, zero, one) == d && one != zero {
			t.Fatalf("complement (%x,%x) not distinguished", one, zero)
		}
		if bitsim.MixSig(1, one, zero) == d {
			t.Fatalf("accumulator ignored for (%x,%x)", one, zero)
		}
	}
}

const twins = `
.model twins
.inputs x
.outputs o
.latch d q1 0
.latch d q2 0
.names x q1 d
10 1
01 1
.names q1 q2 o
11 1
.end
`

// TestBlockSignature checks the per-signal fingerprints on a circuit with
// two literally identical registers (same driver, same init): their
// accumulated stream signatures must agree at every step, while the input
// and output signals diverge from them.
func TestBlockSignature(t *testing.T) {
	n, err := blif.ParseString(twins)
	if err != nil {
		t.Fatal(err)
	}
	s, err := bitsim.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	b := s.NewBlock()
	s.Reset(b)
	q1, q2 := s.LatchSignal(0), s.LatchSignal(1)
	acc := make([]uint64, s.NumSignals())
	rng := rand.New(rand.NewSource(5))
	pi := make([]uint64, 1)
	for step := 0; step < 64; step++ {
		pi[0] = rng.Uint64()
		s.Step(b, pi, []uint64{^pi[0]})
		sig := b.Signature()
		if len(sig) != s.NumSignals() {
			t.Fatalf("Signature length %d, want %d", len(sig), s.NumSignals())
		}
		if sig[q1] != sig[q2] {
			t.Fatalf("step %d: identical registers got different fingerprints", step)
		}
		b.UpdateSignature(acc)
		if acc[q1] != acc[q2] {
			t.Fatalf("step %d: identical registers got different stream digests", step)
		}
	}
	// The twin registers saw both values across 64 random steps, so any
	// signal with a genuinely different stream must have diverged.
	distinct := 0
	for i, d := range acc {
		if i != q1 && i != q2 && d != acc[q1] {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("no signal diverged from the twin registers' digest")
	}
}
