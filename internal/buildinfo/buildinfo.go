// Package buildinfo derives a human-readable version string for every
// binary in this module from the build metadata the Go toolchain embeds —
// no ldflags, no generated files. All five cmds expose it behind -version,
// and cmd/resynd additionally reports it from /healthz so a scraper can
// tell which build is serving.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version reports "<module-version> (<vcs-revision>[,dirty]) <go-version>".
// Fields degrade gracefully: binaries built outside a VCS checkout (or from
// a stripped source tree) report "devel" and omit the revision.
func Version() string {
	version := "devel"
	revision := ""
	dirty := false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	switch {
	case revision != "" && dirty:
		return fmt.Sprintf("%s (%s,dirty) %s", version, revision, runtime.Version())
	case revision != "":
		return fmt.Sprintf("%s (%s) %s", version, revision, runtime.Version())
	}
	return fmt.Sprintf("%s %s", version, runtime.Version())
}
