package obs

import "sync/atomic"

// This file is the tracer's live event bus: N consumers can tail a
// Tracer's event stream while it runs. The JSON-lines writer (SetJSON) is
// conceptually subscriber zero — it receives the same events in the same
// order, just synchronously under the tracer lock so the file stays
// byte-deterministic. Channel subscriptions decouple slow consumers: an
// event that does not fit the subscriber's buffer is dropped and counted
// instead of stalling the traced pipeline, so a wedged SSE client can
// never block a pass. Consumers that must not miss events (the serving
// layer's per-job recorder) use SubscribeFunc, which is synchronous.

// Subscription is one live tail of a tracer's event stream. Receive from
// Events(); call Close when done.
type Subscription struct {
	tracer  *Tracer
	ch      chan Event
	dropped atomic.Int64
	closed  bool
}

// Subscribe registers a new live subscriber with the given channel buffer
// (minimum 1). Events emitted from now on are delivered in order; an event
// arriving while the buffer is full is dropped and counted (Dropped), never
// blocking the emitting pass. Returns nil on a nil tracer.
func (t *Tracer) Subscribe(buf int) *Subscription {
	if t == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{tracer: t, ch: make(chan Event, buf)}
	t.mu.Lock()
	t.subs = append(t.subs, sub)
	t.mu.Unlock()
	return sub
}

// SubscribeFunc registers fn as a synchronous subscriber: it is invoked
// inline for every event, under the tracer lock, so it must return quickly
// and must not call back into the tracer (or anything that might). It
// never misses or reorders events — the property the per-job event
// recorders in internal/serve need. The returned cancel function
// unregisters fn; it is safe to call more than once. Returns a no-op on a
// nil tracer.
func (t *Tracer) SubscribeFunc(fn func(Event)) (cancel func()) {
	if t == nil || fn == nil {
		return func() {}
	}
	t.mu.Lock()
	if t.fns == nil {
		t.fns = make(map[int]func(Event))
	}
	id := t.fnSeq
	t.fnSeq++
	t.fns[id] = fn
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		delete(t.fns, id)
		t.mu.Unlock()
	}
}

// Events is the subscription's receive channel. It is closed by Close (and
// only by Close: a tracer has no terminal state, consumers decide when the
// tail ends — internal/serve closes when its job reaches a terminal state).
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports how many events were discarded because the subscriber's
// buffer was full.
func (s *Subscription) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscription and closes its channel. Pending
// buffered events remain receivable until the channel is drained. Safe to
// call more than once.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if s.closed {
		t.mu.Unlock()
		return
	}
	s.closed = true
	for i, sub := range t.subs {
		if sub == s {
			t.subs = append(t.subs[:i], t.subs[i+1:]...)
			break
		}
	}
	close(s.ch)
	t.mu.Unlock()
}

// deliver hands one event to the subscription without ever blocking.
// Caller holds the tracer lock, which also serializes against Close.
func (s *Subscription) deliver(e Event) {
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
	}
}
