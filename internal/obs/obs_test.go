package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpanTreeAndCounters(t *testing.T) {
	tr := New()
	flow := tr.Begin("flow.resynthesis")
	pass := tr.Begin("core.resynthesize")
	pass.Add("gates_duplicated", 3)
	pass.Add("gates_duplicated", 2)
	step := tr.Begin("dcret_simplify")
	step.Add("lits_saved", 7)
	step.End()
	pass.End()
	tr.Add("flow_reverted", 1) // lands on flow, the innermost open span
	flow.End()

	if got := tr.Counter("gates_duplicated"); got != 5 {
		t.Fatalf("gates_duplicated = %d, want 5", got)
	}
	if got := tr.Counter("lits_saved"); got != 7 {
		t.Fatalf("lits_saved = %d, want 7", got)
	}
	if flow.Counter("flow_reverted") != 1 {
		t.Fatalf("flow_reverted must land on the flow span")
	}
	if tr.Root().Find("dcret_simplify") == nil {
		t.Fatal("step span missing from tree")
	}
	kids := tr.Root().Children()
	if len(kids) != 1 || kids[0].Name != "flow.resynthesis" {
		t.Fatalf("unexpected top-level spans: %v", kids)
	}
	if kids[0].Dur() <= 0 {
		t.Fatal("closed span must have positive duration")
	}

	var buf bytes.Buffer
	tr.WriteTree(&buf)
	out := buf.String()
	for _, want := range []string{"flow.resynthesis", "core.resynthesize", "dcret_simplify", "gates_duplicated=5", "lits_saved=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestMaxCounter(t *testing.T) {
	tr := New()
	sp := tr.Begin("reach.analyze")
	sp.Max("reach_frontier_peak_nodes", 10)
	sp.Max("reach_frontier_peak_nodes", 4)
	sp.Max("reach_frontier_peak_nodes", 25)
	sp.End()
	if got := sp.Counter("reach_frontier_peak_nodes"); got != 25 {
		t.Fatalf("peak = %d, want 25", got)
	}
}

func TestEndClosesOpenChildren(t *testing.T) {
	tr := New()
	flow := tr.Begin("flow")
	tr.Begin("pass") // never explicitly ended (early return in a pass)
	flow.End()
	next := tr.Begin("after")
	next.End()
	kids := tr.Root().Children()
	if len(kids) != 2 {
		t.Fatalf("want 2 top-level spans, got %d", len(kids))
	}
	if pass := tr.Root().Find("pass"); pass == nil || pass.open {
		t.Fatal("orphaned child must be closed by parent End")
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	sp := tr.Begin("flow.script_delay")
	tr.Event("note", map[string]any{"circuit": "s27"})
	sp.Add("mapper_candidates", 42)
	sp.End()

	evs, skipped, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("healthy stream reported %d skipped lines", skipped)
	}
	if len(evs) != 3 {
		t.Fatalf("want 3 events (start, event, end), got %d", len(evs))
	}
	if evs[0].Ev != "span_start" || evs[0].Span != "flow.script_delay" {
		t.Fatalf("bad start event: %+v", evs[0])
	}
	if evs[1].Ev != "event" || evs[1].Name != "note" || evs[1].Fields["circuit"] != "s27" {
		t.Fatalf("bad generic event: %+v", evs[1])
	}
	end := evs[2]
	if end.Ev != "span_end" || end.Counters["mapper_candidates"] != 42 || end.DurMs < 0 {
		t.Fatalf("bad end event: %+v", end)
	}
}

func TestReadEventsSkipsGarbageWithCount(t *testing.T) {
	evs, skipped, err := ReadEvents(strings.NewReader("{\"ev\":\"x\"}\nnot json\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Ev != "x" {
		t.Fatalf("intact events lost: %+v", evs)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp.Add("c", 1)
	sp.Max("c", 2)
	sp.End()
	tr.Add("c", 1)
	tr.Event("e", nil)
	tr.WriteTree(&bytes.Buffer{})
	if tr.Counters() != nil || tr.Counter("c") != 0 || tr.Root() != nil {
		t.Fatal("nil tracer must report nothing")
	}
	var s2 *Span
	if s2.Counter("c") != 0 || s2.Dur() != 0 || s2.Find("x") != nil || s2.Children() != nil {
		t.Fatal("nil span must report nothing")
	}
}

// TestNilTracerNoAllocs pins the acceptance criterion: a nil Tracer adds no
// allocations on the hot path.
func TestNilTracerNoAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("pass")
		sp.Add("counter", 1)
		sp.Max("peak", 3)
		sp.End()
		tr.Add("counter", 1)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("pass")
		sp.Add("counter", 1)
		sp.End()
	}
}

func BenchmarkLiveSpan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New() // fresh tracer: keeps the retained tree O(1) per op
		sp := tr.Begin("pass")
		sp.Add("counter", 1)
		sp.End()
	}
}

func TestMergeGraftsSubTracer(t *testing.T) {
	main := New()
	outer := main.Begin("table")

	// Two workers trace privately, out of order; merge back in input order.
	w0 := New()
	s := w0.Begin("circuit.a")
	s.Add("lits_saved", 3)
	w0.Begin("pass.x").End()
	s.End()

	w1 := New()
	s = w1.Begin("circuit.b")
	s.Add("lits_saved", 4)
	// Left open deliberately: Merge must force-close it.
	w1.Add("stray", 1)

	main.Merge(w0)
	main.Merge(w1)
	outer.End()
	top := main.Begin("after")
	top.End()

	kids := outer.Children()
	if len(kids) != 2 || kids[0].Name != "circuit.a" || kids[1].Name != "circuit.b" {
		t.Fatalf("graft order wrong: %v", kids)
	}
	if main.Counter("lits_saved") != 7 {
		t.Fatalf("counters lost in merge: %d", main.Counter("lits_saved"))
	}
	if main.Counter("stray") != 1 {
		t.Fatal("counters on still-open worker spans must survive the merge")
	}
	if main.Root().Find("pass.x") == nil {
		t.Fatal("nested worker span missing after merge")
	}
	b := main.Root().Find("circuit.b")
	if b.Dur() <= 0 {
		t.Fatal("open worker span must be force-closed with a duration")
	}
	// The grafted spans must now answer through the main tracer's lock.
	if got := b.Counter("lits_saved"); got != 4 {
		t.Fatalf("grafted span counter = %d", got)
	}
	// The sub-tracer is drained: merging it again adds nothing.
	before := len(outer.Children())
	main.Merge(w1)
	main.Merge(main) // self-merge no-op
	if len(outer.Children()) != before {
		t.Fatal("re-merging a drained tracer must be a no-op")
	}

	var buf bytes.Buffer
	main.WriteTree(&buf)
	for _, want := range []string{"circuit.a", "circuit.b", "pass.x", "lits_saved=3", "lits_saved=4"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("merged tree missing %q:\n%s", want, buf.String())
		}
	}
}
