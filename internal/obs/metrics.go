package obs

// This file is the live metrics half of the observability layer: a
// concurrency-safe registry of counters, gauges, and bucketed histograms
// with Prometheus text exposition, a runtime/metrics sampler (heap, GC,
// goroutines), and the bridge that feeds the registry from the existing
// Span/Add call sites — attach a Registry to a Tracer with SetRegistry and
// every span end observes a latency histogram, every counter Add
// increments a registry counter, and every Max raises a peak gauge.
// Stdlib only; the exposition format follows the Prometheus text format
// closely enough for any scraper.

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach dimensions to a metric ({span="mapper.map_delay"}).
type Labels map[string]string

// DefLatencyBuckets are the default histogram buckets for wall-clock
// durations in seconds: 0.5ms to 60s, roughly logarithmic — pass latencies
// in this repository span microsecond steps to multi-second BDD fixpoints.
var DefLatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// ExponentialBuckets returns n bucket bounds starting at start, each
// factor times the previous (node counts, vectors/sec, queue depths).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// peakBuckets covers integer peak metrics (BDD nodes, frontier sizes):
// 1 … ~4.2M in powers of 4.
var peakBuckets = ExponentialBuckets(1, 4, 12)

// rateBuckets covers throughput metrics (bitsim vectors/sec):
// 1k … ~4.2G in powers of 4.
var rateBuckets = ExponentialBuckets(1000, 4, 12)

// Registry is a concurrency-safe metrics registry. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid no-op
// (handles it returns are nil and their methods no-ops), matching the
// package's nil-tracer discipline.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	mu              sync.Mutex
	series          map[string]*series
	keys            []string // insertion-ordered; sorted at exposition
}

type series struct {
	labels string        // rendered `k="v",k2="v2"` (no braces) or ""
	bits   atomic.Uint64 // counter/gauge value, or histogram sum, as float64 bits
	count  atomic.Int64  // histogram observation count
	bucket []atomic.Int64
}

func (s *series) load() float64   { return math.Float64frombits(s.bits.Load()) }
func (s *series) store(v float64) { s.bits.Store(math.Float64bits(v)) }
func (s *series) addFloat(v float64) {
	for {
		old := s.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}
func (s *series) maxFloat(v float64) {
	for {
		old := s.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		return nil // type clash: hand back a no-op
	}
	return f
}

func (f *family) at(labels Labels) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		if f.typ == "histogram" {
			s.bucket = make([]atomic.Int64, len(f.buckets)+1) // +Inf last
		}
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// renderLabels produces the canonical sorted, escaped label body.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing metric handle.
type Counter struct{ s *series }

// Add increases the counter by v (v must be >= 0; negative adds are
// ignored to keep the metric monotone).
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil || v < 0 {
		return
	}
	c.s.addFloat(v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current counter value.
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return c.s.load()
}

// Gauge is a set-to-current-value metric handle.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.store(v)
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.addFloat(v)
}

// SetMax raises the gauge to v if v is larger (peak-style gauges).
func (g *Gauge) SetMax(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.maxFloat(v)
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return g.s.load()
}

// Histogram is a bucketed distribution handle.
type Histogram struct {
	f *family
	s *series
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	h.s.bucket[i].Add(1)
	h.s.count.Add(1)
	h.s.addFloat(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil || h.s == nil {
		return 0
	}
	return h.s.count.Load()
}

// Counter registers (or finds) a counter series. Safe for concurrent use;
// the same (name, labels) always yields the same underlying series. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "counter", nil)
	if f == nil {
		return nil
	}
	return &Counter{s: f.at(labels)}
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "gauge", nil)
	if f == nil {
		return nil
	}
	return &Gauge{s: f.at(labels)}
}

// Histogram registers (or finds) a histogram series with the given bucket
// upper bounds (ascending; nil selects DefLatencyBuckets). Buckets are
// fixed by the first registration of the name.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	f := r.family(name, help, "histogram", buckets)
	if f == nil {
		return nil
	}
	return &Histogram{f: f, s: f.at(labels)}
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families and series in sorted order (deterministic output).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		sers := make([]*series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		f.mu.Unlock()
		sort.Sort(&seriesSort{keys, sers})

		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range sers {
			switch f.typ {
			case "histogram":
				cum := int64(0)
				for i, ub := range f.buckets {
					cum += s.bucket[i].Load()
					fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", f.name, seriesPrefix(s.labels), fmtFloat(ub), cum)
				}
				cum += s.bucket[len(f.buckets)].Load()
				fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, seriesPrefix(s.labels), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(s.labels), fmtFloat(s.load()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.labels), s.count.Load())
			default:
				fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), fmtFloat(s.load()))
			}
		}
	}
}

type seriesSort struct {
	keys []string
	sers []*series
}

func (x *seriesSort) Len() int           { return len(x.keys) }
func (x *seriesSort) Less(i, j int) bool { return x.keys[i] < x.keys[j] }
func (x *seriesSort) Swap(i, j int) {
	x.keys[i], x.keys[j] = x.keys[j], x.keys[i]
	x.sers[i], x.sers[j] = x.sers[j], x.sers[i]
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func seriesPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// --- runtime sampler ---

// SampleRuntime takes one sample of the Go runtime (heap bytes, total
// memory, goroutines, GC cycles, GC pause p99 estimate) into gauges. It is
// cheap enough to call on every /metrics scrape.
func (r *Registry) SampleRuntime() {
	if r == nil {
		return
	}
	samples := []metrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/memory/classes/total:bytes"},
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/gc/pauses:seconds"},
	}
	metrics.Read(samples)
	if v, ok := sampleUint(samples[0]); ok {
		r.Gauge("go_heap_objects_bytes", "Bytes of live heap objects.", nil).Set(v)
	}
	if v, ok := sampleUint(samples[1]); ok {
		r.Gauge("go_memory_total_bytes", "Total bytes mapped by the Go runtime.", nil).Set(v)
	}
	if v, ok := sampleUint(samples[2]); ok {
		r.Gauge("go_goroutines", "Current number of goroutines.", nil).Set(v)
	}
	if v, ok := sampleUint(samples[3]); ok {
		r.Gauge("go_gc_cycles_total", "Completed GC cycles since process start.", nil).Set(v)
	}
	if samples[4].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[4].Value.Float64Histogram()
		count, p99 := histogramP99(h)
		r.Gauge("go_gc_pauses_total", "Stop-the-world GC pauses since process start.", nil).Set(float64(count))
		r.Gauge("go_gc_pause_p99_seconds", "Estimated 99th-percentile GC pause.", nil).Set(p99)
	}
}

func sampleUint(s metrics.Sample) (float64, bool) {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0, false
	}
	return float64(s.Value.Uint64()), true
}

// histogramP99 estimates the 99th percentile of a runtime histogram as the
// upper bound of the bucket containing it.
func histogramP99(h *metrics.Float64Histogram) (count uint64, p99 float64) {
	for _, c := range h.Counts {
		count += c
	}
	if count == 0 {
		return 0, 0
	}
	target := uint64(math.Ceil(0.99 * float64(count)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			return count, ub
		}
	}
	return count, h.Buckets[len(h.Buckets)-1]
}

// StartRuntimeSampler samples the runtime immediately and then every
// interval (default 5s) until the returned stop function is called. Stop
// is idempotent. A nil registry returns a no-op.
func (r *Registry) StartRuntimeSampler(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r.SampleRuntime()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				r.SampleRuntime()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// --- tracer bridge ---
//
// The bridge methods run under the tracer lock (the registry has its own
// independent locks and never calls back into the tracer, so the order is
// safe). Handles for the hot counter path are cached per tracer.

// bridgeCounterAdd feeds one Span.Add into the registry:
// resyn_counter_total{counter=name} += n. Caller holds t.mu.
func (t *Tracer) bridgeCounterAdd(name string, n int64) {
	if t.reg == nil {
		return
	}
	c, ok := t.regCounters[name]
	if !ok {
		c = t.reg.Counter("resyn_counter_total",
			"Transformation counters aggregated across all spans (gates duplicated, DCret pairs, BDD ops, bitsim vectors, ...).",
			Labels{"counter": name})
		if t.regCounters == nil {
			t.regCounters = make(map[string]*Counter)
		}
		t.regCounters[name] = c
	}
	c.Add(float64(n))
}

// bridgePeak feeds one Span.Max into the registry as a high-water gauge:
// resyn_peak_max{counter=name}. Caller holds t.mu.
func (t *Tracer) bridgePeak(name string, v int64) {
	if t.reg == nil {
		return
	}
	g, ok := t.regPeaks[name]
	if !ok {
		g = t.reg.Gauge("resyn_peak_max",
			"Process-lifetime high-water marks of peak-style counters (BDD nodes, frontier sizes).",
			Labels{"counter": name})
		if t.regPeaks == nil {
			t.regPeaks = make(map[string]*Gauge)
		}
		t.regPeaks[name] = g
	}
	g.SetMax(float64(v))
}

// bridgeSpanEnd feeds one span close into the registry: the pass-latency
// histogram, a distribution histogram per peak-style counter (BDD peak
// nodes), and the bitsim throughput histogram. Caller holds t.mu.
func (t *Tracer) bridgeSpanEnd(s *Span) {
	if t.reg == nil {
		return
	}
	t.reg.Histogram("resyn_span_seconds",
		"Wall-clock latency per span (flows, passes, steps), labelled by span name.",
		DefLatencyBuckets, Labels{"span": s.Name}).Observe(s.dur.Seconds())
	for _, k := range s.maxKeys {
		t.reg.Histogram("resyn_peak",
			"Distribution of per-span peak-style counters (BDD peak nodes, frontier sizes).",
			peakBuckets, Labels{"counter": k}).Observe(float64(s.counters[k]))
	}
	if v := s.counters["bitsim_vectors"]; v > 0 && s.dur > 0 {
		t.reg.Histogram("resyn_bitsim_vectors_per_second",
			"Bit-parallel simulation throughput per simulation span.",
			rateBuckets, nil).Observe(float64(v) / s.dur.Seconds())
	}
}
