// Package obs is the pipeline-wide observability layer: hierarchical wall-
// clock spans (flow → pass → step), typed transformation counters, and a
// fan-out of sinks — a human-readable summary tree, a JSON-lines event
// stream, live event-bus subscriptions (bus.go), and a Prometheus-style
// metrics registry (metrics.go).
//
// The paper's argument is quantitative (Table I compares flows on
// registers, clock period, and area), so every flow and pass in this
// repository reports *what it did* (gates duplicated, stems split, DCret
// pairs discovered, literals saved, retiming moves applied/reverted, BDD
// frontier sizes, mapper candidates tried) and *how long it took*. Any
// hot-path claim in later PRs must come with a span breakdown from this
// package, and the serving layer (internal/serve) tails the same stream
// live over SSE.
//
// Every method is nil-safe: a nil *Tracer (and the nil *Span it hands out)
// is a zero-allocation no-op, so instrumented call sites never need to
// guard. All methods are safe for concurrent use from multiple goroutines;
// see the Begin documentation for what concurrent span nesting means.
// Stdlib only.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer owns a tree of spans and a set of event sinks. The zero value is
// not usable; construct with New or NewJSON. A nil Tracer is a valid no-op.
//
// Concurrency: every method may be called from any goroutine. The JSON-
// lines sink is the tracer's first subscriber and is written synchronously
// under the tracer lock, so its line order matches event order exactly;
// channel subscriptions (Subscribe) observe the same order.
type Tracer struct {
	mu    sync.Mutex
	root  *Span
	cur   *Span
	start time.Time
	json  io.Writer
	subs  []*Subscription
	fns   map[int]func(Event)
	fnSeq int
	reg   *Registry
	seq   atomic.Uint64 // event sequence numbers, monotone per tracer
	// Cached registry handles for the hot Add/Max paths (see metrics.go).
	regCounters map[string]*Counter
	regPeaks    map[string]*Gauge
}

// Span is one timed region of the pipeline. Spans nest: Begin under an
// open span creates a child. A nil Span is a valid no-op.
type Span struct {
	Name     string
	tracer   atomic.Pointer[Tracer]
	parent   *Span
	children []*Span
	counters map[string]int64
	maxKeys  []string // counter names recorded via Max (peak semantics)
	start    time.Time
	dur      time.Duration
	open     bool
}

// New creates a tracer with no JSON sink.
func New() *Tracer {
	t := &Tracer{start: time.Now()}
	t.root = &Span{start: t.start, open: true}
	t.root.tracer.Store(t)
	t.cur = t.root
	return t
}

// NewJSON creates a tracer that additionally streams every span start/end
// and event to w as JSON lines (one Event object per line).
func NewJSON(w io.Writer) *Tracer {
	t := New()
	t.json = w
	return t
}

// SetJSON attaches (or replaces) the JSON-lines sink.
func (t *Tracer) SetJSON(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.json = w
	t.mu.Unlock()
}

// SetRegistry attaches a metrics registry: from now on every span end
// observes a pass-latency histogram, every counter Add increments a
// registry counter, and every Max raises a peak gauge (see the bridge in
// metrics.go). A nil registry detaches.
func (t *Tracer) SetRegistry(r *Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reg = r
	t.regCounters = nil
	t.regPeaks = nil
	t.mu.Unlock()
}

// lockTracer locks and returns the tracer currently owning s. Merge moves
// spans between tracers while holding both locks, so the owner is re-read
// after acquisition and the lock retried if it changed mid-flight.
func (s *Span) lockTracer() *Tracer {
	for {
		t := s.tracer.Load()
		t.mu.Lock()
		if s.tracer.Load() == t {
			return t
		}
		t.mu.Unlock()
	}
}

// Begin opens a new span as a child of the innermost open span and makes
// it current. It returns nil on a nil tracer.
//
// Concurrent Begin calls from multiple goroutines are safe: each span is
// attached under whichever span was current at that instant, so the tree
// shape interleaves (it reflects wall-clock overlap, not call structure).
// Workers that need a deterministic tree should trace into private
// tracers and Merge them back in order, as internal/parexec callers do.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, parent: t.cur, start: time.Now(), open: true}
	s.tracer.Store(t)
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	t.emit(Event{Ev: "span_start", Span: s.path(), TMs: t.sinceStart(s.start)})
	return s
}

// End closes the span, records its duration, and pops the current-span
// cursor back to its parent when the span is on the cursor path (closing
// any children left open by early returns on the way). Ending a span that
// is not on the cursor path — another goroutine moved it — only closes
// the span itself. Ending an already-closed span, or the root, is a no-op.
func (s *Span) End() {
	if s == nil || s.parent == nil {
		return
	}
	t := s.lockTracer()
	defer t.mu.Unlock()
	if !s.open {
		return
	}
	// Pop the cursor only when s is an ancestor of (or is) the current
	// span; otherwise a concurrent goroutine owns the cursor and closing
	// unrelated spans would corrupt its nesting.
	onPath := false
	for c := t.cur; c != nil; c = c.parent {
		if c == s {
			onPath = true
			break
		}
	}
	if onPath {
		for c := t.cur; c != s; c = c.parent {
			if c.open {
				c.closeNow(t)
			}
		}
		t.cur = s.parent
	}
	s.closeNow(t)
}

// closeNow marks the span closed and emits its end event plus the registry
// observations. Caller holds t.mu.
func (s *Span) closeNow(t *Tracer) {
	s.dur = time.Since(s.start)
	s.open = false
	t.emit(Event{
		Ev:       "span_end",
		Span:     s.path(),
		TMs:      t.sinceStart(time.Now()),
		DurMs:    float64(s.dur) / float64(time.Millisecond),
		Counters: copyCounters(s.counters),
	})
	t.bridgeSpanEnd(s)
}

// Add increments a named counter on the span.
func (s *Span) Add(name string, n int64) {
	if s == nil {
		return
	}
	t := s.lockTracer()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += n
	t.bridgeCounterAdd(name, n)
	t.mu.Unlock()
}

// Max raises a named counter to v if v is larger (peak-style metrics:
// frontier sizes, node counts).
func (s *Span) Max(name string, v int64) {
	if s == nil {
		return
	}
	t := s.lockTracer()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	if _, seen := s.counters[name]; !seen {
		s.maxKeys = append(s.maxKeys, name)
	}
	if v > s.counters[name] {
		s.counters[name] = v
		t.bridgePeak(name, v)
	}
	t.mu.Unlock()
}

// Counter returns the span's own value of one counter (children excluded).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	t := s.lockTracer()
	defer t.mu.Unlock()
	return s.counters[name]
}

// Dur returns the span's wall-clock duration (elapsed-so-far while open).
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	t := s.lockTracer()
	defer t.mu.Unlock()
	if s.open {
		return time.Since(s.start)
	}
	return s.dur
}

// Add increments a counter on the innermost open span.
func (t *Tracer) Add(name string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := t.cur
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += n
	t.bridgeCounterAdd(name, n)
	t.mu.Unlock()
}

// Event emits a free-form named event (with optional fields) to the sinks,
// tagged with the current span path. No-op without a sink or subscriber.
func (t *Tracer) Event(name string, fields map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emit(Event{Ev: "event", Name: name, Span: t.cur.path(), TMs: t.sinceStart(time.Now()), Fields: fields})
}

// Merge grafts the span tree of sub under the innermost open span of t and
// adds sub's root counters there. It exists for the parallel evaluation
// flows: each worker traces into a private tracer, and the coordinator
// merges the finished tracers back in input order so the combined tree is
// identical to a sequential run's.
//
// sub must be quiescent — its goroutine done, every span ended (any still
// open are force-closed defensively) — and must not be used afterwards:
// its spans now belong to t. (A straggler Span.Add racing the merge is
// still memory-safe — span ownership is re-checked under the lock — but
// which tracer receives the count is then unspecified.) Merging a tracer
// into itself is a no-op.
func (t *Tracer) Merge(sub *Tracer) {
	if t == nil || sub == nil || t == sub {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sub.mu.Lock()
	defer sub.mu.Unlock()
	var adopt func(s, parent *Span)
	adopt = func(s, parent *Span) {
		s.tracer.Store(t)
		s.parent = parent
		if s.open {
			s.dur = time.Since(s.start)
			s.open = false
		}
		for _, c := range s.children {
			adopt(c, s)
		}
	}
	for _, c := range sub.root.children {
		adopt(c, t.cur)
		t.cur.children = append(t.cur.children, c)
	}
	if len(sub.root.counters) > 0 && t.cur.counters == nil {
		t.cur.counters = make(map[string]int64)
	}
	for k, v := range sub.root.counters {
		t.cur.counters[k] += v
	}
	sub.root.children = nil
	sub.root.counters = nil
	sub.cur = sub.root
}

// Root returns the implicit root span (its children are the top-level
// spans begun on the tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Children returns the span's child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	t := s.lockTracer()
	defer t.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first descendant span (depth-first) with the given
// name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.lockTracer()
	defer t.mu.Unlock()
	return s.find(name)
}

func (s *Span) find(name string) *Span {
	for _, c := range s.children {
		if c.Name == name {
			return c
		}
		if r := c.find(name); r != nil {
			return r
		}
	}
	return nil
}

// Counters aggregates every counter over the whole span tree.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64)
	var walk func(s *Span)
	walk = func(s *Span) {
		for k, v := range s.counters {
			out[k] += v
		}
		for _, c := range s.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Counter returns one aggregated counter value over the whole tree.
func (t *Tracer) Counter(name string) int64 { return t.Counters()[name] }

// WriteTree renders the human-readable summary: one line per span,
// indented by depth, with wall time and any counters.
func (t *Tracer) WriteTree(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		d := s.dur
		if s.open {
			d = time.Since(s.start)
		}
		fmt.Fprintf(w, "%-*s%-*s %9.2fms%s\n",
			2*depth, "", 44-2*depth, s.Name, float64(d)/float64(time.Millisecond),
			formatCounters(s.counters))
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	for _, c := range t.root.children {
		walk(c, 0)
	}
	if len(t.root.counters) > 0 {
		fmt.Fprintf(w, "(root)%s\n", formatCounters(t.root.counters))
	}
}

func formatCounters(c map[string]int64) string {
	if len(c) == 0 {
		return ""
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c[k])
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

func (s *Span) path() string {
	if s == nil || s.parent == nil {
		return ""
	}
	p := s.parent.path()
	if p == "" {
		return s.Name
	}
	return p + "/" + s.Name
}

func (t *Tracer) sinceStart(at time.Time) float64 {
	return float64(at.Sub(t.start)) / float64(time.Millisecond)
}

// emit delivers one event to every sink: the synchronous JSON-lines
// writer, every registered callback, and every channel subscription
// (non-blocking; see Subscription.Dropped). Caller holds t.mu.
func (t *Tracer) emit(e Event) {
	if t.json == nil && len(t.subs) == 0 && len(t.fns) == 0 {
		return
	}
	e.Seq = t.seq.Add(1)
	if t.json != nil {
		if b, err := json.Marshal(e); err == nil {
			t.json.Write(append(b, '\n'))
		}
	}
	for _, fn := range t.fns {
		fn(e)
	}
	for _, sub := range t.subs {
		sub.deliver(e)
	}
}

func copyCounters(c map[string]int64) map[string]int64 {
	if len(c) == 0 {
		return nil
	}
	out := make(map[string]int64, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Event is one line of the JSON-lines stream (and the unit delivered to
// bus subscribers).
//
//	{"ev":"span_start","span":"flow.resynthesis/core.resynthesize","seq":1,"t_ms":1.2}
//	{"ev":"span_end","span":"...","seq":4,"t_ms":4.8,"dur_ms":3.6,"counters":{"dcret_pairs":2}}
//	{"ev":"event","name":"reach_iter","span":"reach.analyze","seq":2,"t_ms":0.4,"fields":{"depth":3}}
type Event struct {
	Ev       string           `json:"ev"`
	Span     string           `json:"span,omitempty"`
	Name     string           `json:"name,omitempty"`
	Seq      uint64           `json:"seq,omitempty"`
	TMs      float64          `json:"t_ms"`
	DurMs    float64          `json:"dur_ms,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Fields   map[string]any   `json:"fields,omitempty"`
}

// ReadEvents parses a JSON-lines stream produced by a Tracer sink. Blank
// lines are skipped silently. A malformed line — truncated mid-write, two
// lines interleaved by a crashed writer, or junk — is skipped and counted
// rather than failing the whole read, so a partial trace from an aborted
// run still yields every intact event. The returned error is non-nil only
// for a failing reader.
func ReadEvents(r io.Reader) (events []Event, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		var e Event
		if json.Unmarshal([]byte(s), &e) != nil || e.Ev == "" {
			skipped++
			continue
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, skipped, err
	}
	return events, skipped, nil
}
