package obs

// Tests for the live-telemetry additions: tracer concurrency safety, the
// event bus, lenient JSONL reading, and the metrics registry.

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTracerHammer hammers one tracer from 8 goroutines with the
// full Begin/Add/Max/Event/End surface plus concurrent readers. Run under
// -race in CI; it also checks that no counter increments are lost.
func TestConcurrentTracerHammer(t *testing.T) {
	var sink bytes.Buffer // shared JSONL sink, written under the tracer lock
	tr := NewJSON(&sink)
	tr.SetRegistry(NewRegistry())
	sub := tr.Subscribe(64)
	defer sub.Close()
	go func() {
		for range sub.Events() { // live consumer racing the writers
		}
	}()

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := tr.Begin(fmt.Sprintf("worker%d.pass", g))
				sp.Add("hammer_ops", 1)
				sp.Max("hammer_peak", int64(i))
				tr.Add("tracer_adds", 1)
				tr.Event("tick", map[string]any{"g": g})
				inner := tr.Begin(fmt.Sprintf("worker%d.step", g))
				inner.Add("hammer_ops", 1)
				inner.End()
				_ = sp.Dur()
				_ = sp.Counter("hammer_ops")
				sp.End()
			}
		}(g)
	}
	// Concurrent readers of the whole tree while writers run.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Counters()
				tr.WriteTree(&bytes.Buffer{})
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	if got, want := tr.Counter("hammer_ops"), int64(2*goroutines*iters); got != want {
		t.Fatalf("hammer_ops = %d, want %d (lost increments)", got, want)
	}
	if got, want := tr.Counter("tracer_adds"), int64(goroutines*iters); got != want {
		t.Fatalf("tracer_adds = %d, want %d", got, want)
	}
	// Every span must be closed and the cursor back at the root, so the
	// tracer is still usable sequentially afterwards.
	after := tr.Begin("after")
	after.End()
	if after.Dur() <= 0 {
		t.Fatal("tracer unusable after concurrent hammering")
	}
	// The interleaved JSONL stream must still be fully parseable.
	evs, skipped, err := ReadEvents(&sink)
	if err != nil || skipped != 0 {
		t.Fatalf("JSONL stream damaged by concurrency: err=%v skipped=%d", err, skipped)
	}
	if len(evs) == 0 {
		t.Fatal("no events captured")
	}
}

// TestConcurrentMergeAndAdd races Span.Add on a grafted span against
// Merge moving it between tracers (the lock-ownership retry path).
func TestConcurrentMergeAndAdd(t *testing.T) {
	for i := 0; i < 50; i++ {
		main := New()
		sub := New()
		sp := sub.Begin("worker")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp.Add("n", 1)
			}
		}()
		go func() {
			defer wg.Done()
			main.Merge(sub)
		}()
		wg.Wait()
		if got := main.Counter("n") + sub.Counter("n"); got != 100 {
			t.Fatalf("adds lost across merge: %d", got)
		}
	}
}

func TestEndOffCursorPathOnlyClosesItself(t *testing.T) {
	tr := New()
	a := tr.Begin("a")
	b := tr.Begin("b")
	c := tr.Begin("c")
	// End b's sibling-by-time a? No: end a (ancestor of cursor) closes b, c.
	a.End()
	if b.Dur() <= 0 || c.Dur() <= 0 {
		t.Fatal("descendants left open by ancestor End")
	}
	// Ending an already-detached span must not disturb the cursor.
	d := tr.Begin("d")
	b.End() // no-op: already closed
	e := tr.Begin("e")
	e.End()
	d.End()
	if tr.Root().Find("e") == nil {
		t.Fatal("cursor corrupted by off-path End")
	}
	// Ending the root is a no-op.
	tr.Root().End()
	if f := tr.Begin("f"); f == nil {
		t.Fatal("tracer dead after root End")
	}
}

func TestReadEventsMidLineTruncation(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	for i := 0; i < 5; i++ {
		sp := tr.Begin("pass")
		sp.Add("n", int64(i))
		sp.End()
	}
	whole := buf.Bytes()
	// Cut mid-line: a crashed writer leaves a truncated final record.
	cut := bytes.LastIndexByte(whole[:len(whole)-2], '{')
	truncated := whole[:cut+3]
	evs, skipped, err := ReadEvents(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the truncated tail)", skipped)
	}
	if len(evs) != 9 { // 5 starts + 4 intact ends
		t.Fatalf("intact events = %d, want 9", len(evs))
	}
}

func TestReadEventsInterleavedLines(t *testing.T) {
	// Two writers without a shared lock can jam two records onto one line
	// and split another across two; every intact line must survive.
	stream := `{"ev":"span_start","span":"a","t_ms":1}
{"ev":"span_start","span":"b","t_ms":2}{"ev":"span_end","span":"b","t_ms":3}
{"ev":"span_end","spa
n":"a","t_ms":4}
{"ev":"event","name":"ok","t_ms":5}
{}
`
	evs, skipped, err := ReadEvents(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("intact events = %d, want 2: %+v", len(evs), evs)
	}
	if skipped != 4 { // jammed line, two halves of the split line, bare {}
		t.Fatalf("skipped = %d, want 4", skipped)
	}
}

func TestSubscribeReceivesOrderedEvents(t *testing.T) {
	tr := New()
	sub := tr.Subscribe(16)
	sp := tr.Begin("pass")
	tr.Event("mid", nil)
	sp.End()
	sub.Close()

	var got []Event
	for e := range sub.Events() {
		got = append(got, e)
	}
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3", len(got))
	}
	if got[0].Ev != "span_start" || got[1].Name != "mid" || got[2].Ev != "span_end" {
		t.Fatalf("order wrong: %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("sequence numbers not monotone: %+v", got)
		}
	}
}

func TestSubscribeDropsInsteadOfBlocking(t *testing.T) {
	tr := New()
	sub := tr.Subscribe(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Event("flood", nil)
		}
	}()
	select {
	case <-done: // the emitter must never block on the full buffer
	case <-time.After(5 * time.Second):
		t.Fatal("emitter blocked on a slow subscriber")
	}
	if sub.Dropped() != 98 {
		t.Fatalf("dropped = %d, want 98", sub.Dropped())
	}
	sub.Close()
	sub.Close() // idempotent
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("buffered events lost on close: %d", n)
	}
}

func TestSubscribeFuncSeesEveryEvent(t *testing.T) {
	tr := New()
	var mu sync.Mutex
	var seen []string
	cancel := tr.SubscribeFunc(func(e Event) {
		mu.Lock()
		seen = append(seen, e.Ev)
		mu.Unlock()
	})
	sp := tr.Begin("p")
	sp.End()
	cancel()
	cancel() // idempotent
	tr.Event("after", nil)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != "span_start" || seen[1] != "span_end" {
		t.Fatalf("callback subscriber saw %v", seen)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs submitted.", Labels{"flow": "resyn"}).Add(3)
	r.Counter("jobs_total", "Jobs submitted.", Labels{"flow": "script"}).Inc()
	r.Gauge("queue_depth", "Queued jobs.", nil).Set(7)
	h := r.Histogram("latency_seconds", "Job latency.", []float64{0.1, 1, 10}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`# TYPE jobs_total counter`,
		`jobs_total{flow="resyn"} 3`,
		`jobs_total{flow="script"} 1`,
		`# TYPE queue_depth gauge`,
		`queue_depth 7`,
		`# TYPE latency_seconds histogram`,
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="10"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		`latency_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("exposition not deterministic")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", Labels{"note": "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `note="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}

func TestRegistryNilIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x", "", nil).Add(1)
	r.Gauge("x", "", nil).Set(1)
	r.Histogram("x", "", nil, nil).Observe(1)
	r.WritePrometheus(&bytes.Buffer{})
	r.SampleRuntime()
	stop := r.StartRuntimeSampler(time.Second)
	stop()
}

func TestRegistryTypeClashIsNoOp(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil).Inc()
	r.Gauge("m", "", nil).Set(5) // clash: silently no-op, counter untouched
	if got := r.Counter("m", "", nil).Value(); got != 1 {
		t.Fatalf("type clash corrupted metric: %v", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("ops_total", "", Labels{"g": "x"}).Inc()
				r.Gauge("peak", "", nil).SetMax(float64(i))
				r.Histogram("lat", "", nil, nil).Observe(float64(i) / 1000)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", "", Labels{"g": "x"}).Value(); got != 4000 {
		t.Fatalf("lost counter increments: %v", got)
	}
	if got := r.Histogram("lat", "", nil, nil).Count(); got != 4000 {
		t.Fatalf("lost observations: %v", got)
	}
	if got := r.Gauge("peak", "", nil).Value(); got != 499 {
		t.Fatalf("SetMax wrong: %v", got)
	}
}

func TestSampleRuntimePopulatesGauges(t *testing.T) {
	r := NewRegistry()
	r.SampleRuntime()
	if r.Gauge("go_goroutines", "", nil).Value() < 1 {
		t.Fatal("goroutine gauge empty")
	}
	if r.Gauge("go_heap_objects_bytes", "", nil).Value() <= 0 {
		t.Fatal("heap gauge empty")
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "go_goroutines") {
		t.Fatal("runtime gauges missing from exposition")
	}
}

// TestTracerRegistryBridge checks the Span→Registry plumbing: latency
// histogram per span name, counter totals, peak gauges, and the bitsim
// throughput histogram.
func TestTracerRegistryBridge(t *testing.T) {
	r := NewRegistry()
	tr := New()
	tr.SetRegistry(r)
	sp := tr.Begin("mapper.map_delay")
	sp.Add("mapper_candidates", 4)
	sp.Max("bdd_nodes", 100)
	sp.Max("bdd_nodes", 50) // not a new peak: no gauge change
	sp.End()
	bs := tr.Begin("bitsim.random_equivalent")
	bs.Add("bitsim_vectors", 1<<20)
	bs.End()

	if got := r.Counter("resyn_counter_total", "", Labels{"counter": "mapper_candidates"}).Value(); got != 4 {
		t.Fatalf("bridged counter = %v, want 4", got)
	}
	if got := r.Gauge("resyn_peak_max", "", Labels{"counter": "bdd_nodes"}).Value(); got != 100 {
		t.Fatalf("bridged peak = %v, want 100", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`resyn_span_seconds_bucket{span="mapper.map_delay",le=`,
		`resyn_peak_bucket{counter="bdd_nodes",le=`,
		`resyn_bitsim_vectors_per_second_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("bridge exposition missing %q:\n%s", want, out)
		}
	}
}
