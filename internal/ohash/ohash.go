// Package ohash holds the open-addressed hash-table mechanics shared by
// the BDD unique table (internal/bdd) and the AIG structural-hashing table
// (internal/aig): the level-tagged field mix, the power-of-two linear-probe
// sequence, and the 3/4-load growth rule. Both engines were measured
// against Go maps and won on exactly these ingredients (DESIGN.md §8), so
// they live here once — a probe or load-factor tweak cannot drift between
// the two tables.
//
// Two layers are exported. The primitive layer (Mix3, Probe, ShouldGrow)
// is for tables with bespoke lifecycles — the BDD unique table keeps its
// incremental old-table migration and tombstones and composes these
// directly. The Table layer is a complete insert-only ref table for
// callers without deletions, such as the AIG strash.
package ohash

// Mix3 hashes three 32-bit fields: distinct multiplicative mixes per
// field, finalized murmur-style. Power-of-two tables only use the low
// bits, so the finalizer matters.
func Mix3(a, b, c uint32) uint32 {
	h := a*0x9e3779b1 ^ b*0x85ebca6b ^ c*0xc2b2ae35
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 13
	return h
}

// Probe walks the linear probe sequence of a power-of-two table: the slot
// sequence h&mask, (h+1)&mask, … . The zero value is not usable; start
// with NewProbe.
type Probe struct {
	i, mask uint32
}

// NewProbe starts a probe sequence for hash h over a table of buckets
// slots. buckets must be a power of two.
func NewProbe(h uint32, buckets int) Probe {
	mask := uint32(buckets - 1)
	return Probe{i: h & mask, mask: mask}
}

// Slot returns the current bucket index.
func (p *Probe) Slot() uint32 { return p.i }

// Advance steps to the next bucket of the sequence.
func (p *Probe) Advance() { p.i = (p.i + 1) & p.mask }

// ShouldGrow reports whether a power-of-two open-addressed table holding
// entries live slots plus tombstones deleted slots should double.
// Tombstones count toward load: they lengthen probe chains just like live
// entries. The threshold is 3/4 — past it, linear-probe clustering makes
// chains grow sharply.
func ShouldGrow(entries, tombstones, buckets int) bool {
	return (entries+tombstones)*4 >= buckets*3
}

// Table is a complete insert-only open-addressed table of non-negative
// int32 refs, keyed by caller-supplied hashes. The caller keeps the keyed
// data (a ref is typically an index into its own node pool) and supplies
// hashOf so the table can rehash itself on growth. There are no deletions;
// callers that invalidate refs wholesale (an AIG sweep renumbering nodes)
// Reset and reinsert.
type Table struct {
	slots   []int32 // empty slots hold -1
	entries int
	hashOf  func(ref int32) uint32
}

// emptySlot marks an unoccupied bucket. Refs are non-negative.
const emptySlot = int32(-1)

// NewTable creates a table sized for at least capHint entries (minimum 1<<8
// buckets). hashOf must return the same hash Insert was given for the ref.
func NewTable(capHint int, hashOf func(ref int32) uint32) *Table {
	buckets := 1 << 8
	for ShouldGrow(capHint, 0, buckets) {
		buckets *= 2
	}
	t := &Table{slots: make([]int32, buckets), hashOf: hashOf}
	for i := range t.slots {
		t.slots[i] = emptySlot
	}
	return t
}

// Lookup probes for a ref whose key matches, per the caller's eq predicate,
// among refs stored under hash h.
func (t *Table) Lookup(h uint32, eq func(ref int32) bool) (int32, bool) {
	for p := NewProbe(h, len(t.slots)); ; p.Advance() {
		r := t.slots[p.Slot()]
		if r == emptySlot {
			return 0, false
		}
		if eq(r) {
			return r, true
		}
	}
}

// Insert stores ref under hash h. The caller guarantees the ref is not
// already present (Lookup first). The table doubles per ShouldGrow,
// rehashing every entry through hashOf.
func (t *Table) Insert(h uint32, ref int32) {
	if ShouldGrow(t.entries+1, 0, len(t.slots)) {
		t.grow()
	}
	t.place(h, ref)
	t.entries++
}

// place probes to the first empty slot and stores ref there.
func (t *Table) place(h uint32, ref int32) {
	p := NewProbe(h, len(t.slots))
	for t.slots[p.Slot()] != emptySlot {
		p.Advance()
	}
	t.slots[p.Slot()] = ref
}

// grow doubles the bucket array and reinserts every live ref.
func (t *Table) grow() {
	old := t.slots
	t.slots = make([]int32, 2*len(old))
	for i := range t.slots {
		t.slots[i] = emptySlot
	}
	for _, r := range old {
		if r != emptySlot {
			t.place(t.hashOf(r), r)
		}
	}
}

// Len returns the number of stored refs.
func (t *Table) Len() int { return t.entries }

// Cap returns the bucket count.
func (t *Table) Cap() int { return len(t.slots) }

// Load returns the current load factor.
func (t *Table) Load() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(t.entries) / float64(len(t.slots))
}

// Reset empties the table, keeping the bucket array.
func (t *Table) Reset() {
	for i := range t.slots {
		t.slots[i] = emptySlot
	}
	t.entries = 0
}
