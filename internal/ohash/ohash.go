// Package ohash holds the open-addressed hash-table mechanics shared by
// the BDD unique table (internal/bdd) and the AIG structural-hashing table
// (internal/aig): the level-tagged field mix, the power-of-two linear-probe
// sequence, and the 3/4-load growth rule. Both engines were measured
// against Go maps and won on exactly these ingredients (DESIGN.md §8), so
// they live here once — a probe or load-factor tweak cannot drift between
// the two tables.
//
// Two layers are exported. The primitive layer (Mix3, Probe, ShouldGrow)
// is for tables with bespoke lifecycles — the BDD unique table keeps its
// incremental old-table migration and tombstones and composes these
// directly. The Table layer is a complete ref table for callers with
// simple lifecycles, such as the AIG strash: inserts, tombstoned deletes
// with slot reuse, and wholesale Reset.
package ohash

// Mix3 hashes three 32-bit fields: distinct multiplicative mixes per
// field, finalized murmur-style. Power-of-two tables only use the low
// bits, so the finalizer matters.
func Mix3(a, b, c uint32) uint32 {
	h := a*0x9e3779b1 ^ b*0x85ebca6b ^ c*0xc2b2ae35
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 13
	return h
}

// Probe walks the linear probe sequence of a power-of-two table: the slot
// sequence h&mask, (h+1)&mask, … . The zero value is not usable; start
// with NewProbe.
type Probe struct {
	i, mask uint32
}

// NewProbe starts a probe sequence for hash h over a table of buckets
// slots. buckets must be a power of two.
func NewProbe(h uint32, buckets int) Probe {
	mask := uint32(buckets - 1)
	return Probe{i: h & mask, mask: mask}
}

// Slot returns the current bucket index.
func (p *Probe) Slot() uint32 { return p.i }

// Advance steps to the next bucket of the sequence.
func (p *Probe) Advance() { p.i = (p.i + 1) & p.mask }

// ShouldGrow reports whether a power-of-two open-addressed table holding
// entries live slots plus tombstones deleted slots should double.
// Tombstones count toward load: they lengthen probe chains just like live
// entries. The threshold is 3/4 — past it, linear-probe clustering makes
// chains grow sharply.
func ShouldGrow(entries, tombstones, buckets int) bool {
	return (entries+tombstones)*4 >= buckets*3
}

// Table is a complete open-addressed table of non-negative int32 refs,
// keyed by caller-supplied hashes. The caller keeps the keyed data (a ref
// is typically an index into its own node pool) and supplies hashOf so the
// table can rehash itself on growth. Delete leaves a tombstone so probe
// chains stay intact; Insert reuses the first tombstone on its probe path,
// so a churn-heavy workload (delete one, insert one, forever) stays at a
// bounded load factor instead of growing monotonically until rehash.
// Callers that invalidate refs wholesale (an AIG sweep renumbering nodes)
// Reset and reinsert.
type Table struct {
	slots      []int32 // empty slots hold -1, tombstones -2
	entries    int
	tombstones int
	hashOf     func(ref int32) uint32
}

// emptySlot marks a never-occupied bucket; deadSlot marks a tombstone left
// by Delete. Refs are non-negative.
const (
	emptySlot = int32(-1)
	deadSlot  = int32(-2)
)

// NewTable creates a table sized for at least capHint entries (minimum 1<<8
// buckets). hashOf must return the same hash Insert was given for the ref.
func NewTable(capHint int, hashOf func(ref int32) uint32) *Table {
	buckets := 1 << 8
	for ShouldGrow(capHint, 0, buckets) {
		buckets *= 2
	}
	t := &Table{slots: make([]int32, buckets), hashOf: hashOf}
	for i := range t.slots {
		t.slots[i] = emptySlot
	}
	return t
}

// Lookup probes for a ref whose key matches, per the caller's eq predicate,
// among refs stored under hash h. Tombstones are skipped — the chain only
// terminates at a never-occupied slot.
func (t *Table) Lookup(h uint32, eq func(ref int32) bool) (int32, bool) {
	for p := NewProbe(h, len(t.slots)); ; p.Advance() {
		r := t.slots[p.Slot()]
		if r == emptySlot {
			return 0, false
		}
		if r != deadSlot && eq(r) {
			return r, true
		}
	}
}

// Insert stores ref under hash h. The caller guarantees the ref is not
// already present (Lookup first). The first tombstone on the probe path is
// reused; otherwise the ref lands in the terminating empty slot. The table
// grows per ShouldGrow (tombstones count toward load), rehashing every
// live entry through hashOf.
func (t *Table) Insert(h uint32, ref int32) {
	if ShouldGrow(t.entries+1, t.tombstones, len(t.slots)) {
		t.grow()
	}
	if t.place(h, ref) {
		t.tombstones--
	}
	t.entries++
}

// Delete removes the ref matching eq under hash h, leaving a tombstone so
// longer probe chains passing through the slot still resolve. It reports
// whether a matching ref was found.
func (t *Table) Delete(h uint32, eq func(ref int32) bool) bool {
	for p := NewProbe(h, len(t.slots)); ; p.Advance() {
		r := t.slots[p.Slot()]
		if r == emptySlot {
			return false
		}
		if r != deadSlot && eq(r) {
			t.slots[p.Slot()] = deadSlot
			t.entries--
			t.tombstones++
			return true
		}
	}
}

// place probes to the first tombstone, or failing that the first empty
// slot, and stores ref there. It reports whether a tombstone was consumed.
func (t *Table) place(h uint32, ref int32) bool {
	dead := -1
	for p := NewProbe(h, len(t.slots)); ; p.Advance() {
		switch t.slots[p.Slot()] {
		case deadSlot:
			if dead < 0 {
				dead = int(p.Slot())
			}
		case emptySlot:
			if dead >= 0 {
				t.slots[dead] = ref
				return true
			}
			t.slots[p.Slot()] = ref
			return false
		}
	}
}

// grow rebuilds the bucket array and reinserts every live ref, dropping
// all tombstones. It only doubles when the live entries alone justify it;
// when tombstones pushed the table over the load threshold, a same-size
// rebuild (compaction) restores headroom without doubling memory.
func (t *Table) grow() {
	old := t.slots
	buckets := len(old)
	if ShouldGrow(t.entries+1, 0, buckets) {
		buckets *= 2
	}
	t.slots = make([]int32, buckets)
	for i := range t.slots {
		t.slots[i] = emptySlot
	}
	for _, r := range old {
		if r >= 0 {
			t.place(t.hashOf(r), r)
		}
	}
	t.tombstones = 0
}

// Len returns the number of stored refs.
func (t *Table) Len() int { return t.entries }

// Cap returns the bucket count.
func (t *Table) Cap() int { return len(t.slots) }

// Load returns the current load factor.
func (t *Table) Load() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(t.entries) / float64(len(t.slots))
}

// Tombstones returns the number of deleted slots awaiting reuse.
func (t *Table) Tombstones() int { return t.tombstones }

// Reset empties the table, keeping the bucket array.
func (t *Table) Reset() {
	for i := range t.slots {
		t.slots[i] = emptySlot
	}
	t.entries = 0
	t.tombstones = 0
}
