package ohash

import (
	"math/rand"
	"testing"
)

func TestMix3SpreadsLowBits(t *testing.T) {
	// Sequential keys must not collide excessively in the low bits — that is
	// the whole point of the finalizer for power-of-two tables.
	const buckets = 1 << 10
	seen := make(map[uint32]int)
	for i := uint32(0); i < buckets; i++ {
		seen[Mix3(i, i*2, i*3)&(buckets-1)]++
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max > 8 {
		t.Fatalf("worst bucket holds %d of %d sequential keys", max, buckets)
	}
}

func TestProbeCoversTable(t *testing.T) {
	// A probe sequence must visit every slot exactly once per wrap.
	const buckets = 64
	visited := make(map[uint32]bool)
	p := NewProbe(0xdeadbeef, buckets)
	for i := 0; i < buckets; i++ {
		if visited[p.Slot()] {
			t.Fatalf("slot %d revisited after %d steps", p.Slot(), i)
		}
		visited[p.Slot()] = true
		p.Advance()
	}
	if len(visited) != buckets {
		t.Fatalf("visited %d of %d slots", len(visited), buckets)
	}
}

func TestShouldGrowThreshold(t *testing.T) {
	cases := []struct {
		entries, tombstones, buckets int
		want                         bool
	}{
		{0, 0, 16, false},
		{11, 0, 16, false},  // 11/16 < 3/4
		{12, 0, 16, true},   // exactly 3/4
		{8, 4, 16, true},    // tombstones count toward load
		{8, 3, 16, false},   // 11/16 again
		{767, 0, 1024, false},
		{768, 0, 1024, true},
	}
	for _, c := range cases {
		if got := ShouldGrow(c.entries, c.tombstones, c.buckets); got != c.want {
			t.Errorf("ShouldGrow(%d,%d,%d) = %v, want %v",
				c.entries, c.tombstones, c.buckets, got, c.want)
		}
	}
}

// TestTableRehashUnderLoad drives a Table through many growth cycles with
// adversarially colliding hashes and asserts no ref is lost, no lookup
// false-positives, and the load factor stays under the growth threshold.
func TestTableRehashUnderLoad(t *testing.T) {
	const n = 20_000
	keys := make([]uint64, n)
	r := rand.New(rand.NewSource(42))
	for i := range keys {
		keys[i] = r.Uint64()
	}
	// Adversarial hash: only 1<<14 distinct hash values for 20k keys, so
	// probe chains collide heavily and every grow must preserve chain
	// integrity.
	hashKey := func(k uint64) uint32 { return uint32(k) & 0x3fff }
	tab := NewTable(0, func(ref int32) uint32 { return hashKey(keys[ref]) })
	startCap := tab.Cap()
	for i := 0; i < n; i++ {
		h := hashKey(keys[i])
		eq := func(ref int32) bool { return keys[ref] == keys[i] }
		if got, ok := tab.Lookup(h, eq); ok {
			// Random 64-bit keys: duplicates are astronomically unlikely, so
			// a hit before insert is a table bug.
			t.Fatalf("ref %d found before insertion (got %d)", i, got)
		}
		tab.Insert(h, int32(i))
	}
	if tab.Len() != n {
		t.Fatalf("table holds %d entries, want %d", tab.Len(), n)
	}
	if tab.Cap() == startCap {
		t.Fatalf("table never grew past %d buckets under %d inserts", startCap, n)
	}
	if ShouldGrow(tab.Len(), 0, tab.Cap()) {
		t.Fatalf("post-insert load %d/%d is at or past the growth threshold", tab.Len(), tab.Cap())
	}
	for i := 0; i < n; i++ {
		h := hashKey(keys[i])
		got, ok := tab.Lookup(h, func(ref int32) bool { return keys[ref] == keys[i] })
		if !ok || got != int32(i) {
			t.Fatalf("ref %d lost after rehashes (ok=%v got=%d)", i, ok, got)
		}
	}
	// Reset keeps capacity but drops the entries.
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Reset left %d entries", tab.Len())
	}
	if _, ok := tab.Lookup(hashKey(keys[0]), func(ref int32) bool { return true }); ok {
		t.Fatal("lookup hit after Reset")
	}
}

// TestTableChurnBoundedLoad is the tombstone-reuse regression: a steady
// delete-one/insert-one workload at constant live size must not grow the
// bucket array monotonically. With tombstone reuse on the insert probe
// path the table settles at a fixed capacity; without it every delete
// leaks a dead slot until ShouldGrow fires again and again.
func TestTableChurnBoundedLoad(t *testing.T) {
	const live = 4_000
	const churn = 200_000
	keys := make([]uint64, 0, live+churn)
	r := rand.New(rand.NewSource(7))
	hashKey := func(k uint64) uint32 { return uint32(k) }
	tab := NewTable(live, func(ref int32) uint32 { return hashKey(keys[ref]) })
	for i := 0; i < live; i++ {
		keys = append(keys, r.Uint64())
		tab.Insert(hashKey(keys[i]), int32(i))
	}
	settled := tab.Cap()
	oldest := 0
	for i := 0; i < churn; i++ {
		h := hashKey(keys[oldest])
		if !tab.Delete(h, func(ref int32) bool { return ref == int32(oldest) }) {
			t.Fatalf("churn %d: ref %d not found for delete", i, oldest)
		}
		if _, ok := tab.Lookup(h, func(ref int32) bool { return ref == int32(oldest) }); ok {
			t.Fatalf("churn %d: ref %d still visible after delete", i, oldest)
		}
		oldest++
		keys = append(keys, r.Uint64())
		ref := int32(len(keys) - 1)
		tab.Insert(hashKey(keys[ref]), ref)
	}
	if tab.Len() != live {
		t.Fatalf("live count drifted: %d, want %d", tab.Len(), live)
	}
	// The whole point: capacity is bounded by the live size, not the churn
	// volume. One doubling of slack over the settled size is acceptable
	// (tombstone-triggered compaction may briefly double before settling).
	if tab.Cap() > 2*settled {
		t.Fatalf("capacity grew monotonically under churn: settled %d, now %d", settled, tab.Cap())
	}
	if ShouldGrow(tab.Len(), tab.Tombstones(), tab.Cap()) {
		t.Fatalf("load %d+%d/%d at or past threshold after churn",
			tab.Len(), tab.Tombstones(), tab.Cap())
	}
	// Every live ref is still reachable.
	for i := oldest; i < len(keys); i++ {
		h := hashKey(keys[i])
		got, ok := tab.Lookup(h, func(ref int32) bool { return ref == int32(i) })
		if !ok || got != int32(i) {
			t.Fatalf("ref %d lost after churn (ok=%v got=%d)", i, ok, got)
		}
	}
}

// BenchmarkTableChurn measures the steady-state delete+insert pair on a
// table at constant live size — the workload tombstone reuse exists for.
func BenchmarkTableChurn(b *testing.B) {
	const live = 1 << 14
	keys := make([]uint64, live, live+1)
	r := rand.New(rand.NewSource(11))
	for i := range keys {
		keys[i] = r.Uint64()
	}
	hashKey := func(k uint64) uint32 { return uint32(k) }
	tab := NewTable(live, func(ref int32) uint32 { return hashKey(keys[ref%int32(len(keys))]) })
	for i := 0; i < live; i++ {
		tab.Insert(hashKey(keys[i]), int32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := int32(i % live)
		h := hashKey(keys[victim])
		tab.Delete(h, func(ref int32) bool { return ref%int32(live) == victim })
		tab.Insert(h, victim+int32(live)*int32(i/live+1))
	}
	b.StopTimer()
	if got := tab.Cap(); got > 4*live {
		b.Fatalf("capacity %d blew past live size %d under churn", got, live)
	}
}
