package ohash

import (
	"math/rand"
	"testing"
)

func TestMix3SpreadsLowBits(t *testing.T) {
	// Sequential keys must not collide excessively in the low bits — that is
	// the whole point of the finalizer for power-of-two tables.
	const buckets = 1 << 10
	seen := make(map[uint32]int)
	for i := uint32(0); i < buckets; i++ {
		seen[Mix3(i, i*2, i*3)&(buckets-1)]++
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max > 8 {
		t.Fatalf("worst bucket holds %d of %d sequential keys", max, buckets)
	}
}

func TestProbeCoversTable(t *testing.T) {
	// A probe sequence must visit every slot exactly once per wrap.
	const buckets = 64
	visited := make(map[uint32]bool)
	p := NewProbe(0xdeadbeef, buckets)
	for i := 0; i < buckets; i++ {
		if visited[p.Slot()] {
			t.Fatalf("slot %d revisited after %d steps", p.Slot(), i)
		}
		visited[p.Slot()] = true
		p.Advance()
	}
	if len(visited) != buckets {
		t.Fatalf("visited %d of %d slots", len(visited), buckets)
	}
}

func TestShouldGrowThreshold(t *testing.T) {
	cases := []struct {
		entries, tombstones, buckets int
		want                         bool
	}{
		{0, 0, 16, false},
		{11, 0, 16, false},  // 11/16 < 3/4
		{12, 0, 16, true},   // exactly 3/4
		{8, 4, 16, true},    // tombstones count toward load
		{8, 3, 16, false},   // 11/16 again
		{767, 0, 1024, false},
		{768, 0, 1024, true},
	}
	for _, c := range cases {
		if got := ShouldGrow(c.entries, c.tombstones, c.buckets); got != c.want {
			t.Errorf("ShouldGrow(%d,%d,%d) = %v, want %v",
				c.entries, c.tombstones, c.buckets, got, c.want)
		}
	}
}

// TestTableRehashUnderLoad drives a Table through many growth cycles with
// adversarially colliding hashes and asserts no ref is lost, no lookup
// false-positives, and the load factor stays under the growth threshold.
func TestTableRehashUnderLoad(t *testing.T) {
	const n = 20_000
	keys := make([]uint64, n)
	r := rand.New(rand.NewSource(42))
	for i := range keys {
		keys[i] = r.Uint64()
	}
	// Adversarial hash: only 1<<14 distinct hash values for 20k keys, so
	// probe chains collide heavily and every grow must preserve chain
	// integrity.
	hashKey := func(k uint64) uint32 { return uint32(k) & 0x3fff }
	tab := NewTable(0, func(ref int32) uint32 { return hashKey(keys[ref]) })
	startCap := tab.Cap()
	for i := 0; i < n; i++ {
		h := hashKey(keys[i])
		eq := func(ref int32) bool { return keys[ref] == keys[i] }
		if got, ok := tab.Lookup(h, eq); ok {
			// Random 64-bit keys: duplicates are astronomically unlikely, so
			// a hit before insert is a table bug.
			t.Fatalf("ref %d found before insertion (got %d)", i, got)
		}
		tab.Insert(h, int32(i))
	}
	if tab.Len() != n {
		t.Fatalf("table holds %d entries, want %d", tab.Len(), n)
	}
	if tab.Cap() == startCap {
		t.Fatalf("table never grew past %d buckets under %d inserts", startCap, n)
	}
	if ShouldGrow(tab.Len(), 0, tab.Cap()) {
		t.Fatalf("post-insert load %d/%d is at or past the growth threshold", tab.Len(), tab.Cap())
	}
	for i := 0; i < n; i++ {
		h := hashKey(keys[i])
		got, ok := tab.Lookup(h, func(ref int32) bool { return keys[ref] == keys[i] })
		if !ok || got != int32(i) {
			t.Fatalf("ref %d lost after rehashes (ok=%v got=%d)", i, ok, got)
		}
	}
	// Reset keeps capacity but drops the entries.
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Reset left %d entries", tab.Len())
	}
	if _, ok := tab.Lookup(hashKey(keys[0]), func(ref int32) bool { return true }); ok {
		t.Fatal("lookup hit after Reset")
	}
}
