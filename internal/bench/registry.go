package bench

import (
	"fmt"

	"repro/internal/blif"
	"repro/internal/kiss"
	"repro/internal/network"
)

// S27 is the reconstructed ISCAS'89 s27 netlist (4 PI, 1 PO, 3 DFF, 10
// gates). Initial states are taken as 0 (ISCAS'89 leaves them
// unspecified; SIS-era flows reset to zero).
const S27 = `
.model s27
.inputs G0 G1 G2 G3
.outputs G17
.latch G10 G5 0
.latch G11 G6 0
.latch G13 G7 0
.names G0 G14
0 1
.names G11 G17
0 1
.names G14 G6 G8
11 1
.names G12 G8 G15
00 0
.names G3 G8 G16
00 0
.names G16 G15 G9
11 0
.names G14 G11 G10
00 1
.names G5 G9 G11
00 1
.names G1 G7 G12
00 1
.names G2 G12 G13
00 1
.end
`

// Kind classifies how a benchmark circuit was obtained (the substitution
// taxonomy of DESIGN.md §2).
type Kind string

const (
	// KindFSMEmbedded is a reconstructed MCNC KISS2 machine.
	KindFSMEmbedded Kind = "fsm-embedded"
	// KindFSMGenerated is a profile-matched generated FSM.
	KindFSMGenerated Kind = "fsm-generated"
	// KindISCASReconstructed is a hand-reconstructed ISCAS'89 netlist.
	KindISCASReconstructed Kind = "iscas-reconstructed"
	// KindISCASSynthetic is a profile-matched synthetic netlist.
	KindISCASSynthetic Kind = "iscas-synthetic"
)

// Circuit is one benchmark entry.
type Circuit struct {
	Name  string
	Kind  Kind
	Build func() (*network.Network, error)
}

func fromKiss(src, name string) func() (*network.Network, error) {
	return func() (*network.Network, error) {
		f, err := kiss.ParseString(src, name)
		if err != nil {
			return nil, err
		}
		return f.Synthesize(kiss.Binary)
	}
}

func fromRandomFSM(name string, states, ins, outs int, seed int64) func() (*network.Network, error) {
	return func() (*network.Network, error) {
		return RandomFSM(name, states, ins, outs, seed).Synthesize(kiss.Binary)
	}
}

func fromProfile(p Profile) func() (*network.Network, error) {
	return func() (*network.Network, error) {
		n := Synthetic(p)
		if err := n.Check(); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		return n, nil
	}
}

// TableI returns the benchmark suite of the paper's Table I (MCNC FSMs and
// ISCAS'89 circuits), in table order.
func TableI() []Circuit {
	return []Circuit{
		{"ex2", KindFSMGenerated, fromRandomFSM("ex2", 19, 2, 2, 102)},
		{"ex6", KindFSMGenerated, fromRandomFSM("ex6", 8, 5, 8, 106)},
		{"bbtas", KindFSMEmbedded, fromKiss(BBTAS, "bbtas")},
		{"bbara", KindFSMEmbedded, fromKiss(BBARA, "bbara")},
		{"planet", KindFSMGenerated, fromRandomFSM("planet", 48, 7, 19, 148)},
		{"s27", KindISCASReconstructed, func() (*network.Network, error) { return blif.ParseString(S27) }},
		{"s208", KindISCASSynthetic, fromProfile(Profile{"s208", 10, 1, 8, 96, 208})},
		{"s298", KindISCASSynthetic, fromProfile(Profile{"s298", 3, 6, 14, 119, 298})},
		{"s344", KindISCASSynthetic, fromProfile(Profile{"s344", 9, 11, 15, 160, 344})},
		{"s382", KindISCASSynthetic, fromProfile(Profile{"s382", 3, 6, 21, 158, 382})},
		{"s386", KindISCASSynthetic, fromProfile(Profile{"s386", 7, 7, 6, 159, 386})},
		{"s400", KindISCASSynthetic, fromProfile(Profile{"s400", 3, 6, 21, 162, 400})},
		{"s420", KindISCASSynthetic, fromProfile(Profile{"s420", 18, 1, 16, 218, 420})},
		{"s510", KindISCASSynthetic, fromProfile(Profile{"s510", 19, 7, 6, 211, 510})},
		{"s526", KindISCASSynthetic, fromProfile(Profile{"s526", 3, 6, 21, 193, 526})},
		{"s641", KindISCASSynthetic, fromProfile(Profile{"s641", 35, 24, 19, 379, 641})},
		{"s820", KindISCASSynthetic, fromProfile(Profile{"s820", 18, 19, 5, 289, 820})},
		{"s1196", KindISCASSynthetic, fromProfile(Profile{"s1196", 14, 14, 18, 529, 1196})},
		{"s1238", KindISCASSynthetic, fromProfile(Profile{"s1238", 14, 14, 18, 508, 1238})},
		{"s5378", KindISCASSynthetic, fromProfile(Profile{"s5378", 35, 49, 179, 2779, 5378})},
	}
}

// Large returns the s38417-class suite: profile-matched synthetics for
// the big ISCAS'89 circuits the paper could not run ("the method is
// currently limited by the size of circuits the implicit techniques can
// handle"). They are deliberately NOT part of TableI(): at tens of
// thousands of gates the SOP substrate's two-level covers blow past any
// reasonable pass budget, which is exactly the wall the AIG substrate
// exists to break — benchflows -aig-bench runs both substrates over this
// suite and records who finishes.
func Large() []Circuit {
	return []Circuit{
		{"s9234", KindISCASSynthetic, fromProfile(Profile{"s9234", 19, 22, 228, 5597, 9234})},
		{"s13207", KindISCASSynthetic, fromProfile(Profile{"s13207", 31, 121, 669, 7951, 13207})},
		{"s15850", KindISCASSynthetic, fromProfile(Profile{"s15850", 14, 87, 597, 9772, 15850})},
		{"s35932", KindISCASSynthetic, fromProfile(Profile{"s35932", 35, 320, 1728, 16065, 35932})},
		{"s38417", KindISCASSynthetic, fromProfile(Profile{"s38417", 28, 106, 1636, 22179, 38417})},
		{"s38584", KindISCASSynthetic, fromProfile(Profile{"s38584", 12, 278, 1452, 19253, 38584})},
	}
}

// SmallFSMs returns the embedded machines (used by examples and tests).
func SmallFSMs() map[string]string {
	return map[string]string{
		"bbtas":    BBTAS,
		"bbara":    BBARA,
		"dk27":     DK27,
		"lion":     LION,
		"train4":   TRAIN4,
		"mc":       MC,
		"beecount": BEECOUNT,
		"shiftreg": SHIFTREG,
	}
}

// ByName finds a circuit in the Table I suite or the Large suite.
func ByName(name string) (Circuit, bool) {
	for _, c := range TableI() {
		if c.Name == name {
			return c, true
		}
	}
	for _, c := range Large() {
		if c.Name == name {
			return c, true
		}
	}
	return Circuit{}, false
}
