package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kiss"
)

// Embedded KISS2 machines. The small MCNC FSM benchmarks are reconstructed
// to match the documented input/output/state counts of the originals
// (bbtas: 2/2/6, bbara: 4/2/10, dk27: 1/2/7, lion: 2/1/4, train4: 2/1/4,
// mc: 3/5/4, beecount: 3/4/7, shiftreg: 1/1/8). Larger FSMs whose state
// tables are not public-domain-memorable (ex2, ex6, planet) are generated
// by RandomFSM with matching profiles. See DESIGN.md §2.

// BBTAS is a 6-state bus arbiter-ish controller (2 in / 2 out).
const BBTAS = `
.i 2
.o 2
.s 6
.r st0
00 st0 st0 00
01 st0 st1 00
10 st0 st2 00
11 st0 st5 00
00 st1 st0 01
-1 st1 st3 01
10 st1 st1 01
00 st2 st0 10
01 st2 st2 10
1- st2 st4 10
0- st3 st1 01
1- st3 st5 01
-0 st4 st2 10
-1 st4 st5 10
00 st5 st0 11
01 st5 st3 11
10 st5 st4 11
11 st5 st5 11
.e
`

// BBARA is a 10-state arbiter (4 in / 2 out).
const BBARA = `
.i 4
.o 2
.s 10
.r st0
--00 st0 st0 00
--01 st0 st1 00
--10 st0 st4 00
--11 st0 st0 00
--01 st1 st2 00
--10 st1 st4 00
--00 st1 st1 00
--11 st1 st0 00
--01 st2 st3 00
--10 st2 st4 00
--00 st2 st2 00
--11 st2 st0 00
0-01 st3 st3 10
--10 st3 st4 10
--00 st3 st3 10
1-01 st3 st7 10
--11 st3 st0 10
--10 st4 st5 00
--01 st4 st1 00
--00 st4 st4 00
--11 st4 st0 00
--10 st5 st6 00
--01 st5 st1 00
--00 st5 st5 00
--11 st5 st0 00
-010 st6 st6 01
--01 st6 st1 01
-110 st6 st8 01
--00 st6 st6 01
--11 st6 st0 01
--01 st7 st2 10
--10 st7 st4 10
--00 st7 st7 10
--11 st7 st0 10
--10 st8 st5 01
--01 st8 st1 01
--00 st8 st9 01
--11 st8 st0 01
--00 st9 st9 01
--01 st9 st1 01
--10 st9 st5 01
--11 st9 st0 01
.e
`

// DK27 is a 7-state counter-like machine (1 in / 2 out).
const DK27 = `
.i 1
.o 2
.s 7
.r s1
0 s1 s2 00
1 s1 s4 00
0 s2 s3 00
1 s2 s5 01
0 s3 s1 10
1 s3 s6 10
0 s4 s5 01
1 s4 s1 01
0 s5 s6 10
1 s5 s7 11
0 s6 s7 11
1 s6 s2 00
0 s7 s1 00
1 s7 s3 10
.e
`

// LION is the classic 4-state lion machine (2 in / 1 out).
const LION = `
.i 2
.o 1
.s 4
.r st0
00 st0 st0 0
01 st0 st0 0
10 st0 st1 0
00 st1 st1 1
10 st1 st1 1
11 st1 st2 1
10 st2 st2 1
11 st2 st2 1
01 st2 st3 1
11 st3 st3 1
01 st3 st3 1
00 st3 st3 1
.e
`

// TRAIN4 is the 4-state train controller (2 in / 1 out).
const TRAIN4 = `
.i 2
.o 1
.s 4
.r st0
00 st0 st0 0
10 st0 st1 1
01 st0 st2 1
11 st0 st0 0
10 st1 st1 1
00 st1 st3 1
01 st2 st2 1
00 st2 st3 1
00 st3 st3 1
10 st3 st3 1
01 st3 st3 1
11 st3 st0 0
.e
`

// MC is a 4-state sequencer with wide outputs (3 in / 5 out).
const MC = `
.i 3
.o 5
.s 4
.r s0
0-- s0 s0 00000
1-- s0 s1 00010
-0- s1 s1 01000
-1- s1 s2 01010
--0 s2 s2 10000
--1 s2 s3 10010
0-- s3 s3 00101
1-- s3 s0 00111
.e
`

// BEECOUNT is a 7-state counter (3 in / 4 out).
const BEECOUNT = `
.i 3
.o 4
.s 7
.r st0
0-- st0 st0 0000
1-- st0 st1 0001
00- st1 st1 0001
01- st1 st2 0010
1-- st1 st0 0000
0-0 st2 st2 0010
0-1 st2 st3 0011
1-- st2 st1 0001
-00 st3 st3 0011
-01 st3 st4 0100
-1- st3 st2 0010
0-- st4 st5 0101
1-- st4 st3 0011
-0- st5 st6 0110
-1- st5 st4 0100
--0 st6 st0 0111
--1 st6 st5 0101
.e
`

// SHIFTREG is the 8-state serial shift register (1 in / 1 out).
const SHIFTREG = `
.i 1
.o 1
.s 8
.r st0
0 st0 st0 0
1 st0 st4 0
0 st1 st0 1
1 st1 st4 1
0 st2 st1 0
1 st2 st5 0
0 st3 st1 1
1 st3 st5 1
0 st4 st2 0
1 st4 st6 0
0 st5 st2 1
1 st5 st6 1
0 st6 st3 0
1 st6 st7 0
0 st7 st3 1
1 st7 st7 1
.e
`

// ParseEmbedded parses one of the embedded machines.
func ParseEmbedded(src, name string) (*kiss.FSM, error) {
	return kiss.ParseString(src, name)
}

// RandomFSM deterministically generates a strongly connected Mealy machine
// with the given profile — used for MCNC machines whose exact tables are
// unavailable (ex2, ex6, planet).
func RandomFSM(name string, states, ins, outs int, seed int64) *kiss.FSM {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, ".i %d\n.o %d\n.s %d\n.r s0\n", ins, outs, states)
	randOut := func() string {
		o := make([]byte, outs)
		for i := range o {
			o[i] = '0' + byte(r.Intn(2))
		}
		return string(o)
	}
	// Per state: split the input space by the value of one chosen input
	// variable, guaranteeing full and deterministic coverage.
	for s := 0; s < states; s++ {
		v := r.Intn(ins)
		for _, val := range []byte{'0', '1'} {
			cube := strings.Repeat("-", v) + string(val) + strings.Repeat("-", ins-v-1)
			// Ring edge keeps the machine strongly connected; the other
			// branch jumps randomly.
			var to int
			if val == '0' {
				to = (s + 1) % states
			} else {
				to = r.Intn(states)
			}
			fmt.Fprintf(&b, "%s s%d s%d %s\n", cube, s, to, randOut())
		}
	}
	b.WriteString(".e\n")
	f, err := kiss.ParseString(b.String(), name)
	if err != nil {
		panic(fmt.Sprintf("bench: generated FSM invalid: %v", err))
	}
	return f
}
