package bench

import (
	"testing"

	"repro/internal/kiss"
	"repro/internal/network"
	"repro/internal/retime"
	"repro/internal/sim"
	"repro/internal/timing"
)

func TestPaperExampleShape(t *testing.T) {
	n := BuildPaperExample()
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	p, err := timing.Period(n, timing.UnitDelay{})
	if err != nil || p != 3 {
		t.Fatalf("period %v err %v, want 3", p, err)
	}
	if len(n.Latches) != 3 {
		t.Fatalf("latches = %d", len(n.Latches))
	}
	// The v register must be a multi-fanout stem (the enabler of DCret).
	v := n.FindNode("v")
	if n.NumFanouts(v) < 2 {
		t.Fatal("v must have multiple fanouts")
	}
}

func TestEmbeddedFSMsParseAndSynthesize(t *testing.T) {
	for name, src := range SmallFSMs() {
		f, err := kiss.ParseString(src, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n, err := f.Synthesize(kiss.Binary)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := n.Check(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(n.Latches) == 0 || len(n.POs) != f.NumOut {
			t.Fatalf("%s: shape wrong: %v", name, n.Stat())
		}
	}
}

func TestEmbeddedFSMDeterministicRows(t *testing.T) {
	// Every (state, input) pair must resolve to at most one transition in
	// the embedded machines — nondeterminism would corrupt synthesis.
	for name, src := range SmallFSMs() {
		f, err := kiss.ParseString(src, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for mt := 0; mt < 1<<uint(f.NumIn); mt++ {
			for _, st := range f.States {
				hits := 0
				for _, tr := range f.Transitions {
					if tr.From != st && tr.From != "*" {
						continue
					}
					match := true
					for i := 0; i < f.NumIn; i++ {
						bit := mt&(1<<uint(i)) != 0
						switch tr.In[i] {
						case '0':
							if bit {
								match = false
							}
						case '1':
							if !bit {
								match = false
							}
						}
					}
					if match {
						hits++
					}
				}
				if hits > 1 {
					t.Fatalf("%s: state %s input %b matches %d rows", name, st, mt, hits)
				}
			}
		}
	}
}

func TestRandomFSMDeterministicAndConnected(t *testing.T) {
	f := RandomFSM("x", 12, 3, 4, 7)
	if len(f.States) != 12 || f.NumIn != 3 || f.NumOut != 4 {
		t.Fatalf("profile not honoured: %d states %d in %d out", len(f.States), f.NumIn, f.NumOut)
	}
	n, err := f.Synthesize(kiss.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// Determinism of generation.
	g := RandomFSM("x", 12, 3, 4, 7)
	if len(g.Transitions) != len(f.Transitions) {
		t.Fatal("RandomFSM not deterministic")
	}
	for i := range g.Transitions {
		if g.Transitions[i] != f.Transitions[i] {
			t.Fatal("RandomFSM not deterministic")
		}
	}
}

func TestSyntheticProfiles(t *testing.T) {
	p := Profile{Name: "t", PIs: 5, POs: 3, FFs: 8, Gates: 40, Seed: 3}
	n := Synthetic(p)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	st := n.Stat()
	if st.PIs != 5 || st.POs != 3 {
		t.Fatalf("io mismatch: %v", st)
	}
	if st.Latches == 0 || st.Latches > 8 {
		t.Fatalf("latch count %d out of profile", st.Latches)
	}
	// Determinism.
	m := Synthetic(p)
	if m.Stat() != st {
		t.Fatal("Synthetic not deterministic")
	}
	// Simulable.
	s, err := sim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]bool, st.PIs)
	for c := 0; c < 50; c++ {
		s.StepBits(bits)
	}
}

func TestSyntheticHasFeedbackAndStems(t *testing.T) {
	// The generator must produce FSM structure: some register in some
	// seed's circuit must sit on a feedback loop and have multiple
	// fanouts — otherwise the resynthesis experiments are vacuous.
	found := false
	for seed := int64(1); seed <= 5 && !found; seed++ {
		n := Synthetic(Profile{Name: "f", PIs: 3, POs: 2, FFs: 5, Gates: 24, Seed: seed})
		for _, l := range n.Latches {
			if n.NumFanouts(l.Output) >= 2 {
				// Feedback: driver cone reaches some register output.
				tfi := n.TransitiveFanin(l.Driver)
				for _, l2 := range n.Latches {
					if tfi[l2.Output] {
						found = true
						break
					}
				}
			}
			if found {
				break
			}
		}
	}
	if !found {
		t.Fatal("no multi-fanout feedback registers in synthetic circuits")
	}
}

func TestS27Reconstruction(t *testing.T) {
	c, ok := ByName("s27")
	if !ok {
		t.Fatal("s27 missing from registry")
	}
	n, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stat()
	if st.PIs != 4 || st.POs != 1 || st.Latches != 3 || st.LogicNodes != 10 {
		t.Fatalf("s27 shape: %v (want 4/1/3/10)", st)
	}
	// Behavioural smoke: with all inputs 0, the output follows the
	// documented s27 reset behaviour (G17 = NOT G11; G11 = NOR(G5,G9)).
	s, _ := sim.New(n)
	out := s.StepBits([]bool{false, false, false, false})
	if len(out) != 1 {
		t.Fatal("one PO expected")
	}
}

func TestRegistryBuildsAllSmallEntries(t *testing.T) {
	for _, c := range TableI() {
		if c.Name == "s5378" || c.Name == "s1196" || c.Name == "s1238" {
			continue // exercised by the benchmark harness, too slow here
		}
		n, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if err := n.Check(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestPipelineExampleIsFeedForward(t *testing.T) {
	// Feedback = a cycle in the latch dependency graph (latch A depends on
	// latch B when B's output is in the combinational fanin of A's driver).
	n := BuildPipelineExample()
	dep := map[*network.Latch][]*network.Latch{}
	for _, a := range n.Latches {
		tfi := n.TransitiveFanin(a.Driver)
		for _, b := range n.Latches {
			if tfi[b.Output] {
				dep[a] = append(dep[a], b)
			}
		}
	}
	var onStack, done map[*network.Latch]bool
	var cyclic bool
	var visit func(l *network.Latch)
	visit = func(l *network.Latch) {
		if done[l] || cyclic {
			return
		}
		if onStack[l] {
			cyclic = true
			return
		}
		onStack[l] = true
		for _, d := range dep[l] {
			visit(d)
		}
		onStack[l] = false
		done[l] = true
	}
	onStack, done = map[*network.Latch]bool{}, map[*network.Latch]bool{}
	for _, l := range n.Latches {
		visit(l)
	}
	if cyclic {
		t.Fatal("pipeline example must have no feedback cycles")
	}
}

func TestSingleFanoutExampleProperty(t *testing.T) {
	n := BuildSingleFanoutExample()
	for _, l := range n.Latches {
		if n.NumFanouts(l.Output) != 1 {
			t.Fatalf("register %s must have exactly one fanout", l.Name)
		}
	}
	// And it must still be a real FSM (retimable in principle).
	if _, err := retime.BuildGraph(n, nil); err != nil {
		t.Fatal(err)
	}
	var _ *network.Network = n
}
