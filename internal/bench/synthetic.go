package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/network"
)

// Profile describes the shape of a synthetic sequential circuit. The
// ISCAS'89-style circuits used in Table I are generated from profiles
// matching the published PI/PO/FF/gate counts of the original benchmarks
// (the netlists themselves are not redistributable; see DESIGN.md §2).
type Profile struct {
	Name  string
	PIs   int
	POs   int
	FFs   int
	Gates int
	Seed  int64
}

// Synthetic deterministically generates a gate-level FSM with the given
// profile: random two-input-dominated logic, registers woven into the
// combinational structure (so critical paths start at multi-fanout state
// registers), and guaranteed feedback through every register file.
func Synthetic(p Profile) *network.Network {
	r := rand.New(rand.NewSource(p.Seed))
	n := network.New(p.Name)
	var pis []*network.Node
	for i := 0; i < p.PIs; i++ {
		pis = append(pis, n.AddPI(fmt.Sprintf("in%d", i)))
	}
	var latches []*network.Latch
	for i := 0; i < p.FFs; i++ {
		init := network.V0
		if r.Intn(4) == 0 {
			init = network.V1
		}
		latches = append(latches, n.AddLatch(fmt.Sprintf("ff%d", i), nil, init))
	}
	// Signal pool for fanin selection, biased toward register outputs
	// early on (so state registers sit on the long paths) and recent
	// gates later (to build depth).
	pool := make([]*network.Node, 0, p.PIs+p.FFs+p.Gates)
	pool = append(pool, pis...)
	for _, l := range latches {
		pool = append(pool, l.Output)
	}
	pick := func() *network.Node {
		// Bias: 50% among the most recent quarter, else uniform.
		if len(pool) > 8 && r.Intn(2) == 0 {
			q := len(pool) / 4
			return pool[len(pool)-1-r.Intn(q)]
		}
		return pool[r.Intn(len(pool))]
	}
	gateFns := []*logic.Cover{
		logic.MustParseCover(2, "11"),       // and
		logic.MustParseCover(2, "1-", "-1"), // or
		logic.MustParseCover(2, "0-", "-0"), // nand
		logic.MustParseCover(2, "00"),       // nor
		logic.MustParseCover(2, "10", "01"), // xor
		logic.MustParseCover(2, "11", "00"), // xnor
		logic.MustParseCover(2, "10"),       // and-not
	}
	var gates []*network.Node
	for i := 0; i < p.Gates; i++ {
		var g *network.Node
		if i < p.FFs && p.FFs > 0 {
			// The first wave of gates consumes register outputs directly,
			// guaranteeing every register is read and multi-fanout stems
			// appear at register outputs.
			a := latches[i%p.FFs].Output
			b := pick()
			for b == a {
				b = pick()
			}
			g = n.AddLogic(fmt.Sprintf("g%d", i), []*network.Node{a, b},
				gateFns[r.Intn(len(gateFns))].Clone())
		} else {
			a, b := pick(), pick()
			for b == a {
				b = pick()
			}
			g = n.AddLogic(fmt.Sprintf("g%d", i), []*network.Node{a, b},
				gateFns[r.Intn(len(gateFns))].Clone())
		}
		gates = append(gates, g)
		pool = append(pool, g)
	}
	// Register drivers: late gates, creating feedback (their cones reach
	// register outputs by construction bias).
	for i, l := range latches {
		if len(gates) == 0 {
			l.Driver = pis[i%len(pis)]
			continue
		}
		// Prefer gates from the last half.
		gi := len(gates)/2 + r.Intn((len(gates)+1)/2)
		if gi >= len(gates) {
			gi = len(gates) - 1
		}
		l.Driver = gates[gi]
	}
	// Primary outputs from distinct late gates where possible.
	used := map[*network.Node]bool{}
	for i := 0; i < p.POs; i++ {
		var d *network.Node
		for tries := 0; tries < 16; tries++ {
			if len(gates) == 0 {
				d = pis[r.Intn(len(pis))]
				break
			}
			d = gates[r.Intn(len(gates))]
			if !used[d] {
				break
			}
		}
		used[d] = true
		n.AddPO(fmt.Sprintf("out%d", i), d)
	}
	n.Sweep()
	// Drop registers that ended up unread (sweeping keeps counts honest).
	for {
		removed := false
		for _, l := range append([]*network.Latch(nil), n.Latches...) {
			if n.NumFanouts(l.Output) == 0 {
				n.RemoveLatch(l)
				removed = true
			}
		}
		if !removed {
			break
		}
		n.Sweep()
	}
	return n
}
