// Package bench provides the benchmark circuits of the evaluation: a
// reconstruction of the paper's Section III worked example, embedded MCNC
// KISS2 FSMs, a reconstructed ISCAS'89 s27, and a seeded generator for
// ISCAS'89-profile synthetic sequential circuits (see DESIGN.md §2 for the
// substitution rationale).
package bench

import (
	"repro/internal/logic"
	"repro/internal/network"
)

// BuildPaperExample reconstructs the flavour of the paper's Section III
// worked example (Fig. 4–6): a sequential circuit with a multi-fanout
// state register on its critical path for which
//
//   - the delay-optimized implementation needs 3 gate delays,
//   - conventional min-period retiming reaches 2 (a critical cycle with
//     one register and two gates bounds it), and
//   - the paper's resynthesis reaches the optimum of 1 gate delay, because
//     the retiming-induced equivalence collapses the relocated next-state
//     logic.
//
// Structure (unit delay):
//
//	g1 = v XOR s        (v: feedback register, s: input register)
//	g2 = g1 AND v       (second fanout of v; drives v's next state)
//	g3 = g2 OR b        (drives output register t)
//	y  = t
func BuildPaperExample() *network.Network {
	n := network.New("paper_fig4")
	a := n.AddPI("a")
	b := n.AddPI("b")
	s := n.AddLatch("s", a, network.V0)
	v := n.AddLatch("v", nil, network.V0)
	xor2 := logic.MustParseCover(2, "10", "01")
	and2 := logic.MustParseCover(2, "11")
	or2 := logic.MustParseCover(2, "1-", "-1")
	g1 := n.AddLogic("g1", []*network.Node{v.Output, s.Output}, xor2)
	g2 := n.AddLogic("g2", []*network.Node{g1, v.Output}, and2)
	g3 := n.AddLogic("g3", []*network.Node{g2, b}, or2)
	v.Driver = g2
	t := n.AddLatch("t", g3, network.V0)
	n.AddPO("y", t.Output)
	return n
}

// BuildPipelineExample builds a purely feed-forward pipeline: the negative
// case of Section IV — no feedback loops, so the technique must return the
// circuit unchanged ("fully combinational I/O paths and pipelined circuits
// would not benefit from our technique").
func BuildPipelineExample() *network.Network {
	n := network.New("pipeline")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	and2 := logic.MustParseCover(2, "11")
	or2 := logic.MustParseCover(2, "1-", "-1")
	ra := n.AddLatch("ra", a, network.V0)
	rb := n.AddLatch("rb", b, network.V0)
	rc := n.AddLatch("rc", c, network.V0)
	g1 := n.AddLogic("g1", []*network.Node{ra.Output, rb.Output}, and2)
	g2 := n.AddLogic("g2", []*network.Node{g1, rc.Output}, or2)
	t := n.AddLatch("t", g2, network.V0)
	n.AddPO("y", t.Output)
	return n
}

// BuildSingleFanoutExample builds a feedback circuit whose critical-path
// registers all have a single fanout: the paper's other non-applicability
// case ("the critical paths did not contain any multiple-fanout registers
// that could be retimed across their fanout stems").
func BuildSingleFanoutExample() *network.Network {
	n := network.New("single_fanout")
	a := n.AddPI("a")
	xor2 := logic.MustParseCover(2, "10", "01")
	inv := logic.MustParseCover(1, "0")
	v := n.AddLatch("v", nil, network.V0)
	g1 := n.AddLogic("g1", []*network.Node{v.Output, a}, xor2)
	g2 := n.AddLogic("g2", []*network.Node{g1}, inv)
	v.Driver = g2
	n.AddPO("y", g2)
	return n
}
