package sim

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/network"
)

// buildCounter builds a 2-bit synchronous counter with enable:
//
//	d0 = s0 XOR en
//	d1 = s1 XOR (s0 AND en)
//	PO c = s1 AND s0
func buildCounter(t *testing.T) *network.Network {
	t.Helper()
	n := network.New("cnt2")
	en := n.AddPI("en")
	xor := logic.MustParseCover(2, "10", "01")
	and := logic.MustParseCover(2, "11")
	// Create latches with placeholder drivers (the enable PI), then fix.
	l0 := n.AddLatch("s0", en, network.V0)
	l1 := n.AddLatch("s1", en, network.V0)
	d0 := n.AddLogic("d0", []*network.Node{l0.Output, en}, xor.Clone())
	t0 := n.AddLogic("t0", []*network.Node{l0.Output, en}, and.Clone())
	d1 := n.AddLogic("d1", []*network.Node{l1.Output, t0}, xor.Clone())
	c := n.AddLogic("c", []*network.Node{l1.Output, l0.Output}, and.Clone())
	l0.Driver = d0
	l1.Driver = d1
	n.AddPO("c", c)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCounterSequence(t *testing.T) {
	n := buildCounter(t)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Count 0,1,2,3 -> carry asserted in state 3.
	wantCarry := []bool{false, false, false, true, false, false, false, true}
	for cyc, want := range wantCarry {
		out := s.StepBits([]bool{true})
		if out[0] != want {
			t.Fatalf("cycle %d: carry=%v want %v", cyc, out[0], want)
		}
	}
	// With enable low the state freezes.
	s.Reset()
	s.StepBits([]bool{true}) // state 1
	st := s.State()
	s.StepBits([]bool{false})
	for i, v := range s.State() {
		if v != st[i] {
			t.Fatal("state changed with enable low")
		}
	}
}

func TestThreeValuedConservative(t *testing.T) {
	n := buildCounter(t)
	s, _ := New(n)
	// Unknown state: outputs/latches stay X under unknown inputs.
	s.SetState([]network.Value{network.VX, network.VX})
	out := s.Step3(nil) // all PIs X
	if out["c"] != network.VX {
		t.Fatalf("carry = %v, want X", out["c"])
	}
	// XOR of X with a known 0 stays X (conservative).
	s.SetState([]network.Value{network.VX, network.V0})
	pi := map[*network.Node]network.Value{n.PIs[0]: network.V0}
	s.Step3(pi)
	if s.State()[0] != network.VX {
		t.Fatal("s0 must remain X")
	}
}

func TestThreeValuedDominance(t *testing.T) {
	// AND with a controlling 0 yields 0 even if the other input is X.
	n := network.New("andx")
	a := n.AddPI("a")
	b := n.AddPI("b")
	g := n.AddLogic("g", []*network.Node{a, b}, logic.MustParseCover(2, "11"))
	n.AddPO("y", g)
	s, _ := New(n)
	out := s.Step3(map[*network.Node]network.Value{a: network.V0})
	if out["y"] != network.V0 {
		t.Fatalf("0 AND X = %v, want 0", out["y"])
	}
	// OR with a controlling 1.
	n2 := network.New("orx")
	a2 := n2.AddPI("a")
	b2 := n2.AddPI("b")
	g2 := n2.AddLogic("g", []*network.Node{a2, b2}, logic.MustParseCover(2, "1-", "-1"))
	n2.AddPO("y", g2)
	s2, _ := New(n2)
	out2 := s2.Step3(map[*network.Node]network.Value{a2: network.V1})
	if out2["y"] != network.V1 {
		t.Fatalf("1 OR X = %v, want 1", out2["y"])
	}
}

func TestRandomEquivalentSelf(t *testing.T) {
	n := buildCounter(t)
	m := n.Clone()
	if err := RandomEquivalent(n, m, 0, 200, 1); err != nil {
		t.Fatalf("network not equivalent to its clone: %v", err)
	}
}

func TestRandomEquivalentCatchesBug(t *testing.T) {
	n := buildCounter(t)
	m := n.Clone()
	// Corrupt the clone: carry becomes OR instead of AND.
	c := m.FindNode("c")
	m.SetFunction(c, c.Fanins, logic.MustParseCover(2, "1-", "-1"))
	if err := RandomEquivalent(n, m, 0, 200, 1); err == nil {
		t.Fatal("corrupted network reported equivalent")
	}
}

func TestDelayedReplacementPrefixMasksStartup(t *testing.T) {
	// Machine A: PO = s where s holds input delayed by one cycle, init 0.
	// Machine B: same but init 1. They differ only at cycle 0, so with a
	// 1-cycle delayed-replacement prefix they are equivalent.
	build := func(init network.Value) *network.Network {
		n := network.New("d")
		a := n.AddPI("a")
		l := n.AddLatch("s", a, init)
		buf := n.AddLogic("buf", []*network.Node{l.Output}, logic.MustParseCover(1, "1"))
		n.AddPO("y", buf)
		return n
	}
	a := build(network.V0)
	b := build(network.V1)
	if err := RandomEquivalent(a, b, 0, 50, 3); err == nil {
		t.Fatal("differing initial outputs must be caught without prefix")
	}
	if err := RandomEquivalent(a, b, 1, 50, 3); err != nil {
		t.Fatalf("1-cycle prefix must mask the initial difference: %v", err)
	}
}

func TestSynchronizingSequence(t *testing.T) {
	// A shift register with a reset input: rst forces both stages to 0, so
	// [rst=1, rst=1] synchronizes structurally.
	n := network.New("sync")
	d := n.AddPI("d")
	rst := n.AddPI("rst")
	// stage = d AND NOT rst
	andn := logic.MustParseCover(2, "10")
	l0 := n.AddLatch("q0", d, network.V0)
	l1 := n.AddLatch("q1", d, network.V0)
	s0 := n.AddLogic("s0d", []*network.Node{d, rst}, andn.Clone())
	s1 := n.AddLogic("s1d", []*network.Node{l0.Output, rst}, andn.Clone())
	l0.Driver = s0
	l1.Driver = s1
	n.AddPO("q", l1.Output)
	seq, ok := SynchronizingSequence(n, 8, 50, 7)
	if !ok {
		t.Fatal("no synchronizing sequence found for resettable shift register")
	}
	if len(seq) == 0 {
		t.Fatal("empty sequence")
	}
}

func TestSynchronizingSequenceImpossible(t *testing.T) {
	// A free-running toggle with no inputs controlling it cannot be
	// synchronized structurally from X.
	n := network.New("tog")
	_ = n.AddPI("dummy")
	l := n.AddLatch("s", nil, network.V0)
	inv := n.AddLogic("inv", []*network.Node{l.Output}, logic.MustParseCover(1, "0"))
	l.Driver = inv
	n.AddPO("y", l.Output)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if _, ok := SynchronizingSequence(n, 10, 20, 9); ok {
		t.Fatal("toggle flip-flop cannot have a structural synchronizing sequence")
	}
}
