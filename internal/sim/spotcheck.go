package sim

// SpotCheck is one random-simulation spot-check budget: how many cycles to
// drive and which RNG seed to use.
type SpotCheck struct {
	Cycles int
	Seed   int64
}

// SpotCheckConfig collects the spot-check budgets used across the
// pipeline, replacing the magic (cycles, seed) pairs that were duplicated
// at each call site.
type SpotCheckConfig struct {
	// Verify is the flows fallback verifier budget, used when exact
	// sequential verification exceeds its BDD limits.
	Verify SpotCheck
	// CLI is the final end-to-end check run by cmd/resyn and cmd/retime
	// (overridable there via -sim-cycles).
	CLI SpotCheck
	// Smoke is the cheap pre-commit check guard.Tx runs before accepting a
	// transformation.
	Smoke SpotCheck
}

// DefaultSpotCheck holds the default budgets consumed by internal/flows,
// internal/guard, cmd/resyn and cmd/retime.
var DefaultSpotCheck = SpotCheckConfig{
	Verify: SpotCheck{Cycles: 3000, Seed: 1999},
	CLI:    SpotCheck{Cycles: 5000, Seed: 1},
	Smoke:  SpotCheck{Cycles: 64, Seed: 1},
}
