package sim_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/network"
	"repro/internal/sim"
)

func benchCircuit(b *testing.B, name string) *network.Network {
	b.Helper()
	c, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown bench circuit %s", name)
	}
	n, err := c.Build()
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkRandomEquivalent compares the scalar oracle against the
// bit-parallel engine on the self-equivalence sweep every verifier fallback
// and Tx smoke check runs. The vectors/s metric is the ISSUE's headline
// number: scalar advances one vector per pass, bitsim 64 per word op.
func BenchmarkRandomEquivalent(b *testing.B) {
	const cycles = 256
	for _, name := range []string{"s298", "s344"} {
		n := benchCircuit(b, name)
		b.Run(name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := sim.RandomEquivalentScalar(n, n, 0, cycles, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*cycles/b.Elapsed().Seconds(), "vectors/s")
		})
		b.Run(name+"/bitsim", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := sim.RandomEquivalent(n, n, 0, cycles, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*cycles*bitsim.LanesPerWord/b.Elapsed().Seconds(), "vectors/s")
		})
	}
}

// BenchmarkSynchronizingSequence compares the scalar try-by-try search
// against the 64-candidates-per-word bitsim search.
func BenchmarkSynchronizingSequence(b *testing.B) {
	const (
		maxLen = 40
		tries  = 64
	)
	for _, name := range []string{"s298", "s344"} {
		n := benchCircuit(b, name)
		b.Run(name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.SynchronizingSequenceScalar(n, maxLen, tries, 1)
			}
		})
		b.Run(name+"/bitsim", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.SynchronizingSequence(n, maxLen, tries, 1)
			}
		})
	}
}
