// Package sim provides two-valued and three-valued (0/1/X) simulation of
// sequential networks, random-vector equivalence spot-checks with the
// paper's delayed-replacement semantics, and structural synchronizing-
// sequence search based on conservative 3-valued simulation (the class of
// synchronizing sequences that Section II notes is preserved by retiming).
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/bitsim"
	"repro/internal/logic"
	"repro/internal/network"
)

// Simulator evaluates one network. It caches the topological order.
type Simulator struct {
	N     *network.Network
	order []*network.Node
	state []network.Value // current latch values, indexed like N.Latches
}

// New creates a simulator positioned at the network's initial state.
func New(n *network.Network) (*Simulator, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{N: n, order: order}
	s.Reset()
	return s, nil
}

// Reset returns the simulator to the declared initial state.
func (s *Simulator) Reset() {
	s.state = make([]network.Value, len(s.N.Latches))
	for i, l := range s.N.Latches {
		s.state[i] = l.Init
	}
}

// State returns a copy of the current latch values.
func (s *Simulator) State() []network.Value {
	out := make([]network.Value, len(s.state))
	copy(out, s.state)
	return out
}

// SetState overrides the current latch values.
func (s *Simulator) SetState(v []network.Value) {
	if len(v) != len(s.state) {
		panic("sim: state length mismatch")
	}
	copy(s.state, v)
}

// evalCube3 evaluates a cube under ternary values.
func evalCube3(c logic.Cube, val func(v int) network.Value) network.Value {
	res := network.V1
	for v := 0; v < c.N; v++ {
		switch c.Lit(v) {
		case logic.LitNeg:
			switch val(v) {
			case network.V1:
				return network.V0
			case network.VX:
				res = network.VX
			}
		case logic.LitPos:
			switch val(v) {
			case network.V0:
				return network.V0
			case network.VX:
				res = network.VX
			}
		case logic.LitNone:
			return network.V0
		}
	}
	return res
}

// evalCover3 evaluates a SOP cover under ternary values with the standard
// conservative (Kleene) semantics.
func evalCover3(f *logic.Cover, val func(v int) network.Value) network.Value {
	res := network.V0
	for _, c := range f.Cubes {
		switch evalCube3(c, val) {
		case network.V1:
			return network.V1
		case network.VX:
			res = network.VX
		}
	}
	return res
}

// Eval3 computes all node values for the given PI assignment and the current
// latch state, using 3-valued semantics. It returns the node-value map.
func (s *Simulator) Eval3(pi map[*network.Node]network.Value) map[*network.Node]network.Value {
	val := make(map[*network.Node]network.Value, len(s.order)+len(s.N.PIs)+len(s.N.Latches))
	for _, p := range s.N.PIs {
		v, ok := pi[p]
		if !ok {
			v = network.VX
		}
		val[p] = v
	}
	for i, l := range s.N.Latches {
		val[l.Output] = s.state[i]
	}
	for _, node := range s.order {
		f := node.Func
		fanins := node.Fanins
		val[node] = evalCover3(f, func(v int) network.Value { return val[fanins[v]] })
	}
	return val
}

// Step3 applies one clock cycle with the given PI values, returning the PO
// values observed during the cycle and advancing the latch state.
func (s *Simulator) Step3(pi map[*network.Node]network.Value) map[string]network.Value {
	val := s.Eval3(pi)
	out := make(map[string]network.Value, len(s.N.POs))
	for _, p := range s.N.POs {
		out[p.Name] = val[p.Driver]
	}
	next := make([]network.Value, len(s.N.Latches))
	for i, l := range s.N.Latches {
		next[i] = val[l.Driver]
	}
	s.state = next
	return out
}

// StepBits applies one clock cycle with two-valued PI bits in PI declaration
// order, returning PO bits in PO declaration order.
func (s *Simulator) StepBits(piBits []bool) []bool {
	if len(piBits) != len(s.N.PIs) {
		panic(fmt.Sprintf("sim: %d PI bits for %d PIs", len(piBits), len(s.N.PIs)))
	}
	pi := make(map[*network.Node]network.Value, len(piBits))
	for i, p := range s.N.PIs {
		if piBits[i] {
			pi[p] = network.V1
		} else {
			pi[p] = network.V0
		}
	}
	out := s.Step3(pi)
	bits := make([]bool, len(s.N.POs))
	for i, p := range s.N.POs {
		v := out[p.Name]
		if v == network.VX {
			panic("sim: X reached a PO under two-valued simulation")
		}
		bits[i] = v == network.V1
	}
	return bits
}

// AllDefined reports whether no latch currently holds X.
func (s *Simulator) AllDefined() bool {
	for _, v := range s.state {
		if v == network.VX {
			return false
		}
	}
	return true
}

// RandomEquivalent drives both networks with the same random input vectors
// for `cycles` cycles after a warm-up prefix of `delay` cycles (the paper's
// delayed replacement: machines need only agree after k power-up cycles).
// POs are matched by name. Returns nil if no mismatch was observed.
//
// The check runs on the bit-parallel engine (internal/bitsim) with 64
// independent vector streams: stream 0 replays this package's scalar
// sequence exactly (same RNG draws, same first-divergence error message,
// same X-at-PO panic), and the 63 extra streams only add coverage. Use
// RandomEquivalentScalar for the one-stream reference path.
func RandomEquivalent(a, b *network.Network, delay, cycles int, seed int64) error {
	return bitsim.RandomEquivalent(a, b, delay, cycles, seed, bitsim.Options{})
}

// RandomEquivalentScalar is the scalar (one vector per pass) reference
// implementation of RandomEquivalent. It is kept as the oracle the bitsim
// property suite pins against; callers should prefer RandomEquivalent.
func RandomEquivalentScalar(a, b *network.Network, delay, cycles int, seed int64) error {
	if len(a.PIs) != len(b.PIs) {
		return fmt.Errorf("sim: PI count differs: %d vs %d", len(a.PIs), len(b.PIs))
	}
	sa, err := New(a)
	if err != nil {
		return err
	}
	sb, err := New(b)
	if err != nil {
		return err
	}
	// Match POs by name.
	type pair struct{ ia, ib int }
	var pairs []pair
	for ia, pa := range a.POs {
		found := false
		for ib, pb := range b.POs {
			if pa.Name == pb.Name {
				pairs = append(pairs, pair{ia, ib})
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sim: PO %q missing in %s", pa.Name, b.Name)
		}
	}
	r := rand.New(rand.NewSource(seed))
	bits := make([]bool, len(a.PIs))
	for c := 0; c < delay+cycles; c++ {
		for i := range bits {
			bits[i] = r.Intn(2) == 1
		}
		oa := sa.StepBits(bits)
		ob := sb.StepBits(bits)
		if c < delay {
			continue
		}
		for _, p := range pairs {
			if oa[p.ia] != ob[p.ib] {
				return fmt.Errorf("sim: PO %q differs at cycle %d (after %d-cycle prefix)",
					a.POs[p.ia].Name, c, delay)
			}
		}
	}
	return nil
}

// SynchronizingSequence searches for an input sequence that drives the
// network from the all-X state to a fully defined state under conservative
// 3-valued simulation (a structural synchronizing sequence). It tries
// random sequences up to maxLen; returns the sequence (one []bool per
// cycle) or false.
//
// The search runs on the bit-parallel engine: all `tries` candidate
// sequences advance together, 64 per word pass. The candidate streams
// differ from the scalar path's RNG, so the returned sequence may differ
// from SynchronizingSequenceScalar's — both are valid certificates (any
// returned sequence synchronizes under 3-valued simulation), and the
// result is deterministic for a given (maxLen, tries, seed).
func SynchronizingSequence(n *network.Network, maxLen, tries int, seed int64) ([][]bool, bool) {
	if tries <= 0 {
		return nil, false
	}
	return bitsim.SynchronizingSequence(n, maxLen, seed, bitsim.Options{Streams: tries})
}

// SynchronizingSequenceScalar is the scalar reference implementation of
// SynchronizingSequence, kept as the oracle for the bitsim property suite.
func SynchronizingSequenceScalar(n *network.Network, maxLen, tries int, seed int64) ([][]bool, bool) {
	s, err := New(n)
	if err != nil {
		return nil, false
	}
	r := rand.New(rand.NewSource(seed))
	for t := 0; t < tries; t++ {
		// Start from all-X.
		x := make([]network.Value, len(n.Latches))
		for i := range x {
			x[i] = network.VX
		}
		s.SetState(x)
		var seq [][]bool
		for c := 0; c < maxLen; c++ {
			bits := make([]bool, len(n.PIs))
			pi := make(map[*network.Node]network.Value, len(bits))
			for i, p := range n.PIs {
				bits[i] = r.Intn(2) == 1
				if bits[i] {
					pi[p] = network.V1
				} else {
					pi[p] = network.V0
				}
			}
			seq = append(seq, bits)
			s.Step3(pi)
			if s.AllDefined() {
				return seq, true
			}
		}
	}
	return nil, false
}
