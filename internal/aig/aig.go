// Package aig implements an And-Inverter Graph: the scale substrate of the
// resynthesis pipeline. Where network.Network stores a sum-of-products
// cover per node — ideal for the paper's DCret simplification but capped
// by two-level minimization cost around the s5378 row — an AIG stores only
// two-input AND nodes with complemented edges, packed in a flat slice.
// Structural hashing (strash) makes node creation O(1) with free
// common-subexpression sharing, and the unit-delay level of every node is
// exact by construction, which is precisely the depth model the paper's
// critical-path machinery wants.
//
// The strash table is built on internal/ohash, the same open-addressed
// power-of-two probe core as the BDD unique table (internal/bdd), so the
// two engines cannot drift. Construction applies the one- and two-level
// rewriting rules (constant folding, idempotence, complement, containment,
// contradiction, subsumption) before hashing, so the graph never stores a
// node those rules can resolve to an existing literal.
//
// Sequential boundary: primary inputs and latch outputs are combinational
// input (CI) nodes; primary outputs and latch next-state functions are
// combinational output literals. Converters to and from network.Network
// live in convert.go, depth-oriented restructuring in balance.go, and the
// k-feasible-cut LUT mapper in cuts.go.
package aig

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/ohash"
)

// Lit is an edge reference: a node index shifted left once, with the low
// bit carrying complementation. The constant node is index 0, so False is
// the uncomplemented and True the complemented constant edge.
type Lit uint32

const (
	// False is the constant-0 literal.
	False Lit = 0
	// True is the constant-1 literal.
	True Lit = 1
)

// MkLit builds a literal from a node index and a complement flag.
func MkLit(node int32, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the literal's node index.
func (l Lit) Node() int32 { return int32(l >> 1) }

// Compl reports whether the edge is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

func (l Lit) String() string {
	if l.Compl() {
		return fmt.Sprintf("!%d", l.Node())
	}
	return fmt.Sprintf("%d", l.Node())
}

// ciMark is the fanin-0 sentinel of combinational input nodes (PIs and
// latch outputs); constMark marks the constant node 0. Neither is a valid
// literal inside a well-formed graph, so kinds need no separate array.
const (
	constMark = ^Lit(0)
	ciMark    = ^Lit(0) - 1
)

// node is one packed AIG vertex: two fanin literals for AND nodes, or a
// kind sentinel in f0 for the constant and CI nodes.
type node struct {
	f0, f1 Lit
}

// PO is a named combinational output.
type PO struct {
	Name string
	Lit  Lit
}

// Latch is an edge-triggered register: Out is its CI node presenting the
// state, Next the next-state literal.
type Latch struct {
	Name string
	Next Lit
	Out  int32 // CI node index
	Init network.Value
}

// Graph is a structurally hashed And-Inverter Graph.
type Graph struct {
	Name    string
	nodes   []node
	levels  []int32 // exact unit-delay depth per node (CIs and const: 0)
	pis     []int32
	piNames []string
	pos     []PO
	latches []Latch

	strash     *ohash.Table
	strashHits int64
	nAnds      int

	// fanoutMemo caches FanoutCounts. Derived state like this must be
	// dropped by every structural mutation — Sweep renumbers nodes, And
	// appends, SetLatchNext/AddPO change output references — or a later
	// reader silently sees counts for a graph that no longer exists.
	// invalidateDerived is the single choke point.
	fanoutMemo []int32
}

// invalidateDerived drops memoized derived state (fanout counts). Every
// mutation of nodes, outputs, or latch wiring funnels through here.
func (g *Graph) invalidateDerived() {
	g.fanoutMemo = nil
}

// FanoutCounts returns, per node, how many times it is referenced: once
// per AND fanin plus once per combinational output (PO or latch next)
// pointing at it. The slice is memoized until the next structural
// mutation; callers must not mutate it.
func (g *Graph) FanoutCounts() []int32 {
	if g.fanoutMemo != nil {
		return g.fanoutMemo
	}
	refs := make([]int32, len(g.nodes))
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if g.IsAnd(id) {
			n := &g.nodes[id]
			refs[n.f0.Node()]++
			refs[n.f1.Node()]++
		}
	}
	for _, po := range g.pos {
		refs[po.Lit.Node()]++
	}
	for _, la := range g.latches {
		refs[la.Next.Node()]++
	}
	g.fanoutMemo = refs
	return refs
}

// New creates an empty graph holding only the constant node.
func New(name string) *Graph {
	g := &Graph{Name: name}
	g.nodes = append(g.nodes, node{f0: constMark})
	g.levels = append(g.levels, 0)
	g.strash = ohash.NewTable(0, g.hashNode)
	return g
}

// hashNode rehashes a stored AND node for the strash table's growth path.
func (g *Graph) hashNode(ref int32) uint32 {
	n := &g.nodes[ref]
	return strashHash(n.f0, n.f1)
}

// strashHash is the structural key hash, via the shared ohash mix.
func strashHash(f0, f1 Lit) uint32 {
	return ohash.Mix3(uint32(f0), uint32(f1), 0x51ed270b)
}

// NumNodes returns the total node count (constant + CIs + ANDs).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumAnds returns the AND node count — the standard AIG size metric.
func (g *Graph) NumAnds() int { return g.nAnds }

// NumPIs returns the primary input count.
func (g *Graph) NumPIs() int { return len(g.pis) }

// PIs returns the PI node indices in creation order. Do not mutate.
func (g *Graph) PIs() []int32 { return g.pis }

// PIName returns the i-th primary input's name.
func (g *Graph) PIName(i int) string { return g.piNames[i] }

// POs returns the primary outputs in creation order. Do not mutate.
func (g *Graph) POs() []PO { return g.pos }

// Latches returns the registers in creation order. Do not mutate the
// slice; use SetLatchNext to close feedback.
func (g *Graph) Latches() []Latch { return g.latches }

// StrashHits counts constructor calls answered by the strash table or the
// rewrite rules instead of a fresh node — the sharing the SOP substrate
// never sees.
func (g *Graph) StrashHits() int64 { return g.strashHits }

// IsCI reports whether the node is a combinational input (PI or latch out).
func (g *Graph) IsCI(id int32) bool { return g.nodes[id].f0 == ciMark }

// IsAnd reports whether the node is an AND vertex.
func (g *Graph) IsAnd(id int32) bool {
	f0 := g.nodes[id].f0
	return f0 != ciMark && f0 != constMark
}

// Fanins returns the two fanin literals of an AND node.
func (g *Graph) Fanins(id int32) (Lit, Lit) {
	if !g.IsAnd(id) {
		panic(fmt.Sprintf("aig: Fanins of non-AND node %d", id))
	}
	n := &g.nodes[id]
	return n.f0, n.f1
}

// Level returns the exact unit-delay depth of a node (ANDs: 1 + max of
// fanin levels; CIs and the constant: 0).
func (g *Graph) Level(id int32) int32 { return g.levels[id] }

// AddPI appends a primary input and returns its literal.
func (g *Graph) AddPI(name string) Lit {
	id := g.newCI()
	g.pis = append(g.pis, id)
	g.piNames = append(g.piNames, name)
	return MkLit(id, false)
}

// AddLatch appends a register with the given initial value and returns the
// literal of its output CI node. The next-state function is closed later
// with SetLatchNext (feedback cones reference latch outputs created before
// their drivers exist).
func (g *Graph) AddLatch(name string, init network.Value) Lit {
	id := g.newCI()
	g.latches = append(g.latches, Latch{Name: name, Next: False, Out: id, Init: init})
	return MkLit(id, false)
}

// SetLatchNext installs the next-state literal of latch i.
func (g *Graph) SetLatchNext(i int, next Lit) {
	g.latches[i].Next = next
	g.invalidateDerived()
}

// AddPO declares a named combinational output.
func (g *Graph) AddPO(name string, l Lit) {
	g.pos = append(g.pos, PO{Name: name, Lit: l})
	g.invalidateDerived()
}

func (g *Graph) newCI() int32 {
	id := int32(len(g.nodes))
	g.nodes = append(g.nodes, node{f0: ciMark})
	g.levels = append(g.levels, 0)
	g.invalidateDerived()
	return id
}

// And returns a literal for the conjunction of a and b, resolving the one-
// and two-level rewrite rules first and consulting the strash table before
// creating a node. Amortized O(1).
func (g *Graph) And(a, b Lit) Lit {
	// One-level rules: constants, idempotence, complement.
	switch {
	case a == False || b == False || a == b.Not():
		g.strashHits++
		return False
	case a == True:
		g.strashHits++
		return b
	case b == True || a == b:
		g.strashHits++
		return a
	}
	// Canonical fanin order: the strash key is the ordered pair.
	if a > b {
		a, b = b, a
	}
	if r, ok := g.twoLevel(a, b); ok {
		g.strashHits++
		return r
	}
	h := strashHash(a, b)
	if id, ok := g.strash.Lookup(h, func(ref int32) bool {
		n := &g.nodes[ref]
		return n.f0 == a && n.f1 == b
	}); ok {
		g.strashHits++
		return MkLit(id, false)
	}
	id := int32(len(g.nodes))
	g.nodes = append(g.nodes, node{f0: a, f1: b})
	lv := g.levels[a.Node()]
	if l1 := g.levels[b.Node()]; l1 > lv {
		lv = l1
	}
	g.levels = append(g.levels, lv+1)
	g.strash.Insert(h, id)
	g.nAnds++
	g.invalidateDerived()
	return MkLit(id, false)
}

// FindAnd is the read-only sibling of And: it resolves the conjunction
// through the same rewrite rules and strash lookup but never creates a
// node and never mutates the graph (no strashHits accounting, no derived-
// state invalidation). The rewrite engine's parallel decision phase uses
// it to price candidate structures against logic the graph already has;
// read-only is what makes concurrent calls safe.
func (g *Graph) FindAnd(a, b Lit) (Lit, bool) {
	switch {
	case a == False || b == False || a == b.Not():
		return False, true
	case a == True:
		return b, true
	case b == True || a == b:
		return a, true
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := g.twoLevel(a, b); ok {
		return r, true
	}
	if id, ok := g.strash.Lookup(strashHash(a, b), func(ref int32) bool {
		n := &g.nodes[ref]
		return n.f0 == a && n.f1 == b
	}); ok {
		return MkLit(id, false), true
	}
	return 0, false
}

// twoLevel resolves And(a, b) against the fanins of a's and b's AND nodes:
// containment x·(x·y) = x·y, contradiction x·(x̄·y) = 0, and subsumption
// x̄·¬(x·y) = x̄. Only rules that return an existing literal are applied —
// the constructor never builds a node to simplify one.
func (g *Graph) twoLevel(a, b Lit) (Lit, bool) {
	if r, ok := g.oneSided(a, b); ok {
		return r, ok
	}
	return g.oneSided(b, a)
}

// oneSided checks the rules keyed on other's node being an AND with fanins
// x, y against the literal l.
func (g *Graph) oneSided(l, other Lit) (Lit, bool) {
	id := other.Node()
	if !g.IsAnd(id) {
		return 0, false
	}
	x, y := g.nodes[id].f0, g.nodes[id].f1
	if !other.Compl() {
		if l == x || l == y {
			return other, true // containment: x·(x·y) = x·y
		}
		if l == x.Not() || l == y.Not() {
			return False, true // contradiction: x̄·(x·y) = 0
		}
		return 0, false
	}
	if l == x.Not() || l == y.Not() {
		return l, true // subsumption: x̄·¬(x·y) = x̄·(x̄+ȳ) = x̄
	}
	return 0, false
}

// Or returns a literal for the disjunction, via De Morgan.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal for the exclusive or (two AND levels).
func (g *Graph) Xor(a, b Lit) Lit {
	return g.And(g.And(a, b.Not()).Not(), g.And(a.Not(), b).Not()).Not()
}

// Mux returns s ? t : e.
func (g *Graph) Mux(s, t, e Lit) Lit {
	return g.And(g.And(s, t).Not(), g.And(s.Not(), e).Not()).Not()
}

// Depth returns the maximum unit-delay level over all combinational
// outputs (POs and latch next-state literals) — the exact critical-path
// length of the graph.
func (g *Graph) Depth() int32 {
	var d int32
	for _, po := range g.pos {
		if l := g.levels[po.Lit.Node()]; l > d {
			d = l
		}
	}
	for _, la := range g.latches {
		if l := g.levels[la.Next.Node()]; l > d {
			d = l
		}
	}
	return d
}

// outputs returns every combinational output literal (POs then latch next
// states), the roots for traversals.
func (g *Graph) outputs() []Lit {
	out := make([]Lit, 0, len(g.pos)+len(g.latches))
	for _, po := range g.pos {
		out = append(out, po.Lit)
	}
	for _, la := range g.latches {
		out = append(out, la.Next)
	}
	return out
}

// reqInf marks a node no output cone requires (dead logic) in the
// required-time analysis.
const reqInf = int32(1) << 30

// requiredTimes runs the exact unit-delay required-time analysis: per
// node, the latest level at which it may produce its value without
// stretching the graph's critical path. Unreachable nodes hold reqInf.
// A node is critical iff required == level (zero slack).
func (g *Graph) requiredTimes() []int32 {
	depth := g.Depth()
	req := make([]int32, len(g.nodes))
	for i := range req {
		req[i] = reqInf
	}
	for _, o := range g.outputs() {
		// Every output is required at the graph depth: an output whose cone
		// is shallower has positive slack throughout.
		if req[o.Node()] > depth {
			req[o.Node()] = depth
		}
	}
	// Nodes are appended in topological order (fanins precede the node), so
	// one descending sweep propagates required times exactly.
	for id := int32(len(g.nodes)) - 1; id > 0; id-- {
		if !g.IsAnd(id) || req[id] == reqInf {
			continue
		}
		r := req[id] - 1
		if f := g.nodes[id].f0.Node(); req[f] > r {
			req[f] = r
		}
		if f := g.nodes[id].f1.Node(); req[f] > r {
			req[f] = r
		}
	}
	return req
}

// CriticalNodes runs the exact unit-delay arrival/required analysis and
// returns the AND nodes with zero slack — the nodes on some maximum-depth
// combinational path — in ascending id order. This is the AIG counterpart
// of the SOP path's timing.CriticalPath extraction.
func (g *Graph) CriticalNodes() []int32 {
	req := g.requiredTimes()
	var crit []int32
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if g.IsAnd(id) && req[id] != reqInf && req[id] == g.levels[id] {
			crit = append(crit, id)
		}
	}
	return crit
}

// Sweep removes AND nodes unreachable from any combinational output,
// compacting the node array and rebuilding the strash table. CI nodes are
// interface and always kept. Existing Lit values are invalidated; the
// graph's own PO/latch references are rewritten. Returns the number of
// nodes removed.
func (g *Graph) Sweep() int {
	live := make([]bool, len(g.nodes))
	live[0] = true
	var mark func(id int32)
	mark = func(id int32) {
		if live[id] {
			return
		}
		live[id] = true
		if g.IsAnd(id) {
			mark(g.nodes[id].f0.Node())
			mark(g.nodes[id].f1.Node())
		}
	}
	for _, id := range g.pis {
		live[id] = true
	}
	for _, la := range g.latches {
		live[la.Out] = true
	}
	for _, o := range g.outputs() {
		mark(o.Node())
	}
	remap := make([]int32, len(g.nodes))
	kept := 0
	removed := 0
	for id := range g.nodes {
		if live[id] {
			remap[id] = int32(kept)
			kept++
		} else {
			remap[id] = -1
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	relit := func(l Lit) Lit { return MkLit(remap[l.Node()], l.Compl()) }
	nodes := make([]node, 0, kept)
	levels := make([]int32, 0, kept)
	nAnds := 0
	for id, n := range g.nodes {
		if !live[id] {
			continue
		}
		if g.IsAnd(int32(id)) {
			n = node{f0: relit(n.f0), f1: relit(n.f1)}
			nAnds++
		}
		nodes = append(nodes, n)
		levels = append(levels, g.levels[id])
	}
	g.nodes = nodes
	g.levels = levels
	g.nAnds = nAnds
	for i := range g.pis {
		g.pis[i] = remap[g.pis[i]]
	}
	for i := range g.latches {
		g.latches[i].Out = remap[g.latches[i].Out]
		g.latches[i].Next = relit(g.latches[i].Next)
	}
	for i := range g.pos {
		g.pos[i].Lit = relit(g.pos[i].Lit)
	}
	g.strash.Reset()
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if g.IsAnd(id) {
			n := &g.nodes[id]
			g.strash.Insert(strashHash(n.f0, n.f1), id)
		}
	}
	g.invalidateDerived()
	return removed
}

// Check validates the structural invariants: fanins precede their node
// (topological storage), levels are exact, latch next literals are set,
// and the strash table holds every AND exactly once.
func (g *Graph) Check() error {
	if len(g.nodes) == 0 || g.nodes[0].f0 != constMark {
		return fmt.Errorf("aig: node 0 is not the constant")
	}
	ands := 0
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if !g.IsAnd(id) {
			if g.levels[id] != 0 {
				return fmt.Errorf("aig: CI node %d has level %d", id, g.levels[id])
			}
			continue
		}
		ands++
		n := &g.nodes[id]
		if n.f0.Node() >= id || n.f1.Node() >= id {
			return fmt.Errorf("aig: node %d references a later node", id)
		}
		if n.f0 > n.f1 {
			return fmt.Errorf("aig: node %d fanins not in canonical order", id)
		}
		want := g.levels[n.f0.Node()]
		if l := g.levels[n.f1.Node()]; l > want {
			want = l
		}
		if g.levels[id] != want+1 {
			return fmt.Errorf("aig: node %d level %d, want %d", id, g.levels[id], want+1)
		}
		if _, ok := g.strash.Lookup(strashHash(n.f0, n.f1), func(ref int32) bool {
			return ref == id
		}); !ok {
			return fmt.Errorf("aig: node %d missing from the strash table", id)
		}
	}
	if ands != g.nAnds {
		return fmt.Errorf("aig: nAnds %d, counted %d", g.nAnds, ands)
	}
	for i, la := range g.latches {
		if la.Next.Node() >= int32(len(g.nodes)) {
			return fmt.Errorf("aig: latch %d next out of range", i)
		}
	}
	for i, po := range g.pos {
		if po.Lit.Node() >= int32(len(g.nodes)) {
			return fmt.Errorf("aig: PO %d literal out of range", i)
		}
	}
	return nil
}
