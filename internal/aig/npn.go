package aig

// This file builds the NPN-canonical rewriting library: every 4-input
// Boolean function (a uint16 truth table) is mapped to the canonical
// representative of its NPN class — the minimum table reachable by
// permuting inputs, negating inputs, and negating the output — and each
// class within reach carries a precomputed optimal AIG structure found by
// exhaustive bottom-up enumeration. The rewrite pass (rewrite.go) looks a
// cut's truth table up here, instantiates the stored structure over the
// cut leaves, and keeps it when MFFC accounting shows a net win.
//
// Everything is computed once at first use (buildNPN below, ~tens of
// milliseconds) and is immutable afterwards, so the parallel decision
// phase reads it without synchronization. The construction is
// deterministic: transforms are enumerated in a fixed nested order and
// ties always resolve to the first discovery.

import "sync"

// varTT4 is the truth table of input i of a 4-variable function.
var varTT4 = [4]uint16{0xAAAA, 0xCCCC, 0xF0F0, 0xFF00}

// npnTransform is one member of the NPN group for 4 inputs: an input
// permutation (index into npnPerms), an input negation mask, and an
// output negation. Applied to f it yields g with
//
//	g(y0..y3) = f(x0..x3) ⊕ out, where x_i = y_{perm[i]} ⊕ neg_i.
type npnTransform struct {
	perm uint8 // index into npnPerms
	neg  uint8 // bit i: input i of f is negated
	out  bool  // output negated
}

// npnPerms holds the 24 permutations of 4 elements in lexicographic
// order; npnInvPerm[i] is the index of the inverse of npnPerms[i].
var (
	npnPerms   [24][4]uint8
	npnInvPerm [24]uint8
)

// ttApply computes the transformed table g = T·f as defined on
// npnTransform, by direct minterm evaluation (16 iterations — this is only
// used at init and in tests, never in the rewrite hot loop).
func ttApply(tt uint16, t npnTransform) uint16 {
	p := &npnPerms[t.perm]
	var r uint16
	for m := 0; m < 16; m++ {
		src := 0
		for i := 0; i < 4; i++ {
			bit := int(m>>p[i]&1) ^ int(t.neg>>i&1)
			src |= bit << i
		}
		b := tt >> src & 1
		if t.out {
			b ^= 1
		}
		r |= b << m
	}
	return r
}

// invertTransform returns S with f = S·(T·f) for all f: if T = (π, ν, o)
// then S = (π⁻¹, ν∘π⁻¹, o) — the permutation inverts, the negation mask
// follows the inverted wires, the output flag is its own inverse.
func invertTransform(t npnTransform) npnTransform {
	inv := npnInvPerm[t.perm]
	ip := &npnPerms[inv]
	var neg uint8
	for j := 0; j < 4; j++ {
		neg |= ((t.neg >> ip[j]) & 1) << j
	}
	return npnTransform{perm: inv, neg: neg, out: t.out}
}

// npnEntry is one row of the canonicalization table: the class
// representative of tt and the transform S with canon = S·tt.
type npnEntry struct {
	canon uint16
	xf    npnTransform
}

// libGate is one AND of a library structure. Fanins are tiny literals:
// value i<<1|c where i in 0..3 names canonical input i and i ≥ 4 names
// gate i-4 of the same structure; the low bit complements.
type libGate struct {
	a, b uint8
}

// libImpl is the optimal AIG structure of one NPN class: gates in
// topological order plus the output literal (same tiny-literal encoding).
type libImpl struct {
	gates []libGate
	out   uint8
}

// npnLib is the complete precomputed rewriting library.
type npnLib struct {
	canon   []npnEntry          // len 65536
	classes []uint16            // canonical representatives, ascending
	cost    []int8              // len 65536: exact tree-optimal AND count, -1 beyond bound
	gates   map[uint16]gateRec  // normalized table -> first-discovered AND decomposition
	impls   map[uint16]*libImpl // canonical rep -> optimal structure
}

// libMaxNodes bounds the bottom-up structure enumeration: every table
// with a tree cost within the bound gets an exactly optimal structure.
// Deeper classes exist (4-input parity alone needs 9 ANDs as a tree, a
// handful of classes need more than 12) but enumeration cost grows
// sharply with the bound, so classes beyond it are completed by Shannon
// decomposition in buildImpls — correct structures with an upper-bound
// cost — keeping init around 70ms.
const libMaxNodes = 9

var (
	theLib  *npnLib
	libOnce sync.Once
)

// getNPNLib returns the shared immutable library, building it on first use.
func getNPNLib() *npnLib {
	libOnce.Do(func() { theLib = buildNPN() })
	return theLib
}

// InitLibraries forces the one-time construction of the NPN rewrite
// library (tens of milliseconds). Rewrite calls it implicitly; benchmark
// harnesses call it up front so the init cost does not land inside the
// first measured wall.
func InitLibraries() { getNPNLib() }

func buildNPN() *npnLib {
	buildPerms()
	lib := &npnLib{
		canon: make([]npnEntry, 1<<16),
		cost:  make([]int8, 1<<16),
		impls: make(map[uint16]*libImpl),
	}
	lib.buildCanon()
	lib.buildCosts()
	lib.buildImpls()
	return lib
}

// buildPerms fills npnPerms with the 24 permutations in lexicographic
// order (Heap's algorithm is not order-stable; plain recursive generation
// is) and resolves each permutation's inverse index.
func buildPerms() {
	var gen func(prefix []uint8, rest []uint8)
	idx := 0
	var cur [4]uint8
	gen = func(prefix, rest []uint8) {
		if len(rest) == 0 {
			copy(cur[:], prefix)
			npnPerms[idx] = cur
			idx++
			return
		}
		for i := range rest {
			next := make([]uint8, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			gen(append(prefix, rest[i]), next)
		}
	}
	gen(nil, []uint8{0, 1, 2, 3})
	for i := range npnPerms {
		var inv [4]uint8
		for j, v := range npnPerms[i] {
			inv[v] = uint8(j)
		}
		for k := range npnPerms {
			if npnPerms[k] == inv {
				npnInvPerm[i] = uint8(k)
				break
			}
		}
	}
}

// buildCanon fills the canonicalization table by orbit expansion: scanning
// tables in ascending order, the first table not yet claimed by an earlier
// orbit is its class's minimum (every smaller member would have claimed it
// already), so it becomes the representative and one sweep over the 768
// transforms claims the whole orbit. Total work is #classes × 768 rather
// than 65536 × 768.
func (lib *npnLib) buildCanon() {
	seen := make([]bool, 1<<16)
	for tt := 0; tt < 1<<16; tt++ {
		if seen[tt] {
			continue
		}
		rep := uint16(tt)
		lib.classes = append(lib.classes, rep)
		for o := 0; o < 2; o++ {
			for neg := 0; neg < 16; neg++ {
				for p := 0; p < 24; p++ {
					t := npnTransform{perm: uint8(p), neg: uint8(neg), out: o == 1}
					v := ttApply(rep, t)
					if seen[v] {
						continue
					}
					seen[v] = true
					// canon = S·v must hold; S is the inverse of the expansion
					// transform that produced v from the representative.
					lib.canon[v] = npnEntry{canon: rep, xf: invertTransform(t)}
				}
			}
		}
	}
}

// gateRec records how a table was first reached during enumeration: as the
// AND of two (possibly complemented) earlier tables. Only the normalized
// form (low minterm clear) of each pair {h, ^h} stores a record; raw is
// the actual AND output, which may be the complement of the key.
type gateRec struct {
	fa, fb, raw uint16
}

// buildCosts runs the bottom-up exhaustive enumeration: lists[k] holds
// every table first reachable with exactly k AND nodes as a fanin-tree
// (free input/output inverters), built by combining a j-node and a
// (k-1-j)-node table under all four fanin phase combinations. Because a
// table is recorded the first time it appears and levels are processed in
// ascending k, the recorded cost is the exact tree-optimal AND count.
func (lib *npnLib) buildCosts() {
	for i := range lib.cost {
		lib.cost[i] = -1
	}
	lib.gates = make(map[uint16]gateRec)
	setCost := func(tt uint16, k int8) {
		lib.cost[tt] = k
		lib.cost[^tt] = k
	}
	setCost(0x0000, 0)
	for _, v := range varTT4 {
		setCost(v, 0)
	}
	lists := make([][]uint16, libMaxNodes+1)
	lists[0] = varTT4[:]
	for k := 1; k <= libMaxNodes; k++ {
		for i := 0; i <= (k-1)/2; i++ {
			j := k - 1 - i
			for ai, f := range lists[i] {
				bl := lists[j]
				if i == j {
					// Unordered pairs: AND is commutative.
					bl = bl[ai:]
				}
				for _, g := range bl {
					for ph := 0; ph < 4; ph++ {
						fa, fb := f, g
						if ph&1 != 0 {
							fa = ^fa
						}
						if ph&2 != 0 {
							fb = ^fb
						}
						h := fa & fb
						if lib.cost[h] >= 0 {
							continue
						}
						setCost(h, int8(k))
						key := h
						if key&1 != 0 {
							key = ^key
						}
						lib.gates[key] = gateRec{fa: fa, fb: fb, raw: h}
						lists[k] = append(lists[k], h)
					}
				}
			}
		}
	}
}

// cofTT4 cofactors a 4-variable table against variable i, replicating the
// surviving half so the result is vacuous in i.
func cofTT4(tt uint16, i int, pos bool) uint16 {
	shift := uint(1) << i
	if pos {
		t := tt & varTT4[i]
		return t | t>>shift
	}
	t := tt &^ varTT4[i]
	return t | t<<shift
}

// buildImpls materializes a structure for every canonical representative.
// Tables within the enumeration bound unroll their recorded gate chains,
// memoizing shared subfunctions so the structure is a DAG no larger than
// the tree cost. Classes the bound missed are completed by Shannon
// decomposition — f = s·f1 + s̄·f0 as three ANDs over the cheapest split
// variable — whose cofactors are 3-variable functions and therefore
// always inside the bound. Shannon structures are correct but only
// upper-bound optimal; their class cost is set to the realized gate
// count, which necessarily exceeds the enumeration bound.
func (lib *npnLib) buildImpls() {
	for _, rep := range lib.classes {
		if rep == 0x0000 {
			// The constant class: the rewriter substitutes True/False directly.
			continue
		}
		impl := &libImpl{}
		// memo holds, per normalized table (low minterm clear), the tiny
		// literal of the emitted gate computing that table.
		memo := make(map[uint16]uint8)
		emit := func(a, b uint8) uint8 {
			l := uint8((4 + len(impl.gates)) << 1)
			impl.gates = append(impl.gates, libGate{a: a, b: b})
			return l
		}
		var build func(t uint16) uint8
		build = func(t uint16) uint8 {
			for i, v := range varTT4 {
				if t == v {
					return uint8(i << 1)
				}
				if t == ^v {
					return uint8(i<<1 | 1)
				}
			}
			key := t
			if key&1 != 0 {
				key = ^key
			}
			if l, ok := memo[key]; ok {
				if t != key {
					l ^= 1
				}
				return l
			}
			var l uint8 // literal computing key
			if rec, ok := lib.gates[key]; ok {
				l = emit(build(rec.fa), build(rec.fb))
				if rec.raw != key {
					l ^= 1
				}
			} else {
				// Shannon completion: pick the split whose cofactors are
				// cheapest (ties to the lowest variable — deterministic).
				best, bestCost := 0, int(127)
				for i := 0; i < 4; i++ {
					c0, c1 := lib.cost[cofTT4(key, i, false)], lib.cost[cofTT4(key, i, true)]
					if c0 < 0 || c1 < 0 {
						continue // cofactor itself beyond bound (never for 3-var)
					}
					if c := int(c0) + int(c1); c < bestCost {
						best, bestCost = i, c
					}
				}
				s := uint8(best << 1)
				l1 := build(cofTT4(key, best, true))
				l0 := build(cofTT4(key, best, false))
				g1 := emit(s, l1)    // s·f1
				g2 := emit(s^1, l0)  // s̄·f0
				l = emit(g1^1, g2^1) // ¬(s·f1) · ¬(s̄·f0) = ¬key
				l ^= 1
			}
			memo[key] = l
			if t != key {
				l ^= 1
			}
			return l
		}
		impl.out = build(rep)
		lib.impls[rep] = impl
		if lib.cost[rep] < 0 {
			c := int8(len(impl.gates))
			lib.cost[rep] = c
			lib.cost[^rep] = c
		}
	}
}

// instantiate materializes the structure over concrete graph literals:
// leaves[i] drives canonical input i (entries a minimal structure never
// reads may be anything), and the and callback builds or prices each gate.
// The output literal computes the canonical function of the class.
func (im *libImpl) instantiate(leaves *[4]Lit, and func(a, b Lit) Lit) Lit {
	var lits [4 + 16]Lit
	copy(lits[:4], leaves[:])
	resolve := func(l uint8) Lit { return lits[l>>1].NotIf(l&1 != 0) }
	for i, gate := range im.gates {
		lits[4+i] = and(resolve(gate.a), resolve(gate.b))
	}
	return resolve(im.out)
}

// cutLeafLits maps a cut's truth table onto impl inputs: given the stored
// transform S = (π, ν, o) with canon = S·f, the canonical structure's
// input k must be driven by cut leaf π⁻¹(k) negated per ν at that wire,
// and the structure output is complemented when o is set. See
// TestNPNInstantiationComputesCut for the end-to-end check pinning this
// convention.
func cutLeafLits(xf npnTransform, leafLits *[4]Lit) (mapped [4]Lit, outNeg bool) {
	ip := &npnPerms[npnInvPerm[xf.perm]]
	for k := 0; k < 4; k++ {
		src := ip[k]
		mapped[k] = leafLits[src].NotIf(xf.neg>>src&1 != 0)
	}
	return mapped, xf.out
}
