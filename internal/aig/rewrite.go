package aig

// This file is the parallel levelized rewriting engine: the DAG-aware
// optimization pass that actually shrinks the graph, where Balance only
// re-associates it. The algorithm is classic cut rewriting — enumerate
// priority cuts per node, canonicalize each cut function into the NPN
// library (npn.go), and replace the cut's MFFC with the library's optimal
// structure when the accounting shows a net node gain — run wave-parallel:
//
// Levelization. Nodes are grouped into topological waves by their exact
// unit-delay level (maintained eagerly by And, so levelization is one
// bucket pass). A node's cuts derive only from its fanins' cuts, and every
// fanin sits in a strictly earlier wave, so all nodes of one wave are
// independent: each wave is sharded across parexec workers, and the
// parexec.Map barrier between waves is the only synchronization.
//
// Determinism. The decision phase is read-only on the old graph; each
// node's cuts, canonical class, MFFC count, and accept/reject decision
// depend only on the node itself and results of earlier waves — never on
// which shard computed them or in what order. The apply phase is serial
// and rebuilds a fresh graph in output order. Node numbering is therefore
// byte-identical at any -workers width (see TestRewriteDeterministicAcross
// Workers).
//
// Allocation. Cut storage is one flat preallocated slab (C slots per
// node); per-worker scratch lives in arenas created once per Rewrite call
// and reused across waves with epoch-stamped invalidation, so the per-node
// hot loop does not allocate in steady state.

import (
	"context"

	"repro/internal/parexec"
)

// rewriteCutInputs is the cut width of the rewriting pass — fixed at 4 to
// match the NPN library (uint16 truth tables, 222 classes).
const rewriteCutInputs = 4

// DefaultRewriteCuts is the default priority-cut budget C per node.
const DefaultRewriteCuts = 8

// pcut is one priority cut: sorted leaf node ids, the root's function
// over them (4-var table, vacuous above n), the depth of its deepest
// leaf, and the area-flow score that ranks it.
type pcut struct {
	leaves [rewriteCutInputs]int32
	depth  int32
	aflow  float32
	tt     uint16
	n      uint8
}

// better is the priority order: area-flow, then leaf depth, then fewer
// leaves, then lexicographic leaves — a total order, so bounded insertion
// keeps an identical front at any enumeration interleaving.
func (c *pcut) better(d *pcut) bool {
	if c.aflow != d.aflow {
		return c.aflow < d.aflow
	}
	if c.depth != d.depth {
		return c.depth < d.depth
	}
	if c.n != d.n {
		return c.n < d.n
	}
	for i := 0; i < int(c.n); i++ {
		if c.leaves[i] != d.leaves[i] {
			return c.leaves[i] < d.leaves[i]
		}
	}
	return false
}

// sameLeaves reports identical leaf sets (which implies identical cut
// functions — the function is determined by the leaves).
func (c *pcut) sameLeaves(d *pcut) bool {
	if c.n != d.n {
		return false
	}
	for i := 0; i < int(c.n); i++ {
		if c.leaves[i] != d.leaves[i] {
			return false
		}
	}
	return true
}

// Decision kinds of the rewrite pass.
const (
	rwNone  = uint8(iota) // keep the node as-is
	rwConst               // root is semantically constant: substitute repl
	rwLeaf                // root collapses to a (possibly complemented) leaf
	rwImpl                // replace the cut cone with a library structure
)

// rwDecision is one node's accepted replacement, produced read-only in
// the parallel phase and consumed by the serial apply phase.
type rwDecision struct {
	leaves [rewriteCutInputs]int32
	repl   Lit   // rwConst/rwLeaf: substitute literal in old-graph ids
	gain   int32 // estimated net AND savings (≥ 0 when accepted)
	depth  int32 // estimated level of the replacement output
	tt     uint16
	n      uint8
	kind   uint8
}

// RewriteOptions tunes the pass; the zero value is the default
// configuration (GOMAXPROCS workers, C=8 cuts).
type RewriteOptions struct {
	// Workers is the parallel width; <= 0 selects GOMAXPROCS. The result
	// is byte-identical at any width.
	Workers int
	// MaxCuts is the priority-cut budget per node; <= 0 selects
	// DefaultRewriteCuts.
	MaxCuts int
}

// RewriteStats reports what one pass did.
type RewriteStats struct {
	Applied    int64 // replacements materialized in the rebuilt graph
	Gain       int64 // summed accepted MFFC-accounting gains (AND nodes)
	CutsPruned int64 // cut candidates dropped by the priority bound
	Waves      int64 // topological waves processed
}

// rwArena is one worker's private scratch. Epoch stamping makes clearing
// O(1): a slot is valid only when its stamp matches the current epoch.
type rwArena struct {
	refSnap  []int32 // local fanout copy for MFFC dereference simulation
	refStamp []int32
	member   []int32 // epoch stamp: node is in the current cut's MFFC
	leafMark []int32 // epoch stamp: node is a leaf of the current cut
	stack    []int32
	epoch    int32
	pruned   int64
}

func newArena(n int) *rwArena {
	return &rwArena{
		refSnap:  make([]int32, n),
		refStamp: make([]int32, n),
		member:   make([]int32, n),
		leafMark: make([]int32, n),
		stack:    make([]int32, 0, 64),
	}
}

// rwEngine holds the shared read-only inputs and the per-node output
// slabs of one Rewrite call.
type rwEngine struct {
	g      *Graph
	lib    *npnLib
	refs   []int32 // global fanout counts
	req    []int32 // required times (reqInf: dead)
	c      int     // cuts per node
	cuts   []pcut  // flat: node id*c .. id*c+cutLen[id]
	cutLen []uint8
	afBest []float32 // best cut area-flow per AND node (CIs: 0)
	dec    []rwDecision
	arenas []*rwArena
}

// Rewrite runs one wave-parallel rewriting pass and returns the rebuilt
// graph (the receiver is unchanged, like Balance). The result is
// deterministic at any worker width.
func (g *Graph) Rewrite(ctx context.Context, opt RewriteOptions) (*Graph, RewriteStats, error) {
	var stats RewriteStats
	workers := parexec.Workers(opt.Workers)
	c := opt.MaxCuts
	if c <= 0 {
		c = DefaultRewriteCuts
	}
	n := len(g.nodes)
	e := &rwEngine{
		g:      g,
		lib:    getNPNLib(),
		refs:   g.FanoutCounts(),
		req:    g.requiredTimes(),
		c:      c,
		cuts:   make([]pcut, n*c),
		cutLen: make([]uint8, n),
		afBest: make([]float32, n),
		dec:    make([]rwDecision, n),
		arenas: make([]*rwArena, workers),
	}
	for i := range e.arenas {
		e.arenas[i] = newArena(n)
	}

	// Levelization: bucket AND nodes by exact level. Ascending id order
	// within a wave falls out of the ascending bucket fill.
	maxLevel := int32(0)
	for id := int32(1); id < int32(n); id++ {
		if g.IsAnd(id) && g.levels[id] > maxLevel {
			maxLevel = g.levels[id]
		}
	}
	waves := make([][]int32, maxLevel+1)
	for id := int32(1); id < int32(n); id++ {
		if g.IsAnd(id) {
			waves[g.levels[id]] = append(waves[g.levels[id]], id)
		}
	}

	type shard struct{ nodes []int32 }
	for _, wave := range waves {
		if len(wave) == 0 {
			continue
		}
		stats.Waves++
		// Contiguous sharding: shard index doubles as arena index, and the
		// split depends only on the wave size and worker count — per-node
		// results never depend on which shard ran them.
		nw := workers
		if nw > len(wave) {
			nw = len(wave)
		}
		shards := make([]shard, nw)
		for i := range shards {
			lo, hi := i*len(wave)/nw, (i+1)*len(wave)/nw
			shards[i] = shard{nodes: wave[lo:hi]}
		}
		if _, err := parexec.Map(ctx, nw, shards,
			func(ctx context.Context, si int, sh shard) (struct{}, error) {
				arena := e.arenas[si]
				for _, id := range sh.nodes {
					e.processNode(id, arena)
				}
				return struct{}{}, nil
			}); err != nil {
			return nil, stats, err
		}
	}
	for _, a := range e.arenas {
		stats.CutsPruned += a.pruned
	}

	ng := e.apply(&stats)
	return ng, stats, nil
}

// processNode enumerates the node's priority cuts, records its best area
// flow, and decides the best acceptable replacement. Reads: the graph,
// cuts/afBest of strictly earlier waves, the shared library. Writes: this
// node's cut slab, afBest, decision, and the worker-private arena.
func (e *rwEngine) processNode(id int32, arena *rwArena) {
	g := e.g
	f0, f1 := g.nodes[id].f0, g.nodes[id].f1
	e.enumerateCuts(id, f0, f1, arena)
	cuts := e.cutsOf(id)
	if len(cuts) > 0 {
		e.afBest[id] = cuts[0].aflow
	}
	e.decide(id, arena)
}

func (e *rwEngine) cutsOf(id int32) []pcut {
	return e.cuts[int(id)*e.c : int(id)*e.c+int(e.cutLen[id])]
}

// leafAreaFlow is a leaf's contribution to a cut's area-flow score: the
// leaf's own best-cut flow amortized over its fanout.
func (e *rwEngine) leafAreaFlow(leaf int32) float32 {
	if !e.g.IsAnd(leaf) {
		return 0
	}
	r := e.refs[leaf]
	if r < 1 {
		r = 1
	}
	return e.afBest[leaf] / float32(r)
}

// enumerateCuts computes the bounded priority-cut set of an AND node:
// the cross product of each fanin's cuts plus its trivial cut, merged,
// deduplicated by leaf set, and kept only while inside the per-node
// budget (evictions and rejections count as pruned).
func (e *rwEngine) enumerateCuts(id int32, f0, f1 Lit, arena *rwArena) {
	g := e.g
	n0, n1 := f0.Node(), f1.Node()
	var trivial0, trivial1 pcut
	trivial0 = pcut{n: 1, tt: varTT4[0], depth: g.levels[n0]}
	trivial0.leaves[0] = n0
	trivial1 = pcut{n: 1, tt: varTT4[0], depth: g.levels[n1]}
	trivial1.leaves[0] = n1

	cuts0 := e.cutsOf(n0)
	cuts1 := e.cutsOf(n1)
	base := int(id) * e.c
	e.cutLen[id] = 0

	consider := func(c0, c1 *pcut) {
		var merged pcut
		i, j := 0, 0
		for i < int(c0.n) || j < int(c1.n) {
			var v int32
			switch {
			case j == int(c1.n) || (i < int(c0.n) && c0.leaves[i] < c1.leaves[j]):
				v = c0.leaves[i]
				i++
			case i == int(c0.n) || c1.leaves[j] < c0.leaves[i]:
				v = c1.leaves[j]
				j++
			default:
				v = c0.leaves[i]
				i++
				j++
			}
			if int(merged.n) == rewriteCutInputs {
				return // infeasible: union exceeds the cut width
			}
			merged.leaves[merged.n] = v
			merged.n++
		}
		t0 := expand4(c0.tt, &c0.leaves, c0.n, &merged.leaves, merged.n)
		if f0.Compl() {
			t0 = ^t0
		}
		t1 := expand4(c1.tt, &c1.leaves, c1.n, &merged.leaves, merged.n)
		if f1.Compl() {
			t1 = ^t1
		}
		merged.tt = t0 & t1
		merged.aflow = 1
		for k := 0; k < int(merged.n); k++ {
			l := merged.leaves[k]
			if lv := g.levels[l]; lv > merged.depth {
				merged.depth = lv
			}
			merged.aflow += e.leafAreaFlow(l)
		}
		e.insertCut(id, base, &merged, arena)
	}

	consider(&trivial0, &trivial1)
	for ci := range cuts0 {
		consider(&cuts0[ci], &trivial1)
	}
	for cj := range cuts1 {
		consider(&trivial0, &cuts1[cj])
	}
	for ci := range cuts0 {
		for cj := range cuts1 {
			consider(&cuts0[ci], &cuts1[cj])
		}
	}
}

// insertCut places a candidate into the node's rank-ordered slab,
// deduplicating by leaf set and evicting past the budget.
func (e *rwEngine) insertCut(id int32, base int, cand *pcut, arena *rwArena) {
	ln := int(e.cutLen[id])
	slab := e.cuts[base : base+e.c]
	for k := 0; k < ln; k++ {
		if slab[k].sameLeaves(cand) {
			return // identical leaves, identical function: a duplicate
		}
	}
	pos := ln
	for pos > 0 && cand.better(&slab[pos-1]) {
		pos--
	}
	if ln == e.c {
		if pos == ln {
			arena.pruned++ // worse than the whole kept front
			return
		}
		arena.pruned++ // the last cut falls off
		ln--
	}
	copy(slab[pos+1:ln+1], slab[pos:ln])
	slab[pos] = *cand
	e.cutLen[id] = uint8(ln + 1)
}

// expand4 re-expresses a table over leaf set from as a table over the
// superset to (both sorted); variables of to absent in from are vacuous.
func expand4(tt uint16, from *[rewriteCutInputs]int32, nFrom uint8, to *[rewriteCutInputs]int32, nTo uint8) uint16 {
	if nFrom == nTo {
		return tt
	}
	var pos [rewriteCutInputs]int8
	j := uint8(0)
	for i := uint8(0); i < nTo; i++ {
		if j < nFrom && from[j] == to[i] {
			pos[i] = int8(j)
			j++
		} else {
			pos[i] = -1
		}
	}
	var out uint16
	for m := 0; m < 1<<nTo; m++ {
		src := 0
		for i := uint8(0); i < nTo; i++ {
			if pos[i] >= 0 && m&(1<<i) != 0 {
				src |= 1 << uint(pos[i])
			}
		}
		out |= (tt >> src & 1) << m
	}
	// Replicate across the vacuous high variables so the table is a valid
	// padded 4-var function.
	for w := nTo; w < rewriteCutInputs; w++ {
		out |= out << (1 << w)
	}
	return out
}

// decide evaluates every kept cut of the node and records the best
// acceptable replacement: largest gain, then shallowest, then first in
// cut order. Gains must not stretch the node past its required time, and
// zero-gain structures are accepted only on the critical path when they
// reduce the node's level — the area-for-depth trade the flow wants.
func (e *rwEngine) decide(id int32, arena *rwArena) {
	lvl := e.g.levels[id]
	req := e.req[id]
	critical := req == lvl
	best := rwDecision{kind: rwNone}
	for _, cut := range e.cutsOf(id) {
		d := e.evalCut(id, &cut, arena)
		if d.kind == rwNone {
			continue
		}
		accept := (d.gain > 0 && d.depth <= req) ||
			(d.gain == 0 && critical && d.depth < lvl)
		if !accept {
			continue
		}
		if best.kind == rwNone || d.gain > best.gain ||
			(d.gain == best.gain && d.depth < best.depth) {
			best = d
		}
	}
	e.dec[id] = best
}

// evalCut canonicalizes the cut function, prices the library structure
// against logic the graph already has, and returns the candidate decision
// (kind rwNone when the class has no structure — never at full coverage).
func (e *rwEngine) evalCut(id int32, cut *pcut, arena *rwArena) rwDecision {
	g := e.g
	d := rwDecision{leaves: cut.leaves, tt: cut.tt, n: cut.n, kind: rwNone}
	// Collapse cases: the cut proves the root constant or a projection of
	// one leaf. The whole MFFC is the gain; nothing new is built.
	switch cut.tt {
	case 0x0000, 0xFFFF:
		d.kind = rwConst
		d.repl = False.NotIf(cut.tt == 0xFFFF)
		d.gain = e.mffcSize(id, cut, arena)
		d.depth = 0
		return d
	}
	for i := 0; i < int(cut.n); i++ {
		if cut.tt == varTT4[i] || cut.tt == ^varTT4[i] {
			d.kind = rwLeaf
			d.repl = MkLit(cut.leaves[i], cut.tt != varTT4[i])
			d.gain = e.mffcSize(id, cut, arena)
			d.depth = g.levels[cut.leaves[i]]
			return d
		}
	}
	ent := e.lib.canon[cut.tt]
	impl, ok := e.lib.impls[ent.canon]
	if !ok {
		return d
	}
	saved := e.mffcSize(id, cut, arena)
	var leafLits [4]Lit
	for i := 0; i < int(cut.n); i++ {
		leafLits[i] = MkLit(cut.leaves[i], false)
	}
	mapped, _ := cutLeafLits(ent.xf, &leafLits)
	cost, depth := e.price(impl, &mapped, arena)
	d.kind = rwImpl
	d.gain = saved - cost
	d.depth = depth
	return d
}

// price walks the structure against the old graph read-only: a gate whose
// fanins are both already present is free if FindAnd resolves it to a
// surviving node (members of the cut's MFFC are dying, so hits inside it
// still cost — a conservative estimate; the serial apply phase's strash
// recovers any sharing the estimate missed). Returns the number of new
// AND nodes and the estimated output level.
func (e *rwEngine) price(impl *libImpl, mapped *[4]Lit, arena *rwArena) (cost, depth int32) {
	g := e.g
	ep := arena.epoch
	var lits [4 + 16]Lit
	var known [4 + 16]bool
	var lvl [4 + 16]int32
	for i := 0; i < 4; i++ {
		lits[i] = mapped[i]
		known[i] = true
		lvl[i] = g.levels[mapped[i].Node()]
	}
	for gi, gate := range impl.gates {
		ai, bi := gate.a>>1, gate.b>>1
		slot := 4 + gi
		if known[ai] && known[bi] {
			a := lits[ai].NotIf(gate.a&1 != 0)
			b := lits[bi].NotIf(gate.b&1 != 0)
			if f, found := g.FindAnd(a, b); found && arena.member[f.Node()] != ep {
				lits[slot] = f
				known[slot] = true
				lvl[slot] = g.levels[f.Node()]
				continue
			}
		}
		cost++
		known[slot] = false
		l := lvl[ai]
		if lvl[bi] > l {
			l = lvl[bi]
		}
		lvl[slot] = l + 1
	}
	return cost, lvl[impl.out>>1]
}

// mffcSize counts the AND nodes freed if the root were replaced: the
// maximum fanout-free cone bounded by the cut leaves, via local
// dereference simulation over epoch-stamped fanout copies. Marks cone
// members in the arena for price's dying-node check.
func (e *rwEngine) mffcSize(root int32, cut *pcut, arena *rwArena) int32 {
	g := e.g
	arena.epoch++
	ep := arena.epoch
	for i := 0; i < int(cut.n); i++ {
		arena.leafMark[cut.leaves[i]] = ep
	}
	arena.member[root] = ep
	count := int32(1)
	arena.stack = arena.stack[:0]
	arena.stack = append(arena.stack, root)
	for len(arena.stack) > 0 {
		id := arena.stack[len(arena.stack)-1]
		arena.stack = arena.stack[:len(arena.stack)-1]
		n := &g.nodes[id]
		for _, f := range [2]Lit{n.f0, n.f1} {
			fn := f.Node()
			if !g.IsAnd(fn) || arena.leafMark[fn] == ep {
				continue
			}
			if arena.refStamp[fn] != ep {
				arena.refStamp[fn] = ep
				arena.refSnap[fn] = e.refs[fn]
			}
			arena.refSnap[fn]--
			if arena.refSnap[fn] == 0 {
				count++
				arena.member[fn] = ep
				arena.stack = append(arena.stack, fn)
			}
		}
	}
	return count
}

// apply is the serial rebuild: a fresh graph constructed on demand from
// the outputs, substituting each accepted decision as its node is
// reached. Nodes whose MFFC died are simply never rebuilt, and the new
// graph's strash re-finds every sharing opportunity the estimates priced.
func (e *rwEngine) apply(stats *RewriteStats) *Graph {
	g := e.g
	ng := New(g.Name)
	old2new := make([]Lit, len(g.nodes))
	built := make([]bool, len(g.nodes))
	old2new[0], built[0] = False, true
	for i, id := range g.pis {
		old2new[id], built[id] = ng.AddPI(g.piNames[i]), true
	}
	for _, la := range g.latches {
		old2new[la.Out], built[la.Out] = ng.AddLatch(la.Name, la.Init), true
	}
	var build func(id int32) Lit
	mapLit := func(l Lit) Lit { return build(l.Node()).NotIf(l.Compl()) }
	build = func(id int32) Lit {
		if built[id] {
			return old2new[id]
		}
		built[id] = true // set first: leaves are strictly below id, no cycles
		d := &e.dec[id]
		var nl Lit
		switch d.kind {
		case rwConst:
			nl = d.repl
			stats.Applied++
			stats.Gain += int64(d.gain)
		case rwLeaf:
			nl = mapLit(d.repl)
			stats.Applied++
			stats.Gain += int64(d.gain)
		case rwImpl:
			var leafLits [4]Lit
			for i := 0; i < int(d.n); i++ {
				leafLits[i] = build(d.leaves[i])
			}
			ent := e.lib.canon[d.tt]
			impl := e.lib.impls[ent.canon]
			mapped, outNeg := cutLeafLits(ent.xf, &leafLits)
			nl = impl.instantiate(&mapped, ng.And).NotIf(outNeg)
			stats.Applied++
			stats.Gain += int64(d.gain)
		default:
			n := g.nodes[id]
			nl = ng.And(mapLit(n.f0), mapLit(n.f1))
		}
		old2new[id] = nl
		return nl
	}
	for _, po := range g.pos {
		ng.AddPO(po.Name, mapLit(po.Lit))
	}
	for i, la := range g.latches {
		ng.SetLatchNext(i, mapLit(la.Next))
	}
	return ng
}
