package aig

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/blif"
	"repro/internal/logic"
	"repro/internal/network"
)

// roundTrip pushes a network through FromNetwork ∘ ToNetwork and asserts
// the losslessness contract: both representations check structurally and
// the bitsim streams agree cycle for cycle.
func roundTrip(t *testing.T, src *network.Network, cycles int, seed int64) {
	t.Helper()
	g, err := FromNetwork(src)
	if err != nil {
		t.Fatalf("FromNetwork: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	back, err := g.ToNetwork()
	if err != nil {
		t.Fatalf("ToNetwork: %v", err)
	}
	if len(back.PIs) != len(src.PIs) || len(back.POs) != len(src.POs) ||
		len(back.Latches) != len(src.Latches) {
		t.Fatalf("interface changed: %d/%d/%d PIs/POs/latches, want %d/%d/%d",
			len(back.PIs), len(back.POs), len(back.Latches),
			len(src.PIs), len(src.POs), len(src.Latches))
	}
	for i, pi := range src.PIs {
		if back.PIs[i].Name != pi.Name {
			t.Errorf("PI %d renamed %q -> %q", i, pi.Name, back.PIs[i].Name)
		}
	}
	for i, po := range src.POs {
		if back.POs[i].Name != po.Name {
			t.Errorf("PO %d renamed %q -> %q", i, po.Name, back.POs[i].Name)
		}
	}
	for i, la := range src.Latches {
		if back.Latches[i].Init != la.Init {
			t.Errorf("latch %d init changed %v -> %v", i, la.Init, back.Latches[i].Init)
		}
	}
	if err := bitsim.RandomEquivalent(src, back, 0, cycles, seed, bitsim.Options{}); err != nil {
		t.Fatalf("round trip diverges: %v", err)
	}
}

func TestRoundTripConstants(t *testing.T) {
	n := network.New("consts")
	a := n.AddPI("a")
	zero := n.AddLogic("z", []*network.Node{a}, logic.Zero(1))
	one := n.AddLogic("o", []*network.Node{a}, logic.One(1))
	n.AddPO("y0", zero)
	n.AddPO("y1", one)
	// A node whose cover collapses to a constant only inside the AIG.
	taut := n.AddLogic("t", []*network.Node{a}, logic.MustParseCover(1, "0", "1"))
	n.AddPO("yt", taut)
	roundTrip(t, n, 32, 1)
}

func TestRoundTripLatchDirectPO(t *testing.T) {
	// PO fed directly by a latch output, latch fed by another latch — no
	// logic in between.
	n := network.New("latchpo")
	a := n.AddPI("a")
	l1 := n.AddLatch("q1", a, network.V1)
	l2 := n.AddLatch("q2", l1.Output, network.V0)
	n.AddPO("y", l2.Output)
	n.AddPO("y1", l1.Output)
	roundTrip(t, n, 64, 2)
}

func TestRoundTripPassThroughPO(t *testing.T) {
	n := network.New("wire")
	a := n.AddPI("a")
	n.AddPO("y", a)
	n.AddPO("yn", n.AddLogic("inv", []*network.Node{a}, logic.MustParseCover(1, "0")))
	roundTrip(t, n, 16, 3)
}

func TestRoundTripDuplicateFaninCubes(t *testing.T) {
	// Covers with repeated and contradictory literal patterns across cubes:
	// xy + xy' + x'y (i.e. x OR y) and a cube list with a duplicate.
	n := network.New("dups")
	x := n.AddPI("x")
	y := n.AddPI("y")
	f := n.AddLogic("f", []*network.Node{x, y}, logic.MustParseCover(2, "11", "10", "01"))
	dup := n.AddLogic("d", []*network.Node{x, y}, logic.MustParseCover(2, "11", "11"))
	n.AddPO("f", f)
	n.AddPO("d", dup)
	roundTrip(t, n, 32, 4)
}

func TestRoundTripConstantDrivenLatch(t *testing.T) {
	n := network.New("constlatch")
	a := n.AddPI("a")
	c1 := n.AddConst("c1", true)
	l := n.AddLatch("q", c1, network.V0)
	n.AddPO("y", n.AddLogic("g", []*network.Node{a, l.Output}, logic.MustParseCover(2, "11")))
	roundTrip(t, n, 32, 5)
}

func TestRoundTripSynthetic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		src := bench.Synthetic(bench.Profile{
			Name: "rt", PIs: 7, POs: 5, FFs: 6, Gates: 90, Seed: seed,
		})
		roundTrip(t, src, 128, seed)
	}
}

func TestRoundTripRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep in short mode")
	}
	for _, c := range bench.TableI() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			src, err := c.Build()
			if err != nil {
				t.Fatalf("build %s: %v", c.Name, err)
			}
			roundTrip(t, src, 64, 42)
		})
	}
}

// FuzzRoundTrip feeds BLIF sources through the converters: everything the
// parser accepts must survive FromNetwork ∘ ToNetwork with network.Check
// passing and bitsim streams agreeing. Seeds cover the converter edge
// cases: constant functions, latch-fed POs, duplicate-fanin cubes.
func FuzzRoundTrip(f *testing.F) {
	seeds := []string{
		".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
		".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n-0 1\n.end\n",
		".model m\n.inputs a\n.outputs y\n.latch q y 0\n.names a q\n1 1\n.end\n",
		".model m\n.inputs a\n.outputs y\n.latch a y 3\n.end\n",
		".model m\n.outputs y\n.names y\n1\n.end\n",
		".model m\n.outputs y\n.names y\n.end\n",
		".model m\n.inputs x y\n.outputs f\n.names x y f\n11 1\n10 1\n01 1\n.end\n",
		".model m\n.inputs a\n.outputs p q\n.latch a s0 1\n.latch s0 s1 0\n.names s1 p\n1 1\n.names s0 q\n0 1\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := blif.ParseString(src)
		if err != nil {
			return
		}
		g, gerr := FromNetwork(n)
		if gerr != nil {
			t.Fatalf("FromNetwork rejected a checked network: %v\n%s", gerr, src)
		}
		if cerr := g.Check(); cerr != nil {
			t.Fatalf("graph invalid: %v\n%s", cerr, src)
		}
		back, berr := g.ToNetwork()
		if berr != nil {
			t.Fatalf("ToNetwork: %v\n%s", berr, src)
		}
		for _, la := range n.Latches {
			if la.Init == network.VX {
				// X-initialized state: bitsim's scalar lane panics on X at a
				// PO by design, so only the structural round trip is checked.
				return
			}
		}
		if serr := bitsim.RandomEquivalent(n, back, 0, 32, 99, bitsim.Options{Streams: 8}); serr != nil {
			t.Fatalf("round trip diverges: %v\n%s", serr, src)
		}
	})
}
