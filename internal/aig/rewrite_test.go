package aig

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bench"
)

// simCombinational evaluates all combinational outputs (POs then latch
// next-states) over 64 parallel input patterns: word i of the result is
// the bit-parallel value of output i.
func simCombinational(g *Graph, piW, latchW []uint64) []uint64 {
	w := make([]uint64, len(g.nodes))
	for i, id := range g.pis {
		w[id] = piW[i]
	}
	for i, la := range g.latches {
		w[la.Out] = latchW[i]
	}
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if !g.IsAnd(id) {
			continue
		}
		n := g.nodes[id]
		a := w[n.f0.Node()]
		if n.f0.Compl() {
			a = ^a
		}
		b := w[n.f1.Node()]
		if n.f1.Compl() {
			b = ^b
		}
		w[id] = a & b
	}
	ev := func(l Lit) uint64 {
		v := w[l.Node()]
		if l.Compl() {
			v = ^v
		}
		return v
	}
	out := make([]uint64, 0, len(g.pos)+len(g.latches))
	for _, po := range g.pos {
		out = append(out, ev(po.Lit))
	}
	for _, la := range g.latches {
		out = append(out, ev(la.Next))
	}
	return out
}

// assertSameFunction drives both graphs (identical PI/latch interfaces)
// with seeded random patterns and compares every combinational output.
func assertSameFunction(t *testing.T, a, b *Graph, seed int64) {
	t.Helper()
	if len(a.pis) != len(b.pis) || len(a.latches) != len(b.latches) ||
		len(a.pos) != len(b.pos) {
		t.Fatalf("interface mismatch: %d/%d/%d vs %d/%d/%d PIs/latches/POs",
			len(a.pis), len(a.latches), len(a.pos), len(b.pis), len(b.latches), len(b.pos))
	}
	r := rand.New(rand.NewSource(seed))
	for round := 0; round < 16; round++ {
		piW := make([]uint64, len(a.pis))
		for i := range piW {
			piW[i] = r.Uint64()
		}
		latchW := make([]uint64, len(a.latches))
		for i := range latchW {
			latchW[i] = r.Uint64()
		}
		av := simCombinational(a, piW, latchW)
		bv := simCombinational(b, piW, latchW)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("round %d: combinational output %d diverges: %016x vs %016x",
					round, i, av[i], bv[i])
			}
		}
	}
}

func rewriteSuite(t *testing.T) map[string]*Graph {
	t.Helper()
	graphs := map[string]*Graph{}
	for _, c := range bench.TableI() {
		src, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if testing.Short() && src.NumLogicNodes() > 600 {
			continue
		}
		if src.NumLogicNodes() > 3000 {
			continue // keep the unit suite fast; large rows run in benchflows
		}
		g, err := FromNetwork(src)
		if err != nil {
			t.Fatalf("%s: FromNetwork: %v", c.Name, err)
		}
		graphs[c.Name] = g
	}
	for _, p := range []bench.Profile{
		{Name: "rw_regheavy", PIs: 4, POs: 4, FFs: 40, Gates: 120, Seed: 0xA7},
		{Name: "rw_wide", PIs: 32, POs: 24, FFs: 6, Gates: 180, Seed: 0xB8},
		{Name: "rw_deep", PIs: 3, POs: 2, FFs: 9, Gates: 260, Seed: 0xC9},
	} {
		g, err := FromNetwork(bench.Synthetic(p))
		if err != nil {
			t.Fatalf("%s: FromNetwork: %v", p.Name, err)
		}
		graphs[p.Name] = g
	}
	return graphs
}

// TestRewritePreservesFunction is the correctness property of the pass:
// the rebuilt graph computes the same combinational function, passes the
// structural Check, and never grows on the suite.
func TestRewritePreservesFunction(t *testing.T) {
	for name, g := range rewriteSuite(t) {
		g.Sweep()
		before := g.NumAnds()
		ng, stats, err := g.Rewrite(context.Background(), RewriteOptions{Workers: 3})
		if err != nil {
			t.Fatalf("%s: Rewrite: %v", name, err)
		}
		if err := ng.Check(); err != nil {
			t.Fatalf("%s: rewritten graph invalid: %v", name, err)
		}
		assertSameFunction(t, g, ng, 0x5eed^int64(len(name)))
		if ng.NumAnds() > before {
			t.Errorf("%s: rewrite grew the graph: %d -> %d ANDs", name, before, ng.NumAnds())
		}
		if stats.Waves == 0 && before > 0 {
			t.Errorf("%s: no waves processed over %d ANDs", name, before)
		}
		t.Logf("%s: %d -> %d ANDs (depth %d -> %d), applied=%d gain=%d pruned=%d waves=%d",
			name, before, ng.NumAnds(), g.Depth(), ng.Depth(),
			stats.Applied, stats.Gain, stats.CutsPruned, stats.Waves)
	}
}

// TestRewriteDeterministicAcrossWorkers is the levelization contract: the
// rebuilt graph is identical — node for node, literal for literal — at
// any worker width, because per-node decisions never depend on sharding.
func TestRewriteDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range rewriteSuite(t) {
		g.Sweep()
		var ref *Graph
		var refStats RewriteStats
		for _, w := range []int{1, 2, 3, 8} {
			ng, stats, err := g.Rewrite(context.Background(), RewriteOptions{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if ref == nil {
				ref, refStats = ng, stats
				continue
			}
			if stats != refStats {
				t.Fatalf("%s workers=%d: stats diverge: %+v vs %+v", name, w, stats, refStats)
			}
			if len(ng.nodes) != len(ref.nodes) {
				t.Fatalf("%s workers=%d: %d nodes vs %d at workers=1",
					name, w, len(ng.nodes), len(ref.nodes))
			}
			for id := range ng.nodes {
				if ng.nodes[id] != ref.nodes[id] || ng.levels[id] != ref.levels[id] {
					t.Fatalf("%s workers=%d: node %d differs", name, w, id)
				}
			}
			for i := range ng.pos {
				if ng.pos[i] != ref.pos[i] {
					t.Fatalf("%s workers=%d: PO %d differs", name, w, i)
				}
			}
			for i := range ng.latches {
				if ng.latches[i] != ref.latches[i] {
					t.Fatalf("%s workers=%d: latch %d differs", name, w, i)
				}
			}
		}
	}
}

// TestRewriteCollapsesRedundantCone: (a·b) + (a·b̄) is a 3-AND cone the
// constructor's local rules cannot see through (the two ANDs are shared
// hash entries, the OR is a fresh node) but a 2-leaf cut proves it equal
// to a. The rewriter must collapse it.
func TestRewriteCollapsesRedundantCone(t *testing.T) {
	g := New("collapse")
	a := g.AddPI("a")
	b := g.AddPI("b")
	f := g.Or(g.And(a, b), g.And(a, b.Not()))
	g.AddPO("f", f)
	// A second output keeps b referenced so the graph stays well-formed.
	g.AddPO("keep_b", b)
	before := g.NumAnds()
	ng, stats, err := g.Rewrite(context.Background(), RewriteOptions{})
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if err := ng.Check(); err != nil {
		t.Fatalf("rewritten graph invalid: %v", err)
	}
	assertSameFunction(t, g, ng, 77)
	if ng.NumAnds() != 0 {
		t.Fatalf("cone not collapsed: %d -> %d ANDs", before, ng.NumAnds())
	}
	if stats.Applied == 0 || stats.Gain == 0 {
		t.Fatalf("collapse not accounted: %+v", stats)
	}
}

// TestRewriteCancellation: a pre-cancelled context aborts between waves
// without panicking and reports the context error.
func TestRewriteCancellation(t *testing.T) {
	g, err := FromNetwork(bench.Synthetic(bench.Profile{
		Name: "cancel", PIs: 8, POs: 4, FFs: 4, Gates: 200, Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.Rewrite(ctx, RewriteOptions{Workers: 2}); err == nil {
		t.Fatal("cancelled rewrite returned no error")
	}
}

// TestDerivedStateInvalidation is the memoization regression of this PR:
// interleaving sweeps, strash construction, and balancing must never let
// a caller observe stale memoized fanout counts or levels. Every step
// cross-checks the memo against a from-scratch recompute.
func TestDerivedStateInvalidation(t *testing.T) {
	freshFanouts := func(g *Graph) []int32 {
		refs := make([]int32, len(g.nodes))
		for id := int32(1); id < int32(len(g.nodes)); id++ {
			if g.IsAnd(id) {
				n := g.nodes[id]
				refs[n.f0.Node()]++
				refs[n.f1.Node()]++
			}
		}
		for _, po := range g.pos {
			refs[po.Lit.Node()]++
		}
		for _, la := range g.latches {
			refs[la.Next.Node()]++
		}
		return refs
	}
	freshLevels := func(g *Graph) []int32 {
		lv := make([]int32, len(g.nodes))
		for id := int32(1); id < int32(len(g.nodes)); id++ {
			if g.IsAnd(id) {
				n := g.nodes[id]
				l := lv[n.f0.Node()]
				if l2 := lv[n.f1.Node()]; l2 > l {
					l = l2
				}
				lv[id] = l + 1
			}
		}
		return lv
	}
	check := func(step string, g *Graph) {
		t.Helper()
		got := g.FanoutCounts()
		want := freshFanouts(g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: stale fanout memo at node %d: %d, fresh %d", step, i, got[i], want[i])
			}
		}
		wantLv := freshLevels(g)
		for i := range wantLv {
			if g.levels[i] != wantLv[i] {
				t.Fatalf("%s: stale level at node %d: %d, fresh %d", step, i, g.levels[i], wantLv[i])
			}
		}
	}

	g, err := FromNetwork(bench.Synthetic(bench.Profile{
		Name: "memo", PIs: 6, POs: 3, FFs: 5, Gates: 80, Seed: 42}))
	if err != nil {
		t.Fatal(err)
	}
	check("initial", g)

	// Prime the memo, then sweep: counts must re-derive for the compacted
	// node numbering, not replay the pre-sweep slice.
	_ = g.FanoutCounts()
	g.Sweep()
	check("after sweep", g)

	// Prime again, then strash new structure onto the graph (And both
	// extends the node array and can change fanout of existing nodes).
	_ = g.FanoutCounts()
	a := MkLit(g.pis[0], false)
	b := MkLit(g.pis[1], false)
	x := g.And(g.And(a, b), g.Xor(a, b).Not())
	g.AddPO("extra", x)
	check("after strash+AddPO", g)

	// Balance returns a fresh graph; its memo must describe the balanced
	// structure. Then mutate latch wiring on it and re-check.
	bg := g.Balance()
	check("after balance", bg)
	if len(bg.latches) > 0 {
		_ = bg.FanoutCounts()
		bg.SetLatchNext(0, bg.latches[0].Next.Not())
		check("after SetLatchNext", bg)
	}

	// A second sweep after all of the above still agrees.
	_ = bg.FanoutCounts()
	bg.Sweep()
	check("after final sweep", bg)
}

// BenchmarkRewrite measures one full pass on a mid-size synthetic.
func BenchmarkRewrite(b *testing.B) {
	g, err := FromNetwork(bench.Synthetic(bench.Profile{
		Name: "bench", PIs: 16, POs: 8, FFs: 32, Gates: 2000, Seed: 9}))
	if err != nil {
		b.Fatal(err)
	}
	g.Sweep()
	getNPNLib()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Rewrite(context.Background(), RewriteOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
