package aig

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/network"
)

// This file implements k-feasible cut enumeration and the delay-oriented
// LUT mapper. A cut of node n is a set of ≤ k nodes whose removal
// disconnects n from the combinational inputs; the mapper picks, per
// mapped node, the cut with the earliest arrival time (depth in LUT
// levels), then covers the graph backward from the outputs. Truth tables
// ride along as uint64 words (k ≤ 6), so the final LUT functions come out
// of the enumeration for free — Mapping.ToNetwork lowers them to SOP
// covers for verification against the original graph.

// MaxLutK is the largest supported LUT input count (one 64-bit truth
// table word).
const MaxLutK = 6

// maxCutsPerNode bounds the cut set kept per node; cuts are ranked by
// (arrival, size), so pruning keeps the delay-optimal front.
const maxCutsPerNode = 8

// varMask[i] is the truth table of variable i of a 6-input function.
var varMask = [MaxLutK]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// cut is one k-feasible cut: sorted leaf node ids, the function of the
// root over the leaves, and the arrival time of the root through this cut.
type cut struct {
	leaves []int32
	tt     uint64
	arr    int32
}

// LUT is one mapped lookup table: Root computes TT over Leaves (sorted
// node ids; variable i of TT is Leaves[i]).
type LUT struct {
	Root   int32
	Leaves []int32
	TT     uint64
}

// Mapping is the result of LUT covering: the chosen LUTs in ascending
// root order, the LUT-level depth, and the input size class.
type Mapping struct {
	K     int
	LUTs  []LUT
	Depth int32

	graph *Graph
}

// NumLUTs returns the number of lookup tables in the cover.
func (m *Mapping) NumLUTs() int { return len(m.LUTs) }

// MapForDelay covers the graph with k-input LUTs minimizing depth: cut
// enumeration with exact arrival times forward, then a backward covering
// pass that materializes the best cut of every needed node. k must be in
// 2..MaxLutK.
//
// Enumeration keeps at most maxCutsPerNode priority cuts per node,
// inserted directly into a bounded sorted set — candidates are never
// materialized in full, and the truth-table expansion (the expensive
// 2^k inner loop) only runs for candidates that survive dominance and
// rank checks against the current front.
func (g *Graph) MapForDelay(k int) (*Mapping, error) {
	if k < 2 || k > MaxLutK {
		return nil, fmt.Errorf("aig: MapForDelay k=%d out of range 2..%d", k, MaxLutK)
	}
	n := len(g.nodes)
	arrival := make([]int32, n)
	cutsOf := make([][]cut, n)
	trivial := func(id int32, arr int32) cut {
		return cut{leaves: []int32{id}, tt: varMask[0], arr: arr}
	}
	var buf [MaxLutK]int32
	for id := int32(0); id < int32(n); id++ {
		if !g.IsAnd(id) {
			// Constant and CI nodes: only the trivial cut. (The constant's
			// cut is never useful — rewrite rules keep constants out of
			// fanins — but it keeps the indexing uniform.)
			cutsOf[id] = []cut{trivial(id, 0)}
			continue
		}
		f0, f1 := g.nodes[id].f0, g.nodes[id].f1
		kept := make([]cut, 0, maxCutsPerNode+1)
		for _, c0 := range cutsOf[f0.Node()] {
			for _, c1 := range cutsOf[f1.Node()] {
				nl, ok := mergeLeavesInto(c0.leaves, c1.leaves, k, &buf)
				if !ok {
					continue
				}
				leaves := buf[:nl]
				arr := int32(0)
				for _, l := range leaves {
					if a := arrival[l]; a >= arr {
						arr = a
					}
				}
				c0, c1, f0, f1 := c0, c1, f0, f1
				kept = insertBoundedCut(kept, leaves, arr+1, func(ls []int32) uint64 {
					t0 := expandTT(c0.tt, c0.leaves, ls)
					if f0.Compl() {
						t0 = ^t0
					}
					t1 := expandTT(c1.tt, c1.leaves, ls)
					if f1.Compl() {
						t1 = ^t1
					}
					return t0 & t1
				})
			}
		}
		arrival[id] = kept[0].arr
		// The trivial cut lets fanouts start a fresh LUT at this node.
		cutsOf[id] = append(kept, trivial(id, arrival[id]))
	}

	m := &Mapping{K: k, graph: g}
	need := make([]bool, n)
	for _, o := range g.outputs() {
		if g.IsAnd(o.Node()) {
			need[o.Node()] = true
		}
		if a := arrival[o.Node()]; a > m.Depth {
			m.Depth = a
		}
	}
	// Backward covering: descending ids visit roots before their cut
	// leaves, so one sweep suffices.
	for id := int32(n) - 1; id > 0; id-- {
		if !need[id] || !g.IsAnd(id) {
			continue
		}
		best := cutsOf[id][0]
		m.LUTs = append(m.LUTs, LUT{Root: id, Leaves: best.leaves, TT: best.tt})
		for _, l := range best.leaves {
			if g.IsAnd(l) {
				need[l] = true
			}
		}
	}
	sort.Slice(m.LUTs, func(i, j int) bool { return m.LUTs[i].Root < m.LUTs[j].Root })
	return m, nil
}

// mergeLeavesInto unions two sorted leaf sets into a caller-owned scratch
// array, failing when the union exceeds k. Writing into scratch keeps the
// enumeration hot loop allocation-free for rejected candidates.
func mergeLeavesInto(a, b []int32, k int, buf *[MaxLutK]int32) (int, bool) {
	n := 0
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int32
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			v = a[i]
			i++
		case i == len(a) || b[j] < a[i]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		if n == k {
			return 0, false
		}
		buf[n] = v
		n++
	}
	return n, true
}

// expandTT re-expresses a truth table over leaf set from as a table over
// superset to (both sorted). Variables of to absent in from are don't-care.
func expandTT(tt uint64, from, to []int32) uint64 {
	if len(from) == len(to) {
		return tt
	}
	// pos[i] is the from-variable index of to-variable i, or -1.
	var out uint64
	nTo := len(to)
	pos := make([]int, nTo)
	j := 0
	for i, l := range to {
		if j < len(from) && from[j] == l {
			pos[i] = j
			j++
		} else {
			pos[i] = -1
		}
	}
	for m := 0; m < 1<<nTo; m++ {
		src := 0
		for i := 0; i < nTo; i++ {
			if pos[i] >= 0 && m&(1<<i) != 0 {
				src |= 1 << pos[i]
			}
		}
		out |= (tt >> src & 1) << m
	}
	return out
}

// cutRankLess is the priority order of the mapper's cut front:
// (arrival, size, lexicographic leaves) — a total order, so the kept set
// is identical regardless of candidate enumeration batching.
func cutRankLess(leaves []int32, arr int32, o *cut) bool {
	if arr != o.arr {
		return arr < o.arr
	}
	if len(leaves) != len(o.leaves) {
		return len(leaves) < len(o.leaves)
	}
	return lessLeaves(leaves, o.leaves)
}

// insertBoundedCut considers one candidate (leaves may alias a scratch
// buffer) against a kept set ordered by cutRankLess, maintaining the
// invariants the old materialize-then-prune pass established: no kept cut
// dominates another (subset leaves with no-worse arrival), at most
// maxCutsPerNode survive, and ties resolve by the total order. ttFn is
// invoked — and leaves copied — only when the candidate is kept.
func insertBoundedCut(kept []cut, leaves []int32, arr int32, ttFn func([]int32) uint64) []cut {
	for i := range kept {
		if kept[i].arr <= arr && subsetLeaves(kept[i].leaves, leaves) {
			return kept // dominated (covers exact duplicates too)
		}
	}
	if len(kept) >= maxCutsPerNode && !cutRankLess(leaves, arr, &kept[len(kept)-1]) {
		return kept // full and no better than the current worst
	}
	// Evict kept cuts the candidate dominates.
	out := kept[:0]
	for _, kc := range kept {
		if arr <= kc.arr && subsetLeaves(leaves, kc.leaves) {
			continue
		}
		out = append(out, kc)
	}
	kept = out
	nc := cut{leaves: append([]int32(nil), leaves...), arr: arr}
	nc.tt = ttFn(nc.leaves)
	pos := len(kept)
	for i := range kept {
		if cutRankLess(nc.leaves, nc.arr, &kept[i]) {
			pos = i
			break
		}
	}
	kept = append(kept, cut{})
	copy(kept[pos+1:], kept[pos:])
	kept[pos] = nc
	if len(kept) > maxCutsPerNode {
		kept = kept[:maxCutsPerNode]
	}
	return kept
}

func lessLeaves(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// subsetLeaves reports a ⊆ b for sorted slices.
func subsetLeaves(a, b []int32) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}

// ToNetwork lowers the mapping to a Boolean network: one SOP node per LUT
// (cover via ISOP extraction from the truth table), preserving the graph's
// PI/PO/latch interface. The result is the verification surface of the LUT
// backend — bitsim can compare it against the original network.
func (m *Mapping) ToNetwork() (*network.Network, error) {
	g := m.graph
	n := network.New(g.Name)
	nodeOf := make([]*network.Node, len(g.nodes))
	for i, id := range g.pis {
		nodeOf[id] = n.AddPI(g.piNames[i])
	}
	lats := make([]*network.Latch, len(g.latches))
	for i, la := range g.latches {
		lats[i] = n.AddLatch(la.Name, nil, la.Init)
		nodeOf[la.Out] = lats[i].Output
	}
	for _, lut := range m.LUTs {
		fanins := make([]*network.Node, len(lut.Leaves))
		for i, l := range lut.Leaves {
			if nodeOf[l] == nil {
				return nil, fmt.Errorf("aig: mapping leaf %d of LUT %d not built", l, lut.Root)
			}
			fanins[i] = nodeOf[l]
		}
		cov := ttToCover(lut.TT, len(lut.Leaves))
		nodeOf[lut.Root] = n.AddLogic(fmt.Sprintf("l%d", lut.Root), fanins, cov)
	}
	inv := make(map[Lit]*network.Node)
	driver := func(l Lit) (*network.Node, error) {
		if l.Node() == 0 {
			if d, ok := inv[l]; ok {
				return d, nil
			}
			d := n.AddConst(fmt.Sprintf("const%d", l&1), l == True)
			inv[l] = d
			return d, nil
		}
		base := nodeOf[l.Node()]
		if base == nil {
			return nil, fmt.Errorf("aig: mapping output node %d not covered", l.Node())
		}
		if !l.Compl() {
			return base, nil
		}
		if d, ok := inv[l]; ok {
			return d, nil
		}
		d := n.AddLogic(fmt.Sprintf("inv%d", l.Node()),
			[]*network.Node{base}, logic.MustParseCover(1, "0"))
		inv[l] = d
		return d, nil
	}
	for _, po := range g.pos {
		d, err := driver(po.Lit)
		if err != nil {
			return nil, err
		}
		n.AddPO(po.Name, d)
	}
	for i, la := range g.latches {
		d, err := driver(la.Next)
		if err != nil {
			return nil, err
		}
		lats[i].Driver = d
	}
	if err := n.Check(); err != nil {
		return nil, fmt.Errorf("aig: mapping produced an invalid network: %w", err)
	}
	return n, nil
}

// ttToCover extracts a SOP cover from an m-variable truth table via the
// Minato-Morreale ISOP recursion (the completely-specified form: cofactor
// differences get the bound literal, the intersection recurses unbound).
func ttToCover(tt uint64, m int) *logic.Cover {
	tt &= onesTT(m)
	cubes := isop(tt, m, m)
	c := logic.NewCover(m)
	for _, cu := range cubes {
		c.Cubes = append(c.Cubes, cu)
	}
	return c
}

// onesTT is the universal m-variable truth table.
func onesTT(m int) uint64 {
	if m >= MaxLutK {
		return ^uint64(0)
	}
	return 1<<(1<<m) - 1
}

// isop recurses on the highest variable: v-1 is the split variable, nVars
// the cube width. Tables stay nVars-wide throughout (cofTT replicates the
// surviving half), so the constant checks are against the full-width mask.
func isop(tt uint64, v, nVars int) []logic.Cube {
	if tt == 0 {
		return nil
	}
	if tt == onesTT(nVars) {
		return []logic.Cube{logic.NewCube(nVars)}
	}
	x := v - 1
	f0 := cofTT(tt, x, false)
	f1 := cofTT(tt, x, true)
	var out []logic.Cube
	for _, cu := range isop(f0&^f1, x, nVars) {
		cu.SetLit(x, logic.LitNeg)
		out = append(out, cu)
	}
	for _, cu := range isop(f1&^f0, x, nVars) {
		cu.SetLit(x, logic.LitPos)
		out = append(out, cu)
	}
	out = append(out, isop(f0&f1, x, nVars)...)
	return out
}

// cofTT cofactors an m-variable table against variable i, replicating the
// surviving half into both halves so the result is independent of i.
func cofTT(tt uint64, i int, pos bool) uint64 {
	shift := uint(1) << i
	if pos {
		t := tt & varMask[i]
		return t | t>>shift
	}
	t := tt &^ varMask[i]
	return t | t<<shift
}
