package aig

import (
	"math/rand"
	"testing"
)

// ttOfLit evaluates a literal of a 4-PI graph as a truth table, given the
// table of each PI. The independent simulation oracle for library tests.
func ttOfLit(g *Graph, l Lit, piTT map[int32]uint16) uint16 {
	tts := make([]uint16, len(g.nodes))
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if g.IsAnd(id) {
			n := g.nodes[id]
			a := tts[n.f0.Node()]
			if n.f0.Compl() {
				a = ^a
			}
			b := tts[n.f1.Node()]
			if n.f1.Compl() {
				b = ^b
			}
			tts[id] = a & b
		} else if v, ok := piTT[id]; ok {
			tts[id] = v
		}
	}
	t := tts[l.Node()]
	if l.Compl() {
		t = ^t
	}
	return t
}

// TestNPNCanonicalTable checks the canonicalization table exhaustively:
// the stored transform really maps each table to its representative, the
// representative is a fixpoint, and the class count is the known 222 for
// 4-variable NPN equivalence.
func TestNPNCanonicalTable(t *testing.T) {
	lib := getNPNLib()
	if got := len(lib.classes); got != 222 {
		t.Fatalf("4-input NPN class count = %d, want 222", got)
	}
	for tt := 0; tt < 1<<16; tt++ {
		e := lib.canon[tt]
		if got := ttApply(uint16(tt), e.xf); got != e.canon {
			t.Fatalf("tt %04x: stored transform yields %04x, canon says %04x", tt, got, e.canon)
		}
		if rep := lib.canon[e.canon]; rep.canon != e.canon {
			t.Fatalf("tt %04x: representative %04x is not a fixpoint (-> %04x)",
				tt, e.canon, rep.canon)
		}
		if e.canon > uint16(tt) {
			t.Fatalf("tt %04x: representative %04x is not the class minimum", tt, e.canon)
		}
	}
}

// TestNPNCanonicalInvariance: applying any NPN transform must not change
// which representative a table maps to — the whole point of the table.
func TestNPNCanonicalInvariance(t *testing.T) {
	lib := getNPNLib()
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		tt := uint16(r.Uint32())
		xf := npnTransform{
			perm: uint8(r.Intn(24)),
			neg:  uint8(r.Intn(16)),
			out:  r.Intn(2) == 1,
		}
		v := ttApply(tt, xf)
		if lib.canon[tt].canon != lib.canon[v].canon {
			t.Fatalf("canon not NPN-invariant: %04x -> %04x but transform to %04x -> %04x",
				tt, lib.canon[tt].canon, v, lib.canon[v].canon)
		}
	}
}

// TestNPNTransformInverse pins the group algebra: invertTransform really
// inverts, for every transform and a spread of tables.
func TestNPNTransformInverse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for p := 0; p < 24; p++ {
		for neg := 0; neg < 16; neg++ {
			for o := 0; o < 2; o++ {
				xf := npnTransform{perm: uint8(p), neg: uint8(neg), out: o == 1}
				inv := invertTransform(xf)
				for k := 0; k < 4; k++ {
					tt := uint16(r.Uint32())
					if got := ttApply(ttApply(tt, xf), inv); got != tt {
						t.Fatalf("transform %+v not inverted by %+v: %04x -> %04x",
							xf, inv, tt, got)
					}
				}
			}
		}
	}
}

// TestNPNCanonicalAgainstBruteForce compares the orbit-expansion table
// against exhaustive enumeration of the whole NPN group: the minimum over
// all 768 transforms, computed directly per table, must equal the stored
// representative. Run on a seeded sample plus known corner tables — the
// full 65536×768 product is covered indirectly by TestNPNCanonicalTable's
// exhaustive fixpoint/transform checks.
func TestNPNCanonicalAgainstBruteForce(t *testing.T) {
	lib := getNPNLib()
	brute := func(tt uint16) uint16 {
		min := tt
		for o := 0; o < 2; o++ {
			for neg := 0; neg < 16; neg++ {
				for p := 0; p < 24; p++ {
					v := ttApply(tt, npnTransform{perm: uint8(p), neg: uint8(neg), out: o == 1})
					if v < min {
						min = v
					}
				}
			}
		}
		return min
	}
	sample := []uint16{0x0000, 0xFFFF, 0xAAAA, 0x5555, 0x8888, 0x8000, 0x0001,
		0x6996, 0x1EE1, 0xCAFE, 0xBEEF, 0x0123}
	r := rand.New(rand.NewSource(17))
	n := 1500
	if testing.Short() {
		n = 200
	}
	for i := 0; i < n; i++ {
		sample = append(sample, uint16(r.Uint32()))
	}
	for _, tt := range sample {
		if got, want := lib.canon[tt].canon, brute(tt); got != want {
			t.Fatalf("tt %04x: table says canon %04x, brute-force group minimum %04x",
				tt, got, want)
		}
	}
}

// exhaustiveTreeCosts recomputes minimal AND-tree costs with an
// independent fixpoint formulation — a snapshot-pair relaxation over a
// growing set, rerun until no cost improves — as the oracle for the
// library's leveled enumeration.
func exhaustiveTreeCosts(bound int) map[uint16]int {
	cost := map[uint16]int{}
	var items []uint16
	add := func(tt uint16, c int) bool {
		if old, ok := cost[tt]; ok && old <= c {
			return false
		}
		if _, ok := cost[tt]; !ok {
			items = append(items, tt)
		}
		if _, ok := cost[^tt]; !ok {
			items = append(items, ^tt)
		}
		cost[tt] = c
		cost[^tt] = c
		return true
	}
	add(0x0000, 0)
	for _, v := range varTT4 {
		add(v, 0)
	}
	for changed := true; changed; {
		changed = false
		snap := append([]uint16(nil), items...)
		for i, a := range snap {
			ca := cost[a]
			if ca >= bound {
				continue
			}
			for _, b := range snap[i:] {
				c := ca + cost[b] + 1
				if c > bound {
					continue
				}
				if add(a&b, c) {
					changed = true
				}
			}
		}
	}
	return cost
}

// TestNPNLibraryMatchesExhaustive compares the leveled enumeration against
// the independent fixpoint oracle on every table within a reduced bound
// (the full bound-7 oracle would square 65536 tables per round; bound 4
// already crosses every structural case: shared levels, phase choices,
// asymmetric splits). It also asserts full class coverage at the real
// bound and that each stored structure simulates to its representative
// with no more gates than the recorded optimum.
func TestNPNLibraryMatchesExhaustive(t *testing.T) {
	lib := getNPNLib()
	oracleBound := 4
	if testing.Short() {
		oracleBound = 3
	}
	oracle := exhaustiveTreeCosts(oracleBound)
	for tt := 0; tt < 1<<16; tt++ {
		want, ok := oracle[uint16(tt)]
		if !ok {
			// Oracle bound reached: the library may know a cost here (its
			// bound is higher); it must not claim a *lower* one.
			if c := lib.cost[tt]; c >= 0 && int(c) <= oracleBound {
				t.Fatalf("tt %04x: library cost %d but oracle found nothing within %d",
					tt, c, oracleBound)
			}
			continue
		}
		if got := lib.cost[tt]; int(got) != want {
			t.Fatalf("tt %04x: library cost %d, exhaustive oracle %d", tt, got, want)
		}
	}
	piTT := map[int32]uint16{}
	g := New("lib")
	var leaves [4]Lit
	for i := 0; i < 4; i++ {
		leaves[i] = g.AddPI(string(rune('a' + i)))
		piTT[leaves[i].Node()] = varTT4[i]
	}
	for _, rep := range lib.classes {
		if rep == 0x0000 {
			continue
		}
		if lib.cost[rep] < 0 {
			t.Fatalf("class %04x not covered within %d nodes", rep, libMaxNodes)
		}
		impl, ok := lib.impls[rep]
		if !ok {
			t.Fatalf("class %04x has a cost but no structure", rep)
		}
		if len(impl.gates) > int(lib.cost[rep]) {
			t.Fatalf("class %04x: structure has %d gates, optimum is %d",
				rep, len(impl.gates), lib.cost[rep])
		}
		lit := impl.instantiate(&leaves, g.And)
		if got := ttOfLit(g, lit, piTT); got != rep {
			t.Fatalf("class %04x: structure simulates to %04x", rep, got)
		}
	}
}

// TestNPNInstantiationComputesCut is the end-to-end convention check the
// rewriter relies on: for an arbitrary table, canonicalize, wire the class
// structure through cutLeafLits, and the result must simulate back to the
// original table — pinning the inverse-permutation/negation bookkeeping.
func TestNPNInstantiationComputesCut(t *testing.T) {
	lib := getNPNLib()
	g := New("inst")
	piTT := map[int32]uint16{}
	var leafLits [4]Lit
	for i := 0; i < 4; i++ {
		leafLits[i] = g.AddPI(string(rune('a' + i)))
		piTT[leafLits[i].Node()] = varTT4[i]
	}
	r := rand.New(rand.NewSource(31))
	check := func(tt uint16) {
		if tt == 0x0000 || tt == 0xFFFF {
			return // constant classes: the rewriter substitutes directly
		}
		e := lib.canon[tt]
		impl, ok := lib.impls[e.canon]
		if !ok {
			t.Fatalf("tt %04x: class %04x has no structure", tt, e.canon)
		}
		mapped, outNeg := cutLeafLits(e.xf, &leafLits)
		lit := impl.instantiate(&mapped, g.And).NotIf(outNeg)
		if got := ttOfLit(g, lit, piTT); got != tt {
			t.Fatalf("tt %04x: instantiation simulates to %04x (class %04x, xf %+v)",
				tt, got, e.canon, e.xf)
		}
	}
	for _, tt := range []uint16{0xAAAA, 0x5555, 0x00FF, 0x8000, 0x6996, 0xCAFE, 0x1234} {
		check(tt)
	}
	for trial := 0; trial < 3000; trial++ {
		check(uint16(r.Uint32()))
	}
}
