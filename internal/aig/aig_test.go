package aig

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/network"
)

// evalLit evaluates a literal under a CI assignment by recursing through
// the AND structure — the semantic oracle for the constructor tests.
func evalLit(g *Graph, l Lit, in map[int32]bool) bool {
	var eval func(id int32) bool
	eval = func(id int32) bool {
		if id == 0 {
			return false
		}
		if g.IsCI(id) {
			return in[id]
		}
		f0, f1 := g.Fanins(id)
		return eval(f0.Node()) != f0.Compl() && eval(f1.Node()) != f1.Compl()
	}
	return eval(l.Node()) != l.Compl()
}

func TestAndRules(t *testing.T) {
	g := New("rules")
	a := g.AddPI("a")
	b := g.AddPI("b")
	ab := g.And(a, b)
	cases := []struct {
		name string
		got  Lit
		want Lit
	}{
		{"zero dominates", g.And(a, False), False},
		{"one is identity", g.And(True, b), b},
		{"idempotence", g.And(a, a), a},
		{"complement", g.And(a, a.Not()), False},
		{"commutativity", g.And(b, a), ab},
		{"containment", g.And(a, ab), ab},
		{"contradiction", g.And(a.Not(), ab), False},
		{"subsumption", g.And(a.Not(), ab.Not()), a.Not()},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	if g.NumAnds() != 1 {
		t.Errorf("rewrite rules leaked nodes: %d ANDs, want 1", g.NumAnds())
	}
	if g.StrashHits() == 0 {
		t.Error("no strash hits recorded")
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStrashSharing(t *testing.T) {
	g := New("strash")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(g.And(a, b), c)
	before := g.NumAnds()
	y := g.And(c, g.And(b, a)) // same function, different construction order
	if x != y {
		t.Fatalf("structural hashing missed: %v vs %v", x, y)
	}
	if g.NumAnds() != before {
		t.Fatalf("duplicate nodes created: %d, want %d", g.NumAnds(), before)
	}
}

func TestGateSemantics(t *testing.T) {
	g := New("sem")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ids := []int32{a.Node(), b.Node(), c.Node()}
	and, or, xor, mux := g.And(a, b), g.Or(a, b), g.Xor(a, b), g.Mux(a, b, c)
	for m := 0; m < 8; m++ {
		in := map[int32]bool{}
		for i, id := range ids {
			in[id] = m&(1<<i) != 0
		}
		va, vb, vc := in[ids[0]], in[ids[1]], in[ids[2]]
		checks := []struct {
			name string
			l    Lit
			want bool
		}{
			{"and", and, va && vb},
			{"or", or, va || vb},
			{"xor", xor, va != vb},
			{"mux", mux, (va && vb) || (!va && vc)},
		}
		for _, ch := range checks {
			if got := evalLit(g, ch.l, in); got != ch.want {
				t.Errorf("%s(%v,%v,%v) = %v, want %v", ch.name, va, vb, vc, got, ch.want)
			}
		}
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelsAndDepth(t *testing.T) {
	g := New("depth")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	d := g.AddPI("d")
	// Skewed chain: depth grows by one per AND.
	chain := g.And(g.And(g.And(a, b), c), d)
	if got := g.Level(chain.Node()); got != 3 {
		t.Errorf("chain level = %d, want 3", got)
	}
	g.AddPO("y", chain)
	if got := g.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
}

func TestSweepRemovesDeadNodes(t *testing.T) {
	g := New("sweep")
	a := g.AddPI("a")
	b := g.AddPI("b")
	q := g.AddLatch("q", network.V0)
	dead := g.And(g.And(a, b.Not()), q) // never referenced by an output
	_ = dead
	live := g.And(a, q)
	g.AddPO("y", live.Not())
	g.SetLatchNext(0, g.And(b, q.Not()))
	removed := g.Sweep()
	if removed != 2 {
		t.Fatalf("Sweep removed %d nodes, want 2", removed)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if g.NumAnds() != 2 {
		t.Fatalf("post-sweep ANDs = %d, want 2", g.NumAnds())
	}
	// The survivors must still compute the same functions.
	in := map[int32]bool{}
	for _, id := range g.pis {
		in[id] = true
	}
	in[g.latches[0].Out] = false
	if got := evalLit(g, g.pos[0].Lit, in); got != true {
		t.Errorf("post-sweep PO(a=1,q=0) = %v, want true", got)
	}
	if got := evalLit(g, g.latches[0].Next, in); got != true {
		t.Errorf("post-sweep next(b=1,q=0) = %v, want true", got)
	}
}

func TestCriticalNodes(t *testing.T) {
	g := New("crit")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	d := g.AddPI("d")
	deep := g.And(g.And(g.And(a, b), c), d) // levels 1,2,3
	shallow := g.And(a, d)                  // level 1, positive slack
	g.AddPO("deep", deep)
	g.AddPO("shallow", shallow)
	crit := g.CriticalNodes()
	// The deep chain's AND nodes (canonical fanin order may put the chain
	// parent in either fanin slot).
	want := map[int32]bool{}
	for l := deep; g.IsAnd(l.Node()); {
		want[l.Node()] = true
		f0, f1 := g.Fanins(l.Node())
		if g.IsAnd(f0.Node()) {
			l = f0
		} else {
			l = f1
		}
	}
	if len(crit) != len(want) {
		t.Fatalf("critical set %v, want the %d-node deep chain", crit, len(want))
	}
	for _, id := range crit {
		if !want[id] {
			t.Errorf("node %d (level %d) reported critical", id, g.Level(id))
		}
		if id == shallow.Node() {
			t.Error("shallow node reported critical")
		}
	}
}

func TestBalanceReducesDepth(t *testing.T) {
	g := New("bal")
	lits := make([]Lit, 8)
	for i := range lits {
		lits[i] = g.AddPI(string(rune('a' + i)))
	}
	// Worst-case skew: a linear chain of 8 leaves, depth 7. Balanced: 3.
	acc := lits[0]
	for _, l := range lits[1:] {
		acc = g.And(acc, l)
	}
	g.AddPO("y", acc)
	if g.Depth() != 7 {
		t.Fatalf("pre-balance depth = %d, want 7", g.Depth())
	}
	ng := g.Balance()
	if err := ng.Check(); err != nil {
		t.Fatal(err)
	}
	if ng.Depth() != 3 {
		t.Errorf("post-balance depth = %d, want 3", ng.Depth())
	}
	// Equivalence through the network converters.
	na, err := g.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ng.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := bitsim.RandomEquivalent(na, nb, 0, 64, 1, bitsim.Options{}); err != nil {
		t.Fatalf("balance changed the function: %v", err)
	}
}

func TestBalancePreservesSequential(t *testing.T) {
	src := bench.Synthetic(bench.Profile{Name: "balseq", PIs: 6, POs: 4, FFs: 5, Gates: 60, Seed: 11})
	g, err := FromNetwork(src)
	if err != nil {
		t.Fatal(err)
	}
	ng := g.Balance()
	if err := ng.Check(); err != nil {
		t.Fatal(err)
	}
	if ng.Depth() > g.Depth() {
		t.Errorf("balance increased depth: %d -> %d", g.Depth(), ng.Depth())
	}
	back, err := ng.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := bitsim.RandomEquivalent(src, back, 0, 200, 7, bitsim.Options{}); err != nil {
		t.Fatalf("balanced graph diverges from source: %v", err)
	}
}

func TestMapForDelay(t *testing.T) {
	src := bench.Synthetic(bench.Profile{Name: "lut", PIs: 8, POs: 6, FFs: 6, Gates: 120, Seed: 3})
	g, err := FromNetwork(src)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= MaxLutK; k++ {
		m, err := g.MapForDelay(k)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumLUTs() == 0 {
			t.Fatalf("k=%d: empty mapping for a %d-AND graph", k, g.NumAnds())
		}
		for _, lut := range m.LUTs {
			if len(lut.Leaves) > k {
				t.Fatalf("k=%d: LUT at %d has %d leaves", k, lut.Root, len(lut.Leaves))
			}
		}
		if int(m.Depth) > int(g.Depth()) {
			t.Errorf("k=%d: LUT depth %d exceeds AIG depth %d", k, m.Depth, g.Depth())
		}
		mapped, err := m.ToNetwork()
		if err != nil {
			t.Fatal(err)
		}
		if err := bitsim.RandomEquivalent(src, mapped, 0, 128, int64(k), bitsim.Options{}); err != nil {
			t.Fatalf("k=%d: mapped network diverges: %v", k, err)
		}
	}
	// Wider LUTs can only help depth.
	m4, _ := g.MapForDelay(4)
	m6, _ := g.MapForDelay(6)
	if m6.Depth > m4.Depth {
		t.Errorf("k=6 depth %d worse than k=4 depth %d", m6.Depth, m4.Depth)
	}
	if _, err := g.MapForDelay(1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := g.MapForDelay(7); err == nil {
		t.Error("k=7 accepted")
	}
}

func TestTtToCover(t *testing.T) {
	// Every 3-variable function: the extracted cover must evaluate back to
	// the truth table.
	for tt := uint64(0); tt < 256; tt++ {
		cov := ttToCover(tt, 3)
		for m := 0; m < 8; m++ {
			assign := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
			want := tt>>m&1 == 1
			got := false
			for _, cu := range cov.Cubes {
				if cu.Eval(assign) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("tt %02x minterm %d: cover says %v, table says %v", tt, m, got, want)
			}
		}
	}
}
