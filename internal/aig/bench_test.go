package aig

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/network"
)

// benchCircuit is an s5378-profile synthetic: the largest Table I row,
// big enough that strash, balance and cut enumeration dominate over
// per-call overhead.
func benchCircuit(b *testing.B) *network.Network {
	b.Helper()
	return bench.Synthetic(bench.Profile{
		Name: "aigbench", PIs: 35, POs: 49, FFs: 179, Gates: 2779, Seed: 5378,
	})
}

func BenchmarkFromNetwork(b *testing.B) {
	src := benchCircuit(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := FromNetwork(src)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(g.NumAnds()), "ands")
		}
	}
}

func BenchmarkSweepBalance(b *testing.B) {
	src := benchCircuit(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, err := FromNetwork(src)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		g.Sweep()
		bal := g.Balance()
		if i == 0 {
			b.ReportMetric(float64(bal.Depth()), "levels")
		}
	}
}

func BenchmarkMapForDelay(b *testing.B) {
	src := benchCircuit(b)
	g, err := FromNetwork(src)
	if err != nil {
		b.Fatal(err)
	}
	g.Sweep()
	bal := g.Balance()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bal.MapForDelay(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(m.NumLUTs()), "luts")
		}
	}
}
