package aig

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/network"
)

// This file implements the lossless converters between the SOP network
// substrate and the AIG. FromNetwork factors every node's sum-of-products
// cover into a balanced AND/OR tree (complemented edges absorb the
// inversions, strash recovers sharing across cubes and nodes); ToNetwork
// lowers every AND vertex to a two-input SOP node whose cube phases absorb
// the complemented edges, inserting explicit inverter or constant nodes
// only at complemented or constant outputs. Round-tripping preserves the
// PI/PO/latch interface and the sequential behaviour exactly (fuzz-tested
// against bitsim in convert_test.go).

// FromNetwork converts a Boolean network into a structurally hashed AIG.
// PIs, POs and latches keep their names and order; every logic node's SOP
// cover is factored cube by cube.
func FromNetwork(n *network.Network) (*Graph, error) {
	g := New(n.Name)
	lits := make(map[*network.Node]Lit, len(n.Nodes()))
	for _, pi := range n.PIs {
		lits[pi] = g.AddPI(pi.Name)
	}
	for _, l := range n.Latches {
		lits[l.Output] = g.AddLatch(l.Name, l.Init)
	}
	if err := g.buildLogic(n, lits); err != nil {
		return nil, fmt.Errorf("aig: FromNetwork: %w", err)
	}
	for _, po := range n.POs {
		l, ok := lits[po.Driver]
		if !ok {
			return nil, fmt.Errorf("aig: FromNetwork: PO %s driver not built", po.Name)
		}
		g.AddPO(po.Name, l)
	}
	for i, la := range n.Latches {
		l, ok := lits[la.Driver]
		if !ok {
			return nil, fmt.Errorf("aig: FromNetwork: latch %s driver not built", la.Name)
		}
		g.SetLatchNext(i, l)
	}
	return g, nil
}

// buildLogic factors every logic node of n into g in topological order,
// extending lits (which must already map every PI and latch output).
func (g *Graph) buildLogic(n *network.Network, lits map[*network.Node]Lit) error {
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	for _, v := range order {
		if v.Kind != network.KindLogic {
			continue
		}
		fanins := make([]Lit, len(v.Fanins))
		for i, fi := range v.Fanins {
			fl, ok := lits[fi]
			if !ok {
				return fmt.Errorf("fanin %s of %s not yet built", fi.Name, v.Name)
			}
			fanins[i] = fl
		}
		lits[v] = g.cover(v.Func, fanins)
	}
	return nil
}

// ProductPO pairs the two literals of one name-matched primary output in
// the joint graph built by FromProduct.
type ProductPO struct {
	Name string
	A, B Lit
}

// FromProduct builds one structurally hashed AIG containing both machines
// over shared primary inputs, matched by name with position as the
// fallback — the same matching seqverify uses. a's latches come first,
// then b's: graph latch index i < len(a.Latches) is a's latch i and index
// len(a.Latches)+j is b's latch j. Every PO of a must have a name-matched
// partner in b; each pair is returned as a literal pair and also added as
// graph POs "a/<name>" and "b/<name>" so both cones stay alive.
//
// Strashing across the two halves is deliberate: structurally identical
// cones collapse onto one node, which is exactly what makes the product
// cheap to sweep when b is a resynthesized version of a.
func FromProduct(a, b *network.Network) (*Graph, []ProductPO, error) {
	if len(a.PIs) != len(b.PIs) {
		return nil, nil, fmt.Errorf("aig: FromProduct: PI counts differ (%d vs %d)", len(a.PIs), len(b.PIs))
	}
	g := New(a.Name + "*" + b.Name)
	litsA := make(map[*network.Node]Lit, len(a.Nodes()))
	litsB := make(map[*network.Node]Lit, len(b.Nodes()))
	piLits := make([]Lit, len(a.PIs))
	aPIByName := make(map[string]int, len(a.PIs))
	for i, pi := range a.PIs {
		piLits[i] = g.AddPI(pi.Name)
		litsA[pi] = piLits[i]
		aPIByName[pi.Name] = i
	}
	for i, pi := range b.PIs {
		j, ok := aPIByName[pi.Name]
		if !ok {
			j = i
		}
		litsB[pi] = piLits[j]
	}
	for _, l := range a.Latches {
		litsA[l.Output] = g.AddLatch("a/"+l.Name, l.Init)
	}
	for _, l := range b.Latches {
		litsB[l.Output] = g.AddLatch("b/"+l.Name, l.Init)
	}
	if err := g.buildLogic(a, litsA); err != nil {
		return nil, nil, fmt.Errorf("aig: FromProduct: %s: %w", a.Name, err)
	}
	if err := g.buildLogic(b, litsB); err != nil {
		return nil, nil, fmt.Errorf("aig: FromProduct: %s: %w", b.Name, err)
	}
	for i, la := range a.Latches {
		l, ok := litsA[la.Driver]
		if !ok {
			return nil, nil, fmt.Errorf("aig: FromProduct: latch %s driver not built", la.Name)
		}
		g.SetLatchNext(i, l)
	}
	for j, lb := range b.Latches {
		l, ok := litsB[lb.Driver]
		if !ok {
			return nil, nil, fmt.Errorf("aig: FromProduct: latch %s driver not built", lb.Name)
		}
		g.SetLatchNext(len(a.Latches)+j, l)
	}
	var pairs []ProductPO
	for _, pa := range a.POs {
		var pb *network.PO
		for _, q := range b.POs {
			if q.Name == pa.Name {
				pb = q
				break
			}
		}
		if pb == nil {
			return nil, nil, fmt.Errorf("aig: FromProduct: PO %q missing in %s", pa.Name, b.Name)
		}
		la, ok := litsA[pa.Driver]
		if !ok {
			return nil, nil, fmt.Errorf("aig: FromProduct: PO %s driver not built", pa.Name)
		}
		lb, ok := litsB[pb.Driver]
		if !ok {
			return nil, nil, fmt.Errorf("aig: FromProduct: PO %s driver not built", pb.Name)
		}
		g.AddPO("a/"+pa.Name, la)
		g.AddPO("b/"+pa.Name, lb)
		pairs = append(pairs, ProductPO{Name: pa.Name, A: la, B: lb})
	}
	return g, pairs, nil
}

// cover factors a SOP cover over the given fanin literals: each cube is a
// balanced conjunction of its literals, the cover a balanced disjunction
// of its cubes. The zero-cube cover is constant 0; a universal cube makes
// the result constant 1.
func (g *Graph) cover(f *logic.Cover, fanins []Lit) Lit {
	terms := make([]Lit, 0, len(f.Cubes))
	for _, c := range f.Cubes {
		var cl []Lit
		contradictory := false
		for v := 0; v < f.N; v++ {
			switch c.Lit(v) {
			case logic.LitPos:
				cl = append(cl, fanins[v])
			case logic.LitNeg:
				cl = append(cl, fanins[v].Not())
			case logic.LitNone:
				contradictory = true
			}
		}
		if contradictory {
			continue
		}
		terms = append(terms, g.reduce(cl, g.And, True))
	}
	ors := g.reduce(terms, g.Or, False)
	return ors
}

// reduce combines terms with op into a depth-balanced tree: at every step
// the two shallowest intermediate results merge first (Huffman order), so
// the result's level is optimal for the given leaves. identity is returned
// for an empty term list.
func (g *Graph) reduce(terms []Lit, op func(a, b Lit) Lit, identity Lit) Lit {
	switch len(terms) {
	case 0:
		return identity
	case 1:
		return terms[0]
	}
	work := append([]Lit(nil), terms...)
	for len(work) > 1 {
		// Selection by level keeps the tree balanced; a stable sort keeps
		// the combine order (and thus the node numbering) deterministic.
		sort.SliceStable(work, func(i, j int) bool {
			return g.levels[work[i].Node()] < g.levels[work[j].Node()]
		})
		work = append(work[2:], op(work[0], work[1]))
	}
	return work[0]
}

// ToNetwork lowers the AIG back to a Boolean network in the compact form:
// one two-input AND node per AND vertex whose cube phases absorb
// complemented fanin edges, plus an inverter node per complemented output
// literal and a constant node per constant output. The PI/PO/latch
// interface keeps names, order and initial values.
func (g *Graph) ToNetwork() (*network.Network, error) {
	return g.lower(false)
}

// ToSubjectNetwork lowers the AIG into a mapper-ready subject graph:
// positive two-input AND nodes only, with every complemented edge
// materialized as a shared inverter node — the node shapes the genlib
// matcher and algebraic.DecomposeBalanced agree on. Functionally identical
// to ToNetwork, just a different structural style.
func (g *Graph) ToSubjectNetwork() (*network.Network, error) {
	return g.lower(true)
}

func (g *Graph) lower(subject bool) (*network.Network, error) {
	n := network.New(g.Name)
	nodeOf := make([]*network.Node, len(g.nodes))
	for i, id := range g.pis {
		nodeOf[id] = n.AddPI(g.piNames[i])
	}
	lats := make([]*network.Latch, len(g.latches))
	for i, la := range g.latches {
		lats[i] = n.AddLatch(la.Name, nil, la.Init)
		nodeOf[la.Out] = lats[i].Output
	}
	// One shared inverter per complemented node, one node per constant.
	invOf := make(map[int32]*network.Node)
	consts := make(map[bool]*network.Node)
	edge := func(l Lit) *network.Node {
		if l.Node() == 0 {
			one := l == True
			if d, ok := consts[one]; ok {
				return d
			}
			d := n.AddConst(fmt.Sprintf("const%d", l&1), one)
			consts[one] = d
			return d
		}
		base := nodeOf[l.Node()]
		if !l.Compl() {
			return base
		}
		if d, ok := invOf[l.Node()]; ok {
			return d
		}
		d := n.AddLogic(fmt.Sprintf("inv%d", l.Node()),
			[]*network.Node{base}, logic.MustParseCover(1, "0"))
		invOf[l.Node()] = d
		return d
	}
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if !g.IsAnd(id) {
			continue
		}
		f0, f1 := g.nodes[id].f0, g.nodes[id].f1
		if nodeOf[f0.Node()] == nil || nodeOf[f1.Node()] == nil {
			return nil, fmt.Errorf("aig: ToNetwork: node %d fanin not built", id)
		}
		var fanins []*network.Node
		var cover *logic.Cover
		if subject {
			fanins = []*network.Node{edge(f0), edge(f1)}
			cover = logic.MustParseCover(2, "11")
		} else {
			fanins = []*network.Node{nodeOf[f0.Node()], nodeOf[f1.Node()]}
			cover = logic.MustParseCover(2, fmt.Sprintf("%c%c", phaseChar(f0), phaseChar(f1)))
		}
		nodeOf[id] = n.AddLogic(fmt.Sprintf("a%d", id), fanins, cover)
	}
	for _, po := range g.pos {
		n.AddPO(po.Name, edge(po.Lit))
	}
	for i, la := range g.latches {
		lats[i].Driver = edge(la.Next)
	}
	if err := n.Check(); err != nil {
		return nil, fmt.Errorf("aig: ToNetwork produced an invalid network: %w", err)
	}
	return n, nil
}

// phaseChar renders a fanin edge as its cube literal character.
func phaseChar(l Lit) byte {
	if l.Compl() {
		return '0'
	}
	return '1'
}
