package aig

// Balance rebuilds the graph with depth-optimal AND trees: every maximal
// multi-input conjunction (a tree of single-fanout, positive-phase AND
// edges) is re-associated so its shallowest leaves combine first. The
// rebuild runs through And, so strash sharing and the rewrite rules apply
// again across the restructured trees; combined with the exact levels this
// is the AIG counterpart of the SOP path's depth-driven resynthesis.
//
// The receiver is unchanged; Balance returns a new graph with the same
// PI/PO/latch interface. Node numbering in the result is deterministic.
func (g *Graph) Balance() *Graph {
	ng := New(g.Name)
	// old2new[id] is the positive-phase literal of old node id in ng.
	old2new := make([]Lit, len(g.nodes))
	built := make([]bool, len(g.nodes))
	old2new[0], built[0] = False, true
	for i, id := range g.pis {
		old2new[id], built[id] = ng.AddPI(g.piNames[i]), true
	}
	for _, la := range g.latches {
		old2new[la.Out], built[la.Out] = ng.AddLatch(la.Name, la.Init), true
	}

	// Fanout counts decide tree boundaries: a shared conjunction stays a
	// node of its own so the sharing survives.
	refs := make([]int32, len(g.nodes))
	for id := int32(1); id < int32(len(g.nodes)); id++ {
		if g.IsAnd(id) {
			refs[g.nodes[id].f0.Node()]++
			refs[g.nodes[id].f1.Node()]++
		}
	}
	for _, o := range g.outputs() {
		refs[o.Node()]++
	}

	var build func(id int32) Lit
	// leavesOf collects the conjunction leaves of the AND tree rooted at id,
	// absorbing positive-phase single-fanout AND fanins into the product.
	leavesOf := func(id int32) []Lit {
		var leaves []Lit
		stack := []Lit{g.nodes[id].f0, g.nodes[id].f1}
		for len(stack) > 0 {
			l := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := l.Node()
			if !l.Compl() && g.IsAnd(n) && refs[n] == 1 {
				stack = append(stack, g.nodes[n].f0, g.nodes[n].f1)
				continue
			}
			leaves = append(leaves, build(n).NotIf(l.Compl()))
		}
		return leaves
	}
	build = func(id int32) Lit {
		if built[id] {
			return old2new[id]
		}
		old2new[id] = ng.reduce(leavesOf(id), ng.And, True)
		built[id] = true
		return old2new[id]
	}
	relit := func(l Lit) Lit { return build(l.Node()).NotIf(l.Compl()) }

	for _, po := range g.pos {
		ng.AddPO(po.Name, relit(po.Lit))
	}
	for i, la := range g.latches {
		ng.SetLatchNext(i, relit(la.Next))
	}
	return ng
}
