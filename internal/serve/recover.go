package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// RecoveryStats summarizes what boot replay found in the durable log.
type RecoveryStats struct {
	// Snapshot is the number of jobs loaded from the compaction snapshot.
	Snapshot int
	// Replayed is the number of WAL records applied on top.
	Replayed int
	// Dropped counts torn or corrupt trailing WAL lines that were
	// discarded (data past the last durable point).
	Dropped int
	// Terminal and Requeued partition the recovered jobs: terminal ones
	// repopulate the result cache, interrupted ones go back on the queue.
	Terminal int
	Requeued int
}

func (r RecoveryStats) String() string {
	return fmt.Sprintf("snapshot=%d replayed=%d dropped=%d terminal=%d requeued=%d",
		r.Snapshot, r.Replayed, r.Dropped, r.Terminal, r.Requeued)
}

// Recovery reports the boot replay of the last New (zero without DataDir).
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// foldLog replays recs over the snapshot state, returning the folded job
// states in submission order. Records are idempotent state-setters, so
// records already folded into the snapshot (a crash between snapshot
// rename and segment removal) replay harmlessly. Both boot recovery and
// log compaction reduce through this one function, which is what makes
// "compact then crash" and "crash then replay" reach the same state.
func foldLog(snap []snapJob, recs []walRecord) (map[string]*snapJob, []string) {
	states := make(map[string]*snapJob, len(snap))
	var order []string
	for i := range snap {
		sj := snap[i]
		if _, ok := states[sj.ID]; ok {
			continue // defend against a duplicated snapshot entry
		}
		states[sj.ID] = &sj
		order = append(order, sj.ID)
	}
	for _, rec := range recs {
		switch rec.Type {
		case "submitted":
			if _, ok := states[rec.ID]; ok || rec.Req == nil {
				continue
			}
			states[rec.ID] = &snapJob{ID: rec.ID, Req: *rec.Req, State: StateQueued, Created: rec.Time}
			order = append(order, rec.ID)
		case "running":
			if sj, ok := states[rec.ID]; ok && !sj.State.terminal() {
				sj.State = StateRunning
				sj.Started = rec.Time
			}
		case "requeued":
			if sj, ok := states[rec.ID]; ok {
				*sj = snapJob{ID: sj.ID, Req: sj.Req, State: StateQueued, Created: sj.Created}
			}
		case "done":
			if sj, ok := states[rec.ID]; ok {
				sj.State = StateDone
				sj.Started, sj.Finished = rec.Started, rec.Time
				sj.Result, sj.Netlist = rec.Result, rec.Netlist
				sj.Error, sj.Class = "", ""
				sj.Attempts, sj.Events = rec.Attempts, rec.Events
			}
		case "failed":
			if sj, ok := states[rec.ID]; ok {
				sj.State = StateFailed
				sj.Started, sj.Finished = rec.Started, rec.Time
				sj.Result, sj.Netlist = nil, ""
				sj.Error, sj.Class = rec.Error, rec.Class
				sj.Attempts, sj.Events = rec.Attempts, rec.Events
			}
		case "evicted":
			if _, ok := states[rec.ID]; ok {
				delete(states, rec.ID)
				// Drop the id from order too: a later re-submission of the
				// same request appends it afresh, and a stale entry would
				// duplicate the job in the snapshot and in recovery.
				order = removeID(order, rec.ID)
			}
		}
	}
	return states, order
}

// removeID deletes the first occurrence of id from order.
func removeID(order []string, id string) []string {
	for i, o := range order {
		if o == id {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// orderedSnap flattens folded states into snapshot order, skipping evicted
// entries.
func orderedSnap(states map[string]*snapJob, order []string) []snapJob {
	out := make([]snapJob, 0, len(states))
	for _, id := range order {
		if sj, ok := states[id]; ok {
			out = append(out, *sj)
		}
	}
	return out
}

// recover loads the snapshot and WAL from cfg.DataDir, rebuilds the job
// map (preserving submission order), re-enqueues jobs that were queued or
// running at crash time, and reopens the log for appending. Terminal jobs
// come back with their results, so the content-addressed cache — and its
// hit rate — survives the restart. Boot also folds whatever it replayed
// into a fresh snapshot and starts an empty log, so every boot begins
// compacted and a half-finished compaction (sealed segment left behind)
// is healed here.
func (s *Server) recover() error {
	dir := s.cfg.DataDir
	snap, recs, dropped, err := loadLog(dir)
	if err != nil {
		return fmt.Errorf("serve: recovery: %w", err)
	}
	now := time.Now()
	st := RecoveryStats{Snapshot: len(snap), Replayed: len(recs), Dropped: dropped}

	states, order := foldLog(snap, recs)

	if len(recs) > 0 {
		// Boot compaction: persist the folded state and retire both log
		// segments. Crash-ordering: the snapshot lands (atomically) before
		// any segment is removed, so every intermediate state replays to
		// the same fold.
		if err := writeSnapshot(dir, orderedSnap(states, order)); err != nil {
			return fmt.Errorf("serve: recovery: %w", err)
		}
		os.Remove(filepath.Join(dir, walOldName))
		os.Remove(filepath.Join(dir, walFileName))
		syncDir(dir)
	}

	var requeue []*Job
	s.mu.Lock()
	for _, id := range order {
		sj, ok := states[id]
		if !ok {
			continue // evicted
		}
		j := newRecoveredJob(*sj, now)
		s.jobs[id] = j
		s.order = append(s.order, id)
		if j.State() == StateQueued {
			requeue = append(requeue, j)
			st.Requeued++
		} else {
			st.Terminal++
		}
	}
	s.mu.Unlock()

	// Reopen the log for appending before re-running anything, so the
	// re-runs' transitions are themselves durable.
	w, err := openWAL(dir, s.cfg.Chaos)
	if err != nil {
		return fmt.Errorf("serve: recovery: %w", err)
	}
	s.wal = w

	// Re-enqueue interrupted jobs in their original submission order. The
	// blocking Submit pushes an arbitrary backlog through the bounded
	// queue: the workers are already draining it.
	for _, j := range requeue {
		s.mRecovered.Inc()
		if !s.pool.Submit(func() { s.runJob(j) }) {
			break // pool closed mid-boot (shutdown race); jobs stay queued
		}
	}
	s.recovery = st
	return nil
}
