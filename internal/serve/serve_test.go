package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/guard"
	"repro/internal/obs"
)

func circuitBLIF(t *testing.T, name string) string {
	t.Helper()
	c, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("no bench circuit %q", name)
	}
	n, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := blif.Write(&b, n); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, url string, req Request) (JobInfo, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info JobInfo
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info, resp.StatusCode
}

func waitDone(t *testing.T, url, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.State.terminal() {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobInfo{}
}

// readSSE consumes the event stream until the final done frame, returning
// the data payloads of the regular frames and the done summary.
func readSSE(t *testing.T, url, id string) (events []obs.Event, done JobInfo) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	inDone := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			inDone = true
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			if inDone {
				if err := json.Unmarshal([]byte(payload), &done); err != nil {
					t.Fatalf("bad done frame %q: %v", payload, err)
				}
				return events, done
			}
			var e obs.Event
			if err := json.Unmarshal([]byte(payload), &e); err != nil {
				t.Fatalf("bad event frame %q: %v", payload, err)
			}
			events = append(events, e)
		}
	}
	t.Fatalf("SSE stream for %s ended without a done frame: %v", id, sc.Err())
	return nil, JobInfo{}
}

func TestServeJobLifecycleAndCache(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, Version: "test"})
	src := circuitBLIF(t, "s27")

	req := Request{Netlist: src, Flow: "script", Verify: true}
	info, status := postJob(t, ts.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("fresh submission status = %d, want 202", status)
	}
	if info.Cached {
		t.Fatal("fresh submission must not report cached")
	}
	if info.ID != req.normalized().Key() {
		t.Fatalf("job id %q is not the request content hash", info.ID)
	}

	final := waitDone(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("job failed: %+v", final)
	}
	if final.Result == nil || final.Result.Regs <= 0 || final.Result.Clk <= 0 {
		t.Fatalf("missing result metrics: %+v", final.Result)
	}
	if final.Result.Verify != "exact" && final.Result.Verify != "simulated" {
		t.Fatalf("verify method = %q", final.Result.Verify)
	}

	// The result endpoint serves parseable BLIF.
	resp, err := http.Get(ts.URL + "/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	out, err := readAll(resp)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %d %v", resp.StatusCode, err)
	}
	if _, err := blif.ParseString(out); err != nil {
		t.Fatalf("result is not BLIF: %v", err)
	}

	// Second identical submission: cache hit, same job, 200.
	again, status := postJob(t, ts.URL, req)
	if status != http.StatusOK || !again.Cached || again.ID != info.ID {
		t.Fatalf("repeat submission: status=%d cached=%v id=%s (want 200/true/%s)",
			status, again.Cached, again.ID, info.ID)
	}

	// A different flow is a different key.
	other, _ := postJob(t, ts.URL, Request{Netlist: src, Flow: "core"})
	if other.ID == info.ID {
		t.Fatal("different flow must hash to a different job")
	}
	waitDone(t, ts.URL, other.ID)
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var b strings.Builder
	_, err := bufio.NewReader(resp.Body).WriteTo(&b)
	return b.String(), err
}

// normalized is a test helper mirroring Submit's normalization so the test
// can predict the content hash.
func (r Request) normalized() Request {
	r.normalize()
	return r
}

func TestServeConcurrentJobsWithSSE(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 4})
	circuits := []string{"bbtas", "s27", "ex6", "ex2"}

	// Submit all four before reading any stream: the pool runs them
	// concurrently while each SSE reader tails its own job.
	ids := make([]string, len(circuits))
	for i, name := range circuits {
		info, status := postJob(t, ts.URL, Request{Netlist: circuitBLIF(t, name), Flow: "script"})
		if status != http.StatusAccepted {
			t.Fatalf("%s: status %d", name, status)
		}
		ids[i] = info.ID
	}
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(name, id string) {
			defer wg.Done()
			events, done := readSSE(t, ts.URL, id)
			if done.State != StateDone {
				t.Errorf("%s: final state %s (%s)", name, done.State, done.Error)
				return
			}
			var starts, ends int
			for _, e := range events {
				switch e.Ev {
				case "span_start":
					starts++
				case "span_end":
					ends++
				}
			}
			if starts == 0 || ends == 0 {
				t.Errorf("%s: stream carried no per-pass progress (%d events)", name, len(events))
			}
		}(circuits[i], ids[i])
	}
	wg.Wait()

	// Late subscriber: all jobs are finished, yet the stream replays the
	// full history before the done frame.
	events, done := readSSE(t, ts.URL, ids[0])
	if len(events) == 0 || done.State != StateDone {
		t.Fatalf("late subscriber got %d events, state %s", len(events), done.State)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	cases := []Request{
		{Netlist: "", Flow: "script"},
		{Netlist: "this is not blif", Flow: "script"},
		{Netlist: circuitBLIF(t, "s27"), Flow: "nope"},
		{Netlist: ".i 2\n.o 1\ngarbage", Format: "kiss2"},
		{Netlist: circuitBLIF(t, "s27"), Format: "verilog"},
		{Netlist: circuitBLIF(t, "s27"), Flow: "script", Workers: -1},
		{Netlist: circuitBLIF(t, "s27"), Flow: "script", Workers: maxRequestWorkers + 1},
	}
	for i, req := range cases {
		if _, status := postJob(t, ts.URL, req); status != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, status)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status = %d, want 404", resp.StatusCode)
	}
}

func TestServeShedsWhenPoolClosed(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	s.Close() // no workers left: TrySubmit must refuse, POST must shed
	_, status := postJob(t, ts.URL, Request{Netlist: circuitBLIF(t, "s27"), Flow: "script"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
}

func TestServeMetricsAndHealthz(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, Version: "v-test"})
	info, _ := postJob(t, ts.URL, Request{Netlist: circuitBLIF(t, "bbtas"), Flow: "script"})
	waitDone(t, ts.URL, info.ID)
	postJob(t, ts.URL, Request{Netlist: circuitBLIF(t, "bbtas"), Flow: "script"}) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"resynd_jobs_submitted_total 2",
		"resynd_cache_hits_total 1",
		`resynd_jobs_completed_total{state="done"} 1`,
		"resynd_job_seconds_bucket",
		`resynd_http_requests_total{route="post_jobs"}`,
		"resyn_span_seconds_bucket",
		"go_goroutines",
		"go_heap_objects_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string         `json:"status"`
		Version string         `json:"version"`
		Jobs    map[string]int `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Version != "v-test" || hz.Jobs["done"] != 1 {
		t.Fatalf("healthz = %+v", hz)
	}
}

func TestServeSubstrateAIG(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2})
	src := circuitBLIF(t, "bbtas")

	sop := Request{Netlist: src, Flow: "script", Verify: true}
	aig := Request{Netlist: src, Flow: "script", Substrate: "aig", Verify: true}
	if sop.normalized().Key() == aig.normalized().Key() {
		t.Fatal("substrate must participate in the job content hash")
	}
	explicit := Request{Netlist: src, Flow: "script", Substrate: "sop", Verify: true}
	if sop.normalized().Key() != explicit.normalized().Key() {
		t.Fatal("explicit sop and the default must hash to the same job")
	}
	wide := Request{Netlist: src, Flow: "script", Substrate: "aig", Verify: true, Workers: 4}
	if wide.normalized().Key() == aig.normalized().Key() {
		t.Fatal("workers must participate in the job content hash")
	}

	info, status := postJob(t, ts.URL, aig)
	if status != http.StatusAccepted {
		t.Fatalf("aig submission status = %d, want 202", status)
	}
	final := waitDone(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("aig job failed: %+v", final)
	}
	if final.Result == nil || final.Result.Verify == "skipped" {
		t.Fatalf("aig job result not verified: %+v", final.Result)
	}

	// The substrate counters crossed the per-job tracer's registry bridge
	// into the Prometheus exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`resyn_counter_total{counter="aig_nodes"}`,
		`resyn_counter_total{counter="aig_strash_hits"}`,
		`resyn_counter_total{counter="aig_levels"}`,
		`resyn_counter_total{counter="aig_rewrite_gain"}`,
		`resyn_counter_total{counter="aig_cuts_pruned"}`,
		`resyn_counter_total{counter="aig_wave_count"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// An unknown substrate is a permanent validation failure.
	bad := Request{Netlist: src, Flow: "script", Substrate: "bdd"}
	if _, status := postJob(t, ts.URL, bad); status != http.StatusBadRequest {
		t.Fatalf("unknown substrate status = %d, want 400", status)
	}
}

func TestServeJobFailureIsReported(t *testing.T) {
	// A pass budget of one nanosecond exhausts immediately: the job must
	// land in failed with a budget error, not hang or crash.
	_, ts := startServer(t, Config{Workers: 1, Budget: guard.Budget{Pass: time.Nanosecond}})
	info, status := postJob(t, ts.URL, Request{Netlist: circuitBLIF(t, "s27"), Flow: "script"})
	if status != http.StatusAccepted {
		t.Fatalf("status %d", status)
	}
	final := waitDone(t, ts.URL, info.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("want failed job with error, got %+v", final)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed job result status = %d, want 409", resp.StatusCode)
	}
}

func TestLoadGenSmoke(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 4})
	var logBuf bytes.Buffer
	rep, err := RunLoad(LoadConfig{
		Target:   ts.URL,
		QPS:      50,
		Duration: 300 * time.Millisecond,
		Circuits: []string{"bbtas", "s27"},
		Flow:     "script",
		Log:      &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != LoadSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Submitted == 0 || rep.Completed == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d jobs failed: %s", rep.Failed, logBuf.String())
	}
	// Two distinct circuits cycled >2 times: everything after the first
	// two submissions is a cache hit.
	if rep.Submitted > 4 && rep.CacheHits == 0 {
		t.Fatalf("no cache hits across %d submissions of 2 circuits", rep.Submitted)
	}
	if rep.LatencyMsP50 <= 0 || rep.LatencyMsP99 < rep.LatencyMsP50 {
		t.Fatalf("implausible latency percentiles: %+v", rep)
	}
	if rep.JobsPerSec <= 0 {
		t.Fatalf("jobs/sec = %v", rep.JobsPerSec)
	}
}
