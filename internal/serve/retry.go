package serve

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
)

// RetryPolicy governs re-execution of transiently failed work: capped
// exponential backoff with full jitter. The same policy is shared by the
// server's job retry loop and the loadgen client's 503 handling, so the
// two sides of the connection back off in the same shape.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt (so Max=2
	// allows 3 attempts). <0 disables retries; 0 takes the default.
	Max int
	// Base is the first backoff ceiling; attempt n draws uniformly from
	// [0, min(Cap, Base*2^n)] (full jitter).
	Base time.Duration
	// Cap bounds the backoff ceiling.
	Cap time.Duration
	// Seed makes the jitter deterministic (0: seeded from the default).
	Seed int64
}

// DefaultRetryPolicy is the served default: up to 2 retries, 25ms base,
// 1s cap.
var DefaultRetryPolicy = RetryPolicy{Max: 2, Base: 25 * time.Millisecond, Cap: time.Second}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max == 0 {
		p.Max = DefaultRetryPolicy.Max
	}
	if p.Max < 0 {
		p.Max = 0
	}
	if p.Base <= 0 {
		p.Base = DefaultRetryPolicy.Base
	}
	if p.Cap <= 0 {
		p.Cap = DefaultRetryPolicy.Cap
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Backoff returns the sleep before retry number attempt (0-based): a
// uniform draw from [0, min(Cap, Base<<attempt)].
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	ceil := p.Base
	for i := 0; i < attempt && ceil < p.Cap; i++ {
		ceil *= 2
	}
	if ceil > p.Cap {
		ceil = p.Cap
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(ceil) + 1))
}

// backoff draws from the server's jitter RNG.
func (s *Server) backoff(attempt int) time.Duration {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.cfg.Retry.Backoff(attempt, s.rng)
}

// runJob executes one job on a pool worker: attempts run under the job
// deadline with panic containment; transient failures (deadline, contained
// panic, cancellation) are retried with capped backoff up to the policy
// budget, permanent ones (parse, invariant, verify mismatch) fail
// immediately. The terminal WAL record is synced *before* the job is
// published as terminal, so any state a client can observe as finished is
// also the state a crash recovers.
func (s *Server) runJob(j *Job) {
	start := time.Now()
	j.setRunning(start)
	s.logAsync(walRecord{Type: "running", ID: j.ID, Time: start})

	var (
		res     *JobResult
		netlist string
		err     error
		attempt int
	)
	for {
		res, netlist, err = s.attempt(j, attempt)
		if err == nil {
			break
		}
		if guard.Classify(err) != guard.ErrClassTransient ||
			attempt >= s.cfg.Retry.Max ||
			s.draining.Load() || s.crashed.Load() {
			break
		}
		s.mRetries.Inc()
		j.append(obs.Event{Ev: "event", Name: "job_retry", Fields: map[string]any{
			"attempt": attempt + 1, "error": err.Error(),
		}})
		select {
		case <-time.After(s.backoff(attempt)):
		case <-s.baseCtx.Done():
			// Crash or hard stop mid-backoff: record what we have.
			attempt++
			goto settle
		}
		attempt++
	}
settle:
	dur := time.Since(start)
	s.mJobSec.Observe(dur.Seconds())
	now := time.Now()
	class := guard.Classify(err)
	rec := walRecord{ID: j.ID, Time: now, Started: start, Attempts: attempt + 1, Events: j.eventCount()}
	if err != nil {
		rec.Type, rec.Error, rec.Class = "failed", err.Error(), class.String()
		s.mFailed.Inc()
	} else {
		rec.Type, rec.Result, rec.Netlist = "done", res, netlist
		s.mDone.Inc()
	}
	durable := s.logRecord(rec) == nil && s.wal != nil
	j.finish(now, res, netlist, err, class, attempt+1, durable)
}

// eventCount reports the job's event count at terminal-record time. The
// final job_done/job_failed tracer event has already been appended by the
// attempt, so this count matches what Info reports once the job finishes —
// which is what keeps a recovered job's Info byte-identical.
func (j *Job) eventCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.eventsBase + len(j.events)
}

// logAsync appends rec without failing the job on error (running markers
// are advisory; the submitted record already guarantees recovery).
func (s *Server) logAsync(rec walRecord) {
	s.logRecord(rec)
}

// attempt runs one execution attempt under a fresh tracer and job context,
// with service-level chaos injection (slow pass, forced panic, exhausted
// deadline) realized inside guard containment so an injected panic becomes
// a typed transient error.
func (s *Server) attempt(j *Job, attempt int) (res *JobResult, netlist string, err error) {
	tr := obs.New()
	tr.SetRegistry(s.reg)
	cancelRec := tr.SubscribeFunc(j.append)
	defer cancelRec()

	ctx, cancel := s.cfg.Budget.JobContext(s.baseCtx)
	defer cancel()

	fault := guard.FaultNone
	if s.cfg.Chaos != nil {
		if d := s.cfg.Chaos.JobDelay(j.ID); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		fault = s.cfg.Chaos.JobFault(j.ID)
		if fault == guard.FaultDeadline {
			dctx, dcancel := context.WithCancelCause(ctx)
			dcancel(guard.BudgetErr("serve.chaos", fmt.Errorf("injected job deadline: %w", context.DeadlineExceeded)))
			defer dcancel(nil)
			ctx = dctx
		}
	}

	gerr := guard.Run(ctx, "serve.job", nil, func(ctx context.Context) error {
		if fault == guard.FaultPanic {
			panic("serve: injected job panic")
		}
		r, n, e := s.execute(ctx, j, tr)
		res, netlist = r, n
		return e
	})
	if gerr != nil {
		tr.Event("job_failed", map[string]any{
			"error": gerr.Error(), "class": guard.Classify(gerr).String(), "attempt": attempt + 1,
		})
		return nil, "", gerr
	}
	tr.Event("job_done", map[string]any{"clk": res.Clk, "regs": res.Regs, "verify": res.Verify})
	return res, netlist, nil
}
