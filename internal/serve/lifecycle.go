package serve

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// StartDrain flips the server into draining mode: new submissions are
// refused with 503 + Retry-After, SSE subscribers receive a final
// `shutdown` frame and are disconnected, and in-flight jobs keep running.
// Idempotent. The HTTP front end calls it on SIGTERM before shutting its
// listener down, so load balancers see the refusals while existing
// connections finish.
func (s *Server) StartDrain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully stops the server: drain (if not already draining),
// wait for queued and in-flight jobs up to the context deadline, then
// fsync and close the WAL. It reports nil when every job finished, or
// ctx.Err() when the deadline cut the wait short (the WAL is still synced
// with whatever was recorded, so an unfinished job replays on next boot).
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDrain()
	stopJanitor(s)
	drained := s.pool.CloseWait(ctx)
	if s.wal != nil {
		s.wal.Close()
	}
	if !drained {
		return ctx.Err()
	}
	return nil
}

// Close keeps the historical blocking contract: drain with no deadline.
func (s *Server) Close() {
	s.Shutdown(context.Background())
}

// Crash simulates a kill -9 for the chaos harness: job execution is
// cancelled, the WAL discards everything past its last fsync (exactly the
// post-crash disk state), and nothing is flushed or drained. The server
// object is dead afterwards; recovery happens by New-ing a fresh server on
// the same DataDir.
func (s *Server) Crash() {
	if !s.crashed.CompareAndSwap(false, true) {
		return
	}
	s.draining.Store(true)
	s.baseCancel()
	stopJanitor(s)
	if s.wal != nil {
		s.wal.Crash()
	}
}

func stopJanitor(s *Server) {
	s.janitorOnce.Do(func() { close(s.janitorStop) })
	<-s.janitorDone
}

// janitor is the background retention loop: TTL eviction and WAL
// compaction on a coarse tick. LRU (MaxJobs) eviction additionally runs
// inline on every accepted submission, so the bound holds under bursts
// faster than the tick.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.evictExpired()
			s.maybeCompact()
		}
	}
}

// evictOverflow enforces MaxJobs: while the map is over budget, the least
// recently touched terminal job is evicted. Non-terminal jobs are never
// evicted, so a map full of active work is allowed to exceed the bound
// until jobs finish.
func (s *Server) evictOverflow() {
	max := s.cfg.MaxJobs
	if max <= 0 {
		return
	}
	for {
		s.mu.Lock()
		if len(s.jobs) <= max {
			s.mu.Unlock()
			return
		}
		victim := ""
		var oldest time.Time
		for id, j := range s.jobs {
			terminal, touched, _ := j.lruKey()
			if !terminal {
				continue
			}
			if victim == "" || touched.Before(oldest) {
				victim, oldest = id, touched
			}
		}
		if victim == "" {
			s.mu.Unlock()
			return // nothing evictable yet
		}
		s.removeLocked(victim)
		s.mu.Unlock()
		s.mEvictLRU.Inc()
		s.logRecord(walRecord{Type: "evicted", ID: victim, Time: time.Now(), Reason: "lru"})
	}
}

// evictExpired enforces JobTTL: terminal jobs older than the TTL are
// evicted in finish order.
func (s *Server) evictExpired() {
	ttl := s.cfg.JobTTL
	if ttl <= 0 {
		return
	}
	cutoff := time.Now().Add(-ttl)
	var victims []string
	s.mu.Lock()
	for id, j := range s.jobs {
		if terminal, _, finished := j.lruKey(); terminal && finished.Before(cutoff) {
			victims = append(victims, id)
		}
	}
	sort.Strings(victims) // deterministic record order
	for _, id := range victims {
		s.removeLocked(id)
	}
	s.mu.Unlock()
	for _, id := range victims {
		s.mEvictTTL.Inc()
		s.logRecord(walRecord{Type: "evicted", ID: id, Time: time.Now(), Reason: "ttl"})
	}
}

// removeLocked deletes id from the map and the order slice; the caller
// holds s.mu.
func (s *Server) removeLocked(id string) {
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// maybeCompact folds the log into a snapshot once it has accumulated
// CompactEvery records, bounding both replay time and disk growth. The
// fold reads the sealed log segment — never the in-memory job map — so a
// record that was acknowledged but whose effect has not reached memory yet
// cannot be lost (see wal.Rotate / foldLog).
func (s *Server) maybeCompact() {
	if s.wal == nil || s.cfg.CompactEvery <= 0 {
		return
	}
	sealed := filepath.Join(s.cfg.DataDir, walOldName)
	if _, err := os.Stat(sealed); err == nil {
		// A previous fold failed after rotation; finish it before sealing
		// more records behind it.
		if s.foldSealed() != nil {
			return
		}
	}
	if s.wal.Records() < s.cfg.CompactEvery {
		return
	}
	if err := s.wal.Rotate(); err != nil {
		return
	}
	if err := s.foldSealed(); err == nil {
		s.mCompact.Inc()
	}
}

// foldSealed merges the rotated segment into the snapshot and removes it.
func (s *Server) foldSealed() error {
	dir := s.cfg.DataDir
	snap, _, _, err := loadSnapshot(dir)
	if err != nil {
		return err
	}
	recs, _, err := readSegment(filepath.Join(dir, walOldName))
	if err != nil {
		return err
	}
	states, order := foldLog(snap, recs)
	if err := writeSnapshot(dir, orderedSnap(states, order)); err != nil {
		return err
	}
	s.wal.removeSealed()
	return nil
}
