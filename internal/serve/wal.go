package serve

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/guard"
)

// Chaos injects deterministic service-level faults into the serving layer.
// internal/faults.ServicePlan is the seeded implementation; a nil Chaos in
// Config disables injection. The interface lives on the consumer side,
// mirroring guard.Injector.
type Chaos interface {
	// WALWriteErr, when non-nil, fails the current WAL append (the
	// submission or terminal record is not made durable).
	WALWriteErr() error
	// WALSyncStall returns a delay to insert before the next batched
	// fsync (0: none).
	WALSyncStall() time.Duration
	// JobFault is consulted once per job attempt: guard.FaultPanic makes
	// the attempt panic (contained, classified transient, retried),
	// guard.FaultDeadline hands it an exhausted context.
	JobFault(id string) guard.Fault
	// JobDelay returns a slow-pass stall inserted before the attempt's
	// flow runs (0: none).
	JobDelay(id string) time.Duration
}

// The durable job log. Every state transition of every job is one
// append-only JSONL record in <dir>/wal.log:
//
//	<crc32c-hex> <json>\n
//
// where the checksum covers the JSON bytes, so a torn tail (crash mid
// write) or a flipped byte is detected and replay stops at the last intact
// record. Appends are group-committed: each Append blocks until an fsync
// covers its bytes, and one fsync serves every append that landed while
// the previous one was in flight, so the fsync rate is bounded by disk
// latency rather than submission rate.
//
// Compaction rotates the log (wal.log → wal.log.old), folds the rotated
// segment into <dir>/snapshot.json with the same replay function recovery
// uses, then deletes the segment. Folding from the log — never from the
// in-memory job map — means compaction cannot lose a record that was
// acknowledged but whose effect has not reached memory yet, and every
// intermediate crash state (segment present, snapshot old or new) replays
// to the same result because replay is idempotent.
const (
	walFileName  = "wal.log"
	walOldName   = "wal.log.old"
	snapFileName = "snapshot.json"
	snapSchema   = "resynd_snap/v1"

	// walMaxLineBytes caps one record line on replay. It must dominate the
	// largest record Append can produce, or an acked record would fail
	// recovery at the next boot: submitted records embed the request
	// netlist (≤ maxNetlistBytes, ≤ 6× after JSON escaping) and done
	// records the output netlist, so 128 MiB leaves ample headroom.
	walMaxLineBytes = 128 << 20
)

var errWALClosed = errors.New("serve: wal closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one JSONL line of the job log. Type selects which fields
// are meaningful.
type walRecord struct {
	// Type is submitted | running | requeued | done | failed | evicted.
	Type string    `json:"type"`
	ID   string    `json:"id"`
	Time time.Time `json:"time,omitempty"`
	// Req is the full request on submitted records, so replay can re-run
	// interrupted jobs from the log alone.
	Req *Request `json:"req,omitempty"`
	// Result and Netlist carry the verified output on done records, so the
	// content-addressed result cache survives restarts.
	Result  *JobResult `json:"result,omitempty"`
	Netlist string     `json:"netlist,omitempty"`
	Error   string     `json:"error,omitempty"`
	Class   string     `json:"class,omitempty"`
	// Attempts is the number of execution attempts a terminal record took.
	Attempts int `json:"attempts,omitempty"`
	// Events preserves the job's event count across recovery (the events
	// themselves are not persisted).
	Events int `json:"events,omitempty"`
	// Started rides on terminal records so a recovered job reports the
	// same timestamps it did before the crash.
	Started time.Time `json:"started,omitempty"`
	// Reason annotates evicted records ("lru" | "ttl").
	Reason string `json:"reason,omitempty"`
}

// snapFile is the compaction snapshot: the full job list in submission
// order, each entry a self-contained job state.
type snapFile struct {
	Schema string    `json:"schema"`
	Jobs   []snapJob `json:"jobs"`
}

type snapJob struct {
	ID       string     `json:"id"`
	Req      Request    `json:"req"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Started  time.Time  `json:"started,omitempty"`
	Finished time.Time  `json:"finished,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	Netlist  string     `json:"netlist,omitempty"`
	Error    string     `json:"error,omitempty"`
	Class    string     `json:"class,omitempty"`
	Attempts int        `json:"attempts,omitempty"`
	Events   int        `json:"events,omitempty"`
}

// syncBatch is one group-commit generation: everyone who appended since
// the last fsync waits on done and shares err.
type syncBatch struct {
	done chan struct{}
	err  error
}

type wal struct {
	dir   string
	chaos Chaos

	mu      sync.Mutex
	f       *os.File
	size    int64 // bytes written to the current segment
	synced  int64 // bytes covered by the last successful fsync
	records int   // records appended to the current segment
	cur     *syncBatch
	// inflight is the batch the flusher is currently syncing. Whoever nils
	// a batch out of cur/inflight under mu owns releasing its waiters —
	// Close/Rotate/Crash take inflight over when their own sync already
	// settled its bytes, so the flusher's late Sync on a closed or swapped
	// file cannot spuriously fail appends that are in fact durable.
	inflight *syncBatch
	closed   bool

	kick chan struct{} // wakes the flusher, capacity 1
	stop chan struct{} // terminates the flusher
	wg   sync.WaitGroup
}

// openWAL opens (creating if needed) the job log under dir and starts the
// group-commit flusher.
func openWAL(dir string, chaos Chaos) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: wal dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: wal open: %w", err)
	}
	size, err := f.Seek(0, 2) // append position
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{
		dir:    dir,
		chaos:  chaos,
		f:      f,
		size:   size,
		synced: size, // bytes read back from disk are durable by definition
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	w.wg.Add(1)
	go w.flusher()
	return w, nil
}

func encodeRecord(rec walRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	sum := crc32.Checksum(body, crcTable)
	line := make([]byte, 0, len(body)+10)
	line = append(line, fmt.Sprintf("%08x ", sum)...)
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine parses one WAL line, reporting an error for torn or corrupt
// records (bad framing, checksum mismatch, invalid JSON).
func decodeLine(line string) (walRecord, error) {
	var rec walRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("serve: wal record framing %q", truncateFor(line))
	}
	sumBytes, err := hex.DecodeString(line[:8])
	if err != nil {
		return rec, fmt.Errorf("serve: wal record checksum field: %w", err)
	}
	want := uint32(sumBytes[0])<<24 | uint32(sumBytes[1])<<16 | uint32(sumBytes[2])<<8 | uint32(sumBytes[3])
	body := []byte(line[9:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return rec, fmt.Errorf("serve: wal record crc mismatch (%08x != %08x)", got, want)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("serve: wal record json: %w", err)
	}
	return rec, nil
}

func truncateFor(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}

// Append durably logs rec: it returns once an fsync covers the record (or
// with the write/sync error). Concurrent appends share fsyncs.
func (w *wal) Append(rec walRecord) error {
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errWALClosed
	}
	if w.chaos != nil {
		if ferr := w.chaos.WALWriteErr(); ferr != nil {
			w.mu.Unlock()
			return ferr
		}
	}
	if _, err := w.f.Write(line); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("serve: wal append: %w", err)
	}
	w.size += int64(len(line))
	w.records++
	if w.cur == nil {
		w.cur = &syncBatch{done: make(chan struct{})}
	}
	b := w.cur
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default: // flusher already signalled
	}
	<-b.done
	return b.err
}

// flusher performs the batched fsyncs: each pass moves the current batch
// to inflight, optionally stalls (chaos), syncs, and — if it still owns the
// batch — releases every waiter in it. Close/Rotate/Crash may take the
// inflight batch over mid-sync (their own fsync settles its bytes first),
// in which case the flusher's result is discarded.
func (w *wal) flusher() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		case <-w.kick:
		}
		w.mu.Lock()
		b := w.cur
		w.cur = nil
		w.inflight = b
		sz := w.size
		f := w.f
		w.mu.Unlock()
		if b == nil {
			continue
		}
		if w.chaos != nil {
			if d := w.chaos.WALSyncStall(); d > 0 {
				time.Sleep(d)
			}
		}
		err := f.Sync()
		w.mu.Lock()
		if w.inflight != b {
			// Close/Rotate/Crash released the batch with the outcome of
			// their own sync; this Sync ran against a closed or swapped
			// file and its result is meaningless.
			w.mu.Unlock()
			continue
		}
		w.inflight = nil
		// Rotation swaps w.f; a sync of the old segment must not advance
		// the new segment's watermark (Rotate synced the old one itself).
		if err == nil && f == w.f && sz > w.synced && !w.closed {
			w.synced = sz
		}
		w.mu.Unlock()
		b.err = err
		close(b.done)
	}
}

// takeBatchesLocked detaches both the pending and the in-flight batch; the
// caller (holding w.mu) owns releasing them with releaseBatches.
func (w *wal) takeBatchesLocked() []*syncBatch {
	var bs []*syncBatch
	if w.cur != nil {
		bs = append(bs, w.cur)
		w.cur = nil
	}
	if w.inflight != nil {
		bs = append(bs, w.inflight)
		w.inflight = nil
	}
	return bs
}

func releaseBatches(bs []*syncBatch, err error) {
	for _, b := range bs {
		b.err = err
		close(b.done)
	}
}

// Size reports bytes written to the current log segment.
func (w *wal) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Records reports records appended to the current segment.
func (w *wal) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Close syncs outstanding bytes and closes the log. Idempotent. Pending
// and in-flight appends are released with the outcome of Close's own sync,
// which covers every written byte — so an append whose fsync Close raced
// is acknowledged durable, not failed.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.f.Sync()
	if err == nil {
		w.synced = w.size
	}
	cerr := w.f.Close()
	bs := w.takeBatchesLocked()
	w.mu.Unlock()
	close(w.stop)
	releaseBatches(bs, err)
	w.wg.Wait()
	if err != nil {
		return err
	}
	return cerr
}

// Crash simulates a process kill for the chaos harness: bytes past the
// last successful fsync are discarded (truncated away), mirroring what the
// OS guarantees after a real kill -9, and the log is closed without a
// final sync. Appends in flight fail with errWALClosed.
func (w *wal) Crash() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.f.Truncate(w.synced)
	w.f.Close()
	bs := w.takeBatchesLocked()
	w.mu.Unlock()
	close(w.stop)
	// Both the pending and the in-flight batch fail: their bytes were past
	// the last fsync and the truncate just discarded them, exactly as a
	// real kill -9 would.
	releaseBatches(bs, errWALClosed)
	w.wg.Wait()
}

// Rotate seals the current segment: pending appends are synced and
// acknowledged, wal.log is renamed to wal.log.old, and a fresh wal.log
// takes over. The caller folds the sealed segment into the snapshot and
// then removes it (removeSealed).
func (w *wal) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = w.size
	// nil err: pending and in-flight waiters' bytes are durable in the
	// sealed segment.
	releaseBatches(w.takeBatchesLocked(), nil)
	oldPath := filepath.Join(w.dir, walOldName)
	if err := os.Rename(filepath.Join(w.dir, walFileName), oldPath); err != nil {
		return err
	}
	nf, err := os.OpenFile(filepath.Join(w.dir, walFileName), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		// The log is sealed but no new segment could be created: restore
		// the old name so appends keep going to a valid file.
		os.Rename(oldPath, filepath.Join(w.dir, walFileName))
		return err
	}
	w.f.Close()
	w.f = nf
	w.size, w.synced, w.records = 0, 0, 0
	syncDir(w.dir)
	return nil
}

// removeSealed deletes the rotated segment once its records are folded
// into a durable snapshot.
func (w *wal) removeSealed() {
	os.Remove(filepath.Join(w.dir, walOldName))
	syncDir(w.dir)
}

// writeSnapshot atomically replaces snapshot.json with jobs: write to tmp,
// fsync, rename, fsync the directory.
func writeSnapshot(dir string, jobs []snapJob) error {
	data, err := json.Marshal(snapFile{Schema: snapSchema, Jobs: jobs})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, snapFileName+".tmp")
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = tf.Write(data); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapFileName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// readSegment reads the intact prefix of one log segment, counting dropped
// (torn/corrupt) trailing lines. A missing file is an empty segment.
func readSegment(path string) (recs []walRecord, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), walMaxLineBytes)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, derr := decodeLine(line)
		if derr != nil {
			// Torn or corrupt record: everything from here on is past the
			// last durable point of this segment — stop, count the rest.
			dropped++
			for sc.Scan() {
				dropped++
			}
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return recs, dropped, nil
}

// loadSnapshot reads snapshot.json under dir; a missing file is an empty
// snapshot. The extra return values keep its signature parallel to
// loadLog for callers that only need the snapshot half.
func loadSnapshot(dir string) (snap []snapJob, recs []walRecord, dropped int, err error) {
	sdata, serr := os.ReadFile(filepath.Join(dir, snapFileName))
	if serr != nil {
		if errors.Is(serr, os.ErrNotExist) {
			return nil, nil, 0, nil
		}
		return nil, nil, 0, serr
	}
	var sf snapFile
	if jerr := json.Unmarshal(sdata, &sf); jerr != nil {
		return nil, nil, 0, fmt.Errorf("serve: snapshot corrupt: %w", jerr)
	}
	if sf.Schema != snapSchema {
		return nil, nil, 0, fmt.Errorf("serve: snapshot schema %q (want %s)", sf.Schema, snapSchema)
	}
	return sf.Jobs, nil, 0, nil
}

// loadLog reads the snapshot and every log segment under dir, in
// application order: snapshot state, then the sealed segment a crash may
// have left behind mid-compaction, then the current log. A missing
// directory or empty log is a clean empty state, not an error.
func loadLog(dir string) (snap []snapJob, recs []walRecord, dropped int, err error) {
	snap, _, _, err = loadSnapshot(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, name := range []string{walOldName, walFileName} {
		segRecs, segDropped, err := readSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, 0, err
		}
		recs = append(recs, segRecs...)
		dropped += segDropped
	}
	return snap, recs, dropped, nil
}
