package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// sweepTwinsBLIF is a 34-register circuit carrying the same shift register
// twice — beyond the 32-latch exact-verification wall, but every twin pair
// is 1-inductive (the same circuit flows' sweep tests use).
func sweepTwinsBLIF() string {
	var b strings.Builder
	b.WriteString(".model sweeptwins\n.inputs x\n.outputs o\n")
	const stages = 17
	for i := 0; i < stages; i++ {
		fmt.Fprintf(&b, ".latch dq%d q%d 0\n.latch dr%d r%d 0\n", i, i, i, i)
	}
	b.WriteString(".names x q0 dq0\n10 1\n01 1\n.names x r0 dr0\n10 1\n01 1\n")
	for i := 1; i < stages; i++ {
		fmt.Fprintf(&b, ".names q%d dq%d\n1 1\n", i-1, i)
		fmt.Fprintf(&b, ".names r%d dr%d\n1 1\n", i-1, i)
	}
	fmt.Fprintf(&b, ".names q%d r%d o\n11 1\n", stages-1, stages-1)
	b.WriteString(".end\n")
	return b.String()
}

// TestServeSweepVerification drives the sweep knobs end to end: the flags
// participate in the content address and validation, a >32-latch job
// verifies as proved-by-induction instead of degrading to simulation, and
// the solver counters cross the tracer bridge onto /metrics.
func TestServeSweepVerification(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2})
	src := sweepTwinsBLIF()

	plain := Request{Netlist: src, Flow: "retime", Verify: true}
	swept := Request{Netlist: src, Flow: "retime", Verify: true, Sweep: true}
	if plain.normalized().Key() == swept.normalized().Key() {
		t.Fatal("sweep must participate in the job content hash")
	}
	deep := Request{Netlist: src, Flow: "retime", Verify: true, Sweep: true, InductionK: 2}
	if deep.normalized().Key() == swept.normalized().Key() {
		t.Fatal("induction_k must participate in the job content hash")
	}
	bad := Request{Netlist: src, Flow: "retime", Sweep: true, InductionK: 99}
	if _, status := postJob(t, ts.URL, bad); status != http.StatusBadRequest {
		t.Fatalf("induction_k out of range status = %d, want 400", status)
	}

	info, status := postJob(t, ts.URL, swept)
	if status != http.StatusAccepted {
		t.Fatalf("submission status = %d, want 202", status)
	}
	final := waitDone(t, ts.URL, info.ID)
	if final.State != StateDone {
		t.Fatalf("sweep job failed: %+v", final)
	}
	if final.Result == nil || final.Result.Verify != "proved-by-induction" {
		t.Fatalf("verify = %+v, want proved-by-induction", final.Result)
	}

	// Without sweep the same circuit can only be spot-checked.
	info, _ = postJob(t, ts.URL, plain)
	final = waitDone(t, ts.URL, info.ID)
	if final.State != StateDone || final.Result.Verify != "simulated" {
		t.Fatalf("plain job verify = %+v, want simulated", final.Result)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`resyn_counter_total{counter="sweep_classes_proved"}`,
		`resyn_counter_total{counter="sweep_cex_refinements"}`,
		`resyn_counter_total{counter="sat_conflicts"}`,
		`resyn_counter_total{counter="sat_learned_clauses"}`,
		`resyn_counter_total{counter="sat_calls"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
