package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/flows"
	"repro/internal/obs"
)

// maxRequestBytes bounds a submission body; netlists in this repo's weight
// class are tens of kilobytes, so 8 MiB is generous without letting one
// client exhaust memory. maxNetlistBytes bounds the netlist field itself
// (enforced in Request.validate, so direct API users are covered too): it
// must stay far enough under walMaxLineBytes that a submitted record —
// netlist JSON-escaped, worst case 6 bytes per input byte — always replays.
const (
	maxRequestBytes = 8 << 20
	maxNetlistBytes = 8 << 20
)

// Handler mounts the service API:
//
//	POST /jobs             submit {netlist, format, flow, substrate, verify} → JobInfo
//	GET  /jobs             list jobs
//	GET  /jobs/{id}        job status + result summary
//	GET  /jobs/{id}/events live per-pass progress as SSE (replays history)
//	GET  /jobs/{id}/result output netlist as BLIF text
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness + version + job counts
//
// When debug is true the net/http/pprof handlers are mounted under
// /debug/pprof/.
func (s *Server) Handler(debug bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.instrument("post_jobs", s.handleSubmit))
	mux.HandleFunc("GET /jobs", s.instrument("list_jobs", s.handleList))
	mux.HandleFunc("GET /jobs/{id}", s.instrument("get_job", s.handleJob))
	mux.HandleFunc("GET /jobs/{id}/events", s.instrument("job_events", s.handleEvents))
	mux.HandleFunc("GET /jobs/{id}/result", s.instrument("job_result", s.handleResult))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	if debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	c := s.reg.Counter("resynd_http_requests_total", "HTTP requests by route", obs.Labels{"route": route})
	return func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := io.LimitReader(r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	j, cached, err := s.Submit(req)
	switch {
	case unavailable(err):
		// Queue full, draining, or the WAL refused durability: the job was
		// not accepted and the client should back off and retry.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info := j.Info()
	info.Cached = cached
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Info())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	switch j.State() {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, j.Netlist())
	case StateFailed:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s failed: %s", j.ID, j.Info().Error))
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusAccepted, fmt.Errorf("job %s still %s", j.ID, j.State()))
	}
}

// handleEvents streams the job's event log as server-sent events: the full
// history first (index-based replay, no gaps), then live appends until the
// job reaches a terminal state or the client disconnects. The final frame
// is `event: done` carrying the JobInfo summary. A reconnecting client
// sends the standard Last-Event-ID header and resumes exactly after the
// last frame it saw (ids are the 1-based event indices). When the server
// drains, subscribers get a final `event: shutdown` frame instead of a
// silent hangup, so they know to reconnect elsewhere.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	idx := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n > 0 {
			idx = n // frame ids are 1-based event indices: resume after n
		}
	}
	for {
		evs, state, changed := j.EventsSince(idx)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", idx+1, data)
			idx++
		}
		if canFlush {
			flusher.Flush()
		}
		if state.terminal() {
			// Only exit once the log is fully drained: terminal state and
			// no events appeared since the snapshot.
			if evs, _, _ := j.EventsSince(idx); len(evs) == 0 {
				summary, _ := json.Marshal(j.Info())
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", summary)
				if canFlush {
					flusher.Flush()
				}
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-s.drainCh:
			fmt.Fprintf(w, "event: shutdown\ndata: {\"reason\":\"draining\"}\n\n")
			if canFlush {
				flusher.Flush()
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.gRunning.Set(float64(s.pool.Running()))
	s.gQueue.Set(float64(s.pool.QueueLen()))
	s.mu.Lock()
	s.gJobs.Set(float64(len(s.jobs)))
	s.mu.Unlock()
	if s.wal != nil {
		s.gWALBytes.Set(float64(s.wal.Size()))
	}
	s.reg.SampleRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var queued, running, done, failed int
	for _, info := range s.Jobs() {
		switch info.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateFailed:
			failed++
		}
	}
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	resp := map[string]any{
		"status":     status,
		"version":    s.cfg.Version,
		"uptime":     time.Since(s.start).String(),
		"flows":      flows.FlowNames(),
		"substrates": flows.SubstrateNames(),
		"jobs": map[string]int{
			"queued":  queued,
			"running": running,
			"done":    done,
			"failed":  failed,
		},
	}
	if s.cfg.DataDir != "" {
		rs := s.Recovery()
		resp["recovery"] = map[string]int{
			"snapshot": rs.Snapshot,
			"replayed": rs.Replayed,
			"dropped":  rs.Dropped,
			"terminal": rs.Terminal,
			"requeued": rs.Requeued,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
