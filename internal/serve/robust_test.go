package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/guard"
)

// TestServeRetriesTransientFault forces a contained panic on a job's first
// attempt: the retry loop must re-run it and the second, clean attempt must
// succeed, with the attempt count and retry metric showing the path taken.
func TestServeRetriesTransientFault(t *testing.T) {
	req := Request{Netlist: circuitBLIF(t, "s27"), Flow: "script"}
	id := req.normalized().Key()
	plan := faults.NewServicePlan(1).ForceJobFault(id, guard.FaultPanic)
	s, err := New(Config{Workers: 1, Chaos: plan, Retry: RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j, cached, err := s.Submit(req)
	if err != nil || cached {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	info := waitTerminal(t, s, j.ID)
	if info.State != StateDone {
		t.Fatalf("job failed despite retry budget: %+v", info)
	}
	if info.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (panic, then clean run)", info.Attempts)
	}
	if got := s.mRetries.Value(); got != 1 {
		t.Fatalf("resynd_job_retries_total = %v, want 1", got)
	}
}

// TestServeTransientFailureNotCachePoisoned is the regression test for the
// poisoned-cache bug: a submission that failed transiently (here: an
// injected exhausted deadline with retries disabled) must NOT be served as
// a cache hit on resubmission — the job re-runs and succeeds.
func TestServeTransientFailureNotCachePoisoned(t *testing.T) {
	req := Request{Netlist: circuitBLIF(t, "s27"), Flow: "script"}
	id := req.normalized().Key()
	plan := faults.NewServicePlan(1).ForceJobFault(id, guard.FaultDeadline)
	// Max: -1 disables retries, so the transient failure lands terminal.
	s, ts := startServer(t, Config{Workers: 1, Chaos: plan, Retry: RetryPolicy{Max: -1}})

	info, status := postJob(t, ts.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("fresh submission status = %d", status)
	}
	failed := waitDone(t, ts.URL, info.ID)
	if failed.State != StateFailed || failed.ErrorClass != "transient" {
		t.Fatalf("setup: want transient failure, got %+v", failed)
	}

	// Resubmit the identical request: the poisoned entry must be re-run,
	// not replayed.
	again, status := postJob(t, ts.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("resubmission status = %d, want 202 (re-run, not cached)", status)
	}
	if again.Cached {
		t.Fatal("transiently failed job served as a cache hit")
	}
	final := waitDone(t, ts.URL, again.ID)
	if final.State != StateDone {
		t.Fatalf("re-run failed: %+v", final)
	}
	if s.mRequeued.Value() != 1 {
		t.Fatalf("resynd_jobs_requeued_total = %v, want 1", s.mRequeued.Value())
	}

	// And a third submission IS a plain cache hit: the fix must not disable
	// caching of good results.
	third, status := postJob(t, ts.URL, req)
	if status != http.StatusOK || !third.Cached {
		t.Fatalf("done job no longer cached: status=%d cached=%v", status, third.Cached)
	}
}

// TestServeShedQueueFull pins the shed path: with one worker held by a slow
// job and a one-deep queue occupied, the next submission must get 503 with
// Retry-After, increment the shed counter, and leave no job behind in the
// map.
func TestServeShedQueueFull(t *testing.T) {
	blifs := []string{circuitBLIF(t, "bbtas"), circuitBLIF(t, "s27"), circuitBLIF(t, "ex6")}
	// Every job stalls 400ms before running: job 0 holds the worker, job 1
	// holds the queue slot, job 2 must shed.
	plan := faults.NewServicePlan(1).WithJobDelay(1.0, 400*time.Millisecond)
	s, ts := startServer(t, Config{Workers: 1, Queue: 1, Chaos: plan})

	var ids []string
	for i := 0; i < 2; i++ {
		info, status := postJob(t, ts.URL, Request{Netlist: blifs[i], Flow: "script"})
		if status != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, status)
		}
		ids = append(ids, info.ID)
	}

	shedReq := Request{Netlist: blifs[2], Flow: "script"}
	body, _ := json.Marshal(shedReq)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := s.mShed.Value(); got != 1 {
		t.Fatalf("resynd_jobs_shed_total = %v, want 1", got)
	}
	// The backpressure counter must reach the Prometheus surface, not just
	// the in-process registry: operators alert on the scraped series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "resynd_jobs_shed_total 1") {
		t.Fatalf("/metrics does not expose the shed counter:\n%s", mbody)
	}
	// The shed job must leave the map clean: not listed, not fetchable.
	if _, ok := s.Job(shedReq.normalized().Key()); ok {
		t.Fatal("shed submission left a job in the map")
	}
	for _, info := range s.Jobs() {
		if info.ID == shedReq.normalized().Key() {
			t.Fatal("shed submission listed in /jobs")
		}
	}
	// The accepted jobs still complete.
	for _, id := range ids {
		waitTerminal(t, s, id)
	}
}

// TestServeSSEReconnectWithLastEventID drops an SSE client mid-stream and
// reconnects with the standard Last-Event-ID header: the replay must resume
// exactly after the last delivered frame, with no duplicates and no gaps.
func TestServeSSEReconnectWithLastEventID(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	info, _ := postJob(t, ts.URL, Request{Netlist: circuitBLIF(t, "s27"), Flow: "script"})
	waitDone(t, ts.URL, info.ID)

	// First connection: read the full stream, note each frame's id.
	full, ids := readSSEFrames(t, ts.URL, info.ID, "")
	if len(full) < 4 {
		t.Fatalf("job produced only %d events; need a few to split the stream", len(full))
	}
	cut := len(full) / 2
	lastSeen := ids[cut-1]

	// Reconnect as a client that saw frames 1..cut: the server must resume
	// at cut+1.
	resumed, resumedIDs := readSSEFrames(t, ts.URL, info.ID, fmt.Sprint(lastSeen))
	if len(resumed) != len(full)-cut {
		t.Fatalf("resumed stream has %d frames, want %d", len(resumed), len(full)-cut)
	}
	if resumedIDs[0] != lastSeen+1 {
		t.Fatalf("resume started at id %d, want %d", resumedIDs[0], lastSeen+1)
	}
	for i, frame := range resumed {
		if frame != full[cut+i] {
			t.Fatalf("frame %d diverged after resume:\n full: %s\nresumed: %s", cut+i, full[cut+i], frame)
		}
	}
}

// readSSEFrames reads the event stream to the done frame, returning the
// data payload and id of every regular frame. lastEventID, when non-empty,
// is sent as the Last-Event-ID reconnection header.
func readSSEFrames(t *testing.T, url, id, lastEventID string) (frames []string, ids []int) {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	curID := -1
	inDone := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &curID)
		case line == "event: done":
			inDone = true
		case strings.HasPrefix(line, "data: "):
			if inDone {
				return frames, ids
			}
			frames = append(frames, strings.TrimPrefix(line, "data: "))
			ids = append(ids, curID)
		}
	}
	t.Fatalf("stream ended without done frame: %v", sc.Err())
	return nil, nil
}

// TestServeGracefulDrain exercises the SIGTERM path at the package level:
// draining refuses new work with 503 + Retry-After, streams a shutdown
// frame to SSE subscribers, finishes in-flight jobs, and Shutdown returns
// nil once drained.
func TestServeGracefulDrain(t *testing.T) {
	// Hold the job long enough that the drain demonstrably overlaps it.
	plan := faults.NewServicePlan(1).WithJobDelay(1.0, 150*time.Millisecond)
	s, err := New(Config{Workers: 1, Chaos: plan, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)

	info, status := postJob(t, ts, Request{Netlist: circuitBLIF(t, "s27"), Flow: "script"})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}

	// Subscribe to the running job's stream, then drain: the subscriber
	// must receive the shutdown frame rather than a silent hangup.
	shutdownSeen := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts + "/jobs/" + info.ID + "/events")
		if err != nil {
			shutdownSeen <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if sc.Text() == "event: shutdown" {
				shutdownSeen <- nil
				return
			}
			if sc.Text() == "event: done" {
				// Job finished before the drain frame could be sent; also a
				// clean outcome for the client.
				shutdownSeen <- nil
				return
			}
		}
		shutdownSeen <- fmt.Errorf("stream ended without shutdown frame: %v", sc.Err())
	}()
	time.Sleep(20 * time.Millisecond) // let the subscriber attach

	s.StartDrain()

	// New submissions are refused while draining.
	body, _ := json.Marshal(Request{Netlist: circuitBLIF(t, "bbtas"), Flow: "script"})
	resp, err := http.Post(ts+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining submission: status=%d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	select {
	case err := <-shutdownSeen:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE subscriber never saw the shutdown frame")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if got := s.pool.Running(); got != 0 {
		t.Fatalf("%d jobs still running after Shutdown", got)
	}
	// The in-flight job finished rather than being dropped.
	j, ok := s.Job(info.ID)
	if !ok || !j.State().terminal() {
		t.Fatalf("in-flight job not drained: present=%v", ok)
	}
}

// TestServeCacheSurvivesGracefulRestart is the end-to-end durable-cache
// check: submit, finish, shut down cleanly, boot a new server on the same
// data dir, and the same submission must be a cache hit with the identical
// result.
func TestServeCacheSurvivesGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{Netlist: circuitBLIF(t, "s27"), Flow: "script", Verify: true}

	s1, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	before := waitTerminal(t, s1, j.ID)
	if before.State != StateDone {
		t.Fatalf("seed job failed: %+v", before)
	}
	netlistBefore := j.Netlist()
	s1.Close()

	s2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs := s2.Recovery(); rs.Terminal != 1 || rs.Requeued != 0 {
		t.Fatalf("recovery stats: %+v", rs)
	}
	j2, cached, err := s2.Submit(req)
	if err != nil || !cached {
		t.Fatalf("restarted submission: cached=%v err=%v", cached, err)
	}
	after := j2.Info()
	if after.State != StateDone || after.Result == nil || *after.Result != *before.Result {
		t.Fatalf("recovered result diverged:\nbefore: %+v\nafter:  %+v", before.Result, after.Result)
	}
	if j2.Netlist() != netlistBefore {
		t.Fatal("recovered output netlist differs")
	}
	if s2.mCacheHits.Value() != 1 {
		t.Fatalf("cache hit not counted: %v", s2.mCacheHits.Value())
	}
}

// newTestHTTP mounts the server on an httptest listener with cleanup that
// closes the listener before the server (SSE streams end first).
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler(false))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}
