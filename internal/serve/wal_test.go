package serve

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
)

func walRec(typ, id string) walRecord {
	return walRecord{Type: typ, ID: id, Time: time.Unix(1700000000, 12345).UTC()}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Netlist: "x", Format: "blif", Flow: "resyn"}
	recs := []walRecord{
		{Type: "submitted", ID: "a", Time: time.Unix(1, 0).UTC(), Req: &req},
		{Type: "running", ID: "a", Time: time.Unix(2, 0).UTC()},
		{Type: "done", ID: "a", Time: time.Unix(3, 0).UTC(), Started: time.Unix(2, 0).UTC(),
			Result: &JobResult{Regs: 3, Clk: 1.5, Verify: "exact"}, Netlist: ".model m\n.end\n", Attempts: 1, Events: 7},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Records(); got != 3 {
		t.Fatalf("Records() = %d, want 3", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snap, got, dropped, err := loadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 0 || dropped != 0 || len(got) != 3 {
		t.Fatalf("loadLog: snap=%d recs=%d dropped=%d", len(snap), len(got), dropped)
	}
	if got[2].Result == nil || got[2].Result.Regs != 3 || got[2].Netlist != ".model m\n.end\n" {
		t.Fatalf("terminal record did not round-trip: %+v", got[2])
	}
	if !got[0].Time.Equal(recs[0].Time) {
		t.Fatalf("timestamp did not round-trip: %v != %v", got[0].Time, recs[0].Time)
	}
}

func TestWALTornTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := w.Append(walRec("submitted", id)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// A crash mid-write leaves a torn final line.
	path := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"type":"submitted","id":"c"`) // no newline, bad crc
	f.Close()

	_, recs, dropped, err := loadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || dropped != 1 {
		t.Fatalf("recs=%d dropped=%d, want 2/1", len(recs), dropped)
	}
}

func TestWALCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := w.Append(walRec("submitted", id)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Flip one byte inside the middle record's JSON: its CRC breaks, and
	// everything after the corruption is untrusted.
	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x20
	lines[1] = string(mid)
	if err := os.WriteFile(filepath.Join(dir, walFileName), []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, dropped, err := loadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "a" || dropped != 2 {
		t.Fatalf("recs=%d dropped=%d first=%q, want 1/2/a", len(recs), dropped, recs[0].ID)
	}
}

func TestWALCrashDiscardsUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	// A sync stall keeps appended bytes unsynced long enough for Crash to
	// catch them in flight.
	stall := &stubChaos{syncStall: 50 * time.Millisecond}
	w, err := openWAL(dir, stall)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRec("submitted", "durable")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// This append lands in the stalled batch; Crash interrupts it.
		w.Append(walRec("submitted", "lost"))
	}()
	time.Sleep(10 * time.Millisecond) // let the append hit the file
	w.Crash()
	wg.Wait()

	_, recs, _, err := loadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ID == "lost" {
			t.Fatal("unsynced record survived the crash")
		}
	}
	if len(recs) != 1 || recs[0].ID != "durable" {
		t.Fatalf("recs=%v, want just the durable one", recs)
	}
}

func TestWALRotateAndFoldCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Netlist: "x", Format: "blif", Flow: "resyn"}
	w.Append(walRecord{Type: "submitted", ID: "a", Time: time.Unix(1, 0).UTC(), Req: &req})
	w.Append(walRecord{Type: "done", ID: "a", Time: time.Unix(2, 0).UTC(), Started: time.Unix(1, 0).UTC(),
		Result: &JobResult{Regs: 2, Verify: "skipped"}, Netlist: "n", Attempts: 1})

	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("fresh segment has %d records", w.Records())
	}
	// Appends after rotation land in the new segment.
	w.Append(walRecord{Type: "submitted", ID: "b", Time: time.Unix(3, 0).UTC(), Req: &req})

	// Fold the sealed segment (what foldSealed does).
	snap, _, _, err := loadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealed, _, err := readSegment(filepath.Join(dir, walOldName))
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 2 {
		t.Fatalf("sealed segment has %d records, want 2", len(sealed))
	}
	states, order := foldLog(snap, sealed)
	if err := writeSnapshot(dir, orderedSnap(states, order)); err != nil {
		t.Fatal(err)
	}

	// Crash window: the sealed segment still exists alongside the new
	// snapshot. Replay must be idempotent — same state either way.
	checkState := func(label string) {
		t.Helper()
		snap, recs, _, err := loadLog(dir)
		if err != nil {
			t.Fatal(err)
		}
		states, order := foldLog(snap, recs)
		if len(order) != 2 {
			t.Fatalf("%s: %d jobs, want 2", label, len(order))
		}
		a, b := states["a"], states["b"]
		if a == nil || a.State != StateDone || a.Result == nil || a.Result.Regs != 2 {
			t.Fatalf("%s: job a = %+v", label, a)
		}
		if b == nil || b.State != StateQueued {
			t.Fatalf("%s: job b = %+v", label, b)
		}
	}
	checkState("sealed segment present")
	w.removeSealed()
	checkState("sealed segment removed")
	w.Close()
}

func TestWALWriteErrorRefusesAppend(t *testing.T) {
	dir := t.TempDir()
	chaos := &stubChaos{writeErrs: 1}
	w, err := openWAL(dir, chaos)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(walRec("submitted", "a")); err == nil {
		t.Fatal("append with injected write error must fail")
	}
	if err := w.Append(walRec("submitted", "b")); err != nil {
		t.Fatalf("append after the fault: %v", err)
	}
	_, recs, _, err := loadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "b" {
		t.Fatalf("refused append left a trace: %+v", recs)
	}
}

// stubChaos is a minimal Chaos for targeted WAL tests.
type stubChaos struct {
	mu        sync.Mutex
	writeErrs int
	syncStall time.Duration
}

func (c *stubChaos) WALWriteErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeErrs > 0 {
		c.writeErrs--
		return os.ErrInvalid
	}
	return nil
}

func (c *stubChaos) WALSyncStall() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncStall
}

func (c *stubChaos) JobFault(string) guard.Fault   { return guard.FaultNone }
func (c *stubChaos) JobDelay(string) time.Duration { return 0 }

// TestWALCloseReleasesInflightBatch closes the log while the flusher is
// stalled mid-sync on an append's batch. Close fsyncs the append's bytes
// itself, so the append must be acknowledged durable (nil error) rather
// than failed when the flusher's late Sync hits the closed file.
func TestWALCloseReleasesInflightBatch(t *testing.T) {
	dir := t.TempDir()
	chaos := &stubChaos{syncStall: 300 * time.Millisecond}
	w, err := openWAL(dir, chaos)
	if err != nil {
		t.Fatal(err)
	}
	appendErr := make(chan error, 1)
	go func() { appendErr <- w.Append(walRec("submitted", "a")) }()
	time.Sleep(50 * time.Millisecond) // let the flusher take the batch and stall
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-appendErr; err != nil {
		t.Fatalf("append raced by Close must succeed (its bytes were fsynced by Close): %v", err)
	}
	_, recs, _, err := loadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("acked record must replay: %+v", recs)
	}
}

// TestFoldLogEvictThenResubmitNoDuplicate replays evict-then-resubmit of
// the same id: the fold must emit the job exactly once, in its new
// position, not once per stale order entry.
func TestFoldLogEvictThenResubmitNoDuplicate(t *testing.T) {
	req := Request{Netlist: "x", Format: "blif", Flow: "resyn"}
	recs := []walRecord{
		{Type: "submitted", ID: "a", Time: time.Unix(1, 0).UTC(), Req: &req},
		{Type: "submitted", ID: "b", Time: time.Unix(2, 0).UTC(), Req: &req},
		{Type: "done", ID: "a", Time: time.Unix(3, 0).UTC()},
		{Type: "evicted", ID: "a", Time: time.Unix(4, 0).UTC(), Reason: "ttl"},
		{Type: "submitted", ID: "a", Time: time.Unix(5, 0).UTC(), Req: &req},
	}
	states, order := foldLog(nil, recs)
	if len(states) != 2 {
		t.Fatalf("states = %d, want 2", len(states))
	}
	snap := orderedSnap(states, order)
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2 (duplicate from stale order?): %+v", len(snap), snap)
	}
	if snap[0].ID != "b" || snap[1].ID != "a" {
		t.Fatalf("resubmitted job must take its new position: got [%s %s]", snap[0].ID, snap[1].ID)
	}
	if snap[1].State != StateQueued {
		t.Fatalf("resubmitted job state = %s, want %s", snap[1].State, StateQueued)
	}
}
