// Package serve turns the resynthesis flows into a long-running service:
// POST a netlist and a flow name, get back a content-addressed job id, and
// follow per-pass progress live over SSE while the job runs on a bounded
// worker pool. Identical submissions (same netlist bytes, format, flow and
// verify setting) hash to the same job, so repeats are answered from the
// result cache without recomputation.
//
// The package is the glue between the existing layers, not a new engine:
// jobs execute flows.RunFlow under guard.Budget deadlines on a
// parexec.Pool, trace through a private obs.Tracer bridged into the shared
// obs.Registry, and verify with seqverify (falling back to random
// simulation when the product machine is too large) — exactly the cmd/resyn
// pipeline, behind HTTP.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/blif"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/kiss"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/reach"
	"repro/internal/seqverify"
	"repro/internal/sim"
)

// Request is one job submission.
type Request struct {
	// Netlist is the circuit source text.
	Netlist string `json:"netlist"`
	// Format is "blif" (default) or "kiss2" (binary-encoded FSM
	// synthesis, as resyn -kiss).
	Format string `json:"format,omitempty"`
	// Flow is one of flows.FlowNames (default "resyn").
	Flow string `json:"flow,omitempty"`
	// Verify requests an equivalence check of the result against the
	// input (exact when feasible, random simulation otherwise).
	Verify bool `json:"verify,omitempty"`
}

func (r *Request) normalize() {
	if r.Format == "" {
		r.Format = "blif"
	}
	if r.Flow == "" {
		r.Flow = "resyn"
	}
}

// Key is the content address of the request: the sha256 of every field
// that determines the result. It is the job id, so a repeated submission
// lands on the cached job.
func (r Request) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%v\x00", r.Format, r.Flow, r.Verify)
	h.Write([]byte(r.Netlist))
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// parse builds the input network from the request source text.
func (r Request) parse() (*network.Network, error) {
	switch r.Format {
	case "blif":
		return blif.ParseString(r.Netlist)
	case "kiss2":
		fsm, err := kiss.ParseString(r.Netlist, "request")
		if err != nil {
			return nil, err
		}
		return fsm.Synthesize(kiss.Binary)
	}
	return nil, fmt.Errorf("serve: unknown format %q (blif | kiss2)", r.Format)
}

func (r Request) validate() error {
	if strings.TrimSpace(r.Netlist) == "" {
		return errors.New("serve: empty netlist")
	}
	if !flows.KnownFlow(r.Flow) {
		return fmt.Errorf("serve: unknown flow %q (have %v)", r.Flow, flows.FlowNames())
	}
	_, err := r.parse()
	return err
}

// Config tunes a Server. Zero values take defaults.
type Config struct {
	// Workers bounds concurrent jobs (parexec.Workers normalization).
	Workers int
	// Queue bounds jobs waiting for a worker; a full queue sheds load
	// with 503 instead of accepting unbounded work.
	Queue int
	// Budget bounds each job (Job), its flows (Flow) and passes (Pass).
	Budget guard.Budget
	// Reach bounds the BDD engines.
	Reach reach.Limits
	// Registry receives job/pass metrics; a fresh one is created when
	// nil.
	Registry *obs.Registry
	// SimCycles bounds the random-simulation verification fallback
	// (default sim.DefaultSpotCheck.CLI.Cycles).
	SimCycles int
	// Version is reported from /healthz.
	Version string
}

// Server owns the job cache and the worker pool. Create with New, mount
// Handler on an http.Server, and Close on shutdown.
type Server struct {
	cfg  Config
	lib  *genlib.Library
	pool *parexec.Pool
	reg  *obs.Registry

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // insertion order, for GET /jobs

	start time.Time

	mSubmitted *obs.Counter
	mCacheHits *obs.Counter
	mShed      *obs.Counter
	mDone      *obs.Counter
	mFailed    *obs.Counter
	mJobSec    *obs.Histogram
	gRunning   *obs.Gauge
	gQueue     *obs.Gauge
}

// New builds a Server. The caller owns cfg.Registry (when set) and must
// Close the server to drain the pool.
func New(cfg Config) *Server {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.SimCycles <= 0 {
		cfg.SimCycles = sim.DefaultSpotCheck.CLI.Cycles
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		lib:   genlib.Lib2(),
		pool:  parexec.NewPool(cfg.Workers, cfg.Queue),
		reg:   reg,
		jobs:  make(map[string]*Job),
		start: time.Now(),
	}
	s.pool.OnPanic = func(r any) {
		// runJob already contains pass panics via guard; this hook is the
		// last line of defense for bugs in the job plumbing itself.
		s.reg.Counter("resynd_worker_panics_total", "tasks that escaped guard containment", nil).Inc()
	}
	s.mSubmitted = reg.Counter("resynd_jobs_submitted_total", "job submissions accepted (fresh or cached)", nil)
	s.mCacheHits = reg.Counter("resynd_cache_hits_total", "submissions answered by an existing job", nil)
	s.mShed = reg.Counter("resynd_jobs_shed_total", "submissions refused with 503 (queue full)", nil)
	s.mDone = reg.Counter("resynd_jobs_completed_total", "jobs finished", obs.Labels{"state": "done"})
	s.mFailed = reg.Counter("resynd_jobs_completed_total", "jobs finished", obs.Labels{"state": "failed"})
	s.mJobSec = reg.Histogram("resynd_job_seconds", "end-to-end job wall time", obs.DefLatencyBuckets, nil)
	s.gRunning = reg.Gauge("resynd_jobs_running", "jobs currently executing", nil)
	s.gQueue = reg.Gauge("resynd_queue_depth", "jobs waiting for a worker", nil)
	return s
}

// Registry exposes the server's metrics registry (for samplers and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close stops accepting jobs and waits for in-flight ones.
func (s *Server) Close() { s.pool.Close() }

// Submit content-addresses req, returning the (possibly pre-existing) job
// and whether it was a cache hit. A validation failure returns an error the
// HTTP layer maps to 400; a full queue returns errShed for 503.
var errShed = errors.New("serve: worker queue full")

func (s *Server) Submit(req Request) (*Job, bool, error) {
	req.normalize()
	if err := req.validate(); err != nil {
		return nil, false, err
	}
	id := req.Key()
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		s.mSubmitted.Inc()
		s.mCacheHits.Inc()
		return j, true, nil
	}
	j := newJob(id, req, time.Now())
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	if !s.pool.TrySubmit(func() { s.runJob(j) }) {
		s.mu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		s.mShed.Inc()
		return nil, false, errShed
	}
	s.mSubmitted.Inc()
	return j, false, nil
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots all jobs in submission order.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info()
	}
	return out
}

// runJob executes one job on a pool worker: parse, flow, verify, render —
// all under the job deadline, traced into the job's event log and the
// shared registry.
func (s *Server) runJob(j *Job) {
	start := time.Now()
	j.setRunning(start)

	tr := obs.New()
	tr.SetRegistry(s.reg)
	cancelRec := tr.SubscribeFunc(j.append)
	defer cancelRec()

	ctx, cancel := s.cfg.Budget.JobContext(context.Background())
	defer cancel()

	res, netlist, err := s.execute(ctx, j, tr)

	dur := time.Since(start)
	s.mJobSec.Observe(dur.Seconds())
	if err != nil {
		tr.Event("job_failed", map[string]any{"error": err.Error()})
		s.mFailed.Inc()
	} else {
		tr.Event("job_done", map[string]any{"clk": res.Clk, "regs": res.Regs, "verify": res.Verify})
		s.mDone.Inc()
	}
	j.finish(time.Now(), res, netlist, err)
}

func (s *Server) execute(ctx context.Context, j *Job, tr *obs.Tracer) (*JobResult, string, error) {
	src, err := j.req.parse()
	if err != nil {
		// Unreachable in the HTTP path (Submit validated), kept for
		// direct API users.
		return nil, "", err
	}
	cfg := flows.Config{
		Tracer: tr,
		Budget: s.cfg.Budget,
		Reach:  s.cfg.Reach,
	}
	result, err := flows.RunFlow(ctx, j.req.Flow, src, s.lib, cfg)
	if err != nil {
		return nil, "", err
	}
	res := &JobResult{
		Regs:    result.Metrics.Regs,
		Clk:     result.Metrics.Clk,
		Area:    result.Metrics.Area,
		PrefixK: result.PrefixK,
		Note:    result.Note,
		Verify:  "skipped",
	}
	if j.req.Verify {
		sp := tr.Begin("serve.verify")
		verr := seqverify.EquivalentCtx(ctx, src, result.Net, seqverify.Options{Delay: result.PrefixK, Limits: s.cfg.Reach})
		switch {
		case verr == nil:
			res.Verify = "exact"
		case errors.Is(verr, seqverify.ErrTooLarge):
			if serr := sim.RandomEquivalent(src, result.Net, result.PrefixK, s.cfg.SimCycles, sim.DefaultSpotCheck.CLI.Seed); serr != nil {
				sp.End()
				return nil, "", serr
			}
			res.Verify = "simulated"
		default:
			sp.End()
			return nil, "", verr
		}
		sp.End()
	}
	var out strings.Builder
	if err := blif.Write(&out, result.Net); err != nil {
		return nil, "", err
	}
	// Catch a cancellation that a pass absorbed silently so a budgeted job
	// never reports success past its deadline.
	if cerr := guard.Check(ctx, "serve.job"); cerr != nil {
		return nil, "", cerr
	}
	return res, out.String(), nil
}
