// Package serve turns the resynthesis flows into a long-running service:
// POST a netlist and a flow name, get back a content-addressed job id, and
// follow per-pass progress live over SSE while the job runs on a bounded
// worker pool. Identical submissions (same netlist bytes, format, flow,
// substrate and verify setting) hash to the same job, so repeats are
// answered from the result cache without recomputation.
//
// The package is the glue between the existing layers, not a new engine:
// jobs execute flows.RunFlow under guard.Budget deadlines on a
// parexec.Pool, trace through a private obs.Tracer bridged into the shared
// obs.Registry, and verify with seqverify (falling back to random
// simulation when the product machine is too large) — exactly the cmd/resyn
// pipeline, behind HTTP.
//
// With Config.DataDir set the server is crash-safe: every job transition is
// a CRC-checked record in an append-only log (wal.go), group-committed so a
// submission is only acknowledged once it is durable, and boot replays the
// log (recover.go) — terminal jobs repopulate the result cache, interrupted
// ones re-enqueue. Failures are classified (guard.Classify): transient ones
// retry with capped backoff and are never answered from the cache,
// permanent ones are. Lifecycle and retention (drain on SIGTERM, LRU/TTL
// eviction) live in lifecycle.go.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blif"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/kiss"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/reach"
	"repro/internal/seqverify"
	"repro/internal/sim"
)

// Request is one job submission.
type Request struct {
	// Netlist is the circuit source text.
	Netlist string `json:"netlist"`
	// Format is "blif" (default) or "kiss2" (binary-encoded FSM
	// synthesis, as resyn -kiss).
	Format string `json:"format,omitempty"`
	// Flow is one of flows.FlowNames (default "resyn").
	Flow string `json:"flow,omitempty"`
	// Substrate selects the technology-independent representation the
	// flows restructure (flows.SubstrateNames; default "sop").
	Substrate string `json:"substrate,omitempty"`
	// Verify requests an equivalence check of the result against the
	// input (exact when feasible, random simulation otherwise).
	Verify bool `json:"verify,omitempty"`
	// Workers bounds the worker pool of parallel passes inside the flows
	// (the AIG substrate's levelized rewriter, the sweep proof shards); 0
	// defaults to GOMAXPROCS, and at most maxRequestWorkers is accepted.
	// Results are byte-identical at any width, so Workers still
	// participates in the content address — it changes what the job costs,
	// not what it computes, and a cached result must answer for the exact
	// request submitted.
	Workers int `json:"workers,omitempty"`
	// Sweep enables SAT-based sequential sweeping beyond the exact reach
	// limits: induction-proven register classes feed the DC extraction,
	// and verification reports "proved-by-induction" instead of degrading
	// to "simulated".
	Sweep bool `json:"sweep,omitempty"`
	// InductionK is the sweeping induction depth (0 means 1, at most
	// maxInductionK).
	InductionK int `json:"induction_k,omitempty"`
}

// maxInductionK caps the k-induction depth: each step unrolls K+1 frames
// of the transition relation, so a hostile request must not pick the
// unrolling depth freely.
const maxInductionK = 8

// maxRequestWorkers caps the per-request worker width: wider than any
// plausible host, small enough that a hostile request cannot make one job
// spawn absurd goroutine counts.
const maxRequestWorkers = 64

func (r *Request) normalize() {
	if r.Format == "" {
		r.Format = "blif"
	}
	if r.Flow == "" {
		r.Flow = "resyn"
	}
	if r.Substrate == "" {
		// Normalized before hashing so an explicit "sop" and the default
		// land on the same job.
		r.Substrate = flows.SubstrateSOP
	}
}

// Key is the content address of the request: the sha256 of every field
// that determines the result. It is the job id, so a repeated submission
// lands on the cached job.
func (r Request) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%v\x00%d\x00%v\x00%d\x00", r.Format, r.Flow, r.Substrate, r.Verify, r.Workers, r.Sweep, r.InductionK)
	h.Write([]byte(r.Netlist))
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// parse builds the input network from the request source text.
func (r Request) parse() (*network.Network, error) {
	switch r.Format {
	case "blif":
		return blif.ParseString(r.Netlist)
	case "kiss2":
		fsm, err := kiss.ParseString(r.Netlist, "request")
		if err != nil {
			return nil, err
		}
		return fsm.Synthesize(kiss.Binary)
	}
	return nil, fmt.Errorf("serve: unknown format %q (blif | kiss2)", r.Format)
}

// validate rejects malformed requests; its errors are input-determined, so
// they classify permanent.
func (r Request) validate() error {
	if strings.TrimSpace(r.Netlist) == "" {
		return guard.WithClass(errors.New("serve: empty netlist"), guard.ErrClassPermanent)
	}
	if len(r.Netlist) > maxNetlistBytes {
		// Oversized inputs must be refused before the WAL sees them: a
		// submitted record embeds the netlist, and a record past the replay
		// line cap would append fine but fail recovery at the next boot.
		return guard.WithClass(fmt.Errorf("serve: netlist %d bytes exceeds the %d-byte limit", len(r.Netlist), maxNetlistBytes), guard.ErrClassPermanent)
	}
	if !flows.KnownFlow(r.Flow) {
		return guard.WithClass(fmt.Errorf("serve: unknown flow %q (have %v)", r.Flow, flows.FlowNames()), guard.ErrClassPermanent)
	}
	if !flows.KnownSubstrate(r.Substrate) {
		return guard.WithClass(fmt.Errorf("serve: unknown substrate %q (have %v)", r.Substrate, flows.SubstrateNames()), guard.ErrClassPermanent)
	}
	if r.Workers < 0 || r.Workers > maxRequestWorkers {
		return guard.WithClass(fmt.Errorf("serve: workers %d out of range 0..%d", r.Workers, maxRequestWorkers), guard.ErrClassPermanent)
	}
	if r.InductionK < 0 || r.InductionK > maxInductionK {
		return guard.WithClass(fmt.Errorf("serve: induction_k %d out of range 0..%d", r.InductionK, maxInductionK), guard.ErrClassPermanent)
	}
	if _, err := r.parse(); err != nil {
		return guard.WithClass(err, guard.ErrClassPermanent)
	}
	return nil
}

// Config tunes a Server. Zero values take defaults.
type Config struct {
	// Workers bounds concurrent jobs (parexec.Workers normalization).
	Workers int
	// Queue bounds jobs waiting for a worker; a full queue sheds load
	// with 503 instead of accepting unbounded work.
	Queue int
	// Budget bounds each job (Job), its flows (Flow) and passes (Pass).
	Budget guard.Budget
	// Reach bounds the BDD engines.
	Reach reach.Limits
	// Registry receives job/pass metrics; a fresh one is created when
	// nil.
	Registry *obs.Registry
	// SimCycles bounds the random-simulation verification fallback
	// (default sim.DefaultSpotCheck.CLI.Cycles).
	SimCycles int
	// Sweep turns SAT-based sequential sweeping on for every request that
	// did not ask for it itself. Applied before content addressing, so the
	// effective value is what the job key answers for.
	Sweep bool
	// InductionK is the sweeping induction depth applied to requests that
	// left induction_k unset (0 keeps the engine default of 1; capped at
	// maxInductionK).
	InductionK int
	// Version is reported from /healthz.
	Version string

	// DataDir enables the durable job log: job transitions are written to
	// an fsync-batched WAL under this directory and replayed on boot.
	// Empty keeps the legacy in-memory-only behaviour.
	DataDir string
	// MaxJobs bounds the job map: once exceeded, the least recently
	// touched *terminal* jobs are evicted (running and queued jobs are
	// never evicted). 0 means unbounded.
	MaxJobs int
	// JobTTL evicts terminal jobs this long after they finished. 0 keeps
	// them until MaxJobs pressure.
	JobTTL time.Duration
	// Retry governs re-execution of transiently failed jobs.
	Retry RetryPolicy
	// CompactEvery triggers WAL compaction into a snapshot after this
	// many log records (default 4096; <0 disables).
	CompactEvery int
	// Chaos injects deterministic service-level faults (tests only; see
	// internal/faults.ServicePlan). Nil disables.
	Chaos Chaos
}

// Server owns the job cache and the worker pool. Create with New, mount
// Handler on an http.Server, and Shutdown (or Close) on exit.
type Server struct {
	cfg  Config
	lib  *genlib.Library
	pool *parexec.Pool
	reg  *obs.Registry
	wal  *wal // nil without DataDir

	// baseCtx parents every job context; Crash cancels it so in-flight
	// work dies with the simulated process.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining atomic.Bool
	crashed  atomic.Bool
	drainCh  chan struct{} // closed by StartDrain; SSE handlers watch it

	rngMu sync.Mutex
	rng   *rand.Rand // retry jitter

	janitorStop chan struct{}
	janitorDone chan struct{}
	janitorOnce sync.Once

	recovery RecoveryStats

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // insertion order, for GET /jobs

	start time.Time

	mSubmitted *obs.Counter
	mCacheHits *obs.Counter
	mShed      *obs.Counter
	mDone      *obs.Counter
	mFailed    *obs.Counter
	mRetries   *obs.Counter
	mRecovered *obs.Counter
	mRequeued  *obs.Counter
	mEvictLRU  *obs.Counter
	mEvictTTL  *obs.Counter
	mWALErrors *obs.Counter
	mCompact   *obs.Counter
	mJobSec    *obs.Histogram
	gRunning   *obs.Gauge
	gQueue     *obs.Gauge
	gJobs      *obs.Gauge
	gWALBytes  *obs.Gauge
}

// New builds a Server, replaying the durable job log when cfg.DataDir is
// set: terminal jobs come back as cache entries, interrupted ones are
// re-enqueued. The caller owns cfg.Registry (when set) and must Shutdown
// (or Close) the server.
func New(cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.SimCycles <= 0 {
		cfg.SimCycles = sim.DefaultSpotCheck.CLI.Cycles
	}
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = 4096
	}
	if cfg.InductionK < 0 || cfg.InductionK > maxInductionK {
		return nil, fmt.Errorf("serve: config induction depth %d out of range 0..%d", cfg.InductionK, maxInductionK)
	}
	cfg.Retry = cfg.Retry.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:         cfg,
		lib:         genlib.Lib2(),
		pool:        parexec.NewPool(cfg.Workers, cfg.Queue),
		reg:         reg,
		jobs:        make(map[string]*Job),
		drainCh:     make(chan struct{}),
		rng:         rand.New(rand.NewSource(cfg.Retry.Seed)),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		start:       time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.pool.OnPanic = func(r any) {
		// runJob already contains pass panics via guard; this hook is the
		// last line of defense for bugs in the job plumbing itself.
		s.reg.Counter("resynd_worker_panics_total", "tasks that escaped guard containment", nil).Inc()
	}
	s.mSubmitted = reg.Counter("resynd_jobs_submitted_total", "job submissions accepted (fresh or cached)", nil)
	s.mCacheHits = reg.Counter("resynd_cache_hits_total", "submissions answered by an existing job", nil)
	s.mShed = reg.Counter("resynd_jobs_shed_total", "submissions refused with 503 (queue full or draining)", nil)
	s.mDone = reg.Counter("resynd_jobs_completed_total", "jobs finished", obs.Labels{"state": "done"})
	s.mFailed = reg.Counter("resynd_jobs_completed_total", "jobs finished", obs.Labels{"state": "failed"})
	s.mRetries = reg.Counter("resynd_job_retries_total", "transiently failed job attempts that were retried", nil)
	s.mRecovered = reg.Counter("resynd_jobs_recovered_total", "jobs re-enqueued by crash recovery", nil)
	s.mRequeued = reg.Counter("resynd_jobs_requeued_total", "transient-failed jobs re-run on resubmission", nil)
	s.mEvictLRU = reg.Counter("resynd_jobs_evicted_total", "terminal jobs evicted from the map", obs.Labels{"reason": "lru"})
	s.mEvictTTL = reg.Counter("resynd_jobs_evicted_total", "terminal jobs evicted from the map", obs.Labels{"reason": "ttl"})
	s.mWALErrors = reg.Counter("resynd_wal_errors_total", "failed WAL appends (records not made durable)", nil)
	s.mCompact = reg.Counter("resynd_wal_compactions_total", "WAL compactions into a snapshot", nil)
	s.mJobSec = reg.Histogram("resynd_job_seconds", "end-to-end job wall time", obs.DefLatencyBuckets, nil)
	s.gRunning = reg.Gauge("resynd_jobs_running", "jobs currently executing", nil)
	s.gQueue = reg.Gauge("resynd_queue_depth", "jobs waiting for a worker", nil)
	s.gJobs = reg.Gauge("resynd_jobs_resident", "jobs resident in the map", nil)
	s.gWALBytes = reg.Gauge("resynd_wal_bytes", "bytes in the current WAL generation", nil)

	if cfg.DataDir != "" {
		if err := s.recover(); err != nil {
			s.pool.Close()
			return nil, err
		}
	}
	go s.janitor()
	return s, nil
}

// Registry exposes the server's metrics registry (for samplers and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// errShed reports a full worker queue and errDraining a server past
// StartDrain; both map to 503 + Retry-After. errNotDurable reports a
// submission whose WAL record could not be made durable — the job is not
// accepted (an acked job must survive a crash), and the client should
// retry.
var (
	errShed       = errors.New("serve: worker queue full")
	errDraining   = errors.New("serve: draining, not accepting jobs")
	errNotDurable = errors.New("serve: job log append failed, submission not accepted")
)

// unavailable reports whether err should be answered with 503+Retry-After.
func unavailable(err error) bool {
	return errors.Is(err, errShed) || errors.Is(err, errDraining) || errors.Is(err, errNotDurable)
}

// Submit content-addresses req, returning the (possibly pre-existing) job
// and whether it was a cache hit. A validation failure returns an error
// the HTTP layer maps to 400; a full queue or draining server returns an
// unavailable() error for 503. A cached job that failed transiently is
// never served as a hit: it is reset and re-enqueued (fresh attempt
// budget), fixing the poisoned-cache behaviour where one deadline blip
// made a circuit permanently unserveable.
func (s *Server) Submit(req Request) (*Job, bool, error) {
	// Server-wide sweep defaults fold into the request before it is
	// content-addressed: an inherited default and an explicit ask are the
	// same job.
	if s.cfg.Sweep {
		req.Sweep = true
	}
	if req.InductionK == 0 {
		req.InductionK = s.cfg.InductionK
	}
	req.normalize()
	if err := req.validate(); err != nil {
		return nil, false, err
	}
	if s.draining.Load() {
		s.mShed.Inc()
		return nil, false, errDraining
	}
	id := req.Key()
	now := time.Now()

	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			j = newJob(id, req, now)
			s.jobs[id] = j
			s.order = append(s.order, id)
			s.mu.Unlock()
			if err := s.enqueue(j, walRecord{Type: "submitted", ID: id, Time: now, Req: &req}); err != nil {
				s.dropJob(id)
				j.reject(err)
				return nil, false, err
			}
			j.accept()
			s.mSubmitted.Inc()
			s.evictOverflow()
			return j, false, nil
		}
		s.mu.Unlock()

		// A pre-existing entry only answers once its creating submission is
		// past enqueue: before that point the job may still be rolled back
		// (queue full, WAL append failure), and acking a doomed job would
		// leave this caller polling an id that never runs.
		if err := j.waitAccepted(); err != nil {
			s.mShed.Inc()
			return nil, false, err
		}

		s.mu.Lock()
		if s.jobs[id] != j {
			// Evicted (or replaced) between the wait and the relock: retry
			// the lookup from scratch.
			s.mu.Unlock()
			continue
		}
		state, class := j.stateClass()
		if state != StateFailed || class != guard.ErrClassTransient.String() {
			j.touch(now)
			s.mu.Unlock()
			s.mSubmitted.Inc()
			s.mCacheHits.Inc()
			return j, true, nil
		}
		// Transient failure: re-run instead of serving the poisoned entry.
		// The reset happens under s.mu so a concurrent resubmission sees
		// StateQueued and coalesces instead of double-enqueueing.
		j.resetForRequeue(now)
		s.mu.Unlock()
		if err := s.enqueue(j, walRecord{Type: "requeued", ID: id, Time: now}); err != nil {
			// No worker slot (or no durability) for the re-run: land the job
			// back in failed/transient so it is not stuck queued with no
			// worker, and the next resubmission tries again.
			j.finish(time.Now(), nil, "", err, guard.ErrClassTransient, 0, false)
			return nil, false, err
		}
		s.mSubmitted.Inc()
		s.mRequeued.Inc()
		return j, false, nil
	}
}

// enqueue reserves a pool slot for j, durably logs rec, and only then
// releases the job to run — so a job never executes before the record that
// would recover it is on disk, and a shed submission leaves no trace in
// the log. On failure the caller rolls back its map entry.
func (s *Server) enqueue(j *Job, rec walRecord) error {
	ready := make(chan bool, 1)
	if !s.pool.TrySubmit(func() {
		if <-ready {
			s.runJob(j)
		}
	}) {
		s.mShed.Inc()
		return errShed
	}
	if err := s.logRecord(rec); err != nil {
		ready <- false
		s.mShed.Inc()
		return fmt.Errorf("%w: %v", errNotDurable, err)
	}
	ready <- true
	return nil
}

// dropJob rolls a failed submission out of the map. The order slice is
// scanned in full: a concurrent Submit may have appended behind this id, so
// a last-element-only check would leave a stale entry that Jobs() trips
// over forever.
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	s.removeLocked(id)
	s.mu.Unlock()
}

// logRecord appends rec to the WAL when one is configured. The returned
// error is nil without a WAL (in-memory mode accepts everything).
func (s *Server) logRecord(rec walRecord) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(rec); err != nil {
		s.mWALErrors.Inc()
		return err
	}
	return nil
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if ok {
		j.touch(time.Now())
	}
	return j, ok
}

// Jobs snapshots all jobs in submission order.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		// Skip ids whose job is gone: the map, not order, is authoritative.
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info()
	}
	return out
}

// execute runs one attempt of the job pipeline: parse, flow, verify,
// render — under ctx, traced into tr.
func (s *Server) execute(ctx context.Context, j *Job, tr *obs.Tracer) (*JobResult, string, error) {
	src, err := j.req.parse()
	if err != nil {
		// Unreachable in the HTTP path (Submit validated), kept for
		// direct API users.
		return nil, "", guard.WithClass(err, guard.ErrClassPermanent)
	}
	cfg := flows.Config{
		Tracer:     tr,
		Budget:     s.cfg.Budget,
		Reach:      s.cfg.Reach,
		Substrate:  j.req.Substrate,
		Workers:    j.req.Workers,
		Sweep:      j.req.Sweep,
		InductionK: j.req.InductionK,
	}
	result, err := flows.RunFlow(ctx, j.req.Flow, src, s.lib, cfg)
	if err != nil {
		return nil, "", err
	}
	res := &JobResult{
		Regs:    result.Metrics.Regs,
		Clk:     result.Metrics.Clk,
		Area:    result.Metrics.Area,
		PrefixK: result.PrefixK,
		Note:    result.Note,
		Verify:  "skipped",
	}
	if j.req.Verify {
		sp := tr.Begin("serve.verify")
		verdict, verr := seqverify.Check(ctx, src, result.Net, seqverify.Options{
			Delay:      result.PrefixK,
			Limits:     s.cfg.Reach,
			Sweep:      j.req.Sweep,
			InductionK: j.req.InductionK,
			Workers:    j.req.Workers,
			Tracer:     tr,
		})
		switch {
		case verr == nil:
			res.Verify = string(verdict)
		case errors.Is(verr, seqverify.ErrTooLarge):
			if serr := sim.RandomEquivalent(src, result.Net, result.PrefixK, s.cfg.SimCycles, sim.DefaultSpotCheck.CLI.Seed); serr != nil {
				sp.End()
				// A reproducible mismatch between input and output is a
				// property of the result, not of the environment.
				return nil, "", guard.WithClass(serr, guard.ErrClassPermanent)
			}
			res.Verify = "simulated"
		case errors.Is(verr, guard.ErrBudget):
			sp.End()
			return nil, "", verr
		default:
			sp.End()
			return nil, "", guard.WithClass(verr, guard.ErrClassPermanent)
		}
		sp.End()
	}
	var out strings.Builder
	if err := blif.Write(&out, result.Net); err != nil {
		return nil, "", err
	}
	// Catch a cancellation that a pass absorbed silently so a budgeted job
	// never reports success past its deadline.
	if cerr := guard.Check(ctx, "serve.job"); cerr != nil {
		return nil, "", cerr
	}
	return res, out.String(), nil
}
