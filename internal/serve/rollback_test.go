package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
)

// TestDropJobRemovesMidOrderEntry rolls back a submission that is no
// longer the newest entry — the interleaving a concurrent Submit creates
// between map insert and enqueue failure. The stale id must leave both the
// map and the order slice, and Jobs() must not trip over it.
func TestDropJobRemovesMidOrderEntry(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	now := time.Now()
	s.mu.Lock()
	for _, id := range []string{"aa", "bb", "cc"} {
		s.jobs[id] = newJob(id, Request{Format: "blif", Flow: "resyn"}, now)
		s.order = append(s.order, id)
	}
	s.mu.Unlock()

	s.dropJob("aa") // not the last element

	s.mu.Lock()
	_, inMap := s.jobs["aa"]
	order := append([]string(nil), s.order...)
	s.mu.Unlock()
	if inMap {
		t.Fatal("dropJob left the job in the map")
	}
	if len(order) != 2 || order[0] != "bb" || order[1] != "cc" {
		t.Fatalf("dropJob left a stale order entry: %v", order)
	}
	infos := s.Jobs()
	if len(infos) != 2 {
		t.Fatalf("Jobs() = %d entries, want 2", len(infos))
	}
}

// TestJobsSkipsStaleOrderIDs asserts the defensive half of the dropJob
// fix: even with a stale id in order (e.g. from an older data dir), Jobs()
// skips it instead of panicking on a nil job.
func TestJobsSkipsStaleOrderIDs(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.mu.Lock()
	s.jobs["bb"] = newJob("bb", Request{Format: "blif", Flow: "resyn"}, time.Now())
	s.order = append(s.order, "stale", "bb")
	s.mu.Unlock()

	infos := s.Jobs() // must not panic
	if len(infos) != 1 || infos[0].ID != "bb" {
		t.Fatalf("Jobs() = %+v, want just bb", infos)
	}
}

// TestSubmitCoalescerObservesRollback covers the concurrent-submit window:
// a second Submit of the same key finds the first submitter's job before
// its enqueue is durable. If the first enqueue then fails and rolls the
// job back, the second caller must get the unavailability error — not a
// cached:true ack for a job that will never run.
func TestSubmitCoalescerObservesRollback(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := Request{Netlist: circuitBLIF(t, "s27"), Flow: "script"}
	id := req.normalized().Key()

	// Stage the first submitter's state: job in the map, enqueue not yet
	// settled (accepted channel open).
	j := newJob(id, req.normalized(), time.Now())
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	type result struct {
		cached bool
		err    error
	}
	done := make(chan result, 1)
	go func() {
		_, cached, err := s.Submit(req)
		done <- result{cached, err}
	}()
	time.Sleep(50 * time.Millisecond) // let Submit reach the acceptance wait

	// First submitter's enqueue fails: roll back and release waiters.
	s.dropJob(id)
	j.reject(errShed)

	got := <-done
	if got.cached {
		t.Fatal("coalescer acked a rolled-back job as a cache hit")
	}
	if !errors.Is(got.err, errShed) {
		t.Fatalf("coalescer error = %v, want errShed", got.err)
	}

	// The key is clean again: a fresh submission must run to completion.
	j2, cached, err := s.Submit(req)
	if err != nil || cached {
		t.Fatalf("fresh submit after rollback: cached=%v err=%v", cached, err)
	}
	if info := waitTerminal(t, s, j2.ID); info.State != StateDone {
		t.Fatalf("fresh submit did not finish: %+v", info)
	}
}

// TestSubmitRejectsOversizedNetlist: a netlist past maxNetlistBytes must
// be refused at validation (permanent, a 400 not a 503) so an acked WAL
// record can never exceed the replay line cap and fail the next boot.
func TestSubmitRejectsOversizedNetlist(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := Request{Netlist: strings.Repeat("x", maxNetlistBytes+1)}
	_, _, err = s.Submit(req)
	if err == nil {
		t.Fatal("oversized netlist accepted")
	}
	if unavailable(err) {
		t.Fatalf("oversized netlist must be a client error, not 503: %v", err)
	}
	if guard.Classify(err) != guard.ErrClassPermanent {
		t.Fatalf("oversized netlist classified %v, want permanent", guard.Classify(err))
	}
}
