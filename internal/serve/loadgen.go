package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/blif"
)

// LoadConfig drives RunLoad against a resynd instance.
type LoadConfig struct {
	// Target is the base URL ("http://127.0.0.1:8080").
	Target string
	// QPS is the submission rate (default 2).
	QPS float64
	// Duration bounds the submission window (default 10s); in-flight jobs
	// are always drained afterwards.
	Duration time.Duration
	// Circuits names bench registry entries to cycle through (default: a
	// small FSM trio that keeps smoke runs fast).
	Circuits []string
	// Flow is the flow submitted with every request (default "resyn").
	Flow string
	// Verify asks the service to verify each result.
	Verify bool
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// LoadReport is the benchmark artifact (schema bench_serve/v1).
type LoadReport struct {
	Schema      string   `json:"schema"`
	Target      string   `json:"target"`
	Flow        string   `json:"flow"`
	Circuits    []string `json:"circuits"`
	QPS         float64  `json:"qps_target"`
	DurationSec float64  `json:"duration_sec"`

	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Shed      int `json:"shed"`
	CacheHits int `json:"cache_hits"`

	JobsPerSec   float64 `json:"jobs_per_sec"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP90  float64 `json:"latency_ms_p90"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
	LatencyMsMean float64 `json:"latency_ms_mean"`
	LatencyMsMax  float64 `json:"latency_ms_max"`
}

// DefaultLoadCircuits is the cheap trio used when LoadConfig.Circuits is
// empty: small enough that a smoke run finishes in seconds, and three
// distinct circuits so the content-addressed cache sees both fresh keys and
// repeats.
var DefaultLoadCircuits = []string{"bbtas", "s27", "ex6"}

// RunLoad replays the named benchmark circuits against cfg.Target at
// cfg.QPS for cfg.Duration, polls every job to completion, and reports
// end-to-end latency percentiles, throughput and the cache hit rate.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.QPS <= 0 {
		cfg.QPS = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Flow == "" {
		cfg.Flow = "resyn"
	}
	if len(cfg.Circuits) == 0 {
		cfg.Circuits = DefaultLoadCircuits
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := func(format string, a ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", a...)
		}
	}

	// Render every circuit to BLIF once, up front.
	netlists := make([]string, 0, len(cfg.Circuits))
	for _, name := range cfg.Circuits {
		c, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown circuit %q", name)
		}
		n, err := c.Build()
		if err != nil {
			return nil, fmt.Errorf("loadgen: build %s: %w", name, err)
		}
		var b strings.Builder
		if err := blif.Write(&b, n); err != nil {
			return nil, fmt.Errorf("loadgen: render %s: %w", name, err)
		}
		netlists = append(netlists, b.String())
	}

	rep := &LoadReport{
		Schema:   "bench_serve/v1",
		Target:   cfg.Target,
		Flow:     cfg.Flow,
		Circuits: cfg.Circuits,
		QPS:      cfg.QPS,
	}
	var (
		mu        sync.Mutex
		latencies []float64
		wg        sync.WaitGroup
	)
	record := func(d time.Duration, cached bool, failed bool) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case failed:
			rep.Failed++
		default:
			rep.Completed++
			latencies = append(latencies, float64(d)/float64(time.Millisecond))
		}
		if cached {
			rep.CacheHits++
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	i := 0
	for now := start; now.Before(deadline); now = <-tick.C {
		netlist := netlists[i%len(netlists)]
		i++
		rep.Submitted++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			info, cached, err := submitJob(client, cfg.Target, Request{Netlist: netlist, Flow: cfg.Flow, Verify: cfg.Verify})
			if err != nil {
				mu.Lock()
				rep.Shed++
				mu.Unlock()
				logf("loadgen: submit: %v", err)
				return
			}
			final, err := pollJob(client, cfg.Target, info.ID)
			if err != nil || final.State != StateDone {
				record(0, cached, true)
				logf("loadgen: job %s: state=%s err=%v", info.ID, final.State, err)
				return
			}
			record(time.Since(t0), cached, false)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		rep.JobsPerSec = float64(rep.Completed) / elapsed.Seconds()
	}
	if rep.Submitted > rep.Shed {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Submitted-rep.Shed)
	}
	sort.Float64s(latencies)
	rep.LatencyMsP50 = percentile(latencies, 0.50)
	rep.LatencyMsP90 = percentile(latencies, 0.90)
	rep.LatencyMsP99 = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		var sum float64
		for _, v := range latencies {
			sum += v
		}
		rep.LatencyMsMean = sum / float64(len(latencies))
		rep.LatencyMsMax = latencies[len(latencies)-1]
	}
	logf("loadgen: %d submitted, %d completed, %d failed, %d shed, cache hit rate %.2f, p50 %.1fms p99 %.1fms",
		rep.Submitted, rep.Completed, rep.Failed, rep.Shed, rep.CacheHitRate, rep.LatencyMsP50, rep.LatencyMsP99)
	return rep, nil
}

// percentile interpolates the q-quantile of sorted values (ms).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func submitJob(client *http.Client, target string, req Request) (JobInfo, bool, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobInfo{}, false, err
	}
	resp, err := client.Post(target+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return JobInfo{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return JobInfo{}, false, fmt.Errorf("POST /jobs: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return JobInfo{}, false, err
	}
	return info, info.Cached, nil
}

func pollJob(client *http.Client, target, id string) (JobInfo, error) {
	backoff := 5 * time.Millisecond
	for {
		resp, err := client.Get(target + "/jobs/" + id)
		if err != nil {
			return JobInfo{}, err
		}
		var info JobInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			return JobInfo{}, err
		}
		if info.State.terminal() {
			return info, nil
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}
