package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/blif"
)

// LoadConfig drives RunLoad against a resynd instance.
type LoadConfig struct {
	// Target is the base URL ("http://127.0.0.1:8080").
	Target string
	// QPS is the submission rate (default 2).
	QPS float64
	// Duration bounds the submission window (default 10s); in-flight jobs
	// are always drained afterwards.
	Duration time.Duration
	// Circuits names bench registry entries to cycle through (default: a
	// small FSM trio that keeps smoke runs fast).
	Circuits []string
	// Flow is the flow submitted with every request (default "resyn").
	Flow string
	// Verify asks the service to verify each result.
	Verify bool
	// Retry shapes the client's reaction to 503s and transport errors: the
	// same capped-exponential-with-jitter policy the server uses for job
	// retries, so both sides of the connection back off in the same shape.
	Retry RetryPolicy
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// LoadReport is the benchmark artifact (schema bench_serve/v2). v2 adds
// the robustness counters (non-2xx responses, client retries, jobs
// recovered across an outage) and the pre-restart cache hit rate used by
// the two-phase crash-recovery replay.
type LoadReport struct {
	Schema      string   `json:"schema"`
	Target      string   `json:"target"`
	Flow        string   `json:"flow"`
	Circuits    []string `json:"circuits"`
	QPS         float64  `json:"qps_target"`
	DurationSec float64  `json:"duration_sec"`

	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Shed      int `json:"shed"`
	CacheHits int `json:"cache_hits"`

	// Non2xx counts HTTP responses outside the 2xx range (shed 503s, error
	// statuses) across submissions and polls.
	Non2xx int `json:"non_2xx"`
	// Retries counts submission attempts beyond the first (backoff after a
	// 503 or a transport error).
	Retries int `json:"retries"`
	// Recovered counts jobs that completed only after the client observed
	// an outage (transport error or 503 mid-lifecycle) — i.e. work that
	// survived a server restart.
	Recovered int `json:"recovered"`

	JobsPerSec   float64 `json:"jobs_per_sec"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheHitRatePreRestart carries phase one's hit rate in a two-phase
	// crash-recovery replay (-loadgen-restart): comparing it with
	// CacheHitRate (phase two, after the restart) shows whether the durable
	// log preserved the cache.
	CacheHitRatePreRestart float64 `json:"cache_hit_rate_pre_restart,omitempty"`

	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP90  float64 `json:"latency_ms_p90"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
	LatencyMsMean float64 `json:"latency_ms_mean"`
	LatencyMsMax  float64 `json:"latency_ms_max"`
}

// LoadSchema is the current report schema tag.
const LoadSchema = "bench_serve/v2"

// DefaultLoadCircuits is the cheap trio used when LoadConfig.Circuits is
// empty: small enough that a smoke run finishes in seconds, and three
// distinct circuits so the content-addressed cache sees both fresh keys and
// repeats.
var DefaultLoadCircuits = []string{"bbtas", "s27", "ex6"}

// RunLoad replays the named benchmark circuits against cfg.Target at
// cfg.QPS for cfg.Duration, polls every job to completion, and reports
// end-to-end latency percentiles, throughput and the cache hit rate.
// Submissions that hit a 503 or a transport error are retried under
// cfg.Retry, and jobs that complete after an observed outage are counted
// as recovered, so a run spanning a server restart quantifies how much
// work the durable log saved.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.QPS <= 0 {
		cfg.QPS = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Flow == "" {
		cfg.Flow = "resyn"
	}
	if len(cfg.Circuits) == 0 {
		cfg.Circuits = DefaultLoadCircuits
	}
	cfg.Retry = cfg.Retry.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := func(format string, a ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", a...)
		}
	}

	// Render every circuit to BLIF once, up front.
	netlists := make([]string, 0, len(cfg.Circuits))
	for _, name := range cfg.Circuits {
		c, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown circuit %q", name)
		}
		n, err := c.Build()
		if err != nil {
			return nil, fmt.Errorf("loadgen: build %s: %w", name, err)
		}
		var b strings.Builder
		if err := blif.Write(&b, n); err != nil {
			return nil, fmt.Errorf("loadgen: render %s: %w", name, err)
		}
		netlists = append(netlists, b.String())
	}

	rep := &LoadReport{
		Schema:   LoadSchema,
		Target:   cfg.Target,
		Flow:     cfg.Flow,
		Circuits: cfg.Circuits,
		QPS:      cfg.QPS,
	}
	var (
		mu        sync.Mutex
		latencies []float64
		wg        sync.WaitGroup
	)
	record := func(d time.Duration, cached, failed, recovered bool) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case failed:
			rep.Failed++
		default:
			rep.Completed++
			latencies = append(latencies, float64(d)/float64(time.Millisecond))
			if recovered {
				rep.Recovered++
			}
		}
		if cached {
			rep.CacheHits++
		}
	}
	count := func(non2xx, retries int) {
		mu.Lock()
		rep.Non2xx += non2xx
		rep.Retries += retries
		mu.Unlock()
	}

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	i := 0
	for now := start; now.Before(deadline); now = <-tick.C {
		netlist := netlists[i%len(netlists)]
		seq := i
		i++
		rep.Submitted++
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-submission deterministic jitter stream.
			rng := rand.New(rand.NewSource(cfg.Retry.Seed + int64(seq)))
			t0 := time.Now()
			info, cached, st, err := submitJob(client, cfg.Target, Request{Netlist: netlist, Flow: cfg.Flow, Verify: cfg.Verify}, cfg.Retry, rng)
			count(st.non2xx, st.retries)
			if err != nil {
				mu.Lock()
				rep.Shed++
				mu.Unlock()
				logf("loadgen: submit: %v", err)
				return
			}
			sawOutage := st.retries > 0
			final, outage, err := pollJob(client, cfg.Target, info.ID, cfg.Retry, rng)
			sawOutage = sawOutage || outage
			if err != nil || final.State != StateDone {
				record(0, cached, true, false)
				logf("loadgen: job %s: state=%s err=%v", info.ID, final.State, err)
				return
			}
			record(time.Since(t0), cached, false, sawOutage)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		rep.JobsPerSec = float64(rep.Completed) / elapsed.Seconds()
	}
	if rep.Submitted > rep.Shed {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Submitted-rep.Shed)
	}
	sort.Float64s(latencies)
	rep.LatencyMsP50 = percentile(latencies, 0.50)
	rep.LatencyMsP90 = percentile(latencies, 0.90)
	rep.LatencyMsP99 = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		var sum float64
		for _, v := range latencies {
			sum += v
		}
		rep.LatencyMsMean = sum / float64(len(latencies))
		rep.LatencyMsMax = latencies[len(latencies)-1]
	}
	logf("loadgen: %d submitted, %d completed, %d failed, %d shed, %d retries, %d recovered, cache hit rate %.2f, p50 %.1fms p99 %.1fms",
		rep.Submitted, rep.Completed, rep.Failed, rep.Shed, rep.Retries, rep.Recovered, rep.CacheHitRate, rep.LatencyMsP50, rep.LatencyMsP99)
	return rep, nil
}

// percentile interpolates the q-quantile of sorted values (ms).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// submitStats carries the per-submission robustness counters back to the
// aggregator.
type submitStats struct {
	non2xx  int
	retries int
}

// submitJob POSTs the request, retrying 503s and transport errors under
// the shared backoff policy. Permanent statuses (400s other than 429) fail
// immediately.
func submitJob(client *http.Client, target string, req Request, policy RetryPolicy, rng *rand.Rand) (JobInfo, bool, submitStats, error) {
	var st submitStats
	body, err := json.Marshal(req)
	if err != nil {
		return JobInfo{}, false, st, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > policy.Max {
				return JobInfo{}, false, st, lastErr
			}
			st.retries++
			time.Sleep(policy.Backoff(attempt-1, rng))
		}
		resp, err := client.Post(target+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err // transport error: server may be restarting
			continue
		}
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			var info JobInfo
			err := json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err != nil {
				return JobInfo{}, false, st, err
			}
			return info, info.Cached, st, nil
		}
		st.non2xx++
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		lastErr = fmt.Errorf("POST /jobs: %s: %s", resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusTooManyRequests {
			return JobInfo{}, false, st, lastErr // permanent: bad request etc.
		}
	}
}

// pollJob polls the job to a terminal state. Transport errors and 5xx
// statuses are tolerated with the retry policy's capped backoff (the
// server may be restarting mid-poll); outage reports whether any were
// seen, so the caller can count the job as recovered.
func pollJob(client *http.Client, target, id string, policy RetryPolicy, rng *rand.Rand) (info JobInfo, outage bool, err error) {
	backoff := 5 * time.Millisecond
	consecutiveErrs := 0
	for {
		resp, gerr := client.Get(target + "/jobs/" + id)
		if gerr != nil || resp.StatusCode >= 500 {
			if gerr == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
			}
			outage = true
			consecutiveErrs++
			// Give a restarting server policy.Max+1 windows of the capped
			// backoff before declaring the job lost.
			if consecutiveErrs > 8*(policy.Max+1) {
				if gerr == nil {
					gerr = fmt.Errorf("GET /jobs/%s: %s", id, resp.Status)
				}
				return JobInfo{}, outage, gerr
			}
			time.Sleep(policy.Backoff(consecutiveErrs-1, rng))
			continue
		}
		consecutiveErrs = 0
		derr := json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			// The job vanished (evicted, or acked but lost — the chaos
			// suite proves the latter cannot happen for durable acks).
			return JobInfo{}, outage, fmt.Errorf("GET /jobs/%s: gone", id)
		}
		if derr != nil {
			return JobInfo{}, outage, derr
		}
		if info.State.terminal() {
			return info, outage, nil
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}
