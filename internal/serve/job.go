package serve

import (
	"sync"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

func (s JobState) terminal() bool { return s == StateDone || s == StateFailed }

// Job is one unit of submitted work, content-addressed by the request hash
// so identical submissions share a single Job. Its event log is appended by
// a loss-free obs.SubscribeFunc recorder on the job's private tracer and
// replayed to any number of SSE consumers: a consumer reads from an index,
// so late subscribers see the full history and slow ones never force drops.
type Job struct {
	// ID is the content hash of the request (netlist + format + flow +
	// verify), so it doubles as the cache key.
	ID string

	mu       sync.Mutex
	req      Request
	state    JobState
	events   []obs.Event
	notify   chan struct{} // closed and replaced on every append/state change
	created  time.Time
	started  time.Time
	finished time.Time
	result   *JobResult
	errMsg   string
	class    string // guard.ErrClass of the failure ("transient"|"permanent")
	attempts int    // execution attempts consumed (retries + 1)
	netlist  string // output BLIF, set on success

	// accepted is closed once the creating submission is past enqueue (its
	// record durable, or the map-only equivalent); until then the job may
	// still be rolled back, so concurrent submissions of the same key must
	// not ack it. acceptErr carries the enqueue failure when it was.
	// Written before the close, read after the wait — the channel orders it.
	accepted  chan struct{}
	acceptErr error

	// eventsBase preserves the event count of a recovered job whose
	// per-event history was not persisted; Info reports base + live.
	eventsBase int
	// durable is set once the job's terminal WAL record is known synced:
	// a durable terminal job survives a crash byte-identically.
	durable bool
	// touched is the last submission or lookup, driving LRU eviction.
	touched time.Time
}

// JobResult is the Table-I-style summary of a finished job.
type JobResult struct {
	Regs    int     `json:"regs"`
	Clk     float64 `json:"clk"`
	Area    float64 `json:"area"`
	PrefixK int     `json:"prefix_k"`
	Note    string  `json:"note,omitempty"`
	// Verify reports how equivalence was established: "exact",
	// "simulated" (state space too large for the product machine), or
	// "skipped".
	Verify string `json:"verify"`
}

// JobInfo is the JSON shape served for a job.
type JobInfo struct {
	ID       string     `json:"id"`
	Flow     string     `json:"flow"`
	Format   string     `json:"format"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Started  time.Time  `json:"started"`
	Finished time.Time  `json:"finished"`
	Events   int        `json:"events"`
	Result   *JobResult `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
	// ErrorClass reports the retry class of a failed job ("transient" |
	// "permanent"): transient failures are retried and never cached.
	ErrorClass string `json:"error_class,omitempty"`
	// Attempts counts execution attempts a terminal job consumed.
	Attempts int `json:"attempts,omitempty"`
	// Cached is set on POST responses that were answered by an existing
	// job rather than a fresh run.
	Cached bool `json:"cached,omitempty"`
}

func newJob(id string, req Request, now time.Time) *Job {
	return &Job{
		ID:       id,
		req:      req,
		state:    StateQueued,
		notify:   make(chan struct{}),
		accepted: make(chan struct{}),
		created:  now,
		touched:  now,
	}
}

// accept marks the creating submission as past enqueue: the job is durable
// (or map-only) and safe for concurrent submissions to coalesce on.
func (j *Job) accept() { close(j.accepted) }

// reject records that the creating submission was rolled back (queue full,
// WAL append failure) and releases any coalescing waiters with the error.
func (j *Job) reject(err error) {
	j.acceptErr = err
	close(j.accepted)
}

// waitAccepted blocks until accept or reject, returning the reject error.
func (j *Job) waitAccepted() error {
	<-j.accepted
	return j.acceptErr
}

// newRecoveredJob rebuilds a job from its persisted state. Queued and
// running jobs come back queued (the caller re-enqueues them); terminal
// jobs come back complete and durable, so the result cache survives the
// restart.
func newRecoveredJob(sj snapJob, now time.Time) *Job {
	// A recovered job's submission was durable by definition, so it is born
	// accepted.
	accepted := make(chan struct{})
	close(accepted)
	j := &Job{
		ID:         sj.ID,
		req:        sj.Req,
		state:      sj.State,
		notify:     make(chan struct{}),
		accepted:   accepted,
		created:    sj.Created,
		started:    sj.Started,
		finished:   sj.Finished,
		result:     sj.Result,
		errMsg:     sj.Error,
		class:      sj.Class,
		attempts:   sj.Attempts,
		netlist:    sj.Netlist,
		eventsBase: sj.Events,
		touched:    now,
	}
	if !j.state.terminal() {
		j.state = StateQueued
		j.started = time.Time{}
		j.finished = time.Time{}
	} else {
		j.durable = true
	}
	return j
}

// snapshot serializes the job for the compaction snapshot.
func (j *Job) snapshot() snapJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return snapJob{
		ID:       j.ID,
		Req:      j.req,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Result:   j.result,
		Netlist:  j.netlist,
		Error:    j.errMsg,
		Class:    j.class,
		Attempts: j.attempts,
		Events:   j.eventsBase + len(j.events),
	}
}

// wake must be called with j.mu held: it releases every waiter and arms a
// fresh notify channel.
func (j *Job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// append records one tracer event. It is installed via obs.SubscribeFunc,
// so it runs synchronously under the tracer's lock and never misses or
// drops an event.
func (j *Job) append(e obs.Event) {
	j.mu.Lock()
	j.events = append(j.events, e)
	j.wake()
	j.mu.Unlock()
}

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.wake()
	j.mu.Unlock()
}

// finish lands the job in a terminal state. class and attempts describe a
// failure's retry classification and how many attempts were consumed;
// durable records whether the terminal WAL record was synced.
func (j *Job) finish(now time.Time, res *JobResult, netlist string, err error, class guard.ErrClass, attempts int, durable bool) {
	j.mu.Lock()
	j.finished = now
	j.attempts = attempts
	j.durable = durable
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.class = class.String()
	} else {
		j.state = StateDone
		j.result = res
		j.netlist = netlist
	}
	j.wake()
	j.mu.Unlock()
}

// resetForRequeue returns a transiently failed job to the queued state for
// a fresh run (resubmission after a deadline blip, or crash recovery of an
// interrupted run). The original creation time is kept — it is the same
// submission — but results, errors, attempts and the event log start over.
func (j *Job) resetForRequeue(now time.Time) {
	j.mu.Lock()
	j.state = StateQueued
	j.started = time.Time{}
	j.finished = time.Time{}
	j.result = nil
	j.errMsg = ""
	j.class = ""
	j.attempts = 0
	j.netlist = ""
	j.events = nil
	j.eventsBase = 0
	j.durable = false
	j.touched = now
	j.wake()
	j.mu.Unlock()
}

// EventsSince returns the events at index from onward, the job state, and a
// channel that is closed on the next append or state change. The channel is
// captured under the same lock as the slice, so a waiter can never miss a
// wakeup: if anything happened after this snapshot, the returned channel is
// already closed.
func (j *Job) EventsSince(from int) (evs []obs.Event, state JobState, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.state, j.notify
}

// Info snapshots the job for JSON rendering.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{
		ID:         j.ID,
		Flow:       j.req.Flow,
		Format:     j.req.Format,
		State:      j.state,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
		Events:     j.eventsBase + len(j.events),
		Result:     j.result,
		Error:      j.errMsg,
		ErrorClass: j.class,
		Attempts:   j.attempts,
	}
}

// State reports the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// stateClass reports the state together with the failure class (empty
// unless failed).
func (j *Job) stateClass() (JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.class
}

// Durable reports whether the job's terminal record is known synced in the
// WAL: a durable terminal job survives a crash byte-identically (the chaos
// harness keys its strongest assertion on this).
func (j *Job) Durable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.durable
}

// touch refreshes the LRU clock; callers hold the server map lock, not
// j.mu, so it takes the job lock itself.
func (j *Job) touch(now time.Time) {
	j.mu.Lock()
	j.touched = now
	j.mu.Unlock()
}

// lruKey returns (terminal, touched, finished) for eviction decisions.
func (j *Job) lruKey() (terminal bool, touched, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal(), j.touched, j.finished
}

// Netlist returns the output BLIF once the job is done ("" otherwise).
func (j *Job) Netlist() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.netlist
}
