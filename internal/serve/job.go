package serve

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

func (s JobState) terminal() bool { return s == StateDone || s == StateFailed }

// Job is one unit of submitted work, content-addressed by the request hash
// so identical submissions share a single Job. Its event log is appended by
// a loss-free obs.SubscribeFunc recorder on the job's private tracer and
// replayed to any number of SSE consumers: a consumer reads from an index,
// so late subscribers see the full history and slow ones never force drops.
type Job struct {
	// ID is the content hash of the request (netlist + format + flow +
	// verify), so it doubles as the cache key.
	ID string

	mu       sync.Mutex
	req      Request
	state    JobState
	events   []obs.Event
	notify   chan struct{} // closed and replaced on every append/state change
	created  time.Time
	started  time.Time
	finished time.Time
	result   *JobResult
	errMsg   string
	netlist  string // output BLIF, set on success
}

// JobResult is the Table-I-style summary of a finished job.
type JobResult struct {
	Regs    int     `json:"regs"`
	Clk     float64 `json:"clk"`
	Area    float64 `json:"area"`
	PrefixK int     `json:"prefix_k"`
	Note    string  `json:"note,omitempty"`
	// Verify reports how equivalence was established: "exact",
	// "simulated" (state space too large for the product machine), or
	// "skipped".
	Verify string `json:"verify"`
}

// JobInfo is the JSON shape served for a job.
type JobInfo struct {
	ID       string     `json:"id"`
	Flow     string     `json:"flow"`
	Format   string     `json:"format"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Started  time.Time  `json:"started"`
	Finished time.Time  `json:"finished"`
	Events   int        `json:"events"`
	Result   *JobResult `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Cached is set on POST responses that were answered by an existing
	// job rather than a fresh run.
	Cached bool `json:"cached,omitempty"`
}

func newJob(id string, req Request, now time.Time) *Job {
	return &Job{
		ID:      id,
		req:     req,
		state:   StateQueued,
		notify:  make(chan struct{}),
		created: now,
	}
}

// wake must be called with j.mu held: it releases every waiter and arms a
// fresh notify channel.
func (j *Job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// append records one tracer event. It is installed via obs.SubscribeFunc,
// so it runs synchronously under the tracer's lock and never misses or
// drops an event.
func (j *Job) append(e obs.Event) {
	j.mu.Lock()
	j.events = append(j.events, e)
	j.wake()
	j.mu.Unlock()
}

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.wake()
	j.mu.Unlock()
}

func (j *Job) finish(now time.Time, res *JobResult, netlist string, err error) {
	j.mu.Lock()
	j.finished = now
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = res
		j.netlist = netlist
	}
	j.wake()
	j.mu.Unlock()
}

// EventsSince returns the events at index from onward, the job state, and a
// channel that is closed on the next append or state change. The channel is
// captured under the same lock as the slice, so a waiter can never miss a
// wakeup: if anything happened after this snapshot, the returned channel is
// already closed.
func (j *Job) EventsSince(from int) (evs []obs.Event, state JobState, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.state, j.notify
}

// Info snapshots the job for JSON rendering.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{
		ID:       j.ID,
		Flow:     j.req.Flow,
		Format:   j.req.Format,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Events:   len(j.events),
		Result:   j.result,
		Error:    j.errMsg,
	}
}

// State reports the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Netlist returns the output BLIF once the job is done ("" otherwise).
func (j *Job) Netlist() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.netlist
}
