package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faults"
)

// chaosRetry is the fast retry policy used by the chaos rounds.
func chaosRetry(seed int64) RetryPolicy {
	return RetryPolicy{Max: 1, Base: time.Millisecond, Cap: 2 * time.Millisecond, Seed: seed}
}

// durableInfos snapshots the JSON rendering of every terminal job whose
// terminal WAL record is known synced: exactly the set a crash must
// preserve byte-identically.
func durableInfos(s *Server) map[string][]byte {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make(map[string][]byte)
	for _, j := range jobs {
		if j.State().terminal() && j.Durable() {
			b, err := json.Marshal(j.Info())
			if err != nil {
				panic(err)
			}
			out[j.ID] = b
		}
	}
	return out
}

func waitTerminal(t *testing.T, s *Server, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State().terminal() {
			return j.Info()
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobInfo{}
}

// TestServeChaosCrashRecovery is the acceptance harness for the crash-safe
// service: 50 seeded rounds of submit → inject faults (WAL write errors,
// fsync stalls, contained panics, exhausted deadlines, slow passes) →
// kill -9 (WAL truncated to its last fsync) → recover. Every round
// asserts the three durability invariants:
//
//  1. no lost jobs — every acknowledged submission exists after recovery;
//  2. byte-identical durable state — every job observed terminal-and-
//     durable before the kill renders exactly the same JSON after it;
//  3. no unverified results — every recovered done job that was submitted
//     with Verify reports a real verification method.
func TestServeChaosCrashRecovery(t *testing.T) {
	const rounds = 50
	blifs := []string{circuitBLIF(t, "bbtas"), circuitBLIF(t, "s27")}
	for round := 0; round < rounds; round++ {
		seed := int64(round + 1)
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			plan := faults.NewServicePlan(seed).
				WithWALErrRate(0.05).
				WithSyncStall(0.3, 2*time.Millisecond).
				WithJobFaults(0.15, 0.15).
				WithJobDelay(0.5, 4*time.Millisecond)
			s, err := New(Config{Workers: 2, Queue: 4, DataDir: dir, Chaos: plan, Retry: chaosRetry(seed)})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))

			acked := make(map[string]bool)
			wantVerified := make(map[string]bool)
			for i := 0; i < 4; i++ {
				req := Request{
					// Salt the netlist so every submission is a distinct
					// content address.
					Netlist: fmt.Sprintf("# chaos %d.%d\n%s", round, i, blifs[rng.Intn(len(blifs))]),
					Flow:    "script",
					Verify:  i%2 == 0,
				}
				j, _, err := s.Submit(req)
				if err != nil {
					// Shed or refused durability: not acknowledged, so the
					// job owes us nothing after the crash.
					continue
				}
				acked[j.ID] = true
				if req.Verify {
					wantVerified[j.ID] = true
				}
			}
			// Let a seeded amount of work happen — some jobs finish, some
			// die mid-flight.
			time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
			durable := durableInfos(s)
			s.Crash()

			// Recover on the same data dir (no fault injection: the chaos
			// was in the run we are recovering from).
			s2, err := New(Config{Workers: 2, Queue: 64, DataDir: dir, Retry: chaosRetry(seed)})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()

			for id := range acked {
				if _, ok := s2.Job(id); !ok {
					t.Errorf("acked job %s lost in the crash", id)
				}
			}
			for id, want := range durable {
				j, ok := s2.Job(id)
				if !ok {
					t.Errorf("durable terminal job %s lost in the crash", id)
					continue
				}
				got, err := json.Marshal(j.Info())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("durable job %s diverged across the crash:\n pre: %s\npost: %s", id, want, got)
				}
			}
			for id := range acked {
				if _, ok := s2.Job(id); !ok {
					continue // already reported as lost above
				}
				info := waitTerminal(t, s2, id)
				if wantVerified[id] && info.State == StateDone &&
					(info.Result == nil || info.Result.Verify == "skipped") {
					t.Errorf("job %s served an unverified result after recovery: %+v", id, info.Result)
				}
			}
		})
	}
}

// TestServeChaosSuccessiveCrashes runs one data dir through repeated
// crash/recover cycles, asserting that acknowledged jobs and durable
// terminal state survive every generation, not just one.
func TestServeChaosSuccessiveCrashes(t *testing.T) {
	dir := t.TempDir()
	blifs := []string{circuitBLIF(t, "bbtas"), circuitBLIF(t, "s27")}
	acked := make(map[string]bool)
	durable := make(map[string][]byte)

	const cycles = 8
	for cycle := 0; cycle < cycles; cycle++ {
		seed := int64(100 + cycle)
		plan := faults.NewServicePlan(seed).
			WithSyncStall(0.3, 2*time.Millisecond).
			WithJobFaults(0.1, 0.1).
			WithJobDelay(0.5, 4*time.Millisecond)
		s, err := New(Config{Workers: 2, Queue: 16, DataDir: dir, Chaos: plan, Retry: chaosRetry(seed)})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		for id := range acked {
			if _, ok := s.Job(id); !ok {
				t.Fatalf("cycle %d: acked job %s lost", cycle, id)
			}
		}
		for id, want := range durable {
			j, ok := s.Job(id)
			if !ok {
				t.Fatalf("cycle %d: durable job %s lost", cycle, id)
			}
			got, _ := json.Marshal(j.Info())
			if !bytes.Equal(got, want) {
				t.Fatalf("cycle %d: durable job %s diverged:\n pre: %s\npost: %s", cycle, id, want, got)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2; i++ {
			req := Request{
				Netlist: fmt.Sprintf("# cycle %d.%d\n%s", cycle, i, blifs[rng.Intn(len(blifs))]),
				Flow:    "script",
			}
			if j, _, err := s.Submit(req); err == nil {
				acked[j.ID] = true
			}
		}
		time.Sleep(time.Duration(rng.Intn(15)) * time.Millisecond)
		for id, info := range durableInfos(s) {
			durable[id] = info
		}
		s.Crash()
	}

	// Final clean boot: everything ever acked drains to terminal.
	s, err := New(Config{Workers: 2, Queue: 64, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for id := range acked {
		waitTerminal(t, s, id)
	}
	if rs := s.Recovery(); rs.Snapshot+rs.Replayed == 0 {
		t.Fatalf("final recovery saw no durable state: %+v", rs)
	}
}
