package logic

import (
	"math/rand"
	"testing"
)

// benchRandCover builds a deterministic random SOP over n variables with the
// given cube count; density controls how many literals each cube binds.
func benchRandCover(r *rand.Rand, n, cubes int, density float64) *Cover {
	f := NewCover(n)
	for i := 0; i < cubes; i++ {
		c := NewCube(n)
		for v := 0; v < n; v++ {
			if r.Float64() < density {
				if r.Intn(2) == 0 {
					c.SetLit(v, LitPos)
				} else {
					c.SetLit(v, LitNeg)
				}
			}
		}
		f.Add(c)
	}
	return f
}

// BenchmarkSimplify measures the espresso-style minimizer with a DCret-like
// don't-care set — the inner loop of both the resynthesis core and the
// unreachable-state DC application of the baseline flow.
func BenchmarkSimplify(b *testing.B) {
	for _, sz := range []struct {
		name           string
		n, on, dc      int
		donDens, dcDen float64
	}{
		{"n6", 6, 8, 4, 0.6, 0.5},
		{"n8", 8, 12, 6, 0.5, 0.4},
		{"n10", 10, 16, 8, 0.4, 0.35},
	} {
		b.Run(sz.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(41))
			f := benchRandCover(r, sz.n, sz.on, sz.donDens)
			dc := benchRandCover(r, sz.n, sz.dc, sz.dcDen)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Simplify(f, dc)
			}
		})
	}
}
