package logic

import (
	"math/rand"
	"testing"
)

// benchRandCover builds a deterministic random SOP over n variables with the
// given cube count; density controls how many literals each cube binds.
func benchRandCover(r *rand.Rand, n, cubes int, density float64) *Cover {
	f := NewCover(n)
	for i := 0; i < cubes; i++ {
		c := NewCube(n)
		for v := 0; v < n; v++ {
			if r.Float64() < density {
				if r.Intn(2) == 0 {
					c.SetLit(v, LitPos)
				} else {
					c.SetLit(v, LitNeg)
				}
			}
		}
		f.Add(c)
	}
	return f
}

// benchUnateCover is benchRandCover with a fixed phase per variable, so
// the cover is unate by construction (the Simplify early-exit case).
func benchUnateCover(r *rand.Rand, n, cubes int, density float64) *Cover {
	phase := make([]Lit, n)
	for v := range phase {
		if r.Intn(2) == 0 {
			phase[v] = LitPos
		} else {
			phase[v] = LitNeg
		}
	}
	f := NewCover(n)
	for i := 0; i < cubes; i++ {
		c := NewCube(n)
		for v := 0; v < n; v++ {
			if r.Float64() < density {
				c.SetLit(v, phase[v])
			}
		}
		f.Add(c)
	}
	return f
}

// BenchmarkSimplify measures the espresso-style minimizer with a DCret-like
// don't-care set — the inner loop of both the resynthesis core and the
// unreachable-state DC application of the baseline flow.
func BenchmarkSimplify(b *testing.B) {
	for _, sz := range []struct {
		name           string
		n, on, dc      int
		donDens, dcDen float64
	}{
		{"n6", 6, 8, 4, 0.6, 0.5},
		{"n8", 8, 12, 6, 0.5, 0.4},
		{"n10", 10, 16, 8, 0.4, 0.35},
	} {
		b.Run(sz.name, func(b *testing.B) {
			r := rand.New(rand.NewSource(41))
			f := benchRandCover(r, sz.n, sz.on, sz.donDens)
			dc := benchRandCover(r, sz.n, sz.dc, sz.dcDen)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Simplify(f, dc)
			}
		})
	}
}

// BenchmarkSimplifyUnate measures the early-exit path: an SCC-reduced
// unate (or single-cube) cover with an empty don't-care set skips the
// expand/irredundant loop entirely. The /full sub-runs pin the cost of
// the loop the shortcut avoids.
func BenchmarkSimplifyUnate(b *testing.B) {
	for _, sz := range []struct {
		name     string
		n, cubes int
		density  float64
	}{
		{"single_cube", 10, 1, 0.8},
		{"unate_n8", 8, 12, 0.5},
		{"unate_n12", 12, 20, 0.4},
	} {
		r := rand.New(rand.NewSource(43))
		f := benchUnateCover(r, sz.n, sz.cubes, sz.density)
		b.Run(sz.name+"/shortcut", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				simplify(f, nil, true)
			}
		})
		b.Run(sz.name+"/full", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				simplify(f, nil, false)
			}
		})
	}
}
