package logic

import "sort"

// This file implements a heuristic two-level minimizer in the espresso
// style: EXPAND / IRREDUNDANT / REDUCE iterated to a fixed point of the
// (cube count, literal count) cost. It is the "simplify with don't cares"
// primitive the paper relies on: minimizing a node function against the
// retiming-induced don't-care set DCret.

// cost is the lexicographic minimization objective.
type cost struct {
	cubes int
	lits  int
}

func (f *Cover) cost() cost { return cost{len(f.Cubes), f.NumLits()} }

func (a cost) less(b cost) bool {
	if a.cubes != b.cubes {
		return a.cubes < b.cubes
	}
	return a.lits < b.lits
}

// Simplify returns a heuristically minimal cover equivalent to f modulo the
// don't-care set dc: the result r satisfies  f ⊆ r ⊆ f + dc.
// dc may be nil (empty don't-care set). f is not modified.
func Simplify(f, dc *Cover) *Cover {
	return simplify(f, dc, true)
}

// simplify is Simplify with the early-exit shortcuts gated, so the
// property suite can pin the shortcut path against the full loop.
func simplify(f, dc *Cover, shortcuts bool) *Cover {
	if dc == nil {
		dc = Zero(f.N)
	}
	if f.N != dc.N {
		panic("logic: Simplify: on/dc size mismatch")
	}
	r := f.Clone()
	r.Scc()
	if len(r.Cubes) == 0 {
		return r
	}
	// Quick win: if f + dc is a tautology, the function can be 1.
	if Or(r, dc).IsTautology() {
		return One(f.N)
	}
	// Early exit: with an empty don't-care set, an SCC-reduced unate cover
	// (a single cube is trivially unate) is a fixed point of the loop. In a
	// unate cover containment coincides with single-cube containment, so no
	// cube can be raised (the raised cube would have to fit inside another,
	// meaning SCC would already have dropped the original) and irredundant
	// cannot remove anything SCC kept — the loop below would break on its
	// first iteration and return this exact cover.
	if shortcuts && dc.IsZero() && (len(r.Cubes) == 1 || r.IsUnate()) {
		return r
	}
	best := r.Clone()
	for iter := 0; iter < 8; iter++ {
		expand(r, dc)
		irredundant(r, dc)
		c := r.cost()
		if !c.less(best.cost()) {
			break
		}
		best = r.Clone()
		reduce(r, dc)
	}
	return best
}

// expand grows each cube of f to a prime of f+dc (with respect to the
// current cover), removing cubes that become contained in the expansion.
func expand(f, dc *Cover) {
	upper := Or(f, dc) // the largest allowed function
	// Expand larger-literal-count cubes first: they benefit most.
	sort.SliceStable(f.Cubes, func(i, j int) bool {
		return f.Cubes[i].CountLits() > f.Cubes[j].CountLits()
	})
	covered := make([]bool, len(f.Cubes))
	kept := make([]Cube, 0, len(f.Cubes))
	for i := 0; i < len(f.Cubes); i++ {
		if covered[i] {
			continue
		}
		// Raise literals in place on the clone, restoring the ones that do
		// not survive the containment check — no per-raise cube allocation.
		c := f.Cubes[i].Clone()
		for v := 0; v < f.N; v++ {
			l := c.Lit(v)
			if l != LitNeg && l != LitPos {
				continue
			}
			c.SetLit(v, LitBoth)
			if !upper.CoversCube(c) {
				c.SetLit(v, l)
			}
		}
		// Drop not-yet-processed and already-kept cubes contained in c.
		for j := i + 1; j < len(f.Cubes); j++ {
			if !covered[j] && c.ContainsCube(f.Cubes[j]) {
				covered[j] = true
			}
		}
		out := kept[:0]
		for _, d := range kept {
			if !c.ContainsCube(d) {
				out = append(out, d)
			}
		}
		kept = append(out, c)
	}
	f.Cubes = kept
}

// irredundant removes cubes covered by the remainder of the cover plus dc.
func irredundant(f, dc *Cover) {
	// Try to drop cubes with many literals first.
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.Cubes[order[a]].CountLits() > f.Cubes[order[b]].CountLits()
	})
	removed := make([]bool, len(f.Cubes))
	rest := NewCover(f.N)
	rest.Cubes = make([]Cube, 0, len(f.Cubes)+len(dc.Cubes))
	for _, i := range order {
		rest.Cubes = rest.Cubes[:0]
		for j, d := range f.Cubes {
			if j != i && !removed[j] {
				rest.Cubes = append(rest.Cubes, d)
			}
		}
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		if rest.CoversCube(f.Cubes[i]) {
			removed[i] = true
		}
	}
	out := f.Cubes[:0]
	for i, c := range f.Cubes {
		if !removed[i] {
			out = append(out, c)
		}
	}
	f.Cubes = out
}

// reduce shrinks each cube to the smallest cube that still covers its
// essential part, enabling a different expansion on the next pass.
func reduce(f, dc *Cover) {
	rest := NewCover(f.N)
	rest.Cubes = make([]Cube, 0, len(f.Cubes)+len(dc.Cubes))
	for i := range f.Cubes {
		c := f.Cubes[i]
		rest.Cubes = rest.Cubes[:0]
		for j, d := range f.Cubes {
			if j != i {
				rest.Cubes = append(rest.Cubes, d)
			}
		}
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		// c_reduced = c ∩ supercube( (rest|c)' )
		comp := rest.Cofactor(c).Complement()
		if len(comp.Cubes) == 0 {
			// c is entirely covered by the rest; shrink to empty — it will
			// be removed by the caller's next irredundant pass. Keep it to
			// preserve correctness (cover must still contain ON-set).
			continue
		}
		sc := comp.Cubes[0]
		for _, d := range comp.Cubes[1:] {
			sc = sc.Supercube(d)
		}
		if nc, ok := c.And(sc); ok {
			f.Cubes[i] = nc
		}
	}
}

// Minimize is Simplify with an empty don't-care set.
func Minimize(f *Cover) *Cover { return Simplify(f, nil) }

// Contain verifies the simplification contract f·dc' ⊆ r ⊆ f + dc, i.e. the
// result stays inside the incompletely-specified function's interval. It is
// exported for tests and for the verification layer.
func Contain(f, dc, r *Cover) bool {
	if dc == nil {
		dc = Zero(f.N)
	}
	return Or(f, dc).Covers(r) && Or(r, dc).Covers(f)
}
