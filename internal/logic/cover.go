package logic

import "strings"

// Cover is a sum of cubes over a fixed number of variables. The zero-cube
// cover denotes the constant-0 function; a cover containing the universal
// cube denotes constant 1 (possibly among other cubes).
type Cover struct {
	N     int
	Cubes []Cube
}

// NewCover returns an empty (constant-0) cover over n variables.
func NewCover(n int) *Cover {
	return &Cover{N: n}
}

// One returns the constant-1 cover over n variables.
func One(n int) *Cover {
	f := NewCover(n)
	f.Add(NewCube(n))
	return f
}

// Zero returns the constant-0 cover over n variables.
func Zero(n int) *Cover { return NewCover(n) }

// Add appends a cube, dropping it if empty.
func (f *Cover) Add(c Cube) {
	if c.N != f.N {
		panic("logic: cube/cover size mismatch")
	}
	if c.IsEmpty() {
		return
	}
	f.Cubes = append(f.Cubes, c)
}

// Clone returns a deep copy.
func (f *Cover) Clone() *Cover {
	g := NewCover(f.N)
	g.Cubes = make([]Cube, 0, len(f.Cubes))
	for _, c := range f.Cubes {
		g.Cubes = append(g.Cubes, c.Clone())
	}
	return g
}

// IsZero reports whether the cover has no cubes (syntactically constant 0).
func (f *Cover) IsZero() bool { return len(f.Cubes) == 0 }

// IsZeroFunction reports whether the cover denotes the constant-0 function.
// Because Add drops empty cubes, every stored cube is a non-empty implicant,
// so this coincides with IsZero for covers built through the package API.
func (f *Cover) IsZeroFunction() bool {
	for _, c := range f.Cubes {
		if !c.IsEmpty() {
			return false
		}
	}
	return true
}

// HasFullCube reports whether some cube is universal.
func (f *Cover) HasFullCube() bool {
	for _, c := range f.Cubes {
		if c.IsFull() {
			return true
		}
	}
	return false
}

// NumLits returns the total literal count of the cover — the standard
// SIS-style cost metric for factored/two-level forms.
func (f *Cover) NumLits() int {
	n := 0
	for _, c := range f.Cubes {
		n += c.CountLits()
	}
	return n
}

// Eval evaluates the cover under a complete assignment.
func (f *Cover) Eval(assign []bool) bool {
	for _, c := range f.Cubes {
		if c.Eval(assign) {
			return true
		}
	}
	return false
}

// Cofactor returns the cofactor f|c (Shannon cofactor with respect to a cube).
func (f *Cover) Cofactor(c Cube) *Cover {
	g := NewCover(f.N)
	for _, d := range f.Cubes {
		if r, ok := d.Cofactor(c); ok {
			g.Cubes = append(g.Cubes, r)
		}
	}
	return g
}

// CofactorVar returns the cofactor with respect to a single literal.
func (f *Cover) CofactorVar(v int, phase bool) *Cover {
	c := NewCube(f.N)
	if phase {
		c.SetLit(v, LitPos)
	} else {
		c.SetLit(v, LitNeg)
	}
	return f.Cofactor(c)
}

// mostBinate selects the splitting variable for the unate recursive
// paradigm: the variable appearing in both phases in the largest number of
// cubes; ties broken by total appearance count. Returns -1 if the cover is
// unate in every variable it depends on.
func (f *Cover) mostBinate() int {
	if f.N == 0 {
		return -1
	}
	pos := make([]int, f.N)
	neg := make([]int, f.N)
	for _, c := range f.Cubes {
		for v := 0; v < f.N; v++ {
			switch c.Lit(v) {
			case LitPos:
				pos[v]++
			case LitNeg:
				neg[v]++
			}
		}
	}
	best, bestKey := -1, -1
	for v := 0; v < f.N; v++ {
		if pos[v] > 0 && neg[v] > 0 {
			key := (min(pos[v], neg[v]) << 16) + pos[v] + neg[v]
			if key > bestKey {
				best, bestKey = v, key
			}
		}
	}
	if best >= 0 {
		return best
	}
	return -1
}

// IsUnate reports whether the cover is unate in every variable, i.e. no
// variable appears in both phases across the cubes. Works word-parallel on
// the positional encoding: a variable's two bits are 01 for x', 10 for x,
// and the unused high bits of the last word stay 11, so they never
// register in either phase mask.
func (f *Cover) IsUnate() bool {
	if len(f.Cubes) == 0 {
		return true
	}
	nw := len(f.Cubes[0].w)
	neg := make([]uint64, nw)
	pos := make([]uint64, nw)
	const odd = 0x5555555555555555
	for _, c := range f.Cubes {
		for i, x := range c.w {
			neg[i] |= x &^ (x >> 1) & odd
			pos[i] |= (x >> 1) &^ x & odd
		}
	}
	for i := range neg {
		if neg[i]&pos[i] != 0 {
			return false
		}
	}
	return true
}

// anyBoundVar returns some variable bound in some cube, or -1.
func (f *Cover) anyBoundVar() int {
	for _, c := range f.Cubes {
		for v := 0; v < f.N; v++ {
			if l := c.Lit(v); l == LitNeg || l == LitPos {
				return v
			}
		}
	}
	return -1
}

// IsTautology reports whether the cover is the constant-1 function, using
// the unate recursive paradigm.
func (f *Cover) IsTautology() bool {
	if len(f.Cubes) == 0 {
		return false
	}
	if f.HasFullCube() {
		return true
	}
	v := f.mostBinate()
	if v < 0 {
		// Unate cover: tautology iff it contains the full cube, which we
		// already checked — except the pure don't-care positions trick:
		// a unate cover is a tautology iff some cube is full.
		return false
	}
	if !f.CofactorVar(v, true).IsTautology() {
		return false
	}
	return f.CofactorVar(v, false).IsTautology()
}

// CoversCube reports whether f ⊇ c, i.e. the cofactor f|c is a tautology.
func (f *Cover) CoversCube(c Cube) bool {
	if c.IsEmpty() {
		return true
	}
	return f.Cofactor(c).IsTautology()
}

// Covers reports whether f ⊇ g for covers (every cube of g is covered).
func (f *Cover) Covers(g *Cover) bool {
	for _, c := range g.Cubes {
		if !f.CoversCube(c) {
			return false
		}
	}
	return true
}

// EquivalentTo reports functional equality of two covers.
func (f *Cover) EquivalentTo(g *Cover) bool {
	return f.Covers(g) && g.Covers(f)
}

// Scc removes cubes single-cube-contained in another cube of the cover.
func (f *Cover) Scc() {
	out := f.Cubes[:0]
	for i, c := range f.Cubes {
		dominated := false
		for j, d := range f.Cubes {
			if i == j {
				continue
			}
			if d.ContainsCube(c) && !(c.ContainsCube(d) && j > i) {
				// c ⊆ d; when the two cubes are equal keep the first.
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	f.Cubes = out
}

// Complement returns the complement of f via the unate recursive paradigm.
func (f *Cover) Complement() *Cover {
	if len(f.Cubes) == 0 {
		return One(f.N)
	}
	if f.HasFullCube() {
		return Zero(f.N)
	}
	if len(f.Cubes) == 1 {
		return complementCube(f.Cubes[0])
	}
	v := f.mostBinate()
	if v < 0 {
		v = f.anyBoundVar()
		if v < 0 {
			// No bound variables but no full cube: impossible (such a
			// cube would be full), defensive constant 0.
			return Zero(f.N)
		}
	}
	hi := f.CofactorVar(v, true).Complement()
	lo := f.CofactorVar(v, false).Complement()
	r := NewCover(f.N)
	for _, c := range hi.Cubes {
		d := c.Clone()
		d.SetLit(v, LitPos)
		r.Add(d)
	}
	for _, c := range lo.Cubes {
		d := c.Clone()
		d.SetLit(v, LitNeg)
		r.Add(d)
	}
	r.Scc()
	return r
}

// complementCube returns the DeMorgan complement of a single cube.
func complementCube(c Cube) *Cover {
	r := NewCover(c.N)
	for v := 0; v < c.N; v++ {
		switch c.Lit(v) {
		case LitNeg:
			d := NewCube(c.N)
			d.SetLit(v, LitPos)
			r.Add(d)
		case LitPos:
			d := NewCube(c.N)
			d.SetLit(v, LitNeg)
			r.Add(d)
		}
	}
	return r
}

// Or returns f + g.
func Or(f, g *Cover) *Cover {
	if f.N != g.N {
		panic("logic: cover size mismatch")
	}
	r := f.Clone()
	for _, c := range g.Cubes {
		r.Add(c.Clone())
	}
	r.Scc()
	return r
}

// And returns f · g by pairwise cube intersection.
func And(f, g *Cover) *Cover {
	if f.N != g.N {
		panic("logic: cover size mismatch")
	}
	r := NewCover(f.N)
	for _, a := range f.Cubes {
		for _, b := range g.Cubes {
			if c, ok := a.And(b); ok {
				r.Add(c)
			}
		}
	}
	r.Scc()
	return r
}

// Xor returns f ⊕ g = f·g' + f'·g.
func Xor(f, g *Cover) *Cover {
	return Or(And(f, g.Complement()), And(f.Complement(), g))
}

// Not returns the complement (alias for Complement, for call-site symmetry).
func Not(f *Cover) *Cover { return f.Complement() }

// Support returns the set of variables the cover syntactically depends on.
func (f *Cover) Support() []int {
	seen := make([]bool, f.N)
	for _, c := range f.Cubes {
		for v := 0; v < f.N; v++ {
			if l := c.Lit(v); l == LitNeg || l == LitPos {
				seen[v] = true
			}
		}
	}
	var out []int
	for v, s := range seen {
		if s {
			out = append(out, v)
		}
	}
	return out
}

// DependsOn reports whether f semantically depends on variable v
// (f|v=0 differs from f|v=1).
func (f *Cover) DependsOn(v int) bool {
	hi := f.CofactorVar(v, true)
	lo := f.CofactorVar(v, false)
	return !hi.EquivalentTo(lo)
}

// Remap returns a copy of f over m variables where old variable i becomes
// varMap[i]. varMap entries must be distinct and < m; a cover variable
// outside the map's bound positions must not be in the support.
func (f *Cover) Remap(m int, varMap []int) *Cover {
	g := NewCover(m)
	for _, c := range f.Cubes {
		d := NewCube(m)
		for v := 0; v < f.N; v++ {
			if l := c.Lit(v); l != LitBoth {
				if v >= len(varMap) || varMap[v] < 0 {
					panic("logic: Remap: bound variable not in map")
				}
				d.SetLit(varMap[v], l)
			}
		}
		g.Add(d)
	}
	return g
}

// String renders the cover one cube per line (espresso PLA body style).
func (f *Cover) String() string {
	if len(f.Cubes) == 0 {
		return "<zero>"
	}
	lines := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		lines[i] = c.String()
	}
	return strings.Join(lines, "\n")
}

// ParseCover parses whitespace-separated cube strings over n variables.
func ParseCover(n int, cubes ...string) (*Cover, error) {
	f := NewCover(n)
	for _, s := range cubes {
		c, err := ParseCube(s)
		if err != nil {
			return nil, err
		}
		if c.N != n {
			c2 := NewCube(n)
			for v := 0; v < c.N && v < n; v++ {
				c2.SetLit(v, c.Lit(v))
			}
			c = c2
		}
		f.Add(c)
	}
	return f, nil
}

// MustParseCover is ParseCover that panics on error; for tests and tables.
func MustParseCover(n int, cubes ...string) *Cover {
	f, err := ParseCover(n, cubes...)
	if err != nil {
		panic(err)
	}
	return f
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
